#!/usr/bin/env bash
# Build the Release tree, run the micro-benchmarks, and emit BENCH_micro.json
# (benchmark name -> ns/op) so successive PRs have a perf trajectory to
# compare against.
#
# Usage: scripts/bench.sh [--compare <baseline.json>] [build-dir] [output-json]
#
# --compare diffs the freshly written output against a baseline
# BENCH_micro.json via scripts/bench_compare.py and fails the run on a
# hot-path regression (the CI bench-smoke job points it at the committed
# baseline).
#
# MICRO_BENCH_ARGS (env) is forwarded to the micro_bench binary — the CI
# bench-smoke job passes a reduced --benchmark_min_time so the sweep finishes
# in seconds while still exercising every benchmark.
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"

COMPARE_BASELINE=""
BENCH_COMPARE_ARGS="${BENCH_COMPARE_ARGS:-}"
POSITIONAL=()
while [[ $# -gt 0 ]]; do
  case "$1" in
    --compare)
      [[ $# -ge 2 ]] || { echo "error: --compare needs a baseline path" >&2; exit 2; }
      COMPARE_BASELINE="$2"
      shift 2
      ;;
    *)
      POSITIONAL+=("$1")
      shift
      ;;
  esac
done
set -- "${POSITIONAL[@]:-}"

BUILD_DIR="${1:-$REPO_ROOT/build}"
OUT_JSON="${2:-$REPO_ROOT/BENCH_micro.json}"

if [[ -n "$COMPARE_BASELINE" && ! -f "$COMPARE_BASELINE" ]]; then
  echo "error: --compare baseline not found: $COMPARE_BASELINE" >&2
  exit 2
fi

cmake -B "$BUILD_DIR" -S "$REPO_ROOT" -DCMAKE_BUILD_TYPE=Release >/dev/null

# micro_bench is only generated when google-benchmark is installed; a missing
# target/binary must fail the run loudly — a silently partial/stale
# BENCH_micro.json would corrupt the perf trajectory the PRs compare against.
if ! cmake --build "$BUILD_DIR" --target micro_bench -j >/dev/null ||
   [[ ! -x "$BUILD_DIR/micro_bench" ]]; then
  echo "error: $BUILD_DIR/micro_bench could not be built (is google-benchmark" \
       "installed? see 'find_package(benchmark)' in CMakeLists.txt);" \
       "refusing to write a partial $OUT_JSON" >&2
  exit 1
fi

RAW_JSON="$BUILD_DIR/bench_micro_raw.json"
# shellcheck disable=SC2086  # MICRO_BENCH_ARGS is intentionally word-split
"$BUILD_DIR/micro_bench" --benchmark_format=json \
  --benchmark_out="$RAW_JSON" --benchmark_out_format=json \
  ${MICRO_BENCH_ARGS:-} >/dev/null

python3 - "$RAW_JSON" "$OUT_JSON" <<'EOF'
import json
import sys
from statistics import median

raw_path, out_path = sys.argv[1], sys.argv[2]
with open(raw_path) as f:
    raw = json.load(f)

# Benches whose timed iteration covers a block of operating points record
# per-point time, so their entries compare directly against the scalar
# single-point benches (BM_DcOp* run 4 points per iteration either way;
# BM_IcoEvalTransientBatched fuses a 4-corner block per call).
points_per_iteration = {
    "BM_DcOpScalar": 4,
    "BM_DcOpBatch": 4,
    "BM_IcoEvalTransientBatched": 4,
}

# With --benchmark_repetitions=N every repetition shows up as its own
# "iteration" entry under the same name; record the median so one noisy
# draw on a loaded machine can't skew the committed baseline.
samples = {}
for bench in raw.get("benchmarks", []):
    if bench.get("run_type") == "aggregate":
        continue
    ns = bench["real_time"]
    unit = bench.get("time_unit", "ns")
    scale = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}[unit]
    norm = points_per_iteration.get(bench["name"], 1)
    samples.setdefault(bench["name"], []).append(ns * scale / norm)
result = {name: round(median(vals), 1) for name, vals in samples.items()}

with open(out_path, "w") as f:
    json.dump(result, f, indent=2, sort_keys=True)
    f.write("\n")
print(f"wrote {out_path} ({len(result)} benchmarks)")

# Batched-vs-per-sample pairs: the perf trajectory the batched engine is
# graded on (see docs/BENCHMARKS.md).
pairs = [
    ("surrogate MC scoring", "BM_SurrogateScorePerSample", "BM_SurrogateScoreBatch"),
    ("PPO update epochs", "BM_PpoUpdatePerSample", "BM_PpoUpdateBatched"),
    ("TRPO update", "BM_TrpoUpdatePerSample", "BM_TrpoUpdateBatched"),
    ("PVT corner sweep", "BM_PvtCornerSweepSerial", "BM_PvtCornerSweepPooled"),
    ("DC operating point (lane batch)", "BM_DcOpScalar", "BM_DcOpBatch"),
    ("ICO transient (lane batch)", "BM_IcoEvalTransient", "BM_IcoEvalTransientBatched"),
    ("repeated PVT sweep (eval cache)", "BM_PvtRepeatedSweepUncached", "BM_PvtRepeatedSweepCached"),
    ("scheduler 8-job fan-out (shared cache)", "BM_SchedulerThroughputPrivate", "BM_SchedulerThroughputShared"),
    ("scheduler 8-job bakeoff (4 workers)", "BM_SchedulerThroughputShared", "BM_SchedulerThroughputDistributed4"),
]

# A benchmark that silently vanishes (renamed, #ifdef'd out, registration
# dropped) would freeze its BENCH_micro.json entry at the last written value
# and quietly hollow out the speedup pairs above — fail loudly instead.
required = sorted({name for _, slow, fast in pairs for name in (slow, fast)}
                  | {"BM_WireRoundTrip"})
missing = [name for name in required if name not in result]
if missing:
    sys.exit(f"error: expected benchmark(s) missing from {raw_path}: "
             + ", ".join(missing))

for label, slow, fast in pairs:
    print(f"  {label}: {result[slow] / result[fast]:.2f}x batched/parallel speedup")
EOF

if [[ -n "$COMPARE_BASELINE" ]]; then
  # shellcheck disable=SC2086  # BENCH_COMPARE_ARGS is intentionally word-split
  python3 "$REPO_ROOT/scripts/bench_compare.py" \
    "$COMPARE_BASELINE" "$OUT_JSON" ${BENCH_COMPARE_ARGS}
fi
