#!/usr/bin/env bash
# Build the API reference with Doxygen (see Doxyfile: src/core, src/rl,
# src/nn, src/eval; warnings are promoted to errors so documentation drift fails CI).
#
# Usage: scripts/docs.sh
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"

if ! command -v doxygen >/dev/null 2>&1; then
  echo "docs.sh: doxygen not found — install doxygen (>= 1.9) to build the API reference" >&2
  exit 1
fi

cd "$REPO_ROOT"
doxygen Doxyfile
echo "API reference written to $REPO_ROOT/build/docs/html/index.html"
