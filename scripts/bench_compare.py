#!/usr/bin/env python3
"""Compare two BENCH_micro.json snapshots and gate hot-path regressions.

Usage:
    bench_compare.py BASELINE.json CURRENT.json [options]

Prints a per-benchmark table of ns/op and the current/baseline ratio
(ratio > 1.0 means the benchmark got slower).  Exits non-zero when any
*named hot-path* benchmark regressed by more than --threshold (default
15%).  Non-hot benchmarks are reported but never gate: machine-to-machine
noise on the long tail would make the gate useless, while the named hot
paths are exactly the ones each perf PR is graded on.

Benchmarks present in only one file are listed (new benches appear as
"added", vanished ones as "removed"); a *removed hot-path* benchmark is
an error — silently dropping the benchmark that guards a win is itself a
regression.
"""

import argparse
import json
import sys

# The benches that define the perf trajectory (docs/BENCHMARKS.md).  Keep in
# sync with the speedup pairs in scripts/bench.sh and the CI ratio gates.
DEFAULT_HOT = [
    "BM_DcOpBatch",
    "BM_IcoEvalTransientBatched",
    "BM_PvtCornerSweepPooled",
    "BM_SurrogateScoreBatch",
    "BM_PpoUpdateBatched",
]


def load(path):
    try:
        with open(path) as f:
            data = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        sys.exit(f"error: cannot read {path}: {e}")
    if not isinstance(data, dict) or not data:
        sys.exit(f"error: {path} is not a non-empty benchmark map")
    bad = [k for k, v in data.items() if not isinstance(v, (int, float))]
    if bad:
        sys.exit(f"error: {path}: non-numeric entries: {', '.join(sorted(bad))}")
    return data


def main(argv=None):
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("baseline", help="baseline BENCH_micro.json")
    ap.add_argument("current", help="freshly generated BENCH_micro.json")
    ap.add_argument(
        "--threshold", type=float, default=0.15, metavar="FRAC",
        help="max allowed fractional slowdown for hot benchmarks "
             "(default 0.15 = 15%%)")
    ap.add_argument(
        "--hot", action="append", default=None, metavar="NAME",
        help="hot-path benchmark that gates the exit code (repeatable; "
             "default: the built-in hot-path list)")
    args = ap.parse_args(argv)

    base = load(args.baseline)
    cur = load(args.current)
    hot = args.hot if args.hot else DEFAULT_HOT

    names = sorted(set(base) | set(cur))
    width = max(len(n) for n in names)
    print(f"{'benchmark':<{width}}  {'baseline':>14}  {'current':>14}  "
          f"{'ratio':>7}")
    regressions = []
    for name in names:
        tag = " hot" if name in hot else ""
        if name not in base:
            print(f"{name:<{width}}  {'—':>14}  {cur[name]:>14.1f}    added{tag}")
            continue
        if name not in cur:
            print(f"{name:<{width}}  {base[name]:>14.1f}  {'—':>14}  removed{tag}")
            if name in hot:
                regressions.append(f"{name}: removed from current run")
            continue
        ratio = cur[name] / base[name] if base[name] > 0 else float("inf")
        mark = ""
        if name in hot:
            mark = " hot"
            if ratio > 1.0 + args.threshold:
                mark = " REGRESSED"
                regressions.append(
                    f"{name}: {base[name]:.1f} -> {cur[name]:.1f} ns/op "
                    f"({(ratio - 1.0) * 100.0:+.1f}%)")
        print(f"{name:<{width}}  {base[name]:>14.1f}  {cur[name]:>14.1f}  "
              f"{ratio:>6.2f}x{mark}")

    missing_hot = [n for n in hot if n not in base and n not in cur]
    if missing_hot:
        sys.exit("error: hot benchmark(s) absent from both files: "
                 + ", ".join(missing_hot))

    if regressions:
        print(f"\nFAIL: {len(regressions)} hot-path regression(s) beyond "
              f"{args.threshold * 100:.0f}%:", file=sys.stderr)
        for r in regressions:
            print(f"  {r}", file=sys.stderr)
        return 1
    print(f"\nOK: no hot-path regression beyond {args.threshold * 100:.0f}% "
          f"({len(hot)} gated benchmark(s))")
    return 0


if __name__ == "__main__":
    sys.exit(main())
