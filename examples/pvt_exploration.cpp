// Progressive PVT exploration on the BSIM-22nm opamp (paper Section V-D,
// Fig. 3): search the hardest corner first, verify the rest, pull failing
// corners into the pool, and print the EDA-time timeline.
//
// Usage: pvt_exploration [seed] [strategy: brute|random|hardest]
#include <cstdio>
#include <cstring>

#include "circuits/registry.hpp"
#include "core/sizing_api.hpp"
#include "pvt/corners.hpp"

using namespace trdse;

int main(int argc, char** argv) {
  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 1;
  core::PvtStrategy strategy = core::PvtStrategy::kProgressiveHardest;
  if (argc > 2) {
    if (std::strcmp(argv[2], "brute") == 0)
      strategy = core::PvtStrategy::kBruteForce;
    else if (std::strcmp(argv[2], "random") == 0)
      strategy = core::PvtStrategy::kProgressiveRandom;
  }

  // Scenario construction is declarative: circuit + process by name, the
  // registry wires space/specs/evaluator.
  const auto corners = pvt::nineCornerSet(sim::bsim22Card().nominalVdd);
  core::SizingProblem problem =
      circuits::Registry::global().makeProblem("two_stage_opamp", corners,
                                               "bsim22");
  std::printf("PVT exploration on %s with %zu corners, strategy %s\n",
              problem.name.c_str(), corners.size(),
              std::string(toString(strategy)).c_str());

  core::SessionOptions options;
  options.strategy = strategy;
  options.maxSimulations = 10000;
  options.seed = seed;
  core::SizingSession session(std::move(problem), options);
  const core::SessionReport report = session.run();

  std::printf("%s", report.summary.c_str());
  std::printf("\nFig.3-style EDA timeline (%zu blocks: %zu search, %zu verify, "
              "%zu served from cache):\n",
              report.ledger.totalBlocks(), report.ledger.searchBlocks(),
              report.ledger.verifyBlocks(), report.ledger.cachedBlocks());
  std::printf("%s", report.ledger.renderTimeline(corners.size()).c_str());
  return report.solved ? 0 : 1;
}
