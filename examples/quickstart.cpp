// Quickstart: size a synthetic "circuit" with the trust-region agent.
//
// Demonstrates the designer-facing API (paper Section IV-F) on a problem
// whose physics is a closed-form stand-in, so it runs in milliseconds and
// needs no circuit knowledge: find (x, y, z) such that
//   gain  = 80 - 30*(x-0.6)^2 - 20*(y-0.4)^2      >= 78
//   power = 2*x + y + 0.2*z                        <= 1.8
//   speed = 50*x*z                                 >= 12
//
// The same five ingredients a real flow needs are all here: variables and
// ranges, an evaluation callback, measurement names, specs, and corners.
#include <cstdio>

#include "core/sizing_api.hpp"

using namespace trdse;

int main() {
  core::SizingProblem problem;
  problem.name = "quickstart_synthetic";
  problem.space = core::DesignSpace({
      {"x", 0.0, 1.0, 101, false},
      {"y", 0.0, 1.0, 101, false},
      {"z", 0.1, 1.0, 91, false},
  });
  problem.measurementNames = {"gain", "power", "speed"};
  problem.specs = {
      {"gain", core::SpecKind::kAtLeast, 78.0},
      {"power", core::SpecKind::kAtMost, 1.8},
      {"speed", core::SpecKind::kAtLeast, 12.0},
  };
  problem.corners = {{sim::ProcessCorner::kTT, 1.0, 27.0}};
  problem.evaluate = [](const linalg::Vector& v, const sim::PvtCorner&) {
    core::EvalResult r;
    r.ok = true;
    const double x = v[0];
    const double y = v[1];
    const double z = v[2];
    r.measurements = {80.0 - 30.0 * (x - 0.6) * (x - 0.6) -
                          20.0 * (y - 0.4) * (y - 0.4),
                      2.0 * x + y + 0.2 * z, 50.0 * x * z};
    return r;
  };

  core::SessionOptions options;
  options.maxSimulations = 2000;
  options.seed = 7;

  core::SizingSession session(std::move(problem), options);
  const core::SessionReport report = session.run();
  std::printf("%s", report.summary.c_str());
  std::printf("EDA blocks used: %zu\n", report.ledger.totalBlocks());
  return report.solved ? 0 : 1;
}
