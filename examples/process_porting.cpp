// Process porting / AIP reuse (paper Section V-C, Table II): size the opamp
// on BSIM 45nm, persist the trained agent to a versioned checkpoint file,
// then port to BSIM 22nm by warm-starting from that file — the deployment
// flow the paper's F1 -> F2 industrial result describes, where the donor
// search and the target search are separate processes (possibly separated by
// weeks).
//
// Donor and target scenarios are the same registry circuit on two process
// cards — porting is literally a one-string change. The donor phase writes
// donor.ckpt (surrogate network + optimal sizes); the target phase reads it
// back and compares the paper's three strategies, reporting the EDA blocks
// actually simulated so the warm-start saving is visible directly.
//
// Usage: process_porting [seed] [checkpoint-path]
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <string>

#include "circuits/registry.hpp"
#include "core/local_explorer.hpp"
#include "io/checkpoint.hpp"
#include "io/state_io.hpp"

using namespace trdse;

namespace {

/// Donor phase: solve 45nm, persist the trained agent.
bool runDonor(std::uint64_t seed, const std::string& path) {
  const auto& registry = circuits::Registry::global();
  const core::SizingProblem prob45 =
      registry.makeProblem("two_stage_opamp", {}, "bsim45");
  const sim::PvtCorner tt45 = prob45.corners.front();
  const core::ValueFunction value45(prob45.measurementNames, prob45.specs);
  core::LocalExplorerConfig cfg45;
  cfg45.seed = seed;
  core::LocalExplorer donor(
      prob45.space, value45,
      [&](const linalg::Vector& x) { return prob45.evaluate(x, tt45); }, cfg45);
  const core::SearchOutcome out45 = donor.run(10000);
  std::printf("45nm donor: solved=%d iterations=%zu simulated=%zu\n",
              int(out45.solved), out45.iterations, out45.evalStats.simulated);
  if (!out45.solved) return false;

  io::CheckpointWriter w("porting-donor");
  io::SectionWriter& meta = w.section("meta");
  meta.str("two_stage_opamp");
  meta.str("bsim45");
  io::writeMlp(w.section("surrogate-net"), donor.surrogate().network());
  w.section("best-sizes").vec(out45.sizes);
  w.writeFile(path);
  std::printf("45nm donor: agent saved to %s\n", path.c_str());
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 1;
  const std::string ckptPath = argc > 2 ? argv[2] : "donor.ckpt";
  try {
    if (!runDonor(seed, ckptPath)) return 1;

    // ---- Target node: 22nm, warm-started from the donor checkpoint file.
    const io::CheckpointReader ckpt = io::CheckpointReader::fromFile(ckptPath);
    ckpt.expectKind("porting-donor");
    io::SectionReader metaReader = ckpt.section("meta");
    const std::string donorCircuit = metaReader.str();
    const std::string donorProcess = metaReader.str();
    if (donorCircuit != "two_stage_opamp") {
      std::fprintf(stderr,
                   "donor checkpoint is for circuit '%s', expected "
                   "two_stage_opamp — refusing to warm-start from it\n",
                   donorCircuit.c_str());
      return 1;
    }
    std::printf("porting donor agent trained on %s/%s\n",
                donorCircuit.c_str(), donorProcess.c_str());
    io::SectionReader netReader = ckpt.section("surrogate-net");
    const nn::Mlp donorNet = io::readMlp(netReader);
    io::SectionReader sizesReader = ckpt.section("best-sizes");
    const linalg::Vector donorSizes = sizesReader.vec();

    const auto& registry = circuits::Registry::global();
    const core::SizingProblem prob22 =
        registry.makeProblem("two_stage_opamp", {}, "bsim22");
    const sim::PvtCorner tt22 = prob22.corners.front();
    const core::ValueFunction value22(prob22.measurementNames, prob22.specs);

    struct Strategy {
      const char* name;
      bool shareWeights;
      bool shareStart;
    };
    const Strategy strategies[] = {
        {"cold start (random weights, random start)", false, false},
        {"weight sharing + starting point sharing", true, true},
        {"random weights + starting point sharing", false, true},
    };
    std::size_t coldSimulated = 0;
    std::size_t warmSimulated = 0;
    for (const auto& s : strategies) {
      core::LocalExplorerConfig cfg;
      cfg.seed = seed + 100;
      if (s.shareStart) cfg.startingPoint = donorSizes;
      if (s.shareWeights) cfg.warmStartWeights = &donorNet;
      core::LocalExplorer agent(
          prob22.space, value22,
          [&](const linalg::Vector& x) { return prob22.evaluate(x, tt22); },
          cfg);
      const core::SearchOutcome out = agent.run(10000);
      std::printf("22nm %-42s: solved=%d iterations=%zu simulated=%zu\n",
                  s.name, int(out.solved), out.iterations,
                  out.evalStats.simulated);
      if (!s.shareWeights && !s.shareStart) coldSimulated = out.evalStats.simulated;
      if (s.shareWeights && s.shareStart) warmSimulated = out.evalStats.simulated;
    }
    if (warmSimulated < coldSimulated) {
      std::printf(
          "warm start saved %zu simulated blocks vs cold start (%zu -> %zu)\n",
          coldSimulated - warmSimulated, coldSimulated, warmSimulated);
    } else {
      std::printf("warm start did not beat cold start at this seed "
                  "(%zu vs %zu)\n", warmSimulated, coldSimulated);
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "process_porting failed: %s\n", e.what());
    return 1;
  }
}
