// Process porting / AIP reuse (paper Section V-C, Table II): size the opamp
// on BSIM 45nm, then port to BSIM 22nm using the three strategies the paper
// compares — cold start, weight+start sharing, and start sharing only.
//
// Donor and target scenarios are the same registry circuit on two process
// cards — porting is literally a one-string change.
//
// Usage: process_porting [seed]
#include <cstdio>

#include "circuits/registry.hpp"
#include "core/local_explorer.hpp"

using namespace trdse;

int main(int argc, char** argv) {
  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 1;
  const auto& registry = circuits::Registry::global();

  // ---- Donor node: 45nm.
  const core::SizingProblem prob45 =
      registry.makeProblem("two_stage_opamp", {}, "bsim45");
  const sim::PvtCorner tt45 = prob45.corners.front();
  const core::ValueFunction value45(prob45.measurementNames, prob45.specs);
  core::LocalExplorerConfig cfg45;
  cfg45.seed = seed;
  core::LocalExplorer donor(
      prob45.space, value45,
      [&](const linalg::Vector& x) { return prob45.evaluate(x, tt45); }, cfg45);
  const core::SearchOutcome out45 = donor.run(10000);
  std::printf("45nm donor: solved=%d iterations=%zu\n", int(out45.solved),
              out45.iterations);
  if (!out45.solved) return 1;

  // ---- Target node: 22nm, three porting strategies.
  const core::SizingProblem prob22 =
      registry.makeProblem("two_stage_opamp", {}, "bsim22");
  const sim::PvtCorner tt22 = prob22.corners.front();
  const core::ValueFunction value22(prob22.measurementNames, prob22.specs);

  struct Strategy {
    const char* name;
    bool shareWeights;
    bool shareStart;
  };
  const Strategy strategies[] = {
      {"baseline (random weights, random start)", false, false},
      {"weight sharing + starting point sharing", true, true},
      {"random weights + starting point sharing", false, true},
  };
  for (const auto& s : strategies) {
    core::LocalExplorerConfig cfg;
    cfg.seed = seed + 100;
    if (s.shareStart) cfg.startingPoint = out45.sizes;
    if (s.shareWeights) cfg.warmStartWeights = &donor.surrogate().network();
    core::LocalExplorer agent(
        prob22.space, value22,
        [&](const linalg::Vector& x) { return prob22.evaluate(x, tt22); }, cfg);
    const core::SearchOutcome out = agent.run(10000);
    std::printf("22nm %-42s: solved=%d iterations=%zu\n", s.name,
                int(out.solved), out.iterations);
  }
  return 0;
}
