// Process porting / AIP reuse (paper Section V-C, Table II): size the opamp
// on BSIM 45nm, then port to BSIM 22nm using the three strategies the paper
// compares — cold start, weight+start sharing, and start sharing only.
//
// Usage: process_porting [seed]
#include <cstdio>

#include "circuits/two_stage_opamp.hpp"
#include "core/local_explorer.hpp"

using namespace trdse;

int main(int argc, char** argv) {
  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 1;

  // ---- Donor node: 45nm.
  const circuits::TwoStageOpamp amp45(sim::bsim45Card());
  const auto space45 = circuits::TwoStageOpamp::designSpace(sim::bsim45Card());
  const sim::PvtCorner tt45{sim::ProcessCorner::kTT,
                            sim::bsim45Card().nominalVdd, 27.0};
  const core::ValueFunction value45(circuits::TwoStageOpamp::measurementNames(),
                                    amp45.defaultSpecs());
  core::LocalExplorerConfig cfg45;
  cfg45.seed = seed;
  core::LocalExplorer donor(
      space45, value45,
      [&](const linalg::Vector& x) { return amp45.evaluate(x, tt45); }, cfg45);
  const core::SearchOutcome out45 = donor.run(10000);
  std::printf("45nm donor: solved=%d iterations=%zu\n", int(out45.solved),
              out45.iterations);
  if (!out45.solved) return 1;

  // ---- Target node: 22nm, three porting strategies.
  const circuits::TwoStageOpamp amp22(sim::bsim22Card());
  const auto space22 = circuits::TwoStageOpamp::designSpace(sim::bsim22Card());
  const sim::PvtCorner tt22{sim::ProcessCorner::kTT,
                            sim::bsim22Card().nominalVdd, 27.0};
  const core::ValueFunction value22(circuits::TwoStageOpamp::measurementNames(),
                                    amp22.defaultSpecs());

  struct Strategy {
    const char* name;
    bool shareWeights;
    bool shareStart;
  };
  const Strategy strategies[] = {
      {"baseline (random weights, random start)", false, false},
      {"weight sharing + starting point sharing", true, true},
      {"random weights + starting point sharing", false, true},
  };
  for (const auto& s : strategies) {
    core::LocalExplorerConfig cfg;
    cfg.seed = seed + 100;
    if (s.shareStart) cfg.startingPoint = out45.sizes;
    if (s.shareWeights) cfg.warmStartWeights = &donor.surrogate().network();
    core::LocalExplorer agent(
        space22, value22,
        [&](const linalg::Vector& x) { return amp22.evaluate(x, tt22); }, cfg);
    const core::SearchOutcome out = agent.run(10000);
    std::printf("22nm %-42s: solved=%d iterations=%zu\n", s.name,
                int(out.solved), out.iterations);
  }
  return 0;
}
