// Programmatic multi-job orchestration — the code-level twin of
// `trdse run scenarios/opamp_bakeoff.scenario`.
//
// Builds a Scenario in code instead of a file: four strategies race on the
// same registry circuit under one per-job budget, sharing simulation results
// through the cross-job cache, and the report shows the unified
// StrategyOutcome accounting (ledger == iterations for every strategy) plus
// the shared-cache economics. Also demonstrates JobSpec::makeProblem — an
// inline problem that exists only in code, scheduled side-by-side with a
// registry circuit would work the same way.
//
// Usage: multi_job_orchestration [budget] [threads]
#include <cstdio>
#include <cstdlib>

#include "orch/scheduler.hpp"

using namespace trdse;

int main(int argc, char** argv) {
  const std::size_t budget =
      argc > 1 ? static_cast<std::size_t>(std::atol(argv[1])) : 600;
  const std::size_t threads =
      argc > 2 ? static_cast<std::size_t>(std::atol(argv[2])) : 2;

  orch::Scenario sc;
  sc.name = "opamp_bakeoff_inline";
  sc.threads = threads;
  sc.slice = 32;
  const char* strategies[] = {"pvt_search", "random_search", "tree_bayes_opt",
                              "rl_policy"};
  for (const char* strategy : strategies) {
    orch::JobSpec job;
    job.name = strategy;
    job.circuit = "two_stage_opamp";
    job.strategy = strategy;
    job.seed = 1;
    job.budget = budget;
    sc.jobs.push_back(std::move(job));
  }

  orch::Scheduler scheduler(std::move(sc));
  std::printf("racing %zu strategies on two_stage_opamp, %zu blocks each\n\n",
              sizeof(strategies) / sizeof(strategies[0]), budget);
  std::printf("%-16s %-7s %8s %8s %7s %7s %10s\n", "strategy", "solved",
              "blocks", "sims", "hits", "shared", "best");
  for (const orch::JobResult& r : scheduler.run()) {
    const opt::StrategyOutcome& o = r.outcome;
    std::printf("%-16s %-7s %8zu %8zu %7zu %7zu %10.4f\n", r.strategy.c_str(),
                o.solved ? "yes" : "no", o.iterations, o.evalStats.simulated,
                o.evalStats.cacheHits, o.evalStats.sharedHits, o.bestValue);
    if (o.iterations != o.ledger.totalBlocks()) {
      std::printf("  ^ ledger drift! %zu blocks vs %zu iterations\n",
                  o.ledger.totalBlocks(), o.iterations);
      return 1;
    }
  }
  if (const eval::SharedEvalCache* cache = scheduler.sharedCache()) {
    const auto t = cache->totals();
    std::printf("\nshared cache: %zu entries, %zu hits, %zu misses\n",
                t.entries, t.hits, t.misses);
  }
  return 0;
}
