// Sizing service client walkthrough — the code-level twin of
// `trdse submit <scenario> --socket <path>` (docs/SERVICE.md).
//
// Hosts a serve::Daemon in-process on a background thread (exactly what
// `trdse serve` runs), then drives it through the typed serve::Client: two
// tenants submit the same scenario back-to-back, the first streams per-round
// progress to completion, and the second completes warm — every evaluation
// answered by the daemon's global shared cache, zero new simulations. The
// final reports are byte-identical to what `trdse run` would print for the
// cold pass, by construction (one renderer, delta-based cache counters).
//
// Usage: sizing_service [state-dir]   (default /tmp/trdse-example)
#include <atomic>
#include <cstdio>
#include <string>
#include <thread>

#include "serve/client.hpp"
#include "serve/daemon.hpp"

using namespace trdse;

int main(int argc, char** argv) {
  const std::string dir = argc > 1 ? argv[1] : "/tmp/trdse-example";
  std::system(("rm -rf " + dir + " && mkdir -p " + dir).c_str());

  serve::DaemonConfig cfg;
  cfg.socketPath = dir + "/daemon.sock";
  cfg.stateDir = dir + "/state";
  cfg.cacheShards = 4;

  serve::Daemon daemon(cfg);
  std::thread service([&] { daemon.runUntilShutdown(); });

  const std::string scenario =
      "name = service_demo\n"
      "threads = 2\n"
      "slice = 16\n"
      "shards = 4\n"
      "[job]\n"
      "name = trm\n"
      "circuit = two_stage_opamp\n"
      "strategy = pvt_search\n"
      "seed = 1\n"
      "budget = 96\n"
      "[job]\n"
      "name = rs\n"
      "circuit = two_stage_opamp\n"
      "strategy = random_search\n"
      "seed = 2\n"
      "budget = 96\n";

  serve::Client client = serve::Client::connect(cfg.socketPath);

  serve::SubmitRequest cold;
  cold.tenant = "alice";
  cold.scenarioText = scenario;
  cold.source = "service_demo (cold)";
  bool journaled = false;
  const std::uint64_t coldId = client.submit(cold, &journaled);
  std::printf("submitted job %llu (%s)\n",
              static_cast<unsigned long long>(coldId),
              journaled ? "journaled" : "not crash-resumable");

  const serve::FinalResult coldRes =
      client.stream(coldId, [](const serve::ProgressEvent& ev) {
        std::printf("  round %zu: %zu active, %zu done, %zu sims\n", ev.round,
                    ev.jobsActive, ev.jobsDone, ev.simulated);
      });
  std::printf("--- cold report ---\n%s", coldRes.report.c_str());

  // Same scenario, different tenant: the daemon's global cache answers
  // everything — the accounting moves from `sims` to `shared`.
  serve::SubmitRequest warm = cold;
  warm.tenant = "bob";
  warm.source = "service_demo (warm)";
  const serve::FinalResult warmRes = client.stream(client.submit(warm));
  std::printf("--- warm report (bob, same scenario) ---\n%s",
              warmRes.report.c_str());

  for (const serve::JobStatus& row : client.status())
    std::printf("job %llu tenant=%-6s state=%s rounds=%zu\n",
                static_cast<unsigned long long>(row.id), row.tenant.c_str(),
                row.state.c_str(), row.rounds);

  client.shutdown();
  service.join();
  return 0;
}
