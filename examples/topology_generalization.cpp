// Topology generalization (paper Section V-E's closing claim): the identical
// agent configuration sizes two different amplifier schematics — the Miller
// two-stage opamp and the folded-cascode OTA — without any per-topology
// tuning; "generalization at the algorithm architecture level".
//
// Usage: topology_generalization [seed]
#include <cstdio>

#include "circuits/folded_cascode.hpp"
#include "circuits/two_stage_opamp.hpp"
#include "core/local_explorer.hpp"

using namespace trdse;

namespace {

template <typename Circuit>
void runOne(const char* label, const Circuit& circuit, std::uint64_t seed) {
  const auto space = Circuit::designSpace(circuit.card());
  const sim::PvtCorner tt{sim::ProcessCorner::kTT, circuit.card().nominalVdd,
                          27.0};
  const core::ValueFunction value(Circuit::measurementNames(),
                                  circuit.defaultSpecs());
  core::LocalExplorerConfig cfg;
  cfg.seed = seed;
  core::LocalExplorer agent(
      space, value,
      [&](const linalg::Vector& x) { return circuit.evaluate(x, tt); }, cfg);
  const auto out = agent.run(10000);
  std::printf("%-22s dim=%zu space=10^%.1f  solved=%d in %zu sims\n", label,
              space.dim(), space.sizeLog10(), int(out.solved), out.iterations);
  if (out.solved) {
    const auto& names = Circuit::measurementNames();
    std::printf("  ");
    for (std::size_t i = 0; i < names.size(); ++i)
      std::printf(" %s=%.4g", names[i].c_str(), out.eval.measurements[i]);
    std::printf("\n");
  }
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 1;
  runOne("two-stage opamp", circuits::TwoStageOpamp(sim::bsim45Card()), seed);
  runOne("folded-cascode OTA", circuits::FoldedCascodeOta(sim::bsim45Card()),
         seed);
  return 0;
}
