// Topology generalization (paper Section V-E's closing claim): the identical
// agent configuration sizes two different amplifier schematics — the Miller
// two-stage opamp and the folded-cascode OTA — without any per-topology
// tuning; "generalization at the algorithm architecture level".
//
// Both scenarios come from circuits::Registry by name — the loop body never
// mentions a circuit class.
//
// Usage: topology_generalization [seed]
#include <cstdio>

#include "circuits/registry.hpp"
#include "core/local_explorer.hpp"

using namespace trdse;

namespace {

void runOne(const char* circuitName, std::uint64_t seed) {
  const core::SizingProblem problem =
      circuits::Registry::global().makeProblem(circuitName);
  const sim::PvtCorner tt = problem.corners.front();
  const core::ValueFunction value(problem.measurementNames, problem.specs);
  core::LocalExplorerConfig cfg;
  cfg.seed = seed;
  core::LocalExplorer agent(
      problem.space, value,
      [&](const linalg::Vector& x) { return problem.evaluate(x, tt); }, cfg);
  const auto out = agent.run(10000);
  std::printf("%-22s dim=%zu space=10^%.1f  solved=%d in %zu sims\n",
              circuitName, problem.space.dim(), problem.space.sizeLog10(),
              int(out.solved), out.iterations);
  if (out.solved) {
    std::printf("  ");
    for (std::size_t i = 0; i < problem.measurementNames.size(); ++i)
      std::printf(" %s=%.4g", problem.measurementNames[i].c_str(),
                  out.eval.measurements[i]);
    std::printf("\n");
  }
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 1;
  runOne("two_stage_opamp", seed);
  runOne("folded_cascode", seed);
  return 0;
}
