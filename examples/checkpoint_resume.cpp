// Checkpoint save -> resume demonstration (and the CI smoke test for the
// src/io subsystem).
//
// Runs the same multi-corner sizing session twice:
//   1. uninterrupted, to completion;
//   2. interrupted at half the budget, snapshotted to a .ckpt file,
//      restored into a *fresh* session (as a new process would), and
//      continued to the same budget.
// Then verifies the determinism contract of docs/CHECKPOINTS.md: both paths
// must produce the identical report — same solved flag, same simulation
// count, bitwise-identical sizes, identical EDA-block ledger. Exits non-zero
// on any mismatch, so CI can gate on it.
//
// Usage: checkpoint_resume [checkpoint-path]
#include <cstdio>
#include <exception>
#include <string>

#include "core/sizing_api.hpp"
#include "io/checkpoint.hpp"

using namespace trdse;

namespace {

/// The quickstart synthetic, hardened with a hot corner so the progressive
/// pool has real multi-corner state to checkpoint.
core::SizingProblem makeProblem() {
  core::SizingProblem problem;
  problem.name = "checkpoint_resume_synthetic";
  problem.space = core::DesignSpace({
      {"x", 0.0, 1.0, 101, false},
      {"y", 0.0, 1.0, 101, false},
      {"z", 0.1, 1.0, 91, false},
  });
  problem.measurementNames = {"gain", "power", "speed"};
  problem.specs = {
      {"gain", core::SpecKind::kAtLeast, 78.9},
      {"power", core::SpecKind::kAtMost, 1.62},
      {"speed", core::SpecKind::kAtLeast, 13.6},
  };
  problem.corners = {{sim::ProcessCorner::kTT, 1.0, 27.0},
                     {sim::ProcessCorner::kSS, 0.95, 125.0},
                     {sim::ProcessCorner::kFF, 1.05, -40.0}};
  problem.evaluate = [](const linalg::Vector& v, const sim::PvtCorner& c) {
    core::EvalResult r;
    r.ok = true;
    const double x = v[0];
    const double y = v[1];
    const double z = v[2];
    const double derate = c.tempC > 100.0 ? 0.99 : 1.0;
    r.measurements = {derate * (80.0 - 30.0 * (x - 0.6) * (x - 0.6) -
                                20.0 * (y - 0.4) * (y - 0.4)),
                      2.0 * x + y + 0.2 * z, derate * 50.0 * x * z};
    return r;
  };
  return problem;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string path = argc > 1 ? argv[1] : "resume_demo.ckpt";
  constexpr std::size_t kBudget = 2000;
  try {
    core::SessionOptions options;
    options.maxSimulations = kBudget;
    options.seed = 7;

    // ---- Reference: the uninterrupted run.
    core::SizingSession uninterrupted(makeProblem(), options);
    const core::SessionReport full = uninterrupted.run();
    std::printf("uninterrupted: solved=%d simulations=%zu simulated-blocks=%zu\n",
                int(full.solved), full.simulations, full.evalStats.simulated);

    // ---- Interrupted run: half the budget, then snapshot.
    core::SessionOptions half = options;
    half.maxSimulations = full.simulations / 2;
    core::SizingSession interrupted(makeProblem(), half);
    const core::SessionReport partial = interrupted.run();
    interrupted.save(path);
    std::printf("interrupted at %zu simulations, state saved to %s\n",
                partial.simulations, path.c_str());

    // ---- Fresh session (a new process would do exactly this), resumed.
    core::SizingSession resumed(makeProblem(), options);
    resumed.resume(path);
    const core::SessionReport continued = resumed.run();
    std::printf("resumed:       solved=%d simulations=%zu simulated-blocks=%zu\n",
                int(continued.solved), continued.simulations,
                continued.evalStats.simulated);

    // ---- The contract: bitwise-equal outcome and ledger.
    bool ok = full.solved == continued.solved &&
              full.simulations == continued.simulations &&
              full.sizes == continued.sizes &&
              full.summary == continued.summary &&
              full.ledger.totalBlocks() == continued.ledger.totalBlocks();
    if (ok) {
      for (std::size_t i = 0; i < full.ledger.totalBlocks(); ++i) {
        const pvt::EdaBlock& a = full.ledger.blocks()[i];
        const pvt::EdaBlock& b = continued.ledger.blocks()[i];
        if (a.cornerIndex != b.cornerIndex || a.kind != b.kind ||
            a.meetsSpec != b.meetsSpec || a.cached != b.cached) {
          ok = false;
          break;
        }
      }
    }
    std::printf("resume contract: %s\n",
                ok ? "bitwise identical" : "MISMATCH");
    return ok ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "checkpoint_resume failed: %s\n", e.what());
    return 1;
  }
}
