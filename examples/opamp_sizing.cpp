// Size the BSIM-45nm two-stage opamp with the trust-region model-based agent
// (paper Section V-B) and print the found design with its measurements.
//
// Usage: opamp_sizing [seed] [budget]
#include <cstdio>
#include <cstdlib>

#include "circuits/two_stage_opamp.hpp"
#include "core/local_explorer.hpp"

using namespace trdse;

int main(int argc, char** argv) {
  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 1;
  const std::size_t budget =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 10000;

  const sim::ProcessCard& card = sim::bsim45Card();
  const circuits::TwoStageOpamp amp(card);
  const core::DesignSpace space = circuits::TwoStageOpamp::designSpace(card);
  const sim::PvtCorner tt{sim::ProcessCorner::kTT, card.nominalVdd, 27.0};

  std::printf("two-stage opamp on %s | design space 10^%.1f | specs:\n",
              card.name.c_str(), space.sizeLog10());
  for (const auto& s : amp.defaultSpecs())
    std::printf("  %s %s %g\n", s.measurement.c_str(),
                s.kind == core::SpecKind::kAtLeast ? ">=" : "<=", s.limit);

  core::ValueFunction value(circuits::TwoStageOpamp::measurementNames(),
                            amp.defaultSpecs());
  core::LocalExplorerConfig cfg;
  cfg.seed = seed;
  core::LocalExplorer agent(
      space, value,
      [&](const linalg::Vector& x) { return amp.evaluate(x, tt); }, cfg);

  const core::SearchOutcome out = agent.run(budget);
  std::printf("solved: %s in %zu SPICE simulations (%zu restarts, %zu accepted "
              "/ %zu rejected TRM steps)\n",
              out.solved ? "yes" : "no", out.iterations, out.trace.restarts,
              out.trace.acceptedSteps, out.trace.rejectedSteps);
  if (out.solved) {
    const auto& names = circuits::TwoStageOpamp::measurementNames();
    for (std::size_t i = 0; i < names.size(); ++i)
      std::printf("  %-10s = %.4g\n", names[i].c_str(), out.eval.measurements[i]);
    for (std::size_t i = 0; i < out.sizes.size(); ++i)
      std::printf("  %-6s = %.4g\n", space.param(i).name.c_str(), out.sizes[i]);
    std::printf("  area ~ %.1f um^2\n", amp.area(out.sizes));
  }
  return out.solved ? 0 : 1;
}
