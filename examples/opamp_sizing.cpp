// Size the BSIM-45nm two-stage opamp with the trust-region model-based agent
// (paper Section V-B) and print the found design with its measurements.
//
// The scenario comes from circuits::Registry by name; every evaluation runs
// through the memoizing eval engine (revisited grid points cost zero EDA
// blocks).
//
// Usage: opamp_sizing [seed] [budget]
#include <cstdio>
#include <cstdlib>

#include "circuits/registry.hpp"
#include "core/local_explorer.hpp"

using namespace trdse;

int main(int argc, char** argv) {
  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 1;
  const std::size_t budget =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 10000;

  const core::SizingProblem problem =
      circuits::Registry::global().makeProblem("two_stage_opamp");
  const sim::PvtCorner tt = problem.corners.front();

  std::printf("%s | design space 10^%.1f | specs:\n", problem.name.c_str(),
              problem.space.sizeLog10());
  for (const auto& s : problem.specs)
    std::printf("  %s %s %g\n", s.measurement.c_str(),
                s.kind == core::SpecKind::kAtLeast ? ">=" : "<=", s.limit);

  core::ValueFunction value(problem.measurementNames, problem.specs);
  core::LocalExplorerConfig cfg;
  cfg.seed = seed;
  core::LocalExplorer agent(
      problem.space, value,
      [&](const linalg::Vector& x) { return problem.evaluate(x, tt); }, cfg);

  const core::SearchOutcome out = agent.run(budget);
  std::printf("solved: %s in %zu SPICE requests (%zu simulated, %zu cache "
              "hits; %zu restarts, %zu accepted / %zu rejected TRM steps)\n",
              out.solved ? "yes" : "no", out.iterations,
              out.evalStats.simulated, out.evalStats.cacheHits,
              out.trace.restarts, out.trace.acceptedSteps,
              out.trace.rejectedSteps);
  if (out.solved) {
    for (std::size_t i = 0; i < problem.measurementNames.size(); ++i)
      std::printf("  %-10s = %.4g\n", problem.measurementNames[i].c_str(),
                  out.eval.measurements[i]);
    for (std::size_t i = 0; i < out.sizes.size(); ++i)
      std::printf("  %-6s = %.4g\n", problem.space.param(i).name.c_str(),
                  out.sizes[i]);
    if (problem.area)
      std::printf("  area ~ %.1f um^2\n", problem.area(out.sizes));
  }
  return out.solved ? 0 : 1;
}
