// The two industrial-style cases (paper Section V-E): an LDO on the
// synthetic n6 card (Table IV) and a current-controlled oscillator on the
// synthetic n5 card (Table V), both solved through the designer-facing
// session API and compared against the hand "human" reference design.
//
// Usage: industrial_cases [seed]
#include <cstdio>

#include "circuits/ico.hpp"
#include "circuits/ldo.hpp"
#include "core/sizing_api.hpp"

using namespace trdse;

namespace {

void printRow(const char* who, const linalg::Vector& meas,
              const std::vector<std::string>& names) {
  std::printf("  %-8s", who);
  for (std::size_t i = 0; i < names.size(); ++i)
    std::printf(" %s=%.4g", names[i].c_str(), meas[i]);
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 1;

  // ---- Case 1: LDO on n6 (multi-corner sign-off).
  {
    const circuits::Ldo ldo(sim::n6Card());
    const std::vector<sim::PvtCorner> corners = {
        {sim::ProcessCorner::kTT, 0.75, 27.0},
        {sim::ProcessCorner::kSS, 0.70, 125.0},
        {sim::ProcessCorner::kFF, 0.80, -40.0},
    };
    std::printf("== LDO on n6 (space 10^%.1f, %zu corners) ==\n",
                circuits::Ldo::designSpace(sim::n6Card()).sizeLog10(),
                corners.size());
    const auto human = circuits::Ldo::humanReferenceSizing();
    const auto humanEval = ldo.evaluate(human, corners.front());
    if (humanEval.ok)
      printRow("human", humanEval.measurements, circuits::Ldo::measurementNames());

    core::SessionOptions options;
    options.seed = seed;
    options.maxSimulations = 20000;
    core::SizingSession session(ldo.makeProblem(corners, ldo.defaultSpecs()),
                                options);
    const auto report = session.run();
    std::printf("  agent solved=%d in %zu EDA blocks\n", int(report.solved),
                report.simulations);
    if (report.solved)
      printRow("agent", report.cornerEvals.front().measurements,
               circuits::Ldo::measurementNames());
  }

  // ---- Case 2: ICO on n5 (single corner, small space).
  {
    const circuits::Ico ico(sim::n5Card());
    const std::vector<sim::PvtCorner> corners = {
        {sim::ProcessCorner::kTT, 0.70, 27.0}};
    std::printf("== ICO on n5 (space 20^4) ==\n");
    const auto human = circuits::Ico::humanReferenceSizing();
    const auto humanEval = ico.evaluate(human, corners.front());
    if (humanEval.ok)
      printRow("human", humanEval.measurements, circuits::Ico::measurementNames());

    core::SessionOptions options;
    options.seed = seed;
    options.maxSimulations = 2000;
    core::SizingSession session(ico.makeProblem(corners, ico.defaultSpecs()),
                                options);
    const auto report = session.run();
    std::printf("  agent solved=%d in %zu EDA blocks\n", int(report.solved),
                report.simulations);
    if (report.solved)
      printRow("agent", report.cornerEvals.front().measurements,
               circuits::Ico::measurementNames());
  }
  return 0;
}
