// The two industrial-style cases (paper Section V-E): an LDO on the
// synthetic n6 card (Table IV) and a current-controlled oscillator on the
// synthetic n5 card (Table V), both solved through the designer-facing
// session API and compared against the hand "human" reference design.
//
// Scenarios come from circuits::Registry by name (the circuit headers are
// only needed for the static human-reference sizings).
//
// Usage: industrial_cases [seed]
#include <cstdio>

#include "circuits/ico.hpp"
#include "circuits/ldo.hpp"
#include "circuits/registry.hpp"
#include "core/sizing_api.hpp"

using namespace trdse;

namespace {

void printRow(const char* who, const linalg::Vector& meas,
              const std::vector<std::string>& names) {
  std::printf("  %-8s", who);
  for (std::size_t i = 0; i < names.size(); ++i)
    std::printf(" %s=%.4g", names[i].c_str(), meas[i]);
  std::printf("\n");
}

void runCase(const char* circuitName, std::vector<sim::PvtCorner> corners,
             const linalg::Vector& humanSizing, std::uint64_t seed,
             std::size_t budget) {
  const core::SizingProblem problem =
      circuits::Registry::global().makeProblem(circuitName, corners);
  std::printf("== %s (space 10^%.1f, %zu corners) ==\n", problem.name.c_str(),
              problem.space.sizeLog10(), problem.corners.size());

  const auto humanEval = problem.evaluate(humanSizing, problem.corners.front());
  if (humanEval.ok)
    printRow("human", humanEval.measurements, problem.measurementNames);

  core::SessionOptions options;
  options.seed = seed;
  options.maxSimulations = budget;
  core::SizingSession session(problem, options);
  const auto report = session.run();
  std::printf("  agent solved=%d in %zu requests (%zu simulated, %zu cached)\n",
              int(report.solved), report.simulations,
              report.evalStats.simulated, report.evalStats.cacheHits);
  if (report.solved)
    printRow("agent", report.cornerEvals.front().measurements,
             problem.measurementNames);
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 1;

  // ---- Case 1: LDO on n6 (multi-corner sign-off, Table IV).
  runCase("ldo",
          {{sim::ProcessCorner::kTT, 0.75, 27.0},
           {sim::ProcessCorner::kSS, 0.70, 125.0},
           {sim::ProcessCorner::kFF, 0.80, -40.0}},
          circuits::Ldo::humanReferenceSizing(), seed, 20000);

  // ---- Case 2: ICO on n5 (single corner, small space, Table V).
  runCase("ico", {{sim::ProcessCorner::kTT, 0.70, 27.0}},
          circuits::Ico::humanReferenceSizing(), seed, 2000);
  return 0;
}
