// Command-line netlist runner: parse a SPICE-style netlist from a file (or
// stdin), solve the DC operating point, and optionally sweep AC or noise at
// a named output node — a minimal "decorated SPICE" front door.
//
// Usage:
//   netlist_tool <file|-> [--card bsim45] [--corner TT|FF|SS|FS|SF]
//                [--vdd <V>] [--temp <C>] [--ac <outNode>] [--noise <outNode>]
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>

#include "sim/ac.hpp"
#include "sim/dc.hpp"
#include "sim/netlist_io.hpp"
#include "sim/noise.hpp"

using namespace trdse;

namespace {

sim::ProcessCorner parseCorner(const std::string& s) {
  if (s == "FF") return sim::ProcessCorner::kFF;
  if (s == "SS") return sim::ProcessCorner::kSS;
  if (s == "FS") return sim::ProcessCorner::kFS;
  if (s == "SF") return sim::ProcessCorner::kSF;
  return sim::ProcessCorner::kTT;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: netlist_tool <file|-> [--card NAME] [--corner TT] "
                 "[--vdd V] [--temp C] [--ac NODE] [--noise NODE]\n");
    return 2;
  }

  std::string cardName = "bsim45";
  sim::PvtCorner corner{sim::ProcessCorner::kTT, 1.1, 27.0};
  std::string acNode;
  std::string noiseNode;
  for (int i = 2; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> const char* { return i + 1 < argc ? argv[++i] : ""; };
    if (a == "--card") cardName = next();
    else if (a == "--corner") corner.corner = parseCorner(next());
    else if (a == "--vdd") corner.vdd = std::atof(next());
    else if (a == "--temp") corner.tempC = std::atof(next());
    else if (a == "--ac") acNode = next();
    else if (a == "--noise") noiseNode = next();
  }

  std::string text;
  if (std::strcmp(argv[1], "-") == 0) {
    std::ostringstream buf;
    buf << std::cin.rdbuf();
    text = buf.str();
  } else {
    std::ifstream in(argv[1]);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", argv[1]);
      return 2;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    text = buf.str();
  }

  const auto parsed = sim::parseNetlist(text, sim::cardByName(cardName), corner);
  if (!parsed.netlist.has_value()) {
    std::fprintf(stderr, "parse error, line %zu: %s\n", parsed.error.line,
                 parsed.error.message.c_str());
    return 1;
  }
  const sim::Netlist& nl = *parsed.netlist;
  std::printf("* card=%s corner=%s nodes=%zu devices: R=%zu C=%zu L=%zu M=%zu "
              "D=%zu V=%zu I=%zu\n",
              cardName.c_str(), corner.name().c_str(), nl.nodeCount(),
              nl.resistors().size(), nl.capacitors().size(),
              nl.inductors().size(), nl.mosfets().size(), nl.diodes().size(),
              nl.vsources().size(), nl.isources().size());

  const sim::DcResult op = sim::DcSolver(nl).solve();
  if (!op.converged) {
    std::fprintf(stderr, "DC operating point did not converge\n");
    return 1;
  }
  std::printf("* DC operating point (%d Newton iterations)\n", op.iterations);
  for (std::size_t n = 1; n < nl.nodeCount(); ++n)
    std::printf("  v(%zu) = %.6g\n", n, op.v[n]);
  for (std::size_t k = 0; k < nl.vsources().size(); ++k)
    std::printf("  i(V%zu) = %.6g\n", k, op.vsourceCurrent(k));

  if (!acNode.empty()) {
    const sim::NodeId out = nl.findNode(acNode);
    if (out < 0) {
      std::fprintf(stderr, "unknown AC node %s\n", acNode.c_str());
      return 1;
    }
    const sim::AcSolver ac(nl, op);
    std::printf("* AC sweep at node %s\n  %-12s %-12s %-10s\n", acNode.c_str(),
                "freq", "mag_db", "phase_deg");
    const auto freqs = sim::AcSolver::logSpace(1.0, 10e9, 41);
    const auto h = ac.sweep(freqs, out);
    const auto phase = sim::unwrappedPhaseDeg(h);
    for (std::size_t i = 0; i < freqs.size(); ++i)
      std::printf("  %-12.4g %-12.3f %-10.2f\n", freqs[i],
                  sim::magnitudeDb(h[i]), phase[i]);
  }

  if (!noiseNode.empty()) {
    const sim::NodeId out = nl.findNode(noiseNode);
    if (out < 0) {
      std::fprintf(stderr, "unknown noise node %s\n", noiseNode.c_str());
      return 1;
    }
    const sim::NoiseAnalyzer noise(nl, op);
    const auto freqs = sim::AcSolver::logSpace(10.0, 1e9, 17);
    const auto r = noise.outputNoise(freqs, out);
    std::printf("* output noise at node %s\n  %-12s %-14s\n", noiseNode.c_str(),
                "freq", "psd [V^2/Hz]");
    for (std::size_t i = 0; i < freqs.size(); ++i)
      std::printf("  %-12.4g %-14.4g\n", freqs[i], r.outputPsd[i]);
    std::printf("  integrated rms over band: %.4g V\n", r.integratedRms);
  }
  return 0;
}
