// Monte Carlo mismatch / yield analysis of an AI-sized opamp.
//
// The paper's discussion raises AI-safety screening of machine-sized
// circuits; a quantitative screen a designer actually runs is MC yield under
// local device mismatch. This example sizes the 45nm opamp with the
// trust-region agent, then estimates spec yield under Pelgrom mismatch and
// compares against a margin-seeking re-run (tightened specs), showing how a
// designer would harden an AI design.
//
// Usage: yield_analysis [seed] [mcRuns]
#include <cstdio>
#include <optional>
#include <random>

#include "circuits/registry.hpp"
#include "circuits/two_stage_opamp.hpp"
#include "common/thread_pool.hpp"
#include "core/local_explorer.hpp"
#include "sim/dc.hpp"
#include "sim/mismatch.hpp"

using namespace trdse;

namespace {

/// Mismatch introduces an input offset which the open-loop testbench
/// amplifies into the rails, so each MC sample first *nulls* the offset —
/// exactly what a designer's offset-corrected AC testbench does: adjust the
/// inverting input by the measured output error over the DC gain until the
/// output sits near mid-supply, then measure.
bool nullOffsetAndMeasure(circuits::TwoStageOpamp::Testbench& tb,
                          core::EvalResult& out) {
  const double target = 0.5 * tb.vdd;
  auto voutAt = [&](double vinn) -> std::optional<double> {
    tb.netlist.vsources()[tb.innSource].vdc = vinn;
    const sim::DcResult op = sim::DcSolver(tb.netlist).solve(&tb.initialGuess);
    if (!op.converged) return std::nullopt;
    return op.nodeVoltage(tb.out);
  };

  // Bracket the offset on a coarse scan (+-60 mV around the common mode —
  // several sigma of Pelgrom offset), then bisect. vout rises with vinn
  // through the mirror path, but bisection only needs the bracket signs.
  const double vcm = tb.netlist.vsources()[tb.inpSource].vdc;
  double lo = vcm - 0.06;
  double hi = vcm + 0.06;
  auto fLo = voutAt(lo);
  auto fHi = voutAt(hi);
  if (!fLo || !fHi) return false;
  if ((*fLo - target) * (*fHi - target) > 0.0) return false;  // offset > 60 mV
  const bool rising = *fHi > *fLo;
  for (int iter = 0; iter < 18; ++iter) {
    const double mid = 0.5 * (lo + hi);
    const auto fMid = voutAt(mid);
    if (!fMid) return false;
    if (std::abs(*fMid - target) < 0.03 * tb.vdd) {
      out = circuits::TwoStageOpamp::measure(tb);
      return out.ok;
    }
    if ((*fMid > target) == rising) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  return false;
}

/// MC samples are independent, so they fan out across the pool. Each sample
/// derives its own RNG stream from (seed, index) — the yield estimate is the
/// same for any thread count, including 1.
double mcYield(common::ThreadPool& pool, const circuits::TwoStageOpamp& amp,
               const core::ValueFunction& specCheck, const linalg::Vector& sizes,
               const sim::PvtCorner& corner, int runs, std::uint64_t seed) {
  std::vector<char> passed(static_cast<std::size_t>(runs), 0);
  pool.parallelFor(static_cast<std::size_t>(runs), [&](std::size_t i) {
    std::mt19937_64 rng(common::perTaskSeed(seed, i));
    auto tb = amp.buildTestbench(sizes, corner);
    sim::applyMismatch(tb.netlist, {}, rng);
    core::EvalResult r;
    if (nullOffsetAndMeasure(tb, r) && specCheck.satisfied(r.measurements))
      passed[i] = 1;
  });
  int pass = 0;
  for (char p : passed) pass += p;
  return 100.0 * pass / runs;
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 1;
  const int mcRuns = argc > 2 ? std::atoi(argv[2]) : 200;

  // Scenario shape (space, specs, measurement names) from the registry; the
  // TwoStageOpamp instance stays only for testbench-level mismatch injection,
  // which no black-box evaluator can expose.
  const core::SizingProblem scenario =
      circuits::Registry::global().makeProblem("two_stage_opamp");
  const sim::ProcessCard& card = sim::bsim45Card();
  const circuits::TwoStageOpamp amp(card);
  const core::DesignSpace& space = scenario.space;
  const sim::PvtCorner tt = scenario.corners.front();
  const auto& specs = scenario.specs;
  const core::ValueFunction specCheck(scenario.measurementNames, specs);

  // All measurements in this example — sizing and MC alike — go through the
  // offset-nulled testbench, so the search optimizes exactly what the Monte
  // Carlo later judges (searching on the raw testbench and verifying on the
  // nulled one would conflate systematic-offset drift with mismatch).
  auto evalNulled = [&](const linalg::Vector& x) {
    auto tb = amp.buildTestbench(x, tt);
    core::EvalResult r;
    if (!nullOffsetAndMeasure(tb, r)) return core::EvalResult{};
    return r;
  };

  // 1) Plain CSP solution: lands exactly on the spec boundary.
  core::LocalExplorerConfig cfg;
  cfg.seed = seed;
  core::LocalExplorer agent(space, specCheck, evalNulled, cfg);
  const auto boundary = agent.run(10000);
  if (!boundary.solved) {
    std::printf("search failed\n");
    return 1;
  }
  std::printf("boundary design found in %zu sims (%zu simulated, %zu cached)\n",
              boundary.iterations, boundary.evalStats.simulated,
              boundary.evalStats.cacheHits);

  // 2) Margin-hardened solution: re-run against tightened specs.
  std::vector<core::Spec> hardened = specs;
  for (auto& s : hardened) {
    if (s.kind == core::SpecKind::kAtLeast)
      s.limit *= (s.measurement == "pm_deg") ? 1.05 : 1.08;
    else
      s.limit *= 0.9;
  }
  const core::ValueFunction hardenedValue(scenario.measurementNames, hardened);
  core::LocalExplorerConfig cfg2;
  cfg2.seed = seed + 1;
  core::LocalExplorer agent2(space, hardenedValue, evalNulled, cfg2);
  const auto margin = agent2.run(10000);
  if (!margin.solved) {
    std::printf("hardened search failed within budget; increase it\n");
    return 1;
  }
  std::printf("hardened design found in %zu sims\n", margin.iterations);

  // 3) MC yield of both, judged against the *original* specs. Samples run
  // thread-parallel with per-sample RNG streams (thread-count invariant).
  common::ThreadPool pool(/*threads=*/0);  // hardware concurrency
  const double yBoundary =
      mcYield(pool, amp, specCheck, boundary.sizes, tt, mcRuns, seed + 1000);
  const double yMargin =
      mcYield(pool, amp, specCheck, margin.sizes, tt, mcRuns, seed + 2000);
  std::printf("\nMonte Carlo mismatch yield (%d runs, Pelgrom Avt=3.5mV*um):\n",
              mcRuns);
  std::printf("  boundary design: %5.1f %%\n", yBoundary);
  std::printf("  hardened design: %5.1f %%  (searched with ~8%% spec margin)\n",
              yMargin);
  return 0;
}
