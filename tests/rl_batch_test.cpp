// Parity and determinism tests for the batched multi-env RL training engine:
// the segment softmax kernels, the row-batched joint log-prob/entropy/KL
// helpers, per-sample vs batched A2C/PPO/TRPO updates (asserted *bitwise*
// with EXPECT_EQ, not within a tolerance), end-to-end trainer parity, and
// thread-count invariance of parallel rollout collection.
#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "nn/distribution.hpp"
#include "rl/a2c.hpp"
#include "rl/actor_critic.hpp"
#include "rl/ppo.hpp"
#include "rl/rollout.hpp"
#include "rl/trpo.hpp"
#include "rl/vec_env.hpp"

namespace trdse::rl {
namespace {

using linalg::Matrix;
using linalg::Vector;

constexpr std::size_t kApH = SizingEnv::kActionsPerHead;

Matrix randomLogits(std::size_t rows, std::size_t cols, std::mt19937_64& rng) {
  std::uniform_real_distribution<double> d(-2.5, 2.5);
  Matrix m(rows, cols);
  for (std::size_t i = 0; i < m.size(); ++i) m.data()[i] = d(rng);
  return m;
}

// ---------- distribution / actor-critic batched kernels ----------

TEST(DistributionBatch, SegmentOpsMatchScalarBitwise) {
  std::mt19937_64 rng(3);
  const std::size_t heads = 5;
  const Matrix logits = randomLogits(17, heads * kApH, rng);
  Matrix sm, lsm;
  nn::softmaxSegments(logits, kApH, sm);
  nn::logSoftmaxSegments(logits, kApH, lsm);
  for (std::size_t r = 0; r < logits.rows(); ++r) {
    for (std::size_t h = 0; h < heads; ++h) {
      Vector hl(logits.row(r) + h * kApH, logits.row(r) + (h + 1) * kApH);
      const Vector p = nn::softmax(hl);
      const Vector lp = nn::logSoftmax(hl);
      for (std::size_t a = 0; a < kApH; ++a) {
        EXPECT_EQ(sm(r, h * kApH + a), p[a]);
        EXPECT_EQ(lsm(r, h * kApH + a), lp[a]);
      }
    }
  }
}

TEST(ActorCriticBatch, JointRowOpsMatchScalarBitwise) {
  std::mt19937_64 rng(7);
  const std::size_t heads = 4;
  const std::size_t n = 23;
  const Matrix logits = randomLogits(n, heads * kApH, rng);
  const Matrix oldLogits = randomLogits(n, heads * kApH, rng);
  std::uniform_int_distribution<std::size_t> act(0, kApH - 1);
  std::vector<std::vector<std::size_t>> actions(n);
  for (auto& a : actions) {
    a.resize(heads);
    for (auto& v : a) v = act(rng);
  }

  const Vector lps = jointLogProbRows(logits, actions, kApH);
  Matrix lpg, entg, klg;
  jointLogProbGradRows(logits, actions, kApH, lpg);
  jointEntropyGradRows(logits, kApH, entg);
  jointKlGradRows(oldLogits, logits, kApH, klg);
  const double klSum = sumJointKlRows(oldLogits, logits, kApH);

  double refKlSum = 0.0;
  for (std::size_t r = 0; r < n; ++r) {
    const Vector row(logits.row(r), logits.row(r) + logits.cols());
    const Vector oldRow(oldLogits.row(r), oldLogits.row(r) + logits.cols());
    EXPECT_EQ(lps[r], jointLogProb(row, actions[r], kApH));
    const Vector g = jointLogProbGrad(row, actions[r], kApH);
    const Vector eg = jointEntropyGrad(row, kApH);
    const Vector kg = jointKlGrad(oldRow, row, kApH);
    for (std::size_t j = 0; j < g.size(); ++j) {
      EXPECT_EQ(lpg(r, j), g[j]);
      EXPECT_EQ(entg(r, j), eg[j]);
      EXPECT_EQ(klg(r, j), kg[j]);
    }
    refKlSum += jointKl(oldRow, row, kApH);
  }
  EXPECT_EQ(klSum, refKlSum);
}

// ---------- update parity: per-sample vs batched, bitwise ----------

/// Synthetic flattened rollout with the statistics the updates expect
/// (normalized advantages, behavior log-probs near the policy's own).
FlatRollout syntheticRollout(std::size_t n, std::size_t obsDim,
                             std::size_t heads, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> d(-1.0, 1.0);
  std::uniform_int_distribution<std::size_t> act(0, kApH - 1);
  FlatRollout f;
  f.observations.resize(n, obsDim);
  for (std::size_t i = 0; i < f.observations.size(); ++i)
    f.observations.data()[i] = d(rng);
  f.actions.resize(n);
  for (auto& a : f.actions) {
    a.resize(heads);
    for (auto& v : a) v = act(rng);
  }
  f.logProbs.resize(n);
  f.advantages.resize(n);
  f.returns.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    f.logProbs[i] =
        -1.0986 * static_cast<double>(heads) + 0.1 * d(rng);  // ~uniform
    f.advantages[i] = d(rng);
    f.returns[i] = 2.0 * d(rng);
  }
  normalizeAdvantages(f.advantages);
  return f;
}

void expectParamsBitwiseEqual(const nn::Mlp& a, const nn::Mlp& b) {
  const Vector pa = a.getParameters();
  const Vector pb = b.getParameters();
  ASSERT_EQ(pa.size(), pb.size());
  for (std::size_t i = 0; i < pa.size(); ++i) EXPECT_EQ(pa[i], pb[i]);
}

TEST(RlUpdateParity, A2cBatchedMatchesPerSampleBitwise) {
  const std::size_t heads = 6;
  const std::size_t obsDim = 14;
  A2cConfig cfg;
  cfg.hidden = 32;
  const FlatRollout data = syntheticRollout(48, obsDim, heads, 101);

  nn::Mlp policyA = makePolicyNet(obsDim, heads, kApH, cfg.hidden, 5);
  nn::Mlp policyB = makePolicyNet(obsDim, heads, kApH, cfg.hidden, 5);
  nn::Mlp criticA = makeValueNet(obsDim, cfg.hidden, 6);
  nn::Mlp criticB = makeValueNet(obsDim, cfg.hidden, 6);
  nn::AdamOptimizer poA(cfg.learningRate), poB(cfg.learningRate);
  nn::AdamOptimizer coA(cfg.valueLearningRate), coB(cfg.valueLearningRate);

  for (int step = 0; step < 4; ++step) {
    a2cUpdatePerSample(policyA, criticA, poA, coA, data, cfg);
    a2cUpdateBatched(policyB, criticB, poB, coB, data, cfg);
  }
  expectParamsBitwiseEqual(policyA, policyB);
  expectParamsBitwiseEqual(criticA, criticB);
}

TEST(RlUpdateParity, PpoBatchedMatchesPerSampleBitwise) {
  const std::size_t heads = 5;
  const std::size_t obsDim = 12;
  PpoConfig cfg;
  cfg.hidden = 32;
  cfg.epochs = 3;
  cfg.minibatch = 16;
  // 70 % 16 != 0: exercises the ragged final mini-batch.
  const FlatRollout data = syntheticRollout(70, obsDim, heads, 202);

  nn::Mlp policyA = makePolicyNet(obsDim, heads, kApH, cfg.hidden, 9);
  nn::Mlp policyB = makePolicyNet(obsDim, heads, kApH, cfg.hidden, 9);
  nn::Mlp criticA = makeValueNet(obsDim, cfg.hidden, 10);
  nn::Mlp criticB = makeValueNet(obsDim, cfg.hidden, 10);
  nn::AdamOptimizer poA(cfg.learningRate), poB(cfg.learningRate);
  nn::AdamOptimizer coA(cfg.valueLearningRate), coB(cfg.valueLearningRate);
  std::mt19937_64 rngA(55);
  std::mt19937_64 rngB(55);

  for (int round = 0; round < 2; ++round) {
    ppoUpdatePerSample(policyA, criticA, poA, coA, data, cfg, rngA);
    ppoUpdateBatched(policyB, criticB, poB, coB, data, cfg, rngB);
  }
  EXPECT_EQ(rngA, rngB);  // both paths consumed the shuffle stream equally
  expectParamsBitwiseEqual(policyA, policyB);
  expectParamsBitwiseEqual(criticA, criticB);
}

TEST(RlUpdateParity, TrpoBatchedMatchesPerSampleBitwise) {
  const std::size_t heads = 4;
  const std::size_t obsDim = 10;
  TrpoConfig cfg;
  cfg.hidden = 24;
  const FlatRollout data = syntheticRollout(64, obsDim, heads, 303);

  nn::Mlp policyA = makePolicyNet(obsDim, heads, kApH, cfg.hidden, 13);
  nn::Mlp policyB = makePolicyNet(obsDim, heads, kApH, cfg.hidden, 13);
  nn::Mlp criticA = makeValueNet(obsDim, cfg.hidden, 14);
  nn::Mlp criticB = makeValueNet(obsDim, cfg.hidden, 14);
  nn::AdamOptimizer coA(cfg.valueLearningRate), coB(cfg.valueLearningRate);

  for (int round = 0; round < 2; ++round) {
    const bool accA = trpoUpdate(policyA, criticA, coA, data, cfg, false);
    const bool accB = trpoUpdate(policyB, criticB, coB, data, cfg, true);
    EXPECT_EQ(accA, accB);
  }
  expectParamsBitwiseEqual(policyA, policyB);
  expectParamsBitwiseEqual(criticA, criticB);
}

// ---------- end-to-end trainer parity ----------

/// 1-D toy problem: feasible band around x = 0.8.
core::SizingProblem bandProblem() {
  core::SizingProblem p;
  p.name = "band";
  p.space = core::DesignSpace({{"x", 0.0, 1.0, 65, false}});
  p.measurementNames = {"closeness"};
  p.specs = {{"closeness", core::SpecKind::kAtLeast, 0.93}};
  p.corners = {{sim::ProcessCorner::kTT, 1.0, 27.0}};
  p.evaluate = [](const Vector& v, const sim::PvtCorner&) {
    core::EvalResult r;
    r.ok = true;
    r.measurements = {1.0 - std::abs(v[0] - 0.8)};
    return r;
  };
  return p;
}

void expectOutcomesEqual(const RlTrainOutcome& a, const RlTrainOutcome& b) {
  EXPECT_EQ(a.solved, b.solved);
  EXPECT_EQ(a.totalSimulations, b.totalSimulations);
  EXPECT_EQ(a.simulationsToSolve, b.simulationsToSolve);
  EXPECT_EQ(a.bestEpisodeReturn, b.bestEpisodeReturn);
}

TEST(TrainerParity, SeededRunsAreIdenticalAcrossUpdatePaths) {
  const auto prob = bandProblem();
  {
    A2cConfig a, b;
    a.seed = b.seed = 3;
    a.env.episodeLength = b.env.episodeLength = 20;
    a.batchedTraining = false;
    b.batchedTraining = true;
    expectOutcomesEqual(trainA2c(prob, a, 500), trainA2c(prob, b, 500));
  }
  {
    PpoConfig a, b;
    a.seed = b.seed = 3;
    a.horizon = b.horizon = 48;
    a.env.episodeLength = b.env.episodeLength = 20;
    a.batchedTraining = false;
    b.batchedTraining = true;
    expectOutcomesEqual(trainPpo(prob, a, 500), trainPpo(prob, b, 500));
  }
  {
    TrpoConfig a, b;
    a.seed = b.seed = 3;
    a.horizon = b.horizon = 48;
    a.env.episodeLength = b.env.episodeLength = 20;
    a.batchedTraining = false;
    b.batchedTraining = true;
    expectOutcomesEqual(trainTrpo(prob, a, 500), trainTrpo(prob, b, 500));
  }
}

// ---------- parallel rollout collection ----------

core::SizingProblem bowlProblem() {
  core::SizingProblem p;
  p.name = "bowl";
  p.space = core::DesignSpace({{"x", 0.0, 1.0, 33, false},
                               {"y", 0.0, 1.0, 33, false}});
  p.measurementNames = {"closeness"};
  p.specs = {{"closeness", core::SpecKind::kAtLeast, 0.95}};
  p.corners = {{sim::ProcessCorner::kTT, 1.0, 27.0}};
  p.evaluate = [](const Vector& v, const sim::PvtCorner&) {
    core::EvalResult r;
    r.ok = true;
    const double dx = v[0] - 0.3;
    const double dy = v[1] - 0.7;
    r.measurements = {1.0 - std::sqrt(dx * dx + dy * dy)};
    return r;
  };
  return p;
}

void expectBuffersBitwiseEqual(const std::vector<RolloutBuffer>& a,
                               const std::vector<RolloutBuffer>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t e = 0; e < a.size(); ++e) {
    ASSERT_EQ(a[e].size(), b[e].size()) << "env " << e;
    EXPECT_EQ(a[e].bootstrapValue, b[e].bootstrapValue);
    for (std::size_t i = 0; i < a[e].size(); ++i) {
      const Transition& ta = a[e].transitions[i];
      const Transition& tb = b[e].transitions[i];
      EXPECT_EQ(ta.observation, tb.observation);
      EXPECT_EQ(ta.actions, tb.actions);
      EXPECT_EQ(ta.reward, tb.reward);
      EXPECT_EQ(ta.valueEstimate, tb.valueEstimate);
      EXPECT_EQ(ta.logProb, tb.logProb);
      EXPECT_EQ(ta.done, tb.done);
    }
  }
}

/// The tentpole determinism guarantee: rollout collection fans N envs across
/// the pool, but the merged trajectories are identical for every thread
/// count (per-env RNG streams + env-order merge).
TEST(ParallelRollout, ThreadCountDoesNotChangeTrajectories) {
  const auto prob = bowlProblem();
  EnvConfig envCfg;
  envCfg.episodeLength = 12;
  const std::size_t numEnvs = 4;

  const std::size_t obsDim = 2 + 2 * 1;
  nn::Mlp policy = makePolicyNet(obsDim, 2, kApH, 24, 71);
  nn::Mlp critic = makeValueNet(obsDim, 24, 72);

  std::vector<RolloutBuffer> serial, pooled;
  std::size_t simsSerial = 0, simsPooled = 0;
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    ParallelRolloutCollector collector(prob, envCfg, numEnvs, threads,
                                       /*seed=*/17, /*rngSalt=*/7);
    auto& buffers = threads == 1 ? serial : pooled;
    for (int round = 0; round < 3; ++round)
      collector.collect(policy, critic, 24, 100000, buffers);
    (threads == 1 ? simsSerial : simsPooled) = collector.totalSimulations();
  }
  EXPECT_EQ(simsSerial, simsPooled);
  expectBuffersBitwiseEqual(serial, pooled);
}

TEST(ParallelRollout, EnvStreamsAreIndependent) {
  const auto prob = bowlProblem();
  EnvConfig envCfg;
  envCfg.episodeLength = 12;
  const std::size_t obsDim = 2 + 2 * 1;
  nn::Mlp policy = makePolicyNet(obsDim, 2, kApH, 24, 71);
  nn::Mlp critic = makeValueNet(obsDim, 24, 72);

  ParallelRolloutCollector collector(prob, envCfg, 3, 1, 17, 7);
  std::vector<RolloutBuffer> buffers;
  collector.collect(policy, critic, 16, 100000, buffers);
  ASSERT_EQ(buffers.size(), 3u);
  // Different seeds must give different start points / trajectories.
  EXPECT_NE(buffers[0].transitions.front().observation,
            buffers[1].transitions.front().observation);
  EXPECT_NE(buffers[1].transitions.front().observation,
            buffers[2].transitions.front().observation);
}

TEST(ParallelRollout, MultiEnvTrainingIsDeterministic) {
  const auto prob = bandProblem();
  PpoConfig cfg;
  cfg.seed = 5;
  cfg.horizon = 32;
  cfg.env.episodeLength = 16;
  cfg.numEnvs = 3;
  cfg.rolloutThreads = 2;
  expectOutcomesEqual(trainPpo(prob, cfg, 400), trainPpo(prob, cfg, 400));
}

TEST(ParallelRollout, MultiEnvOutcomeIndependentOfThreadCount) {
  const auto prob = bandProblem();
  A2cConfig a, b;
  a.seed = b.seed = 9;
  a.env.episodeLength = b.env.episodeLength = 16;
  a.numEnvs = b.numEnvs = 3;
  a.rolloutThreads = 1;
  b.rolloutThreads = 4;
  expectOutcomesEqual(trainA2c(prob, a, 400), trainA2c(prob, b, 400));
}

// ---------- flattening ----------

TEST(FlatRolloutTest, SingleEnvMatchesComputeGaePlusNormalize) {
  std::mt19937_64 rng(23);
  std::uniform_real_distribution<double> d(-1.0, 1.0);
  RolloutBuffer buf;
  for (int i = 0; i < 20; ++i) {
    Transition t;
    t.observation = {d(rng), d(rng)};
    t.actions = {0, 2};
    t.reward = d(rng);
    t.valueEstimate = d(rng);
    t.logProb = d(rng);
    t.done = i == 9;  // one episode boundary mid-buffer
    buf.transitions.push_back(t);
  }
  buf.bootstrapValue = 0.37;

  AdvantageResult ref = computeGae(buf, 0.99, 0.95);
  normalizeAdvantages(ref.advantages);
  const FlatRollout flat = flattenRollouts({buf}, 0.99, 0.95);
  ASSERT_EQ(flat.size(), buf.size());
  for (std::size_t i = 0; i < buf.size(); ++i) {
    EXPECT_EQ(flat.advantages[i], ref.advantages[i]);
    EXPECT_EQ(flat.returns[i], ref.returns[i]);
    EXPECT_EQ(flat.logProbs[i], buf.transitions[i].logProb);
    for (std::size_t c = 0; c < 2; ++c)
      EXPECT_EQ(flat.observations(i, c), buf.transitions[i].observation[c]);
  }
}

TEST(FlatRolloutTest, ConcatenatesInEnvOrder) {
  RolloutBuffer b0, b1;
  Transition t;
  t.observation = {1.0};
  t.actions = {1};
  t.done = true;
  t.reward = 10.0;
  b0.transitions = {t};
  t.observation = {2.0};
  t.reward = 20.0;
  b1.transitions = {t, t};
  const FlatRollout flat = flattenRollouts({b0, b1}, 0.9, 0.9);
  ASSERT_EQ(flat.size(), 3u);
  EXPECT_EQ(flat.observations(0, 0), 1.0);
  EXPECT_EQ(flat.observations(1, 0), 2.0);
  EXPECT_EQ(flat.observations(2, 0), 2.0);
}

}  // namespace
}  // namespace trdse::rl
