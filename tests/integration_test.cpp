// Cross-module integration tests: the full agent stack against the real
// circuit simulator — small budgets, seeds chosen for robustness.
#include <gtest/gtest.h>

#include "circuits/ico.hpp"
#include "circuits/ldo.hpp"
#include "circuits/two_stage_opamp.hpp"
#include "core/local_explorer.hpp"
#include "core/pvt_search.hpp"
#include "core/sizing_api.hpp"
#include "opt/random_search.hpp"
#include "opt/tree_bayes_opt.hpp"
#include "pvt/corners.hpp"
#include "rl/sizing_env.hpp"

namespace trdse {
namespace {

TEST(Integration, TrustRegionAgentSolves45nmOpamp) {
  const circuits::TwoStageOpamp amp(sim::bsim45Card());
  const sim::PvtCorner tt{sim::ProcessCorner::kTT, sim::bsim45Card().nominalVdd,
                          27.0};
  const auto prob = amp.makeProblem({tt}, amp.defaultSpecs());
  const core::ValueFunction value(prob.measurementNames, prob.specs);
  // Robustness across seeds: at least 2 of 3 must solve within 1500 sims
  // (the paper's agent averages well under 100 here).
  int solved = 0;
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    core::LocalExplorerConfig cfg;
    cfg.seed = seed;
    core::LocalExplorer agent(
        prob.space, value,
        [&](const linalg::Vector& x) { return prob.evaluate(x, tt); }, cfg);
    const auto out = agent.run(1500);
    solved += out.solved;
    if (out.solved) {
      EXPECT_TRUE(value.satisfied(out.eval.measurements));
      // Solution is on the declared grid.
      EXPECT_EQ(prob.space.snap(out.sizes), out.sizes);
    }
  }
  EXPECT_GE(solved, 2);
}

TEST(Integration, AgentBeatsRandomSearchByOrderOfMagnitude) {
  const circuits::TwoStageOpamp amp(sim::bsim45Card());
  const sim::PvtCorner tt{sim::ProcessCorner::kTT, sim::bsim45Card().nominalVdd,
                          27.0};
  const auto prob = amp.makeProblem({tt}, amp.defaultSpecs());
  const core::ValueFunction value(prob.measurementNames, prob.specs);

  double agentIters = 0.0;
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    core::LocalExplorerConfig cfg;
    cfg.seed = seed;
    core::LocalExplorer agent(
        prob.space, value,
        [&](const linalg::Vector& x) { return prob.evaluate(x, tt); }, cfg);
    agentIters += static_cast<double>(agent.run(4000).iterations);
  }
  agentIters /= 3.0;

  // Random search at the same budget: count sims to solve (cap 4000).
  double randomIters = 0.0;
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    opt::RandomSearch rs(prob, seed);
    randomIters += static_cast<double>(rs.run(4000).iterations);
  }
  randomIters /= 3.0;

  EXPECT_LT(agentIters * 5.0, randomIters);  // conservative 5x; paper >100x
}

TEST(Integration, ProgressivePvtOn22nmOpamp) {
  const circuits::TwoStageOpamp amp(sim::bsim22Card());
  const auto corners = pvt::nineCornerSet(sim::bsim22Card().nominalVdd);
  const auto prob = amp.makeProblem(corners, amp.defaultSpecs());
  core::PvtSearchConfig cfg;
  cfg.strategy = core::PvtStrategy::kProgressiveHardest;
  cfg.seed = 4;
  cfg.explorer = core::autoSchedule(prob, cfg.seed);
  core::PvtSearch search(prob, cfg);
  const auto out = search.run(6000);
  ASSERT_TRUE(out.solved);
  const core::ValueFunction value(prob.measurementNames, prob.specs);
  for (std::size_t c = 0; c < corners.size(); ++c) {
    ASSERT_TRUE(out.cornerEvals[c].ok) << corners[c].name();
    EXPECT_TRUE(value.satisfied(out.cornerEvals[c].measurements))
        << corners[c].name();
  }
}

TEST(Integration, BoSolvesIcoCase) {
  const circuits::Ico ico(sim::n5Card());
  const sim::PvtCorner tt{sim::ProcessCorner::kTT, sim::n5Card().nominalVdd,
                          27.0};
  const auto prob = ico.makeProblem({tt}, ico.defaultSpecs());
  opt::TreeBayesOptConfig cfg;
  cfg.seed = 6;
  opt::TreeBayesOpt bo(prob, cfg);
  const auto out = bo.run(1200);
  EXPECT_TRUE(out.solved);
}

TEST(Integration, SessionApiOnLdoSingleCorner) {
  const circuits::Ldo ldo(sim::n6Card());
  const sim::PvtCorner tt{sim::ProcessCorner::kTT, sim::n6Card().nominalVdd,
                          27.0};
  core::SessionOptions options;
  options.maxSimulations = 4000;
  options.seed = 2;
  core::SizingSession session(ldo.makeProblem({tt}, ldo.defaultSpecs()),
                              options);
  const auto report = session.run();
  EXPECT_TRUE(report.solved);
  EXPECT_GT(report.areaEstimate, 0.0);
  EXPECT_NE(report.summary.find("ldo_n6"), std::string::npos);
}

TEST(Integration, RlEnvDrivesRealSimulator) {
  const circuits::TwoStageOpamp amp(sim::bsim45Card());
  const sim::PvtCorner tt{sim::ProcessCorner::kTT, sim::bsim45Card().nominalVdd,
                          27.0};
  const auto prob = amp.makeProblem({tt}, amp.defaultSpecs());
  rl::SizingEnv env(prob, {}, 8);
  auto obs = env.reset();
  EXPECT_EQ(obs.size(), env.observationDim());
  for (int i = 0; i < 5; ++i) {
    std::vector<std::size_t> actions(env.actionHeads(), 2);  // all increment
    const auto sr = env.step(actions);
    EXPECT_EQ(sr.observation.size(), env.observationDim());
    obs = sr.observation;
  }
  EXPECT_EQ(env.simulationsUsed(), 6u);
}

TEST(Integration, PortingWeightAdoptionAcrossNodes) {
  // A surrogate trained on 45nm can be *loaded* into a 22nm explorer (same
  // problem shape); the porting bench measures whether it also *helps*.
  const circuits::TwoStageOpamp amp45(sim::bsim45Card());
  const sim::PvtCorner tt45{sim::ProcessCorner::kTT,
                            sim::bsim45Card().nominalVdd, 27.0};
  const auto prob45 = amp45.makeProblem({tt45}, amp45.defaultSpecs());
  const core::ValueFunction value45(prob45.measurementNames, prob45.specs);
  core::LocalExplorerConfig cfg;
  cfg.seed = 12;
  core::LocalExplorer donor(
      prob45.space, value45,
      [&](const linalg::Vector& x) { return prob45.evaluate(x, tt45); }, cfg);
  const auto donorOut = donor.run(2000);
  ASSERT_TRUE(donorOut.solved);

  const circuits::TwoStageOpamp amp22(sim::bsim22Card());
  const sim::PvtCorner tt22{sim::ProcessCorner::kTT,
                            sim::bsim22Card().nominalVdd, 27.0};
  const auto prob22 = amp22.makeProblem({tt22}, amp22.defaultSpecs());
  const core::ValueFunction value22(prob22.measurementNames, prob22.specs);
  core::LocalExplorerConfig warm;
  warm.seed = 13;
  warm.startingPoint = donorOut.sizes;
  warm.warmStartWeights = &donor.surrogate().network();
  core::LocalExplorer agent(
      prob22.space, value22,
      [&](const linalg::Vector& x) { return prob22.evaluate(x, tt22); }, warm);
  const auto out = agent.run(3000);
  EXPECT_TRUE(out.solved);
}

}  // namespace
}  // namespace trdse
