// Orchestration-layer suite: scenario parsing, the sharded cross-job cache,
// engine shared-cache semantics, strategy resumability (step(k);step(n) ==
// step(n)), and the Scheduler determinism contract — per-job outcomes,
// ledgers and cache accounting bitwise identical for any thread count, with
// cross-job shared hits actually occurring.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <stdexcept>

#include "circuits/registry.hpp"
#include "core/pvt_search.hpp"
#include "io/checkpoint.hpp"
#include "opt/random_search.hpp"
#include "opt/strategy.hpp"
#include "opt/tree_bayes_opt.hpp"
#include "orch/scenario.hpp"
#include "orch/scheduler.hpp"
#include "rl/rl_strategy.hpp"

namespace trdse::orch {
namespace {

/// Synthetic 2-D CSP on a deliberately coarse grid (9x9 = 81 distinct
/// points), so concurrent jobs collide on cache keys within a few rounds.
core::SizingProblem tinyGridProblem(double feasibleRadius = 0.08) {
  core::SizingProblem p;
  p.name = "tiny_grid";
  p.space = core::DesignSpace({{"x", 0.0, 1.0, 9, false},
                               {"y", 0.0, 1.0, 9, false}});
  p.measurementNames = {"closeness", "budget"};
  p.specs = {{"closeness", core::SpecKind::kAtLeast, 1.0 - feasibleRadius},
             {"budget", core::SpecKind::kAtMost, 1.6}};
  p.corners = {{sim::ProcessCorner::kTT, 1.0, 27.0}};
  p.evaluate = [](const linalg::Vector& v, const sim::PvtCorner&) {
    core::EvalResult r;
    r.ok = true;
    const double dx = v[0] - 0.66;
    const double dy = v[1] - 0.31;
    r.measurements = {1.0 - std::sqrt(dx * dx + dy * dy), v[0] + v[1]};
    return r;
  };
  return p;
}

/// Register tiny_grid once so scenario *files* can reference it by name.
void ensureTinyGridRegistered() {
  static const bool once = [] {
    circuits::Registry::global().add(
        {"tiny_grid", "bsim45", "coarse synthetic CSP (orch tests)",
         [](const sim::ProcessCard&, std::vector<sim::PvtCorner> corners) {
           // Radius below the closest grid point's distance: no feasible
           // point, so every job runs its whole budget and the cross-job
           // cache sees plenty of revisits.
           core::SizingProblem p = tinyGridProblem(0.05);
           if (!corners.empty()) p.corners = std::move(corners);
           return p;
         }});
    return true;
  }();
  (void)once;
}

void expectSameLedger(const pvt::EdaLedger& a, const pvt::EdaLedger& b) {
  ASSERT_EQ(a.totalBlocks(), b.totalBlocks());
  for (std::size_t i = 0; i < a.blocks().size(); ++i) {
    EXPECT_EQ(a.blocks()[i].cornerIndex, b.blocks()[i].cornerIndex);
    EXPECT_EQ(a.blocks()[i].kind, b.blocks()[i].kind);
    EXPECT_EQ(a.blocks()[i].meetsSpec, b.blocks()[i].meetsSpec);
    EXPECT_EQ(a.blocks()[i].cached, b.blocks()[i].cached);
    EXPECT_EQ(a.blocks()[i].failed, b.blocks()[i].failed);
    EXPECT_EQ(a.blocks()[i].retries, b.blocks()[i].retries);
    EXPECT_EQ(a.blocks()[i].backoff, b.blocks()[i].backoff);
  }
}

void expectSameOutcome(const opt::StrategyOutcome& a,
                       const opt::StrategyOutcome& b) {
  EXPECT_EQ(a.solved, b.solved);
  EXPECT_EQ(a.iterations, b.iterations);
  EXPECT_EQ(a.sizes, b.sizes);
  EXPECT_EQ(a.bestValue, b.bestValue);
  EXPECT_EQ(a.bestMeasurements, b.bestMeasurements);
  EXPECT_EQ(a.evalStats.requests, b.evalStats.requests);
  EXPECT_EQ(a.evalStats.simulated, b.evalStats.simulated);
  EXPECT_EQ(a.evalStats.cacheHits, b.evalStats.cacheHits);
  EXPECT_EQ(a.evalStats.sharedHits, b.evalStats.sharedHits);
  EXPECT_EQ(a.evalStats.attempts, b.evalStats.attempts);
  EXPECT_EQ(a.evalStats.faults, b.evalStats.faults);
  EXPECT_EQ(a.evalStats.failures, b.evalStats.failures);
  EXPECT_EQ(a.evalStats.backoffUnits, b.evalStats.backoffUnits);
  expectSameLedger(a.ledger, b.ledger);
}

// ---- Scenario parsing ----------------------------------------------------

TEST(Scenario, ParsesGlobalsJobsAndOptions) {
  const Scenario sc = parseScenarioText(
      "# comment\n"
      "name = demo\n"
      "threads = 4\n"
      "slice = 8\n"
      "shared_cache = off\n"
      "shards = 4\n"
      "base_seed = 7\n"
      "[job]\n"
      "name = a\n"
      "circuit = two_stage_opamp\n"
      "strategy = tree_bayes_opt\n"
      "seed = 3\n"
      "budget = 99   # trailing comment\n"
      "opt.init_samples = 4\n"
      "[job]\n"
      "circuit = ldo\n"
      "strategy = random_search\n"
      "budget = 10\n",
      "inline");
  EXPECT_EQ(sc.name, "demo");
  EXPECT_EQ(sc.threads, 4u);
  EXPECT_EQ(sc.slice, 8u);
  EXPECT_FALSE(sc.sharedCache);
  EXPECT_EQ(sc.cacheShards, 4u);
  EXPECT_EQ(sc.baseSeed, 7u);
  ASSERT_EQ(sc.jobs.size(), 2u);
  EXPECT_EQ(sc.jobs[0].name, "a");
  EXPECT_EQ(sc.jobs[0].seed, 3u);
  EXPECT_EQ(sc.jobs[0].budget, 99u);
  EXPECT_EQ(sc.jobs[0].options.at("init_samples"), "4");
  EXPECT_EQ(sc.jobs[1].name, "job2");  // auto-named
  EXPECT_EQ(sc.jobs[1].seed, 0u);      // derived later by the scheduler
}

TEST(Scenario, RejectsMalformedInput) {
  EXPECT_THROW(parseScenarioText("nonsense\n[job]\n", "x"),
               std::invalid_argument);
  EXPECT_THROW(parseScenarioText("threads = soon\n", "x"),
               std::invalid_argument);
  EXPECT_THROW(parseScenarioText("[job]\nbudget = 5\n", "x"),
               std::invalid_argument);  // no circuit/strategy
  EXPECT_THROW(parseScenarioText(
                   "[job]\ncircuit = c\nstrategy = s\nbudget = 0\n", "x"),
               std::invalid_argument);  // zero budget
  EXPECT_THROW(
      parseScenarioText("[job]\nname = a\ncircuit = c\nstrategy = s\n"
                        "[job]\nname = a\ncircuit = c\nstrategy = s\n",
                        "x"),
      std::invalid_argument);  // duplicate names
  EXPECT_THROW(parseScenarioText("", "x"), std::invalid_argument);  // no jobs
  EXPECT_THROW(parseScenarioText("[job]\ncircuit = c\nstrategy = s\n"
                                 "checkpoint_every = 2\n",
                                 "x"),
               std::invalid_argument);  // cadence without path
  EXPECT_THROW(parseScenarioText("threads = 2\nthreads = 4\n", "x"),
               std::invalid_argument);  // duplicate scalar key
  EXPECT_THROW(parseScenarioText("[job]\ncircuit = c\nstrategy = s\n"
                                 "budget = 400\nbudget = 40\n",
                                 "x"),
               std::invalid_argument);  // duplicate job key (no last-wins)
  EXPECT_THROW(parseScenarioText("[job]\ncircuit = c\nstrategy = s\n"
                                 "seed = -1\n",
                                 "x"),
               std::invalid_argument);  // stoull wrap rejected
}

// ---- SharedEvalCache -----------------------------------------------------

TEST(SharedEvalCache, ScopedFindInsertAndCounters) {
  eval::SharedEvalCache cache(5);            // rounds up
  EXPECT_EQ(cache.shardCount(), 8u);         // power of two
  const std::size_t opamp = cache.scopeId("opamp");
  const std::size_t ldo = cache.scopeId("ldo");
  EXPECT_EQ(cache.scopeId("opamp"), opamp);  // stable
  EXPECT_NE(opamp, ldo);

  core::EvalResult r;
  r.ok = true;
  r.measurements = {1.0, 2.0};
  const eval::EvalKey key{{3, 4}, 0};
  cache.insert(opamp, key, r);
  EXPECT_EQ(cache.size(), 1u);

  core::EvalResult out;
  EXPECT_TRUE(cache.find(opamp, key, out));
  EXPECT_EQ(out.measurements, r.measurements);
  EXPECT_FALSE(cache.find(ldo, key, out));       // scope isolation
  EXPECT_FALSE(cache.find(opamp, {{3, 5}, 0}, out));

  const auto t = cache.totals();
  EXPECT_EQ(t.hits, 1u);
  EXPECT_EQ(t.misses, 2u);
  EXPECT_EQ(t.inserts, 1u);
  EXPECT_EQ(t.entries, 1u);
}

TEST(SharedEvalCache, SpreadsEntriesAcrossShards) {
  eval::SharedEvalCache cache(8);
  const std::size_t scope = cache.scopeId("s");
  core::EvalResult r;
  r.ok = true;
  r.measurements = {0.0};
  for (std::size_t i = 0; i < 64; ++i) cache.insert(scope, {{i, i + 1}, 0}, r);
  std::size_t populated = 0;
  for (std::size_t s = 0; s < cache.shardCount(); ++s)
    populated += cache.shardStats(s).entries > 0;
  EXPECT_GT(populated, cache.shardCount() / 2);  // striping actually stripes
}

// ---- EvalEngine + shared cache ------------------------------------------

TEST(EngineSharedCache, HitsOnlyAfterPublishAndOnlySameScope) {
  const core::SizingProblem problem = tinyGridProblem();
  auto shared = std::make_shared<eval::SharedEvalCache>(4);

  eval::EvalEngine a(problem);
  eval::EvalEngine b(problem);
  eval::EvalEngine c(problem);
  a.attachSharedCache(shared, "tiny_grid");
  b.attachSharedCache(shared, "tiny_grid");
  c.attachSharedCache(shared, "other_scope");

  const linalg::Vector x = problem.space.snap({0.5, 0.5});
  a.evalOne(0, x, pvt::BlockKind::kSearch);
  EXPECT_EQ(a.stats().simulated, 1u);

  // Not published yet: B simulates the same point itself.
  b.evalOne(0, x, pvt::BlockKind::kSearch);
  EXPECT_EQ(b.stats().simulated, 1u);
  EXPECT_EQ(b.stats().sharedHits, 0u);

  EXPECT_EQ(a.publishShared(), 1u);
  EXPECT_EQ(a.publishShared(), 0u);  // journal drained

  const linalg::Vector y = problem.space.snap({0.75, 0.25});
  a.evalOne(0, y, pvt::BlockKind::kSearch);
  EXPECT_EQ(a.publishShared(), 1u);

  // Published now: B serves y from the shared cache at zero EDA cost, and
  // the ledger block is flagged cached.
  const core::EvalResult viaShared = b.evalOne(0, y, pvt::BlockKind::kSearch);
  EXPECT_EQ(b.stats().simulated, 1u);
  EXPECT_EQ(b.stats().sharedHits, 1u);
  EXPECT_TRUE(b.ledger().blocks().back().cached);
  EXPECT_EQ(viaShared.measurements, a.evalOne(0, y, pvt::BlockKind::kSearch).measurements);
  // A repeat lands in B's local memo, not the shared counter.
  b.evalOne(0, y, pvt::BlockKind::kSearch);
  EXPECT_EQ(b.stats().sharedHits, 1u);
  EXPECT_EQ(b.stats().cacheHits, 1u);

  // Scope isolation: same key, different namespace — simulates.
  c.evalOne(0, y, pvt::BlockKind::kSearch);
  EXPECT_EQ(c.stats().simulated, 1u);
  EXPECT_EQ(c.stats().sharedHits, 0u);
}

TEST(EngineSharedCache, AttachRulesAreEnforced) {
  const core::SizingProblem problem = tinyGridProblem();
  auto shared = std::make_shared<eval::SharedEvalCache>(2);

  eval::EvalEngineConfig noCache;
  noCache.cacheEvals = false;
  eval::EvalEngine uncached(problem, noCache);
  EXPECT_THROW(uncached.attachSharedCache(shared, "s"), std::logic_error);

  eval::EvalEngine late(problem);
  late.evalOne(0, problem.space.snap({0.5, 0.5}), pvt::BlockKind::kSearch);
  EXPECT_THROW(late.attachSharedCache(shared, "s"), std::logic_error);
}

// ---- Strategy resumability ----------------------------------------------

TEST(StrategyResume, RandomSearchSlicedEqualsSingleShot) {
  core::SizingProblem prob = tinyGridProblem(0.02);  // hard: runs full budget
  prob.corners = {{sim::ProcessCorner::kTT, 1.0, 27.0},
                  {sim::ProcessCorner::kSS, 0.9, 125.0},
                  {sim::ProcessCorner::kFF, 1.1, -40.0}};
  opt::RandomSearch whole(prob, 11, 100);
  whole.run();

  opt::RandomSearch sliced(prob, 11, 100);
  // 7-block slices deliberately misaligned with the 3-corner sweeps, so
  // pauses land mid-sweep.
  for (std::size_t target = 7; !sliced.finished(); target += 7)
    sliced.step(target);
  expectSameOutcome(sliced.outcome(), whole.outcome());
}

TEST(StrategyResume, TreeBayesOptSlicedEqualsSingleShot) {
  const core::SizingProblem prob = tinyGridProblem(0.02);
  opt::TreeBayesOptConfig cfg;
  cfg.seed = 23;
  cfg.initSamples = 6;
  cfg.candidatePool = 40;
  opt::TreeBayesOpt whole(prob, cfg, 120);
  whole.run();
  ASSERT_EQ(whole.outcome().iterations, whole.outcome().ledger.totalBlocks());

  opt::TreeBayesOpt sliced(prob, cfg, 120);
  for (std::size_t target = 5; !sliced.finished(); target += 5)
    sliced.step(target);
  expectSameOutcome(sliced.outcome(), whole.outcome());
}

TEST(StrategyResume, RlPolicySlicedEqualsSingleShot) {
  const core::SizingProblem prob = tinyGridProblem(0.3);
  rl::RlPolicyConfig cfg;
  cfg.hidden = 8;
  cfg.nSteps = 8;
  cfg.env.episodeLength = 10;

  rl::RlPolicyStrategy whole(prob, cfg, 91, 80);
  whole.run();
  rl::RlPolicyStrategy sliced(prob, cfg, 91, 80);
  for (std::size_t target = 13; !sliced.finished(); target += 13)
    sliced.step(target);
  expectSameOutcome(sliced.outcome(), whole.outcome());
  EXPECT_EQ(whole.outcome().iterations, whole.outcome().ledger.totalBlocks());
}

TEST(Strategy, PvtWrapperMatchesDirectSearch) {
  const core::SizingProblem prob = tinyGridProblem(0.25);
  auto strat = opt::makeStrategy("pvt_search", prob, 5, 200);
  const opt::StrategyOutcome& viaStrategy = strat->run();

  core::PvtSearchConfig cfg;
  cfg.seed = 5;
  core::PvtSearch direct(prob, cfg);
  const core::PvtSearchOutcome viaDirect = direct.run(200);

  EXPECT_EQ(viaStrategy.solved, viaDirect.solved);
  EXPECT_EQ(viaStrategy.iterations, viaDirect.totalSims);
  EXPECT_EQ(viaStrategy.sizes, viaDirect.sizes);
  expectSameLedger(viaStrategy.ledger, viaDirect.ledger);
  if (viaStrategy.solved) {
    EXPECT_EQ(viaStrategy.bestValue, 0.0);
  }
}

TEST(Strategy, FactoryRejectsUnknownNamesAndOptions) {
  const core::SizingProblem prob = tinyGridProblem();
  EXPECT_THROW(opt::makeStrategy("annealing", prob, 1, 10),
               std::invalid_argument);
  EXPECT_THROW(
      opt::makeStrategy("tree_bayes_opt", prob, 1, 10, {{"kappa", "2"}}),
      std::invalid_argument);
  EXPECT_THROW(
      opt::makeStrategy("tree_bayes_opt", prob, 1, 10, {{"kappa_start", "x"}}),
      std::invalid_argument);
  EXPECT_THROW(opt::makeStrategy("random_search", prob, 1, 10, {{"a", "b"}}),
               std::invalid_argument);
  EXPECT_THROW(opt::makeStrategy("pvt_search", prob, 1, 10,
                                 {{"pool", "sideways"}}),
               std::invalid_argument);
}

TEST(Strategy, RandomSearchCheckpointRoundTrip) {
  core::SizingProblem prob = tinyGridProblem(0.02);
  prob.corners = {{sim::ProcessCorner::kTT, 1.0, 27.0},
                  {sim::ProcessCorner::kSS, 0.9, 125.0}};
  opt::RandomSearch whole(prob, 7, 90);
  whole.run();

  opt::RandomSearch saver(prob, 7, 90);
  saver.step(41);  // pauses mid-sweep for odd targets
  const std::string path = testing::TempDir() + "rs_orch.ckpt";
  saver.saveCheckpoint(path);

  opt::RandomSearch resumed(prob, 999, 90);  // wrong seed: state comes from disk
  resumed.restoreCheckpoint(path);
  resumed.run();
  expectSameOutcome(resumed.outcome(), whole.outcome());

  // Kind mismatch fails loudly.
  io::CheckpointWriter wrongKind("pvt-search");
  wrongKind.writeFile(path);
  EXPECT_THROW(resumed.restoreCheckpoint(path), io::CheckpointError);
  std::remove(path.c_str());
}

// ---- Scheduler -----------------------------------------------------------

/// The acceptance scenario: 4 jobs on one coarse circuit so cross-job cache
/// hits are plentiful, mixed strategies, written to a real file.
std::string writeAcceptanceScenario() {
  ensureTinyGridRegistered();
  const std::string path = testing::TempDir() + "orch_accept.scenario";
  std::ofstream out(path);
  out << "name = accept\n"
         "slice = 12\n"
         "shards = 8\n"
         "base_seed = 5\n"
         "[job]\nname = rs_a\ncircuit = tiny_grid\nstrategy = random_search\n"
         "seed = 101\nbudget = 70\n"
         "[job]\nname = rs_b\ncircuit = tiny_grid\nstrategy = random_search\n"
         "seed = 202\nbudget = 70\n"
         "[job]\nname = bo\ncircuit = tiny_grid\nstrategy = tree_bayes_opt\n"
         "seed = 7\nbudget = 70\nopt.init_samples = 8\nopt.candidate_pool = 30\n"
         "[job]\nname = rl\ncircuit = tiny_grid\nstrategy = rl_policy\n"
         "seed = 11\nbudget = 70\nopt.hidden = 8\nopt.n_steps = 8\n";
  return path;
}

TEST(Scheduler, FourJobScenarioIsThreadCountInvariantWithSharedHits) {
  const std::string path = writeAcceptanceScenario();

  std::vector<std::vector<JobResult>> runs;
  for (const std::size_t threads : {1u, 2u, 4u}) {
    Scenario sc = loadScenarioFile(path);
    sc.threads = threads;
    Scheduler scheduler(std::move(sc));
    runs.push_back(scheduler.run());
    // The cross-job cache is actually used: every job reports shared hits.
    for (const JobResult& r : runs.back()) {
      EXPECT_GT(r.outcome.evalStats.sharedHits, 0u)
          << r.name << " at threads=" << threads;
      EXPECT_GT(r.published, 0u) << r.name;
      // Budget never exceeded; accounting is consistent.
      EXPECT_LE(r.outcome.iterations, r.budget);
      EXPECT_EQ(r.outcome.iterations, r.outcome.ledger.totalBlocks());
      EXPECT_EQ(r.outcome.evalStats.requests, r.outcome.iterations);
    }
  }
  for (std::size_t run = 1; run < runs.size(); ++run) {
    ASSERT_EQ(runs[run].size(), runs[0].size());
    for (std::size_t j = 0; j < runs[0].size(); ++j) {
      EXPECT_EQ(runs[run][j].rounds, runs[0][j].rounds);
      EXPECT_EQ(runs[run][j].published, runs[0][j].published);
      expectSameOutcome(runs[run][j].outcome, runs[0][j].outcome);
    }
  }
  std::remove(path.c_str());
}

TEST(Scheduler, SharedCacheSavesSimulationsVersusPrivate) {
  ensureTinyGridRegistered();
  const auto makeScenario = [](bool shared) {
    Scenario sc;
    sc.name = "ab";
    sc.slice = 10;
    sc.sharedCache = shared;
    for (int j = 0; j < 3; ++j) {
      JobSpec spec;
      spec.name = "rs" + std::to_string(j);
      spec.circuit = "tiny_grid";
      spec.strategy = "random_search";
      spec.seed = 40 + static_cast<std::uint64_t>(j);
      spec.budget = 60;
      sc.jobs.push_back(spec);
    }
    return sc;
  };

  Scheduler withShared(makeScenario(true));
  Scheduler withPrivate(makeScenario(false));
  const auto sharedResults = withShared.run();
  const auto privateResults = withPrivate.run();
  ASSERT_NE(withShared.sharedCache(), nullptr);
  EXPECT_EQ(withPrivate.sharedCache(), nullptr);

  std::size_t sharedSims = 0;
  std::size_t privateSims = 0;
  std::size_t sharedHits = 0;
  for (std::size_t j = 0; j < sharedResults.size(); ++j) {
    // The logical trajectory of every job is untouched by sharing.
    EXPECT_EQ(sharedResults[j].outcome.iterations,
              privateResults[j].outcome.iterations);
    EXPECT_EQ(sharedResults[j].outcome.solved, privateResults[j].outcome.solved);
    EXPECT_EQ(sharedResults[j].outcome.sizes, privateResults[j].outcome.sizes);
    sharedSims += sharedResults[j].outcome.evalStats.simulated;
    privateSims += privateResults[j].outcome.evalStats.simulated;
    sharedHits += sharedResults[j].outcome.evalStats.sharedHits;
  }
  EXPECT_GT(sharedHits, 0u);
  EXPECT_EQ(privateSims, sharedSims + sharedHits);  // blocks actually saved
  // Entries are distinct keys; concurrent same-round duplicates collapse.
  const std::size_t entries = withShared.sharedCache()->totals().entries;
  EXPECT_GT(entries, 0u);
  EXPECT_LE(entries, sharedSims);
}

TEST(Scheduler, ChecksCheckpointSupportAndWritesCadencedSnapshots) {
  ensureTinyGridRegistered();
  const std::string ckpt = testing::TempDir() + "sched_job.ckpt";

  Scenario bad;
  bad.jobs.push_back({"bo", "tiny_grid", {}, "tree_bayes_opt", "", 1, 50, 2,
                      ckpt, {}, {}});
  EXPECT_THROW(Scheduler{std::move(bad)}, std::invalid_argument);

  Scenario good;
  good.slice = 10;
  good.jobs.push_back({"rs", "tiny_grid", {}, "random_search", "", 1, 45, 2,
                       ckpt, {}, {}});
  Scheduler scheduler(std::move(good));
  const auto results = scheduler.run();
  ASSERT_EQ(results.size(), 1u);
  EXPECT_GT(results[0].checkpoints, 0u);
  // The snapshot is a loadable random-search checkpoint.
  EXPECT_EQ(io::CheckpointReader::fromFile(ckpt).kind(), "random-search");
  std::remove(ckpt.c_str());
}

TEST(Scheduler, DerivesDistinctSeedsAndRunsOnce) {
  ensureTinyGridRegistered();
  Scenario sc;
  for (int j = 0; j < 2; ++j) {
    JobSpec spec;
    spec.name = "rs" + std::to_string(j);
    spec.circuit = "tiny_grid";
    spec.strategy = "random_search";
    spec.budget = 20;
    sc.jobs.push_back(spec);
  }
  Scheduler scheduler(std::move(sc));
  const auto results = scheduler.run();
  EXPECT_NE(results[0].seed, 0u);
  EXPECT_NE(results[0].seed, results[1].seed);
  EXPECT_THROW(scheduler.run(), std::logic_error);
}

// ---- Fault tolerance: scenario knobs, quarantine, crash recovery ---------

TEST(Scenario, ParsesFaultRetryAndJournalKeys) {
  const Scenario sc = parseScenarioText(
      "fault_seed = 9\n"
      "fault_timeout = 0.05\n"
      "fault_nonconv = 0.25\n"
      "fault_nonfinite = 0.1\n"
      "fault_timeout_stall = 0.5\n"
      "retry_attempts = 4\n"
      "retry_backoff = 2\n"
      "retry_backoff_cap = 16\n"
      "retry_timeout = 1.5\n"
      "journal = /tmp/j.tdck\n"
      "journal_every = 3\n"
      "[job]\n"
      "circuit = ldo\n"
      "strategy = random_search\n"
      "budget = 10\n"
      "max_failures = 7\n",
      "inline");
  EXPECT_EQ(sc.faultPlan.seed, 9u);
  EXPECT_EQ(sc.faultPlan.timeoutRate, 0.05);
  EXPECT_EQ(sc.faultPlan.nonConvergenceRate, 0.25);
  EXPECT_EQ(sc.faultPlan.nonFiniteRate, 0.1);
  EXPECT_EQ(sc.faultPlan.timeoutStallSeconds, 0.5);
  EXPECT_EQ(sc.retry.maxAttempts, 4u);
  EXPECT_EQ(sc.retry.backoffBase, 2u);
  EXPECT_EQ(sc.retry.backoffCap, 16u);
  EXPECT_EQ(sc.retry.timeoutSeconds, 1.5);
  EXPECT_EQ(sc.journalPath, "/tmp/j.tdck");
  EXPECT_EQ(sc.journalEvery, 3u);
  ASSERT_EQ(sc.jobs.size(), 1u);
  EXPECT_EQ(sc.jobs[0].maxFailures, 7u);
  EXPECT_NE(sc.jobs[0].sourceLine, 0u);
}

TEST(Scenario, RejectsInvalidFaultAndRetryConfigs) {
  const std::string tail =
      "[job]\ncircuit = ldo\nstrategy = random_search\nbudget = 10\n";
  // Rates summing past 1 are caught at parse time via FaultPlan validation.
  EXPECT_THROW(parseScenarioText(
                   "fault_timeout = 0.6\nfault_nonconv = 0.6\n" + tail, "x"),
               std::invalid_argument);
  EXPECT_THROW(parseScenarioText("fault_nonconv = -0.1\n" + tail, "x"),
               std::invalid_argument);
  EXPECT_THROW(parseScenarioText("retry_attempts = 0\n" + tail, "x"),
               std::invalid_argument);
  EXPECT_THROW(parseScenarioText("retry_timeout = -1\n" + tail, "x"),
               std::invalid_argument);
  EXPECT_THROW(parseScenarioText("journal_every = 0\n" + tail, "x"),
               std::invalid_argument);
  EXPECT_THROW(parseScenarioText("max_failures = 3\n" + tail, "x"),
               std::invalid_argument);  // global scope: job key
}

/// Faulty acceptance scenario: nonconvergence faults on a coarse grid, one
/// job with no failure allowance (deterministically quarantined) and two
/// tolerant ones that run to completion.
Scenario faultyScenario() {
  ensureTinyGridRegistered();
  Scenario sc = parseScenarioText(
      "name = faulty\n"
      "slice = 12\n"
      "base_seed = 5\n"
      "fault_seed = 21\n"
      "fault_nonconv = 0.45\n"
      "retry_attempts = 2\n"
      "[job]\n"
      "name = fragile\ncircuit = tiny_grid\nstrategy = random_search\n"
      "seed = 101\nbudget = 70\nmax_failures = 0\n"
      "[job]\n"
      "name = tough_rs\ncircuit = tiny_grid\nstrategy = random_search\n"
      "seed = 202\nbudget = 70\nmax_failures = 100000\n"
      "[job]\n"
      "name = tough_pvt\ncircuit = tiny_grid\nstrategy = pvt_search\n"
      "seed = 7\nbudget = 70\nmax_failures = 100000\n",
      "inline");
  return sc;
}

TEST(SchedulerFaults, QuarantineIsIsolatedAndThreadCountInvariant) {
  std::vector<std::vector<JobResult>> runs;
  for (const std::size_t threads : {1u, 2u, 4u}) {
    Scenario sc = faultyScenario();
    sc.threads = threads;
    Scheduler scheduler(std::move(sc));
    runs.push_back(scheduler.run());
    EXPECT_TRUE(scheduler.completed());
  }
  for (const std::vector<JobResult>& results : runs) {
    ASSERT_EQ(results.size(), 3u);
    // At 45% fault rate with 2 attempts, ~20% of simulations fail: the
    // zero-tolerance job is quarantined on its first round...
    EXPECT_TRUE(results[0].quarantined);
    EXPECT_GT(results[0].failures, 0u);
    EXPECT_NE(results[0].quarantineReason.find("exceed max_failures=0"),
              std::string::npos);
    // ...while the tolerant jobs absorb their failures and finish their
    // budgets untouched by the sick sibling.
    for (std::size_t j = 1; j < 3; ++j) {
      EXPECT_FALSE(results[j].quarantined) << results[j].name;
      EXPECT_TRUE(results[j].quarantineReason.empty());
      EXPECT_GT(results[j].failures, 0u) << results[j].name;
      EXPECT_EQ(results[j].outcome.iterations, results[j].budget)
          << results[j].name;
      const eval::EvalStats& s = results[j].outcome.evalStats;
      EXPECT_EQ(s.requests, s.simulated + s.cacheHits + s.sharedHits +
                                s.failures);
    }
  }
  // Everything — outcomes, ledgers, failure counts, quarantine reasons — is
  // bitwise identical for any thread count.
  for (std::size_t run = 1; run < runs.size(); ++run) {
    for (std::size_t j = 0; j < 3; ++j) {
      EXPECT_EQ(runs[run][j].rounds, runs[0][j].rounds);
      EXPECT_EQ(runs[run][j].published, runs[0][j].published);
      EXPECT_EQ(runs[run][j].failures, runs[0][j].failures);
      EXPECT_EQ(runs[run][j].quarantined, runs[0][j].quarantined);
      EXPECT_EQ(runs[run][j].quarantineReason, runs[0][j].quarantineReason);
      expectSameOutcome(runs[run][j].outcome, runs[0][j].outcome);
    }
  }
}

TEST(SchedulerFaults, JournaledRunResumesBitwise) {
  const std::string journal = testing::TempDir() + "orch_resume.tdck";

  // Reference: the uninterrupted run (journaling on, so construction-time
  // validation and round cadence match the interrupted copy exactly).
  Scenario whole = faultyScenario();
  whole.journalPath = testing::TempDir() + "orch_whole.tdck";
  Scheduler wholeSched(std::move(whole));
  const std::vector<JobResult> expected = wholeSched.run();

  // Interrupted copy: advance two rounds, drop the scheduler (the process
  // "dies"), rebuild from the journal, run to completion.
  Scenario part = faultyScenario();
  part.journalPath = journal;
  {
    Scheduler first(std::move(part));
    first.run(2);
    EXPECT_FALSE(first.completed());
  }
  Scenario rest = faultyScenario();
  rest.journalPath = journal;
  Scheduler second(std::move(rest));
  second.resume(journal);
  const std::vector<JobResult> resumed = second.run();
  EXPECT_TRUE(second.completed());

  ASSERT_EQ(resumed.size(), expected.size());
  for (std::size_t j = 0; j < expected.size(); ++j) {
    EXPECT_EQ(resumed[j].rounds, expected[j].rounds);
    EXPECT_EQ(resumed[j].published, expected[j].published);
    EXPECT_EQ(resumed[j].failures, expected[j].failures);
    EXPECT_EQ(resumed[j].quarantined, expected[j].quarantined);
    EXPECT_EQ(resumed[j].quarantineReason, expected[j].quarantineReason);
    expectSameOutcome(resumed[j].outcome, expected[j].outcome);
  }
  std::remove(journal.c_str());
  std::remove((testing::TempDir() + "orch_whole.tdck").c_str());
}

TEST(SchedulerFaults, ResumeRejectsCorruptAndMismatchedJournals) {
  const std::string journal = testing::TempDir() + "orch_bad.tdck";
  {
    Scenario sc = faultyScenario();
    sc.journalPath = journal;
    Scheduler first(std::move(sc));
    first.run(1);
  }
  // A scenario that diverges from the journaled fingerprint must be refused.
  Scenario tampered = faultyScenario();
  tampered.journalPath = journal;
  tampered.jobs[1].budget = 71;
  Scheduler mismatched(std::move(tampered));
  EXPECT_THROW(mismatched.resume(journal), io::CheckpointError);

  // Truncated/garbage bytes must be refused.
  {
    std::ofstream out(journal, std::ios::binary | std::ios::trunc);
    out << "not a checkpoint";
  }
  Scenario sc2 = faultyScenario();
  sc2.journalPath = journal;
  Scheduler corrupt(std::move(sc2));
  EXPECT_THROW(corrupt.resume(journal), io::CheckpointError);

  // resume() is a pre-run operation only.
  Scenario sc3 = faultyScenario();
  Scheduler ran(std::move(sc3));
  ran.run();
  EXPECT_THROW(ran.resume(journal), std::logic_error);
  std::remove(journal.c_str());
}

TEST(SchedulerFaults, JournalRequiresCheckpointableStrategies) {
  ensureTinyGridRegistered();
  Scenario sc;
  sc.journalPath = testing::TempDir() + "never_written.tdck";
  JobSpec spec;
  spec.name = "bo";
  spec.circuit = "tiny_grid";
  spec.strategy = "tree_bayes_opt";
  spec.budget = 20;
  sc.jobs.push_back(spec);
  EXPECT_THROW(Scheduler{std::move(sc)}, std::invalid_argument);
}

}  // namespace
}  // namespace trdse::orch
