#include <gtest/gtest.h>

#include <cmath>

#include "rl/a2c.hpp"
#include "rl/actor_critic.hpp"
#include "rl/ppo.hpp"
#include "rl/rollout.hpp"
#include "rl/sizing_env.hpp"
#include "rl/trpo.hpp"

namespace trdse::rl {
namespace {

/// 1-D toy problem: feasible band around x = 0.8.
core::SizingProblem bandProblem() {
  core::SizingProblem p;
  p.name = "band";
  p.space = core::DesignSpace({{"x", 0.0, 1.0, 65, false}});
  p.measurementNames = {"closeness"};
  p.specs = {{"closeness", core::SpecKind::kAtLeast, 0.93}};
  p.corners = {{sim::ProcessCorner::kTT, 1.0, 27.0}};
  p.evaluate = [](const linalg::Vector& v, const sim::PvtCorner&) {
    core::EvalResult r;
    r.ok = true;
    r.measurements = {1.0 - std::abs(v[0] - 0.8)};
    return r;
  };
  return p;
}

TEST(SizingEnv, ObservationShape) {
  const auto prob = bandProblem();
  SizingEnv env(prob, {}, 1);
  const auto obs = env.reset();
  EXPECT_EQ(obs.size(), env.observationDim());
  EXPECT_EQ(env.observationDim(), 1u + 2u * 1u);
  EXPECT_EQ(env.actionHeads(), 1u);
}

TEST(SizingEnv, ActionsMoveParameters) {
  const auto prob = bandProblem();
  EnvConfig cfg;
  cfg.episodeLength = 1000;
  SizingEnv env(prob, cfg, 2);
  env.reset();
  const double x0 = env.currentSizes()[0];
  env.step({2});  // increment
  const double x1 = env.currentSizes()[0];
  EXPECT_GT(x1, x0);
  env.step({0});  // decrement back
  EXPECT_NEAR(env.currentSizes()[0], x0, 1e-12);
  env.step({1});  // hold
  EXPECT_NEAR(env.currentSizes()[0], x0, 1e-12);
}

TEST(SizingEnv, ClampsAtGridEdges) {
  const auto prob = bandProblem();
  SizingEnv env(prob, {}, 3);
  env.reset();
  for (int i = 0; i < 100; ++i) env.step({0});
  EXPECT_NEAR(env.currentSizes()[0], 0.0, 1e-12);
}

TEST(SizingEnv, SolveGivesBonusAndTerminates) {
  const auto prob = bandProblem();
  EnvConfig cfg;
  cfg.episodeLength = 500;
  SizingEnv env(prob, cfg, 4);
  env.reset();
  StepResult last;
  for (int i = 0; i < 500; ++i) {
    // March toward 0.8 from wherever we started.
    const double x = env.currentSizes()[0];
    last = env.step({x < 0.8 ? std::size_t{2} : std::size_t{0}});
    if (last.done) break;
  }
  EXPECT_TRUE(last.solved);
  EXPECT_GT(last.reward, 5.0);  // includes the solve bonus
  EXPECT_GT(env.simsAtFirstSolve(), 0u);
}

TEST(SizingEnv, CountsSimulations) {
  const auto prob = bandProblem();
  SizingEnv env(prob, {}, 5);
  env.reset();
  env.step({1});
  env.step({1});
  EXPECT_EQ(env.simulationsUsed(), 3u);  // reset + 2 steps
}

TEST(ActorCritic, JointLogProbConsistent) {
  const linalg::Vector logits = {0.1, 0.5, -0.2, 1.0, 0.0, -1.0};
  const std::vector<std::size_t> actions = {1, 0};
  const double lp = jointLogProb(logits, actions, 3);
  EXPECT_LT(lp, 0.0);
  // Gradient sums to zero per head.
  const linalg::Vector g = jointLogProbGrad(logits, actions, 3);
  EXPECT_NEAR(g[0] + g[1] + g[2], 0.0, 1e-12);
  EXPECT_NEAR(g[3] + g[4] + g[5], 0.0, 1e-12);
}

TEST(ActorCritic, KlZeroOnIdenticalLogits) {
  const linalg::Vector logits = {0.1, 0.5, -0.2, 1.0, 0.0, -1.0};
  EXPECT_NEAR(jointKl(logits, logits, 3), 0.0, 1e-12);
  const linalg::Vector g = jointKlGrad(logits, logits, 3);
  for (double v : g) EXPECT_NEAR(v, 0.0, 1e-12);
}

TEST(ActorCritic, EntropyGradMatchesFiniteDifference) {
  const linalg::Vector logits = {0.3, -0.7, 0.2};
  const linalg::Vector g = jointEntropyGrad(logits, 3);
  constexpr double kEps = 1e-6;
  for (std::size_t i = 0; i < 3; ++i) {
    linalg::Vector lp = logits;
    lp[i] += kEps;
    linalg::Vector lm = logits;
    lm[i] -= kEps;
    const double numeric =
        (jointEntropy(lp, 3) - jointEntropy(lm, 3)) / (2 * kEps);
    EXPECT_NEAR(g[i], numeric, 1e-6);
  }
}

TEST(Rollout, GaeMatchesHandComputation) {
  RolloutBuffer buf;
  // Two-step episode, gamma = 0.5, lambda = 1 -> plain discounted returns.
  Transition t1;
  t1.reward = 1.0;
  t1.valueEstimate = 0.0;
  t1.done = false;
  Transition t2;
  t2.reward = 2.0;
  t2.valueEstimate = 0.0;
  t2.done = true;
  buf.transitions = {t1, t2};
  buf.bootstrapValue = 99.0;  // ignored: last transition done
  const auto adv = computeGae(buf, 0.5, 1.0);
  EXPECT_NEAR(adv.returns[1], 2.0, 1e-12);
  EXPECT_NEAR(adv.returns[0], 1.0 + 0.5 * 2.0, 1e-12);
}

TEST(Rollout, BootstrapUsedWhenNotDone) {
  RolloutBuffer buf;
  Transition t;
  t.reward = 1.0;
  t.valueEstimate = 0.0;
  t.done = false;
  buf.transitions = {t};
  buf.bootstrapValue = 10.0;
  const auto adv = computeGae(buf, 0.9, 1.0);
  EXPECT_NEAR(adv.returns[0], 1.0 + 0.9 * 10.0, 1e-12);
}

TEST(Rollout, NormalizeAdvantages) {
  std::vector<double> adv = {1.0, 2.0, 3.0, 4.0};
  normalizeAdvantages(adv);
  double mean = 0.0;
  for (double a : adv) mean += a;
  EXPECT_NEAR(mean, 0.0, 1e-9);
}

// End-to-end sanity: each algorithm should solve the easy 1-D band problem
// within a modest simulation budget (the random walk alone would too, but
// much less reliably; what we verify is plumbing, not superiority).
class RlAlgoTest : public ::testing::TestWithParam<int> {};

TEST_P(RlAlgoTest, SolvesEasyBandProblem) {
  const auto prob = bandProblem();
  const int algo = GetParam();
  bool solved = false;
  for (std::uint64_t seed = 1; seed <= 3 && !solved; ++seed) {
    if (algo == 0) {
      A2cConfig cfg;
      cfg.seed = seed;
      cfg.env.episodeLength = 30;
      solved = trainA2c(prob, cfg, 4000).solved;
    } else if (algo == 1) {
      PpoConfig cfg;
      cfg.seed = seed;
      cfg.horizon = 64;
      cfg.env.episodeLength = 30;
      solved = trainPpo(prob, cfg, 4000).solved;
    } else {
      TrpoConfig cfg;
      cfg.seed = seed;
      cfg.horizon = 64;
      cfg.env.episodeLength = 30;
      solved = trainTrpo(prob, cfg, 4000).solved;
    }
  }
  EXPECT_TRUE(solved);
}

INSTANTIATE_TEST_SUITE_P(Algos, RlAlgoTest, ::testing::Values(0, 1, 2));

}  // namespace
}  // namespace trdse::rl
