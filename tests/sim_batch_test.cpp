// Differential + property harness locking the scalar<->batched simulator
// equivalence (sim/op_batch.hpp and the EvalEngine batchedSim dispatch).
//
// Every numeric comparison here is on the *bit pattern* of the doubles, not
// an epsilon: the batched backend's contract is that lane l reproduces the
// scalar solver exactly (see the op_batch.hpp header for how the kernels and
// compile flags guarantee it). An epsilon test would quietly accept the
// contraction/vectorization drift these tests exist to catch.
#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <complex>
#include <cstring>
#include <random>
#include <vector>

#include <atomic>
#include <memory>

#include "circuits/registry.hpp"
#include "eval/eval_engine.hpp"
#include "pvt/corners.hpp"
#include "sim/ac.hpp"
#include "sim/assembly_plan.hpp"
#include "sim/dc.hpp"
#include "sim/diode.hpp"
#include "sim/mosfet.hpp"
#include "sim/op_batch.hpp"
#include "sim/process.hpp"
#include "sim/transient.hpp"

namespace trdse::sim {
namespace {

/// Bit-pattern equality: distinguishes -0.0 from 0.0 and catches 1-ulp
/// drift, which is exactly the failure mode of a divergent FP contraction.
testing::AssertionResult bitsEqual(double a, double b) {
  if (std::memcmp(&a, &b, sizeof(double)) == 0)
    return testing::AssertionSuccess();
  return testing::AssertionFailure()
         << std::scientific << a << " vs " << b << " (bit patterns differ)";
}

#define EXPECT_BITS_EQ(a, b) EXPECT_TRUE(bitsEqual((a), (b)))
#define ASSERT_BITS_EQ(a, b) ASSERT_TRUE(bitsEqual((a), (b)))

/// Kitchen-sink netlist exercising every device type the MNA stamps know:
/// vsource (w/ AC), resistor, diode, NMOS, PMOS, capacitor, inductor, VCCS,
/// VCVS, isource (w/ AC). Lanes differ in corner *and* sizing.
Netlist buildSink(const PvtCorner& c, double wScale) {
  const ProcessCard& card = bsim45Card();
  const MosParams nmos = applyPvt(card.nmos, MosType::kNmos, c, card.tnomK);
  const MosParams pmos = applyPvt(card.pmos, MosType::kPmos, c, card.tnomK);
  Netlist nl;
  nl.tempK = c.tempK();
  const NodeId vdd = nl.node("vdd");
  const NodeId n1 = nl.node("n1");
  const NodeId n2 = nl.node("n2");
  const NodeId n3 = nl.node("n3");
  const NodeId n4 = nl.node("n4");
  const NodeId n5 = nl.node("n5");
  nl.addVSource(vdd, kGround, c.vdd, 1.0);
  nl.addResistor(vdd, n1, 10e3);
  nl.addDiode(n1, kGround);
  nl.addResistor(vdd, n2, 5e3);
  const MosGeometry gn{1e-6 * wScale, card.minL, 1.0};
  const MosGeometry gp{2e-6 * wScale, card.minL, 1.0};
  nl.addMosfet("M1", n2, n1, kGround, kGround, MosType::kNmos, gn, nmos);
  nl.addMosfet("M2", n3, n2, vdd, vdd, MosType::kPmos, gp, pmos);
  nl.addResistor(n3, kGround, 20e3);
  nl.addCapacitor(n2, kGround, 1e-12);
  nl.addCapacitor(n3, n2, 0.1e-12);
  nl.addInductor(n4, n3, 1e-9);
  nl.addResistor(n4, kGround, 1e3);
  nl.addVccs(n3, kGround, n1, kGround, 1e-4);
  nl.addVcvs(n5, kGround, n2, kGround, 2.0);
  nl.addResistor(n5, kGround, 10e3);
  nl.addISource(vdd, n1, 10e-6, 1e-6);
  return nl;
}

const std::array<PvtCorner, kSimLanes> kCorners = {{
    {ProcessCorner::kTT, 1.1, 27.0},
    {ProcessCorner::kFF, 1.21, -40.0},
    {ProcessCorner::kSS, 0.99, 125.0},
    {ProcessCorner::kSF, 1.1, 85.0},
}};
const std::array<double, kSimLanes> kWScales = {1.0, 1.7, 0.6, 2.3};

struct SinkLanes {
  std::array<Netlist, kSimLanes> nls;
  std::array<linalg::Vector, kSimLanes> guesses;
  std::array<const Netlist*, kSimLanes> nlp{};
  std::array<const linalg::Vector*, kSimLanes> gp{};
  SinkLanes() {
    for (int l = 0; l < static_cast<int>(kSimLanes); ++l) {
      const auto li = static_cast<std::size_t>(l);
      nls[li] = buildSink(kCorners[li], kWScales[li]);
      guesses[li].assign(nls[li].nodeCount(), 0.0);
      nlp[li] = &nls[li];
      gp[li] = &guesses[li];
    }
  }
};

// ---- DC ------------------------------------------------------------------

TEST(SimBatchDc, EveryLaneBitwiseMatchesScalarSolver) {
  const SinkLanes lanes;
  const auto batch = solveDcBatch(lanes.nlp, lanes.gp);
  for (std::size_t l = 0; l < kSimLanes; ++l) {
    const DcResult scalar = DcSolver(lanes.nls[l]).solve(lanes.gp[l]);
    const DcResult& b = batch[l];
    ASSERT_EQ(scalar.converged, b.converged) << "lane " << l;
    EXPECT_EQ(scalar.iterations, b.iterations) << "lane " << l;
    ASSERT_EQ(scalar.v.size(), b.v.size());
    for (std::size_t i = 0; i < scalar.v.size(); ++i)
      ASSERT_BITS_EQ(scalar.v[i], b.v[i]);
    ASSERT_EQ(scalar.branchCurrents.size(), b.branchCurrents.size());
    for (std::size_t i = 0; i < scalar.branchCurrents.size(); ++i)
      ASSERT_BITS_EQ(scalar.branchCurrents[i], b.branchCurrents[i]);
    ASSERT_EQ(scalar.mosOps.size(), b.mosOps.size());
    for (std::size_t i = 0; i < scalar.mosOps.size(); ++i) {
      EXPECT_BITS_EQ(scalar.mosOps[i].ids, b.mosOps[i].ids);
      EXPECT_BITS_EQ(scalar.mosOps[i].gm, b.mosOps[i].gm);
      EXPECT_BITS_EQ(scalar.mosOps[i].gds, b.mosOps[i].gds);
    }
    ASSERT_EQ(scalar.diodeConductances.size(), b.diodeConductances.size());
    for (std::size_t i = 0; i < scalar.diodeConductances.size(); ++i)
      EXPECT_BITS_EQ(scalar.diodeConductances[i], b.diodeConductances[i]);
  }
}

TEST(SimBatchDc, NullLanesAreSkippedAndSurvivorsUnchanged) {
  const SinkLanes lanes;
  const auto full = solveDcBatch(lanes.nlp, lanes.gp);
  // Every strict subset of active lanes must reproduce the full batch's
  // lanes bitwise: lane blocking may not couple lanes numerically.
  for (std::size_t keep = 1; keep < (1u << kSimLanes) - 1; ++keep) {
    std::array<const Netlist*, kSimLanes> nlp{};
    std::array<const linalg::Vector*, kSimLanes> gp{};
    for (std::size_t l = 0; l < kSimLanes; ++l) {
      if (!(keep & (1u << l))) continue;
      nlp[l] = lanes.nlp[l];
      gp[l] = lanes.gp[l];
    }
    const auto part = solveDcBatch(nlp, gp);
    for (std::size_t l = 0; l < kSimLanes; ++l) {
      if (!(keep & (1u << l))) continue;
      ASSERT_EQ(part[l].converged, full[l].converged);
      for (std::size_t i = 0; i < full[l].v.size(); ++i)
        ASSERT_BITS_EQ(part[l].v[i], full[l].v[i]);
    }
  }
}

// ---- Transient -----------------------------------------------------------

TEST(SimBatchTransient, TracesBitwiseMatchScalarSolver) {
  const SinkLanes lanes;
  std::array<DcResult, kSimLanes> ops;
  for (std::size_t l = 0; l < kSimLanes; ++l)
    ops[l] = DcSolver(lanes.nls[l]).solve(lanes.gp[l]);

  TransientOptions topt;
  topt.tStop = 2e-10;
  topt.dt = 1e-12;
  std::array<const linalg::Vector*, kSimLanes> init{};
  for (std::size_t l = 0; l < kSimLanes; ++l) init[l] = &ops[l].v;

  TransientBatch batch(lanes.nlp, topt, init);
  batch.run();
  for (std::size_t l = 0; l < kSimLanes; ++l) {
    const TransientResult scalar =
        TransientSolver(lanes.nls[l], topt).run(ops[l].v);
    const TransientResult& b = batch.result(static_cast<int>(l));
    ASSERT_EQ(scalar.completed, b.completed) << "lane " << l;
    ASSERT_EQ(scalar.times.size(), b.times.size()) << "lane " << l;
    for (std::size_t t = 0; t < scalar.times.size(); ++t) {
      ASSERT_BITS_EQ(scalar.times[t], b.times[t]);
      ASSERT_EQ(scalar.voltages[t].size(), b.voltages[t].size());
      for (std::size_t i = 0; i < scalar.voltages[t].size(); ++i)
        ASSERT_BITS_EQ(scalar.voltages[t][i], b.voltages[t][i]);
      for (std::size_t i = 0; i < scalar.branchCurrents[t].size(); ++i)
        ASSERT_BITS_EQ(scalar.branchCurrents[t][i], b.branchCurrents[t][i]);
    }
  }
}

TEST(SimBatchTransient, SlicedSteppingEqualsSingleRun) {
  const SinkLanes lanes;
  std::array<DcResult, kSimLanes> ops;
  std::array<const linalg::Vector*, kSimLanes> init{};
  for (std::size_t l = 0; l < kSimLanes; ++l) {
    ops[l] = DcSolver(lanes.nls[l]).solve(lanes.gp[l]);
    init[l] = &ops[l].v;
  }
  TransientOptions topt;
  topt.tStop = 2e-10;
  topt.dt = 1e-12;

  TransientBatch whole(lanes.nlp, topt, init);
  whole.run();

  // step(k); step(n-k) must land on the identical trajectory for any cut —
  // the scheduler may suspend/resume a batch anywhere.
  std::mt19937_64 rng(20210605);  // seeded: failures must reproduce
  for (int trial = 0; trial < 3; ++trial) {
    TransientBatch sliced(lanes.nlp, topt, init);
    std::size_t remaining = sliced.totalSteps();
    while (remaining > 0) {
      std::uniform_int_distribution<std::size_t> cut(1, remaining);
      const std::size_t k = cut(rng);
      sliced.step(k);
      remaining -= k;
    }
    for (std::size_t l = 0; l < kSimLanes; ++l) {
      const TransientResult& a = whole.result(static_cast<int>(l));
      const TransientResult& b = sliced.result(static_cast<int>(l));
      ASSERT_EQ(a.times.size(), b.times.size());
      for (std::size_t t = 0; t < a.times.size(); ++t)
        for (std::size_t i = 0; i < a.voltages[t].size(); ++i)
          ASSERT_BITS_EQ(a.voltages[t][i], b.voltages[t][i]);
    }
  }
}

// ---- AC ------------------------------------------------------------------

TEST(SimBatchAc, SweepBitwiseMatchesScalarSolver) {
  const SinkLanes lanes;
  std::array<DcResult, kSimLanes> dcs;
  std::array<const DcResult*, kSimLanes> ops{};
  for (std::size_t l = 0; l < kSimLanes; ++l) {
    dcs[l] = DcSolver(lanes.nls[l]).solve(lanes.gp[l]);
    ops[l] = &dcs[l];
  }
  AcBatch ac(lanes.nlp, ops);
  const auto freqs = AcSolver::logSpace(10.0, 20e9, 60);
  for (const double f : freqs) {
    ac.solveAt(f);
    for (std::size_t l = 0; l < kSimLanes; ++l) {
      ASSERT_TRUE(ac.laneFinite(static_cast<int>(l)));
      const AcSolver scalar(lanes.nls[l], dcs[l]);
      const linalg::ComplexVector xs = scalar.solveAt(f);
      for (std::size_t node = 1; node < lanes.nls[l].nodeCount(); ++node) {
        const auto sv = scalar.nodeVoltage(xs, static_cast<NodeId>(node));
        const auto bv =
            ac.nodeVoltage(static_cast<int>(l), static_cast<NodeId>(node));
        ASSERT_BITS_EQ(sv.real(), bv.real());
        ASSERT_BITS_EQ(sv.imag(), bv.imag());
      }
    }
  }
}

// ---- Device-model property tests ----------------------------------------

/// Seeded geometry/bias sampler shared by the MOSFET property tests.
struct MosSample {
  MosGeometry geom;
  double vd, vs, vb, tempK;
};

std::vector<MosSample> mosSamples(std::mt19937_64& rng, int n) {
  std::uniform_real_distribution<double> w(0.4e-6, 40e-6);
  std::uniform_real_distribution<double> len(45e-9, 500e-9);
  std::uniform_real_distribution<double> vds(0.05, 1.2);
  std::uniform_real_distribution<double> vbs(-0.3, 0.0);
  std::uniform_real_distribution<double> temp(233.15, 398.15);
  std::vector<MosSample> out;
  out.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i)
    out.push_back({{w(rng), len(rng), 1.0}, vds(rng), 0.0, vbs(rng), temp(rng)});
  return out;
}

TEST(MosfetProperty, IdsIsContinuousAcrossRegionTransitions) {
  // The EKV-style interpolation has no hard region boundary, but the
  // implementation blends several expressions; walk Vgs through the whole
  // sub-/near-/super-threshold range with a fine step and require the
  // response to be locally Lipschitz against its own reported gm. A hidden
  // branch with mismatched expressions would show up as a jump.
  std::mt19937_64 rng(987654321);
  const ProcessCard& card = bsim45Card();
  for (const MosSample& s : mosSamples(rng, 8)) {
    const MosDeviceCtx ctx =
        makeMosCtx(card.nmos, MosType::kNmos, s.geom, s.tempK);
    const double dv = 1e-4;
    MosOp prev = evalMosCtx(ctx, s.vd, 0.0, s.vs, s.vb);
    for (double vg = dv; vg <= 1.3; vg += dv) {
      const MosOp cur = evalMosCtx(ctx, s.vd, vg, s.vs, s.vb);
      const double slopeBound =
          3.0 * std::max(std::abs(prev.dIdVg), std::abs(cur.dIdVg)) * dv +
          1e-18;
      EXPECT_LE(std::abs(cur.ids - prev.ids), slopeBound)
          << "jump at vg=" << vg << " w=" << s.geom.w << " l=" << s.geom.l;
      prev = cur;
    }
  }
}

TEST(MosfetProperty, IdsIsMonotoneInVgs) {
  // Physical sanity on the seeded grid: more gate drive, more current (NMOS,
  // fixed positive Vds). The batched kernel must agree bitwise, so checking
  // the scalar kernel covers both.
  std::mt19937_64 rng(123456789);
  const ProcessCard& card = bsim45Card();
  for (const MosSample& s : mosSamples(rng, 8)) {
    const MosDeviceCtx ctx =
        makeMosCtx(card.nmos, MosType::kNmos, s.geom, s.tempK);
    double prevIds = evalMosCtx(ctx, s.vd, 0.0, s.vs, s.vb).ids;
    for (double vg = 0.01; vg <= 1.3; vg += 0.01) {
      const double ids = evalMosCtx(ctx, s.vd, vg, s.vs, s.vb).ids;
      EXPECT_GE(ids, prevIds) << "vg=" << vg << " w=" << s.geom.w;
      prevIds = ids;
    }
  }
}

TEST(MosfetProperty, BlockKernelBitwiseMatchesScalarKernel) {
  // Random (geometry, bias, corner) lanes: evalMosBlock lane l must equal
  // evalMosCtx on lane l's inputs bit for bit — the foundation every
  // higher-level equivalence in this file rests on.
  std::mt19937_64 rng(555555);
  const ProcessCard& card = bsim45Card();
  std::uniform_real_distribution<double> v(-0.2, 1.3);
  for (int trial = 0; trial < 64; ++trial) {
    MosCtxBlock blk;
    std::array<MosDeviceCtx, kSimLanes> ctxs;
    double vd[kSimLanes], vg[kSimLanes], vs[kSimLanes], vb[kSimLanes];
    auto samples = mosSamples(rng, static_cast<int>(kSimLanes));
    for (std::size_t l = 0; l < kSimLanes; ++l) {
      const MosType type = (trial % 2) ? MosType::kPmos : MosType::kNmos;
      const MosParams& p = (trial % 2) ? card.pmos : card.nmos;
      ctxs[l] = makeMosCtx(p, type, samples[l].geom, samples[l].tempK);
      blk.sign[l] = ctxs[l].sign;
      blk.vt[l] = ctxs[l].vt;
      blk.n[l] = ctxs[l].n;
      blk.ispec[l] = ctxs[l].ispec;
      blk.sq0[l] = ctxs[l].sq0;
      blk.lambda[l] = ctxs[l].lambda;
      blk.vth0[l] = ctxs[l].vth0;
      blk.gamma[l] = ctxs[l].gamma;
      blk.phi[l] = ctxs[l].phi;
      blk.invN[l] = ctxs[l].invN;
      blk.invVtN[l] = ctxs[l].invVtN;
      blk.negInvVt[l] = ctxs[l].negInvVt;
      vd[l] = v(rng);
      vg[l] = v(rng);
      vs[l] = v(rng);
      vb[l] = v(rng);
    }
    MosOpBlock out;
    evalMosBlock(blk, vd, vg, vs, vb, out);
    for (std::size_t l = 0; l < kSimLanes; ++l) {
      const MosOp ref = evalMosCtx(ctxs[l], vd[l], vg[l], vs[l], vb[l]);
      ASSERT_BITS_EQ(ref.ids, out.ids[l]);
      ASSERT_BITS_EQ(ref.dIdVd, out.dIdVd[l]);
      ASSERT_BITS_EQ(ref.dIdVg, out.dIdVg[l]);
      ASSERT_BITS_EQ(ref.dIdVs, out.dIdVs[l]);
      ASSERT_BITS_EQ(ref.dIdVb, out.dIdVb[l]);
      ASSERT_BITS_EQ(ref.gm, out.gm[l]);
      ASSERT_BITS_EQ(ref.gds, out.gds[l]);
    }
  }
}

TEST(DiodeProperty, ConductanceIsStrictlyPositive) {
  // gd = dI/dV of the exponential law is positive everywhere — including
  // deep reverse bias, where a careless linearization could return 0 and
  // de-rank the Newton Jacobian.
  std::mt19937_64 rng(24681012);
  std::uniform_real_distribution<double> isat(1e-16, 1e-12);
  std::uniform_real_distribution<double> emission(1.0, 2.0);
  std::uniform_real_distribution<double> temp(233.15, 398.15);
  for (int trial = 0; trial < 32; ++trial) {
    Diode d;
    d.isat = isat(rng);
    d.emission = emission(rng);
    const double tempK = temp(rng);
    for (double vak = -1.0; vak <= 0.9; vak += 0.01) {
      const DiodeOp op = evalDiode(d, vak, tempK);
      EXPECT_GT(op.gd, 0.0) << "vak=" << vak << " isat=" << d.isat;
      EXPECT_TRUE(std::isfinite(op.id));
    }
  }
}

}  // namespace
}  // namespace trdse::sim

// ---- EvalEngine-level equivalence ----------------------------------------

namespace trdse::eval {
namespace {

testing::AssertionResult sameBits(double a, double b) {
  if (std::memcmp(&a, &b, sizeof(double)) == 0)
    return testing::AssertionSuccess();
  return testing::AssertionFailure()
         << std::scientific << a << " vs " << b << " (bit patterns differ)";
}

/// A few deterministic on-grid sizings spread across the space.
std::vector<linalg::Vector> probeSizings(const core::DesignSpace& space,
                                         int n) {
  std::vector<linalg::Vector> out;
  for (int s = 0; s < n; ++s) {
    linalg::Vector v(space.dim());
    for (std::size_t d = 0; d < space.dim(); ++d) {
      const auto& ax = space.param(d);
      v[d] = space.gridValue(
          d, (static_cast<std::size_t>(s) * 7 + d * 3) % ax.steps);
    }
    out.push_back(std::move(v));
  }
  return out;
}

TEST(EvalEngineBatch, RegistryCircuitsBitwiseIdenticalAcrossModesAndThreads) {
  // The acceptance bar of the batched backend: for every registry circuit,
  // every corner of the nine-corner sign-off set, and every thread count,
  // the engine with batchedSim on returns byte-identical results, ledger,
  // and stats (minus wall-clock) to the scalar engine. Caching is off so
  // every request actually exercises the backend dispatch under test.
  const auto& reg = circuits::Registry::global();
  for (const auto& name : reg.names()) {
    const auto nominal = reg.makeProblem(name);
    ASSERT_TRUE(static_cast<bool>(nominal.evaluateBatch))
        << name << " does not publish a batch evaluator";
    const double vdd = nominal.corners.empty() ? 1.1 : nominal.corners[0].vdd;
    const auto problem = reg.makeProblem(name, pvt::nineCornerSet(vdd));
    std::vector<std::size_t> cornerIdx(problem.corners.size());
    for (std::size_t i = 0; i < cornerIdx.size(); ++i) cornerIdx[i] = i;
    const auto sizings = probeSizings(problem.space, 2);

    for (const std::size_t threads : {1u, 2u, 4u}) {
      EvalEngineConfig scalarCfg{/*cacheEvals=*/false, threads,
                                 /*recordLedger=*/true, /*batchedSim=*/false};
      EvalEngineConfig batchCfg{/*cacheEvals=*/false, threads,
                                /*recordLedger=*/true, /*batchedSim=*/true};
      EvalEngine scalarEngine(problem, scalarCfg);
      EvalEngine batchEngine(problem, batchCfg);
      for (const auto& v : sizings) {
        const auto rs = scalarEngine.evalBatch(cornerIdx, v,
                                               pvt::BlockKind::kSearch);
        const auto rb = batchEngine.evalBatch(cornerIdx, v,
                                              pvt::BlockKind::kSearch);
        ASSERT_EQ(rs.size(), rb.size());
        for (std::size_t c = 0; c < rs.size(); ++c) {
          ASSERT_EQ(rs[c].ok, rb[c].ok)
              << name << " corner " << c << " threads " << threads;
          ASSERT_EQ(rs[c].failure, rb[c].failure);
          ASSERT_EQ(rs[c].measurements.size(), rb[c].measurements.size());
          for (std::size_t m = 0; m < rs[c].measurements.size(); ++m)
            ASSERT_TRUE(sameBits(rs[c].measurements[m], rb[c].measurements[m]))
                << name << " corner " << c << " meas " << m << " threads "
                << threads;
        }
      }
      // Ledger: identical block sequence (EdaBlock carries no wall-clock).
      const auto& ls = scalarEngine.ledger().blocks();
      const auto& lb = batchEngine.ledger().blocks();
      ASSERT_EQ(ls.size(), lb.size()) << name;
      for (std::size_t i = 0; i < ls.size(); ++i) {
        EXPECT_EQ(ls[i].cornerIndex, lb[i].cornerIndex);
        EXPECT_EQ(ls[i].kind, lb[i].kind);
        EXPECT_EQ(ls[i].meetsSpec, lb[i].meetsSpec);
        EXPECT_EQ(ls[i].cached, lb[i].cached);
        EXPECT_EQ(ls[i].failed, lb[i].failed);
        EXPECT_EQ(ls[i].retries, lb[i].retries);
        EXPECT_EQ(ls[i].backoff, lb[i].backoff);
      }
      // Stats: identical except backendSeconds (wall time, not semantics).
      const EvalStats& ss = scalarEngine.stats();
      const EvalStats& sb = batchEngine.stats();
      EXPECT_EQ(ss.requests, sb.requests);
      EXPECT_EQ(ss.simulated, sb.simulated);
      EXPECT_EQ(ss.cacheHits, sb.cacheHits);
      EXPECT_EQ(ss.sharedHits, sb.sharedHits);
      EXPECT_EQ(ss.attempts, sb.attempts);
      EXPECT_EQ(ss.faults, sb.faults);
      EXPECT_EQ(ss.failures, sb.failures);
      EXPECT_EQ(ss.backoffUnits, sb.backoffUnits);
    }
  }
}

TEST(EvalEngineBatch, OddBatchSizesAndRepeatsStayBitwiseIdentical) {
  // Request counts that do not divide the lane width (1, 3, 5, 9 requests)
  // force ragged tail chunks; duplicates force the cache-dedup path to
  // interact with chunking. All must be invisible in the results.
  const auto& reg = circuits::Registry::global();
  const auto problem =
      reg.makeProblem("two_stage_opamp", pvt::nineCornerSet(1.1));
  const auto sizings = probeSizings(problem.space, 1);
  for (const std::size_t n : {1u, 3u, 5u, 9u}) {
    std::vector<std::size_t> cornerIdx(n);
    for (std::size_t i = 0; i < n; ++i) cornerIdx[i] = i % 9;
    EvalEngine scalarEngine(
        problem, EvalEngineConfig{true, 1, true, /*batchedSim=*/false});
    EvalEngine batchEngine(
        problem, EvalEngineConfig{true, 1, true, /*batchedSim=*/true});
    const auto rs =
        scalarEngine.evalBatch(cornerIdx, sizings[0], pvt::BlockKind::kSearch);
    const auto rb =
        batchEngine.evalBatch(cornerIdx, sizings[0], pvt::BlockKind::kSearch);
    ASSERT_EQ(rs.size(), rb.size());
    for (std::size_t c = 0; c < rs.size(); ++c) {
      ASSERT_EQ(rs[c].ok, rb[c].ok);
      for (std::size_t m = 0; m < rs[c].measurements.size(); ++m)
        ASSERT_TRUE(sameBits(rs[c].measurements[m], rb[c].measurements[m]));
    }
  }
}

TEST(EvalEngineBatch, ProblemBatchEvaluatorMatchesScalarEvaluatePerSlot) {
  // The raw SizingProblem::evaluateBatch contract, without the engine in
  // between: slot i == evaluate(sizes, corners[i]), bit for bit, for a
  // ragged count too.
  const auto& reg = circuits::Registry::global();
  for (const auto& name : reg.names()) {
    const auto nominal = reg.makeProblem(name);
    const double vdd = nominal.corners.empty() ? 1.1 : nominal.corners[0].vdd;
    const auto problem = reg.makeProblem(name, pvt::nineCornerSet(vdd));
    const auto sizings = probeSizings(problem.space, 1);
    const std::size_t count = problem.corners.size();  // 9: ragged tail of 1
    std::vector<core::EvalResult> batch(count);
    const std::vector<const linalg::Vector*> slotSizes(count, &sizings[0]);
    problem.evaluateBatch(slotSizes.data(), problem.corners.data(),
                          batch.data(), count);
    for (std::size_t i = 0; i < count; ++i) {
      const core::EvalResult ref =
          problem.evaluate(sizings[0], problem.corners[i]);
      ASSERT_EQ(ref.ok, batch[i].ok) << name << " slot " << i;
      ASSERT_EQ(ref.measurements.size(), batch[i].measurements.size());
      for (std::size_t m = 0; m < ref.measurements.size(); ++m)
        ASSERT_TRUE(sameBits(ref.measurements[m], batch[i].measurements[m]))
            << name << " slot " << i << " meas " << m;
    }
  }
}

TEST(AssemblyPlanCache, RepeatSweepsRebuildNothingAndStayBitwise) {
  // The tentpole property: the per-topology AssemblyPlan is built once on
  // the first evaluation of a topology and every later sweep — same sizing
  // or a different one on the same schematic — reuses it verbatim. Reuse
  // must be invisible in the numbers: a warm-cache sweep reproduces the
  // cold-cache sweep bit for bit, and a cold rebuild is deterministic
  // (same build count, same bits).
  const auto& reg = circuits::Registry::global();
  for (const auto& name : reg.names()) {
    const auto nominal = reg.makeProblem(name);
    const double vdd = nominal.corners.empty() ? 1.1 : nominal.corners[0].vdd;
    const auto problem = reg.makeProblem(name, pvt::nineCornerSet(vdd));
    const auto sizings = probeSizings(problem.space, 2);
    const std::size_t count = problem.corners.size();
    const auto sweep = [&](const linalg::Vector& x) {
      std::vector<core::EvalResult> out(count);
      const std::vector<const linalg::Vector*> slots(count, &x);
      problem.evaluateBatch(slots.data(), problem.corners.data(), out.data(),
                            count);
      return out;
    };
    const auto expectSameBits = [&](const std::vector<core::EvalResult>& a,
                                    const std::vector<core::EvalResult>& b) {
      ASSERT_EQ(a.size(), b.size());
      for (std::size_t i = 0; i < a.size(); ++i) {
        ASSERT_EQ(a[i].ok, b[i].ok) << name << " slot " << i;
        ASSERT_EQ(a[i].measurements.size(), b[i].measurements.size());
        for (std::size_t m = 0; m < a[i].measurements.size(); ++m)
          ASSERT_TRUE(sameBits(a[i].measurements[m], b[i].measurements[m]))
              << name << " slot " << i << " meas " << m;
      }
    };

    sim::clearPlanCache();
    const std::uint64_t cold0 = sim::planBuildCount();
    const auto first = sweep(sizings[0]);
    const std::uint64_t coldBuilds = sim::planBuildCount() - cold0;
    EXPECT_GT(coldBuilds, 0u) << name << ": cold sweep built no plan";

    // Warm sweeps: same sizing, then a different sizing on the same
    // topology. Neither may build anything.
    const auto repeat = sweep(sizings[0]);
    const auto other = sweep(sizings[1]);
    (void)other;
    EXPECT_EQ(sim::planBuildCount() - cold0, coldBuilds)
        << name << ": warm sweep rebuilt a plan";
    expectSameBits(first, repeat);

    // Cold rebuild is deterministic: same build count, same bits.
    sim::clearPlanCache();
    const std::uint64_t cold1 = sim::planBuildCount();
    const auto rebuilt = sweep(sizings[0]);
    EXPECT_EQ(sim::planBuildCount() - cold1, coldBuilds) << name;
    expectSameBits(first, rebuilt);
  }
}

TEST(EvalEnginePacked, PackedSweepMatchesPerRequestBatches) {
  // Cross-request lane packing: evalPacked fuses all points' misses into
  // one dispatch (lanes may mix sizings mid-chunk), yet results, stats,
  // and the ledger must be exactly what the same engine produces for one
  // evalBatch per point. A duplicated point exercises the cross-point
  // duplicate rule against the sequential engine's plain cache hit.
  const auto& reg = circuits::Registry::global();
  const auto problem =
      reg.makeProblem("two_stage_opamp", pvt::nineCornerSet(1.1));
  auto points = probeSizings(problem.space, 3);
  points.push_back(points[0]);  // packed: cross-point dup; sequential: hits
  std::vector<std::size_t> cornerIdx(problem.corners.size());
  for (std::size_t i = 0; i < cornerIdx.size(); ++i) cornerIdx[i] = i;

  for (const std::size_t threads : {1u, 2u, 4u}) {
    const EvalEngineConfig cfg{/*cacheEvals=*/true, threads,
                               /*recordLedger=*/true, /*batchedSim=*/true};
    EvalEngine packed(problem, cfg);
    EvalEngine sequential(problem, cfg);

    const auto flat =
        packed.evalPacked(points, cornerIdx, pvt::BlockKind::kSearch);
    ASSERT_EQ(flat.size(), points.size() * cornerIdx.size());
    std::vector<core::EvalResult> ref;
    for (const auto& p : points) {
      const auto r = sequential.evalBatch(cornerIdx, p, pvt::BlockKind::kSearch);
      ref.insert(ref.end(), r.begin(), r.end());
    }

    for (std::size_t i = 0; i < ref.size(); ++i) {
      ASSERT_EQ(ref[i].ok, flat[i].ok) << "slot " << i << " threads " << threads;
      ASSERT_EQ(ref[i].failure, flat[i].failure);
      ASSERT_EQ(ref[i].measurements.size(), flat[i].measurements.size());
      for (std::size_t m = 0; m < ref[i].measurements.size(); ++m)
        ASSERT_TRUE(sameBits(ref[i].measurements[m], flat[i].measurements[m]))
            << "slot " << i << " meas " << m << " threads " << threads;
    }

    const EvalStats& sp = packed.stats();
    const EvalStats& ss = sequential.stats();
    EXPECT_EQ(sp.requests, ss.requests);
    EXPECT_EQ(sp.simulated, ss.simulated);
    EXPECT_EQ(sp.cacheHits, ss.cacheHits);
    EXPECT_EQ(sp.sharedHits, ss.sharedHits);
    EXPECT_EQ(sp.attempts, ss.attempts);
    EXPECT_EQ(sp.faults, ss.faults);
    EXPECT_EQ(sp.failures, ss.failures);
    EXPECT_EQ(sp.backoffUnits, ss.backoffUnits);

    const auto& lp = packed.ledger().blocks();
    const auto& ls = sequential.ledger().blocks();
    ASSERT_EQ(lp.size(), ls.size());
    for (std::size_t i = 0; i < lp.size(); ++i) {
      EXPECT_EQ(lp[i].cornerIndex, ls[i].cornerIndex) << "block " << i;
      EXPECT_EQ(lp[i].kind, ls[i].kind);
      EXPECT_EQ(lp[i].meetsSpec, ls[i].meetsSpec);
      EXPECT_EQ(lp[i].cached, ls[i].cached);
      EXPECT_EQ(lp[i].failed, ls[i].failed);
    }
  }
}

/// Deterministic synthetic backend that records how the engine shaped its
/// dispatch: every evaluateBatch chunk size in call order, plus the number
/// of scalar calls. Results are a pure function of (sizes[0], corner) so
/// the batched and scalar paths are trivially bitwise identical.
class ChunkRecordingBackend final : public EvalBackend {
 public:
  std::string_view name() const override { return "chunk-recording"; }

  core::EvalResult evaluate(const linalg::Vector& sizes,
                            const sim::PvtCorner& corner) const override {
    ++scalarCalls;
    return make(sizes, corner);
  }

  std::size_t batchWidth() const override { return 4; }

  void evaluateBatch(const linalg::Vector* const* sizes,
                     const sim::PvtCorner* corners, const EvalContext*,
                     core::EvalResult* results,
                     std::size_t count) const override {
    chunkSizes.push_back(count);
    for (std::size_t i = 0; i < count; ++i)
      results[i] = make(*sizes[i], corners[i]);
  }

  static core::EvalResult make(const linalg::Vector& sizes,
                               const sim::PvtCorner& corner) {
    core::EvalResult r;
    r.ok = true;
    r.measurements = linalg::Vector(1);
    r.measurements[0] = sizes[0] + 1e3 * corner.vdd + corner.tempC;
    return r;
  }

  mutable std::size_t scalarCalls = 0;
  mutable std::vector<std::size_t> chunkSizes;
};

TEST(EvalEngineBatch, RaggedTailOfOneDispatchesScalar) {
  // The tail rule: a trailing chunk of exactly one miss runs through the
  // scalar path (same bits by the batch contract, one lane's cost instead
  // of a whole batch); tails of 2..width-1 stay batched. Verified against
  // the recorded dispatch shape for every remainder class of width 4, with
  // results identical to a batched-off engine.
  const auto problem = circuits::Registry::global().makeProblem(
      "two_stage_opamp", pvt::nineCornerSet(1.1));
  struct Case {
    std::size_t requests;
    std::vector<std::size_t> wantChunks;
    std::size_t wantScalar;
  };
  const std::vector<Case> cases = {
      {1, {}, 1},        // lone request: batch of 1 would waste 3 lanes
      {4, {4}, 0},       // exact chunk
      {5, {4}, 1},       // tail of 1 -> scalar
      {6, {4, 2}, 0},    // tail of 2 stays batched
      {9, {4, 4}, 1},    // two chunks + scalar tail
  };
  for (const Case& c : cases) {
    auto backend = std::make_shared<ChunkRecordingBackend>();
    auto scalarBackend = std::make_shared<ChunkRecordingBackend>();
    // threads=1 keeps chunk completion in submission order so the recorded
    // shape is deterministic; cache off so every request is a miss.
    EvalEngine engine(backend, problem.space, problem.corners, {},
                      EvalEngineConfig{false, 1, true, /*batchedSim=*/true});
    EvalEngine scalarEngine(
        scalarBackend, problem.space, problem.corners, {},
        EvalEngineConfig{false, 1, true, /*batchedSim=*/false});
    std::vector<std::size_t> cornerIdx(c.requests);
    for (std::size_t i = 0; i < c.requests; ++i) cornerIdx[i] = i % 9;
    const auto sizing = probeSizings(problem.space, 1)[0];
    const auto got =
        engine.evalBatch(cornerIdx, sizing, pvt::BlockKind::kSearch);
    const auto want =
        scalarEngine.evalBatch(cornerIdx, sizing, pvt::BlockKind::kSearch);

    EXPECT_EQ(backend->chunkSizes, c.wantChunks)
        << c.requests << " requests: unexpected batch chunking";
    EXPECT_EQ(backend->scalarCalls, c.wantScalar)
        << c.requests << " requests: unexpected scalar-call count";
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t i = 0; i < got.size(); ++i) {
      ASSERT_EQ(got[i].ok, want[i].ok);
      for (std::size_t m = 0; m < got[i].measurements.size(); ++m)
        ASSERT_TRUE(sameBits(got[i].measurements[m], want[i].measurements[m]));
    }
  }
}

}  // namespace
}  // namespace trdse::eval
