#include <gtest/gtest.h>

#include <cmath>
#include <random>
#include <sstream>

#include "nn/distribution.hpp"
#include "nn/loss.hpp"
#include "nn/mlp.hpp"
#include "nn/optimizer.hpp"
#include "nn/scaler.hpp"
#include "nn/serialize.hpp"

namespace trdse::nn {
namespace {

MlpConfig smallConfig(Activation hidden = Activation::kTanh) {
  MlpConfig c;
  c.layerSizes = {3, 8, 2};
  c.hidden = hidden;
  return c;
}

TEST(Mlp, ShapesAndDeterminism) {
  Mlp a(smallConfig(), 42);
  Mlp b(smallConfig(), 42);
  EXPECT_EQ(a.inputDim(), 3u);
  EXPECT_EQ(a.outputDim(), 2u);
  EXPECT_EQ(a.getParameters(), b.getParameters());
  Mlp c(smallConfig(), 43);
  EXPECT_NE(a.getParameters(), c.getParameters());
}

TEST(Mlp, FlatParameterRoundTrip) {
  Mlp net(smallConfig(), 1);
  linalg::Vector p = net.getParameters();
  EXPECT_EQ(p.size(), net.parameterCount());
  for (auto& v : p) v += 0.25;
  net.setParameters(p);
  EXPECT_EQ(net.getParameters(), p);
}

TEST(Mlp, AddToParameters) {
  Mlp net(smallConfig(), 1);
  const linalg::Vector p0 = net.getParameters();
  linalg::Vector dir(p0.size(), 1.0);
  net.addToParameters(dir, 0.5);
  const linalg::Vector p1 = net.getParameters();
  for (std::size_t i = 0; i < p0.size(); ++i) EXPECT_NEAR(p1[i], p0[i] + 0.5, 1e-12);
}

/// Finite-difference gradient check: the analytic backward pass must match
/// numerical differentiation of the MSE loss through the whole network.
class GradientCheckTest : public ::testing::TestWithParam<int> {};

TEST_P(GradientCheckTest, BackpropMatchesFiniteDifference) {
  const Activation act =
      GetParam() % 2 == 0 ? Activation::kTanh : Activation::kRelu;
  Mlp net(smallConfig(act), static_cast<std::uint64_t>(GetParam()));
  std::mt19937_64 rng(static_cast<std::uint64_t>(GetParam()) + 99);
  std::uniform_real_distribution<double> d(-1.0, 1.0);
  const linalg::Vector x = {d(rng), d(rng), d(rng)};
  const linalg::Vector y = {d(rng), d(rng)};

  net.zeroGrad();
  const linalg::Vector pred = net.forward(x);
  net.backward(mseGrad(pred, y));
  const linalg::Vector analytic = net.getGradients();

  const linalg::Vector p0 = net.getParameters();
  constexpr double kEps = 1e-6;
  for (std::size_t i = 0; i < p0.size(); i += 7) {  // spot-check every 7th
    linalg::Vector p = p0;
    p[i] += kEps;
    net.setParameters(p);
    const double lossP = mseLoss(net.predict(x), y);
    p[i] -= 2 * kEps;
    net.setParameters(p);
    const double lossM = mseLoss(net.predict(x), y);
    const double numeric = (lossP - lossM) / (2 * kEps);
    EXPECT_NEAR(analytic[i], numeric, 1e-5)
        << "param " << i << " activation " << toString(act);
    net.setParameters(p0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GradientCheckTest, ::testing::Range(0, 8));

TEST(Training, LearnsLinearMap) {
  // y = A x with A fixed; a linear-capacity problem any MLP must crush.
  std::mt19937_64 rng(3);
  std::uniform_real_distribution<double> d(-1.0, 1.0);
  std::vector<linalg::Vector> xs;
  std::vector<linalg::Vector> ys;
  for (int i = 0; i < 200; ++i) {
    const linalg::Vector x = {d(rng), d(rng), d(rng)};
    xs.push_back(x);
    ys.push_back({0.5 * x[0] - x[1], x[2] + 0.25 * x[0]});
  }
  Mlp net(smallConfig(), 7);
  AdamOptimizer opt(1e-2);
  double loss = 0.0;
  for (int e = 0; e < 200; ++e)
    loss = trainEpochMse(net, opt, xs, ys, 16, rng).meanLoss;
  EXPECT_LT(loss, 1e-3);
  EXPECT_LT(evaluateMse(net, xs, ys), 1e-3);
}

TEST(Training, LearnsNonlinearFunction) {
  std::mt19937_64 rng(5);
  std::uniform_real_distribution<double> d(-1.0, 1.0);
  std::vector<linalg::Vector> xs;
  std::vector<linalg::Vector> ys;
  for (int i = 0; i < 300; ++i) {
    const linalg::Vector x = {d(rng), d(rng), d(rng)};
    xs.push_back(x);
    ys.push_back({std::sin(2.0 * x[0]) * x[1], x[2] * x[2]});
  }
  MlpConfig cfg;
  cfg.layerSizes = {3, 24, 24, 2};
  Mlp net(cfg, 11);
  AdamOptimizer opt(3e-3);
  double loss = 1.0;
  for (int e = 0; e < 400; ++e)
    loss = trainEpochMse(net, opt, xs, ys, 32, rng).meanLoss;
  EXPECT_LT(loss, 5e-3);
}

TEST(Optimizer, SgdMomentumDescends) {
  Mlp net(smallConfig(), 2);
  std::mt19937_64 rng(2);
  const std::vector<linalg::Vector> xs = {{1.0, 0.0, 0.0}, {0.0, 1.0, 0.0}};
  const std::vector<linalg::Vector> ys = {{1.0, 0.0}, {0.0, 1.0}};
  SgdOptimizer opt(0.05, 0.9);
  const double loss0 = evaluateMse(net, xs, ys);
  for (int e = 0; e < 100; ++e) trainEpochMse(net, opt, xs, ys, 2, rng);
  EXPECT_LT(evaluateMse(net, xs, ys), loss0);
}

TEST(Mlp, ClipGradNorm) {
  Mlp net(smallConfig(), 3);
  net.zeroGrad();
  const linalg::Vector pred = net.forward({1.0, -1.0, 0.5});
  net.backward({10.0, -10.0});
  const double norm = clipGradNorm(net, 0.1);
  EXPECT_GT(norm, 0.1);
  double clipped = 0.0;
  for (double g : net.getGradients()) clipped += g * g;
  EXPECT_NEAR(std::sqrt(clipped), 0.1, 1e-9);
}

TEST(Distribution, SoftmaxNormalizes) {
  const linalg::Vector p = softmax({1.0, 2.0, 3.0});
  EXPECT_NEAR(p[0] + p[1] + p[2], 1.0, 1e-12);
  EXPECT_GT(p[2], p[1]);
  EXPECT_GT(p[1], p[0]);
}

TEST(Distribution, SoftmaxStableForLargeLogits) {
  const linalg::Vector p = softmax({1000.0, 1001.0, 999.0});
  EXPECT_NEAR(p[0] + p[1] + p[2], 1.0, 1e-12);
  EXPECT_FALSE(std::isnan(p[0]));
}

TEST(Distribution, LogSoftmaxMatchesSoftmax) {
  const linalg::Vector logits = {0.3, -1.2, 2.0};
  const linalg::Vector p = softmax(logits);
  const linalg::Vector lp = logSoftmax(logits);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_NEAR(std::exp(lp[i]), p[i], 1e-12);
}

TEST(Distribution, EntropyBounds) {
  EXPECT_NEAR(categoricalEntropy({1.0, 1.0, 1.0}), std::log(3.0), 1e-12);
  EXPECT_LT(categoricalEntropy({100.0, 0.0, 0.0}), 1e-6);
}

TEST(Distribution, KlProperties) {
  const linalg::Vector a = {0.5, 1.5, -0.3};
  EXPECT_NEAR(categoricalKl(a, a), 0.0, 1e-12);
  EXPECT_GT(categoricalKl(a, {2.0, -1.0, 0.0}), 0.0);
}

TEST(Distribution, SamplingFollowsProbabilities) {
  std::mt19937_64 rng(17);
  const linalg::Vector logits = {0.0, 2.0, 0.0};
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 3000; ++i) ++counts[sampleCategorical(logits, rng)];
  const linalg::Vector p = softmax(logits);
  EXPECT_NEAR(counts[1] / 3000.0, p[1], 0.05);
}

TEST(Distribution, LogProbGradSumsToZero) {
  const linalg::Vector g = logProbGrad({0.5, -0.5, 1.0}, 2);
  EXPECT_NEAR(g[0] + g[1] + g[2], 0.0, 1e-12);
  EXPECT_GT(g[2], 0.0);
}

TEST(Scaler, MinMaxRoundTrip) {
  MinMaxScaler s({0.0, 10.0}, {1.0, 20.0});
  const linalg::Vector z = s.transform({0.5, 15.0});
  EXPECT_NEAR(z[0], 0.0, 1e-12);
  EXPECT_NEAR(z[1], 0.0, 1e-12);
  const linalg::Vector x = s.inverse(z);
  EXPECT_NEAR(x[0], 0.5, 1e-12);
  EXPECT_NEAR(x[1], 15.0, 1e-12);
}

TEST(Scaler, StandardizerRoundTrip) {
  Standardizer s;
  s.fit({{1.0, 100.0}, {3.0, 300.0}, {2.0, 200.0}});
  const linalg::Vector z = s.transform({2.0, 200.0});
  EXPECT_NEAR(z[0], 0.0, 1e-12);
  EXPECT_NEAR(z[1], 0.0, 1e-12);
  const linalg::Vector x = s.inverse({1.0, -1.0});
  EXPECT_GT(x[0], 2.0);
  EXPECT_LT(x[1], 200.0);
}

TEST(Scaler, DegenerateDimension) {
  Standardizer s;
  s.fit({{5.0, 1.0}, {5.0, 2.0}});
  const linalg::Vector z = s.transform({5.0, 1.5});
  EXPECT_NEAR(z[0], 0.0, 1e-12);  // centred, unscaled
  EXPECT_FALSE(std::isnan(z[1]));
}

TEST(Serialize, MlpRoundTrip) {
  Mlp net(smallConfig(), 77);
  std::stringstream ss;
  saveMlp(net, ss);
  const auto loaded = loadMlp(ss);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->getParameters(), net.getParameters());
  EXPECT_EQ(loaded->config().layerSizes, net.config().layerSizes);
  // Same predictions.
  const linalg::Vector x = {0.1, -0.2, 0.3};
  const linalg::Vector a = net.predict(x);
  const linalg::Vector b = loaded->predict(x);
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_DOUBLE_EQ(a[i], b[i]);
}

TEST(Serialize, RejectsGarbage) {
  std::stringstream ss;
  ss << "not a model";
  EXPECT_FALSE(loadMlp(ss).has_value());
}

TEST(Serialize, StandardizerRoundTrip) {
  Standardizer s;
  s.fit({{1.0, -5.0}, {2.0, 5.0}});
  std::stringstream ss;
  saveStandardizer(s, ss);
  const auto loaded = loadStandardizer(ss);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->mean(), s.mean());
  EXPECT_EQ(loaded->std(), s.std());
}

TEST(Serialize, FileRoundTrip) {
  Mlp net(smallConfig(), 5);
  const std::string path = ::testing::TempDir() + "/mlp_roundtrip.bin";
  ASSERT_TRUE(saveMlpToFile(net, path));
  const auto loaded = loadMlpFromFile(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->getParameters(), net.getParameters());
}

}  // namespace
}  // namespace trdse::nn
