// Tests for the unified evaluation engine (src/eval) and the circuit
// registry: memoization correctness, in-batch dedup, deterministic
// accounting, bitwise cache-on/off and thread-count invariance of seeded
// searches, and declarative scenario construction for all four circuits.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <random>
#include <stdexcept>

#include "circuits/ico.hpp"
#include "circuits/ldo.hpp"
#include "circuits/registry.hpp"
#include "core/local_explorer.hpp"
#include "core/pvt_search.hpp"
#include "core/sizing_api.hpp"
#include "eval/circuit_backend.hpp"
#include "eval/eval_cache.hpp"
#include "eval/eval_engine.hpp"
#include "rl/sizing_env.hpp"

namespace trdse {
namespace {

using linalg::Vector;

/// Cheap closed-form multi-corner CSP; counts real evaluate() calls so tests
/// can distinguish logical requests from backend invocations.
core::SizingProblem countingProblem(std::shared_ptr<std::atomic<int>> calls) {
  core::SizingProblem p;
  p.name = "counting";
  p.space = core::DesignSpace({{"x", 0.0, 1.0, 41, false},
                               {"y", 0.0, 1.0, 41, false}});
  p.measurementNames = {"closeness"};
  p.specs = {{"closeness", core::SpecKind::kAtLeast, 0.9}};
  p.corners = {{sim::ProcessCorner::kTT, 1.0, 27.0},
               {sim::ProcessCorner::kSS, 1.0, 125.0},
               {sim::ProcessCorner::kFF, 1.0, -40.0}};
  p.evaluate = [calls](const Vector& v, const sim::PvtCorner& c) {
    ++*calls;
    core::EvalResult r;
    r.ok = true;
    const double dx = v[0] - 0.4;
    const double dy = v[1] - 0.6;
    const double penalty = c.tempC > 100.0 ? 0.02 : 0.0;
    r.measurements = {1.0 - std::sqrt(dx * dx + dy * dy) - penalty};
    return r;
  };
  return p;
}

// ---------- EvalCache ----------

TEST(EvalCache, KeyedOnIndicesAndCorner) {
  eval::EvalCache cache;
  core::EvalResult r;
  r.ok = true;
  r.measurements = {1.0};
  cache.insert({{3, 7}, 0}, r);
  EXPECT_NE(cache.find({{3, 7}, 0}), nullptr);
  EXPECT_EQ(cache.find({{3, 7}, 1}), nullptr);  // other corner
  EXPECT_EQ(cache.find({{3, 8}, 0}), nullptr);  // other point
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.find({{3, 7}, 0})->measurements, r.measurements);
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
}

// ---------- EvalEngine ----------

TEST(EvalEngine, MemoizesAcrossBatchesAndCountsBlocks) {
  auto calls = std::make_shared<std::atomic<int>>(0);
  const auto prob = countingProblem(calls);
  eval::EvalEngine engine(prob, {/*cacheEvals=*/true, /*threads=*/1});

  const Vector point = prob.space.snap({0.41, 0.59});
  const std::vector<std::size_t> corners{0, 1, 2};
  const auto first = engine.evalBatch(corners, point, pvt::BlockKind::kSearch);
  EXPECT_EQ(calls->load(), 3);

  // Same snapped point, same corners: everything served from the memo.
  const auto second = engine.evalBatch(corners, point, pvt::BlockKind::kVerify);
  EXPECT_EQ(calls->load(), 3);
  ASSERT_EQ(second.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(second[i].ok, first[i].ok);
    EXPECT_EQ(second[i].measurements, first[i].measurements);  // bitwise
  }

  // A different raw value snapping to the same grid point also hits.
  const Vector nearby{0.412, 0.588};
  engine.evalBatch({0}, prob.space.snap(nearby), pvt::BlockKind::kSearch);
  EXPECT_EQ(calls->load(), 3);

  const eval::EvalStats& s = engine.stats();
  EXPECT_EQ(s.requests, 7u);
  EXPECT_EQ(s.simulated, 3u);
  EXPECT_EQ(s.cacheHits, 4u);
  EXPECT_EQ(s.blocksSaved(), 4u);
  EXPECT_EQ(engine.cacheSize(), 3u);

  // Ledger: one block per logical request, hits flagged cached.
  EXPECT_EQ(engine.ledger().totalBlocks(), 7u);
  EXPECT_EQ(engine.ledger().cachedBlocks(), 4u);
  EXPECT_EQ(engine.ledger().simulatedBlocks(), 3u);
}

TEST(EvalEngine, DedupsDuplicateRequestsWithinABatch) {
  auto calls = std::make_shared<std::atomic<int>>(0);
  const auto prob = countingProblem(calls);
  const Vector point = prob.space.snap({0.5, 0.5});

  {  // cache on: the duplicate corner simulates once.
    eval::EvalEngine engine(prob, {true, 1});
    const auto r = engine.evalBatch({1, 1, 2}, point, pvt::BlockKind::kSearch);
    EXPECT_EQ(calls->load(), 2);
    EXPECT_EQ(r[0].measurements, r[1].measurements);
    EXPECT_EQ(engine.stats().requests, 3u);
    EXPECT_EQ(engine.stats().simulated, 2u);
    EXPECT_EQ(engine.stats().cacheHits, 1u);
  }
  {  // cache off: every request is a real block.
    calls->store(0);
    eval::EvalEngine engine(prob, {false, 1});
    engine.evalBatch({1, 1, 2}, point, pvt::BlockKind::kSearch);
    EXPECT_EQ(calls->load(), 3);
    EXPECT_EQ(engine.stats().cacheHits, 0u);
    EXPECT_EQ(engine.stats().simulated, 3u);
  }
}

TEST(EvalEngine, SnapsRawSizesSoSimulatedPointMatchesTheKey) {
  auto calls = std::make_shared<std::atomic<int>>(0);
  auto prob = countingProblem(calls);
  linalg::Vector lastSeen;
  auto inner = prob.evaluate;
  prob.evaluate = [&lastSeen, inner](const Vector& v, const sim::PvtCorner& c) {
    lastSeen = v;
    return inner(v, c);
  };
  eval::EvalEngine engine(prob, {true, 1});
  // Raw, off-grid request: the backend must see the snapped point...
  const Vector raw{0.412, 0.588};
  const Vector snapped = prob.space.snap(raw);
  const auto r1 = engine.evalOne(0, raw, pvt::BlockKind::kSearch);
  EXPECT_EQ(lastSeen, snapped);
  // ...and a different raw value snapping to the same grid point is a hit
  // with the identical (snapped-point) result.
  const auto r2 = engine.evalOne(0, {0.408, 0.592}, pvt::BlockKind::kSearch);
  EXPECT_EQ(engine.stats().simulated, 1u);
  EXPECT_EQ(engine.stats().cacheHits, 1u);
  EXPECT_EQ(r2.measurements, r1.measurements);
}

TEST(EvalEngineSearch, ExplorerLevelCacheFlagDisablesPvtSearchCaching) {
  auto calls = std::make_shared<std::atomic<int>>(0);
  const auto prob = countingProblem(calls);
  core::PvtSearchConfig cfg;
  cfg.seed = 21;
  cfg.cacheEvals = true;  // search-level on...
  cfg.explorer = core::autoSchedule(prob, cfg.seed);
  cfg.explorer.cacheEvals = false;  // ...but the explorer override wins
  core::PvtSearch search(prob, cfg);
  const auto out = search.run(3000);
  EXPECT_EQ(out.evalStats.cacheHits, 0u);
  EXPECT_EQ(out.evalStats.simulated, out.totalSims);
}

TEST(EvalEngine, ResetAccountingKeepsTheMemo) {
  auto calls = std::make_shared<std::atomic<int>>(0);
  const auto prob = countingProblem(calls);
  eval::EvalEngine engine(prob, {true, 1});
  const Vector point = prob.space.snap({0.3, 0.3});
  engine.evalBatch({0, 1, 2}, point, pvt::BlockKind::kSearch);
  engine.resetAccounting();
  EXPECT_EQ(engine.stats().requests, 0u);
  EXPECT_EQ(engine.ledger().totalBlocks(), 0u);
  engine.evalBatch({0}, point, pvt::BlockKind::kSearch);
  EXPECT_EQ(calls->load(), 3);  // still served from the memo
  EXPECT_EQ(engine.stats().cacheHits, 1u);
}

TEST(EvalEngine, ThreadCountDoesNotChangeResultsOrAccounting) {
  std::vector<std::vector<core::EvalResult>> results;
  std::vector<std::size_t> simulated;
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    auto calls = std::make_shared<std::atomic<int>>(0);
    const auto prob = countingProblem(calls);
    eval::EvalEngine engine(prob, {true, threads});
    std::mt19937_64 rng(7);
    std::vector<core::EvalResult> all;
    for (int k = 0; k < 20; ++k) {
      const Vector p = prob.space.randomPoint(rng);
      auto r = engine.evalBatch({0, 1, 2}, prob.space.snap(p),
                                pvt::BlockKind::kSearch);
      all.insert(all.end(), r.begin(), r.end());
    }
    results.push_back(std::move(all));
    simulated.push_back(engine.stats().simulated);
  }
  EXPECT_EQ(simulated[0], simulated[1]);
  ASSERT_EQ(results[0].size(), results[1].size());
  for (std::size_t i = 0; i < results[0].size(); ++i)
    EXPECT_EQ(results[0][i].measurements, results[1][i].measurements);
}

// ---------- cache-on/off bitwise invariance of seeded searches ----------

void expectSamePvtOutcome(const core::PvtSearchOutcome& a,
                          const core::PvtSearchOutcome& b) {
  EXPECT_EQ(a.solved, b.solved);
  EXPECT_EQ(a.totalSims, b.totalSims);
  EXPECT_EQ(a.cornersActivated, b.cornersActivated);
  EXPECT_EQ(a.sizes, b.sizes);
  ASSERT_EQ(a.cornerEvals.size(), b.cornerEvals.size());
  for (std::size_t i = 0; i < a.cornerEvals.size(); ++i) {
    EXPECT_EQ(a.cornerEvals[i].ok, b.cornerEvals[i].ok);
    EXPECT_EQ(a.cornerEvals[i].measurements, b.cornerEvals[i].measurements);
  }
  // The logical (corner, kind, meetsSpec) block sequence is part of the
  // trajectory; only the cached flags may differ.
  ASSERT_EQ(a.ledger.totalBlocks(), b.ledger.totalBlocks());
  for (std::size_t i = 0; i < a.ledger.blocks().size(); ++i) {
    EXPECT_EQ(a.ledger.blocks()[i].cornerIndex, b.ledger.blocks()[i].cornerIndex);
    EXPECT_EQ(a.ledger.blocks()[i].kind, b.ledger.blocks()[i].kind);
    EXPECT_EQ(a.ledger.blocks()[i].meetsSpec, b.ledger.blocks()[i].meetsSpec);
  }
}

TEST(EvalEngineSearch, PvtSearchBitwiseIdenticalWithCacheOnOrOff) {
  auto calls = std::make_shared<std::atomic<int>>(0);
  const auto prob = countingProblem(calls);
  core::PvtSearchOutcome outcomes[2];
  for (int cached = 0; cached < 2; ++cached) {
    core::PvtSearchConfig cfg;
    cfg.seed = 21;
    cfg.cacheEvals = cached == 1;
    cfg.explorer = core::autoSchedule(prob, cfg.seed);
    core::PvtSearch search(prob, cfg);
    outcomes[cached] = search.run(6000);
  }
  expectSamePvtOutcome(outcomes[1], outcomes[0]);
  // Uncached: every logical block simulated; no hits.
  EXPECT_EQ(outcomes[0].evalStats.cacheHits, 0u);
  EXPECT_EQ(outcomes[0].evalStats.simulated, outcomes[0].totalSims);
  // Cached accounting is self-consistent either way.
  EXPECT_EQ(outcomes[1].evalStats.simulated + outcomes[1].evalStats.cacheHits,
            outcomes[1].totalSims);
}

TEST(EvalEngineSearch, PvtSearchThreadCountInvariantWithCacheOn) {
  auto calls = std::make_shared<std::atomic<int>>(0);
  const auto prob = countingProblem(calls);
  core::PvtSearchOutcome outcomes[2];
  int t = 0;
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    core::PvtSearchConfig cfg;
    cfg.strategy = core::PvtStrategy::kBruteForce;  // 3 active: real fan-out
    cfg.seed = 33;
    cfg.cacheEvals = true;
    cfg.evalThreads = threads;
    cfg.explorer = core::autoSchedule(prob, cfg.seed);
    core::PvtSearch search(prob, cfg);
    outcomes[t++] = search.run(5000);
  }
  expectSamePvtOutcome(outcomes[1], outcomes[0]);
  EXPECT_EQ(outcomes[1].evalStats.cacheHits, outcomes[0].evalStats.cacheHits);
  EXPECT_EQ(outcomes[1].evalStats.simulated, outcomes[0].evalStats.simulated);
}

TEST(EvalEngineSearch, LocalExplorerBitwiseIdenticalWithCacheOnOrOff) {
  auto calls = std::make_shared<std::atomic<int>>(0);
  const auto prob = countingProblem(calls);
  const core::ValueFunction value(prob.measurementNames, prob.specs);
  auto eval = [&](const Vector& x) { return prob.evaluate(x, prob.corners[0]); };
  core::SearchOutcome outcomes[2];
  for (int cached = 0; cached < 2; ++cached) {
    core::LocalExplorerConfig cfg;
    cfg.seed = 29;
    cfg.cacheEvals = cached == 1;
    core::LocalExplorer agent(prob.space, value, eval, cfg);
    outcomes[cached] = agent.run(1500);
  }
  const auto& off = outcomes[0];
  const auto& on = outcomes[1];
  EXPECT_EQ(on.solved, off.solved);
  EXPECT_EQ(on.iterations, off.iterations);
  EXPECT_EQ(on.bestValue, off.bestValue);
  EXPECT_EQ(on.sizes, off.sizes);
  EXPECT_EQ(on.eval.measurements, off.eval.measurements);
  EXPECT_EQ(on.trace.bestValueHistory, off.trace.bestValueHistory);
  EXPECT_EQ(on.trace.radiusHistory, off.trace.radiusHistory);
  EXPECT_EQ(off.evalStats.cacheHits, 0u);
  EXPECT_EQ(on.evalStats.simulated + on.evalStats.cacheHits, on.iterations);
}

TEST(EvalEngineSearch, SizingEnvBitwiseIdenticalWithCacheOnOrOff) {
  auto calls = std::make_shared<std::atomic<int>>(0);
  const auto prob = countingProblem(calls);
  // Drive both envs through the same random action sequence.
  std::vector<std::vector<std::size_t>> actionLog;
  {
    std::mt19937_64 arng(5);
    std::uniform_int_distribution<std::size_t> act(0, 2);
    for (int s = 0; s < 120; ++s) {
      std::vector<std::size_t> a(prob.space.dim());
      for (auto& v : a) v = act(arng);
      actionLog.push_back(std::move(a));
    }
  }
  std::vector<double> rewards[2];
  std::vector<Vector> observations[2];
  std::size_t realSims[2] = {0, 0};
  for (int cached = 0; cached < 2; ++cached) {
    rl::EnvConfig cfg;
    cfg.cacheEvals = cached == 1;
    rl::SizingEnv env(prob, cfg, 11);
    observations[cached].push_back(env.reset());
    for (const auto& a : actionLog) {
      auto sr = env.step(a);
      rewards[cached].push_back(sr.reward);
      observations[cached].push_back(std::move(sr.observation));
      if (sr.done) observations[cached].push_back(env.reset());
    }
    EXPECT_EQ(env.simulationsUsed(), env.evalStats().requests);
    realSims[cached] = env.evalStats().simulated;
  }
  EXPECT_EQ(rewards[1], rewards[0]);
  ASSERT_EQ(observations[1].size(), observations[0].size());
  for (std::size_t i = 0; i < observations[0].size(); ++i)
    EXPECT_EQ(observations[1][i], observations[0][i]);
  // The stride lattice forces revisits: caching must actually save work.
  EXPECT_LT(realSims[1], realSims[0]);
}

// ---------- registry ----------

TEST(Registry, ExposesTheFourPaperCircuits) {
  const auto& reg = circuits::Registry::global();
  for (const char* name :
       {"two_stage_opamp", "folded_cascode", "ldo", "ico"}) {
    EXPECT_TRUE(reg.contains(name)) << name;
  }
  EXPECT_FALSE(reg.contains("colpitts"));
  EXPECT_THROW(reg.at("colpitts"), std::invalid_argument);
  EXPECT_THROW(reg.makeProblem("two_stage_opamp", {}, "tsmc3"),
               std::invalid_argument);
}

TEST(Registry, RoundTripInstantiatesAndEvaluatesEveryCircuit) {
  const auto& reg = circuits::Registry::global();
  for (const std::string& name : reg.names()) {
    SCOPED_TRACE(name);
    const core::SizingProblem prob = reg.makeProblem(name);
    EXPECT_GT(prob.space.dim(), 0u);
    EXPECT_FALSE(prob.measurementNames.empty());
    EXPECT_FALSE(prob.specs.empty());
    ASSERT_EQ(prob.corners.size(), 1u);  // default: single TT corner
    ASSERT_TRUE(static_cast<bool>(prob.evaluate));

    // Evaluate a handful of grid points through an engine; at least one must
    // converge, and a repeated request must hit the memo with a bitwise-
    // identical result.
    eval::EvalEngine engine(prob, {true, 1});
    std::mt19937_64 rng(3);
    int okCount = 0;
    for (int k = 0; k < 40 && okCount == 0; ++k) {
      const Vector x = prob.space.randomPoint(rng);
      const auto r = engine.evalOne(0, x, pvt::BlockKind::kSearch);
      if (!r.ok) continue;
      ++okCount;
      EXPECT_EQ(r.measurements.size(), prob.measurementNames.size());
      const std::size_t simsBefore = engine.stats().simulated;
      const auto again = engine.evalOne(0, x, pvt::BlockKind::kSearch);
      EXPECT_EQ(engine.stats().simulated, simsBefore);  // served from memo
      EXPECT_EQ(again.measurements, r.measurements);
    }
    EXPECT_GE(okCount, 1);
  }
}

TEST(Registry, ProcessOverrideSelectsTheCard) {
  const auto p22 = circuits::Registry::global().makeProblem("two_stage_opamp",
                                                            {}, "bsim22");
  EXPECT_NE(p22.name.find("bsim22"), std::string::npos);
  EXPECT_EQ(p22.corners.front().vdd, sim::bsim22Card().nominalVdd);
}

TEST(Registry, RejectsDuplicateEntries) {
  circuits::Registry reg;
  reg.add({"a", "bsim45", "", nullptr});
  EXPECT_THROW(reg.add({"a", "bsim22", "", nullptr}), std::invalid_argument);
}

TEST(CircuitBackend, EvaluatesARegistryCircuitThroughTheEngine) {
  const auto backend = std::make_shared<eval::CircuitBackend>("ico");
  EXPECT_EQ(backend->name(), "circuit:ico_n5");
  const core::SizingProblem& prob = backend->problem();
  const core::ValueFunction value(prob.measurementNames, prob.specs);
  eval::EvalEngine engine(
      backend, prob.space, prob.corners,
      [value](const core::EvalResult& r) {
        return r.ok && value.satisfied(r.measurements);
      },
      {true, 1});
  const Vector human = circuits::Ico::humanReferenceSizing();
  const auto r = engine.evalOne(0, prob.space.snap(human),
                                pvt::BlockKind::kSearch);
  ASSERT_TRUE(r.ok);
  EXPECT_GT(r.measurements[circuits::Ico::kFreqGhz], 4.0);
  // Second evaluation of the snapped human point: zero additional blocks.
  engine.evalOne(0, prob.space.snap(human), pvt::BlockKind::kVerify);
  EXPECT_EQ(engine.stats().simulated, 1u);
  EXPECT_EQ(engine.stats().cacheHits, 1u);
}

}  // namespace
}  // namespace trdse
