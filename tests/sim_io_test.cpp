// Tests for the netlist text parser/writer, the extended device set
// (diode, VCCS, inductor) and the small-signal noise analysis.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "sim/ac.hpp"
#include "sim/dc.hpp"
#include "sim/diode.hpp"
#include "sim/netlist_io.hpp"
#include "sim/noise.hpp"
#include "sim/transient.hpp"

namespace trdse::sim {
namespace {

const PvtCorner kTt{ProcessCorner::kTT, 1.1, 27.0};

// ---------- SPICE value parsing ----------

struct ValueCase {
  const char* text;
  double expected;
};

class SpiceValueTest : public ::testing::TestWithParam<ValueCase> {};

TEST_P(SpiceValueTest, ParsesSuffix) {
  const auto v = parseSpiceValue(GetParam().text);
  ASSERT_TRUE(v.has_value()) << GetParam().text;
  EXPECT_NEAR(*v, GetParam().expected, std::abs(GetParam().expected) * 1e-12);
}

INSTANTIATE_TEST_SUITE_P(
    Suffixes, SpiceValueTest,
    ::testing::Values(ValueCase{"100", 100.0}, ValueCase{"2.2k", 2200.0},
                      ValueCase{"1meg", 1e6}, ValueCase{"3g", 3e9},
                      ValueCase{"2t", 2e12}, ValueCase{"10m", 10e-3},
                      ValueCase{"4u", 4e-6}, ValueCase{"7n", 7e-9},
                      ValueCase{"5p", 5e-12}, ValueCase{"20f", 20e-15},
                      ValueCase{"-0.45", -0.45}, ValueCase{"1e-9", 1e-9},
                      ValueCase{"2.2kohm", 2200.0}));

TEST(SpiceValue, RejectsGarbage) {
  EXPECT_FALSE(parseSpiceValue("abc").has_value());
  EXPECT_FALSE(parseSpiceValue("").has_value());
  EXPECT_FALSE(parseSpiceValue("1.2x7").has_value());
}

// ---------- Netlist parsing ----------

TEST(NetlistIo, ParsesVoltageDividerAndSolves) {
  const std::string text = R"(
* a humble divider
V1 in 0 2.0
R1 in mid 1k
R2 mid 0 3k
.end
)";
  const auto parsed = parseNetlist(text, bsim45Card(), kTt);
  ASSERT_TRUE(parsed.netlist.has_value()) << parsed.error.message;
  const DcResult r = DcSolver(*parsed.netlist).solve();
  ASSERT_TRUE(r.converged);
  EXPECT_NEAR(r.nodeVoltage(parsed.netlist->findNode("mid")), 1.5, 1e-6);
}

TEST(NetlistIo, ParsesMosfetAmplifier) {
  const std::string text = R"(
Vdd vdd 0 1.1
Vin in 0 0.55 ac 1
M1 out in 0 0 nmos w=4u l=180n
Rload vdd out 20k
.end
)";
  const auto parsed = parseNetlist(text, bsim45Card(), kTt);
  ASSERT_TRUE(parsed.netlist.has_value()) << parsed.error.message;
  const DcResult op = DcSolver(*parsed.netlist).solve();
  ASSERT_TRUE(op.converged);
  const AcSolver ac(*parsed.netlist, op);
  const auto x = ac.solveAt(100.0);
  EXPECT_GT(std::abs(ac.nodeVoltage(x, parsed.netlist->findNode("out"))), 2.0);
}

TEST(NetlistIo, ReportsErrorsWithLineNumbers) {
  const auto parsed = parseNetlist("R1 a b\n", bsim45Card(), kTt);
  EXPECT_FALSE(parsed.netlist.has_value());
  EXPECT_EQ(parsed.error.line, 1u);
  const auto bad = parseNetlist("V1 a 0 1\nXfoo 1 2 3\n", bsim45Card(), kTt);
  EXPECT_FALSE(bad.netlist.has_value());
  EXPECT_EQ(bad.error.line, 2u);
}

TEST(NetlistIo, TempDirectiveSetsTemperature) {
  const auto parsed =
      parseNetlist(".temp 125\nR1 a 0 1k\n.end\n", bsim45Card(), kTt);
  ASSERT_TRUE(parsed.netlist.has_value());
  EXPECT_NEAR(parsed.netlist->tempK, 398.15, 1e-9);
}

TEST(NetlistIo, WriterRoundTrips) {
  Netlist nl;
  const NodeId a = nl.node("a");
  nl.addVSource(a, kGround, 1.0, 0.5);
  nl.addResistor(a, kGround, 2e3);
  nl.addCapacitor(a, kGround, 1e-12);
  nl.addDiode(a, kGround, 2e-14);
  const std::string text = writeNetlist(nl);
  const auto parsed = parseNetlist(text, bsim45Card(), kTt);
  ASSERT_TRUE(parsed.netlist.has_value()) << parsed.error.message;
  EXPECT_EQ(parsed.netlist->resistors().size(), 1u);
  EXPECT_EQ(parsed.netlist->capacitors().size(), 1u);
  EXPECT_EQ(parsed.netlist->diodes().size(), 1u);
  EXPECT_DOUBLE_EQ(parsed.netlist->vsources()[0].vac, 0.5);
}

// ---------- Diode ----------

TEST(DiodeModel, ExponentialAndSmooth) {
  Diode d;
  d.isat = 1e-14;
  const DiodeOp off = evalDiode(d, -0.5, 300.15);
  EXPECT_NEAR(off.id, -d.isat, 1e-15);
  const DiodeOp on = evalDiode(d, 0.7, 300.15);
  EXPECT_GT(on.id, 1e-7);
  // Derivative consistency at several points, including past the knee.
  for (double v : {-0.3, 0.2, 0.6, 1.6, 2.5}) {
    const double eps = 1e-7;
    const double numeric =
        (evalDiode(d, v + eps, 300.15).id - evalDiode(d, v - eps, 300.15).id) /
        (2 * eps);
    EXPECT_NEAR(evalDiode(d, v, 300.15).gd, numeric,
                std::abs(numeric) * 1e-4 + 1e-12)
        << "v=" << v;
  }
}

TEST(DiodeModel, RectifierDcOperatingPoint) {
  Netlist nl;
  const NodeId in = nl.node("in");
  const NodeId out = nl.node("out");
  nl.addVSource(in, kGround, 1.0);
  nl.addDiode(in, out);
  nl.addResistor(out, kGround, 1e3);
  const DcResult r = DcSolver(nl).solve();
  ASSERT_TRUE(r.converged);
  // Forward drop around 0.5-0.8 V at these currents.
  const double vd = r.nodeVoltage(in) - r.nodeVoltage(out);
  EXPECT_GT(vd, 0.4);
  EXPECT_LT(vd, 0.9);
  EXPECT_GT(r.nodeVoltage(out), 0.1);
}

// ---------- VCCS ----------

TEST(Vccs, DcTransconductance) {
  Netlist nl;
  const NodeId in = nl.node("in");
  const NodeId out = nl.node("out");
  nl.addVSource(in, kGround, 0.2);
  nl.addVccs(out, kGround, in, kGround, 1e-3);  // i = gm*v(in), out of `out`
  nl.addResistor(out, kGround, 5e3);
  const DcResult r = DcSolver(nl).solve();
  ASSERT_TRUE(r.converged);
  // i = 0.2 * 1e-3 = 0.2 mA out of the node -> v = -i*R = -1.0 V.
  EXPECT_NEAR(r.nodeVoltage(out), -1.0, 1e-6);
}

// ---------- Inductor ----------

TEST(Inductor, DcShort) {
  Netlist nl;
  const NodeId a = nl.node("a");
  const NodeId b = nl.node("b");
  nl.addVSource(a, kGround, 1.0);
  nl.addInductor(a, b, 1e-6);
  nl.addResistor(b, kGround, 1e3);
  const DcResult r = DcSolver(nl).solve();
  ASSERT_TRUE(r.converged);
  EXPECT_NEAR(r.nodeVoltage(b), 1.0, 1e-6);
  // Branch current: vsource then inductor in the branch vector.
  EXPECT_NEAR(r.branchCurrents[1], 1e-3, 1e-8);
}

TEST(Inductor, RlLowPassPole) {
  // L/R low-pass from the series inductor: f3dB = R/(2 pi L).
  Netlist nl;
  const NodeId in = nl.node("in");
  const NodeId out = nl.node("out");
  nl.addVSource(in, kGround, 0.0, 1.0);
  nl.addInductor(in, out, 1e-3);
  nl.addResistor(out, kGround, 1e3);
  const DcResult op = DcSolver(nl).solve();
  ASSERT_TRUE(op.converged);
  const AcSolver ac(nl, op);
  const double f3 = 1e3 / (2.0 * std::numbers::pi * 1e-3);
  const auto x = ac.solveAt(f3);
  EXPECT_NEAR(std::abs(ac.nodeVoltage(x, out)), 1.0 / std::sqrt(2.0), 1e-3);
}

TEST(Inductor, LcResonance) {
  // Series RLC driven at resonance: inductor and capacitor cancel.
  Netlist nl;
  const NodeId in = nl.node("in");
  const NodeId mid = nl.node("mid");
  const NodeId out = nl.node("out");
  nl.addVSource(in, kGround, 0.0, 1.0);
  nl.addResistor(in, mid, 50.0);
  nl.addInductor(mid, out, 1e-6);
  nl.addCapacitor(out, kGround, 1e-9);
  const DcResult op = DcSolver(nl).solve();
  ASSERT_TRUE(op.converged);
  const AcSolver ac(nl, op);
  const double f0 = 1.0 / (2.0 * std::numbers::pi * std::sqrt(1e-6 * 1e-9));
  const auto x = ac.solveAt(f0);
  // At resonance the full source voltage appears across C (Q > 1 peaking
  // aside, |v(out)| = |i|*Xc = (1/R)*Xc = Q).
  const double q = std::sqrt(1e-6 / 1e-9) / 50.0;
  EXPECT_NEAR(std::abs(ac.nodeVoltage(x, out)), q, q * 0.02);
}

TEST(Inductor, TransientRlStepResponse) {
  // i(t) = (V/R)(1 - e^{-tR/L}); tau = L/R = 1 us.
  Netlist nl;
  const NodeId in = nl.node("in");
  const NodeId mid = nl.node("mid");
  nl.addVSource(in, kGround, 1.0);
  nl.addInductor(in, mid, 1e-3);
  nl.addResistor(mid, kGround, 1e3);
  TransientOptions opts;
  opts.tStop = 3e-6;
  opts.dt = 5e-9;
  opts.includeDeviceCaps = false;
  linalg::Vector ic(nl.nodeCount(), 0.0);
  ic[static_cast<std::size_t>(in)] = 1.0;
  const TransientResult r = TransientSolver(nl, opts).run(ic);
  ASSERT_TRUE(r.completed);
  // Current through the vsource at t = tau is -(V/R)(1 - 1/e).
  std::size_t idxTau = 0;
  while (idxTau < r.times.size() && r.times[idxTau] < 1e-6) ++idxTau;
  EXPECT_NEAR(std::abs(r.branchCurrents[idxTau][0]),
              1e-3 * (1.0 - std::exp(-1.0)), 5e-6);
}

// ---------- Noise ----------

TEST(Noise, ResistorDividerMatchesAnalytic) {
  // Output noise of R1 || R2 divider: 4kT * (R1 || R2), flat in frequency.
  Netlist nl;
  const NodeId in = nl.node("in");
  const NodeId out = nl.node("out");
  nl.addVSource(in, kGround, 1.0);
  nl.addResistor(in, out, 10e3);
  nl.addResistor(out, kGround, 10e3);
  const DcResult op = DcSolver(nl).solve();
  ASSERT_TRUE(op.converged);
  const NoiseAnalyzer noise(nl, op);
  const auto r = noise.outputNoise({100.0, 1e4, 1e6}, out);
  const double kT = 1.380649e-23 * nl.tempK;
  const double expected = 4.0 * kT * 5e3;  // R1 || R2
  for (double psd : r.outputPsd) EXPECT_NEAR(psd, expected, expected * 1e-3);
}

TEST(Noise, CapacitorRollsOffResistorNoise) {
  Netlist nl;
  const NodeId out = nl.node("out");
  nl.addResistor(out, kGround, 10e3);
  nl.addCapacitor(out, kGround, 1e-9);
  const DcResult op = DcSolver(nl).solve();
  ASSERT_TRUE(op.converged);
  const NoiseAnalyzer noise(nl, op);
  const double fPole = 1.0 / (2.0 * std::numbers::pi * 10e3 * 1e-9);
  const auto r = noise.outputNoise({fPole / 100.0, fPole * 100.0}, out);
  EXPECT_GT(r.outputPsd[0], r.outputPsd[1] * 100.0);
}

TEST(Noise, MosfetAmplifierInputReferred) {
  const auto& card = bsim45Card();
  Netlist nl;
  const NodeId vdd = nl.node("vdd");
  const NodeId in = nl.node("in");
  const NodeId out = nl.node("out");
  nl.addVSource(vdd, kGround, 1.1);
  nl.addVSource(in, kGround, 0.55, 1.0);
  nl.addMosfet("M1", out, in, kGround, kGround, MosType::kNmos,
               {4e-6, 180e-9, 1.0}, card.nmos);
  nl.addResistor(vdd, out, 20e3);
  const DcResult op = DcSolver(nl).solve();
  ASSERT_TRUE(op.converged);
  NoiseOptions nopt;
  nopt.includeFlicker = false;
  const NoiseAnalyzer noise(nl, op, nopt);
  const auto freqs = AcSolver::logSpace(1e3, 1e6, 5);
  const auto outN = noise.outputNoise(freqs, out);
  const auto inN = noise.inputReferredNoise(freqs, out);
  // Gain > 1 -> input-referred below output noise; both positive.
  for (std::size_t i = 0; i < freqs.size(); ++i) {
    EXPECT_GT(outN.outputPsd[i], 0.0);
    EXPECT_LT(inN.outputPsd[i], outN.outputPsd[i]);
  }
  // Thermal channel noise referred to the gate ~ 4kT gamma / gm: right order.
  const double kT = 1.380649e-23 * nl.tempK;
  const double expected = 4.0 * kT / op.mosOps[0].gm;
  EXPECT_GT(inN.outputPsd[0], expected * 0.5);
  EXPECT_LT(inN.outputPsd[0], expected * 5.0);
}

TEST(Noise, FlickerRaisesLowFrequencies) {
  const auto& card = bsim45Card();
  Netlist nl;
  const NodeId vdd = nl.node("vdd");
  const NodeId in = nl.node("in");
  const NodeId out = nl.node("out");
  nl.addVSource(vdd, kGround, 1.1);
  nl.addVSource(in, kGround, 0.55);
  nl.addMosfet("M1", out, in, kGround, kGround, MosType::kNmos,
               {4e-6, 180e-9, 1.0}, card.nmos);
  nl.addResistor(vdd, out, 20e3);
  const DcResult op = DcSolver(nl).solve();
  ASSERT_TRUE(op.converged);
  NoiseOptions with;
  with.includeFlicker = true;
  NoiseOptions without;
  without.includeFlicker = false;
  const auto nWith = NoiseAnalyzer(nl, op, with).outputNoise({10.0}, out);
  const auto nWithout = NoiseAnalyzer(nl, op, without).outputNoise({10.0}, out);
  EXPECT_GT(nWith.outputPsd[0], nWithout.outputPsd[0]);
}

}  // namespace
}  // namespace trdse::sim
