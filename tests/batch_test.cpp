// Equivalence and correctness tests for the batched inference/training path:
// the blocked GEMM kernels, the batched layer/network APIs, batched surrogate
// scoring, batched trust-region planning, and the thread-parallel PVT
// evaluation pipeline. The batched code is designed to be *bitwise* identical
// to the per-sample path; the tolerances here (1e-12) are an upper bound.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <numeric>
#include <random>
#include <set>
#include <stdexcept>

#include "common/thread_pool.hpp"
#include "core/local_explorer.hpp"
#include "core/pvt_search.hpp"
#include "core/sizing_api.hpp"
#include "core/surrogate.hpp"
#include "nn/loss.hpp"
#include "nn/mlp.hpp"
#include "nn/optimizer.hpp"
#include "nn/scaler.hpp"

namespace trdse {
namespace {

using linalg::Matrix;
using linalg::Vector;

Matrix randomMatrix(std::size_t r, std::size_t c, std::mt19937_64& rng) {
  std::uniform_real_distribution<double> d(-2.0, 2.0);
  Matrix m(r, c);
  for (std::size_t i = 0; i < m.size(); ++i) m.data()[i] = d(rng);
  return m;
}

/// Naive reference GEMM (no blocking) for validating the tiled kernel.
Matrix refMatMul(const Matrix& a, const Matrix& b) {
  Matrix c(a.rows(), b.cols());
  for (std::size_t i = 0; i < a.rows(); ++i)
    for (std::size_t j = 0; j < b.cols(); ++j) {
      double acc = 0.0;
      for (std::size_t k = 0; k < a.cols(); ++k) acc += a(i, k) * b(k, j);
      c(i, j) = acc;
    }
  return c;
}

// ---------- linalg kernels ----------

TEST(Gemm, BlockedMatMulMatchesReference) {
  std::mt19937_64 rng(1);
  // Shapes straddle the 32-row and 256-depth tile boundaries.
  const std::size_t shapes[][3] = {
      {1, 1, 1}, {3, 5, 2}, {33, 40, 7}, {70, 300, 50}, {64, 256, 32}};
  for (const auto& s : shapes) {
    const Matrix a = randomMatrix(s[0], s[1], rng);
    const Matrix b = randomMatrix(s[1], s[2], rng);
    const Matrix c = linalg::matMul(a, b);
    const Matrix ref = refMatMul(a, b);
    ASSERT_EQ(c.rows(), ref.rows());
    ASSERT_EQ(c.cols(), ref.cols());
    for (std::size_t i = 0; i < c.size(); ++i)
      EXPECT_NEAR(c.data()[i], ref.data()[i], 1e-12) << "shape " << s[0];
  }
}

TEST(Gemm, MatMulTransBMatchesExplicitTranspose) {
  std::mt19937_64 rng(2);
  const Matrix a = randomMatrix(41, 19, rng);
  const Matrix b = randomMatrix(23, 19, rng);  // b^T is 19 x 23
  const Matrix c = linalg::matMulTransB(a, b);
  const Matrix ref = refMatMul(a, linalg::transpose(b));
  for (std::size_t i = 0; i < c.size(); ++i)
    EXPECT_NEAR(c.data()[i], ref.data()[i], 1e-12);
}

TEST(Gemm, MatMulIntoReusesBuffersAcrossShapes) {
  std::mt19937_64 rng(3);
  Matrix c;
  for (std::size_t n : {4u, 9u, 2u}) {  // shrink + regrow
    const Matrix a = randomMatrix(n, n + 1, rng);
    const Matrix b = randomMatrix(n + 1, n + 2, rng);
    linalg::matMulInto(a, b, c);
    const Matrix ref = refMatMul(a, b);
    ASSERT_EQ(c.rows(), n);
    ASSERT_EQ(c.cols(), n + 2);
    for (std::size_t i = 0; i < c.size(); ++i)
      EXPECT_NEAR(c.data()[i], ref.data()[i], 1e-12);
  }
}

TEST(Gemm, GemmAtBAccumMatchesRankOneUpdates) {
  std::mt19937_64 rng(4);
  const Matrix g = randomMatrix(17, 6, rng);  // batch x out
  const Matrix x = randomMatrix(17, 9, rng);  // batch x in
  Matrix acc(6, 9, 0.5);                      // nonzero start: += semantics
  Matrix ref = acc;
  linalg::gemmAtBAccum(g, x, acc);
  for (std::size_t b = 0; b < g.rows(); ++b)
    for (std::size_t r = 0; r < 6; ++r)
      for (std::size_t c = 0; c < 9; ++c) ref(r, c) += g(b, r) * x(b, c);
  for (std::size_t i = 0; i < acc.size(); ++i)
    EXPECT_NEAR(acc.data()[i], ref.data()[i], 1e-12);
}

TEST(Gemm, RowwiseHelpers) {
  Matrix m{{1.0, 2.0}, {3.0, 4.0}, {5.0, 6.0}};
  linalg::addRowwise(m, Vector{10.0, 20.0});
  EXPECT_DOUBLE_EQ(m(0, 0), 11.0);
  EXPECT_DOUBLE_EQ(m(2, 1), 26.0);
  Vector sums(2, 1.0);
  linalg::addColSums(m, sums);
  EXPECT_DOUBLE_EQ(sums[0], 1.0 + 11.0 + 13.0 + 15.0);
  EXPECT_DOUBLE_EQ(sums[1], 1.0 + 22.0 + 24.0 + 26.0);
}

TEST(Matrix, AlignedStorage) {
  Matrix m(7, 5, 1.0);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(m.data()) % 64, 0u);
}

// ---------- batched network equivalence ----------

/// predictBatch must match per-sample predict to <= 1e-12 on every layer
/// shape / activation combination the repo uses.
TEST(MlpBatch, PredictBatchMatchesPredict) {
  std::mt19937_64 rng(11);
  std::uniform_real_distribution<double> d(-1.5, 1.5);
  const std::vector<std::vector<std::size_t>> shapes = {
      {3, 8, 2}, {9, 48, 48, 4}, {12, 64, 64, 64, 6}, {2, 5, 1}};
  const nn::Activation hiddens[] = {nn::Activation::kTanh,
                                    nn::Activation::kRelu,
                                    nn::Activation::kIdentity};
  for (const auto& sizes : shapes) {
    for (const auto hidden : hiddens) {
      nn::MlpConfig cfg;
      cfg.layerSizes = sizes;
      cfg.hidden = hidden;
      nn::Mlp net(cfg, 7);
      const std::size_t batch = 33;
      Matrix x(batch, sizes.front());
      for (std::size_t i = 0; i < x.size(); ++i) x.data()[i] = d(rng);
      const Matrix out = net.predictBatch(x);
      ASSERT_EQ(out.rows(), batch);
      ASSERT_EQ(out.cols(), sizes.back());
      for (std::size_t r = 0; r < batch; ++r) {
        const Vector xi(x.row(r), x.row(r) + sizes.front());
        const Vector yi = net.predict(xi);
        for (std::size_t c = 0; c < yi.size(); ++c)
          EXPECT_NEAR(out(r, c), yi[c], 1e-12)
              << "shape[0]=" << sizes.front() << " act " << toString(hidden);
      }
    }
  }
}

TEST(MlpBatch, ForwardBackwardBatchMatchesPerSampleGradients) {
  std::mt19937_64 rng(13);
  std::uniform_real_distribution<double> d(-1.0, 1.0);
  nn::MlpConfig cfg;
  cfg.layerSizes = {4, 16, 3};
  const std::size_t batch = 10;
  Matrix x(batch, 4);
  Matrix g(batch, 3);
  for (std::size_t i = 0; i < x.size(); ++i) x.data()[i] = d(rng);
  for (std::size_t i = 0; i < g.size(); ++i) g.data()[i] = d(rng);

  nn::Mlp a(cfg, 21);
  nn::Mlp b(cfg, 21);

  a.zeroGrad();
  const Matrix& outB = a.forwardBatch(x);
  const Matrix& dxB = a.backwardBatch(g);

  b.zeroGrad();
  Matrix outS(batch, 3);
  Matrix dxS(batch, 4);
  for (std::size_t r = 0; r < batch; ++r) {
    const Vector xi(x.row(r), x.row(r) + 4);
    const Vector gi(g.row(r), g.row(r) + 3);
    const Vector oi = b.forward(xi);
    const Vector di = b.backward(gi);
    std::copy(oi.begin(), oi.end(), outS.row(r));
    std::copy(di.begin(), di.end(), dxS.row(r));
  }

  for (std::size_t i = 0; i < outB.size(); ++i)
    EXPECT_NEAR(outB.data()[i], outS.data()[i], 1e-12);
  for (std::size_t i = 0; i < dxB.size(); ++i)
    EXPECT_NEAR(dxB.data()[i], dxS.data()[i], 1e-12);
  const Vector ga = a.getGradients();
  const Vector gb = b.getGradients();
  ASSERT_EQ(ga.size(), gb.size());
  for (std::size_t i = 0; i < ga.size(); ++i) EXPECT_NEAR(ga[i], gb[i], 1e-12);
}

/// The per-sample trainer the batched trainEpochMse replaced, kept here as
/// the reference implementation.
nn::TrainStats refTrainEpochMse(nn::Mlp& net, nn::Optimizer& opt,
                                const std::vector<Vector>& inputs,
                                const std::vector<Vector>& targets,
                                std::size_t batchSize, std::mt19937_64& rng) {
  nn::TrainStats stats;
  if (inputs.empty()) return stats;
  batchSize = std::max<std::size_t>(1, batchSize);
  std::vector<std::size_t> order(inputs.size());
  std::iota(order.begin(), order.end(), 0);
  std::shuffle(order.begin(), order.end(), rng);
  double lossSum = 0.0;
  std::size_t seen = 0;
  for (std::size_t start = 0; start < order.size(); start += batchSize) {
    const std::size_t end = std::min(order.size(), start + batchSize);
    const double invB = 1.0 / static_cast<double>(end - start);
    net.zeroGrad();
    for (std::size_t k = start; k < end; ++k) {
      const Vector pred = net.forward(inputs[order[k]]);
      lossSum += nn::mseLoss(pred, targets[order[k]]);
      Vector grad = nn::mseGrad(pred, targets[order[k]]);
      for (double& v : grad) v *= invB;
      net.backward(grad);
      ++seen;
    }
    opt.step(net);
    ++stats.batches;
  }
  stats.meanLoss = lossSum / static_cast<double>(seen);
  return stats;
}

TEST(MlpBatch, BatchedTrainingMatchesPerSampleTraining) {
  std::mt19937_64 dataRng(31);
  std::uniform_real_distribution<double> d(-1.0, 1.0);
  std::vector<Vector> xs;
  std::vector<Vector> ys;
  for (int i = 0; i < 70; ++i) {  // 70 % 16 != 0: exercises the ragged batch
    const Vector x = {d(dataRng), d(dataRng), d(dataRng)};
    xs.push_back(x);
    ys.push_back({x[0] * x[1], std::tanh(x[2])});
  }
  nn::MlpConfig cfg;
  cfg.layerSizes = {3, 12, 2};
  nn::Mlp netA(cfg, 5);
  nn::Mlp netB(cfg, 5);
  nn::AdamOptimizer optA(3e-3);
  nn::AdamOptimizer optB(3e-3);
  std::mt19937_64 rngA(77);
  std::mt19937_64 rngB(77);
  for (int e = 0; e < 5; ++e) {
    const auto sa = nn::trainEpochMse(netA, optA, xs, ys, 16, rngA);
    const auto sb = refTrainEpochMse(netB, optB, xs, ys, 16, rngB);
    ASSERT_EQ(sa.batches, sb.batches);
    EXPECT_NEAR(sa.meanLoss, sb.meanLoss, 1e-12);
  }
  const Vector pa = netA.getParameters();
  const Vector pb = netB.getParameters();
  ASSERT_EQ(pa.size(), pb.size());
  for (std::size_t i = 0; i < pa.size(); ++i) EXPECT_NEAR(pa[i], pb[i], 1e-12);
}

TEST(ScalerBatch, MatrixTransformsMatchVectorTransforms) {
  nn::Standardizer s;
  s.fit({{1.0, 10.0, -3.0}, {2.0, 30.0, -1.0}, {4.0, 20.0, 0.5}});
  nn::MinMaxScaler mm({0.0, -1.0, 2.0}, {1.0, 1.0, 8.0});
  std::mt19937_64 rng(9);
  const Matrix x = randomMatrix(13, 3, rng);
  Matrix z, back, zmm;
  s.transform(x, z);
  s.inverse(z, back);
  mm.transform(x, zmm);
  for (std::size_t r = 0; r < x.rows(); ++r) {
    const Vector xi(x.row(r), x.row(r) + 3);
    const Vector zi = s.transform(xi);
    const Vector zmmi = mm.transform(xi);
    for (std::size_t c = 0; c < 3; ++c) {
      EXPECT_NEAR(z(r, c), zi[c], 1e-12);
      EXPECT_NEAR(back(r, c), xi[c], 1e-9);
      EXPECT_NEAR(zmm(r, c), zmmi[c], 1e-12);
    }
  }
}

// ---------- surrogate + planner equivalence ----------

TEST(SurrogateBatch, PredictBatchMatchesPredictAfterTraining) {
  core::SurrogateConfig cfg;
  cfg.hiddenWidth = 24;
  core::SpiceSurrogate sur(4, 3, cfg, 17);
  std::mt19937_64 rng(17);
  std::uniform_real_distribution<double> d(0.0, 1.0);
  for (int i = 0; i < 40; ++i) {
    const Vector x = {d(rng), d(rng), d(rng), d(rng)};
    sur.addSample(x, {x[0] + x[1], x[2] * 2.0 - x[3], std::sin(x[0])});
  }
  sur.train(rng);  // fits both scalers: the full transform chain is exercised

  const std::size_t batch = 50;
  Matrix block(batch, 4);
  for (std::size_t i = 0; i < block.size(); ++i) block.data()[i] = d(rng);
  Matrix preds;
  sur.predictBatch(block, preds);
  ASSERT_EQ(preds.rows(), batch);
  ASSERT_EQ(preds.cols(), 3u);
  for (std::size_t r = 0; r < batch; ++r) {
    const Vector xi(block.row(r), block.row(r) + 4);
    const Vector yi = sur.predict(xi);
    for (std::size_t c = 0; c < 3; ++c) EXPECT_NEAR(preds(r, c), yi[c], 1e-12);
  }
}

core::SizingProblem sphereCsp(double radius) {
  core::SizingProblem p;
  p.name = "sphere";
  p.space = core::DesignSpace({{"x", 0.0, 1.0, 101, false},
                               {"y", 0.0, 1.0, 101, false},
                               {"z", 0.0, 1.0, 101, false}});
  p.measurementNames = {"closeness"};
  p.specs = {{"closeness", core::SpecKind::kAtLeast, 1.0 - radius}};
  p.corners = {{sim::ProcessCorner::kTT, 1.0, 27.0}};
  p.evaluate = [](const Vector& v, const sim::PvtCorner&) {
    core::EvalResult r;
    r.ok = true;
    const double dx = v[0] - 0.62;
    const double dy = v[1] - 0.34;
    const double dz = v[2] - 0.58;
    r.measurements = {1.0 - std::sqrt(dx * dx + dy * dy + dz * dz)};
    return r;
  };
  return p;
}

/// The tentpole equivalence guarantee: batched planning must reproduce the
/// per-sample explorer's seeded SearchOutcome exactly — same solution, same
/// iteration count, same trace.
TEST(LocalExplorerBatch, BatchedPlanningReproducesPerSampleOutcome) {
  const auto prob = sphereCsp(0.04);
  const core::ValueFunction value(prob.measurementNames, prob.specs);
  auto eval = [&](const Vector& x) { return prob.evaluate(x, prob.corners[0]); };

  core::SearchOutcome outcomes[2];
  for (int batched = 0; batched < 2; ++batched) {
    core::LocalExplorerConfig cfg;
    cfg.seed = 29;
    cfg.batchedPlanning = batched == 1;
    core::LocalExplorer agent(prob.space, value, eval, cfg);
    outcomes[batched] = agent.run(1500);
  }
  const auto& legacy = outcomes[0];
  const auto& fast = outcomes[1];
  EXPECT_EQ(fast.solved, legacy.solved);
  EXPECT_EQ(fast.iterations, legacy.iterations);
  EXPECT_EQ(fast.bestValue, legacy.bestValue);
  EXPECT_EQ(fast.sizes, legacy.sizes);
  EXPECT_EQ(fast.trace.bestValueHistory, legacy.trace.bestValueHistory);
  EXPECT_EQ(fast.trace.radiusHistory, legacy.trace.radiusHistory);
  EXPECT_EQ(fast.trace.acceptedSteps, legacy.trace.acceptedSteps);
  EXPECT_EQ(fast.trace.rejectedSteps, legacy.trace.rejectedSteps);
}

core::SizingProblem multiCornerCsp() {
  core::SizingProblem p;
  p.name = "multi";
  p.space = core::DesignSpace({{"x", 0.0, 1.0, 101, false},
                               {"y", 0.0, 1.0, 101, false}});
  p.measurementNames = {"closeness"};
  p.specs = {{"closeness", core::SpecKind::kAtLeast, 0.9}};
  p.corners = {{sim::ProcessCorner::kTT, 1.0, 27.0},
               {sim::ProcessCorner::kSS, 1.0, 125.0},
               {sim::ProcessCorner::kFF, 1.0, -40.0}};
  p.evaluate = [](const Vector& v, const sim::PvtCorner& c) {
    core::EvalResult r;
    r.ok = true;
    const double dx = v[0] - 0.4;
    const double dy = v[1] - 0.6;
    const double penalty = c.tempC > 100.0 ? 0.02 : 0.0;
    r.measurements = {1.0 - std::sqrt(dx * dx + dy * dy) - penalty};
    return r;
  };
  return p;
}

TEST(PvtSearchBatch, BatchedPlanningReproducesPerSampleOutcome) {
  const auto prob = multiCornerCsp();
  core::PvtSearchOutcome outcomes[2];
  for (int batched = 0; batched < 2; ++batched) {
    core::PvtSearchConfig cfg;
    cfg.seed = 21;
    cfg.explorer = core::autoSchedule(prob, cfg.seed);
    cfg.explorer.batchedPlanning = batched == 1;
    core::PvtSearch search(prob, cfg);
    outcomes[batched] = search.run(6000);
  }
  EXPECT_EQ(outcomes[1].solved, outcomes[0].solved);
  EXPECT_EQ(outcomes[1].totalSims, outcomes[0].totalSims);
  EXPECT_EQ(outcomes[1].sizes, outcomes[0].sizes);
  EXPECT_EQ(outcomes[1].cornersActivated, outcomes[0].cornersActivated);
}

// ---------- thread pool ----------

TEST(ThreadPool, RunsEveryIndexExactlyOnce) {
  common::ThreadPool pool(4);
  EXPECT_EQ(pool.workerCount(), 4u);
  std::vector<std::atomic<int>> hits(257);
  pool.parallelFor(hits.size(), [&](std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, InlineModeHasNoWorkers) {
  common::ThreadPool pool(1);
  EXPECT_EQ(pool.workerCount(), 0u);
  int sum = 0;
  pool.parallelFor(10, [&](std::size_t i) { sum += static_cast<int>(i); });
  EXPECT_EQ(sum, 45);
}

TEST(ThreadPool, PropagatesTaskExceptions) {
  common::ThreadPool pool(2);
  EXPECT_THROW(
      pool.parallelFor(8,
                       [](std::size_t i) {
                         if (i == 5) throw std::runtime_error("boom");
                       }),
      std::runtime_error);
}

TEST(ThreadPool, PerTaskSeedsAreStableAndDistinct) {
  std::set<std::uint64_t> seeds;
  for (std::uint64_t i = 0; i < 1000; ++i) {
    const std::uint64_t s = common::perTaskSeed(42, i);
    EXPECT_EQ(s, common::perTaskSeed(42, i));  // pure function
    seeds.insert(s);
  }
  EXPECT_EQ(seeds.size(), 1000u);
  EXPECT_NE(common::perTaskSeed(42, 0), common::perTaskSeed(43, 0));
}

/// The parallel corner-evaluation pipeline must give identical results for
/// any thread count (results are merged in corner order after the join).
TEST(PvtSearchParallel, ThreadCountDoesNotChangeOutcome) {
  const auto prob = multiCornerCsp();
  core::PvtSearchOutcome serial;
  core::PvtSearchOutcome pooled;
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    core::PvtSearchConfig cfg;
    cfg.strategy = core::PvtStrategy::kBruteForce;  // 3 corners active: real fan-out
    cfg.seed = 33;
    cfg.explorer = core::autoSchedule(prob, cfg.seed);
    cfg.evalThreads = threads;
    core::PvtSearch search(prob, cfg);
    (threads == 1 ? serial : pooled) = search.run(5000);
  }
  EXPECT_EQ(pooled.solved, serial.solved);
  EXPECT_EQ(pooled.totalSims, serial.totalSims);
  EXPECT_EQ(pooled.sizes, serial.sizes);
  EXPECT_EQ(pooled.ledger.totalBlocks(), serial.ledger.totalBlocks());
  ASSERT_EQ(pooled.cornerEvals.size(), serial.cornerEvals.size());
  for (std::size_t i = 0; i < pooled.cornerEvals.size(); ++i) {
    EXPECT_EQ(pooled.cornerEvals[i].ok, serial.cornerEvals[i].ok);
    EXPECT_EQ(pooled.cornerEvals[i].measurements,
              serial.cornerEvals[i].measurements);
  }
}

}  // namespace
}  // namespace trdse
