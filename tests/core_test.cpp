#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "core/local_dataset.hpp"
#include "core/local_explorer.hpp"
#include "core/problem.hpp"
#include "core/pvt_search.hpp"
#include "core/sizing_api.hpp"
#include "core/surrogate.hpp"
#include "core/trust_region.hpp"
#include "core/value.hpp"

namespace trdse::core {
namespace {

// ---------- DesignSpace ----------

TEST(DesignSpace, LinearGrid) {
  DesignSpace space({{"x", 0.0, 10.0, 11, false}});
  EXPECT_DOUBLE_EQ(space.gridValue(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(space.gridValue(0, 10), 10.0);
  EXPECT_DOUBLE_EQ(space.gridValue(0, 5), 5.0);
  EXPECT_EQ(space.nearestIndex(0, 5.4), 5u);
  EXPECT_EQ(space.nearestIndex(0, 5.6), 6u);
  EXPECT_EQ(space.nearestIndex(0, -99.0), 0u);
  EXPECT_EQ(space.nearestIndex(0, 99.0), 10u);
}

TEST(DesignSpace, LogGrid) {
  DesignSpace space({{"w", 1e-6, 1e-4, 3, true}});
  EXPECT_NEAR(space.gridValue(0, 1), 1e-5, 1e-12);
  EXPECT_EQ(space.nearestIndex(0, 9e-6), 1u);
}

TEST(DesignSpace, SnapIdempotent) {
  DesignSpace space({{"x", 0.0, 1.0, 5, false}, {"w", 1e-6, 1e-3, 13, true}});
  const linalg::Vector raw = {0.61, 3.3e-5};
  const linalg::Vector s1 = space.snap(raw);
  const linalg::Vector s2 = space.snap(s1);
  EXPECT_EQ(s1, s2);
}

TEST(DesignSpace, UnitRoundTrip) {
  DesignSpace space({{"x", -2.0, 6.0, 100, false}, {"w", 1e-6, 1e-3, 100, true}});
  const linalg::Vector x = {1.0, 1e-4};
  const linalg::Vector u = space.toUnit(x);
  const linalg::Vector back = space.fromUnit(u);
  EXPECT_NEAR(back[0], x[0], 1e-9);
  EXPECT_NEAR(back[1], x[1], 1e-10);
  for (double v : u) {
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0);
  }
}

TEST(DesignSpace, SizeLog10) {
  DesignSpace space({{"a", 0, 1, 10, false},
                     {"b", 0, 1, 10, false},
                     {"c", 0, 1, 100, false}});
  EXPECT_NEAR(space.sizeLog10(), 4.0, 1e-12);
}

TEST(DesignSpace, IndicesRoundTrip) {
  DesignSpace space({{"a", 0.0, 1.0, 7, false}, {"b", 1.0, 100.0, 9, true}});
  std::mt19937_64 rng(5);
  for (int i = 0; i < 20; ++i) {
    const auto x = space.randomPoint(rng);
    const auto idx = space.indicesOf(x);
    const auto back = space.fromIndices(idx);
    for (std::size_t d = 0; d < 2; ++d) EXPECT_NEAR(back[d], x[d], 1e-9);
  }
}

// ---------- SizingProblem ----------

TEST(Problem, MeasurementIndexFindsDeclaredNames) {
  SizingProblem p;
  p.measurementNames = {"gain_db", "ugbw_hz", "pm_deg"};
  EXPECT_EQ(p.measurementIndex("gain_db"), 0u);
  EXPECT_EQ(p.measurementIndex("pm_deg"), 2u);
}

TEST(Problem, MeasurementIndexThrowsNamingTheUnknownMeasurement) {
  // A typo in a spec name must fail loudly in every build type (the old
  // assert vanished in release builds).
  SizingProblem p;
  p.measurementNames = {"gain_db", "pm_deg"};
  try {
    p.measurementIndex("gain_dB");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("gain_dB"), std::string::npos);  // the typo itself
    EXPECT_NE(what.find("pm_deg"), std::string::npos);   // the known names
  }
}

TEST(Value, ConstructorRejectsSpecOnUnknownMeasurement) {
  const std::vector<std::string> names = {"gain"};
  EXPECT_THROW(ValueFunction(names, {{"gian", SpecKind::kAtLeast, 50.0}}),
               std::invalid_argument);
}

// ---------- ValueFunction ----------

TEST(Value, ZeroWhenAllSatisfied) {
  const std::vector<std::string> names = {"gain", "power"};
  const std::vector<Spec> specs = {{"gain", SpecKind::kAtLeast, 50.0},
                                   {"power", SpecKind::kAtMost, 1.0}};
  const ValueFunction v(names, specs);
  EXPECT_DOUBLE_EQ(v({60.0, 0.5}), 0.0);
  EXPECT_TRUE(v.satisfied({60.0, 0.5}));
  EXPECT_TRUE(v.satisfied({50.0, 1.0}));  // boundary counts as met
}

TEST(Value, NegativeWhenViolated) {
  const std::vector<std::string> names = {"gain"};
  const ValueFunction v(names, {{"gain", SpecKind::kAtLeast, 50.0}});
  EXPECT_LT(v({40.0}), 0.0);
  EXPECT_FALSE(v.satisfied({40.0}));
  // Monotone: closer to spec is better.
  EXPECT_GT(v({45.0}), v({20.0}));
}

TEST(Value, NormalizationHandlesNegativeMeasurements) {
  // Phase noise style: more negative is better (kAtMost on a negative limit).
  const std::vector<std::string> names = {"pn"};
  const ValueFunction v(names, {{"pn", SpecKind::kAtMost, -71.0}});
  EXPECT_DOUBLE_EQ(v({-73.0}), 0.0);
  EXPECT_LT(v({-65.0}), 0.0);
  EXPECT_GT(v({-70.0}), v({-60.0}));
}

TEST(Value, BoundedByNegSpecCount) {
  const std::vector<std::string> names = {"a", "b", "c"};
  const std::vector<Spec> specs = {{"a", SpecKind::kAtLeast, 1.0},
                                   {"b", SpecKind::kAtLeast, 1.0},
                                   {"c", SpecKind::kAtLeast, 1.0}};
  const ValueFunction v(names, specs);
  EXPECT_GE(v({-1e9, -1e9, -1e9}), -3.0 - 1e-9);
}

TEST(Value, FailedEvalGetsSentinel) {
  const ValueFunction v({"a"}, {{"a", SpecKind::kAtLeast, 1.0}});
  EXPECT_DOUBLE_EQ(v.valueOf(EvalResult{}), kFailedValue);
}

TEST(Value, PlannerScorePrefersMarginWhenFeasible) {
  const ValueFunction v({"a"}, {{"a", SpecKind::kAtLeast, 1.0}});
  EXPECT_GT(v.plannerScore({2.0}), v.plannerScore({1.01}));
  // ... but never outweighs a violation.
  EXPECT_GT(v.plannerScore({1.01}), v.plannerScore({0.9}));
}

TEST(Value, WeightedSecondStage) {
  const std::vector<std::string> names = {"a", "b"};
  const std::vector<Spec> specs = {{"a", SpecKind::kAtLeast, 1.0},
                                   {"b", SpecKind::kAtLeast, 1.0}};
  const ValueFunction v(names, specs);
  const double wA = v.weighted({0.5, 2.0}, {10.0, 1.0});
  const double wB = v.weighted({0.5, 2.0}, {1.0, 1.0});
  EXPECT_LT(wA, wB);  // violation on 'a' amplified
}

// ---------- TrustRegion ----------

TEST(TrustRegion, ExpandsOnGoodRatio) {
  TrustRegionConfig cfg;
  TrustRegion tr(cfg);
  const double r0 = tr.radius();
  const auto step = tr.evaluateStep(1.0, 0.9);  // rho = 0.9 > 0.75
  EXPECT_TRUE(step.accepted);
  EXPECT_NEAR(tr.radius(), std::min(cfg.maxRadius, r0 * cfg.expandFactor), 1e-12);
}

TEST(TrustRegion, ShrinksOnPoorRatio) {
  TrustRegionConfig cfg;
  TrustRegion tr(cfg);
  const double r0 = tr.radius();
  const auto step = tr.evaluateStep(1.0, 0.05);  // rho = 0.05 < 0.25
  EXPECT_FALSE(step.accepted);
  EXPECT_NEAR(tr.radius(), r0 * cfg.shrinkFactor, 1e-12);
}

TEST(TrustRegion, MiddleRatioKeepsRadius) {
  TrustRegion tr;
  const double r0 = tr.radius();
  const auto step = tr.evaluateStep(1.0, 0.5);
  EXPECT_TRUE(step.accepted);
  EXPECT_DOUBLE_EQ(tr.radius(), r0);
}

TEST(TrustRegion, RespectsBounds) {
  TrustRegionConfig cfg;
  TrustRegion tr(cfg);
  for (int i = 0; i < 20; ++i) tr.evaluateStep(1.0, 1.0);
  EXPECT_DOUBLE_EQ(tr.radius(), cfg.maxRadius);
  for (int i = 0; i < 40; ++i) tr.evaluateStep(1.0, -1.0);
  EXPECT_DOUBLE_EQ(tr.radius(), cfg.minRadius);
}

TEST(TrustRegion, NonAdaptiveKeepsRadiusFixed) {
  TrustRegionConfig cfg;
  cfg.adaptive = false;
  cfg.initRadius = 0.1;
  TrustRegion tr(cfg);
  tr.evaluateStep(1.0, 1.0);
  tr.evaluateStep(1.0, -1.0);
  EXPECT_DOUBLE_EQ(tr.radius(), 0.1);
}

TEST(TrustRegion, TinyPredictionWithRealGainAccepts) {
  TrustRegion tr;
  const auto step = tr.evaluateStep(0.0, 0.1);
  EXPECT_TRUE(step.accepted);
}

// ---------- LocalDataset ----------

TEST(LocalDataset, SelectsWithinCut) {
  LocalDataset data;
  data.add({0.5, 0.5}, {1.0});
  data.add({0.52, 0.48}, {2.0});
  data.add({0.9, 0.9}, {3.0});
  const auto sel = data.selectLocal({0.5, 0.5}, 0.05, 1);
  EXPECT_EQ(sel.inputs.size(), 2u);
}

TEST(LocalDataset, FallsBackToNearestK) {
  LocalDataset data;
  data.add({0.1, 0.1}, {1.0});
  data.add({0.2, 0.2}, {2.0});
  data.add({0.9, 0.9}, {3.0});
  const auto sel = data.selectLocal({0.5, 0.5}, 0.01, 2);
  EXPECT_EQ(sel.inputs.size(), 2u);
  // Nearest two are the 0.2 and 0.9 points (distances 0.3 and 0.4).
  EXPECT_DOUBLE_EQ(sel.targets[0][0], 2.0);
}

// ---------- Surrogate ----------

TEST(Surrogate, LearnsQuadraticLocally) {
  SurrogateConfig cfg;
  cfg.epochsPerUpdate = 200;
  SpiceSurrogate s(2, 1, cfg, 3);
  std::mt19937_64 rng(4);
  std::uniform_real_distribution<double> d(0.3, 0.7);
  std::vector<linalg::Vector> xs;
  std::vector<linalg::Vector> ys;
  for (int i = 0; i < 120; ++i) {
    const double a = d(rng);
    const double b = d(rng);
    xs.push_back({a, b});
    ys.push_back({100.0 * (a - 0.5) * (a - 0.5) + 40.0 * b});
  }
  s.setData(xs, ys);
  s.train(rng);
  double err = 0.0;
  for (int i = 0; i < 20; ++i) {
    err += std::abs(s.predict(xs[i])[0] - ys[i][0]);
  }
  // Outputs span ~[12, 42]; demand a few percent accuracy.
  EXPECT_LT(err / 20.0, 1.5);
}

TEST(Surrogate, AdoptWeightsRequiresMatchingShape) {
  SpiceSurrogate a(3, 2, {}, 1);
  SpiceSurrogate b(3, 2, {}, 2);
  SpiceSurrogate c(4, 2, {}, 3);
  EXPECT_TRUE(b.adoptWeights(a.network()));
  EXPECT_EQ(b.network().getParameters(), a.network().getParameters());
  EXPECT_FALSE(c.adoptWeights(a.network()));
}

TEST(Surrogate, AutoConfigureScalesWithProblem) {
  const SurrogateConfig small = autoConfigure(2, 2);
  const SurrogateConfig large = autoConfigure(20, 8);
  EXPECT_LE(small.hiddenWidth, large.hiddenWidth);
  EXPECT_GE(small.hiddenWidth, 32u);
  EXPECT_LE(large.hiddenWidth, 128u);
}

// ---------- LocalExplorer on synthetic CSPs ----------

SizingProblem sphereCsp(double radius) {
  SizingProblem p;
  p.name = "sphere";
  p.space = DesignSpace({{"x", 0.0, 1.0, 101, false},
                         {"y", 0.0, 1.0, 101, false},
                         {"z", 0.0, 1.0, 101, false}});
  p.measurementNames = {"closeness"};
  p.specs = {{"closeness", SpecKind::kAtLeast, 1.0 - radius}};
  p.corners = {{sim::ProcessCorner::kTT, 1.0, 27.0}};
  p.evaluate = [](const linalg::Vector& v, const sim::PvtCorner&) {
    EvalResult r;
    r.ok = true;
    const double dx = v[0] - 0.62;
    const double dy = v[1] - 0.34;
    const double dz = v[2] - 0.58;
    r.measurements = {1.0 - std::sqrt(dx * dx + dy * dy + dz * dz)};
    return r;
  };
  return p;
}

TEST(LocalExplorer, SolvesSphereCsp) {
  const auto prob = sphereCsp(0.05);
  const ValueFunction value(prob.measurementNames, prob.specs);
  LocalExplorerConfig cfg;
  cfg.seed = 9;
  LocalExplorer agent(
      prob.space, value,
      [&](const linalg::Vector& x) { return prob.evaluate(x, prob.corners[0]); },
      cfg);
  const auto out = agent.run(3000);
  EXPECT_TRUE(out.solved);
  EXPECT_LT(out.iterations, 1500u);
  // Iteration accounting: history length equals simulations used.
  EXPECT_EQ(out.trace.bestValueHistory.size(), out.iterations);
}

TEST(LocalExplorer, BestValueHistoryMonotone) {
  const auto prob = sphereCsp(0.02);
  const ValueFunction value(prob.measurementNames, prob.specs);
  LocalExplorerConfig cfg;
  cfg.seed = 10;
  LocalExplorer agent(
      prob.space, value,
      [&](const linalg::Vector& x) { return prob.evaluate(x, prob.corners[0]); },
      cfg);
  const auto out = agent.run(400);
  for (std::size_t i = 1; i < out.trace.bestValueHistory.size(); ++i)
    EXPECT_GE(out.trace.bestValueHistory[i], out.trace.bestValueHistory[i - 1]);
}

TEST(LocalExplorer, RespectsBudget) {
  const auto prob = sphereCsp(-0.01);  // limit 1.01 > max measurement: unsolvable
  const ValueFunction value(prob.measurementNames, prob.specs);
  LocalExplorerConfig cfg;
  cfg.seed = 11;
  LocalExplorer agent(
      prob.space, value,
      [&](const linalg::Vector& x) { return prob.evaluate(x, prob.corners[0]); },
      cfg);
  const auto out = agent.run(200);
  EXPECT_FALSE(out.solved);
  EXPECT_EQ(out.iterations, 200u);
}

TEST(LocalExplorer, StartingPointShortensSearch) {
  const auto prob = sphereCsp(0.04);
  const ValueFunction value(prob.measurementNames, prob.specs);
  double coldSum = 0.0;
  double warmSum = 0.0;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    LocalExplorerConfig cold;
    cold.seed = seed;
    LocalExplorer agentCold(
        prob.space, value,
        [&](const linalg::Vector& x) { return prob.evaluate(x, prob.corners[0]); },
        cold);
    coldSum += static_cast<double>(agentCold.run(3000).iterations);

    LocalExplorerConfig warm;
    warm.seed = seed;
    warm.startingPoint = linalg::Vector{0.60, 0.36, 0.56};  // near optimum
    LocalExplorer agentWarm(
        prob.space, value,
        [&](const linalg::Vector& x) { return prob.evaluate(x, prob.corners[0]); },
        warm);
    warmSum += static_cast<double>(agentWarm.run(3000).iterations);
  }
  EXPECT_LT(warmSum, coldSum);
}

TEST(LocalExplorer, HandlesFailingRegions) {
  auto prob = sphereCsp(0.05);
  auto inner = prob.evaluate;
  prob.evaluate = [inner](const linalg::Vector& v, const sim::PvtCorner& c) {
    if (v[0] > 0.8) return EvalResult{};  // simulator dies out here
    return inner(v, c);
  };
  const ValueFunction value(prob.measurementNames, prob.specs);
  LocalExplorerConfig cfg;
  cfg.seed = 13;
  LocalExplorer agent(
      prob.space, value,
      [&](const linalg::Vector& x) { return prob.evaluate(x, prob.corners[0]); },
      cfg);
  const auto out = agent.run(3000);
  EXPECT_TRUE(out.solved);
}

// ---------- PvtSearch on a synthetic multi-corner CSP ----------

/// Corner difficulty grows with temperature: the feasible set shrinks.
SizingProblem multiCornerCsp() {
  SizingProblem p;
  p.name = "multi";
  p.space = DesignSpace({{"x", 0.0, 1.0, 101, false},
                         {"y", 0.0, 1.0, 101, false}});
  p.measurementNames = {"closeness"};
  p.specs = {{"closeness", SpecKind::kAtLeast, 0.9}};
  p.corners = {{sim::ProcessCorner::kTT, 1.0, 27.0},
               {sim::ProcessCorner::kSS, 1.0, 125.0},
               {sim::ProcessCorner::kFF, 1.0, -40.0}};
  p.evaluate = [](const linalg::Vector& v, const sim::PvtCorner& c) {
    EvalResult r;
    r.ok = true;
    const double dx = v[0] - 0.4;
    const double dy = v[1] - 0.6;
    const double penalty = c.tempC > 100.0 ? 0.02 : 0.0;  // hot corner harder
    r.measurements = {1.0 - std::sqrt(dx * dx + dy * dy) - penalty};
    return r;
  };
  return p;
}

class PvtStrategyTest : public ::testing::TestWithParam<PvtStrategy> {};

TEST_P(PvtStrategyTest, SolvesMultiCornerCsp) {
  const auto prob = multiCornerCsp();
  PvtSearchConfig cfg;
  cfg.strategy = GetParam();
  cfg.seed = 21;
  cfg.explorer = autoSchedule(prob, cfg.seed);
  PvtSearch search(prob, cfg);
  const auto out = search.run(6000);
  EXPECT_TRUE(out.solved);
  // Final evals cover every corner and all pass.
  ASSERT_EQ(out.cornerEvals.size(), prob.corners.size());
  const ValueFunction value(prob.measurementNames, prob.specs);
  for (const auto& e : out.cornerEvals) {
    ASSERT_TRUE(e.ok);
    EXPECT_TRUE(value.satisfied(e.measurements));
  }
  // Ledger accounting is exact.
  EXPECT_EQ(out.ledger.totalBlocks(), out.totalSims);
}

INSTANTIATE_TEST_SUITE_P(Strategies, PvtStrategyTest,
                         ::testing::Values(PvtStrategy::kBruteForce,
                                           PvtStrategy::kProgressiveRandom,
                                           PvtStrategy::kProgressiveHardest));

TEST(PvtSearch, BruteForceActivatesAllCornersUpFront) {
  const auto prob = multiCornerCsp();
  PvtSearchConfig cfg;
  cfg.strategy = PvtStrategy::kBruteForce;
  cfg.seed = 23;
  cfg.explorer = autoSchedule(prob, cfg.seed);
  PvtSearch search(prob, cfg);
  const auto out = search.run(4000);
  EXPECT_EQ(out.cornersActivated, prob.corners.size());
  EXPECT_EQ(out.ledger.verifyBlocks(), 0u);  // nothing left to verify
}

TEST(PvtSearch, ProgressiveUsesFewerBlocksThanBruteForce) {
  const auto prob = multiCornerCsp();
  double brute = 0.0;
  double prog = 0.0;
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    PvtSearchConfig cfg;
    cfg.seed = seed;
    cfg.explorer = autoSchedule(prob, cfg.seed);
    cfg.strategy = PvtStrategy::kBruteForce;
    brute += static_cast<double>(PvtSearch(prob, cfg).run(6000).totalSims);
    cfg.strategy = PvtStrategy::kProgressiveHardest;
    prog += static_cast<double>(PvtSearch(prob, cfg).run(6000).totalSims);
  }
  EXPECT_LT(prog, brute);
}

// ---------- Session API ----------

TEST(SizingSession, RunsEndToEnd) {
  SessionOptions options;
  options.maxSimulations = 4000;
  options.seed = 3;
  SizingSession session(multiCornerCsp(), options);
  const auto report = session.run();
  EXPECT_TRUE(report.solved);
  EXPECT_GT(report.simulations, 0u);
  EXPECT_NE(report.summary.find("solved: yes"), std::string::npos);
}

TEST(SizingSession, AutoScheduleScalesWithDimension) {
  const auto small = autoSchedule(sphereCsp(0.1), 1);
  auto bigProblem = sphereCsp(0.1);
  std::vector<ParamDef> params;
  for (int i = 0; i < 20; ++i)
    params.push_back({"p" + std::to_string(i), 0.0, 1.0, 32, false});
  bigProblem.space = DesignSpace(params);
  const auto large = autoSchedule(bigProblem, 1);
  EXPECT_GT(large.mcSamples, small.mcSamples);
  EXPECT_GE(large.initSamples, small.initSamples);
}

}  // namespace
}  // namespace trdse::core
