// Tests for the src/io checkpoint subsystem (ISSUE 4 determinism contract):
// a run checkpointed at step k and resumed must be bitwise identical to the
// uninterrupted run — same SearchOutcome, same ledger — for PvtSearch,
// SizingSession and the RL trainers, for any evalThreads and with the eval
// cache on or off. Plus the container's error paths (corrupt / truncated /
// version-mismatch / wrong-kind files) and the nn/serialize round-trip edge
// cases the format builds on.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>
#include <stdexcept>
#include <string>

#include "core/pvt_search.hpp"
#include "core/sizing_api.hpp"
#include "io/checkpoint.hpp"
#include "io/state_io.hpp"
#include "nn/serialize.hpp"
#include "rl/a2c.hpp"
#include "rl/checkpoint.hpp"
#include "rl/trpo.hpp"

namespace trdse {
namespace {

using linalg::Vector;

std::string tmpPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

/// Cheap closed-form multi-corner CSP that is genuinely hard for the TRM
/// agent: 4-D, rippled (the surrogate cannot one-shot it), with a
/// corner-dependent optimum (hot and cold corners pull x2 apart, so the
/// progressive pool grows past one corner). The spec sits ~0.002 under the
/// grid max of the min-over-corners closeness, so runs take a few hundred
/// simulations and a pause at step k lands genuinely mid-run.
core::SizingProblem hillProblem() {
  core::SizingProblem p;
  p.name = "hill4";
  p.space = core::DesignSpace({{"a", 0.0, 1.0, 33, false},
                               {"b", 0.0, 1.0, 33, false},
                               {"c", 0.0, 1.0, 33, false},
                               {"d", 0.0, 1.0, 33, false}});
  p.measurementNames = {"closeness"};
  p.specs = {{"closeness", core::SpecKind::kAtLeast, 0.9167}};
  p.corners = {{sim::ProcessCorner::kTT, 1.0, 27.0},
               {sim::ProcessCorner::kSS, 1.0, 125.0},
               {sim::ProcessCorner::kFF, 1.0, -40.0}};
  p.evaluate = [](const Vector& v, const sim::PvtCorner& c) {
    core::EvalResult r;
    r.ok = true;
    const double shift =
        c.tempC > 100.0 ? -0.08 : (c.tempC < 0.0 ? 0.08 : 0.0);
    const double tx[4] = {0.4, 0.6, 0.5 + shift, 0.55};
    double d2 = 0.0;
    for (int i = 0; i < 4; ++i) d2 += (v[i] - tx[i]) * (v[i] - tx[i]);
    const double ripple = 0.04 * std::sin(31.0 * v[0]) *
                          std::sin(29.0 * v[1] + 1.0) *
                          std::cos(23.0 * v[2]) * std::sin(17.0 * v[3] + 0.5);
    r.measurements = {1.0 - std::sqrt(d2) + ripple};
    return r;
  };
  return p;
}

void expectEvalsEq(const std::vector<core::EvalResult>& a,
                   const std::vector<core::EvalResult>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].ok, b[i].ok);
    EXPECT_EQ(a[i].measurements, b[i].measurements);  // bitwise
  }
}

void expectLedgerEq(const pvt::EdaLedger& a, const pvt::EdaLedger& b) {
  ASSERT_EQ(a.totalBlocks(), b.totalBlocks());
  for (std::size_t i = 0; i < a.totalBlocks(); ++i) {
    EXPECT_EQ(a.blocks()[i].cornerIndex, b.blocks()[i].cornerIndex);
    EXPECT_EQ(static_cast<int>(a.blocks()[i].kind),
              static_cast<int>(b.blocks()[i].kind));
    EXPECT_EQ(a.blocks()[i].meetsSpec, b.blocks()[i].meetsSpec);
    EXPECT_EQ(a.blocks()[i].cached, b.blocks()[i].cached);
  }
}

/// Full bitwise outcome equality, timing excluded (backendSeconds is wall
/// clock — the only field outside the determinism contract).
void expectOutcomeEq(const core::PvtSearchOutcome& a,
                     const core::PvtSearchOutcome& b) {
  EXPECT_EQ(a.solved, b.solved);
  EXPECT_EQ(a.totalSims, b.totalSims);
  EXPECT_EQ(a.sizes, b.sizes);  // bitwise
  expectEvalsEq(a.cornerEvals, b.cornerEvals);
  EXPECT_EQ(a.cornersActivated, b.cornersActivated);
  expectLedgerEq(a.ledger, b.ledger);
  EXPECT_EQ(a.evalStats.requests, b.evalStats.requests);
  EXPECT_EQ(a.evalStats.simulated, b.evalStats.simulated);
  EXPECT_EQ(a.evalStats.cacheHits, b.evalStats.cacheHits);
}

// ---------- Container format ----------

TEST(CheckpointFormat, SectionRoundTrip) {
  io::CheckpointWriter w("unit-test");
  io::SectionWriter& s = w.section("payload");
  s.u8(7);
  s.boolean(true);
  s.u32(0xDEADBEEF);
  s.u64(0x0123456789ABCDEFull);
  s.i64(-42);
  s.f64(-0.0);
  s.f64(std::numeric_limits<double>::min());
  s.str("hello");
  s.vec({1.5, -2.5, 1e-300});
  s.indexVec({0, 3, 1u << 20});

  const io::CheckpointReader r("mem", w.finish());
  EXPECT_EQ(r.kind(), "unit-test");
  EXPECT_EQ(r.version(), io::kCheckpointFormatVersion);
  io::SectionReader p = r.section("payload");
  EXPECT_EQ(p.u8(), 7);
  EXPECT_TRUE(p.boolean());
  EXPECT_EQ(p.u32(), 0xDEADBEEFu);
  EXPECT_EQ(p.u64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(p.i64(), -42);
  const double negZero = p.f64();
  EXPECT_EQ(std::signbit(negZero), true);  // -0.0 round-trips bit-exactly
  EXPECT_EQ(p.f64(), std::numeric_limits<double>::min());
  EXPECT_EQ(p.str(), "hello");
  EXPECT_EQ(p.vec(), Vector({1.5, -2.5, 1e-300}));
  EXPECT_EQ(p.indexVec(), std::vector<std::size_t>({0, 3, 1u << 20}));
  p.expectEnd();
}

TEST(CheckpointFormat, SaveIsDeterministic) {
  // Identical state must produce identical bytes (save -> load -> save).
  const auto build = [] {
    io::CheckpointWriter w("det");
    w.section("a").vec({1.0, 2.0});
    w.section("b").str("x");
    return w.finish();
  };
  EXPECT_EQ(build(), build());
}

TEST(CheckpointFormat, RejectsBadMagic) {
  std::string blob = [] {
    io::CheckpointWriter w("k");
    w.section("s").u8(1);
    return w.finish();
  }();
  blob[0] = 'X';
  try {
    io::CheckpointReader r("mem", blob);
    FAIL() << "bad magic accepted";
  } catch (const io::CheckpointError& e) {
    EXPECT_NE(std::string(e.what()).find("bad magic"), std::string::npos);
  }
}

TEST(CheckpointFormat, RejectsFutureVersion) {
  std::string blob = [] {
    io::CheckpointWriter w("k");
    w.section("s").u8(1);
    return w.finish();
  }();
  blob[4] = 99;  // little-endian version field
  try {
    io::CheckpointReader r("mem", blob);
    FAIL() << "future version accepted";
  } catch (const io::CheckpointError& e) {
    EXPECT_NE(std::string(e.what()).find("unsupported format version 99"),
              std::string::npos);
  }
}

TEST(CheckpointFormat, RejectsCorruptAndTruncatedBodies) {
  std::string blob = [] {
    io::CheckpointWriter w("k");
    w.section("s").vec({1.0, 2.0, 3.0});
    return w.finish();
  }();
  std::string flipped = blob;
  flipped[blob.size() - 1] = static_cast<char>(flipped[blob.size() - 1] ^ 0x5A);
  EXPECT_THROW({ io::CheckpointReader r("mem", flipped); },
               io::CheckpointError);
  const std::string truncated = blob.substr(0, blob.size() - 4);
  try {
    io::CheckpointReader r("mem", truncated);
    FAIL() << "truncated body accepted";
  } catch (const io::CheckpointError& e) {
    EXPECT_NE(std::string(e.what()).find("checksum"), std::string::npos);
  }
  EXPECT_THROW({ io::CheckpointReader r("mem", blob.substr(0, 7)); },
               io::CheckpointError);
}

TEST(CheckpointFormat, MissingFileAndMissingSectionThrow) {
  EXPECT_THROW(io::CheckpointReader::fromFile(tmpPath("does-not-exist.ckpt")),
               io::CheckpointError);
  io::CheckpointWriter w("k");
  w.section("present").u8(1);
  const io::CheckpointReader r("mem", w.finish());
  EXPECT_TRUE(r.hasSection("present"));
  EXPECT_FALSE(r.hasSection("absent"));
  EXPECT_THROW(r.section("absent"), io::CheckpointError);
}

// ---------- nn/serialize edge cases feeding the format ----------

TEST(NnSerialize, AdamMomentsMidTrainingRoundTrip) {
  nn::Mlp net(nn::MlpConfig{{3, 8, 2}}, /*seed=*/5);
  nn::AdamOptimizer opt(1e-3);
  // A few real steps so t > 0 and both moment vectors are non-trivial.
  std::mt19937_64 rng(7);
  std::uniform_real_distribution<double> unif(-1.0, 1.0);
  for (int step = 0; step < 3; ++step) {
    net.forward({unif(rng), unif(rng), unif(rng)});
    net.backward({unif(rng), unif(rng)});
    opt.step(net);
  }
  std::stringstream ss;
  nn::saveAdamState(opt, ss);
  nn::AdamOptimizer restored(1e-3);
  ASSERT_TRUE(nn::loadAdamState(ss, restored));
  EXPECT_EQ(restored.stepCount(), opt.stepCount());
  EXPECT_EQ(restored.firstMoments(), opt.firstMoments());    // bitwise
  EXPECT_EQ(restored.secondMoments(), opt.secondMoments());  // bitwise

  // The restored optimizer must continue the exact update stream.
  nn::Mlp netB = net;
  net.forward({0.1, 0.2, 0.3});
  net.backward({1.0, -1.0});
  opt.step(net);
  netB.forward({0.1, 0.2, 0.3});
  netB.backward({1.0, -1.0});
  restored.step(netB);
  EXPECT_EQ(net.getParameters(), netB.getParameters());
}

TEST(NnSerialize, LoadAdamRejectsGarbage) {
  std::stringstream ss("not an adam blob");
  nn::AdamOptimizer opt(1e-3);
  EXPECT_FALSE(nn::loadAdamState(ss, opt));
}

TEST(NnSerialize, ZeroVarianceScalerColumnsRoundTrip) {
  nn::Standardizer s;
  // Column 1 is constant: std becomes degenerate and must survive exactly.
  s.fit({{1.0, 5.0}, {3.0, 5.0}, {2.0, 5.0}});
  std::stringstream ss;
  nn::saveStandardizer(s, ss);
  const auto restored = nn::loadStandardizer(ss);
  ASSERT_TRUE(restored.has_value());
  EXPECT_EQ(restored->mean(), s.mean());
  EXPECT_EQ(restored->std(), s.std());
  // Transform parity on the degenerate column, bitwise.
  EXPECT_EQ(restored->transform({2.5, 5.0}), s.transform({2.5, 5.0}));
}

TEST(NnSerialize, LoadMlpRejectsNonFiniteWeights) {
  nn::Mlp net(nn::MlpConfig{{2, 4, 1}}, /*seed=*/3);
  {
    std::stringstream ok;
    nn::saveMlp(net, ok);
    ASSERT_TRUE(nn::loadMlp(ok).has_value());
  }
  linalg::Vector params = net.getParameters();
  params[2] = std::numeric_limits<double>::quiet_NaN();
  net.setParameters(params);
  std::stringstream bad;
  nn::saveMlp(net, bad);
  EXPECT_FALSE(nn::loadMlp(bad).has_value());

  params[2] = std::numeric_limits<double>::infinity();
  net.setParameters(params);
  std::stringstream worse;
  nn::saveMlp(net, worse);
  EXPECT_FALSE(nn::loadMlp(worse).has_value());
}

TEST(StateIo, EmptyAndLoadedSurrogateRoundTrip) {
  core::SpiceSurrogate fresh(2, 1, core::SurrogateConfig{}, /*seed=*/11);
  {
    // Empty dataset: a surrogate that never saw a sample round-trips.
    io::CheckpointWriter w("t");
    io::writeSurrogate(w.section("s"), fresh);
    const io::CheckpointReader r("mem", w.finish());
    core::SpiceSurrogate target(2, 1, core::SurrogateConfig{}, /*seed=*/99);
    io::SectionReader sr = r.section("s");
    io::readSurrogate(sr, target);
    sr.expectEnd();
    EXPECT_EQ(target.sampleCount(), 0u);
    EXPECT_EQ(target.network().getParameters(),
              fresh.network().getParameters());
  }
  // Mid-training: samples + fitted scalers + Adam moments all restored, and
  // the restored surrogate predicts bitwise identically.
  std::mt19937_64 rng(13);
  for (int i = 0; i < 8; ++i) {
    const double x = 0.1 * i;
    fresh.addSample({x, 1.0 - x}, {std::sin(x)});
  }
  fresh.train(rng);
  io::CheckpointWriter w("t");
  io::writeSurrogate(w.section("s"), fresh);
  const io::CheckpointReader r("mem", w.finish());
  core::SpiceSurrogate target(2, 1, core::SurrogateConfig{}, /*seed=*/99);
  io::SectionReader sr = r.section("s");
  io::readSurrogate(sr, target);
  sr.expectEnd();
  EXPECT_EQ(target.sampleCount(), fresh.sampleCount());
  EXPECT_EQ(target.optimizer().stepCount(), fresh.optimizer().stepCount());
  EXPECT_EQ(target.predict({0.35, 0.65}), fresh.predict({0.35, 0.65}));
  // And trains on identically from the restored Adam/scaler state.
  std::mt19937_64 rngA(29);
  std::mt19937_64 rngB(29);
  EXPECT_EQ(fresh.train(rngA), target.train(rngB));
  EXPECT_EQ(target.network().getParameters(),
            fresh.network().getParameters());
}

TEST(StateIo, SurrogateShapeMismatchThrows) {
  core::SpiceSurrogate a(2, 1, core::SurrogateConfig{}, 1);
  io::CheckpointWriter w("t");
  io::writeSurrogate(w.section("s"), a);
  const io::CheckpointReader r("mem", w.finish());
  core::SpiceSurrogate b(3, 2, core::SurrogateConfig{}, 1);
  io::SectionReader sr = r.section("s");
  EXPECT_THROW(io::readSurrogate(sr, b), io::CheckpointError);
}

TEST(StateIo, RngStreamRoundTripContinuesExactly) {
  std::mt19937_64 rng(1234);
  rng.discard(1000);
  io::CheckpointWriter w("t");
  io::writeRng(w.section("rng"), rng);
  const io::CheckpointReader r("mem", w.finish());
  std::mt19937_64 restored;
  io::SectionReader sr = r.section("rng");
  io::readRng(sr, restored);
  sr.expectEnd();
  for (int i = 0; i < 64; ++i) EXPECT_EQ(rng(), restored());
}

// ---------- PvtSearch: resume-at-step-k == uninterrupted ----------

class PvtResume : public ::testing::TestWithParam<std::tuple<bool, std::size_t>> {};

TEST_P(PvtResume, BitwiseEqualToUninterruptedRun) {
  const auto [cacheOn, threads] = GetParam();
  const auto prob = hillProblem();
  core::PvtSearchConfig cfg;
  cfg.seed = 3;
  cfg.cacheEvals = cacheOn;
  cfg.explorer.cacheEvals = cacheOn;
  cfg.evalThreads = threads;
  const std::size_t kBudget = 2000;

  core::PvtSearch uninterrupted(prob, cfg);
  const auto full = uninterrupted.run(kBudget);
  ASSERT_GT(full.totalSims, 40u) << "problem too easy to pause mid-run";

  // Pause at step k (mid-run by construction), snapshot, restore into a
  // brand-new search, continue.
  const std::size_t kPause = full.totalSims / 2;
  core::PvtSearch first(prob, cfg);
  const auto partial = first.run(kPause);
  ASSERT_LT(partial.totalSims, full.totalSims) << "pause landed past the end";
  const std::string path = tmpPath("pvt_resume.ckpt");
  first.saveCheckpoint(path);

  core::PvtSearch resumed(prob, cfg);
  resumed.restoreCheckpoint(path);
  const auto continued = resumed.run(kBudget);
  expectOutcomeEq(full, continued);

  // In-memory pause/continue (no serialization) must agree too.
  const auto continuedInMemory = first.run(kBudget);
  expectOutcomeEq(full, continuedInMemory);
}

INSTANTIATE_TEST_SUITE_P(
    CacheAndThreads, PvtResume,
    ::testing::Values(std::make_tuple(true, std::size_t{1}),
                      std::make_tuple(false, std::size_t{1}),
                      std::make_tuple(true, std::size_t{2}),
                      std::make_tuple(false, std::size_t{3})),
    [](const auto& info) {
      return std::string(std::get<0>(info.param) ? "cache" : "nocache") +
             "_threads" + std::to_string(std::get<1>(info.param));
    });

TEST(PvtCheckpoint, RestoreRejectsMismatchedConfiguration) {
  const auto prob = hillProblem();
  core::PvtSearchConfig cfg;
  cfg.seed = 3;
  core::PvtSearch search(prob, cfg);
  (void)search.run(100);
  const std::string path = tmpPath("pvt_mismatch.ckpt");
  search.saveCheckpoint(path);

  core::PvtSearchConfig other = cfg;
  other.seed = 4;
  core::PvtSearch different(prob, other);
  try {
    different.restoreCheckpoint(path);
    FAIL() << "mismatched config accepted";
  } catch (const io::CheckpointError& e) {
    EXPECT_NE(std::string(e.what()).find("seed"), std::string::npos);
  }

  // Changed corner *conditions* (same count) must be rejected too: the
  // restored memo is keyed by corner index, so it would otherwise serve
  // simulations from the old conditions silently.
  auto hotter = hillProblem();
  hotter.corners[1].tempC = 150.0;
  core::PvtSearch hotterSearch(hotter, cfg);
  try {
    hotterSearch.restoreCheckpoint(path);
    FAIL() << "changed corner conditions accepted";
  } catch (const io::CheckpointError& e) {
    EXPECT_NE(std::string(e.what()).find("corner:1"), std::string::npos);
  }
}

TEST(PvtCheckpoint, FreshSnapshotBeforeFirstRunIsRestorable) {
  // save() before any run() snapshots a fresh search; restoring it and
  // running must equal a direct run (the documented SizingSession contract).
  const auto prob = hillProblem();
  core::PvtSearchConfig cfg;
  cfg.seed = 3;
  core::PvtSearch reference(prob, cfg);
  const auto direct = reference.run(400);

  core::PvtSearch fresh(prob, cfg);
  const std::string path = tmpPath("pvt_fresh.ckpt");
  fresh.saveCheckpoint(path);
  core::PvtSearch restored(prob, cfg);
  restored.restoreCheckpoint(path);
  const auto resumed = restored.run(400);
  expectOutcomeEq(direct, resumed);
}

TEST(PvtCheckpoint, CheckpointCadenceWithoutPathThrows) {
  core::PvtSearchConfig cfg;
  cfg.autoCheckpointEvery = 5;  // no autoCheckpointPath
  EXPECT_THROW(core::PvtSearch(hillProblem(), cfg), std::invalid_argument);
}

TEST(PvtCheckpoint, RestoreRejectsWrongKindAndCorruptFile) {
  const auto prob = hillProblem();
  core::PvtSearchConfig cfg;
  core::PvtSearch search(prob, cfg);
  (void)search.run(60);

  // Wrong kind: hand the search a checkpoint some other producer wrote.
  const std::string alien = tmpPath("alien.ckpt");
  io::CheckpointWriter w("rl-trainer");
  w.section("meta").str("a2c");
  w.writeFile(alien);
  try {
    search.restoreCheckpoint(alien);
    FAIL() << "wrong-kind checkpoint accepted";
  } catch (const io::CheckpointError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("rl-trainer"), std::string::npos);
    EXPECT_NE(msg.find("pvt-search"), std::string::npos);
  }

  // Corrupt: truncate a valid checkpoint file on disk.
  const std::string path = tmpPath("pvt_corrupt.ckpt");
  search.saveCheckpoint(path);
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string blob = buf.str();
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(blob.data(), static_cast<std::streamsize>(blob.size() / 2));
  out.close();
  EXPECT_THROW(search.restoreCheckpoint(path), io::CheckpointError);
}

// ---------- SizingSession: save/resume + periodic auto-checkpoint ----------

TEST(SessionCheckpoint, SaveResumeReproducesReportBitwise) {
  const auto prob = hillProblem();
  core::SessionOptions optsFull;
  optsFull.seed = 5;
  optsFull.maxSimulations = 1500;
  core::SizingSession uninterrupted(prob, optsFull);
  const auto full = uninterrupted.run();
  ASSERT_GT(full.simulations, 40u) << "problem too easy to pause mid-run";

  core::SessionOptions optsHalf = optsFull;
  optsHalf.maxSimulations = full.simulations / 2;
  core::SizingSession first(prob, optsHalf);
  const auto partial = first.run();
  ASSERT_LT(partial.simulations, full.simulations);
  const std::string path = tmpPath("session_resume.ckpt");
  first.save(path);

  core::SizingSession resumed(prob, optsFull);
  resumed.resume(path);
  const auto continued = resumed.run();

  EXPECT_EQ(full.solved, continued.solved);
  EXPECT_EQ(full.simulations, continued.simulations);
  EXPECT_EQ(full.sizes, continued.sizes);  // bitwise
  expectEvalsEq(full.cornerEvals, continued.cornerEvals);
  expectLedgerEq(full.ledger, continued.ledger);
  EXPECT_EQ(full.evalStats.requests, continued.evalStats.requests);
  EXPECT_EQ(full.evalStats.simulated, continued.evalStats.simulated);
  EXPECT_EQ(full.evalStats.cacheHits, continued.evalStats.cacheHits);
  // The whole human-readable report (timing never enters it) must agree.
  EXPECT_EQ(full.summary, continued.summary);
}

TEST(SessionCheckpoint, PeriodicAutoCheckpointIsResumable) {
  const auto prob = hillProblem();
  const std::string path = tmpPath("session_auto.ckpt");
  core::SessionOptions opts;
  opts.seed = 6;
  opts.maxSimulations = 1200;
  opts.checkpointEvery = 4;  // every 4 TRM steps
  opts.checkpointPath = path;
  core::SizingSession session(prob, opts);
  const auto full = session.run();

  // The periodic snapshot exists and resuming it lands on the same outcome.
  core::SessionOptions optsResume;
  optsResume.seed = 6;
  optsResume.maxSimulations = 1200;
  core::SizingSession resumed(prob, optsResume);
  resumed.resume(path);
  const auto continued = resumed.run();
  EXPECT_EQ(full.solved, continued.solved);
  EXPECT_EQ(full.simulations, continued.simulations);
  EXPECT_EQ(full.sizes, continued.sizes);
  EXPECT_EQ(full.summary, continued.summary);
}

// ---------- RL trainers: resume-at-update-k == uninterrupted ----------

core::SizingProblem rlProblem() {
  core::SizingProblem p;
  p.name = "rl-hill";
  p.space = core::DesignSpace({{"x", 0.0, 1.0, 33, false},
                               {"y", 0.0, 1.0, 33, false}});
  p.measurementNames = {"closeness"};
  p.specs = {{"closeness", core::SpecKind::kAtLeast, 0.93}};
  p.corners = {{sim::ProcessCorner::kTT, 1.0, 27.0}};
  p.evaluate = [](const Vector& v, const sim::PvtCorner&) {
    core::EvalResult r;
    r.ok = true;
    const double dx = v[0] - 0.55;
    const double dy = v[1] - 0.45;
    r.measurements = {1.0 - std::sqrt(dx * dx + dy * dy)};
    return r;
  };
  return p;
}

void expectRlOutcomeEq(const rl::RlTrainOutcome& a, const rl::RlTrainOutcome& b) {
  EXPECT_EQ(a.solved, b.solved);
  EXPECT_EQ(a.simulationsToSolve, b.simulationsToSolve);
  EXPECT_EQ(a.totalSimulations, b.totalSimulations);
  EXPECT_EQ(a.bestEpisodeReturn, b.bestEpisodeReturn);  // bitwise
}

TEST(RlCheckpoint, A2cResumeBitwiseEqualSingleAndMultiEnv) {
  const auto prob = rlProblem();
  for (const std::size_t numEnvs : {std::size_t{1}, std::size_t{2}}) {
    rl::A2cConfig cfg;
    cfg.seed = 9;
    cfg.nSteps = 12;
    cfg.numEnvs = numEnvs;
    cfg.env.episodeLength = 20;
    const std::size_t kBudget = 600;

    const rl::RlTrainOutcome full = rl::trainA2c(prob, cfg, kBudget);

    const std::string path =
        tmpPath("a2c_resume_" + std::to_string(numEnvs) + ".ckpt");
    rl::A2cConfig head = cfg;
    head.maxUpdates = 5;
    head.checkpointEvery = 5;
    head.checkpointPath = path;
    const rl::RlTrainOutcome partial = rl::trainA2c(prob, head, kBudget);
    ASSERT_LT(partial.totalSimulations, full.totalSimulations)
        << "pause landed past the end of training";

    rl::A2cConfig tail = cfg;
    tail.resumeFrom = path;
    const rl::RlTrainOutcome continued = rl::trainA2c(prob, tail, kBudget);
    expectRlOutcomeEq(full, continued);
  }
}

TEST(RlCheckpoint, CheckpointCadenceWithoutPathThrows) {
  rl::A2cConfig cfg;
  cfg.checkpointEvery = 5;  // no checkpointPath
  EXPECT_THROW((void)rl::trainA2c(rlProblem(), cfg, 100),
               std::invalid_argument);
}

TEST(RlCheckpoint, ResumeRejectsChangedConfiguration) {
  const auto prob = rlProblem();
  rl::A2cConfig cfg;
  cfg.seed = 9;
  cfg.maxUpdates = 2;
  cfg.checkpointEvery = 2;
  cfg.checkpointPath = tmpPath("a2c_fingerprint.ckpt");
  (void)rl::trainA2c(prob, cfg, 300);

  rl::A2cConfig other = cfg;
  other.maxUpdates = 0;
  other.checkpointEvery = 0;
  other.checkpointPath.clear();
  other.resumeFrom = cfg.checkpointPath;
  other.env.episodeLength = 25;  // trajectory-shaping change
  try {
    (void)rl::trainA2c(prob, other, 300);
    FAIL() << "changed env configuration accepted";
  } catch (const io::CheckpointError& e) {
    EXPECT_NE(std::string(e.what()).find("fingerprint"), std::string::npos);
  }
}

TEST(RlCheckpoint, ResumeRejectsWrongAlgorithm) {
  const auto prob = rlProblem();
  rl::A2cConfig cfg;
  cfg.seed = 9;
  cfg.maxUpdates = 2;
  cfg.checkpointEvery = 2;
  cfg.checkpointPath = tmpPath("a2c_for_trpo.ckpt");
  (void)rl::trainA2c(prob, cfg, 300);

  rl::TrpoConfig trpo;
  trpo.seed = 9;
  trpo.resumeFrom = cfg.checkpointPath;
  try {
    (void)rl::trainTrpo(prob, trpo, 300);
    FAIL() << "cross-algorithm resume accepted";
  } catch (const io::CheckpointError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("a2c"), std::string::npos);
    EXPECT_NE(msg.find("trpo"), std::string::npos);
  }
}

}  // namespace
}  // namespace trdse
