// End-to-end suite for the sizing service (src/serve): a real serve::Daemon
// on a real Unix-domain socket, driven through the typed serve::Client — the
// same transport + codec path `trdse submit` uses.
//
// The contracts under test are the service half of the repo's determinism
// story (docs/SERVICE.md):
//  * submit-vs-run byte identity — a submission against a fresh daemon
//    streams exactly the report `trdse run` renders for the same text;
//  * two-tenant fairness — scheduler rounds rotate across tenants, so a
//    tenant's backlog cannot starve another tenant's first submission;
//  * cache persistence — the daemon's SharedEvalCache survives a restart
//    (destroying a live Daemon is the in-process stand-in for SIGKILL: no
//    destructor flush, durable state is only what barriers already wrote),
//    turning an identical resubmission into pure shared hits;
//  * journaled crash recovery — an in-flight journaled submission killed
//    mid-run resumes bitwise after a restart (PR 6 journal composed with the
//    service manifest);
//  * admission — malformed text, oversized submissions, and unknown ids are
//    typed serve/rejected answers, not transport faults, and a
//    non-checkpointable scenario downgrades to journaled=false instead of
//    being refused.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "circuits/registry.hpp"
#include "orch/scenario.hpp"
#include "orch/scheduler.hpp"
#include "orch/wire.hpp"
#include "serve/client.hpp"
#include "serve/daemon.hpp"
#include "serve/report.hpp"

namespace trdse::serve {
namespace {

/// Synthetic 2-D CSP on a coarse 9x9 grid so jobs collide on cache keys
/// within a few rounds (same shape orch_test/orch_dist_test register; this
/// binary registers its own copy).
void ensureTinyGridRegistered() {
  static const bool once = [] {
    circuits::Registry::global().add(
        {"tiny_grid", "bsim45", "coarse synthetic CSP (serve tests)",
         [](const sim::ProcessCard&, std::vector<sim::PvtCorner> corners) {
           core::SizingProblem p;
           p.name = "tiny_grid";
           p.space = core::DesignSpace({{"x", 0.0, 1.0, 9, false},
                                        {"y", 0.0, 1.0, 9, false}});
           p.measurementNames = {"closeness", "budget"};
           p.specs = {{"closeness", core::SpecKind::kAtLeast, 0.95},
                      {"budget", core::SpecKind::kAtMost, 1.6}};
           p.corners = {{sim::ProcessCorner::kTT, 1.0, 27.0}};
           if (!corners.empty()) p.corners = std::move(corners);
           p.evaluate = [](const linalg::Vector& v, const sim::PvtCorner&) {
             core::EvalResult r;
             r.ok = true;
             const double dx = v[0] - 0.66;
             const double dy = v[1] - 0.31;
             r.measurements = {1.0 - std::sqrt(dx * dx + dy * dy),
                               v[0] + v[1]};
             return r;
           };
           return p;
         }});
    return true;
  }();
  (void)once;
}

/// A two-job checkpointable scenario (pvt_search + random_search both
/// support journaling); `tag` desynchronizes seeds across tests so cache
/// scopes do not accidentally overlap between unrelated daemons.
std::string checkpointableScenario(const std::string& name, unsigned seedBase,
                                   std::size_t budget = 64) {
  return "name = " + name +
         "\n"
         "threads = 1\n"
         "slice = 8\n"
         "shards = 4\n"
         "[job]\n"
         "name = pvt_a\n"
         "circuit = tiny_grid\n"
         "strategy = pvt_search\n"
         "seed = " +
         std::to_string(seedBase) +
         "\n"
         "budget = " +
         std::to_string(budget) +
         "\n"
         "[job]\n"
         "name = rs_b\n"
         "circuit = tiny_grid\n"
         "strategy = random_search\n"
         "seed = " +
         std::to_string(seedBase + 1) +
         "\n"
         "budget = " +
         std::to_string(budget) + "\n";
}

/// Render the report a fresh `trdse run` of `text` would print — the
/// reference side of the submit-vs-run byte-identity contract. Absolute
/// shard counters: a fresh scheduler's cache starts at zero.
std::string referenceRunReport(const std::string& text) {
  orch::Scheduler sched(orch::parseScenarioText(text, "reference"));
  const std::vector<orch::JobResult> results = sched.run();
  const orch::Scenario& sc = sched.scenario();
  ReportInput in;
  in.scenarioName = sc.name;
  in.jobCount = sc.jobs.size();
  in.slice = sc.slice;
  in.sharedCacheOn = sc.sharedCache;
  in.results = results;
  if (const eval::SharedEvalCache* cache = sched.sharedCache()) {
    in.haveCache = true;
    for (std::size_t s = 0; s < cache->shardCount(); ++s) {
      const auto c = cache->shardStats(s);
      in.shards.push_back({c.entries, c.hits, c.misses, c.inserts});
    }
  }
  return renderReport(in);
}

/// Daemon + background tick thread. halt() stops ticking without any
/// shutdown handshake; destroying the Daemon afterwards models SIGKILL
/// (durable state = whatever the barriers persisted).
class DaemonHarness {
 public:
  explicit DaemonHarness(DaemonConfig cfg)
      : daemon_(std::make_unique<Daemon>(std::move(cfg))) {}
  ~DaemonHarness() { halt(); }

  void start() {
    ticking_ = true;
    thread_ = std::thread([this] {
      while (!stop_.load(std::memory_order_relaxed) &&
             !daemon_->shutdownRequested())
        daemon_->tick(2);
    });
  }
  void halt() {
    if (!ticking_) return;
    stop_.store(true, std::memory_order_relaxed);
    thread_.join();
    ticking_ = false;
    stop_.store(false, std::memory_order_relaxed);
  }
  /// SIGKILL stand-in: stop ticking and drop the daemon mid-flight.
  void kill() {
    halt();
    daemon_.reset();
  }
  Daemon& daemon() { return *daemon_; }

 private:
  std::unique_ptr<Daemon> daemon_;
  std::thread thread_;
  std::atomic<bool> stop_{false};
  bool ticking_ = false;
};

DaemonConfig makeConfig(const std::string& dir, std::size_t shards = 4) {
  DaemonConfig cfg;
  cfg.socketPath = dir + "/daemon.sock";
  cfg.stateDir = dir + "/state";
  cfg.cacheShards = shards;
  return cfg;
}

std::string freshDir(const std::string& tag) {
  const std::string dir = ::testing::TempDir() + "serve_" + tag;
  std::system(("rm -rf " + dir + " && mkdir -p " + dir).c_str());
  return dir;
}

TEST(ServeTest, SubmitMatchesRunBitwise) {
  ensureTinyGridRegistered();
  const std::string text = checkpointableScenario("bitwise", 101);
  const std::string expected = referenceRunReport(text);

  const std::string dir = freshDir("bitwise");
  DaemonHarness harness(makeConfig(dir));
  harness.start();

  Client client = Client::connect(dir + "/daemon.sock");
  SubmitRequest req;
  req.scenarioText = text;
  bool journaled = false;
  const std::uint64_t id = client.submit(req, &journaled);
  EXPECT_TRUE(journaled);

  std::size_t progressEvents = 0;
  std::size_t lastRound = 0;
  const FinalResult res = client.stream(id, [&](const ProgressEvent& ev) {
    ++progressEvents;
    EXPECT_GT(ev.round, lastRound);  // rounds stream in order
    lastRound = ev.round;
  });
  EXPECT_EQ(res.id, id);
  EXPECT_FALSE(res.quarantined);
  EXPECT_EQ(res.report, expected);  // the byte-identity contract
  ASSERT_EQ(res.rows.size(), 2u);
  EXPECT_EQ(res.rows[0].name, "pvt_a");
  EXPECT_GE(progressEvents, 1u);

  // A completed submission replays its result to a late subscriber.
  const FinalResult replay = client.stream(id);
  EXPECT_EQ(replay.report, expected);
}

TEST(ServeTest, TwoTenantFairnessNoStarvation) {
  ensureTinyGridRegistered();
  const std::string dir = freshDir("fairness");
  DaemonHarness harness(makeConfig(dir));
  harness.start();

  Client client = Client::connect(dir + "/daemon.sock");
  SubmitRequest a1, a2, b1;
  a1.tenant = a2.tenant = "alice";
  b1.tenant = "bob";
  a1.scenarioText = checkpointableScenario("a1", 201);
  a2.scenarioText = checkpointableScenario("a2", 211);
  b1.scenarioText = checkpointableScenario("b1", 221);
  const std::uint64_t idA1 = client.submit(a1);
  const std::uint64_t idA2 = client.submit(a2);
  const std::uint64_t idB1 = client.submit(b1);

  // Round-robin across tenants means bob's first submission finishes while
  // alice's *second* is still early in its run — under FIFO (no tenant
  // fairness) a2 would have completed before b1 ever got a round.
  const FinalResult resB = client.stream(idB1);
  EXPECT_FALSE(resB.quarantined);
  bool a2Done = false;
  for (const JobStatus& row : client.status()) {
    if (row.id == idA2) a2Done = row.state == "completed";
    if (row.id == idA1) {
      EXPECT_EQ(row.state, "completed");  // alternation: a1 finished first
    }
  }
  EXPECT_FALSE(a2Done) << "tenant bob was starved behind alice's backlog";

  const FinalResult resA2 = client.stream(idA2);
  EXPECT_FALSE(resA2.quarantined);
}

TEST(ServeTest, CachePersistsAcrossRestart) {
  ensureTinyGridRegistered();
  const std::string text = checkpointableScenario("warm", 301);
  const std::string dir = freshDir("warm");
  const DaemonConfig cfg = makeConfig(dir);

  auto harness = std::make_unique<DaemonHarness>(cfg);
  harness->start();
  FinalResult cold;
  {
    Client client = Client::connect(cfg.socketPath);
    SubmitRequest req;
    req.scenarioText = text;
    cold = client.stream(client.submit(req));
    // Cold pass: everything freshly simulated.
    for (const auto& row : cold.rows)
      EXPECT_GT(row.outcome.evalStats.simulated, 0u);
  }
  harness->kill();  // SIGKILL stand-in: no flush beyond the barrier writes

  harness = std::make_unique<DaemonHarness>(cfg);
  harness->start();
  Client client = Client::connect(cfg.socketPath);
  // The first daemon's submission history survived in the manifest.
  const std::vector<JobStatus> rows = client.status();
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].state, "completed");

  SubmitRequest req;
  req.scenarioText = text;
  const FinalResult warm = client.stream(client.submit(req));
  // Warm pass against the restored cache: zero new simulations, every
  // evaluation answered by the persisted shared cache.
  ASSERT_EQ(warm.rows.size(), cold.rows.size());
  for (std::size_t i = 0; i < warm.rows.size(); ++i) {
    const auto& row = warm.rows[i];
    EXPECT_EQ(row.outcome.evalStats.simulated, 0u) << row.name;
    EXPECT_GT(row.outcome.evalStats.sharedHits, 0u) << row.name;
    // Same trajectory as the cold pass: cache hits change accounting, never
    // values.
    EXPECT_EQ(row.outcome.solved, cold.rows[i].outcome.solved) << row.name;
    EXPECT_EQ(row.outcome.bestValue, cold.rows[i].outcome.bestValue)
        << row.name;
    EXPECT_EQ(row.outcome.iterations, cold.rows[i].outcome.iterations)
        << row.name;
  }
}

TEST(ServeTest, SigkillMidRunResumesBitwise) {
  ensureTinyGridRegistered();
  // Big budget so the run is reliably still in flight when we kill it.
  const std::string text = checkpointableScenario("resume", 401, 320);
  const std::string expected = referenceRunReport(text);
  const std::string dir = freshDir("resume");
  const DaemonConfig cfg = makeConfig(dir);

  auto harness = std::make_unique<DaemonHarness>(cfg);
  harness->start();
  std::uint64_t id = 0;
  {
    Client client = Client::connect(cfg.socketPath);
    SubmitRequest req;
    req.scenarioText = text;
    bool journaled = false;
    id = client.submit(req, &journaled);
    ASSERT_TRUE(journaled);
    // Let it make progress past at least one journal barrier, then kill.
    for (;;) {
      const std::vector<JobStatus> rows = client.status(id);
      ASSERT_EQ(rows.size(), 1u);
      ASSERT_NE(rows[0].state, "failed") << rows[0].error;
      if (rows[0].rounds >= 2) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  harness->kill();

  harness = std::make_unique<DaemonHarness>(cfg);
  Client client = Client::connect(cfg.socketPath);
  {
    // Before ticking resumes it, the recovered submission reports as a
    // journaled runner mid-flight, not a restart from round zero.
    const std::vector<JobStatus> rows = harness->daemon().statusRows();
    ASSERT_EQ(rows.size(), 1u);
    EXPECT_TRUE(rows[0].journaled);
    EXPECT_NE(rows[0].state, "completed");
  }
  harness->start();
  const FinalResult res = client.stream(id);
  EXPECT_EQ(res.report, expected)
      << "journal resume must replay to the uninterrupted run bitwise";
}

TEST(ServeTest, AdmissionRejectsAndDowngrades) {
  ensureTinyGridRegistered();
  const std::string dir = freshDir("admission");
  DaemonConfig cfg = makeConfig(dir);
  cfg.maxSubmissionBytes = 512;
  DaemonHarness harness(std::move(cfg));
  harness.start();

  Client client = Client::connect(dir + "/daemon.sock");

  // Malformed scenario text: a typed rejection naming the parse problem —
  // the connection stays usable afterwards.
  SubmitRequest bad;
  bad.scenarioText = "slice = banana\n";
  bad.source = "bad.scenario";
  EXPECT_THROW(client.submit(bad), ServeError);

  // Oversized submission: refused at admission, naming the limit.
  SubmitRequest fat;
  fat.scenarioText =
      "# " + std::string(1024, 'x') + "\n" + checkpointableScenario("fat", 501);
  try {
    client.submit(fat);
    FAIL() << "oversized submission was admitted";
  } catch (const ServeError& e) {
    EXPECT_NE(std::string(e.what()).find("512"), std::string::npos)
        << e.what();
  }

  // Unknown id: rejected, not a transport fault.
  EXPECT_THROW(client.stream(77), ServeError);
  EXPECT_THROW(client.cancel(77), ServeError);

  // A scenario whose strategy cannot checkpoint still runs — wantJournal
  // downgrades to journaled=false instead of refusing the submission.
  SubmitRequest nc;
  nc.scenarioText =
      "name = nocheckpoint\nthreads = 1\nslice = 8\nshards = 4\n"
      "[job]\nname = bo\ncircuit = tiny_grid\nstrategy = tree_bayes_opt\n"
      "seed = 601\nbudget = 24\nopt.init_samples = 6\n"
      "opt.candidate_pool = 32\n";
  nc.wantJournal = true;
  bool journaled = true;
  const std::uint64_t id = client.submit(nc, &journaled);
  EXPECT_FALSE(journaled);
  const FinalResult res = client.stream(id);
  EXPECT_FALSE(res.report.empty());

  // The admission failures above never became submissions.
  std::size_t known = 0;
  for (const JobStatus& row : client.status()) {
    (void)row;
    ++known;
  }
  EXPECT_EQ(known, 1u);
}

TEST(ServeTest, CancelAndShutdown) {
  ensureTinyGridRegistered();
  const std::string dir = freshDir("cancel");
  DaemonHarness harness(makeConfig(dir));
  harness.start();

  Client client = Client::connect(dir + "/daemon.sock");
  SubmitRequest slow;
  slow.scenarioText = checkpointableScenario("slow", 701, 640);
  const std::uint64_t id = client.submit(slow);
  client.cancel(id);
  const std::vector<JobStatus> rows = client.status(id);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].state, "cancelled");
  // Streaming a cancelled submission is a rejection, not a hang.
  EXPECT_THROW(client.stream(id), ServeError);

  client.shutdown();
  for (int i = 0; i < 500 && !harness.daemon().shutdownRequested(); ++i)
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  EXPECT_TRUE(harness.daemon().shutdownRequested());
}

TEST(ServeTest, CacheBudgetEvictsCompletedScopes) {
  ensureTinyGridRegistered();
  const std::string text = checkpointableScenario("evict", 801);
  const std::string dir = freshDir("evict");
  DaemonConfig cfg = makeConfig(dir);
  cfg.cacheBudgetBytes = 1;  // evict everything not pinned by an active run
  DaemonHarness harness(std::move(cfg));
  harness.start();

  Client client = Client::connect(dir + "/daemon.sock");
  SubmitRequest req;
  req.scenarioText = text;
  const FinalResult first = client.stream(client.submit(req));
  EXPECT_FALSE(first.quarantined);

  // The completion barrier evicted the (now inactive) scope, so an identical
  // resubmission simulates from scratch instead of hitting shared entries.
  const FinalResult second = client.stream(client.submit(req));
  for (const auto& row : second.rows)
    EXPECT_GT(row.outcome.evalStats.simulated, 0u) << row.name;
}

}  // namespace
}  // namespace trdse::serve
