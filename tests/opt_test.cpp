#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <random>

#include "opt/extra_trees.hpp"
#include "opt/random_search.hpp"
#include "opt/tree_bayes_opt.hpp"

namespace trdse::opt {
namespace {

/// Synthetic 2-D CSP used by the optimizer tests: feasible iff both
/// measurements clear their limits; the feasible region is a small disc.
core::SizingProblem syntheticProblem(double feasibleRadius = 0.15) {
  core::SizingProblem p;
  p.name = "synthetic";
  p.space = core::DesignSpace({{"x", 0.0, 1.0, 201, false},
                               {"y", 0.0, 1.0, 201, false}});
  p.measurementNames = {"closeness", "budget"};
  p.specs = {{"closeness", core::SpecKind::kAtLeast, 1.0 - feasibleRadius},
             {"budget", core::SpecKind::kAtMost, 1.6}};
  p.corners = {{sim::ProcessCorner::kTT, 1.0, 27.0}};
  p.evaluate = [](const linalg::Vector& v, const sim::PvtCorner&) {
    core::EvalResult r;
    r.ok = true;
    const double dx = v[0] - 0.7;
    const double dy = v[1] - 0.3;
    r.measurements = {1.0 - std::sqrt(dx * dx + dy * dy), v[0] + v[1]};
    return r;
  };
  return p;
}

TEST(ExtraTrees, FitsConstantFunction) {
  std::vector<linalg::Vector> xs = {{0.1, 0.1}, {0.5, 0.5}, {0.9, 0.2}};
  std::vector<double> ys = {2.0, 2.0, 2.0};
  ExtraTreesRegressor model;
  model.fit(xs, ys, 1);
  const Prediction p = model.predict({0.3, 0.3});
  EXPECT_NEAR(p.mean, 2.0, 1e-9);
  EXPECT_NEAR(p.std, 0.0, 1e-9);
}

TEST(ExtraTrees, LearnsStepFunction) {
  std::mt19937_64 rng(2);
  std::uniform_real_distribution<double> d(0.0, 1.0);
  std::vector<linalg::Vector> xs;
  std::vector<double> ys;
  for (int i = 0; i < 400; ++i) {
    const double x = d(rng);
    xs.push_back({x});
    ys.push_back(x < 0.5 ? 0.0 : 1.0);
  }
  ExtraTreesRegressor model;
  model.fit(xs, ys, 3);
  EXPECT_LT(model.predict({0.2}).mean, 0.2);
  EXPECT_GT(model.predict({0.8}).mean, 0.8);
}

TEST(ExtraTrees, LearnsSmoothSurface) {
  std::mt19937_64 rng(4);
  std::uniform_real_distribution<double> d(0.0, 1.0);
  std::vector<linalg::Vector> xs;
  std::vector<double> ys;
  for (int i = 0; i < 600; ++i) {
    const double a = d(rng);
    const double b = d(rng);
    xs.push_back({a, b});
    ys.push_back(std::sin(3.0 * a) + b * b);
  }
  ExtraTreesRegressor model;
  model.fit(xs, ys, 5);
  double err = 0.0;
  int n = 0;
  for (double a = 0.1; a < 1.0; a += 0.2)
    for (double b = 0.1; b < 1.0; b += 0.2) {
      err += std::abs(model.predict({a, b}).mean - (std::sin(3.0 * a) + b * b));
      ++n;
    }
  EXPECT_LT(err / n, 0.15);
}

TEST(ExtraTrees, UncertaintyHigherNearDecisionBoundary) {
  // Randomized thresholds disagree most where the target changes fastest, so
  // the across-tree spread peaks near the step and vanishes on the plateaus.
  std::vector<linalg::Vector> xs;
  std::vector<double> ys;
  std::mt19937_64 rng(7);
  std::uniform_real_distribution<double> d(0.0, 1.0);
  for (int i = 0; i < 300; ++i) {
    const double a = d(rng);
    xs.push_back({a});
    ys.push_back(a < 0.5 ? 0.0 : 1.0);
  }
  ExtraTreesRegressor model;
  model.fit(xs, ys, 9);
  EXPECT_GT(model.predict({0.5}).std, model.predict({0.1}).std);
  EXPECT_GT(model.predict({0.5}).std, model.predict({0.9}).std);
}

TEST(RandomSearch, SolvesEasyProblem) {
  const auto prob = syntheticProblem(0.4);  // large feasible disc
  RandomSearch rs(prob, 3);
  const auto out = rs.run(2000);
  EXPECT_TRUE(out.solved);
  EXPECT_LT(out.iterations, 2000u);
}

TEST(RandomSearch, RespectsBudgetOnHardProblem) {
  const auto prob = syntheticProblem(0.01);  // tiny disc
  RandomSearch rs(prob, 3);
  const auto out = rs.run(300);
  EXPECT_LE(out.iterations, 300u);
  if (!out.solved) {
    EXPECT_EQ(out.iterations, 300u);
  }
}

TEST(RandomSearch, MultiCornerCountsEachCheck) {
  auto prob = syntheticProblem(1.5);  // everything feasible
  prob.corners = {{sim::ProcessCorner::kTT, 1.0, 27.0},
                  {sim::ProcessCorner::kSS, 1.0, 27.0},
                  {sim::ProcessCorner::kFF, 1.0, 27.0}};
  RandomSearch rs(prob, 5);
  const auto out = rs.run(100);
  EXPECT_TRUE(out.solved);
  EXPECT_EQ(out.iterations, 3u);  // one point, three corner checks
}

TEST(TreeBayesOpt, SolvesSyntheticFasterThanRandomOnAverage) {
  const auto prob = syntheticProblem(0.08);
  std::vector<double> boIters;
  std::vector<double> rsIters;
  for (int r = 0; r < 5; ++r) {
    TreeBayesOptConfig cfg;
    cfg.seed = 100 + r;
    TreeBayesOpt bo(prob, cfg);
    const auto b = bo.run(2000);
    EXPECT_TRUE(b.solved);
    boIters.push_back(static_cast<double>(b.iterations));
    RandomSearch rs(prob, 200 + r);
    const auto s = rs.run(2000);
    rsIters.push_back(static_cast<double>(s.iterations));
  }
  double boMean = 0.0;
  double rsMean = 0.0;
  for (double v : boIters) boMean += v;
  for (double v : rsIters) rsMean += v;
  EXPECT_LT(boMean, rsMean);
}

TEST(TreeBayesOpt, ReportsBestEvenWhenUnsolved) {
  const auto prob = syntheticProblem(0.005);
  TreeBayesOptConfig cfg;
  cfg.seed = 31;
  TreeBayesOpt bo(prob, cfg);
  const auto out = bo.run(150);
  EXPECT_FALSE(out.sizes.empty());
  EXPECT_GT(out.bestValue, core::kFailedValue);
  EXPECT_FALSE(out.bestMeasurements.empty());
}

TEST(TreeBayesOpt, HandlesFailingSimulations) {
  auto prob = syntheticProblem(0.3);
  auto inner = prob.evaluate;
  prob.evaluate = [inner](const linalg::Vector& v, const sim::PvtCorner& c) {
    if (v[0] < 0.25) return core::EvalResult{};  // dead region
    return inner(v, c);
  };
  TreeBayesOptConfig cfg;
  cfg.seed = 17;
  TreeBayesOpt bo(prob, cfg);
  const auto out = bo.run(1500);
  EXPECT_TRUE(out.solved);
}

// ---- Pre-refactor parity -------------------------------------------------
//
// The engine-backed strategies must reproduce the original hand-rolled
// evaluation loops bitwise: same RNG consumption, same budget checks in the
// same places, same early exits. The reference implementations below are the
// pre-refactor run() bodies, verbatim (evaluating through problem.evaluate
// directly, counting iterations ad hoc).

struct LegacyOutcome {
  bool solved = false;
  std::size_t iterations = 0;
  linalg::Vector sizes;
  double bestValue = core::kFailedValue;
  linalg::Vector bestMeasurements;
};

LegacyOutcome legacyRandomSearch(const core::SizingProblem& problem,
                                 std::uint64_t seed,
                                 std::size_t maxSimulations) {
  core::ValueFunction value(problem.measurementNames, problem.specs);
  std::mt19937_64 rng(seed);
  LegacyOutcome out;
  while (out.iterations < maxSimulations) {
    const linalg::Vector x = problem.space.randomPoint(rng);
    bool allPass = true;
    double worst = 0.0;
    for (const auto& corner : problem.corners) {
      if (out.iterations >= maxSimulations) return out;
      const core::EvalResult r = problem.evaluate(x, corner);
      ++out.iterations;
      const double v = value.valueOf(r);
      worst = std::min(worst, v);
      if (!r.ok || !value.satisfied(r.measurements)) {
        allPass = false;
        break;
      }
    }
    if (worst > out.bestValue) {
      out.bestValue = worst;
      out.sizes = x;
    }
    if (allPass) {
      out.solved = true;
      out.sizes = x;
      return out;
    }
  }
  return out;
}

LegacyOutcome legacyTreeBayesOpt(const core::SizingProblem& problem,
                                 const TreeBayesOptConfig& config,
                                 std::size_t maxSimulations) {
  core::ValueFunction value(problem.measurementNames, problem.specs);
  std::mt19937_64 rng(config.seed);
  LegacyOutcome out;
  const auto& space = problem.space;
  const double nSpecs = static_cast<double>(problem.specs.size());
  const double failTarget = -config.failedPenaltyPerSpec * nSpecs;

  std::vector<linalg::Vector> xs;
  std::vector<double> ys;
  linalg::Vector bestUnit;

  const auto evaluateAllCorners = [&](const linalg::Vector& sizes,
                                      linalg::Vector* worstMeas) {
    double worst = 0.0;
    for (const auto& corner : problem.corners) {
      if (out.iterations >= maxSimulations) break;
      const core::EvalResult r = problem.evaluate(sizes, corner);
      ++out.iterations;
      const double v = value.valueOf(r);
      if (v < worst) {
        worst = v;
        if (worstMeas != nullptr && r.ok) *worstMeas = r.measurements;
      } else if (worstMeas != nullptr && worstMeas->empty() && r.ok) {
        *worstMeas = r.measurements;
      }
      if (v <= core::kFailedValue) break;
    }
    return worst;
  };
  const auto observe = [&](const linalg::Vector& rawSizes) {
    const linalg::Vector sizes = space.snap(rawSizes);
    linalg::Vector meas;
    const double v = evaluateAllCorners(sizes, &meas);
    const double target = v <= core::kFailedValue ? failTarget : v;
    xs.push_back(space.toUnit(sizes));
    ys.push_back(target);
    if (v > out.bestValue) {
      out.bestValue = v;
      out.sizes = sizes;
      out.bestMeasurements = meas;
      bestUnit = xs.back();
    }
    if (v >= 0.0) {
      out.solved = true;
      out.sizes = sizes;
    }
  };

  for (std::size_t i = 0; i < config.initSamples; ++i) {
    if (out.iterations >= maxSimulations || out.solved) return out;
    observe(space.randomPoint(rng));
  }

  ExtraTreesRegressor model;
  std::normal_distribution<double> gauss(0.0, config.localSigma);
  std::uniform_real_distribution<double> unif(0.0, 1.0);
  std::size_t lastFitSize = 0;

  while (out.iterations < maxSimulations && !out.solved) {
    const std::size_t refitGap = std::max<std::size_t>(
        1, xs.size() / std::max<std::size_t>(1, config.refitDivisor));
    if (!model.fitted() || xs.size() - lastFitSize >= refitGap) {
      model.fit(xs, ys, config.seed + out.iterations);
      lastFitSize = xs.size();
    }
    const double progress = static_cast<double>(out.iterations) /
                            static_cast<double>(maxSimulations);
    const double kappa =
        config.kappaStart + (config.kappaEnd - config.kappaStart) * progress;

    linalg::Vector bestCand;
    double bestAcq = -std::numeric_limits<double>::infinity();
    const std::size_t nLocal = static_cast<std::size_t>(
        config.localFraction * static_cast<double>(config.candidatePool));
    for (std::size_t c = 0; c < config.candidatePool; ++c) {
      linalg::Vector u(space.dim());
      if (c < nLocal && !bestUnit.empty()) {
        for (std::size_t d = 0; d < space.dim(); ++d)
          u[d] = std::clamp(bestUnit[d] + gauss(rng), 0.0, 1.0);
      } else {
        for (std::size_t d = 0; d < space.dim(); ++d) u[d] = unif(rng);
      }
      const Prediction p = model.predict(u);
      const double acq = p.mean + kappa * p.std;
      if (acq > bestAcq) {
        bestAcq = acq;
        bestCand = u;
      }
    }
    if (bestCand.empty()) break;
    observe(space.fromUnit(bestCand));
  }
  return out;
}

core::SizingProblem multiCornerProblem(double feasibleRadius) {
  auto prob = syntheticProblem(feasibleRadius);
  prob.corners = {{sim::ProcessCorner::kTT, 1.0, 27.0},
                  {sim::ProcessCorner::kSS, 0.9, 125.0},
                  {sim::ProcessCorner::kFF, 1.1, -40.0}};
  return prob;
}

TEST(RandomSearch, BitwiseMatchesPreRefactorLoop) {
  struct Case {
    double radius;
    std::uint64_t seed;
    std::size_t budget;
    bool multiCorner;
  };
  const Case cases[] = {{0.4, 3, 2000, false},   // solves
                        {0.01, 3, 300, false},   // exhausts the budget
                        {1.5, 5, 100, true},     // multi-corner, solves
                        {0.01, 9, 100, true}};   // multi-corner, exhausts
  for (const Case& c : cases) {
    const auto prob =
        c.multiCorner ? multiCornerProblem(c.radius) : syntheticProblem(c.radius);
    const LegacyOutcome legacy = legacyRandomSearch(prob, c.seed, c.budget);
    RandomSearch rs(prob, c.seed, c.budget);
    const StrategyOutcome& out = rs.run();
    EXPECT_EQ(out.solved, legacy.solved);
    EXPECT_EQ(out.iterations, legacy.iterations);
    EXPECT_EQ(out.sizes, legacy.sizes);
    EXPECT_EQ(out.bestValue, legacy.bestValue);
  }
}

TEST(TreeBayesOpt, BitwiseMatchesPreRefactorLoop) {
  struct Case {
    double radius;
    std::uint64_t seed;
    std::size_t budget;
    bool multiCorner;
  };
  const Case cases[] = {{0.08, 100, 2000, false},  // solves
                        {0.005, 31, 150, false},   // exhausts the budget
                        {0.3, 21, 400, true}};     // multi-corner sweeps
  for (const Case& c : cases) {
    const auto prob =
        c.multiCorner ? multiCornerProblem(c.radius) : syntheticProblem(c.radius);
    TreeBayesOptConfig cfg;
    cfg.seed = c.seed;
    const LegacyOutcome legacy = legacyTreeBayesOpt(prob, cfg, c.budget);
    TreeBayesOpt bo(prob, cfg, c.budget);
    const StrategyOutcome& out = bo.run();
    EXPECT_EQ(out.solved, legacy.solved);
    EXPECT_EQ(out.iterations, legacy.iterations);
    EXPECT_EQ(out.sizes, legacy.sizes);
    EXPECT_EQ(out.bestValue, legacy.bestValue);
    EXPECT_EQ(out.bestMeasurements, legacy.bestMeasurements);
  }
}

// The budget-accounting satellite: the ad-hoc iteration counters used to
// drift from any block-level bookkeeping; with every evaluation routed
// through the engine, ledger == iterations == requests, always.

TEST(RandomSearch, LedgerAgreesWithIterationCount) {
  for (const std::size_t budget : {100u, 301u}) {
    const auto prob = multiCornerProblem(0.05);
    RandomSearch rs(prob, 13, budget);
    const StrategyOutcome& out = rs.run();
    EXPECT_EQ(out.ledger.totalBlocks(), out.iterations);
    EXPECT_EQ(out.evalStats.requests, out.iterations);
    EXPECT_EQ(out.evalStats.simulated + out.evalStats.cacheHits +
                  out.evalStats.sharedHits,
              out.iterations);
    EXPECT_EQ(out.ledger.searchBlocks(), out.iterations);  // RS never verifies
  }
}

TEST(TreeBayesOpt, LedgerAgreesWithIterationCount) {
  const auto prob = multiCornerProblem(0.05);
  TreeBayesOptConfig cfg;
  cfg.seed = 19;
  TreeBayesOpt bo(prob, cfg, 250);
  const StrategyOutcome& out = bo.run();
  EXPECT_EQ(out.ledger.totalBlocks(), out.iterations);
  EXPECT_EQ(out.evalStats.requests, out.iterations);
  EXPECT_EQ(out.evalStats.simulated + out.evalStats.cacheHits +
                out.evalStats.sharedHits,
            out.iterations);
}

}  // namespace
}  // namespace trdse::opt
