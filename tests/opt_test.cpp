#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "opt/extra_trees.hpp"
#include "opt/random_search.hpp"
#include "opt/tree_bayes_opt.hpp"

namespace trdse::opt {
namespace {

/// Synthetic 2-D CSP used by the optimizer tests: feasible iff both
/// measurements clear their limits; the feasible region is a small disc.
core::SizingProblem syntheticProblem(double feasibleRadius = 0.15) {
  core::SizingProblem p;
  p.name = "synthetic";
  p.space = core::DesignSpace({{"x", 0.0, 1.0, 201, false},
                               {"y", 0.0, 1.0, 201, false}});
  p.measurementNames = {"closeness", "budget"};
  p.specs = {{"closeness", core::SpecKind::kAtLeast, 1.0 - feasibleRadius},
             {"budget", core::SpecKind::kAtMost, 1.6}};
  p.corners = {{sim::ProcessCorner::kTT, 1.0, 27.0}};
  p.evaluate = [](const linalg::Vector& v, const sim::PvtCorner&) {
    core::EvalResult r;
    r.ok = true;
    const double dx = v[0] - 0.7;
    const double dy = v[1] - 0.3;
    r.measurements = {1.0 - std::sqrt(dx * dx + dy * dy), v[0] + v[1]};
    return r;
  };
  return p;
}

TEST(ExtraTrees, FitsConstantFunction) {
  std::vector<linalg::Vector> xs = {{0.1, 0.1}, {0.5, 0.5}, {0.9, 0.2}};
  std::vector<double> ys = {2.0, 2.0, 2.0};
  ExtraTreesRegressor model;
  model.fit(xs, ys, 1);
  const Prediction p = model.predict({0.3, 0.3});
  EXPECT_NEAR(p.mean, 2.0, 1e-9);
  EXPECT_NEAR(p.std, 0.0, 1e-9);
}

TEST(ExtraTrees, LearnsStepFunction) {
  std::mt19937_64 rng(2);
  std::uniform_real_distribution<double> d(0.0, 1.0);
  std::vector<linalg::Vector> xs;
  std::vector<double> ys;
  for (int i = 0; i < 400; ++i) {
    const double x = d(rng);
    xs.push_back({x});
    ys.push_back(x < 0.5 ? 0.0 : 1.0);
  }
  ExtraTreesRegressor model;
  model.fit(xs, ys, 3);
  EXPECT_LT(model.predict({0.2}).mean, 0.2);
  EXPECT_GT(model.predict({0.8}).mean, 0.8);
}

TEST(ExtraTrees, LearnsSmoothSurface) {
  std::mt19937_64 rng(4);
  std::uniform_real_distribution<double> d(0.0, 1.0);
  std::vector<linalg::Vector> xs;
  std::vector<double> ys;
  for (int i = 0; i < 600; ++i) {
    const double a = d(rng);
    const double b = d(rng);
    xs.push_back({a, b});
    ys.push_back(std::sin(3.0 * a) + b * b);
  }
  ExtraTreesRegressor model;
  model.fit(xs, ys, 5);
  double err = 0.0;
  int n = 0;
  for (double a = 0.1; a < 1.0; a += 0.2)
    for (double b = 0.1; b < 1.0; b += 0.2) {
      err += std::abs(model.predict({a, b}).mean - (std::sin(3.0 * a) + b * b));
      ++n;
    }
  EXPECT_LT(err / n, 0.15);
}

TEST(ExtraTrees, UncertaintyHigherNearDecisionBoundary) {
  // Randomized thresholds disagree most where the target changes fastest, so
  // the across-tree spread peaks near the step and vanishes on the plateaus.
  std::vector<linalg::Vector> xs;
  std::vector<double> ys;
  std::mt19937_64 rng(7);
  std::uniform_real_distribution<double> d(0.0, 1.0);
  for (int i = 0; i < 300; ++i) {
    const double a = d(rng);
    xs.push_back({a});
    ys.push_back(a < 0.5 ? 0.0 : 1.0);
  }
  ExtraTreesRegressor model;
  model.fit(xs, ys, 9);
  EXPECT_GT(model.predict({0.5}).std, model.predict({0.1}).std);
  EXPECT_GT(model.predict({0.5}).std, model.predict({0.9}).std);
}

TEST(RandomSearch, SolvesEasyProblem) {
  const auto prob = syntheticProblem(0.4);  // large feasible disc
  RandomSearch rs(prob, 3);
  const auto out = rs.run(2000);
  EXPECT_TRUE(out.solved);
  EXPECT_LT(out.iterations, 2000u);
}

TEST(RandomSearch, RespectsBudgetOnHardProblem) {
  const auto prob = syntheticProblem(0.01);  // tiny disc
  RandomSearch rs(prob, 3);
  const auto out = rs.run(300);
  EXPECT_LE(out.iterations, 300u);
  if (!out.solved) {
    EXPECT_EQ(out.iterations, 300u);
  }
}

TEST(RandomSearch, MultiCornerCountsEachCheck) {
  auto prob = syntheticProblem(1.5);  // everything feasible
  prob.corners = {{sim::ProcessCorner::kTT, 1.0, 27.0},
                  {sim::ProcessCorner::kSS, 1.0, 27.0},
                  {sim::ProcessCorner::kFF, 1.0, 27.0}};
  RandomSearch rs(prob, 5);
  const auto out = rs.run(100);
  EXPECT_TRUE(out.solved);
  EXPECT_EQ(out.iterations, 3u);  // one point, three corner checks
}

TEST(TreeBayesOpt, SolvesSyntheticFasterThanRandomOnAverage) {
  const auto prob = syntheticProblem(0.08);
  std::vector<double> boIters;
  std::vector<double> rsIters;
  for (int r = 0; r < 5; ++r) {
    TreeBayesOptConfig cfg;
    cfg.seed = 100 + r;
    TreeBayesOpt bo(prob, cfg);
    const auto b = bo.run(2000);
    EXPECT_TRUE(b.solved);
    boIters.push_back(static_cast<double>(b.iterations));
    RandomSearch rs(prob, 200 + r);
    const auto s = rs.run(2000);
    rsIters.push_back(static_cast<double>(s.iterations));
  }
  double boMean = 0.0;
  double rsMean = 0.0;
  for (double v : boIters) boMean += v;
  for (double v : rsIters) rsMean += v;
  EXPECT_LT(boMean, rsMean);
}

TEST(TreeBayesOpt, ReportsBestEvenWhenUnsolved) {
  const auto prob = syntheticProblem(0.005);
  TreeBayesOptConfig cfg;
  cfg.seed = 31;
  TreeBayesOpt bo(prob, cfg);
  const auto out = bo.run(150);
  EXPECT_FALSE(out.sizes.empty());
  EXPECT_GT(out.bestValue, core::kFailedValue);
  EXPECT_FALSE(out.bestMeasurements.empty());
}

TEST(TreeBayesOpt, HandlesFailingSimulations) {
  auto prob = syntheticProblem(0.3);
  auto inner = prob.evaluate;
  prob.evaluate = [inner](const linalg::Vector& v, const sim::PvtCorner& c) {
    if (v[0] < 0.25) return core::EvalResult{};  // dead region
    return inner(v, c);
  };
  TreeBayesOptConfig cfg;
  cfg.seed = 17;
  TreeBayesOpt bo(prob, cfg);
  const auto out = bo.run(1500);
  EXPECT_TRUE(out.solved);
}

}  // namespace
}  // namespace trdse::opt
