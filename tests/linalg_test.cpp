#include <gtest/gtest.h>

#include <complex>
#include <random>

#include "linalg/lu.hpp"
#include "linalg/matrix.hpp"
#include "linalg/stats.hpp"

namespace trdse::linalg {
namespace {

TEST(Matrix, ConstructionAndIndexing) {
  Matrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_DOUBLE_EQ(m(1, 2), 1.5);
  m(0, 1) = -2.0;
  EXPECT_DOUBLE_EQ(m(0, 1), -2.0);
}

TEST(Matrix, InitializerList) {
  Matrix m{{1.0, 2.0}, {3.0, 4.0}};
  EXPECT_DOUBLE_EQ(m(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(m(1, 1), 4.0);
}

TEST(Matrix, MatVec) {
  Matrix m{{1.0, 2.0}, {3.0, 4.0}};
  const Vector y = matVec(m, {1.0, 1.0});
  EXPECT_DOUBLE_EQ(y[0], 3.0);
  EXPECT_DOUBLE_EQ(y[1], 7.0);
}

TEST(Matrix, MatTVec) {
  Matrix m{{1.0, 2.0}, {3.0, 4.0}};
  const Vector y = matTVec(m, {1.0, 1.0});
  EXPECT_DOUBLE_EQ(y[0], 4.0);
  EXPECT_DOUBLE_EQ(y[1], 6.0);
}

TEST(Matrix, MatMulIdentity) {
  Matrix a{{2.0, -1.0}, {0.5, 3.0}};
  Matrix eye{{1.0, 0.0}, {0.0, 1.0}};
  EXPECT_EQ(matMul(a, eye), a);
  EXPECT_EQ(matMul(eye, a), a);
}

TEST(Matrix, ArithmeticOps) {
  Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  Matrix b = a;
  b += a;
  EXPECT_DOUBLE_EQ(b(1, 1), 8.0);
  b -= a;
  EXPECT_EQ(b, a);
  b *= 3.0;
  EXPECT_DOUBLE_EQ(b(0, 0), 3.0);
}

TEST(VectorOps, DotAndNorms) {
  const Vector a = {3.0, 4.0};
  EXPECT_DOUBLE_EQ(dot(a, a), 25.0);
  EXPECT_DOUBLE_EQ(norm2(a), 5.0);
  EXPECT_DOUBLE_EQ(normInf({-7.0, 2.0}), 7.0);
}

TEST(VectorOps, AxpyAndScaled) {
  Vector y = {1.0, 1.0};
  axpy(2.0, {1.0, -1.0}, y);
  EXPECT_DOUBLE_EQ(y[0], 3.0);
  EXPECT_DOUBLE_EQ(y[1], -1.0);
  const Vector s = scaled({2.0, 4.0}, 0.5);
  EXPECT_DOUBLE_EQ(s[0], 1.0);
  EXPECT_DOUBLE_EQ(s[1], 2.0);
}

TEST(Lu, SolvesKnownSystem) {
  Matrix a{{2.0, 1.0}, {1.0, 3.0}};
  const auto x = LuSolver<double>::solveSystem(a, {3.0, 5.0});
  ASSERT_TRUE(x.has_value());
  EXPECT_NEAR((*x)[0], 0.8, 1e-12);
  EXPECT_NEAR((*x)[1], 1.4, 1e-12);
}

TEST(Lu, DetectsSingular) {
  Matrix a{{1.0, 2.0}, {2.0, 4.0}};
  EXPECT_FALSE(LuSolver<double>::solveSystem(a, {1.0, 1.0}).has_value());
}

TEST(Lu, RequiresPivoting) {
  // Zero on the diagonal forces a row swap.
  Matrix a{{0.0, 1.0}, {1.0, 0.0}};
  const auto x = LuSolver<double>::solveSystem(a, {2.0, 3.0});
  ASSERT_TRUE(x.has_value());
  EXPECT_NEAR((*x)[0], 3.0, 1e-12);
  EXPECT_NEAR((*x)[1], 2.0, 1e-12);
}

TEST(Lu, ReusableFactorization) {
  Matrix a{{4.0, 1.0}, {2.0, 3.0}};
  LuSolver<double> lu;
  ASSERT_TRUE(lu.factor(a));
  const Vector x1 = lu.solve({5.0, 5.0});
  const Vector x2 = lu.solve({1.0, 0.0});
  EXPECT_NEAR(4.0 * x1[0] + x1[1], 5.0, 1e-12);
  EXPECT_NEAR(4.0 * x2[0] + x2[1], 1.0, 1e-12);
  EXPECT_NEAR(2.0 * x2[0] + 3.0 * x2[1], 0.0, 1e-12);
}

TEST(Lu, ComplexSystem) {
  using C = std::complex<double>;
  ComplexMatrix a(2, 2);
  a(0, 0) = {1.0, 1.0};
  a(0, 1) = {0.0, -1.0};
  a(1, 0) = {2.0, 0.0};
  a(1, 1) = {3.0, 1.0};
  const ComplexVector b = {{1.0, 0.0}, {0.0, 2.0}};
  const auto x = LuSolver<C>::solveSystem(a, b);
  ASSERT_TRUE(x.has_value());
  // Verify A x == b.
  for (std::size_t r = 0; r < 2; ++r) {
    C acc{0.0, 0.0};
    for (std::size_t c = 0; c < 2; ++c) acc += a(r, c) * (*x)[c];
    EXPECT_NEAR(std::abs(acc - b[r]), 0.0, 1e-12);
  }
}

class LuRandomTest : public ::testing::TestWithParam<int> {};

TEST_P(LuRandomTest, ResidualSmallOnRandomSystems) {
  std::mt19937_64 rng(static_cast<std::uint64_t>(GetParam()));
  std::uniform_real_distribution<double> d(-1.0, 1.0);
  const std::size_t n = 5 + static_cast<std::size_t>(GetParam()) % 15;
  Matrix a(n, n);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < n; ++c) a(r, c) = d(rng);
    a(r, r) += 3.0;  // diagonally dominant => well conditioned
  }
  Vector b(n);
  for (auto& v : b) v = d(rng);
  const auto x = LuSolver<double>::solveSystem(a, b);
  ASSERT_TRUE(x.has_value());
  const Vector ax = matVec(a, *x);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(ax[i], b[i], 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, LuRandomTest, ::testing::Range(0, 12));

TEST(Stats, SummaryBasics) {
  const Summary s = summarize({1.0, 2.0, 3.0, 4.0});
  EXPECT_EQ(s.count, 4u);
  EXPECT_DOUBLE_EQ(s.mean, 2.5);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 4.0);
  EXPECT_NEAR(s.stddev, 1.2909944, 1e-6);
  EXPECT_DOUBLE_EQ(s.median, 2.5);
}

TEST(Stats, EmptyAndSingle) {
  EXPECT_EQ(summarize({}).count, 0u);
  const Summary s = summarize({7.0});
  EXPECT_DOUBLE_EQ(s.mean, 7.0);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
}

TEST(Stats, Percentile) {
  EXPECT_DOUBLE_EQ(percentile({1.0, 2.0, 3.0}, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile({1.0, 2.0, 3.0}, 100.0), 3.0);
  EXPECT_DOUBLE_EQ(percentile({1.0, 2.0, 3.0}, 50.0), 2.0);
  EXPECT_DOUBLE_EQ(percentile({1.0, 3.0}, 50.0), 2.0);
}

}  // namespace
}  // namespace trdse::linalg
