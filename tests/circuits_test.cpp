#include <gtest/gtest.h>

#include <random>

#include "circuits/ico.hpp"
#include "circuits/ldo.hpp"
#include "circuits/two_stage_opamp.hpp"
#include "core/value.hpp"

namespace trdse::circuits {
namespace {

sim::PvtCorner ttCorner(const sim::ProcessCard& card) {
  return {sim::ProcessCorner::kTT, card.nominalVdd, 27.0};
}

linalg::Vector nominalOpampSizes(const sim::ProcessCard& card) {
  linalg::Vector s(TwoStageOpamp::kParamCount);
  s[TwoStageOpamp::kW1] = 4e-6;
  s[TwoStageOpamp::kW3] = 2e-6;
  s[TwoStageOpamp::kW5] = 4e-6;
  s[TwoStageOpamp::kW6] = 20e-6;
  s[TwoStageOpamp::kW7] = 8e-6;
  s[TwoStageOpamp::kL12] = 2 * card.minL;
  s[TwoStageOpamp::kL67] = 2 * card.minL;
  s[TwoStageOpamp::kCc] = 1e-12;
  s[TwoStageOpamp::kIbias] = 10e-6;
  return s;
}

TEST(Opamp, NominalDesignSimulates) {
  const auto& card = sim::bsim45Card();
  const TwoStageOpamp amp(card);
  const auto r = amp.evaluate(nominalOpampSizes(card), ttCorner(card));
  ASSERT_TRUE(r.ok);
  EXPECT_GT(r.measurements[TwoStageOpamp::kGainDb], 20.0);
  EXPECT_LT(r.measurements[TwoStageOpamp::kGainDb], 110.0);
  EXPECT_GT(r.measurements[TwoStageOpamp::kUgbwHz], 1e6);
  EXPECT_GT(r.measurements[TwoStageOpamp::kPmDeg], 0.0);
  EXPECT_GT(r.measurements[TwoStageOpamp::kPowerMw], 0.0);
}

TEST(Opamp, GainIncreasesWithLength) {
  // Longer channels -> higher intrinsic gain (CLM weaker).
  const auto& card = sim::bsim45Card();
  const TwoStageOpamp amp(card);
  auto s = nominalOpampSizes(card);
  s[TwoStageOpamp::kL12] = 1 * card.minL;
  s[TwoStageOpamp::kL67] = 1 * card.minL;
  const auto shortL = amp.evaluate(s, ttCorner(card));
  s[TwoStageOpamp::kL12] = 6 * card.minL;
  s[TwoStageOpamp::kL67] = 6 * card.minL;
  const auto longL = amp.evaluate(s, ttCorner(card));
  ASSERT_TRUE(shortL.ok && longL.ok);
  EXPECT_GT(longL.measurements[TwoStageOpamp::kGainDb],
            shortL.measurements[TwoStageOpamp::kGainDb]);
}

TEST(Opamp, PowerScalesWithBias) {
  const auto& card = sim::bsim45Card();
  const TwoStageOpamp amp(card);
  auto s = nominalOpampSizes(card);
  const auto lo = amp.evaluate(s, ttCorner(card));
  s[TwoStageOpamp::kIbias] = 40e-6;
  const auto hi = amp.evaluate(s, ttCorner(card));
  ASSERT_TRUE(lo.ok && hi.ok);
  EXPECT_GT(hi.measurements[TwoStageOpamp::kPowerMw],
            lo.measurements[TwoStageOpamp::kPowerMw] * 2.0);
}

TEST(Opamp, MillerCapSetsBandwidthTradeoff) {
  // Bigger Cc -> lower UGBW but (generally) healthier phase margin.
  const auto& card = sim::bsim45Card();
  const TwoStageOpamp amp(card);
  auto s = nominalOpampSizes(card);
  s[TwoStageOpamp::kCc] = 0.2e-12;
  const auto smallC = amp.evaluate(s, ttCorner(card));
  s[TwoStageOpamp::kCc] = 3e-12;
  const auto bigC = amp.evaluate(s, ttCorner(card));
  ASSERT_TRUE(smallC.ok && bigC.ok);
  EXPECT_LT(bigC.measurements[TwoStageOpamp::kUgbwHz],
            smallC.measurements[TwoStageOpamp::kUgbwHz]);
}

TEST(Opamp, GainPhaseMarginTradeoffExists) {
  // The paper's Table I discussion: circuits with high gain often have
  // fragile phase margins. Verify the negative correlation statistically.
  const auto& card = sim::bsim45Card();
  const TwoStageOpamp amp(card);
  const auto space = TwoStageOpamp::designSpace(card);
  std::mt19937_64 rng(13);
  double sumG = 0.0, sumP = 0.0, sumGP = 0.0, sumG2 = 0.0, sumP2 = 0.0;
  int n = 0;
  for (int i = 0; i < 400; ++i) {
    const auto e = amp.evaluate(space.randomPoint(rng), ttCorner(card));
    if (!e.ok) continue;
    const double g = e.measurements[TwoStageOpamp::kGainDb];
    const double p = e.measurements[TwoStageOpamp::kPmDeg];
    sumG += g;
    sumP += p;
    sumGP += g * p;
    sumG2 += g * g;
    sumP2 += p * p;
    ++n;
  }
  ASSERT_GT(n, 100);
  const double cov = sumGP / n - (sumG / n) * (sumP / n);
  const double varG = sumG2 / n - (sumG / n) * (sumG / n);
  const double varP = sumP2 / n - (sumP / n) * (sumP / n);
  const double corr = cov / std::sqrt(varG * varP);
  EXPECT_LT(corr, -0.2);
}

TEST(Opamp, CornersChangeMeasurements) {
  const auto& card = sim::bsim45Card();
  const TwoStageOpamp amp(card);
  const auto s = nominalOpampSizes(card);
  const auto tt = amp.evaluate(s, {sim::ProcessCorner::kTT, card.nominalVdd, 27.0});
  const auto ssHot =
      amp.evaluate(s, {sim::ProcessCorner::kSS, card.nominalVdd, 125.0});
  ASSERT_TRUE(tt.ok && ssHot.ok);
  EXPECT_NE(tt.measurements[TwoStageOpamp::kUgbwHz],
            ssHot.measurements[TwoStageOpamp::kUgbwHz]);
}

TEST(Opamp, DesignSpaceMatchesPaperScale) {
  const auto space = TwoStageOpamp::designSpace(sim::bsim45Card());
  EXPECT_EQ(space.dim(), static_cast<std::size_t>(TwoStageOpamp::kParamCount));
  EXPECT_GT(space.sizeLog10(), 13.0);  // the paper's "10^14"
  EXPECT_LT(space.sizeLog10(), 17.0);
}

TEST(Opamp, AreaPositiveAndMonotoneInWidth) {
  const auto& card = sim::bsim45Card();
  const TwoStageOpamp amp(card);
  auto s = nominalOpampSizes(card);
  const double a0 = amp.area(s);
  EXPECT_GT(a0, 0.0);
  s[TwoStageOpamp::kW6] *= 2.0;
  EXPECT_GT(amp.area(s), a0);
}

TEST(Opamp, ProblemFactoryWiresEverything) {
  const auto& card = sim::bsim45Card();
  const TwoStageOpamp amp(card);
  const auto prob = amp.makeProblem({ttCorner(card)}, amp.defaultSpecs());
  EXPECT_EQ(prob.space.dim(), 9u);
  EXPECT_EQ(prob.measurementNames.size(), 4u);
  EXPECT_FALSE(prob.specs.empty());
  ASSERT_TRUE(static_cast<bool>(prob.evaluate));
  const auto e = prob.evaluate(nominalOpampSizes(card), prob.corners.front());
  EXPECT_TRUE(e.ok);
}

// ---------- LDO ----------

TEST(Ldo, HumanReferenceRegulates) {
  const Ldo ldo(sim::n6Card());
  const auto r =
      ldo.evaluate(Ldo::humanReferenceSizing(), ttCorner(sim::n6Card()));
  ASSERT_TRUE(r.ok);
  EXPECT_GT(r.measurements[Ldo::kLoopGainDb], 40.0);
  EXPECT_GT(r.measurements[Ldo::kLoopPmDeg], 30.0);
  EXPECT_LT(r.measurements[Ldo::kVoutErrMv], 10.0);
  // Area calibrated to the paper's ~650 unit scale.
  EXPECT_NEAR(r.measurements[Ldo::kAreaAu], 650.0, 40.0);
}

TEST(Ldo, LoopGainRisesWithPassWidth) {
  const Ldo ldo(sim::n6Card());
  auto s = Ldo::humanReferenceSizing();
  const auto base = ldo.evaluate(s, ttCorner(sim::n6Card()));
  s[Ldo::kWp] *= 0.25;
  const auto smaller = ldo.evaluate(s, ttCorner(sim::n6Card()));
  ASSERT_TRUE(base.ok && smaller.ok);
  EXPECT_LT(smaller.measurements[Ldo::kLoopGainDb],
            base.measurements[Ldo::kLoopGainDb]);
}

TEST(Ldo, VoutTracksDividerRatio) {
  const Ldo ldo(sim::n6Card());
  auto s = Ldo::humanReferenceSizing();
  // Same ratio, scaled divider resistance: still regulates to target.
  s[Ldo::kR1] *= 2.0;
  s[Ldo::kR2] *= 2.0;
  const auto r = ldo.evaluate(s, ttCorner(sim::n6Card()));
  ASSERT_TRUE(r.ok);
  EXPECT_LT(r.measurements[Ldo::kVoutErrMv], 10.0);
}

TEST(Ldo, DesignSpaceMatchesPaperScale) {
  const auto space = Ldo::designSpace(sim::n6Card());
  EXPECT_EQ(space.dim(), static_cast<std::size_t>(Ldo::kParamCount));
  EXPECT_NEAR(space.sizeLog10(), 29.0, 1.0);  // the paper's "10^29"
}

TEST(Ldo, AreaMeasurementMatchesAreaFn) {
  const Ldo ldo(sim::n6Card());
  const auto s = Ldo::humanReferenceSizing();
  const auto r = ldo.evaluate(s, ttCorner(sim::n6Card()));
  ASSERT_TRUE(r.ok);
  EXPECT_DOUBLE_EQ(r.measurements[Ldo::kAreaAu], ldo.area(s));
}

// ---------- ICO ----------

TEST(Ico, HumanReferenceOscillates) {
  const Ico ico(sim::n5Card());
  const auto r =
      ico.evaluate(Ico::humanReferenceSizing(), ttCorner(sim::n5Card()));
  ASSERT_TRUE(r.ok);
  EXPECT_GT(r.measurements[Ico::kFreqGhz], 4.0);
  EXPECT_LT(r.measurements[Ico::kFreqGhz], 20.0);
  EXPECT_LT(r.measurements[Ico::kPnoiseDbc], -60.0);
  EXPECT_GT(r.measurements[Ico::kPowerMw], 0.0);
}

TEST(Ico, FrequencyIncreasesWithControlCurrent) {
  const Ico ico(sim::n5Card());
  auto s = Ico::humanReferenceSizing();
  const auto lo = ico.evaluate(s, ttCorner(sim::n5Card()));
  s[Ico::kIctrl] *= 2.0;
  const auto hi = ico.evaluate(s, ttCorner(sim::n5Card()));
  ASSERT_TRUE(lo.ok && hi.ok);
  EXPECT_GT(hi.measurements[Ico::kFreqGhz],
            lo.measurements[Ico::kFreqGhz] * 1.2);
}

TEST(Ico, PhaseNoiseEstimatorPhysics) {
  // Leeson-style: quadratic in carrier, inverse in power.
  const double base = Ico::estimatePhaseNoiseDbc(8e9, 1e-3, 1e6, 300.0);
  EXPECT_NEAR(Ico::estimatePhaseNoiseDbc(16e9, 1e-3, 1e6, 300.0), base + 6.02,
              0.1);
  EXPECT_NEAR(Ico::estimatePhaseNoiseDbc(8e9, 2e-3, 1e6, 300.0), base - 3.01,
              0.1);
}

TEST(Ico, DesignSpaceMatchesPaperScale) {
  const auto space = Ico::designSpace(sim::n5Card());
  EXPECT_EQ(space.dim(), 4u);
  for (std::size_t i = 0; i < space.dim(); ++i)
    EXPECT_EQ(space.param(i).steps, 20u);  // the paper's "20^4"
}

class IcoGridPointTest : public ::testing::TestWithParam<int> {};

TEST_P(IcoGridPointTest, RandomGridPointsProduceValidOrFailedResults) {
  const Ico ico(sim::n5Card());
  const auto space = Ico::designSpace(sim::n5Card());
  std::mt19937_64 rng(static_cast<std::uint64_t>(GetParam()));
  const auto e = ico.evaluate(space.randomPoint(rng), ttCorner(sim::n5Card()));
  if (e.ok) {
    EXPECT_GT(e.measurements[Ico::kFreqGhz], 0.0);
    EXPECT_LT(e.measurements[Ico::kPnoiseDbc], 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IcoGridPointTest, ::testing::Range(0, 6));

}  // namespace
}  // namespace trdse::circuits
