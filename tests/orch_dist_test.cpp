// Distributed-orchestration suite: the DistributedScheduler determinism
// contract — per-job outcomes, ledgers (cached/failed flags included),
// quarantine decisions, and shared-cache counters bitwise identical for any
// worker count {0,1,2,4} crossed with any per-worker thread count — plus the
// PR 6 fault-tolerance integration (worker SIGKILL mid-round, coordinator
// death + --resume) and the wire-format fuzz cases (bad magic, truncation,
// unknown kind, future protocol version, checksum flips → typed errors).
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <cmath>
#include <cstdio>
#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

#include "circuits/registry.hpp"
#include "io/checkpoint.hpp"
#include "orch/distributed.hpp"
#include "orch/scenario.hpp"
#include "orch/scheduler.hpp"
#include "orch/wire.hpp"

namespace trdse::orch {
namespace {

/// Synthetic 2-D CSP on a deliberately coarse grid (9x9 = 81 distinct
/// points), so concurrent jobs collide on cache keys within a few rounds
/// (same problem orch_test uses; separate binary, separate registration).
core::SizingProblem tinyGridProblem(double feasibleRadius = 0.08) {
  core::SizingProblem p;
  p.name = "tiny_grid";
  p.space = core::DesignSpace({{"x", 0.0, 1.0, 9, false},
                               {"y", 0.0, 1.0, 9, false}});
  p.measurementNames = {"closeness", "budget"};
  p.specs = {{"closeness", core::SpecKind::kAtLeast, 1.0 - feasibleRadius},
             {"budget", core::SpecKind::kAtMost, 1.6}};
  p.corners = {{sim::ProcessCorner::kTT, 1.0, 27.0}};
  p.evaluate = [](const linalg::Vector& v, const sim::PvtCorner&) {
    core::EvalResult r;
    r.ok = true;
    const double dx = v[0] - 0.66;
    const double dy = v[1] - 0.31;
    r.measurements = {1.0 - std::sqrt(dx * dx + dy * dy), v[0] + v[1]};
    return r;
  };
  return p;
}

void ensureTinyGridRegistered() {
  static const bool once = [] {
    circuits::Registry::global().add(
        {"tiny_grid", "bsim45", "coarse synthetic CSP (orch_dist tests)",
         [](const sim::ProcessCard&, std::vector<sim::PvtCorner> corners) {
           core::SizingProblem p = tinyGridProblem(0.05);  // infeasible
           if (!corners.empty()) p.corners = std::move(corners);
           return p;
         }});
    return true;
  }();
  (void)once;
}

void expectSameLedger(const pvt::EdaLedger& a, const pvt::EdaLedger& b) {
  ASSERT_EQ(a.totalBlocks(), b.totalBlocks());
  for (std::size_t i = 0; i < a.blocks().size(); ++i) {
    EXPECT_EQ(a.blocks()[i].cornerIndex, b.blocks()[i].cornerIndex);
    EXPECT_EQ(a.blocks()[i].kind, b.blocks()[i].kind);
    EXPECT_EQ(a.blocks()[i].meetsSpec, b.blocks()[i].meetsSpec);
    EXPECT_EQ(a.blocks()[i].cached, b.blocks()[i].cached);
    EXPECT_EQ(a.blocks()[i].failed, b.blocks()[i].failed);
    EXPECT_EQ(a.blocks()[i].retries, b.blocks()[i].retries);
    EXPECT_EQ(a.blocks()[i].backoff, b.blocks()[i].backoff);
  }
}

/// Bitwise comparison of everything a JobResult reports. backendSeconds is
/// deliberately not part of EvalStats comparisons anywhere in the repo —
/// wall-clock timing is measurement, not outcome.
void expectSameOutcome(const opt::StrategyOutcome& a,
                       const opt::StrategyOutcome& b) {
  EXPECT_EQ(a.solved, b.solved);
  EXPECT_EQ(a.iterations, b.iterations);
  EXPECT_EQ(a.sizes, b.sizes);
  EXPECT_EQ(a.bestValue, b.bestValue);
  EXPECT_EQ(a.bestMeasurements, b.bestMeasurements);
  EXPECT_EQ(a.evalStats.requests, b.evalStats.requests);
  EXPECT_EQ(a.evalStats.simulated, b.evalStats.simulated);
  EXPECT_EQ(a.evalStats.cacheHits, b.evalStats.cacheHits);
  EXPECT_EQ(a.evalStats.sharedHits, b.evalStats.sharedHits);
  EXPECT_EQ(a.evalStats.attempts, b.evalStats.attempts);
  EXPECT_EQ(a.evalStats.faults, b.evalStats.faults);
  EXPECT_EQ(a.evalStats.failures, b.evalStats.failures);
  EXPECT_EQ(a.evalStats.backoffUnits, b.evalStats.backoffUnits);
  expectSameLedger(a.ledger, b.ledger);
}

void expectSameResults(const std::vector<JobResult>& a,
                       const std::vector<JobResult>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t j = 0; j < a.size(); ++j) {
    EXPECT_EQ(a[j].name, b[j].name);
    EXPECT_EQ(a[j].seed, b[j].seed);
    EXPECT_EQ(a[j].rounds, b[j].rounds) << a[j].name;
    EXPECT_EQ(a[j].published, b[j].published) << a[j].name;
    EXPECT_EQ(a[j].checkpoints, b[j].checkpoints) << a[j].name;
    EXPECT_EQ(a[j].failures, b[j].failures) << a[j].name;
    EXPECT_EQ(a[j].quarantined, b[j].quarantined) << a[j].name;
    EXPECT_EQ(a[j].quarantineReason, b[j].quarantineReason) << a[j].name;
    expectSameOutcome(a[j].outcome, b[j].outcome);
  }
}

/// The acceptance scenario of the determinism matrix: four jobs of three
/// different strategies on one coarse circuit, so cross-job shared hits are
/// plentiful and the barrier-ordered publish semantics actually matter.
Scenario mixedScenario() {
  ensureTinyGridRegistered();
  return parseScenarioText(
      "name = dist_accept\n"
      "slice = 12\n"
      "shards = 8\n"
      "base_seed = 5\n"
      "[job]\nname = rs_a\ncircuit = tiny_grid\nstrategy = random_search\n"
      "seed = 101\nbudget = 70\n"
      "[job]\nname = rs_b\ncircuit = tiny_grid\nstrategy = random_search\n"
      "seed = 202\nbudget = 70\n"
      "[job]\nname = bo\ncircuit = tiny_grid\nstrategy = tree_bayes_opt\n"
      "seed = 7\nbudget = 70\nopt.init_samples = 8\nopt.candidate_pool = 30\n"
      "[job]\nname = rl\ncircuit = tiny_grid\nstrategy = rl_policy\n"
      "seed = 11\nbudget = 70\nopt.hidden = 8\nopt.n_steps = 8\n",
      "inline");
}

/// Checkpointable-only scenario with injected simulator faults: one job is
/// deterministically quarantined (max_failures = 0), the others absorb their
/// failures. Every strategy checkpoints, so worker deaths are recoverable
/// and the scenario can run under a write-ahead journal.
Scenario faultyCheckpointableScenario() {
  ensureTinyGridRegistered();
  return parseScenarioText(
      "name = dist_faulty\n"
      "slice = 12\n"
      "base_seed = 5\n"
      "fault_seed = 21\n"
      "fault_nonconv = 0.45\n"
      "retry_attempts = 2\n"
      "[job]\n"
      "name = fragile\ncircuit = tiny_grid\nstrategy = random_search\n"
      "seed = 101\nbudget = 70\nmax_failures = 0\n"
      "[job]\n"
      "name = tough_rs\ncircuit = tiny_grid\nstrategy = random_search\n"
      "seed = 202\nbudget = 70\nmax_failures = 100000\n"
      "[job]\n"
      "name = tough_pvt\ncircuit = tiny_grid\nstrategy = pvt_search\n"
      "seed = 7\nbudget = 70\nmax_failures = 100000\n",
      "inline");
}

// ---- Determinism matrix --------------------------------------------------

TEST(DistributedScheduler, MatrixOfWorkersAndThreadsIsBitwiseIdentical) {
  // Baseline: workers = 0 delegates to the in-process Scheduler.
  std::vector<JobResult> baseline;
  eval::SharedEvalCache::ShardCounters baseTotals{};
  {
    DistributedScheduler sched(mixedScenario());
    baseline = sched.run();
    ASSERT_NE(sched.sharedCache(), nullptr);
    baseTotals = sched.sharedCache()->totals();
    EXPECT_TRUE(sched.completed());
    EXPECT_TRUE(sched.workerReports().empty());  // in-process path
  }
  for (const JobResult& r : baseline) {
    EXPECT_GT(r.outcome.evalStats.sharedHits, 0u) << r.name;
    EXPECT_GT(r.published, 0u) << r.name;
  }
  EXPECT_GT(baseTotals.entries, 0u);

  for (const std::size_t workers : {1u, 2u, 4u}) {
    for (const std::size_t threads : {1u, 2u}) {
      Scenario sc = mixedScenario();
      sc.workers = workers;
      sc.threads = threads;
      DistributedScheduler sched(std::move(sc));
      const std::vector<JobResult> results = sched.run();
      EXPECT_TRUE(sched.completed());
      expectSameResults(results, baseline);

      // Master-cache counters match bitwise: entries and inserts from the
      // coordinator's job-order barrier inserts, hits/misses from the merged
      // per-shard mirror-probe deltas.
      ASSERT_NE(sched.sharedCache(), nullptr);
      const auto totals = sched.sharedCache()->totals();
      EXPECT_EQ(totals.entries, baseTotals.entries)
          << "workers=" << workers << " threads=" << threads;
      EXPECT_EQ(totals.inserts, baseTotals.inserts);
      EXPECT_EQ(totals.hits, baseTotals.hits);
      EXPECT_EQ(totals.misses, baseTotals.misses);

      // Attribution is deterministic: jobs shard round-robin by index, and
      // every worker's merged probe tallies sum to the master's totals.
      const auto& reports = sched.workerReports();
      ASSERT_EQ(reports.size(), std::min(workers, results.size()));
      std::size_t hits = 0;
      std::size_t misses = 0;
      std::size_t named = 0;
      for (const auto& rep : reports) {
        hits += rep.sharedHits;
        misses += rep.sharedMisses;
        named += rep.jobs.size();
      }
      EXPECT_EQ(named, results.size());
      EXPECT_EQ(hits, baseTotals.hits);
      EXPECT_EQ(misses, baseTotals.misses);
      EXPECT_TRUE(sched.events().empty());  // no faults injected
    }
  }
}

TEST(DistributedScheduler, FaultQuarantineMatchesInProcessBitwise) {
  std::vector<JobResult> baseline;
  {
    DistributedScheduler sched(faultyCheckpointableScenario());
    baseline = sched.run();
  }
  ASSERT_EQ(baseline.size(), 3u);
  EXPECT_TRUE(baseline[0].quarantined);
  EXPECT_NE(baseline[0].quarantineReason.find("exceed max_failures=0"),
            std::string::npos);
  EXPECT_FALSE(baseline[1].quarantined);
  EXPECT_FALSE(baseline[2].quarantined);

  for (const std::size_t workers : {1u, 2u}) {
    Scenario sc = faultyCheckpointableScenario();
    sc.workers = workers;
    DistributedScheduler sched(std::move(sc));
    expectSameResults(sched.run(), baseline);
    EXPECT_TRUE(sched.completed());
  }
}

TEST(DistributedScheduler, ChunkOffloadIsBitwiseInvisible) {
  // Jobs with very different budgets: rs_short finishes early, so its worker
  // goes idle while rs_long keeps stepping — the window in which offloaded
  // chunks are actually granted (whether any given batch offloads or
  // computes locally is a timing race by design; the assertion is that the
  // choice can never show in any outcome, ledger, or counter).
  const auto scenario = [] {
    ensureTinyGridRegistered();
    return parseScenarioText(
        "name = dist_offload\n"
        "slice = 12\n"
        "base_seed = 5\n"
        "[job]\nname = rs_long\ncircuit = two_stage_opamp\n"
        "strategy = random_search\nseed = 31\nbudget = 60\n"
        "[job]\nname = rs_short\ncircuit = two_stage_opamp\n"
        "strategy = random_search\nseed = 32\nbudget = 12\n",
        "inline");
  };

  std::vector<JobResult> off;
  {
    Scenario sc = scenario();
    sc.workers = 2;
    DistributedScheduler sched(std::move(sc));
    off = sched.run();
  }
  Scenario sc = scenario();
  sc.workers = 2;
  sc.offloadChunks = true;
  DistributedScheduler sched(std::move(sc));
  expectSameResults(sched.run(), off);
}

// ---- Fault tolerance: worker death, coordinator death --------------------

TEST(DistributedScheduler, WorkerKilledMidRoundIsRedispatchedBitwise) {
  std::vector<JobResult> expected;
  {
    Scenario sc = faultyCheckpointableScenario();
    sc.workers = 2;
    DistributedScheduler sched(std::move(sc));
    expected = sched.run();
  }

  // Same scenario, but worker 1 _exit()s upon receiving round 2 (the
  // deterministic stand-in for SIGKILL mid-round, also wired to
  // trdse run --debug-kill-worker). The coordinator must respawn it,
  // restore its jobs from the last barrier blobs, re-dispatch the round,
  // and land on byte-identical results.
  Scenario sc = faultyCheckpointableScenario();
  sc.workers = 2;
  DistributedScheduler sched(std::move(sc));
  sched.debugKillWorker(1, 2);
  const std::vector<JobResult> survived = sched.run();
  expectSameResults(survived, expected);

  // The death is an observable event — just never part of the results.
  ASSERT_FALSE(sched.events().empty());
  EXPECT_NE(sched.events()[0].find("worker 1"), std::string::npos);
  EXPECT_NE(sched.events()[0].find("respawned"), std::string::npos);
}

TEST(DistributedScheduler, KillingEveryWorkerInTurnStillMatches) {
  std::vector<JobResult> expected;
  {
    Scenario sc = faultyCheckpointableScenario();
    sc.workers = 2;
    DistributedScheduler sched(std::move(sc));
    expected = sched.run();
  }
  Scenario sc = faultyCheckpointableScenario();
  sc.workers = 2;
  DistributedScheduler sched(std::move(sc));
  sched.debugKillWorker(0, 1);  // round 1: nothing checkpointed yet
  sched.debugKillWorker(1, 3);
  expectSameResults(sched.run(), expected);
  EXPECT_EQ(sched.events().size(), 2u);
}

TEST(DistributedScheduler, CoordinatorDeathResumesBitwise) {
  const std::string journal = testing::TempDir() + "dist_resume.tdck";
  const std::string wholeJournal = testing::TempDir() + "dist_whole.tdck";

  std::vector<JobResult> expected;
  {
    Scenario sc = faultyCheckpointableScenario();
    sc.workers = 2;
    sc.journalPath = wholeJournal;
    DistributedScheduler sched(std::move(sc));
    expected = sched.run();
  }

  // "Die" after two rounds: the destructor is the stand-in for SIGKILL —
  // the journal on disk is all a restarted process would have either way
  // (writeFile is atomic, so a real kill leaves the same bytes).
  {
    Scenario sc = faultyCheckpointableScenario();
    sc.workers = 2;
    sc.journalPath = journal;
    DistributedScheduler first(std::move(sc));
    first.run(2);
    EXPECT_FALSE(first.completed());
  }
  {
    Scenario sc = faultyCheckpointableScenario();
    sc.workers = 2;
    sc.journalPath = journal;
    DistributedScheduler second(std::move(sc));
    second.resume(journal);
    expectSameResults(second.run(), expected);
    EXPECT_TRUE(second.completed());
  }

  // The journal is worker-count agnostic (workers is not fingerprinted):
  // a distributed journal resumes in-process and vice versa.
  {
    Scenario sc = faultyCheckpointableScenario();
    sc.journalPath = journal;
    Scheduler inProcess(std::move(sc));
    inProcess.resume(journal);
    expectSameResults(inProcess.run(), expected);
  }
  std::remove(journal.c_str());
  std::remove(wholeJournal.c_str());
}

TEST(DistributedScheduler, ContractErrorsAreLoud) {
  // Engine-internal thread pools cannot survive a fork: the child inherits
  // the pool's bookkeeping but none of its threads.
  {
    ensureTinyGridRegistered();
    Scenario sc = parseScenarioText(
        "workers = 2\n"
        "[job]\nname = pvt\ncircuit = tiny_grid\nstrategy = pvt_search\n"
        "seed = 3\nbudget = 20\nopt.eval_threads = 2\n",
        "inline");
    EXPECT_THROW(DistributedScheduler{std::move(sc)}, std::invalid_argument);
  }
  // A scheduler runs exactly once; resume is a pre-run operation.
  {
    Scenario sc = mixedScenario();
    sc.workers = 2;
    DistributedScheduler sched(std::move(sc));
    sched.run();
    EXPECT_THROW(sched.run(), std::logic_error);
    EXPECT_THROW(sched.resume("nowhere.tdck"), std::logic_error);
  }
}

// ---- Scenario parser: worker knobs ---------------------------------------

TEST(Scenario, ParsesWorkerKnobs) {
  const Scenario sc = parseScenarioText(
      "workers = 3\n"
      "worker_timeout = 2.5\n"
      "offload_chunks = on\n"
      "[job]\ncircuit = ldo\nstrategy = random_search\nbudget = 10\n",
      "inline");
  EXPECT_EQ(sc.workers, 3u);
  EXPECT_EQ(sc.workerTimeoutSeconds, 2.5);
  EXPECT_TRUE(sc.offloadChunks);
  // Defaults: single-process, no stall deadline, no chunk offload.
  const Scenario defaults = parseScenarioText(
      "[job]\ncircuit = ldo\nstrategy = random_search\nbudget = 10\n",
      "inline");
  EXPECT_EQ(defaults.workers, 0u);
  EXPECT_EQ(defaults.workerTimeoutSeconds, 0.0);
  EXPECT_FALSE(defaults.offloadChunks);
}

TEST(Scenario, RejectsMalformedWorkerKnobsWithFileAndLine) {
  const std::string tail =
      "[job]\ncircuit = ldo\nstrategy = random_search\nbudget = 10\n";
  EXPECT_THROW(parseScenarioText("workers = -1\n" + tail, "x"),
               std::invalid_argument);  // negative (stoull wrap rejected)
  EXPECT_THROW(parseScenarioText("workers = 2 4\n" + tail, "x"),
               std::invalid_argument);  // trailing junk
  EXPECT_THROW(parseScenarioText("workers = two\n" + tail, "x"),
               std::invalid_argument);
  EXPECT_THROW(parseScenarioText("workers = 2\nworkers = 4\n" + tail, "x"),
               std::invalid_argument);  // duplicate key, no last-wins
  EXPECT_THROW(parseScenarioText("worker_timeout = -0.5\n" + tail, "x"),
               std::invalid_argument);
  EXPECT_THROW(parseScenarioText("offload_chunks = maybe\n" + tail, "x"),
               std::invalid_argument);
  EXPECT_THROW(parseScenarioText("[job]\ncircuit = c\nstrategy = s\n"
                                 "budget = 1\nworkers = 2\n",
                                 "x"),
               std::invalid_argument);  // global-only key inside [job]

  // Errors carry the file:line convention every parse error uses.
  try {
    parseScenarioText("slice = 4\nworkers = -1\n" + tail, "bad.scenario");
    FAIL() << "negative workers accepted";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("bad.scenario:2"), std::string::npos)
        << e.what();
    EXPECT_NE(std::string(e.what()).find("workers"), std::string::npos);
  }
}

// ---- Wire format fuzz ----------------------------------------------------

TEST(Wire, MessageRoundTripsThroughAChannel) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  wire::FrameChannel a(fds[0]);
  wire::FrameChannel b(fds[1]);

  io::CheckpointWriter msg = wire::makeMessage(wire::kMsgRunRound);
  io::SectionWriter& r = msg.section("round");
  r.u64(7);
  r.boolean(false);
  r.u64(1);
  r.u64(3);
  r.u64(24);
  a.send(msg);

  const io::CheckpointReader got = b.recv("test");
  EXPECT_EQ(got.kind(), wire::kMsgRunRound);
  io::SectionReader rr = got.section("round");
  EXPECT_EQ(rr.u64(), 7u);
  EXPECT_FALSE(rr.boolean());
  EXPECT_EQ(rr.u64(), 1u);
  EXPECT_EQ(rr.u64(), 3u);
  EXPECT_EQ(rr.u64(), 24u);
  rr.expectEnd();
}

TEST(Wire, RejectsBadMagic) {
  EXPECT_THROW(wire::decodeFrame("garbage that is no container", "t"),
               io::CheckpointError);
  EXPECT_THROW(wire::decodeFrame("", "t"), io::CheckpointError);
}

TEST(Wire, RejectsUnknownMessageKind) {
  // A structurally valid container whose kind this build does not speak —
  // e.g. a message type added in a future release.
  io::CheckpointWriter msg = wire::makeMessage("wire/from-the-future");
  const std::string frame = wire::encodeFrame(msg);
  const std::string body = frame.substr(8);  // strip the length prefix
  EXPECT_THROW(wire::decodeFrame(body, "t"), wire::WireError);
}

TEST(Wire, RejectsFutureProtocolVersion) {
  io::CheckpointWriter msg(wire::kMsgShutdown);
  msg.section("wire").u32(wire::kWireVersion + 1);
  const std::string body = wire::encodeFrame(msg).substr(8);
  EXPECT_THROW(wire::decodeFrame(body, "t"), wire::WireError);
}

TEST(Wire, RejectsChecksumMismatch) {
  io::CheckpointWriter msg = wire::makeMessage(wire::kMsgHarvest);
  std::string frame = wire::encodeFrame(msg);
  // Flip one bit in the last body byte: the container checksum (FNV-1a over
  // the body) must catch it as a typed error, never as misread state.
  frame.back() = static_cast<char>(frame.back() ^ 0x01);
  EXPECT_THROW(wire::decodeFrame(frame.substr(8), "t"), io::CheckpointError);
}

TEST(Wire, ChannelFailsLoudOnTruncationAndOversizedFrames) {
  // Peer closes mid-frame: a length prefix promising more bytes than ever
  // arrive must be a WireError, not a short read.
  {
    int fds[2];
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    wire::FrameChannel rx(fds[0]);
    io::CheckpointWriter msg = wire::makeMessage(wire::kMsgShutdown);
    const std::string frame = wire::encodeFrame(msg);
    ASSERT_EQ(::write(fds[1], frame.data(), frame.size() - 3),
              static_cast<ssize_t>(frame.size() - 3));
    ::close(fds[1]);
    EXPECT_THROW(rx.recv("t"), wire::WireError);
  }
  // Clean EOF before any frame is also a typed error (the caller decides
  // whether a vanished peer is fatal).
  {
    int fds[2];
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    wire::FrameChannel rx(fds[0]);
    ::close(fds[1]);
    EXPECT_THROW(rx.recv("t"), wire::WireError);
  }
  // A corrupt length prefix past the sanity cap must fail before allocating.
  {
    int fds[2];
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    wire::FrameChannel rx(fds[0]);
    const std::uint64_t huge = wire::kMaxFrameBytes + 1;
    std::uint8_t prefix[8];
    for (int i = 0; i < 8; ++i)
      prefix[i] = static_cast<std::uint8_t>(huge >> (8 * i));
    ASSERT_EQ(::write(fds[1], prefix, 8), 8);
    EXPECT_THROW(rx.recv("t"), wire::WireError);
    ::close(fds[1]);
  }
}

TEST(Wire, PayloadCodecsRoundTrip) {
  wire::JobRoundReport rep;
  rep.jobIndex = 3;
  rep.stepError = "";
  rep.finished = true;
  rep.iterations = 42;
  rep.stats.requests = 42;
  rep.stats.simulated = 30;
  rep.stats.cacheHits = 7;
  rep.stats.sharedHits = 4;
  rep.stats.failures = 1;
  rep.stats.attempts = 45;
  rep.stats.faults = 2;
  rep.stats.backoffUnits = 3;
  rep.firstFailure.valid = true;
  rep.firstFailure.request = 12;
  rep.firstFailure.cornerIndex = 1;
  rep.firstFailure.attempts = 2;
  wire::PublishEntry entry;
  entry.key = {{3, 4}, 1};
  entry.result.ok = true;
  entry.result.measurements = {1.5, -2.25};
  rep.publishes.push_back(entry);
  rep.strategyBlob = std::string("blob\0with\0nuls", 14);

  io::CheckpointWriter msg = wire::makeMessage(wire::kMsgRoundResult);
  wire::writeJobRoundReport(msg.section("jobs"), rep);
  const std::string body = wire::encodeFrame(msg).substr(8);
  const io::CheckpointReader reader = wire::decodeFrame(body, "t");
  io::SectionReader r = reader.section("jobs");
  const wire::JobRoundReport back = wire::readJobRoundReport(r);
  r.expectEnd();

  EXPECT_EQ(back.jobIndex, rep.jobIndex);
  EXPECT_EQ(back.stepError, rep.stepError);
  EXPECT_EQ(back.finished, rep.finished);
  EXPECT_EQ(back.iterations, rep.iterations);
  EXPECT_EQ(back.stats.requests, rep.stats.requests);
  EXPECT_EQ(back.stats.simulated, rep.stats.simulated);
  EXPECT_EQ(back.stats.cacheHits, rep.stats.cacheHits);
  EXPECT_EQ(back.stats.sharedHits, rep.stats.sharedHits);
  EXPECT_EQ(back.stats.failures, rep.stats.failures);
  ASSERT_EQ(back.publishes.size(), 1u);
  EXPECT_EQ(back.publishes[0].key.indices, entry.key.indices);
  EXPECT_EQ(back.publishes[0].key.cornerIndex, entry.key.cornerIndex);
  EXPECT_EQ(back.publishes[0].result.measurements, entry.result.measurements);
  EXPECT_EQ(back.strategyBlob, rep.strategyBlob);
  EXPECT_TRUE(back.firstFailure.valid);
  EXPECT_EQ(back.firstFailure.request, rep.firstFailure.request);
}

TEST(Wire, StatsCodecRejectsBrokenPartitionInvariant) {
  eval::EvalStats s;
  s.requests = 10;
  s.simulated = 3;  // 3 + 0 + 0 + 0 != 10
  io::CheckpointWriter msg = wire::makeMessage(wire::kMsgRoundResult);
  wire::writeEvalStats(msg.section("stats"), s);
  const std::string body = wire::encodeFrame(msg).substr(8);
  const io::CheckpointReader reader = wire::decodeFrame(body, "t");
  io::SectionReader r = reader.section("stats");
  EXPECT_THROW(wire::readEvalStats(r), io::CheckpointError);
}

}  // namespace
}  // namespace trdse::orch
