#include <gtest/gtest.h>

#include "pvt/corners.hpp"
#include "pvt/ledger.hpp"

namespace trdse::pvt {
namespace {

TEST(Corners, NineCornerSetShape) {
  const auto set = nineCornerSet(0.9);
  ASSERT_EQ(set.size(), 9u);
  // 3 process corners x 3 temps, all at the nominal supply.
  for (const auto& c : set) EXPECT_DOUBLE_EQ(c.vdd, 0.9);
  int ss = 0;
  for (const auto& c : set) ss += c.corner == sim::ProcessCorner::kSS;
  EXPECT_EQ(ss, 3);
}

TEST(Corners, FullFactorialCount) {
  const auto set = fullFactorial(
      {sim::ProcessCorner::kTT, sim::ProcessCorner::kFF}, {0.9, 1.0},
      {-40.0, 27.0, 125.0});
  EXPECT_EQ(set.size(), 12u);
  // Deterministic ordering: first block is TT at 0.9 V.
  EXPECT_EQ(set.front().corner, sim::ProcessCorner::kTT);
  EXPECT_DOUBLE_EQ(set.front().vdd, 0.9);
  EXPECT_DOUBLE_EQ(set.front().tempC, -40.0);
}

TEST(Corners, HardestFirstPrefersSlowLowHotCold) {
  const auto set = nineCornerSet(0.9);
  const auto order = heuristicHardestFirst(set, 0.9);
  ASSERT_EQ(order.size(), set.size());
  // The hardest-ranked corner must be SS at a temperature extreme.
  const auto& hardest = set[order.front()];
  EXPECT_EQ(hardest.corner, sim::ProcessCorner::kSS);
  EXPECT_NE(hardest.tempC, 27.0);
  // The easiest must be FF.
  EXPECT_EQ(set[order.back()].corner, sim::ProcessCorner::kFF);
}

TEST(Corners, LowSupplyRanksHarder) {
  const std::vector<sim::PvtCorner> set = {
      {sim::ProcessCorner::kTT, 0.80, 27.0},
      {sim::ProcessCorner::kTT, 0.90, 27.0},
  };
  const auto order = heuristicHardestFirst(set, 0.9);
  EXPECT_EQ(order.front(), 0u);
}

TEST(Ledger, CountsAndKinds) {
  EdaLedger ledger;
  ledger.record(0, BlockKind::kSearch, false);
  ledger.record(0, BlockKind::kSearch, true);
  ledger.record(1, BlockKind::kVerify, true);
  EXPECT_EQ(ledger.totalBlocks(), 3u);
  EXPECT_EQ(ledger.searchBlocks(), 2u);
  EXPECT_EQ(ledger.verifyBlocks(), 1u);
}

TEST(Ledger, CachedBlocksTalliedSeparately) {
  EdaLedger ledger;
  ledger.record(0, BlockKind::kSearch, false);                     // simulated
  ledger.record(0, BlockKind::kSearch, false, /*cached=*/true);    // memo hit
  ledger.record(1, BlockKind::kVerify, true, /*cached=*/true);
  EXPECT_EQ(ledger.totalBlocks(), 3u);      // logical timeline
  EXPECT_EQ(ledger.cachedBlocks(), 2u);     // EDA time saved
  EXPECT_EQ(ledger.simulatedBlocks(), 1u);  // EDA time consumed
  EXPECT_FALSE(ledger.blocks()[0].cached);
  EXPECT_TRUE(ledger.blocks()[1].cached);
}

TEST(Ledger, TimelineRendering) {
  EdaLedger ledger;
  ledger.record(0, BlockKind::kSearch, false);
  ledger.record(0, BlockKind::kSearch, true);
  ledger.record(1, BlockKind::kVerify, false);
  ledger.record(2, BlockKind::kVerify, true);
  const std::string t = ledger.renderTimeline(3, 4);
  EXPECT_NE(t.find("PVT1"), std::string::npos);
  EXPECT_NE(t.find('x'), std::string::npos);
  EXPECT_NE(t.find('v'), std::string::npos);
  EXPECT_NE(t.find('V'), std::string::npos);
  EXPECT_NE(t.find("legend"), std::string::npos);
}

TEST(Ledger, EmptyRendersGracefully) {
  EdaLedger ledger;
  EXPECT_EQ(ledger.renderTimeline(9), "(empty ledger)\n");
}

TEST(Ledger, LongRunsBucketed) {
  EdaLedger ledger;
  for (int i = 0; i < 1000; ++i) ledger.record(0, BlockKind::kSearch, false);
  const std::string t = ledger.renderTimeline(1, 50);
  // One row of exactly 50 columns between the bars.
  const auto bar1 = t.find('|');
  const auto bar2 = t.find('|', bar1 + 1);
  EXPECT_EQ(bar2 - bar1 - 1, 50u);
}

}  // namespace
}  // namespace trdse::pvt
