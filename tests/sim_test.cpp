#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "sim/ac.hpp"
#include "sim/dc.hpp"
#include "sim/mosfet.hpp"
#include "sim/netlist.hpp"
#include "sim/process.hpp"
#include "sim/transient.hpp"

namespace trdse::sim {
namespace {

// ---------- Device model ----------

TEST(Mosfet, NmosCurrentIncreasesWithVgs) {
  const auto& card = bsim45Card();
  const MosGeometry g{2e-6, 90e-9, 1.0};
  double prev = -1.0;
  for (double vgs = 0.3; vgs <= 1.0; vgs += 0.1) {
    const MosOp op = evalMos(card.nmos, MosType::kNmos, g, 0.8, vgs, 0.0, 0.0, 300.15);
    EXPECT_GT(op.ids, prev);
    prev = op.ids;
  }
}

TEST(Mosfet, SubthresholdCurrentIsSmallButNonzero) {
  const auto& card = bsim45Card();
  const MosGeometry g{2e-6, 90e-9, 1.0};
  const MosOp off = evalMos(card.nmos, MosType::kNmos, g, 0.8, 0.1, 0.0, 0.0, 300.15);
  const MosOp on = evalMos(card.nmos, MosType::kNmos, g, 0.8, 0.9, 0.0, 0.0, 300.15);
  EXPECT_GT(off.ids, 0.0);
  EXPECT_LT(off.ids, on.ids * 1e-3);
}

TEST(Mosfet, PmosMirrorsNmos) {
  const auto& card = bsim45Card();
  const MosGeometry g{2e-6, 90e-9, 1.0};
  // PMOS with source at 1.1 V, gate low -> conducts, current *into* drain is
  // negative by our convention.
  const MosOp p = evalMos(card.pmos, MosType::kPmos, g, 0.3, 0.2, 1.1, 1.1, 300.15);
  EXPECT_LT(p.ids, 0.0);
  EXPECT_GT(p.gm, 0.0);
  EXPECT_GT(p.gds, 0.0);
}

TEST(Mosfet, SaturationOutputConductanceFromClm) {
  const auto& card = bsim45Card();
  MosGeometry shortL{2e-6, 45e-9, 1.0};
  MosGeometry longL{2e-6, 360e-9, 1.0};
  const MosOp s = evalMos(card.nmos, MosType::kNmos, shortL, 0.8, 0.7, 0.0, 0.0, 300.15);
  const MosOp l = evalMos(card.nmos, MosType::kNmos, longL, 0.8, 0.7, 0.0, 0.0, 300.15);
  // Intrinsic gain gm/gds improves with channel length.
  EXPECT_GT(l.gm / l.gds, s.gm / s.gds);
}

/// Analytic derivatives must match finite differences everywhere, including
/// across the subthreshold/saturation transition — the property the Newton
/// solver's convergence rests on.
class MosfetDerivativeTest
    : public ::testing::TestWithParam<std::tuple<double, double, int>> {};

TEST_P(MosfetDerivativeTest, MatchesFiniteDifference) {
  const auto [vg, vd, typeInt] = GetParam();
  const MosType type = typeInt == 0 ? MosType::kNmos : MosType::kPmos;
  const auto& card = bsim45Card();
  const MosParams& params = type == MosType::kNmos ? card.nmos : card.pmos;
  const MosGeometry g{3e-6, 90e-9, 1.0};
  const double vs = type == MosType::kNmos ? 0.1 : 1.0;
  const double vb = type == MosType::kNmos ? 0.0 : 1.1;

  const MosOp op = evalMos(params, type, g, vd, vg, vs, vb, 300.15);
  constexpr double kEps = 1e-7;
  auto ids = [&](double vdx, double vgx, double vsx, double vbx) {
    return evalMos(params, type, g, vdx, vgx, vsx, vbx, 300.15).ids;
  };
  EXPECT_NEAR(op.dIdVd,
              (ids(vd + kEps, vg, vs, vb) - ids(vd - kEps, vg, vs, vb)) / (2 * kEps),
              std::abs(op.dIdVd) * 1e-4 + 1e-9);
  EXPECT_NEAR(op.dIdVg,
              (ids(vd, vg + kEps, vs, vb) - ids(vd, vg - kEps, vs, vb)) / (2 * kEps),
              std::abs(op.dIdVg) * 1e-4 + 1e-9);
  EXPECT_NEAR(op.dIdVs,
              (ids(vd, vg, vs + kEps, vb) - ids(vd, vg, vs - kEps, vb)) / (2 * kEps),
              std::abs(op.dIdVs) * 1e-4 + 1e-9);
  EXPECT_NEAR(op.dIdVb,
              (ids(vd, vg, vs, vb + kEps) - ids(vd, vg, vs, vb - kEps)) / (2 * kEps),
              std::abs(op.dIdVb) * 1e-4 + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    OperatingPoints, MosfetDerivativeTest,
    ::testing::Combine(::testing::Values(0.2, 0.45, 0.6, 0.9),  // vg
                       ::testing::Values(0.15, 0.5, 1.0),       // vd
                       ::testing::Values(0, 1)));               // type

// ---------- Process / PVT ----------

TEST(Process, CornersShiftThreshold) {
  const auto& card = bsim45Card();
  const PvtCorner ff{ProcessCorner::kFF, 1.1, 27.0};
  const PvtCorner ss{ProcessCorner::kSS, 1.1, 27.0};
  const MosParams pFF = applyPvt(card.nmos, MosType::kNmos, ff, card.tnomK);
  const MosParams pSS = applyPvt(card.nmos, MosType::kNmos, ss, card.tnomK);
  EXPECT_LT(pFF.vth0, card.nmos.vth0);
  EXPECT_GT(pSS.vth0, card.nmos.vth0);
  EXPECT_GT(pFF.kp, pSS.kp);
}

TEST(Process, MixedCornersSplitByType) {
  const auto& card = bsim45Card();
  const PvtCorner fs{ProcessCorner::kFS, 1.1, 27.0};
  const MosParams n = applyPvt(card.nmos, MosType::kNmos, fs, card.tnomK);
  const MosParams p = applyPvt(card.pmos, MosType::kPmos, fs, card.tnomK);
  EXPECT_LT(n.vth0, card.nmos.vth0);  // fast NMOS
  EXPECT_GT(p.vth0, card.pmos.vth0);  // slow PMOS
}

TEST(Process, TemperatureDegradesMobility) {
  const auto& card = bsim45Card();
  const PvtCorner hot{ProcessCorner::kTT, 1.1, 125.0};
  const PvtCorner cold{ProcessCorner::kTT, 1.1, -40.0};
  const MosParams pH = applyPvt(card.nmos, MosType::kNmos, hot, card.tnomK);
  const MosParams pC = applyPvt(card.nmos, MosType::kNmos, cold, card.tnomK);
  EXPECT_LT(pH.kp, pC.kp);
  EXPECT_LT(pH.vth0, pC.vth0);
}

TEST(Process, CardsAreDistinct) {
  EXPECT_NE(bsim45Card().nmos.kp, bsim22Card().nmos.kp);
  EXPECT_LT(n5Card().minL, n6Card().minL);
  EXPECT_EQ(cardByName("bsim22").name, "bsim22");
}

// ---------- DC analysis ----------

TEST(Dc, ResistorDivider) {
  Netlist nl;
  const NodeId vin = nl.node("in");
  const NodeId mid = nl.node("mid");
  nl.addVSource(vin, kGround, 2.0);
  nl.addResistor(vin, mid, 1e3);
  nl.addResistor(mid, kGround, 3e3);
  const DcResult r = DcSolver(nl).solve();
  ASSERT_TRUE(r.converged);
  // gmin (1e-12 S to ground) shifts the exact answer by ~nV.
  EXPECT_NEAR(r.nodeVoltage(mid), 1.5, 1e-6);
  EXPECT_NEAR(r.vsourceCurrent(0), -2.0 / 4e3, 1e-9);  // flows out of +
}

TEST(Dc, CurrentSourceIntoResistor) {
  Netlist nl;
  const NodeId n1 = nl.node("n1");
  nl.addISource(kGround, n1, 1e-3);  // 1 mA into n1
  nl.addResistor(n1, kGround, 2e3);
  const DcResult r = DcSolver(nl).solve();
  ASSERT_TRUE(r.converged);
  EXPECT_NEAR(r.nodeVoltage(n1), 2.0, 1e-6);
}

TEST(Dc, VcvsAmplifies) {
  Netlist nl;
  const NodeId in = nl.node("in");
  const NodeId out = nl.node("out");
  nl.addVSource(in, kGround, 0.1);
  nl.addVcvs(out, kGround, in, kGround, 10.0);
  nl.addResistor(out, kGround, 1e3);
  const DcResult r = DcSolver(nl).solve();
  ASSERT_TRUE(r.converged);
  EXPECT_NEAR(r.nodeVoltage(out), 1.0, 1e-9);
}

TEST(Dc, DiodeConnectedMosfetBias) {
  // Current mirror reference: I into a diode-connected NMOS.
  const auto& card = bsim45Card();
  Netlist nl;
  const NodeId vdd = nl.node("vdd");
  const NodeId bias = nl.node("bias");
  nl.addVSource(vdd, kGround, 1.1);
  nl.addISource(vdd, bias, 20e-6);
  nl.addMosfet("M8", bias, bias, kGround, kGround, MosType::kNmos,
               {4e-6, 90e-9, 1.0}, card.nmos);
  const DcResult r = DcSolver(nl).solve();
  ASSERT_TRUE(r.converged);
  // Gate settles somewhat above threshold.
  EXPECT_GT(r.nodeVoltage(bias), 0.3);
  EXPECT_LT(r.nodeVoltage(bias), 0.8);
  // Device carries the reference current.
  EXPECT_NEAR(r.mosOps[0].ids, 20e-6, 1e-6);
}

TEST(Dc, CurrentMirrorCopies) {
  const auto& card = bsim45Card();
  Netlist nl;
  const NodeId vdd = nl.node("vdd");
  const NodeId bias = nl.node("bias");
  const NodeId out = nl.node("out");
  nl.addVSource(vdd, kGround, 1.1);
  nl.addISource(vdd, bias, 10e-6);
  nl.addMosfet("M1", bias, bias, kGround, kGround, MosType::kNmos,
               {4e-6, 180e-9, 1.0}, card.nmos);
  nl.addMosfet("M2", out, bias, kGround, kGround, MosType::kNmos,
               {8e-6, 180e-9, 1.0}, card.nmos);  // 2x width
  nl.addResistor(vdd, out, 10e3);
  const DcResult r = DcSolver(nl).solve();
  ASSERT_TRUE(r.converged);
  // 2x mirror: ~20 µA through the resistor (CLM adds a few percent).
  const double iOut = (1.1 - r.nodeVoltage(out)) / 10e3;
  EXPECT_NEAR(iOut, 20e-6, 4e-6);
}

TEST(Dc, CmosInverterTransfersLogic) {
  const auto& card = bsim45Card();
  for (double vin : {0.0, 1.1}) {
    Netlist nl;
    const NodeId vdd = nl.node("vdd");
    const NodeId in = nl.node("in");
    const NodeId out = nl.node("out");
    nl.addVSource(vdd, kGround, 1.1);
    nl.addVSource(in, kGround, vin);
    nl.addMosfet("MP", out, in, vdd, vdd, MosType::kPmos, {2e-6, 45e-9, 1.0},
                 card.pmos);
    nl.addMosfet("MN", out, in, kGround, kGround, MosType::kNmos,
                 {1e-6, 45e-9, 1.0}, card.nmos);
    const DcResult r = DcSolver(nl).solve();
    ASSERT_TRUE(r.converged);
    if (vin < 0.5) {
      EXPECT_GT(r.nodeVoltage(out), 1.0);
    } else {
      EXPECT_LT(r.nodeVoltage(out), 0.1);
    }
  }
}

// ---------- AC analysis ----------

TEST(Ac, RcLowPassPole) {
  // R = 1k, C = 1µ -> f3dB = 159.15 Hz.
  Netlist nl;
  const NodeId in = nl.node("in");
  const NodeId out = nl.node("out");
  nl.addVSource(in, kGround, 0.0, 1.0);
  nl.addResistor(in, out, 1e3);
  nl.addCapacitor(out, kGround, 1e-6);
  const DcResult op = DcSolver(nl).solve();
  ASSERT_TRUE(op.converged);
  const AcSolver ac(nl, op);
  const double f3 = 1.0 / (2.0 * std::numbers::pi * 1e3 * 1e-6);
  const auto x = ac.solveAt(f3);
  EXPECT_NEAR(std::abs(ac.nodeVoltage(x, out)), 1.0 / std::sqrt(2.0), 1e-3);
  const auto xLow = ac.solveAt(f3 / 1000.0);
  EXPECT_NEAR(std::abs(ac.nodeVoltage(xLow, out)), 1.0, 1e-4);
  // Phase at the pole is -45 degrees.
  EXPECT_NEAR(std::arg(ac.nodeVoltage(x, out)) * 180.0 / std::numbers::pi, -45.0,
              0.5);
}

TEST(Ac, CommonSourceGainMatchesGmRo) {
  const auto& card = bsim45Card();
  Netlist nl;
  const NodeId vdd = nl.node("vdd");
  const NodeId in = nl.node("in");
  const NodeId out = nl.node("out");
  nl.addVSource(vdd, kGround, 1.1);
  nl.addVSource(in, kGround, 0.55, 1.0);
  nl.addMosfet("M1", out, in, kGround, kGround, MosType::kNmos,
               {4e-6, 180e-9, 1.0}, card.nmos);
  nl.addResistor(vdd, out, 20e3);
  const DcResult op = DcSolver(nl).solve();
  ASSERT_TRUE(op.converged);
  const AcSolver ac(nl, op);
  const auto x = ac.solveAt(100.0);
  const double gain = std::abs(ac.nodeVoltage(x, out));
  const MosOp& m = op.mosOps[0];
  const double expected = m.gm * (1.0 / (1.0 / 20e3 + m.gds));
  EXPECT_NEAR(gain, expected, expected * 0.02);
}

TEST(Ac, LogSpaceGrid) {
  const auto f = AcSolver::logSpace(10.0, 1e6, 6);
  ASSERT_EQ(f.size(), 6u);
  EXPECT_NEAR(f.front(), 10.0, 1e-9);
  EXPECT_NEAR(f.back(), 1e6, 1e-3);
  EXPECT_NEAR(f[1] / f[0], 10.0, 1e-6);
}

TEST(Ac, AnalyzeLoopSinglePole) {
  // Synthetic single-pole response: H = A / (1 + jf/fp).
  const double a0 = 1000.0;
  const double fp = 1e3;
  const auto freqs = AcSolver::logSpace(10.0, 1e8, 200);
  std::vector<std::complex<double>> h;
  for (double f : freqs) h.push_back(a0 / std::complex<double>(1.0, f / fp));
  const LoopMetrics m = analyzeLoop(freqs, h);
  EXPECT_TRUE(m.crossesUnity);
  EXPECT_NEAR(m.dcGainDb, 60.0, 0.1);
  EXPECT_NEAR(m.unityGainHz, a0 * fp, a0 * fp * 0.02);  // GBW product
  EXPECT_NEAR(m.phaseMarginDeg, 90.0, 1.0);
}

TEST(Ac, AnalyzeLoopTwoPole) {
  const double a0 = 1000.0;
  const double fp1 = 1e3;
  const double fp2 = 1e6;
  const auto freqs = AcSolver::logSpace(10.0, 1e9, 300);
  std::vector<std::complex<double>> h;
  for (double f : freqs)
    h.push_back(a0 / (std::complex<double>(1.0, f / fp1) *
                      std::complex<double>(1.0, f / fp2)));
  const LoopMetrics m = analyzeLoop(freqs, h);
  EXPECT_TRUE(m.crossesUnity);
  // The second pole pulls the crossover to ~0.79 MHz, giving the analytic
  // PM = 180 - 90 - atan(0.786) = 51.8 degrees.
  EXPECT_NEAR(m.phaseMarginDeg, 51.8, 2.0);
  EXPECT_LT(m.unityGainHz, 1e6);
}

// ---------- Transient analysis ----------

TEST(Transient, RcChargingCurve) {
  // Step from the initial condition 0 through R into C: v = V(1 - e^{-t/RC}).
  Netlist nl;
  const NodeId vin = nl.node("in");
  const NodeId out = nl.node("out");
  nl.addVSource(vin, kGround, 1.0);
  nl.addResistor(vin, out, 1e3);
  nl.addCapacitor(out, kGround, 1e-9);  // tau = 1 µs
  TransientOptions opts;
  opts.tStop = 3e-6;
  opts.dt = 5e-9;
  opts.includeDeviceCaps = false;
  linalg::Vector ic(nl.nodeCount(), 0.0);
  ic[static_cast<std::size_t>(vin)] = 1.0;
  const TransientResult r = TransientSolver(nl, opts).run(ic);
  ASSERT_TRUE(r.completed);
  const Waveform w = r.waveform(out);
  // Compare against the analytic curve at t = tau and t = 2 tau.
  const auto at = [&](double t) {
    for (std::size_t i = 0; i < w.t.size(); ++i)
      if (w.t[i] >= t) return w.v[i];
    return w.v.back();
  };
  EXPECT_NEAR(at(1e-6), 1.0 - std::exp(-1.0), 5e-3);
  EXPECT_NEAR(at(2e-6), 1.0 - std::exp(-2.0), 5e-3);
}

TEST(Transient, RingOscillatorOscillates) {
  const auto& card = bsim45Card();
  Netlist nl;
  const NodeId vdd = nl.node("vdd");
  nl.addVSource(vdd, kGround, 1.1);
  NodeId ring[3];
  for (int i = 0; i < 3; ++i) ring[i] = nl.node("r" + std::to_string(i));
  for (int i = 0; i < 3; ++i) {
    const NodeId in = ring[i];
    const NodeId out = ring[(i + 1) % 3];
    nl.addMosfet("MP" + std::to_string(i), out, in, vdd, vdd, MosType::kPmos,
                 {2e-6, 45e-9, 1.0}, card.pmos);
    nl.addMosfet("MN" + std::to_string(i), out, in, kGround, kGround,
                 MosType::kNmos, {1e-6, 45e-9, 1.0}, card.nmos);
    nl.addCapacitor(out, kGround, 5e-15);
  }
  const DcResult op = DcSolver(nl).solve();
  ASSERT_TRUE(op.converged);
  linalg::Vector ic = op.v;
  ic[static_cast<std::size_t>(ring[0])] += 0.1;
  TransientOptions opts;
  opts.tStop = 2e-9;
  opts.dt = 1e-12;
  const TransientResult r = TransientSolver(nl, opts).run(ic);
  ASSERT_TRUE(r.completed);
  const Waveform w = r.waveform(ring[2]);
  const double f = estimateFrequency(w, 0.55, 3);
  EXPECT_GT(f, 1e9);  // a 45nm 3-stage ring runs in the GHz range
  EXPECT_GT(steadyStateAmplitude(w, 0.4), 0.5);
}

TEST(Transient, BranchCurrentRecorded) {
  Netlist nl;
  const NodeId vin = nl.node("in");
  nl.addVSource(vin, kGround, 1.0);
  nl.addResistor(vin, kGround, 1e3);
  TransientOptions opts;
  opts.tStop = 1e-6;
  opts.dt = 1e-7;
  opts.includeDeviceCaps = false;
  linalg::Vector ic(nl.nodeCount(), 0.0);
  ic[static_cast<std::size_t>(vin)] = 1.0;
  const TransientResult r = TransientSolver(nl, opts).run(ic);
  ASSERT_TRUE(r.completed);
  EXPECT_NEAR(r.meanVsourceCurrent(0), 1e-3, 1e-6);
}

TEST(Transient, CrossingDetection) {
  Waveform w;
  for (int i = 0; i <= 100; ++i) {
    const double t = i * 1e-9;
    w.t.push_back(t);
    w.v.push_back(std::sin(2.0 * std::numbers::pi * 50e6 * t));  // 50 MHz
  }
  w.valid = true;
  const double f = estimateFrequency(w, 0.0, 2);
  EXPECT_NEAR(f, 50e6, 2e6);
}

}  // namespace
}  // namespace trdse::sim
