// Fault-tolerance suite: the deterministic FaultPlan/FaultInjector pair, the
// EvalEngine's retry/timeout/finiteness machinery, the no-poison guarantees
// of both cache layers, the ledger partition invariant across cache/thread/
// fault configurations, and checkpoint round trips of the fault accounting
// (including version-1 compatibility).
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <limits>
#include <memory>
#include <stdexcept>
#include <vector>

#include "eval/eval_engine.hpp"
#include "eval/fault_injector.hpp"
#include "eval/shared_cache.hpp"
#include "io/checkpoint.hpp"
#include "sim/fault.hpp"

namespace trdse::eval {
namespace {

/// 9x9 3-corner CSP with corner-dependent measurements, so batches fan out
/// across the pool and cache keys distinguish corners.
core::SizingProblem faultGridProblem() {
  core::SizingProblem p;
  p.name = "fault_grid";
  p.space = core::DesignSpace({{"x", 0.0, 1.0, 9, false},
                               {"y", 0.0, 1.0, 9, false}});
  p.measurementNames = {"closeness", "budget"};
  p.specs = {{"closeness", core::SpecKind::kAtLeast, 0.8},
             {"budget", core::SpecKind::kAtMost, 1.6}};
  p.corners = {{sim::ProcessCorner::kTT, 1.0, 27.0},
               {sim::ProcessCorner::kSS, 0.9, 125.0},
               {sim::ProcessCorner::kFF, 1.1, -40.0}};
  p.evaluate = [](const linalg::Vector& v, const sim::PvtCorner& c) {
    core::EvalResult r;
    r.ok = true;
    const double dx = v[0] - 0.66;
    const double dy = v[1] - 0.31;
    r.measurements = {1.0 - std::sqrt(dx * dx + dy * dy) - c.tempC / 1e4,
                      v[0] + v[1]};
    return r;
  };
  return p;
}

/// Backend that counts invocations (checks which fault classes skip the
/// inner simulator entirely).
class CountingBackend final : public EvalBackend {
 public:
  std::string_view name() const override { return "counting"; }
  core::EvalResult evaluate(const linalg::Vector&,
                            const sim::PvtCorner&) const override {
    ++calls;
    core::EvalResult r;
    r.ok = true;
    r.measurements = {1.0, 2.0};
    return r;
  }
  mutable std::atomic<std::size_t> calls{0};
};

sim::FaultPlanConfig planConfig(std::uint64_t seed, double timeout,
                                double nonconv, double nonfinite) {
  sim::FaultPlanConfig cfg;
  cfg.seed = seed;
  cfg.timeoutRate = timeout;
  cfg.nonConvergenceRate = nonconv;
  cfg.nonFiniteRate = nonfinite;
  return cfg;
}

// ---- FaultPlan -----------------------------------------------------------

TEST(FaultPlan, ValidatesRatesAndStall) {
  EXPECT_NO_THROW(sim::FaultPlan(planConfig(1, 0.2, 0.3, 0.5)));
  EXPECT_THROW(sim::FaultPlan(planConfig(1, -0.1, 0, 0)),
               std::invalid_argument);
  EXPECT_THROW(sim::FaultPlan(planConfig(1, 1.5, 0, 0)),
               std::invalid_argument);
  EXPECT_THROW(sim::FaultPlan(planConfig(1, 0.5, 0.4, 0.2)),
               std::invalid_argument);  // sum > 1
  sim::FaultPlanConfig bad = planConfig(1, 0.1, 0, 0);
  bad.timeoutStallSeconds = -1.0;
  EXPECT_THROW(sim::FaultPlan{bad}, std::invalid_argument);
  bad.timeoutStallSeconds = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW(sim::FaultPlan{bad}, std::invalid_argument);
}

TEST(FaultPlan, DecideIsPureSeededAndRateOrdered) {
  const sim::FaultPlan plan(planConfig(42, 0.1, 0.2, 0.1));
  const std::uint64_t scope = sim::hashScope("amp");
  std::size_t faults = 0;
  for (std::size_t i = 0; i < 500; ++i) {
    const std::vector<std::size_t> idx = {i % 9, i / 9};
    const sim::FaultClass a = plan.decide(scope, idx, i % 3, i % 4);
    const sim::FaultClass b = plan.decide(scope, idx, i % 3, i % 4);
    EXPECT_EQ(a, b);  // pure: same tuple, same answer
    if (a != sim::FaultClass::kNone) ++faults;
  }
  // 40% aggregate rate over 500 draws: loose 3-sigma-ish bounds.
  EXPECT_GT(faults, 140u);
  EXPECT_LT(faults, 260u);

  // Different seeds give different schedules.
  const sim::FaultPlan other(planConfig(43, 0.1, 0.2, 0.1));
  bool differs = false;
  for (std::size_t i = 0; i < 200 && !differs; ++i)
    differs = plan.decide(scope, {i, 0}, 0, 0) !=
              other.decide(scope, {i, 0}, 0, 0);
  EXPECT_TRUE(differs);

  // Rate 1.0 on the first class: every draw lands in the timeout bucket.
  const sim::FaultPlan certain(planConfig(7, 1.0, 0.0, 0.0));
  for (std::size_t i = 0; i < 16; ++i)
    EXPECT_EQ(certain.decide(scope, {i}, 0, i), sim::FaultClass::kTimeout);
}

// ---- FaultInjector -------------------------------------------------------

TEST(FaultInjector, SynthesizesEachClassDeterministically) {
  const linalg::Vector sizes = {0.5, 0.5};
  const sim::PvtCorner corner{sim::ProcessCorner::kTT, 1.0, 27.0};
  const std::vector<std::size_t> indices = {4, 4};
  EvalContext ctx;
  ctx.indices = &indices;

  {  // Timeout: inner backend never invoked.
    auto inner = std::make_shared<CountingBackend>();
    FaultInjector inj(inner,
                      std::make_shared<const sim::FaultPlan>(
                          planConfig(1, 1.0, 0.0, 0.0)),
                      "amp");
    const core::EvalResult r = inj.evaluate(sizes, corner, ctx);
    EXPECT_FALSE(r.ok);
    EXPECT_EQ(r.failure, sim::FaultClass::kTimeout);
    EXPECT_EQ(inner->calls, 0u);
  }
  {  // Non-convergence: inner backend never invoked.
    auto inner = std::make_shared<CountingBackend>();
    FaultInjector inj(inner,
                      std::make_shared<const sim::FaultPlan>(
                          planConfig(1, 0.0, 1.0, 0.0)),
                      "amp");
    const core::EvalResult r = inj.evaluate(sizes, corner, ctx);
    EXPECT_FALSE(r.ok);
    EXPECT_EQ(r.failure, sim::FaultClass::kNonConvergence);
    EXPECT_EQ(inner->calls, 0u);
  }
  {  // Non-finite: inner runs, one measurement corrupted to NaN, and the
     // result still *claims* ok — catching it is the engine guard's job.
    auto inner = std::make_shared<CountingBackend>();
    FaultInjector inj(inner,
                      std::make_shared<const sim::FaultPlan>(
                          planConfig(1, 0.0, 0.0, 1.0)),
                      "amp");
    const core::EvalResult r = inj.evaluate(sizes, corner, ctx);
    EXPECT_EQ(inner->calls, 1u);
    EXPECT_TRUE(r.ok);
    EXPECT_EQ(r.failure, sim::FaultClass::kNone);
    bool sawNaN = false;
    for (std::size_t i = 0; i < r.measurements.size(); ++i)
      sawNaN = sawNaN || std::isnan(r.measurements[i]);
    EXPECT_TRUE(sawNaN);
  }
  {  // Keyless calls bypass injection entirely.
    auto inner = std::make_shared<CountingBackend>();
    FaultInjector inj(inner,
                      std::make_shared<const sim::FaultPlan>(
                          planConfig(1, 1.0, 0.0, 0.0)),
                      "amp");
    const core::EvalResult r = inj.evaluate(sizes, corner);
    EXPECT_TRUE(r.ok);
    EXPECT_EQ(r.failure, sim::FaultClass::kNone);
    EXPECT_EQ(inner->calls, 1u);
  }
  // Null arguments fail loudly.
  auto inner = std::make_shared<CountingBackend>();
  auto plan = std::make_shared<const sim::FaultPlan>(planConfig(1, 0.5, 0, 0));
  EXPECT_THROW(FaultInjector(nullptr, plan, "amp"), std::invalid_argument);
  EXPECT_THROW(FaultInjector(inner, nullptr, "amp"), std::invalid_argument);
}

// ---- EvalEngine retry / failure ------------------------------------------

/// Find a grid point whose attempt-0 draw faults and attempt-1 draw is clean
/// on corner 0 under `plan` — the canonical "transient fault, retry wins"
/// request. Deterministic: the plan is a pure hash.
std::vector<std::size_t> findTransientPoint(const sim::FaultPlan& plan,
                                            std::uint64_t scope) {
  for (std::size_t x = 0; x < 9; ++x)
    for (std::size_t y = 0; y < 9; ++y) {
      const std::vector<std::size_t> idx = {x, y};
      if (plan.decide(scope, idx, 0, 0) != sim::FaultClass::kNone &&
          plan.decide(scope, idx, 0, 1) == sim::FaultClass::kNone)
        return idx;
    }
  ADD_FAILURE() << "no transient point in a 9x9 grid at 40% fault rate";
  return {0, 0};
}

TEST(EvalEngineFaults, RetriesTransientFaultAndChargesBackoff) {
  const core::SizingProblem problem = faultGridProblem();
  const sim::FaultPlan probe(planConfig(11, 0.0, 0.4, 0.0));
  const std::uint64_t scope = sim::hashScope(problem.name);
  const std::vector<std::size_t> idx = findTransientPoint(probe, scope);
  const linalg::Vector sizes = {problem.space.gridValue(0, idx[0]),
                                problem.space.gridValue(1, idx[1])};

  EvalEngine engine(problem);
  engine.injectFaults(std::make_shared<const sim::FaultPlan>(probe.config()),
                      problem.name);
  const core::EvalResult r = engine.evalOne(0, sizes, pvt::BlockKind::kSearch);
  EXPECT_TRUE(r.ok);
  EXPECT_EQ(r.failure, sim::FaultClass::kNone);

  const EvalStats& s = engine.stats();
  EXPECT_EQ(s.requests, 1u);
  EXPECT_EQ(s.simulated, 1u);
  EXPECT_EQ(s.failures, 0u);
  EXPECT_EQ(s.attempts, 2u);  // one fault, one clean retry
  EXPECT_EQ(s.faults, 1u);
  EXPECT_EQ(s.backoffUnits, 1u);  // min(backoffBase << 0, cap) = 1
  EXPECT_FALSE(engine.firstFailure().valid);

  ASSERT_EQ(engine.ledger().totalBlocks(), 1u);
  const pvt::EdaBlock& b = engine.ledger().blocks()[0];
  EXPECT_FALSE(b.failed);
  EXPECT_EQ(b.retries, 1u);
  EXPECT_EQ(b.backoff, 1u);
  EXPECT_EQ(engine.ledger().retriedBlocks(), 1u);
  EXPECT_EQ(engine.ledger().retryAttempts(), 1u);
  EXPECT_EQ(engine.ledger().backoffUnits(), 1u);

  // The eventually-clean result is trustworthy, so it *was* memoized: the
  // repeat is a hit and re-accrues no attempts.
  EXPECT_EQ(engine.cacheSize(), 1u);
  engine.evalOne(0, sizes, pvt::BlockKind::kSearch);
  EXPECT_EQ(engine.stats().cacheHits, 1u);
  EXPECT_EQ(engine.stats().attempts, 2u);
}

TEST(EvalEngineFaults, ExhaustionYieldsTypedFailureNeverCached) {
  const core::SizingProblem problem = faultGridProblem();
  EvalEngineConfig cfg;
  cfg.retry.maxAttempts = 2;
  EvalEngine engine(problem, cfg);
  // Rate 1.0: every attempt faults, so every request is a deterministic
  // permanent failure.
  engine.injectFaults(std::make_shared<const sim::FaultPlan>(
                          planConfig(3, 0.0, 1.0, 0.0)),
                      problem.name);

  const linalg::Vector sizes = {0.5, 0.5};
  const core::EvalResult r = engine.evalOne(0, sizes, pvt::BlockKind::kSearch);
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.failure, sim::FaultClass::kNonConvergence);

  const EvalStats& s = engine.stats();
  EXPECT_EQ(s.requests, 1u);
  EXPECT_EQ(s.simulated, 0u);
  EXPECT_EQ(s.failures, 1u);
  EXPECT_EQ(s.attempts, 2u);
  EXPECT_EQ(s.faults, 2u);
  EXPECT_EQ(s.backoffUnits, 1u);  // charged before the one retry

  const FailureRecord& f = engine.firstFailure();
  ASSERT_TRUE(f.valid);
  EXPECT_EQ(f.request, 0u);
  EXPECT_EQ(f.cornerIndex, 0u);
  EXPECT_EQ(f.cls, sim::FaultClass::kNonConvergence);
  EXPECT_EQ(f.attempts, 2u);

  // Poison never enters the memo: the repeat re-runs (and re-fails).
  EXPECT_EQ(engine.cacheSize(), 0u);
  engine.evalOne(0, sizes, pvt::BlockKind::kSearch);
  EXPECT_EQ(engine.cacheSize(), 0u);
  EXPECT_EQ(engine.stats().failures, 2u);
  EXPECT_EQ(engine.stats().attempts, 4u);
  // firstFailure keeps the *first* record.
  EXPECT_EQ(engine.firstFailure().request, 0u);

  ASSERT_EQ(engine.ledger().totalBlocks(), 2u);
  for (const pvt::EdaBlock& b : engine.ledger().blocks()) {
    EXPECT_TRUE(b.failed);
    EXPECT_FALSE(b.cached);
    EXPECT_FALSE(b.meetsSpec);
  }
  EXPECT_EQ(engine.ledger().failedBlocks(), 2u);
  EXPECT_EQ(engine.ledger().simulatedBlocks(), 0u);
}

TEST(EvalEngineFaults, BatchSurfacesFailuresInTheirSlots) {
  const core::SizingProblem problem = faultGridProblem();
  EvalEngineConfig cfg;
  cfg.retry.maxAttempts = 1;  // every fault immediately terminal
  cfg.threads = 4;
  EvalEngine engine(problem, cfg);
  engine.injectFaults(std::make_shared<const sim::FaultPlan>(
                          planConfig(19, 0.0, 0.5, 0.0)),
                      problem.name);

  const std::vector<std::size_t> allCorners = {0, 1, 2};
  const std::vector<core::EvalResult> batch =
      engine.evalBatch(allCorners, {0.25, 0.75}, pvt::BlockKind::kVerify);
  ASSERT_EQ(batch.size(), 3u);
  std::size_t failed = 0;
  for (std::size_t c = 0; c < batch.size(); ++c) {
    if (batch[c].failure != sim::FaultClass::kNone) {
      EXPECT_FALSE(batch[c].ok);
      ++failed;
    } else {
      EXPECT_TRUE(batch[c].ok);
    }
  }
  EXPECT_EQ(engine.stats().failures, failed);
  EXPECT_EQ(engine.stats().requests, 3u);
  // Only the clean slots were memoized.
  EXPECT_EQ(engine.cacheSize(), 3u - failed);
}

/// faultGridProblem plus a corner-batch evaluator (slot i = scalar evaluate
/// of corner i), so the engine's batchedSim dispatch — and the
/// FaultInjector's evaluateBatch override — actually engage.
core::SizingProblem faultGridBatchProblem() {
  core::SizingProblem p = faultGridProblem();
  const core::CornerEvalFn scalar = p.evaluate;
  p.evaluateBatch = [scalar](const linalg::Vector* const* sizes,
                             const sim::PvtCorner* corners,
                             core::EvalResult* results, std::size_t count) {
    for (std::size_t i = 0; i < count; ++i)
      results[i] = scalar(*sizes[i], corners[i]);
  };
  return p;
}

TEST(EvalEngineFaults, BatchedDispatchDrawsIdenticalFaultSlots) {
  // The fault identity tuple is (scope, snapped indices, corner, attempt) —
  // nothing about dispatch shape. So with the same plan, a batched engine
  // must fault on exactly the same (sizing, corner, attempt) slots as the
  // scalar engine: same per-slot results, same ledger rows (retries and
  // backoff included), same fault counters, for any thread count.
  const core::SizingProblem problem = faultGridBatchProblem();
  const std::vector<std::size_t> allCorners = {0, 1, 2};
  for (const std::size_t threads : {1u, 2u, 4u}) {
    EvalEngineConfig scalarCfg{/*cacheEvals=*/false, threads,
                               /*recordLedger=*/true, /*batchedSim=*/false};
    EvalEngineConfig batchCfg{/*cacheEvals=*/false, threads,
                              /*recordLedger=*/true, /*batchedSim=*/true};
    scalarCfg.retry.maxAttempts = 3;
    batchCfg.retry.maxAttempts = 3;
    EvalEngine scalarEngine(problem, scalarCfg);
    EvalEngine batchEngine(problem, batchCfg);
    const auto plan = std::make_shared<const sim::FaultPlan>(
        planConfig(101, 0.15, 0.25, 0.15));
    scalarEngine.injectFaults(plan, problem.name);
    batchEngine.injectFaults(plan, problem.name);

    for (std::size_t gx = 0; gx < 9; gx += 2) {
      const linalg::Vector sizes = {problem.space.gridValue(0, gx),
                                    problem.space.gridValue(1, 8 - gx)};
      const auto rs =
          scalarEngine.evalBatch(allCorners, sizes, pvt::BlockKind::kSearch);
      const auto rb =
          batchEngine.evalBatch(allCorners, sizes, pvt::BlockKind::kSearch);
      ASSERT_EQ(rs.size(), rb.size());
      for (std::size_t c = 0; c < rs.size(); ++c) {
        EXPECT_EQ(rs[c].ok, rb[c].ok) << "corner " << c;
        EXPECT_EQ(rs[c].failure, rb[c].failure) << "corner " << c;
        ASSERT_EQ(rs[c].measurements.size(), rb[c].measurements.size());
        for (std::size_t m = 0; m < rs[c].measurements.size(); ++m)
          EXPECT_EQ(rs[c].measurements[m], rb[c].measurements[m]);
      }
    }

    const auto& ls = scalarEngine.ledger().blocks();
    const auto& lb = batchEngine.ledger().blocks();
    ASSERT_EQ(ls.size(), lb.size());
    for (std::size_t i = 0; i < ls.size(); ++i) {
      EXPECT_EQ(ls[i].cornerIndex, lb[i].cornerIndex) << "block " << i;
      EXPECT_EQ(ls[i].failed, lb[i].failed) << "block " << i;
      EXPECT_EQ(ls[i].retries, lb[i].retries) << "block " << i;
      EXPECT_EQ(ls[i].backoff, lb[i].backoff) << "block " << i;
      EXPECT_EQ(ls[i].meetsSpec, lb[i].meetsSpec) << "block " << i;
    }
    EXPECT_EQ(scalarEngine.stats().attempts, batchEngine.stats().attempts);
    EXPECT_EQ(scalarEngine.stats().faults, batchEngine.stats().faults);
    EXPECT_EQ(scalarEngine.stats().failures, batchEngine.stats().failures);
    EXPECT_EQ(scalarEngine.stats().backoffUnits,
              batchEngine.stats().backoffUnits);
    // The plan's rates are high enough that this exercises real faults.
    EXPECT_GT(scalarEngine.stats().faults, 0u);
  }
}

// ---- NaN guard without any injection -------------------------------------

/// Problem whose own evaluate leaks NaN on a stripe of the grid — the
/// "simulator emitted garbage but claimed success" case the engine guard
/// must catch even with no FaultPlan anywhere.
core::SizingProblem nanLeakProblem() {
  core::SizingProblem p = faultGridProblem();
  p.evaluate = [](const linalg::Vector& v, const sim::PvtCorner&) {
    core::EvalResult r;
    r.ok = true;
    r.measurements = {v[0] < 0.3 ? std::numeric_limits<double>::quiet_NaN()
                                 : 1.0 - v[0],
                      v[0] + v[1]};
    return r;
  };
  return p;
}

TEST(EvalEngineFaults, NaNGuardClassifiesUninjectedGarbage) {
  EvalEngine engine(nanLeakProblem());  // default retry: 3 attempts
  const core::EvalResult bad =
      engine.evalOne(0, {0.0, 0.5}, pvt::BlockKind::kSearch);
  EXPECT_FALSE(bad.ok);
  EXPECT_EQ(bad.failure, sim::FaultClass::kNonFinite);
  // The backend is deterministic, so every retry re-leaked NaN.
  EXPECT_EQ(engine.stats().attempts, 3u);
  EXPECT_EQ(engine.stats().faults, 3u);
  EXPECT_EQ(engine.stats().failures, 1u);
  EXPECT_EQ(engine.cacheSize(), 0u);
  ASSERT_TRUE(engine.firstFailure().valid);
  EXPECT_EQ(engine.firstFailure().cls, sim::FaultClass::kNonFinite);

  // Clean points still memoize normally.
  const core::EvalResult good =
      engine.evalOne(0, {0.875, 0.5}, pvt::BlockKind::kSearch);
  EXPECT_TRUE(good.ok);
  EXPECT_EQ(engine.cacheSize(), 1u);
}

TEST(SharedCachePoison, InsertRejectsFaultyAndNonFiniteResults) {
  SharedEvalCache cache(4);
  const std::size_t scope = cache.scopeId("amp");
  EvalKey key;
  key.indices = {1, 2};
  key.cornerIndex = 0;

  core::EvalResult faulty;
  faulty.ok = false;
  faulty.failure = sim::FaultClass::kTimeout;
  EXPECT_THROW(cache.insert(scope, key, faulty), std::invalid_argument);

  core::EvalResult nan;
  nan.ok = true;
  nan.measurements = {std::numeric_limits<double>::quiet_NaN()};
  EXPECT_THROW(cache.insert(scope, key, nan), std::invalid_argument);
  EXPECT_EQ(cache.size(), 0u);

  core::EvalResult clean;
  clean.ok = true;
  clean.measurements = {1.0};
  EXPECT_NO_THROW(cache.insert(scope, key, clean));
  EXPECT_EQ(cache.size(), 1u);
}

TEST(SharedCachePoison, EngineNeverPublishesPoisonedResults) {
  auto shared = std::make_shared<SharedEvalCache>(4);
  EvalEngine engine(nanLeakProblem());
  engine.attachSharedCache(shared, "fault_grid");

  engine.evalOne(0, {0.0, 0.5}, pvt::BlockKind::kSearch);    // NaN stripe
  engine.evalOne(0, {0.875, 0.5}, pvt::BlockKind::kSearch);  // clean
  EXPECT_EQ(engine.stats().failures, 1u);

  // Only the clean result crosses the publish barrier: a NaN that a backend
  // leaked in one job can never become another job's shared "truth".
  EXPECT_EQ(engine.publishShared(), 1u);
  EXPECT_EQ(shared->size(), 1u);
}

// ---- Ledger partition invariant across configurations --------------------

/// Drive a fixed, collision-rich request stream through `engine` (same
/// stream for every configuration under test).
void driveStream(EvalEngine& engine) {
  const core::DesignSpace space = faultGridProblem().space;
  const std::vector<std::size_t> allCorners = {0, 1, 2};
  for (std::size_t t = 0; t < 40; ++t) {
    const std::size_t cell = (t * t + 3 * t) % 27;  // revisits guaranteed
    const linalg::Vector sizes = {space.gridValue(0, cell % 9),
                                  space.gridValue(1, cell / 9)};
    if (t % 3 == 0)
      engine.evalBatch(allCorners, sizes, pvt::BlockKind::kSearch);
    else
      engine.evalOne(t % 3, sizes, pvt::BlockKind::kSearch);
  }
}

TEST(LedgerInvariant, HoldsAcrossCacheThreadsAndFaultConfigs) {
  const core::SizingProblem problem = faultGridProblem();
  // Reference block streams (cornerIndex, kind, meetsSpec, failed), one per
  // fault setting, captured from the first configuration that runs it.
  std::vector<pvt::EdaBlock> reference[2];
  std::size_t referenceFailures[2] = {0, 0};

  for (const bool faults : {false, true}) {
    for (const bool cacheOn : {true, false}) {
      for (const std::size_t threads : {1u, 2u, 4u}) {
        EvalEngineConfig cfg;
        cfg.cacheEvals = cacheOn;
        cfg.threads = threads;
        cfg.retry.maxAttempts = 2;
        EvalEngine engine(problem, cfg);
        if (faults)
          engine.injectFaults(std::make_shared<const sim::FaultPlan>(
                                  planConfig(77, 0.1, 0.35, 0.1)),
                              problem.name);
        driveStream(engine);

        const EvalStats& s = engine.stats();
        const pvt::EdaLedger& ledger = engine.ledger();
        SCOPED_TRACE("faults=" + std::to_string(faults) +
                     " cache=" + std::to_string(cacheOn) +
                     " threads=" + std::to_string(threads));
        // The two partition invariants of the fault-tolerant pipeline.
        EXPECT_EQ(s.requests,
                  s.simulated + s.cacheHits + s.sharedHits + s.failures);
        EXPECT_EQ(ledger.totalBlocks(),
                  ledger.simulatedBlocks() + ledger.cachedBlocks() +
                      ledger.failedBlocks());
        // Ledger and stats describe the same run.
        EXPECT_EQ(ledger.totalBlocks(), s.requests);
        EXPECT_EQ(ledger.cachedBlocks(), s.cacheHits + s.sharedHits);
        EXPECT_EQ(ledger.failedBlocks(), s.failures);
        EXPECT_EQ(ledger.simulatedBlocks(), s.simulated);
        for (const pvt::EdaBlock& b : ledger.blocks())
          EXPECT_FALSE(b.cached && b.failed);
        if (faults) {
          EXPECT_GT(s.failures, 0u);
          EXPECT_GT(s.faults, s.failures);  // some faults were retried away
          EXPECT_GT(s.backoffUnits, 0u);
        } else {
          EXPECT_EQ(s.failures, 0u);
          EXPECT_EQ(s.attempts, s.simulated);
        }

        // The logical (corner, kind, meetsSpec, failed) block stream is a
        // function of the request stream and the fault plan alone — not of
        // caching or thread count.
        if (reference[faults].empty()) {
          reference[faults] = ledger.blocks();
          referenceFailures[faults] = s.failures;
        } else {
          ASSERT_EQ(ledger.totalBlocks(), reference[faults].size());
          for (std::size_t i = 0; i < reference[faults].size(); ++i) {
            EXPECT_EQ(ledger.blocks()[i].cornerIndex,
                      reference[faults][i].cornerIndex);
            EXPECT_EQ(ledger.blocks()[i].kind, reference[faults][i].kind);
            EXPECT_EQ(ledger.blocks()[i].meetsSpec,
                      reference[faults][i].meetsSpec);
            EXPECT_EQ(ledger.blocks()[i].failed, reference[faults][i].failed);
          }
          EXPECT_EQ(s.failures, referenceFailures[faults]);
        }
      }
    }
  }
}

// ---- Checkpoint round trips ----------------------------------------------

TEST(FaultCheckpoint, EngineStateRoundTripsBitwise) {
  const core::SizingProblem problem = faultGridProblem();
  EvalEngineConfig cfg;
  cfg.retry.maxAttempts = 2;
  EvalEngine a(problem, cfg);
  a.injectFaults(std::make_shared<const sim::FaultPlan>(
                     planConfig(77, 0.1, 0.35, 0.1)),
                 problem.name);
  driveStream(a);
  ASSERT_GT(a.stats().failures, 0u);

  io::SectionWriter wa;
  a.saveState(wa);

  EvalEngine b(problem, cfg);
  io::SectionReader r("engine", wa.bytes());
  b.restoreState(r);
  r.expectEnd();

  EXPECT_EQ(b.stats().requests, a.stats().requests);
  EXPECT_EQ(b.stats().failures, a.stats().failures);
  EXPECT_EQ(b.stats().attempts, a.stats().attempts);
  EXPECT_EQ(b.stats().faults, a.stats().faults);
  EXPECT_EQ(b.stats().backoffUnits, a.stats().backoffUnits);
  EXPECT_EQ(b.cacheSize(), a.cacheSize());
  ASSERT_TRUE(b.firstFailure().valid);
  EXPECT_EQ(b.firstFailure().request, a.firstFailure().request);
  EXPECT_EQ(b.firstFailure().cls, a.firstFailure().cls);
  EXPECT_EQ(b.firstFailure().attempts, a.firstFailure().attempts);
  EXPECT_EQ(b.ledger().failedBlocks(), a.ledger().failedBlocks());
  EXPECT_EQ(b.ledger().retryAttempts(), a.ledger().retryAttempts());
  EXPECT_EQ(b.ledger().backoffUnits(), a.ledger().backoffUnits());

  // save -> restore -> save is byte-identical.
  io::SectionWriter wb;
  b.saveState(wb);
  EXPECT_EQ(wa.bytes(), wb.bytes());
}

TEST(FaultCheckpoint, RestoreReadsVersion1Snapshots) {
  const core::SizingProblem problem = faultGridProblem();
  // Hand-craft a version-1 payload: one memoized clean result, a two-block
  // ledger, stats without the fault counters — exactly what a pre-fault
  // build wrote.
  io::SectionWriter w;
  w.u64(1);                      // one cache entry
  w.indexVec({2, 3});
  w.u64(1);                      // corner index
  w.boolean(true);               // ok
  w.vec(linalg::Vector{0.9, 1.1});
  w.u64(2);                      // two ledger blocks
  w.u64(1); w.u8(0); w.boolean(true); w.boolean(false);
  w.u64(1); w.u8(0); w.boolean(true); w.boolean(true);
  w.u64(2);    // requests
  w.u64(1);    // simulated
  w.u64(1);    // cacheHits
  w.u64(0);    // sharedHits
  w.f64(0.0);  // backendSeconds

  EvalEngine engine(problem);
  io::SectionReader r("engine", w.bytes(), 1);
  engine.restoreState(r);
  r.expectEnd();

  EXPECT_EQ(engine.stats().requests, 2u);
  EXPECT_EQ(engine.stats().failures, 0u);
  EXPECT_EQ(engine.stats().attempts, 0u);
  EXPECT_FALSE(engine.firstFailure().valid);
  EXPECT_EQ(engine.cacheSize(), 1u);
  EXPECT_EQ(engine.ledger().totalBlocks(), 2u);
  EXPECT_EQ(engine.ledger().failedBlocks(), 0u);
  EXPECT_EQ(engine.ledger().cachedBlocks(), 1u);
}

TEST(FaultCheckpoint, RestoreRejectsPoisonedOrInconsistentSnapshots) {
  const core::SizingProblem problem = faultGridProblem();
  {
    // A memoized entry carrying a fault class must be refused.
    io::SectionWriter w;
    w.u64(1);
    w.indexVec({2, 3});
    w.u64(0);
    w.boolean(false);
    w.vec(linalg::Vector{});
    w.u8(static_cast<std::uint8_t>(sim::FaultClass::kNonConvergence));
    w.u64(0);  // empty ledger
    w.u64(1); w.u64(1); w.u64(0); w.u64(0); w.f64(0.0);
    w.u64(1); w.u64(0); w.u64(0); w.u64(0);  // attempts/faults/failures/backoff
    w.boolean(false); w.u64(0); w.u64(0); w.u8(0); w.u64(0);  // firstFailure

    EvalEngine engine(problem);
    io::SectionReader r("engine", w.bytes());
    EXPECT_THROW(engine.restoreState(r), io::CheckpointError);
  }
  {
    // Broken stats partition (requests != simulated + hits + failures).
    io::SectionWriter w;
    w.u64(0);  // no cache entries
    w.u64(0);  // empty ledger
    w.u64(5); w.u64(1); w.u64(1); w.u64(0); w.f64(0.0);
    w.u64(1); w.u64(0); w.u64(1); w.u64(0);
    w.boolean(true); w.u64(0); w.u64(0);
    w.u8(static_cast<std::uint8_t>(sim::FaultClass::kTimeout));
    w.u64(1);

    EvalEngine engine(problem);
    io::SectionReader r("engine", w.bytes());
    EXPECT_THROW(engine.restoreState(r), io::CheckpointError);
  }
}

}  // namespace
}  // namespace trdse::eval
