// Tests for the extension modules: folded-cascode OTA, device mismatch,
// Cholesky, and the Gaussian-process baseline.
#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "circuits/folded_cascode.hpp"
#include "circuits/two_stage_opamp.hpp"
#include "core/value.hpp"
#include "linalg/cholesky.hpp"
#include "opt/gaussian_process.hpp"
#include "sim/dc.hpp"
#include "sim/mismatch.hpp"

namespace trdse {
namespace {

const sim::PvtCorner kTt45{sim::ProcessCorner::kTT, 1.1, 27.0};

// ---------- Folded-cascode OTA ----------

linalg::Vector nominalFcSizes() {
  linalg::Vector s(circuits::FoldedCascodeOta::kParamCount);
  s[circuits::FoldedCascodeOta::kW1] = 6e-6;
  s[circuits::FoldedCascodeOta::kW3] = 8e-6;
  s[circuits::FoldedCascodeOta::kW5] = 6e-6;
  s[circuits::FoldedCascodeOta::kW7] = 4e-6;
  s[circuits::FoldedCascodeOta::kW9] = 4e-6;
  s[circuits::FoldedCascodeOta::kL] = 2 * sim::bsim45Card().minL;
  s[circuits::FoldedCascodeOta::kIbias] = 15e-6;
  return s;
}

TEST(FoldedCascode, NominalDesignSimulates) {
  const circuits::FoldedCascodeOta ota(sim::bsim45Card());
  const auto r = ota.evaluate(nominalFcSizes(), kTt45);
  ASSERT_TRUE(r.ok);
  EXPECT_GT(r.measurements[circuits::FoldedCascodeOta::kGainDb], 30.0);
  EXPECT_GT(r.measurements[circuits::FoldedCascodeOta::kUgbwHz], 1e6);
  EXPECT_GT(r.measurements[circuits::FoldedCascodeOta::kPowerMw], 0.0);
}

TEST(FoldedCascode, SingleStageHasHealthyPhaseMargin) {
  // Load-capacitor-dominant single stage: PM should be comfortably high.
  const circuits::FoldedCascodeOta ota(sim::bsim45Card());
  const auto r = ota.evaluate(nominalFcSizes(), kTt45);
  ASSERT_TRUE(r.ok);
  EXPECT_GT(r.measurements[circuits::FoldedCascodeOta::kPmDeg], 45.0);
}

TEST(FoldedCascode, BiasRaisesPowerAndBandwidth) {
  // The tail mirror is only one of three supply branches (the PMOS folding
  // sources are set by the fixed bias rails), so power rises modestly while
  // gm of the input pair — and hence UGBW — rises strongly.
  const circuits::FoldedCascodeOta ota(sim::bsim45Card());
  auto s = nominalFcSizes();
  const auto lo = ota.evaluate(s, kTt45);
  s[circuits::FoldedCascodeOta::kIbias] *= 1.5;
  const auto hi = ota.evaluate(s, kTt45);
  ASSERT_TRUE(lo.ok && hi.ok);
  EXPECT_GT(hi.measurements[circuits::FoldedCascodeOta::kPowerMw],
            lo.measurements[circuits::FoldedCascodeOta::kPowerMw]);
  EXPECT_GT(hi.measurements[circuits::FoldedCascodeOta::kUgbwHz],
            lo.measurements[circuits::FoldedCascodeOta::kUgbwHz] * 1.1);
}

TEST(FoldedCascode, AreaMonotone) {
  const circuits::FoldedCascodeOta ota(sim::bsim45Card());
  auto s = nominalFcSizes();
  const double a0 = ota.area(s);
  s[circuits::FoldedCascodeOta::kW3] *= 2.0;
  EXPECT_GT(ota.area(s), a0);
}

// ---------- Mismatch ----------

TEST(Mismatch, PerturbsEveryDevice) {
  const circuits::TwoStageOpamp amp(sim::bsim45Card());
  const auto space = circuits::TwoStageOpamp::designSpace(sim::bsim45Card());
  std::mt19937_64 rng(3);
  auto tb = amp.buildTestbench(space.randomPoint(rng), kTt45);
  const auto before = tb.netlist.mosfets();
  sim::applyMismatch(tb.netlist, {}, rng);
  const auto& after = tb.netlist.mosfets();
  ASSERT_EQ(before.size(), after.size());
  for (std::size_t i = 0; i < after.size(); ++i) {
    EXPECT_NE(before[i].params.vth0, after[i].params.vth0);
    EXPECT_NE(before[i].params.kp, after[i].params.kp);
  }
}

TEST(Mismatch, SigmaShrinksWithArea) {
  // Pelgrom: bigger devices vary less. Estimate sigma over many draws.
  sim::MismatchParams params;
  auto sigmaFor = [&](double w, double l) {
    double sum2 = 0.0;
    const int n = 400;
    std::mt19937_64 rng(11);
    for (int i = 0; i < n; ++i) {
      sim::Netlist nl;
      nl.addMosfet("M", 1, 1, 0, 0, sim::MosType::kNmos, {w, l, 1.0},
                   sim::bsim45Card().nmos);
      sim::applyMismatch(nl, params, rng);
      const double dv = nl.mosfets()[0].params.vth0 - sim::bsim45Card().nmos.vth0;
      sum2 += dv * dv;
    }
    return std::sqrt(sum2 / n);
  };
  const double sSmall = sigmaFor(1e-6, 45e-9);
  const double sBig = sigmaFor(16e-6, 45e-9);
  EXPECT_NEAR(sSmall / sBig, 4.0, 1.0);  // 16x area -> 4x smaller sigma
}

TEST(Mismatch, DeterministicGivenSeed) {
  sim::Netlist a;
  a.addMosfet("M", 1, 1, 0, 0, sim::MosType::kNmos, {2e-6, 90e-9, 1.0},
              sim::bsim45Card().nmos);
  sim::Netlist b = a;
  std::mt19937_64 rngA(5);
  std::mt19937_64 rngB(5);
  sim::applyMismatch(a, {}, rngA);
  sim::applyMismatch(b, {}, rngB);
  EXPECT_DOUBLE_EQ(a.mosfets()[0].params.vth0, b.mosfets()[0].params.vth0);
}

// ---------- Cholesky ----------

TEST(Cholesky, SolvesSpdSystem) {
  linalg::Matrix a{{4.0, 1.0}, {1.0, 3.0}};
  linalg::CholeskySolver chol;
  ASSERT_TRUE(chol.factor(a));
  const auto x = chol.solve({1.0, 2.0});
  EXPECT_NEAR(4.0 * x[0] + x[1], 1.0, 1e-12);
  EXPECT_NEAR(x[0] + 3.0 * x[1], 2.0, 1e-12);
  EXPECT_NEAR(chol.logDet(), std::log(11.0), 1e-12);  // det = 12 - 1
}

TEST(Cholesky, RejectsIndefinite) {
  linalg::Matrix a{{1.0, 2.0}, {2.0, 1.0}};  // eigenvalues 3, -1
  linalg::CholeskySolver chol;
  EXPECT_FALSE(chol.factor(a));
}

TEST(Cholesky, MatchesLuOnRandomSpd) {
  std::mt19937_64 rng(7);
  std::uniform_real_distribution<double> d(-1.0, 1.0);
  const std::size_t n = 12;
  linalg::Matrix m(n, n);
  for (std::size_t r = 0; r < n; ++r)
    for (std::size_t c = 0; c < n; ++c) m(r, c) = d(rng);
  // A = M M^T + I is SPD.
  linalg::Matrix a(n, n);
  for (std::size_t r = 0; r < n; ++r)
    for (std::size_t c = 0; c < n; ++c) {
      double s = r == c ? 1.0 : 0.0;
      for (std::size_t k = 0; k < n; ++k) s += m(r, k) * m(c, k);
      a(r, c) = s;
    }
  linalg::Vector b(n, 1.0);
  linalg::CholeskySolver chol;
  ASSERT_TRUE(chol.factor(a));
  const auto x = chol.solve(b);
  const auto ax = linalg::matVec(a, x);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(ax[i], 1.0, 1e-9);
}

// ---------- Gaussian process ----------

TEST(GaussianProcess, InterpolatesTrainingData) {
  opt::GpConfig cfg;
  cfg.noiseVar = 1e-8;
  opt::GaussianProcess gp(cfg);
  const std::vector<linalg::Vector> xs = {{0.1}, {0.5}, {0.9}};
  const std::vector<double> ys = {1.0, -1.0, 2.0};
  ASSERT_TRUE(gp.fit(xs, ys));
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const auto p = gp.predict(xs[i]);
    EXPECT_NEAR(p.mean, ys[i], 1e-3);
    EXPECT_LT(p.std, 0.01);
  }
}

TEST(GaussianProcess, UncertaintyGrowsAwayFromData) {
  opt::GaussianProcess gp;
  const std::vector<linalg::Vector> xs = {{0.4}, {0.5}, {0.6}};
  const std::vector<double> ys = {0.0, 0.1, 0.0};
  ASSERT_TRUE(gp.fit(xs, ys));
  EXPECT_GT(gp.predict({0.95}).std, gp.predict({0.5}).std * 2.0);
}

TEST(GaussianProcess, SmoothFunctionRegression) {
  std::mt19937_64 rng(9);
  std::uniform_real_distribution<double> d(0.0, 1.0);
  std::vector<linalg::Vector> xs;
  std::vector<double> ys;
  for (int i = 0; i < 120; ++i) {
    const double x = d(rng);
    xs.push_back({x});
    ys.push_back(std::sin(4.0 * x));
  }
  opt::GaussianProcess gp;
  ASSERT_TRUE(gp.fit(xs, ys));
  double err = 0.0;
  for (double x = 0.05; x < 1.0; x += 0.1)
    err += std::abs(gp.predict({x}).mean - std::sin(4.0 * x));
  EXPECT_LT(err / 10.0, 0.05);
}

}  // namespace
}  // namespace trdse
