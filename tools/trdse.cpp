// trdse — the sizing toolbox CLI (subcommand surface of PR 9).
//
//   trdse run <scenario-file> [flags]   batch-run a scenario in-process
//   trdse resume <scenario-file> ...    run, continuing from its journal
//   trdse serve --socket ... --state-dir ...   the sizing daemon
//   trdse submit <scenario-file> --socket ...  run a scenario via a daemon
//   trdse status --socket ... [ID]      submission table of a daemon
//   trdse list                          known circuits and strategies
//
// `trdse run` is the old trdse_cli batch driver: everything on stdout is
// deterministic — a function of the scenario file alone, identical for any
// --threads or --workers value and across SIGKILL + resume — so CI diffs a
// run against a committed expected summary. `trdse submit` streams the same
// bytes for the same scenario from a fresh daemon (serve/report.hpp is the
// single renderer behind both), with progress notes on stderr only.
//
// Legacy spellings (`trdse <scenario-file> [flags]`, `trdse --list`) still
// work and print a deprecation note on stderr; stdout stays byte-identical
// to the subcommand form, so scripted pipelines keep diffing clean while
// they migrate.
//
// Exit codes (run/resume/submit): 0 all jobs completed; 1 error; 2 usage;
// 4 completed but at least one job quarantined (`# quarantined` line on
// stdout) — CI distinguishes "degraded but deterministic" from hard failure.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <exception>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "circuits/registry.hpp"
#include "common/parse_util.hpp"
#include "opt/strategy.hpp"
#include "orch/distributed.hpp"
#include "serve/client.hpp"
#include "serve/daemon.hpp"
#include "serve/report.hpp"
#include "sim/sim_profile.hpp"

namespace {

using trdse::common::ArgCursor;

int usage() {
  std::fprintf(
      stderr,
      "usage: trdse run <scenario-file> [--threads N] [--workers N] "
      "[--slice N]\n"
      "                 [--offload-chunks] [--no-shared-cache] "
      "[--journal PATH] [--resume]\n"
      "       trdse resume <scenario-file> [same flags; implies --resume]\n"
      "       trdse serve --socket PATH --state-dir DIR [--cache-shards N]\n"
      "                 [--cache-budget-bytes N] [--max-submission-bytes N]\n"
      "       trdse submit <scenario-file> --socket PATH [--tenant NAME]\n"
      "                 [--no-journal] [--detach]\n"
      "       trdse status --socket PATH [JOB-ID]\n"
      "       trdse list\n");
  return 2;
}

int cmdList() {
  std::printf("circuits (circuits::Registry):\n");
  const auto& reg = trdse::circuits::Registry::global();
  for (const std::string& name : reg.names())
    std::printf("  %-18s %s\n", name.c_str(), reg.at(name).description.c_str());
  std::printf("strategies (opt::makeStrategy):\n");
  for (const std::string& name : trdse::opt::strategyNames())
    std::printf("  %s\n", name.c_str());
  return 0;
}

bool fileExists(const std::string& path) {
  return std::ifstream(path).good();
}

std::string readWholeFile(const std::string& path) {
  std::ifstream in(path);
  if (!in.good())
    throw std::invalid_argument("cannot read scenario file \"" + path + "\"");
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

int cmdRun(ArgCursor args, bool resume) {
  using Clock = std::chrono::steady_clock;

  std::string path;
  bool haveThreads = false, haveWorkers = false, haveSlice = false;
  std::uint64_t threads = 0, workers = 0, slice = 0;
  bool noSharedCache = false, offloadChunks = false;
  std::string journalPath;
  std::vector<std::pair<std::uint64_t, std::uint64_t>> debugKills;
  try {
    std::string value;
    while (!args.done()) {
      if (args.flag("--no-shared-cache")) {
        noSharedCache = true;
      } else if (args.flag("--offload-chunks")) {
        offloadChunks = true;
      } else if (args.flag("--resume")) {
        resume = true;
      } else if (args.option("--journal", journalPath)) {
      } else if (args.option("--debug-kill-worker", value)) {
        const std::size_t colon = value.find(':');
        if (colon == std::string::npos)
          throw std::invalid_argument(
              "--debug-kill-worker expects WORKER:ROUND, got \"" + value +
              "\"");
        debugKills.emplace_back(
            trdse::common::parseU64("--debug-kill-worker worker",
                                    value.substr(0, colon)),
            trdse::common::parseU64("--debug-kill-worker round",
                                    value.substr(colon + 1)));
      } else if (args.optionU64("--threads", threads)) {
        haveThreads = true;
      } else if (args.optionU64("--workers", workers)) {
        haveWorkers = true;
      } else if (args.optionU64("--slice", slice)) {
        haveSlice = true;
      } else {
        const std::string arg = args.take();
        if (!arg.empty() && arg[0] == '-') {
          std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
          return usage();
        }
        if (!path.empty()) return usage();
        path = arg;
      }
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "trdse run: %s\n", e.what());
    return usage();
  }
  if (path.empty()) return usage();

  try {
    trdse::orch::Scenario scenario = trdse::orch::loadScenarioFile(path);
    if (haveThreads) scenario.threads = threads;
    if (haveWorkers) scenario.workers = workers;
    if (haveSlice) scenario.slice = slice;  // 0 rejected by the Scheduler
    if (noSharedCache) scenario.sharedCache = false;
    if (offloadChunks) scenario.offloadChunks = true;
    if (!journalPath.empty()) scenario.journalPath = journalPath;
    if (resume && scenario.journalPath.empty()) {
      std::fprintf(stderr,
                   "trdse run: --resume needs a journal (set `journal =` in "
                   "the scenario or pass --journal PATH)\n");
      return usage();
    }

    // Per-phase simulator attribution is on for the whole run (one relaxed
    // atomic load per phase scope when idle elsewhere); it feeds the
    // stderr-only "# sim-phase" comment below and never touches stdout.
    // Enabled before the scheduler exists so forked workers inherit it.
    trdse::sim::setSimProfiling(true);

    // Worker count 0 delegates to the in-process Scheduler, so this is the
    // only construction path — --workers is a pure throughput knob.
    trdse::orch::DistributedScheduler scheduler(std::move(scenario));
    for (const auto& [w, r] : debugKills) scheduler.debugKillWorker(w, r);
    // A missing journal under --resume is a cold start, not an error: the
    // process may have been killed before the first barrier ever wrote one.
    if (resume && fileExists(scheduler.scenario().journalPath))
      scheduler.resume(scheduler.scenario().journalPath);
    const auto t0 = Clock::now();
    const std::vector<trdse::orch::JobResult> results = scheduler.run();
    const double seconds =
        std::chrono::duration<double>(Clock::now() - t0).count();

    const trdse::orch::Scenario& sc = scheduler.scenario();
    trdse::serve::ReportInput report;
    report.scenarioName = sc.name;
    report.jobCount = sc.jobs.size();
    report.slice = sc.slice;
    report.sharedCacheOn = sc.sharedCache;
    report.results = results;
    if (const trdse::eval::SharedEvalCache* cache = scheduler.sharedCache()) {
      report.haveCache = true;
      for (std::size_t s = 0; s < cache->shardCount(); ++s) {
        const auto c = cache->shardStats(s);
        report.shards.push_back({c.entries, c.hits, c.misses, c.inserts});
      }
    }
    // Worker attribution (distributed runs only). Stdout carries only the
    // job->worker mapping, which is a pure function of the scenario (jobs
    // shard round-robin by index) — byte-identical across SIGKILL +
    // --resume. The merged probe tallies go to stderr: they count probes
    // merged by *this* process, so a resumed run reports only its own share.
    for (std::size_t w = 0; w < scheduler.workerReports().size(); ++w) {
      const auto& rep = scheduler.workerReports()[w];
      std::string names;
      for (const std::string& j : rep.jobs) {
        if (!names.empty()) names += ",";
        names += j;
      }
      report.workerJobs.push_back(names);
      std::fprintf(stderr, "# worker %zu: shared probes merged %zuh/%zum\n",
                   w, rep.sharedHits, rep.sharedMisses);
    }
    std::fputs(trdse::serve::renderReport(report).c_str(), stdout);
    // Simulator phase attribution, summed over the job engines' EvalStats.
    // Stderr comment lines only: stdout is golden-diffed and wall time is
    // outside the determinism contract. Harvests from forked workers do not
    // carry the phase fields (they are never on the wire), so distributed
    // runs attribute only coordinator-resident jobs.
    {
      std::uint64_t dev = 0, stamp = 0, factor = 0, solve = 0;
      for (const trdse::orch::JobResult& jr : results) {
        dev += jr.outcome.evalStats.simDeviceEvalNs;
        stamp += jr.outcome.evalStats.simStampNs;
        factor += jr.outcome.evalStats.simFactorNs;
        solve += jr.outcome.evalStats.simSolveNs;
      }
      std::fprintf(stderr,
                   "# sim-phase: deviceEval=%.1fms stamp=%.1fms "
                   "factor=%.1fms solve=%.1fms\n",
                   dev / 1e6, stamp / 1e6, factor / 1e6, solve / 1e6);
    }
    for (const std::string& ev : scheduler.events())
      std::fprintf(stderr, "# event: %s\n", ev.c_str());
    std::fprintf(stderr, "[%.2fs wall, threads=%zu, workers=%zu]\n", seconds,
                 sc.threads, sc.workers);
    return trdse::serve::anyQuarantined(results) ? 4 : 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "trdse run: %s\n", e.what());
    return 1;
  }
}

int cmdServe(ArgCursor args) {
  trdse::serve::DaemonConfig cfg;
  try {
    std::uint64_t v = 0;
    while (!args.done()) {
      if (args.option("--socket", cfg.socketPath)) {
      } else if (args.option("--state-dir", cfg.stateDir)) {
      } else if (args.optionU64("--cache-shards", v)) {
        cfg.cacheShards = v;
      } else if (args.optionU64("--cache-budget-bytes", v)) {
        cfg.cacheBudgetBytes = v;
      } else if (args.optionU64("--max-submission-bytes", v)) {
        cfg.maxSubmissionBytes = v;
      } else {
        std::fprintf(stderr, "unknown flag: %s\n", args.take().c_str());
        return usage();
      }
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "trdse serve: %s\n", e.what());
    return usage();
  }
  if (cfg.socketPath.empty() || cfg.stateDir.empty()) {
    std::fprintf(stderr,
                 "trdse serve: --socket and --state-dir are required\n");
    return usage();
  }
  try {
    trdse::serve::Daemon daemon(cfg);
    std::fprintf(stderr, "# serving on %s (state %s, %zu cache shards)\n",
                 cfg.socketPath.c_str(), cfg.stateDir.c_str(),
                 daemon.cache().shardCount());
    daemon.runUntilShutdown();
    std::fprintf(stderr, "# shutdown requested, exiting\n");
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "trdse serve: %s\n", e.what());
    return 1;
  }
}

int cmdSubmit(ArgCursor args) {
  std::string path, socketPath, tenant = "default";
  bool noJournal = false, detach = false;
  try {
    while (!args.done()) {
      if (args.option("--socket", socketPath)) {
      } else if (args.option("--tenant", tenant)) {
      } else if (args.flag("--no-journal")) {
        noJournal = true;
      } else if (args.flag("--detach")) {
        detach = true;
      } else {
        const std::string arg = args.take();
        if (!arg.empty() && arg[0] == '-') {
          std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
          return usage();
        }
        if (!path.empty()) return usage();
        path = arg;
      }
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "trdse submit: %s\n", e.what());
    return usage();
  }
  if (path.empty() || socketPath.empty()) {
    std::fprintf(stderr,
                 "trdse submit: a scenario file and --socket are required\n");
    return usage();
  }
  try {
    trdse::serve::SubmitRequest req;
    req.tenant = tenant;
    req.scenarioText = readWholeFile(path);
    req.source = path;
    req.wantJournal = !noJournal;
    trdse::serve::Client client = trdse::serve::Client::connect(socketPath);
    bool journaled = false;
    const std::uint64_t id = client.submit(req, &journaled);
    std::fprintf(stderr, "# submitted as job %llu (%s)\n",
                 static_cast<unsigned long long>(id),
                 journaled ? "journaled" : "not crash-resumable");
    if (detach) {
      // The id is the contract here: `trdse status`/a later stream pick the
      // submission back up.
      std::printf("%llu\n", static_cast<unsigned long long>(id));
      return 0;
    }
    const trdse::serve::FinalResult res = client.stream(
        id, [](const trdse::serve::ProgressEvent& ev) {
          std::fprintf(stderr,
                       "# round %zu: %zu active, %zu done, %zu sims, "
                       "%zu shared hits, best %.4f\n",
                       ev.round, ev.jobsActive, ev.jobsDone, ev.simulated,
                       ev.sharedHits, ev.bestValue);
        });
    std::fputs(res.report.c_str(), stdout);
    return res.quarantined ? 4 : 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "trdse submit: %s\n", e.what());
    return 1;
  }
}

int cmdStatus(ArgCursor args) {
  std::string socketPath;
  std::uint64_t id = 0;
  try {
    while (!args.done()) {
      if (args.option("--socket", socketPath)) {
      } else {
        const std::string arg = args.take();
        if (!arg.empty() && arg[0] == '-') {
          std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
          return usage();
        }
        id = trdse::common::parseU64("JOB-ID", arg);
      }
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "trdse status: %s\n", e.what());
    return usage();
  }
  if (socketPath.empty()) {
    std::fprintf(stderr, "trdse status: --socket is required\n");
    return usage();
  }
  try {
    trdse::serve::Client client = trdse::serve::Client::connect(socketPath);
    const std::vector<trdse::serve::JobStatus> rows = client.status(id);
    std::printf("%-6s %-10s %-18s %-10s %7s %5s %5s %-9s\n", "id", "tenant",
                "scenario", "state", "rounds", "jobs", "done", "journal");
    for (const auto& row : rows) {
      std::printf("%-6llu %-10s %-18s %-10s %7zu %5zu %5zu %-9s\n",
                  static_cast<unsigned long long>(row.id), row.tenant.c_str(),
                  row.scenario.c_str(), row.state.c_str(), row.rounds,
                  row.jobsTotal, row.jobsDone,
                  row.journaled ? "yes" : "no");
      if (!row.error.empty())
        std::printf("# error %llu: %s\n",
                    static_cast<unsigned long long>(row.id),
                    row.error.c_str());
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "trdse status: %s\n", e.what());
    return 1;
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  if (cmd == "run") return cmdRun(ArgCursor(argc, argv, 2), false);
  if (cmd == "resume") return cmdRun(ArgCursor(argc, argv, 2), true);
  if (cmd == "serve") return cmdServe(ArgCursor(argc, argv, 2));
  if (cmd == "submit") return cmdSubmit(ArgCursor(argc, argv, 2));
  if (cmd == "status") return cmdStatus(ArgCursor(argc, argv, 2));
  if (cmd == "list") return cmdList();
  if (cmd == "--help" || cmd == "-h" || cmd == "help") {
    usage();
    return 0;
  }
  // Legacy trdse_cli spellings: `trdse --list` and `trdse <scenario> [flags]`.
  // Deprecation notes go to stderr only — stdout must stay byte-identical to
  // the subcommand form so scripted diffs keep passing mid-migration.
  if (cmd == "--list") {
    std::fprintf(stderr,
                 "trdse: note: `--list` is deprecated; use `trdse list`\n");
    return cmdList();
  }
  std::fprintf(stderr,
               "trdse: note: the flag-style invocation is deprecated; use "
               "`trdse run %s ...` (see docs/SERVICE.md)\n",
               cmd.c_str());
  return cmdRun(ArgCursor(argc, argv, 1), false);
}
