// trdse_cli — batch driver for multi-job sizing scenarios.
//
// Runs a declarative scenario file (see docs/ORCHESTRATION.md and
// scenarios/) through the orch::Scheduler and prints one comparison row per
// job in the layout of the paper's Table I/III: strategy, solved, EDA-block
// accounting, cache economics, best worst-corner Value.
//
// Everything on stdout is deterministic — a function of the scenario file
// alone, identical for any --threads or --workers value and across SIGKILL +
// --resume — so CI can diff a run against a committed expected summary
// (wall-clock timing and worker-failure notices go to stderr; the per-worker
// attribution `# worker` lines appear only when --workers > 0, so CI diffs a
// distributed run against the single-process golden with them filtered).
//
// Exit codes: 0 all jobs completed; 1 error (unreadable/invalid scenario,
// corrupt journal); 2 usage; 4 the run finished but at least one job was
// quarantined (its reason is on stdout as a `# quarantined` line) — CI can
// distinguish "degraded but deterministic" from hard failure.
//
// Usage:
//   trdse_cli <scenario-file> [--threads N] [--workers N] [--slice N]
//             [--offload-chunks] [--no-shared-cache] [--journal PATH]
//             [--resume]
//   trdse_cli --list
// (Hidden test hook: --debug-kill-worker W:R kills worker W at the start of
// round R — the CI crash-recovery smoke drives it; see ORCHESTRATION.md.)
#include <chrono>
#include <cstdio>
#include <exception>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "circuits/registry.hpp"
#include "common/parse_util.hpp"
#include "opt/strategy.hpp"
#include "orch/distributed.hpp"

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <scenario-file> [--threads N] [--workers N] "
               "[--slice N] [--offload-chunks] [--no-shared-cache] "
               "[--journal PATH] [--resume]\n"
               "       %s --list\n",
               argv0, argv0);
  return 2;
}

void listKnown() {
  std::printf("circuits (circuits::Registry):\n");
  const auto& reg = trdse::circuits::Registry::global();
  for (const std::string& name : reg.names())
    std::printf("  %-18s %s\n", name.c_str(), reg.at(name).description.c_str());
  std::printf("strategies (opt::makeStrategy):\n");
  for (const std::string& name : trdse::opt::strategyNames())
    std::printf("  %s\n", name.c_str());
}

bool fileExists(const std::string& path) {
  return std::ifstream(path).good();
}

}  // namespace

int main(int argc, char** argv) {
  using Clock = std::chrono::steady_clock;

  std::string path;
  bool haveThreads = false;
  bool haveWorkers = false;
  bool haveSlice = false;
  std::uint64_t threads = 0;
  std::uint64_t workers = 0;
  std::uint64_t slice = 0;
  bool noSharedCache = false;
  bool offloadChunks = false;
  std::string journalPath;
  bool resume = false;
  std::vector<std::pair<std::uint64_t, std::uint64_t>> debugKills;
  try {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg == "--list") {
        listKnown();
        return 0;
      }
      if (arg == "--no-shared-cache") {
        noSharedCache = true;
      } else if (arg == "--offload-chunks") {
        offloadChunks = true;
      } else if (arg == "--resume") {
        resume = true;
      } else if (arg == "--journal" && i + 1 < argc) {
        journalPath = argv[++i];
      } else if (arg == "--debug-kill-worker" && i + 1 < argc) {
        const std::string spec = argv[++i];
        const std::size_t colon = spec.find(':');
        if (colon == std::string::npos)
          throw std::invalid_argument(
              "--debug-kill-worker expects WORKER:ROUND, got \"" + spec +
              "\"");
        debugKills.emplace_back(
            trdse::common::parseU64("--debug-kill-worker worker",
                                    spec.substr(0, colon)),
            trdse::common::parseU64("--debug-kill-worker round",
                                    spec.substr(colon + 1)));
      } else if ((arg == "--threads" || arg == "--workers" ||
                  arg == "--slice") &&
                 i + 1 < argc) {
        const std::uint64_t v = trdse::common::parseU64(arg, argv[++i]);
        (arg == "--threads"   ? threads
         : arg == "--workers" ? workers
                              : slice) = v;
        (arg == "--threads"   ? haveThreads
         : arg == "--workers" ? haveWorkers
                              : haveSlice) = true;
      } else if (!arg.empty() && arg[0] == '-') {
        std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
        return usage(argv[0]);
      } else if (path.empty()) {
        path = arg;
      } else {
        return usage(argv[0]);
      }
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "trdse_cli: %s\n", e.what());
    return usage(argv[0]);
  }
  if (path.empty()) return usage(argv[0]);

  try {
    trdse::orch::Scenario scenario = trdse::orch::loadScenarioFile(path);
    if (haveThreads) scenario.threads = threads;
    if (haveWorkers) scenario.workers = workers;
    if (haveSlice) scenario.slice = slice;  // 0 rejected by the Scheduler
    if (noSharedCache) scenario.sharedCache = false;
    if (offloadChunks) scenario.offloadChunks = true;
    if (!journalPath.empty()) scenario.journalPath = journalPath;
    if (resume && scenario.journalPath.empty()) {
      std::fprintf(stderr,
                   "trdse_cli: --resume needs a journal (set `journal =` in "
                   "the scenario or pass --journal PATH)\n");
      return usage(argv[0]);
    }

    // Worker count 0 delegates to the in-process Scheduler, so this is the
    // only construction path — --workers is a pure throughput knob.
    trdse::orch::DistributedScheduler scheduler(std::move(scenario));
    for (const auto& [w, r] : debugKills) scheduler.debugKillWorker(w, r);
    // A missing journal under --resume is a cold start, not an error: the
    // process may have been killed before the first barrier ever wrote one.
    if (resume && fileExists(scheduler.scenario().journalPath))
      scheduler.resume(scheduler.scenario().journalPath);
    const auto t0 = Clock::now();
    const std::vector<trdse::orch::JobResult> results = scheduler.run();
    const double seconds =
        std::chrono::duration<double>(Clock::now() - t0).count();

    const trdse::orch::Scenario& sc = scheduler.scenario();
    std::printf("# scenario %s: %zu jobs, slice %zu, shared cache %s\n",
                sc.name.c_str(), sc.jobs.size(), sc.slice,
                sc.sharedCache ? "on" : "off");
    std::printf("%-14s %-18s %-16s %-7s %8s %8s %7s %7s %10s\n", "job",
                "circuit", "strategy", "solved", "blocks", "sims", "hits",
                "shared", "best");
    for (const auto& r : results) {
      const auto& o = r.outcome;
      std::printf("%-14s %-18s %-16s %-7s %8zu %8zu %7zu %7zu %10.4f\n",
                  r.name.c_str(), r.circuit.c_str(), r.strategy.c_str(),
                  o.solved ? "yes" : "no", o.iterations, o.evalStats.simulated,
                  o.evalStats.cacheHits, o.evalStats.sharedHits, o.bestValue);
    }
    if (const trdse::eval::SharedEvalCache* cache = scheduler.sharedCache()) {
      const auto t = cache->totals();
      std::printf(
          "# shared cache: %zu entries in %zu shards, %zu hits / %zu misses\n",
          t.entries, cache->shardCount(), t.hits, t.misses);
      // Per-shard breakdown: shard assignment is a pure key hash, so these
      // lines are as deterministic as the totals (and identical for any
      // --threads / --workers value).
      for (std::size_t s = 0; s < cache->shardCount(); ++s) {
        const auto c = cache->shardStats(s);
        std::printf(
            "# shard %02zu: %zu entries, %zu hits / %zu misses, %zu inserts\n",
            s, c.entries, c.hits, c.misses, c.inserts);
      }
    }
    // Worker attribution (distributed runs only). Stdout carries only the
    // job->worker mapping, which is a pure function of the scenario (jobs
    // shard round-robin by index) — byte-identical across SIGKILL +
    // --resume. The merged probe tallies go to stderr: they count probes
    // merged by *this* process, so a resumed run reports only its own share.
    for (std::size_t w = 0; w < scheduler.workerReports().size(); ++w) {
      const auto& rep = scheduler.workerReports()[w];
      std::string names;
      for (const std::string& j : rep.jobs) {
        if (!names.empty()) names += ",";
        names += j;
      }
      std::printf("# worker %zu: jobs %s\n", w, names.c_str());
      std::fprintf(stderr, "# worker %zu: shared probes merged %zuh/%zum\n",
                   w, rep.sharedHits, rep.sharedMisses);
    }
    // Fault/quarantine report, appended as deterministic comment lines so
    // the summary table above stays byte-identical for clean scenarios.
    bool anyQuarantined = false;
    for (const auto& r : results) {
      if (r.failures != 0)
        std::printf("# failures %s: %zu request(s) failed, %zu faulted "
                    "attempt(s), %zu backoff unit(s)\n",
                    r.name.c_str(), r.failures, r.outcome.evalStats.faults,
                    r.outcome.evalStats.backoffUnits);
      if (r.quarantined) {
        anyQuarantined = true;
        std::printf("# quarantined %s: %s\n", r.name.c_str(),
                    r.quarantineReason.c_str());
      }
    }
    for (const std::string& ev : scheduler.events())
      std::fprintf(stderr, "# event: %s\n", ev.c_str());
    std::fprintf(stderr, "[%.2fs wall, threads=%zu, workers=%zu]\n", seconds,
                 sc.threads, sc.workers);
    return anyQuarantined ? 4 : 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "trdse_cli: %s\n", e.what());
    return 1;
  }
}
