// trdse_cli — batch driver for multi-job sizing scenarios.
//
// Runs a declarative scenario file (see docs/ORCHESTRATION.md and
// scenarios/) through the orch::Scheduler and prints one comparison row per
// job in the layout of the paper's Table I/III: strategy, solved, EDA-block
// accounting, cache economics, best worst-corner Value.
//
// Everything on stdout is deterministic — a function of the scenario file
// alone, identical for any --threads value and across SIGKILL + --resume —
// so CI can diff a run against a committed expected summary (wall-clock
// timing goes to stderr).
//
// Exit codes: 0 all jobs completed; 1 error (unreadable/invalid scenario,
// corrupt journal); 2 usage; 4 the run finished but at least one job was
// quarantined (its reason is on stdout as a `# quarantined` line) — CI can
// distinguish "degraded but deterministic" from hard failure.
//
// Usage:
//   trdse_cli <scenario-file> [--threads N] [--slice N] [--no-shared-cache]
//             [--journal PATH] [--resume]
//   trdse_cli --list
#include <chrono>
#include <cstdio>
#include <exception>
#include <fstream>
#include <string>
#include <vector>

#include "circuits/registry.hpp"
#include "common/parse_util.hpp"
#include "opt/strategy.hpp"
#include "orch/scheduler.hpp"

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <scenario-file> [--threads N] [--slice N] "
               "[--no-shared-cache] [--journal PATH] [--resume]\n"
               "       %s --list\n",
               argv0, argv0);
  return 2;
}

void listKnown() {
  std::printf("circuits (circuits::Registry):\n");
  const auto& reg = trdse::circuits::Registry::global();
  for (const std::string& name : reg.names())
    std::printf("  %-18s %s\n", name.c_str(), reg.at(name).description.c_str());
  std::printf("strategies (opt::makeStrategy):\n");
  for (const std::string& name : trdse::opt::strategyNames())
    std::printf("  %s\n", name.c_str());
}

bool fileExists(const std::string& path) {
  return std::ifstream(path).good();
}

}  // namespace

int main(int argc, char** argv) {
  using Clock = std::chrono::steady_clock;

  std::string path;
  bool haveThreads = false;
  bool haveSlice = false;
  std::uint64_t threads = 0;
  std::uint64_t slice = 0;
  bool noSharedCache = false;
  std::string journalPath;
  bool resume = false;
  try {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg == "--list") {
        listKnown();
        return 0;
      }
      if (arg == "--no-shared-cache") {
        noSharedCache = true;
      } else if (arg == "--resume") {
        resume = true;
      } else if (arg == "--journal" && i + 1 < argc) {
        journalPath = argv[++i];
      } else if ((arg == "--threads" || arg == "--slice") && i + 1 < argc) {
        const std::uint64_t v = trdse::common::parseU64(arg, argv[++i]);
        (arg == "--threads" ? threads : slice) = v;
        (arg == "--threads" ? haveThreads : haveSlice) = true;
      } else if (!arg.empty() && arg[0] == '-') {
        std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
        return usage(argv[0]);
      } else if (path.empty()) {
        path = arg;
      } else {
        return usage(argv[0]);
      }
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "trdse_cli: %s\n", e.what());
    return usage(argv[0]);
  }
  if (path.empty()) return usage(argv[0]);

  try {
    trdse::orch::Scenario scenario = trdse::orch::loadScenarioFile(path);
    if (haveThreads) scenario.threads = threads;
    if (haveSlice) scenario.slice = slice;  // 0 rejected by the Scheduler
    if (noSharedCache) scenario.sharedCache = false;
    if (!journalPath.empty()) scenario.journalPath = journalPath;
    if (resume && scenario.journalPath.empty()) {
      std::fprintf(stderr,
                   "trdse_cli: --resume needs a journal (set `journal =` in "
                   "the scenario or pass --journal PATH)\n");
      return usage(argv[0]);
    }

    trdse::orch::Scheduler scheduler(std::move(scenario));
    // A missing journal under --resume is a cold start, not an error: the
    // process may have been killed before the first barrier ever wrote one.
    if (resume && fileExists(scheduler.scenario().journalPath))
      scheduler.resume(scheduler.scenario().journalPath);
    const auto t0 = Clock::now();
    const std::vector<trdse::orch::JobResult> results = scheduler.run();
    const double seconds =
        std::chrono::duration<double>(Clock::now() - t0).count();

    const trdse::orch::Scenario& sc = scheduler.scenario();
    std::printf("# scenario %s: %zu jobs, slice %zu, shared cache %s\n",
                sc.name.c_str(), sc.jobs.size(), sc.slice,
                sc.sharedCache ? "on" : "off");
    std::printf("%-14s %-18s %-16s %-7s %8s %8s %7s %7s %10s\n", "job",
                "circuit", "strategy", "solved", "blocks", "sims", "hits",
                "shared", "best");
    for (const auto& r : results) {
      const auto& o = r.outcome;
      std::printf("%-14s %-18s %-16s %-7s %8zu %8zu %7zu %7zu %10.4f\n",
                  r.name.c_str(), r.circuit.c_str(), r.strategy.c_str(),
                  o.solved ? "yes" : "no", o.iterations, o.evalStats.simulated,
                  o.evalStats.cacheHits, o.evalStats.sharedHits, o.bestValue);
    }
    if (const trdse::eval::SharedEvalCache* cache = scheduler.sharedCache()) {
      const auto t = cache->totals();
      std::printf(
          "# shared cache: %zu entries in %zu shards, %zu hits / %zu misses\n",
          t.entries, cache->shardCount(), t.hits, t.misses);
    }
    // Fault/quarantine report, appended as deterministic comment lines so
    // the summary table above stays byte-identical for clean scenarios.
    bool anyQuarantined = false;
    for (const auto& r : results) {
      if (r.failures != 0)
        std::printf("# failures %s: %zu request(s) failed, %zu faulted "
                    "attempt(s), %zu backoff unit(s)\n",
                    r.name.c_str(), r.failures, r.outcome.evalStats.faults,
                    r.outcome.evalStats.backoffUnits);
      if (r.quarantined) {
        anyQuarantined = true;
        std::printf("# quarantined %s: %s\n", r.name.c_str(),
                    r.quarantineReason.c_str());
      }
    }
    std::fprintf(stderr, "[%.2fs wall, threads=%zu]\n", seconds, sc.threads);
    return anyQuarantined ? 4 : 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "trdse_cli: %s\n", e.what());
    return 1;
  }
}
