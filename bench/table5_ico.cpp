// Table V — ICO sizing on the synthetic n5 advanced node.
//
// Paper rows:                 # iterations   phase noise   frequency
//   Specification                       -       < -71 dB      > 8 GHz
//   Human                     untraceable      -73.31 dB     8.45 GHz
//   Customized BO                     194      -72.17 dB     8.87 GHz
//   Our method                         43      -71.76 dB     9.18 GHz
//
// Shape: both automated agents meet spec; the local trust-region agent does
// so in ~4.5x fewer simulations than the global BO.
#include "bench/bench_util.hpp"
#include "circuits/ico.hpp"
#include "core/local_explorer.hpp"
#include "opt/tree_bayes_opt.hpp"

using namespace trdse;

int main() {
  const circuits::Ico ico(sim::n5Card());
  const sim::PvtCorner tt{sim::ProcessCorner::kTT, sim::n5Card().nominalVdd,
                          27.0};
  const core::SizingProblem problem = ico.makeProblem({tt}, ico.defaultSpecs());
  const core::ValueFunction value(problem.measurementNames, problem.specs);

  std::printf("\n==== Table V: ICO on n5 (space 20^4) ====\n");
  std::printf("%-28s %12s %14s %12s %8s\n", "agent", "iterations",
              "phase noise", "freq GHz", "status");
  std::printf("%-28s %12s %14s %12s\n", "Specification", "-", "< -71 dBc/Hz",
              "> 8 GHz");

  {
    const auto sizes = circuits::Ico::humanReferenceSizing();
    const auto e = ico.evaluate(sizes, tt);
    if (e.ok)
      std::printf("%-28s %12s %14.2f %12.2f %8s\n", "Human", "untraceable",
                  e.measurements[circuits::Ico::kPnoiseDbc],
                  e.measurements[circuits::Ico::kFreqGhz],
                  value.satisfied(e.measurements) ? "meets" : "misses");
  }

  {  // Customized BO — average over a few seeds.
    bench::AgentRow row;
    row.runs = bench::scaled(3);
    double pn = 0.0;
    double f = 0.0;
    std::size_t solvedRuns = 0;
    for (std::size_t r = 0; r < row.runs; ++r) {
      opt::TreeBayesOptConfig cfg;
      cfg.seed = 70 + r;
      opt::TreeBayesOpt bo(problem, cfg);
      const auto out = bo.run(bench::budgetOr(2000));
      row.iterations.push_back(static_cast<double>(out.iterations));
      if (out.solved && !out.bestMeasurements.empty()) {
        ++solvedRuns;
        pn += out.bestMeasurements[circuits::Ico::kPnoiseDbc];
        f += out.bestMeasurements[circuits::Ico::kFreqGhz];
      }
    }
    const auto s = linalg::summarize(row.iterations);
    std::printf("%-28s %12.1f %14.2f %12.2f %7zu/%zu\n", "Customized BO", s.mean,
                solvedRuns ? pn / solvedRuns : 0.0,
                solvedRuns ? f / solvedRuns : 0.0, solvedRuns, row.runs);
  }

  {  // Our method.
    bench::AgentRow row;
    row.runs = bench::scaled(5);
    double pn = 0.0;
    double f = 0.0;
    std::size_t solvedRuns = 0;
    for (std::size_t r = 0; r < row.runs; ++r) {
      core::LocalExplorerConfig cfg;
      cfg.seed = 80 + r;
      core::LocalExplorer agent(
          problem.space, value,
          [&](const linalg::Vector& x) { return problem.evaluate(x, tt); }, cfg);
      const auto out = agent.run(bench::budgetOr(2000));
      row.iterations.push_back(static_cast<double>(out.iterations));
      if (out.solved) {
        ++solvedRuns;
        pn += out.eval.measurements[circuits::Ico::kPnoiseDbc];
        f += out.eval.measurements[circuits::Ico::kFreqGhz];
      }
    }
    const auto s = linalg::summarize(row.iterations);
    std::printf("%-28s %12.1f %14.2f %12.2f %7zu/%zu\n", "Our method", s.mean,
                solvedRuns ? pn / solvedRuns : 0.0,
                solvedRuns ? f / solvedRuns : 0.0, solvedRuns, row.runs);
  }
  return 0;
}
