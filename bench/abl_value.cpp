// Ablation — value engineering (paper IV-D): the naive sum-of-normalized
// value versus the optional second-stage margin bonus used during planning.
#include "bench/bench_util.hpp"
#include "circuits/two_stage_opamp.hpp"
#include "core/local_explorer.hpp"

using namespace trdse;

int main() {
  const sim::ProcessCard& card = sim::bsim45Card();
  const circuits::TwoStageOpamp amp(card);
  const sim::PvtCorner tt{sim::ProcessCorner::kTT, card.nominalVdd, 27.0};
  const core::SizingProblem problem = amp.makeProblem({tt}, amp.defaultSpecs());

  bench::printTableHeader("Ablation: planning value margin bonus",
                          "paper Section IV-D");
  const std::size_t runs = bench::scaled(10);
  const std::size_t cap = bench::budgetOr(10000);
  for (const double bonus : {0.0, 0.02, 0.1, 0.5}) {
    bench::AgentRow row;
    row.name = "margin bonus = " + std::to_string(bonus);
    row.runs = runs;
    for (std::size_t r = 0; r < runs; ++r) {
      core::ValueFunction value(problem.measurementNames, problem.specs);
      value.setMarginBonus(bonus);
      core::LocalExplorerConfig cfg;
      cfg.seed = 7300 + r;
      core::LocalExplorer agent(
          problem.space, value,
          [&](const linalg::Vector& x) { return problem.evaluate(x, tt); }, cfg);
      const auto out = agent.run(cap);
      row.successes += out.solved;
      row.iterations.push_back(static_cast<double>(out.iterations));
    }
    bench::printRow(row);
  }
  return 0;
}
