// Micro-benchmarks (google-benchmark): throughput of the substrates every
// experiment sits on — circuit evaluations, surrogate training, LU solves,
// and the batched-vs-per-sample surrogate scoring path that dominates the
// trust-region planner's inner loop (Algorithm 1 line 10).
#include <benchmark/benchmark.h>

#include <array>
#include <chrono>
#include <random>
#include <thread>

#include "circuits/ico.hpp"
#include "circuits/ldo.hpp"
#include "circuits/registry.hpp"
#include "circuits/two_stage_opamp.hpp"
#include "core/surrogate.hpp"
#include "eval/eval_engine.hpp"
#include "linalg/lu.hpp"
#include "nn/loss.hpp"
#include "nn/optimizer.hpp"
#include "orch/distributed.hpp"
#include "orch/scheduler.hpp"
#include "orch/wire.hpp"
#include "pvt/corners.hpp"
#include "rl/ppo.hpp"
#include "rl/trpo.hpp"
#include "sim/dc.hpp"
#include "sim/netlist.hpp"
#include "sim/op_batch.hpp"
#include "sim/process.hpp"

using namespace trdse;

namespace {

void BM_OpampEval(benchmark::State& state) {
  const circuits::TwoStageOpamp amp(sim::bsim45Card());
  const auto space = circuits::TwoStageOpamp::designSpace(sim::bsim45Card());
  const sim::PvtCorner tt{sim::ProcessCorner::kTT, 1.1, 27.0};
  std::mt19937_64 rng(1);
  const auto x = space.randomPoint(rng);
  for (auto _ : state) benchmark::DoNotOptimize(amp.evaluate(x, tt));
}
BENCHMARK(BM_OpampEval);

void BM_LdoEval(benchmark::State& state) {
  const circuits::Ldo ldo(sim::n6Card());
  const sim::PvtCorner tt{sim::ProcessCorner::kTT, 0.75, 27.0};
  const auto x = circuits::Ldo::humanReferenceSizing();
  for (auto _ : state) benchmark::DoNotOptimize(ldo.evaluate(x, tt));
}
BENCHMARK(BM_LdoEval);

void BM_IcoEvalTransient(benchmark::State& state) {
  const circuits::Ico ico(sim::n5Card());
  const sim::PvtCorner tt{sim::ProcessCorner::kTT, 0.70, 27.0};
  const auto x = circuits::Ico::humanReferenceSizing();
  for (auto _ : state) benchmark::DoNotOptimize(ico.evaluate(x, tt));
}
BENCHMARK(BM_IcoEvalTransient);

void BM_IcoEvalTransientBatched(benchmark::State& state) {
  // One lane-blocked Ico::evaluateBatch call covering a 4-corner block; each
  // slot is bitwise identical to the scalar evaluate() the bench above times.
  // scripts/bench.sh normalizes by the block width, so the recorded per-point
  // time is directly comparable to BM_IcoEvalTransient.
  const circuits::Ico ico(sim::n5Card());
  const auto x = circuits::Ico::humanReferenceSizing();
  const std::array<sim::PvtCorner, sim::kSimLanes> corners = {{
      {sim::ProcessCorner::kTT, 0.70, 27.0},
      {sim::ProcessCorner::kFF, 0.77, -40.0},
      {sim::ProcessCorner::kSS, 0.63, 125.0},
      {sim::ProcessCorner::kSF, 0.70, 85.0},
  }};
  std::array<core::EvalResult, sim::kSimLanes> results;
  std::array<const linalg::Vector*, sim::kSimLanes> slotSizes;
  slotSizes.fill(&x);
  for (auto _ : state) {
    ico.evaluateBatch(slotSizes.data(), corners.data(), results.data(),
                      corners.size());
    benchmark::DoNotOptimize(results.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(corners.size()));
}
BENCHMARK(BM_IcoEvalTransientBatched);

// ---- Batched DC operating point: the lane-blocked Newton kernel ----
//
// Four (corner, sizing) operating points of a small MOS netlist solved one
// at a time vs through a single solveDcBatch call. The batch's lanes are
// bitwise identical to the scalar solves (tests/sim_batch_test.cpp locks
// this), so the pair isolates the amortization of the lockstep Newton /
// lane-blocked LU pipeline.

sim::Netlist dcOpNetlist(const sim::PvtCorner& c, double wScale) {
  const sim::ProcessCard& card = sim::bsim45Card();
  const sim::MosParams nmos =
      sim::applyPvt(card.nmos, sim::MosType::kNmos, c, card.tnomK);
  const sim::MosParams pmos =
      sim::applyPvt(card.pmos, sim::MosType::kPmos, c, card.tnomK);
  sim::Netlist nl;
  nl.tempK = c.tempK();
  const sim::NodeId vdd = nl.node("vdd");
  const sim::NodeId in = nl.node("in");
  const sim::NodeId mid = nl.node("mid");
  const sim::NodeId out = nl.node("out");
  nl.addVSource(vdd, sim::kGround, c.vdd, 0.0);
  nl.addResistor(vdd, in, 10e3);
  nl.addDiode(in, sim::kGround);
  const sim::MosGeometry gn{1e-6 * wScale, card.minL, 1.0};
  const sim::MosGeometry gp{2e-6 * wScale, card.minL, 1.0};
  nl.addMosfet("M1", mid, in, sim::kGround, sim::kGround, sim::MosType::kNmos,
               gn, nmos);
  nl.addMosfet("M2", out, mid, vdd, vdd, sim::MosType::kPmos, gp, pmos);
  nl.addResistor(vdd, mid, 5e3);
  nl.addResistor(out, sim::kGround, 20e3);
  return nl;
}

struct DcOpLanes {
  std::array<sim::Netlist, sim::kSimLanes> nls;
  std::array<linalg::Vector, sim::kSimLanes> guesses;
  std::array<const sim::Netlist*, sim::kSimLanes> nlp{};
  std::array<const linalg::Vector*, sim::kSimLanes> gp{};
  DcOpLanes() {
    const std::array<sim::PvtCorner, sim::kSimLanes> corners = {{
        {sim::ProcessCorner::kTT, 1.1, 27.0},
        {sim::ProcessCorner::kFF, 1.21, -40.0},
        {sim::ProcessCorner::kSS, 0.99, 125.0},
        {sim::ProcessCorner::kSF, 1.1, 85.0},
    }};
    const std::array<double, sim::kSimLanes> wScales = {1.0, 1.7, 0.6, 2.3};
    for (std::size_t l = 0; l < sim::kSimLanes; ++l) {
      nls[l] = dcOpNetlist(corners[l], wScales[l]);
      guesses[l].assign(nls[l].nodeCount(), 0.0);
      nlp[l] = &nls[l];
      gp[l] = &guesses[l];
    }
  }
};

void BM_DcOpScalar(benchmark::State& state) {
  const DcOpLanes lanes;
  for (auto _ : state) {
    for (std::size_t l = 0; l < sim::kSimLanes; ++l)
      benchmark::DoNotOptimize(sim::DcSolver(lanes.nls[l]).solve(lanes.gp[l]));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(sim::kSimLanes));
}
BENCHMARK(BM_DcOpScalar);

void BM_DcOpBatch(benchmark::State& state) {
  const DcOpLanes lanes;
  for (auto _ : state) {
    auto r = sim::solveDcBatch(lanes.nlp, lanes.gp);
    benchmark::DoNotOptimize(r.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(sim::kSimLanes));
}
BENCHMARK(BM_DcOpBatch);

void BM_SurrogateEpoch(benchmark::State& state) {
  std::mt19937_64 rng(2);
  std::uniform_real_distribution<double> d(-1.0, 1.0);
  std::vector<linalg::Vector> xs;
  std::vector<linalg::Vector> ys;
  for (int i = 0; i < 64; ++i) {
    xs.push_back({d(rng), d(rng), d(rng), d(rng), d(rng), d(rng), d(rng), d(rng),
                  d(rng)});
    ys.push_back({d(rng), d(rng), d(rng), d(rng)});
  }
  nn::MlpConfig cfg;
  cfg.layerSizes = {9, 48, 48, 4};
  nn::Mlp net(cfg, 3);
  nn::AdamOptimizer opt(3e-3);
  for (auto _ : state)
    benchmark::DoNotOptimize(nn::trainEpochMse(net, opt, xs, ys, 16, rng));
}
BENCHMARK(BM_SurrogateEpoch);

// ---- Surrogate MC-candidate scoring: the planner's hot path ----
//
// Per TRM step the explorer scores mcSamples = 800 trust-region candidates on
// the NN surrogate. The per-sample baseline calls predict() 800 times (one
// matVec per layer each); the batched path runs the whole block through one
// GEMM per layer. Same math, same results — the ratio of these two benches is
// the planner-throughput speedup.

constexpr std::size_t kPlanDim = 9;    // two-stage opamp sizing dim
constexpr std::size_t kPlanMeas = 4;   // gain/ugbw/pm/power
constexpr std::size_t kPlanBatch = 800;  // paper's mcSamples

core::SpiceSurrogate makeTrainedSurrogate(std::mt19937_64& rng) {
  const core::SurrogateConfig cfg = core::autoConfigure(kPlanDim, kPlanMeas);
  core::SpiceSurrogate sur(kPlanDim, kPlanMeas, cfg, 7);
  std::uniform_real_distribution<double> d(0.0, 1.0);
  for (int i = 0; i < 64; ++i) {
    linalg::Vector x(kPlanDim);
    for (auto& v : x) v = d(rng);
    linalg::Vector y = {x[0] + x[1], x[2] - x[3], x[4] * x[5], x[6]};
    sur.addSample(x, y);
  }
  sur.train(rng);  // fit both scalers so the full transform chain is timed
  return sur;
}

linalg::Matrix makeCandidateBlock(std::mt19937_64& rng) {
  std::uniform_real_distribution<double> d(0.0, 1.0);
  linalg::Matrix block(kPlanBatch, kPlanDim);
  for (std::size_t i = 0; i < block.size(); ++i) block.data()[i] = d(rng);
  return block;
}

void BM_SurrogateScorePerSample(benchmark::State& state) {
  std::mt19937_64 rng(11);
  const core::SpiceSurrogate sur = makeTrainedSurrogate(rng);
  const linalg::Matrix block = makeCandidateBlock(rng);
  linalg::Vector x(kPlanDim);
  for (auto _ : state) {
    double acc = 0.0;
    for (std::size_t s = 0; s < kPlanBatch; ++s) {
      x.assign(block.row(s), block.row(s) + kPlanDim);
      acc += sur.predict(x)[0];
    }
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          kPlanBatch);
}
BENCHMARK(BM_SurrogateScorePerSample);

void BM_SurrogateScoreBatch(benchmark::State& state) {
  std::mt19937_64 rng(11);
  const core::SpiceSurrogate sur = makeTrainedSurrogate(rng);
  const linalg::Matrix block = makeCandidateBlock(rng);
  linalg::Matrix preds;
  for (auto _ : state) {
    sur.predictBatch(block, preds);
    benchmark::DoNotOptimize(preds.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          kPlanBatch);
}
BENCHMARK(BM_SurrogateScoreBatch);

void BM_GemmBatch800(benchmark::State& state) {
  std::mt19937_64 rng(13);
  std::uniform_real_distribution<double> d(-1.0, 1.0);
  linalg::Matrix a(kPlanBatch, 70);
  linalg::Matrix w(70, 70);
  for (std::size_t i = 0; i < a.size(); ++i) a.data()[i] = d(rng);
  for (std::size_t i = 0; i < w.size(); ++i) w.data()[i] = d(rng);
  linalg::Matrix c;
  linalg::Matrix pack;
  for (auto _ : state) {
    linalg::matMulTransBInto(a, w, c, pack);
    benchmark::DoNotOptimize(c.data());
  }
}
BENCHMARK(BM_GemmBatch800);

// ---- Thread-parallel corner sweep: the PVT sign-off hot path ----
//
// One sizing evaluated on all 9 PVT corners through the EvalEngine. Serial
// is the scalar reference dispatch (threads=1, batchedSim off); Pooled fans
// the misses across hardware threads and lets each worker's corner chunk
// fuse in the lane-blocked backend (batchedSim on). Both modes produce
// bitwise-identical results (tests/sim_batch_test.cpp), so the ratio is pure
// dispatch speedup; CI gates Serial/Pooled >= 1.5x via scripts/bench.sh.

void runCornerSweep(benchmark::State& state, std::size_t threads,
                    bool batchedSim) {
  static const core::SizingProblem prob = [] {
    std::vector<sim::PvtCorner> cs;
    for (auto pc : {sim::ProcessCorner::kTT, sim::ProcessCorner::kSS,
                    sim::ProcessCorner::kFF}) {
      for (double vdd : {1.0, 1.1, 1.2}) cs.push_back({pc, vdd, 27.0});
    }
    return circuits::Registry::global().makeProblem("two_stage_opamp",
                                                    std::move(cs));
  }();
  std::mt19937_64 rng(1);
  const auto x = prob.space.randomPoint(rng);
  std::vector<std::size_t> cornerIdx(prob.corners.size());
  for (std::size_t i = 0; i < cornerIdx.size(); ++i) cornerIdx[i] = i;
  // Cache off so every iteration pays for all 9 simulations; ledger off so
  // the timed loop does not grow a block list across iterations.
  eval::EvalEngine engine(prob, {/*cacheEvals=*/false, threads,
                                 /*recordLedger=*/false, batchedSim});
  for (auto _ : state) {
    auto r = engine.evalBatch(cornerIdx, x, pvt::BlockKind::kSearch);
    benchmark::DoNotOptimize(r.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(cornerIdx.size()));
}

void BM_PvtCornerSweepSerial(benchmark::State& state) {
  runCornerSweep(state, /*threads=*/1, /*batchedSim=*/false);
}
BENCHMARK(BM_PvtCornerSweepSerial);

void BM_PvtCornerSweepPooled(benchmark::State& state) {
  runCornerSweep(state, /*threads=*/0, /*batchedSim=*/true);
}
BENCHMARK(BM_PvtCornerSweepPooled);

// ---- Repeated PVT sweep through the eval engine: memoization hot path ----
//
// Progressive PVT search, strategy comparisons, and RL episodes re-evaluate
// the same snapped sizings on the same corners over and over. The engine's
// EvalCache serves those repeats for free: this pair sweeps 4 candidate
// sizings over the 9-corner sign-off set for 8 rounds — uncached pays
// 4*9*8 = 288 simulations per iteration, cached pays the first round's 36
// and serves the remaining 252 from the memo. The ratio is the measured
// blocks-saved speedup recorded in BENCH_micro.json.

void runRepeatedSweep(benchmark::State& state, bool cached) {
  static const core::SizingProblem prob = [] {
    return circuits::Registry::global().makeProblem(
        "two_stage_opamp", pvt::nineCornerSet(sim::bsim45Card().nominalVdd));
  }();
  static const std::vector<linalg::Vector> points = [] {
    std::mt19937_64 rng(17);
    std::vector<linalg::Vector> pts;
    for (int i = 0; i < 4; ++i) pts.push_back(prob.space.randomPoint(rng));
    return pts;
  }();
  std::vector<std::size_t> cornerIdx(prob.corners.size());
  for (std::size_t i = 0; i < cornerIdx.size(); ++i) cornerIdx[i] = i;
  for (auto _ : state) {
    eval::EvalEngine engine(prob, {cached, /*threads=*/1});
    for (int round = 0; round < 8; ++round) {
      for (const auto& p : points) {
        auto r = engine.evalBatch(cornerIdx, p, pvt::BlockKind::kSearch);
        benchmark::DoNotOptimize(r.data());
      }
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 8 *
                          static_cast<std::int64_t>(points.size()) *
                          static_cast<std::int64_t>(cornerIdx.size()));
}

void BM_PvtRepeatedSweepUncached(benchmark::State& state) {
  runRepeatedSweep(state, false);
}
BENCHMARK(BM_PvtRepeatedSweepUncached);

void BM_PvtRepeatedSweepCached(benchmark::State& state) {
  runRepeatedSweep(state, true);
}
BENCHMARK(BM_PvtRepeatedSweepCached);

// ---- RL policy-update epochs: the training half of each search step ----
//
// A synthetic rollout shaped like the two-stage-opamp sizing environment
// (9 heads, obsDim 9 + 2*4) runs through the full PPO epoch schedule and a
// full TRPO natural-gradient update, per-sample vs batched. Parameters and
// optimizer/RNG state are re-seeded every iteration so both variants of a
// pair traverse the same update trajectory (the per-sample/batched parity
// itself is asserted bitwise in tests/rl_batch_test.cpp); the ratio of each
// pair is the pure update-math speedup of the batched engine.

constexpr std::size_t kRlHeads = 9;
constexpr std::size_t kRlObsDim = kRlHeads + 2 * 4;
constexpr std::size_t kRlHidden = 64;

rl::FlatRollout makeSyntheticRollout(std::size_t n, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> d(-1.0, 1.0);
  std::uniform_int_distribution<std::size_t> act(
      0, rl::SizingEnv::kActionsPerHead - 1);
  rl::FlatRollout f;
  f.observations.resize(n, kRlObsDim);
  for (std::size_t i = 0; i < f.observations.size(); ++i)
    f.observations.data()[i] = d(rng);
  f.actions.resize(n);
  for (auto& a : f.actions) {
    a.resize(kRlHeads);
    for (auto& v : a) v = act(rng);
  }
  f.logProbs.resize(n);
  f.advantages.resize(n);
  f.returns.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    f.logProbs[i] = -1.0986 * static_cast<double>(kRlHeads) + 0.1 * d(rng);
    f.advantages[i] = d(rng);
    f.returns[i] = 2.0 * d(rng);
  }
  rl::normalizeAdvantages(f.advantages);
  return f;
}

void runPpoUpdateBench(benchmark::State& state, bool batched) {
  rl::PpoConfig cfg;
  cfg.hidden = kRlHidden;
  const rl::FlatRollout data = makeSyntheticRollout(cfg.horizon, 41);
  nn::Mlp policy = rl::makePolicyNet(kRlObsDim, kRlHeads,
                                     rl::SizingEnv::kActionsPerHead,
                                     cfg.hidden, 43);
  nn::Mlp critic = rl::makeValueNet(kRlObsDim, cfg.hidden, 47);
  const linalg::Vector theta0 = policy.getParameters();
  const linalg::Vector phi0 = critic.getParameters();
  for (auto _ : state) {
    policy.setParameters(theta0);
    critic.setParameters(phi0);
    nn::AdamOptimizer policyOpt(cfg.learningRate);
    nn::AdamOptimizer criticOpt(cfg.valueLearningRate);
    std::mt19937_64 rng(55);
    if (batched) {
      rl::ppoUpdateBatched(policy, critic, policyOpt, criticOpt, data, cfg,
                           rng);
    } else {
      rl::ppoUpdatePerSample(policy, critic, policyOpt, criticOpt, data, cfg,
                             rng);
    }
    benchmark::DoNotOptimize(policy.getParameters().data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(cfg.epochs * data.size()));
}

void BM_PpoUpdatePerSample(benchmark::State& state) {
  runPpoUpdateBench(state, false);
}
BENCHMARK(BM_PpoUpdatePerSample);

void BM_PpoUpdateBatched(benchmark::State& state) {
  runPpoUpdateBench(state, true);
}
BENCHMARK(BM_PpoUpdateBatched);

void runTrpoUpdateBench(benchmark::State& state, bool batched) {
  rl::TrpoConfig cfg;
  cfg.hidden = kRlHidden;
  const rl::FlatRollout data = makeSyntheticRollout(cfg.horizon, 61);
  nn::Mlp policy = rl::makePolicyNet(kRlObsDim, kRlHeads,
                                     rl::SizingEnv::kActionsPerHead,
                                     cfg.hidden, 67);
  nn::Mlp critic = rl::makeValueNet(kRlObsDim, cfg.hidden, 71);
  const linalg::Vector theta0 = policy.getParameters();
  const linalg::Vector phi0 = critic.getParameters();
  for (auto _ : state) {
    policy.setParameters(theta0);
    critic.setParameters(phi0);
    nn::AdamOptimizer criticOpt(cfg.valueLearningRate);
    benchmark::DoNotOptimize(
        rl::trpoUpdate(policy, critic, criticOpt, data, cfg, batched));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(data.size()));
}

void BM_TrpoUpdatePerSample(benchmark::State& state) {
  runTrpoUpdateBench(state, false);
}
BENCHMARK(BM_TrpoUpdatePerSample);

void BM_TrpoUpdateBatched(benchmark::State& state) {
  runTrpoUpdateBench(state, true);
}
BENCHMARK(BM_TrpoUpdateBatched);

// ---- Scheduler throughput: 8 concurrent jobs, shared vs. private cache
// vs. distributed workers ----
//
// Eight random searches sweep the same 2-D subspace of the 45nm opamp (the
// remaining sizes pinned mid-grid), the canonical "many jobs, one circuit"
// orchestrator workload: 9x9 = 81 distinct simulations against 8 x 48
// logical requests. With the shared cache, rounds after the first serve most
// requests from other jobs' published results; the private-cache run pays
// for every job's misses with real opamp evaluations.
//
// Every backend call additionally sleeps kEdaLatency, modeling the dominant
// cost of a real analog flow — the EDA simulator round trip (license,
// netlist elaboration, SPICE run), which is latency, not host CPU. That is
// exactly the regime the distributed scheduler targets: worker processes
// overlap their jobs' simulator waits, so BM_SchedulerThroughputDistributedN
// scales with N even on a single-core runner, just as N simulator seats
// would. The sleep applies identically to the private, shared, and
// distributed variants, so every speedup pair stays apples-to-apples.
constexpr std::chrono::milliseconds kEdaLatency{12};

core::SizingProblem opamp2dSubProblem() {
  core::SizingProblem full =
      circuits::Registry::global().makeProblem("two_stage_opamp");
  std::vector<core::ParamDef> sub = {full.space.param(0), full.space.param(1)};
  sub[0].steps = 9;
  sub[1].steps = 9;
  linalg::Vector pinned(full.space.dim());
  for (std::size_t d = 0; d < full.space.dim(); ++d)
    pinned[d] = full.space.gridValue(d, full.space.param(d).steps / 2);
  core::SizingProblem p;
  p.name = "opamp_2d";
  p.space = core::DesignSpace(std::move(sub));
  p.measurementNames = full.measurementNames;
  p.specs = full.specs;
  p.corners = full.corners;
  p.evaluate = [inner = full.evaluate, pinned](const linalg::Vector& v,
                                               const sim::PvtCorner& c) {
    linalg::Vector x = pinned;
    x[0] = v[0];
    x[1] = v[1];
    std::this_thread::sleep_for(kEdaLatency);  // simulator seat round trip
    return inner(x, c);
  };
  return p;
}

void runSchedulerBench(benchmark::State& state, bool sharedCache,
                       std::size_t workers) {
  const core::SizingProblem base = opamp2dSubProblem();
  constexpr std::size_t kJobs = 8;
  for (auto _ : state) {
    orch::Scenario sc;
    sc.name = "bench";
    sc.threads = 2;  // equal per-process threads across all variants
    sc.slice = 12;
    sc.sharedCache = sharedCache;
    sc.cacheShards = 8;
    sc.workers = workers;
    for (std::size_t j = 0; j < kJobs; ++j) {
      orch::JobSpec spec;
      spec.name = "rs" + std::to_string(j);
      spec.circuit = "opamp_2d";
      spec.makeProblem = [&base] { return base; };
      spec.strategy = "random_search";
      spec.seed = 11 + j;
      spec.budget = 48;
      sc.jobs.push_back(std::move(spec));
    }
    orch::DistributedScheduler scheduler(std::move(sc));
    benchmark::DoNotOptimize(scheduler.run());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kJobs));
}

void BM_SchedulerThroughputPrivate(benchmark::State& state) {
  runSchedulerBench(state, false, 0);
}
BENCHMARK(BM_SchedulerThroughputPrivate);

void BM_SchedulerThroughputShared(benchmark::State& state) {
  runSchedulerBench(state, true, 0);
}
BENCHMARK(BM_SchedulerThroughputShared);

// The same 8-job bakeoff fanned across worker processes (fork + checkpoint
// wire frames). Outcomes are bitwise identical to the in-process runs above
// (orch_dist_test holds them to it); the wall-clock win is overlapped
// simulator latency.
void BM_SchedulerThroughputDistributed1(benchmark::State& state) {
  runSchedulerBench(state, true, 1);
}
BENCHMARK(BM_SchedulerThroughputDistributed1);

void BM_SchedulerThroughputDistributed2(benchmark::State& state) {
  runSchedulerBench(state, true, 2);
}
BENCHMARK(BM_SchedulerThroughputDistributed2);

void BM_SchedulerThroughputDistributed4(benchmark::State& state) {
  runSchedulerBench(state, true, 4);
}
BENCHMARK(BM_SchedulerThroughputDistributed4);

// One representative round-result frame (the hot message of a distributed
// round: 12 publishes with 6 measurements each, stats, a strategy blob)
// encoded and decoded back — the per-round serialization overhead a worker
// adds on top of the raw socketpair write.
void BM_WireRoundTrip(benchmark::State& state) {
  orch::wire::JobRoundReport rep;
  rep.jobIndex = 3;
  rep.iterations = 48;
  rep.stats.requests = 48;
  rep.stats.simulated = 12;
  rep.stats.cacheHits = 20;
  rep.stats.sharedHits = 16;
  rep.stats.attempts = 48;
  for (std::size_t i = 0; i < 12; ++i) {
    orch::wire::PublishEntry e;
    e.key = {{i, i + 1}, i % 3};
    e.result.ok = true;
    e.result.measurements = {1.0, 2.5, -3.25, 4.0, 5.5, -6.75};
    rep.publishes.push_back(std::move(e));
  }
  rep.strategyBlob.assign(512, 'x');

  for (auto _ : state) {
    io::CheckpointWriter msg = orch::wire::makeMessage(
        orch::wire::kMsgRoundResult);
    msg.section("round").u64(7);
    orch::wire::writeJobRoundReport(msg.section("jobs"), rep);
    const std::string frame = orch::wire::encodeFrame(msg);
    const io::CheckpointReader reader =
        orch::wire::decodeFrame(frame.substr(8), "bench");
    io::SectionReader r = reader.section("jobs");
    benchmark::DoNotOptimize(orch::wire::readJobRoundReport(r));
  }
}
BENCHMARK(BM_WireRoundTrip);

void BM_LuSolve16(benchmark::State& state) {
  std::mt19937_64 rng(4);
  std::uniform_real_distribution<double> d(-1.0, 1.0);
  linalg::Matrix a(16, 16);
  for (std::size_t r = 0; r < 16; ++r) {
    for (std::size_t c = 0; c < 16; ++c) a(r, c) = d(rng);
    a(r, r) += 4.0;
  }
  linalg::Vector b(16, 1.0);
  for (auto _ : state)
    benchmark::DoNotOptimize(linalg::LuSolver<double>::solveSystem(a, b));
}
BENCHMARK(BM_LuSolve16);

}  // namespace

BENCHMARK_MAIN();
