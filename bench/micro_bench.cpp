// Micro-benchmarks (google-benchmark): throughput of the substrates every
// experiment sits on — circuit evaluations, surrogate training, LU solves.
#include <benchmark/benchmark.h>

#include <random>

#include "circuits/ico.hpp"
#include "circuits/ldo.hpp"
#include "circuits/two_stage_opamp.hpp"
#include "linalg/lu.hpp"
#include "nn/loss.hpp"
#include "nn/optimizer.hpp"

using namespace trdse;

namespace {

void BM_OpampEval(benchmark::State& state) {
  const circuits::TwoStageOpamp amp(sim::bsim45Card());
  const auto space = circuits::TwoStageOpamp::designSpace(sim::bsim45Card());
  const sim::PvtCorner tt{sim::ProcessCorner::kTT, 1.1, 27.0};
  std::mt19937_64 rng(1);
  const auto x = space.randomPoint(rng);
  for (auto _ : state) benchmark::DoNotOptimize(amp.evaluate(x, tt));
}
BENCHMARK(BM_OpampEval);

void BM_LdoEval(benchmark::State& state) {
  const circuits::Ldo ldo(sim::n6Card());
  const sim::PvtCorner tt{sim::ProcessCorner::kTT, 0.75, 27.0};
  const auto x = circuits::Ldo::humanReferenceSizing();
  for (auto _ : state) benchmark::DoNotOptimize(ldo.evaluate(x, tt));
}
BENCHMARK(BM_LdoEval);

void BM_IcoEvalTransient(benchmark::State& state) {
  const circuits::Ico ico(sim::n5Card());
  const sim::PvtCorner tt{sim::ProcessCorner::kTT, 0.70, 27.0};
  const auto x = circuits::Ico::humanReferenceSizing();
  for (auto _ : state) benchmark::DoNotOptimize(ico.evaluate(x, tt));
}
BENCHMARK(BM_IcoEvalTransient);

void BM_SurrogateEpoch(benchmark::State& state) {
  std::mt19937_64 rng(2);
  std::uniform_real_distribution<double> d(-1.0, 1.0);
  std::vector<linalg::Vector> xs;
  std::vector<linalg::Vector> ys;
  for (int i = 0; i < 64; ++i) {
    xs.push_back({d(rng), d(rng), d(rng), d(rng), d(rng), d(rng), d(rng), d(rng),
                  d(rng)});
    ys.push_back({d(rng), d(rng), d(rng), d(rng)});
  }
  nn::MlpConfig cfg;
  cfg.layerSizes = {9, 48, 48, 4};
  nn::Mlp net(cfg, 3);
  nn::AdamOptimizer opt(3e-3);
  for (auto _ : state)
    benchmark::DoNotOptimize(nn::trainEpochMse(net, opt, xs, ys, 16, rng));
}
BENCHMARK(BM_SurrogateEpoch);

void BM_LuSolve16(benchmark::State& state) {
  std::mt19937_64 rng(4);
  std::uniform_real_distribution<double> d(-1.0, 1.0);
  linalg::Matrix a(16, 16);
  for (std::size_t r = 0; r < 16; ++r) {
    for (std::size_t c = 0; c < 16; ++c) a(r, c) = d(rng);
    a(r, r) += 4.0;
  }
  linalg::Vector b(16, 1.0);
  for (auto _ : state)
    benchmark::DoNotOptimize(linalg::LuSolver<double>::solveSystem(a, b));
}
BENCHMARK(BM_LuSolve16);

}  // namespace

BENCHMARK_MAIN();
