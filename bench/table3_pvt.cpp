// Table III — PVT exploration strategies on the BSIM 22nm two-stage opamp
// over a 9-condition sign-off set.
//
// Paper rows (avg / min / max steps, one step = one EDA simulation):
//   Random search            failed (10000+)
//   Brute force (all cond.)  359.4 /  36 / 1305
//   Progressive (random)      89.52 /  20 /  450
//   Progressive (hardest)     72.60 /  15 /  279
#include "bench/bench_util.hpp"
#include "circuits/registry.hpp"
#include "core/pvt_search.hpp"
#include "core/sizing_api.hpp"
#include "opt/random_search.hpp"
#include "pvt/corners.hpp"

using namespace trdse;

int main() {
  const auto corners = pvt::nineCornerSet(sim::bsim22Card().nominalVdd);
  const core::SizingProblem problem =
      circuits::Registry::global().makeProblem("two_stage_opamp", corners,
                                               "bsim22");
  const std::size_t cap = bench::budgetOr(10000);

  bench::printTableHeader("Table III: PVT exploration strategies (22nm, 9 corners)",
                          "paper Table III / Fig. 3");

  {  // Random search: evaluates corners sequentially per sample.
    bench::AgentRow row;
    row.name = "Random search";
    row.runs = bench::scaled(3);
    for (std::size_t r = 0; r < row.runs; ++r) {
      opt::RandomSearch rs(problem, 2000 + r);
      const auto out = rs.run(cap);
      row.successes += out.solved;
      row.iterations.push_back(static_cast<double>(out.iterations));
    }
    bench::printRow(row);
  }

  const core::PvtStrategy strategies[] = {core::PvtStrategy::kBruteForce,
                                          core::PvtStrategy::kProgressiveRandom,
                                          core::PvtStrategy::kProgressiveHardest};
  for (const auto strategy : strategies) {
    bench::AgentRow row;
    row.name = std::string(toString(strategy));
    row.runs = bench::scaled(10);
    for (std::size_t r = 0; r < row.runs; ++r) {
      core::PvtSearchConfig cfg;
      cfg.strategy = strategy;
      cfg.seed = 3000 + 17 * r;
      // Paper accounting: every EDA block is a real simulation. The seeded
      // trajectory (and the totalSims reported below) is bitwise identical
      // with the cache on; turning it off only pins blocks == simulations.
      cfg.cacheEvals = false;
      cfg.explorer = core::autoSchedule(problem, cfg.seed);
      core::PvtSearch search(problem, cfg);
      const auto out = search.run(cap);
      row.successes += out.solved;
      row.iterations.push_back(static_cast<double>(out.totalSims));
    }
    bench::printRow(row);
  }
  return 0;
}
