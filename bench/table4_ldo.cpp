// Table IV — LDO sizing on the synthetic n6 advanced node (multi-corner).
//
// Paper rows:                 # iterations   loop gain   area
//   Specification                       -     > 40 dB    < 650
//   Human                     untraceable      38.0 dB     650
//   Customized BO                  failed      38.2 dB     604
//   Our method                       2609      40.0 dB     632
//
// Our substrate's loop gains live around 100 dB rather than 40 (see
// EXPERIMENTS.md), so the spec is calibrated to sit the same ~2 dB above the
// human reference; the shape — human just under spec, BO close-but-failing,
// the agent meeting spec with smaller area — is the reproduction target.
#include "bench/bench_util.hpp"
#include "circuits/ldo.hpp"
#include "core/pvt_search.hpp"
#include "core/sizing_api.hpp"
#include "opt/tree_bayes_opt.hpp"

using namespace trdse;

int main() {
  const circuits::Ldo ldo(sim::n6Card());
  const std::vector<sim::PvtCorner> corners = {
      {sim::ProcessCorner::kTT, 0.75, 27.0},
      {sim::ProcessCorner::kSS, 0.70, 125.0},
      {sim::ProcessCorner::kFF, 0.80, -40.0},
  };
  const core::SizingProblem problem = ldo.makeProblem(corners, ldo.defaultSpecs());
  const core::ValueFunction value(problem.measurementNames, problem.specs);

  std::printf("\n==== Table IV: LDO on n6 (space 10^%.1f, %zu corners) ====\n",
              problem.space.sizeLog10(), corners.size());
  std::printf("%-28s %12s %12s %10s %10s\n", "agent", "iterations",
              "loop gain dB", "area au", "status");

  double specGain = 0.0;
  double specArea = 0.0;
  for (const auto& s : problem.specs) {
    if (s.measurement == "loop_gain_db") specGain = s.limit;
    if (s.measurement == "area_au") specArea = s.limit;
  }
  std::printf("%-28s %12s %12.1f %10.0f %10s\n", "Specification", "-", specGain,
              specArea, ">=, <=");

  {  // Human reference: evaluated at the worst corner for honesty.
    const auto sizes = circuits::Ldo::humanReferenceSizing();
    double worstGain = 1e18;
    bool allOk = true;
    for (const auto& c : corners) {
      const auto e = ldo.evaluate(sizes, c);
      if (!e.ok) {
        allOk = false;
        break;
      }
      worstGain = std::min(worstGain, e.measurements[circuits::Ldo::kLoopGainDb]);
    }
    std::printf("%-28s %12s %12.1f %10.1f %10s\n", "Human", "untraceable",
                allOk ? worstGain : 0.0, ldo.area(sizes),
                allOk && worstGain >= specGain ? "meets" : "misses gain");
  }

  {  // Customized BO.
    opt::TreeBayesOptConfig cfg;
    cfg.seed = 11;
    opt::TreeBayesOpt bo(problem, cfg);
    const auto out = bo.run(bench::budgetOr(6000));
    const double gain = out.bestMeasurements.empty()
                            ? 0.0
                            : out.bestMeasurements[circuits::Ldo::kLoopGainDb];
    std::printf("%-28s %12zu %12.1f %10.1f %10s\n", "Customized BO",
                out.iterations, gain,
                out.sizes.empty() ? 0.0 : ldo.area(out.sizes),
                out.solved ? "solved" : "failed");
  }

  {  // Our method (progressive PVT trust-region search).
    core::PvtSearchConfig cfg;
    cfg.seed = 5;
    cfg.strategy = core::PvtStrategy::kProgressiveHardest;
    cfg.explorer = core::autoSchedule(problem, cfg.seed);
    core::PvtSearch search(problem, cfg);
    const auto out = search.run(bench::budgetOr(20000));
    double worstGain = 1e18;
    for (const auto& e : out.cornerEvals)
      if (e.ok)
        worstGain = std::min(worstGain, e.measurements[circuits::Ldo::kLoopGainDb]);
    std::printf("%-28s %12zu %12.1f %10.1f %10s\n", "Our method", out.totalSims,
                out.solved ? worstGain : 0.0,
                out.sizes.empty() ? 0.0 : ldo.area(out.sizes),
                out.solved ? "solved" : "failed");
  }
  return 0;
}
