// Table II — process porting from BSIM 45nm to BSIM 22nm.
//
// Paper rows (avg / min / max steps on the 22nm target):
//   baseline (random weights, random starting points)  50.17 / 15 / 191
//   weight sharing + starting point sharing            29.22 /  3 / 310
//   random weights + starting point sharing            20.74 /  2 /  88
//
// Shape to reproduce: optimal points transfer well; network weights do not
// (distinct process distributions) — start sharing alone wins.
#include "bench/bench_util.hpp"
#include "circuits/two_stage_opamp.hpp"
#include "core/local_explorer.hpp"

using namespace trdse;

int main() {
  const circuits::TwoStageOpamp amp45(sim::bsim45Card());
  const auto space45 = circuits::TwoStageOpamp::designSpace(sim::bsim45Card());
  const sim::PvtCorner tt45{sim::ProcessCorner::kTT,
                            sim::bsim45Card().nominalVdd, 27.0};
  const core::ValueFunction value45(circuits::TwoStageOpamp::measurementNames(),
                                    amp45.defaultSpecs());

  // One donor search on 45nm provides the shared weights + starting point.
  core::LocalExplorerConfig donorCfg;
  donorCfg.seed = 42;
  core::LocalExplorer donor(
      space45, value45,
      [&](const linalg::Vector& x) { return amp45.evaluate(x, tt45); },
      donorCfg);
  const auto donorOut = donor.run(bench::budgetOr(10000));
  if (!donorOut.solved) {
    std::printf("table2: donor search failed; aborting\n");
    return 1;
  }
  std::printf("45nm donor solved in %zu iterations\n", donorOut.iterations);

  const circuits::TwoStageOpamp amp22(sim::bsim22Card());
  const auto space22 = circuits::TwoStageOpamp::designSpace(sim::bsim22Card());
  const sim::PvtCorner tt22{sim::ProcessCorner::kTT,
                            sim::bsim22Card().nominalVdd, 27.0};
  const core::ValueFunction value22(circuits::TwoStageOpamp::measurementNames(),
                                    amp22.defaultSpecs());

  bench::printTableHeader("Table II: process porting 45nm -> 22nm",
                          "paper Table II");
  struct Strategy {
    const char* name;
    bool shareWeights;
    bool shareStart;
  };
  const Strategy strategies[] = {
      {"baseline (random weights, random start)", false, false},
      {"weight sharing + starting point sharing", true, true},
      {"random weights + starting point sharing", false, true},
  };
  const std::size_t runs = bench::scaled(20);
  for (const auto& s : strategies) {
    bench::AgentRow row;
    row.name = s.name;
    row.runs = runs;
    for (std::size_t r = 0; r < runs; ++r) {
      core::LocalExplorerConfig cfg;
      cfg.seed = 1000 + r;
      if (s.shareStart) cfg.startingPoint = donorOut.sizes;
      if (s.shareWeights) cfg.warmStartWeights = &donor.surrogate().network();
      core::LocalExplorer agent(
          space22, value22,
          [&](const linalg::Vector& x) { return amp22.evaluate(x, tt22); }, cfg);
      const auto out = agent.run(bench::budgetOr(10000));
      row.successes += out.solved;
      row.iterations.push_back(static_cast<double>(out.iterations));
    }
    bench::printRow(row);
  }
  return 0;
}
