// Table I — performance of agents on the 45nm two-stage opamp, single PVT,
// 10k-simulation cap per run.
//
// Paper rows:   success    avg iterations
//   Random search   100%      8565
//   Customized BO   100%       330
//   A2C              90%     34797
//   PPO              40%     31503
//   TRPO             20%     16350
//   Our method      100%        36
//
// Model-free rows exceed the cap in the paper too (they are trained across
// episodes); here a run that fails within the cap reports the cap.
#include "bench/bench_util.hpp"
#include "circuits/two_stage_opamp.hpp"
#include "core/local_explorer.hpp"
#include "opt/random_search.hpp"
#include "opt/tree_bayes_opt.hpp"
#include "rl/a2c.hpp"
#include "rl/ppo.hpp"
#include "rl/trpo.hpp"

using namespace trdse;

int main() {
  const sim::ProcessCard& card = sim::bsim45Card();
  const circuits::TwoStageOpamp amp(card);
  const sim::PvtCorner tt{sim::ProcessCorner::kTT, card.nominalVdd, 27.0};
  const core::SizingProblem problem = amp.makeProblem({tt}, amp.defaultSpecs());
  const core::ValueFunction value(problem.measurementNames, problem.specs);
  const std::size_t cap = bench::budgetOr(10000);

  bench::printTableHeader("Table I: 45nm two-stage opamp, single PVT",
                          "paper Table I");

  {  // Random search (paper: strong baseline).
    bench::AgentRow row;
    row.name = "Random search";
    row.runs = bench::scaled(4);
    for (std::size_t r = 0; r < row.runs; ++r) {
      opt::RandomSearch rs(problem, 100 + r);
      const auto out = rs.run(cap);
      row.successes += out.solved;
      row.iterations.push_back(static_cast<double>(out.iterations));
    }
    bench::printRow(row);
  }

  {  // Customized BO (extra-trees + dynamic explore/exploit).
    bench::AgentRow row;
    row.name = "Customized BO (extra-trees)";
    row.runs = bench::scaled(6);
    for (std::size_t r = 0; r < row.runs; ++r) {
      opt::TreeBayesOptConfig cfg;
      cfg.seed = 200 + r;
      opt::TreeBayesOpt bo(problem, cfg);
      const auto out = bo.run(cap);
      row.successes += out.solved;
      row.iterations.push_back(static_cast<double>(out.iterations));
    }
    bench::printRow(row);
  }

  {  // A2C
    bench::AgentRow row;
    row.name = "A2C (AutoCkt-style env)";
    row.runs = bench::scaled(3);
    for (std::size_t r = 0; r < row.runs; ++r) {
      rl::A2cConfig cfg;
      cfg.seed = 300 + r;
      const auto out = rl::trainA2c(problem, cfg, cap);
      row.successes += out.solved;
      row.iterations.push_back(static_cast<double>(out.simulationsToSolve));
    }
    bench::printRow(row);
  }

  {  // PPO
    bench::AgentRow row;
    row.name = "PPO (AutoCkt-style env)";
    row.runs = bench::scaled(3);
    for (std::size_t r = 0; r < row.runs; ++r) {
      rl::PpoConfig cfg;
      cfg.seed = 400 + r;
      const auto out = rl::trainPpo(problem, cfg, cap);
      row.successes += out.solved;
      row.iterations.push_back(static_cast<double>(out.simulationsToSolve));
    }
    bench::printRow(row);
  }

  {  // TRPO
    bench::AgentRow row;
    row.name = "TRPO (AutoCkt-style env)";
    row.runs = bench::scaled(3);
    for (std::size_t r = 0; r < row.runs; ++r) {
      rl::TrpoConfig cfg;
      cfg.seed = 500 + r;
      const auto out = rl::trainTrpo(problem, cfg, cap);
      row.successes += out.solved;
      row.iterations.push_back(static_cast<double>(out.simulationsToSolve));
    }
    bench::printRow(row);
  }

  {  // Our method: trust-region model-based agent.
    bench::AgentRow row;
    row.name = "Our method (trust-region model-based)";
    row.runs = bench::scaled(20);
    for (std::size_t r = 0; r < row.runs; ++r) {
      core::LocalExplorerConfig cfg;
      cfg.seed = 600 + r;
      core::LocalExplorer agent(
          problem.space, value,
          [&](const linalg::Vector& x) { return problem.evaluate(x, tt); }, cfg);
      const auto out = agent.run(cap);
      row.successes += out.solved;
      row.iterations.push_back(static_cast<double>(out.iterations));
    }
    bench::printRow(row);
  }
  return 0;
}
