// Ablation — surrogate capacity (paper IV-B claims a simple 3-layer
// feed-forward network suffices as the SPICE approximator; this sweeps depth
// and width).
#include "bench/bench_util.hpp"
#include "circuits/two_stage_opamp.hpp"
#include "core/local_explorer.hpp"

using namespace trdse;

int main() {
  const sim::ProcessCard& card = sim::bsim45Card();
  const circuits::TwoStageOpamp amp(card);
  const sim::PvtCorner tt{sim::ProcessCorner::kTT, card.nominalVdd, 27.0};
  const core::SizingProblem problem = amp.makeProblem({tt}, amp.defaultSpecs());
  const core::ValueFunction value(problem.measurementNames, problem.specs);

  bench::printTableHeader("Ablation: surrogate depth x width",
                          "paper Section IV-B / Eq. 3");
  struct Variant {
    std::size_t layers;
    std::size_t width;
  };
  const Variant variants[] = {{1, 16}, {1, 48}, {2, 16}, {2, 48}, {2, 96}, {3, 48}};
  const std::size_t runs = bench::scaled(8);
  const std::size_t cap = bench::budgetOr(10000);
  for (const auto& v : variants) {
    bench::AgentRow row;
    row.name = std::to_string(v.layers) + " hidden x " + std::to_string(v.width);
    row.runs = runs;
    for (std::size_t r = 0; r < runs; ++r) {
      core::LocalExplorerConfig cfg;
      cfg.seed = 7200 + r;
      cfg.surrogate.hiddenLayers = v.layers;
      cfg.surrogate.hiddenWidth = v.width;
      core::LocalExplorer agent(
          problem.space, value,
          [&](const linalg::Vector& x) { return problem.evaluate(x, tt); }, cfg);
      const auto out = agent.run(cap);
      row.successes += out.solved;
      row.iterations.push_back(static_cast<double>(out.iterations));
    }
    bench::printRow(row);
  }
  return 0;
}
