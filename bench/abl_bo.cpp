// Ablation — BO surrogate scalability (paper Section II: "the scalability
// addressed is the cubical increment of the number of samples"): wall-clock
// of fit + 100 predictions for the GP versus the extra-trees forest as the
// observation count grows, plus end-to-end search quality at a small budget.
#include <chrono>
#include <random>

#include "bench/bench_util.hpp"
#include "circuits/two_stage_opamp.hpp"
#include "opt/gaussian_process.hpp"
#include "opt/tree_bayes_opt.hpp"

using namespace trdse;

namespace {

double msSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

int main() {
  std::printf("\n==== Ablation: GP vs extra-trees surrogate scaling ====\n");
  std::printf("%-10s %16s %16s\n", "samples", "GP fit+100q [ms]",
              "forest fit+100q [ms]");
  std::mt19937_64 rng(3);
  std::uniform_real_distribution<double> unif(0.0, 1.0);
  const std::size_t dim = 9;
  std::vector<linalg::Vector> xs;
  std::vector<double> ys;
  for (const std::size_t n : {100u, 300u, 1000u, 3000u}) {
    while (xs.size() < n) {
      linalg::Vector x(dim);
      for (auto& v : x) v = unif(rng);
      double y = 0.0;
      for (double v : x) y += std::sin(3.0 * v);
      xs.push_back(std::move(x));
      ys.push_back(y);
    }
    linalg::Vector q(dim, 0.5);

    const auto t0 = std::chrono::steady_clock::now();
    opt::GaussianProcess gp;
    gp.fit(xs, ys);
    for (int i = 0; i < 100; ++i) (void)gp.predict(q);
    const double gpMs = msSince(t0);

    const auto t1 = std::chrono::steady_clock::now();
    opt::ExtraTreesRegressor forest;
    forest.fit(xs, ys, 1);
    for (int i = 0; i < 100; ++i) (void)forest.predict(q);
    const double etMs = msSince(t1);

    std::printf("%-10zu %16.1f %16.1f\n", n, gpMs, etMs);
  }

  std::printf("\naccuracy sanity (same data, 200 held-out points):\n");
  {
    std::vector<linalg::Vector> testX;
    std::vector<double> testY;
    for (int i = 0; i < 200; ++i) {
      linalg::Vector x(dim);
      for (auto& v : x) v = unif(rng);
      double y = 0.0;
      for (double v : x) y += std::sin(3.0 * v);
      testX.push_back(std::move(x));
      testY.push_back(y);
    }
    opt::GaussianProcess gp;
    gp.fit(xs, ys);
    opt::ExtraTreesRegressor forest;
    forest.fit(xs, ys, 1);
    double gpErr = 0.0;
    double etErr = 0.0;
    for (std::size_t i = 0; i < testX.size(); ++i) {
      gpErr += std::abs(gp.predict(testX[i]).mean - testY[i]);
      etErr += std::abs(forest.predict(testX[i]).mean - testY[i]);
    }
    std::printf("  GP MAE=%.3f  forest MAE=%.3f (n=%zu)\n",
                gpErr / testX.size(), etErr / testX.size(), xs.size());
  }
  return 0;
}
