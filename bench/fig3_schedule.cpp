// Fig. 3 — progressive PVT exploration schedule.
//
// The paper's figure shows, per strategy, which PVT condition occupies each
// EDA-time block (search on the focus corner(s), periodic verify sweeps of
// the rest, failing corners joining the pool). This bench re-renders that
// timeline as ASCII from the actual ledger of a run, for brute force and
// both progressive variants.
#include "bench/bench_util.hpp"
#include "circuits/two_stage_opamp.hpp"
#include "core/pvt_search.hpp"
#include "core/sizing_api.hpp"
#include "pvt/corners.hpp"

using namespace trdse;

int main() {
  const sim::ProcessCard& card = sim::bsim22Card();
  const circuits::TwoStageOpamp amp(card);
  const auto corners = pvt::nineCornerSet(card.nominalVdd);
  const core::SizingProblem problem = amp.makeProblem(corners, amp.defaultSpecs());

  std::printf("\n==== Fig. 3: progressive PVT exploration timeline ====\n");
  std::printf("corners:\n");
  for (std::size_t i = 0; i < corners.size(); ++i)
    std::printf("  PVT%zu = %s\n", i + 1, corners[i].name().c_str());

  const core::PvtStrategy strategies[] = {core::PvtStrategy::kBruteForce,
                                          core::PvtStrategy::kProgressiveRandom,
                                          core::PvtStrategy::kProgressiveHardest};
  for (const auto strategy : strategies) {
    core::PvtSearchConfig cfg;
    cfg.strategy = strategy;
    cfg.seed = 9;
    cfg.explorer = core::autoSchedule(problem, cfg.seed);
    core::PvtSearch search(problem, cfg);
    const auto out = search.run(bench::budgetOr(10000));
    std::printf("\n-- %s: solved=%d, %zu EDA blocks (%zu search / %zu verify), "
                "%zu corners activated --\n",
                std::string(toString(strategy)).c_str(), int(out.solved),
                out.ledger.totalBlocks(), out.ledger.searchBlocks(),
                out.ledger.verifyBlocks(), out.cornersActivated);
    std::printf("%s", out.ledger.renderTimeline(corners.size()).c_str());
  }
  return 0;
}
