// Shared plumbing for the experiment-reproduction benches: repetition
// control, row formatting, and the success/iteration summaries every paper
// table reports.
//
// Every bench honours two environment variables:
//   TRDSE_BENCH_SCALE  multiply all repetition counts (default 1; the paper's
//                      full 100-run protocol is SCALE ~= 5-10)
//   TRDSE_BENCH_BUDGET override the per-run simulation cap (default: table-
//                      specific, usually the paper's 10k)
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "linalg/stats.hpp"

namespace trdse::bench {

inline std::size_t scaled(std::size_t base) {
  const char* s = std::getenv("TRDSE_BENCH_SCALE");
  if (s == nullptr) return base;
  const double f = std::atof(s);
  if (f <= 0.0) return base;
  const auto n = static_cast<std::size_t>(base * f);
  return n == 0 ? 1 : n;
}

inline std::size_t budgetOr(std::size_t fallback) {
  const char* s = std::getenv("TRDSE_BENCH_BUDGET");
  if (s == nullptr) return fallback;
  const std::size_t v = std::strtoull(s, nullptr, 10);
  return v == 0 ? fallback : v;
}

/// Success-rate + iteration statistics for one agent row.
struct AgentRow {
  std::string name;
  std::size_t runs = 0;
  std::size_t successes = 0;
  std::vector<double> iterations;  ///< per-run simulations (cap when failed)

  double successRate() const {
    return runs == 0 ? 0.0
                     : 100.0 * static_cast<double>(successes) /
                           static_cast<double>(runs);
  }
};

inline void printTableHeader(const char* title, const char* paperRef) {
  std::printf("\n==== %s ====\n(reproduces %s; see EXPERIMENTS.md for the "
              "paper-vs-measured discussion)\n",
              title, paperRef);
  std::printf("%-44s %9s %12s %8s %8s %8s\n", "agent/strategy", "success",
              "avg iters", "stddev", "min", "max");
}

inline void printRow(const AgentRow& row) {
  const linalg::Summary s = linalg::summarize(row.iterations);
  std::printf("%-44s %8.0f%% %12.1f %8.1f %8.0f %8.0f\n", row.name.c_str(),
              row.successRate(), s.mean, s.stddev, s.min, s.max);
}

}  // namespace trdse::bench
