// Ablation — Monte Carlo planning sample count m (paper IV-B chose vanilla
// MC sampling for planning speed; this sweeps how many model evaluations per
// TRM step are actually needed).
#include "bench/bench_util.hpp"
#include "circuits/two_stage_opamp.hpp"
#include "core/local_explorer.hpp"

using namespace trdse;

int main() {
  const sim::ProcessCard& card = sim::bsim45Card();
  const circuits::TwoStageOpamp amp(card);
  const sim::PvtCorner tt{sim::ProcessCorner::kTT, card.nominalVdd, 27.0};
  const core::SizingProblem problem = amp.makeProblem({tt}, amp.defaultSpecs());
  const core::ValueFunction value(problem.measurementNames, problem.specs);

  bench::printTableHeader("Ablation: Monte Carlo planning samples m",
                          "paper Section IV-B / Eq. 5");
  const std::size_t runs = bench::scaled(10);
  const std::size_t cap = bench::budgetOr(10000);
  for (const std::size_t m : {50u, 200u, 800u, 2000u}) {
    bench::AgentRow row;
    row.name = "m = " + std::to_string(m);
    row.runs = runs;
    for (std::size_t r = 0; r < runs; ++r) {
      core::LocalExplorerConfig cfg;
      cfg.seed = 7100 + r;
      cfg.mcSamples = m;
      core::LocalExplorer agent(
          problem.space, value,
          [&](const linalg::Vector& x) { return problem.evaluate(x, tt); }, cfg);
      const auto out = agent.run(cap);
      row.successes += out.solved;
      row.iterations.push_back(static_cast<double>(out.iterations));
    }
    bench::printRow(row);
  }
  return 0;
}
