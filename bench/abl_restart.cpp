// Ablation — escape criterion (Algorithm 1 line 15): how aggressively should
// a stagnating local search abandon its region and resample globally?
#include "bench/bench_util.hpp"
#include "circuits/two_stage_opamp.hpp"
#include "core/local_explorer.hpp"

using namespace trdse;

int main() {
  const sim::ProcessCard& card = sim::bsim45Card();
  const circuits::TwoStageOpamp amp(card);
  const sim::PvtCorner tt{sim::ProcessCorner::kTT, card.nominalVdd, 27.0};
  const core::SizingProblem problem = amp.makeProblem({tt}, amp.defaultSpecs());
  const core::ValueFunction value(problem.measurementNames, problem.specs);

  bench::printTableHeader("Ablation: restart / escape criterion",
                          "paper Algorithm 1 line 15");
  const std::size_t runs = bench::scaled(10);
  const std::size_t cap = bench::budgetOr(10000);
  for (const std::size_t patience : {6u, 18u, 40u, 100000u}) {
    bench::AgentRow row;
    row.name = patience > 1000 ? std::string("never (cap only)")
                               : "stagnation patience = " + std::to_string(patience);
    row.runs = runs;
    for (std::size_t r = 0; r < runs; ++r) {
      core::LocalExplorerConfig cfg;
      cfg.seed = 7400 + r;
      cfg.stagnationPatience = patience;
      core::LocalExplorer agent(
          problem.space, value,
          [&](const linalg::Vector& x) { return problem.evaluate(x, tt); }, cfg);
      const auto out = agent.run(cap);
      row.successes += out.solved;
      row.iterations.push_back(static_cast<double>(out.iterations));
    }
    bench::printRow(row);
  }
  return 0;
}
