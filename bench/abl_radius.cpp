// Ablation — trust-region adaptivity (paper Section IV-C's central claim:
// "the transition of search space size ... is the key factor"; a statically
// fixed local region should lose to the TRM-updated radius).
#include "bench/bench_util.hpp"
#include "circuits/two_stage_opamp.hpp"
#include "core/local_explorer.hpp"

using namespace trdse;

int main() {
  const sim::ProcessCard& card = sim::bsim45Card();
  const circuits::TwoStageOpamp amp(card);
  const sim::PvtCorner tt{sim::ProcessCorner::kTT, card.nominalVdd, 27.0};
  const core::SizingProblem problem = amp.makeProblem({tt}, amp.defaultSpecs());
  const core::ValueFunction value(problem.measurementNames, problem.specs);

  bench::printTableHeader("Ablation: adaptive vs fixed trust-region radius",
                          "paper Section IV-C");
  struct Variant {
    std::string name;
    bool adaptive;
    double radius;
  };
  const Variant variants[] = {
      {"TRM adaptive (default)", true, 0.08},
      {"fixed radius 0.03", false, 0.03},
      {"fixed radius 0.08", false, 0.08},
      {"fixed radius 0.20", false, 0.20},
  };
  const std::size_t runs = bench::scaled(10);
  const std::size_t cap = bench::budgetOr(10000);
  for (const auto& v : variants) {
    bench::AgentRow row;
    row.name = v.name;
    row.runs = runs;
    for (std::size_t r = 0; r < runs; ++r) {
      core::LocalExplorerConfig cfg;
      cfg.seed = 7000 + r;
      cfg.trustRegion.adaptive = v.adaptive;
      cfg.trustRegion.initRadius = v.radius;
      core::LocalExplorer agent(
          problem.space, value,
          [&](const linalg::Vector& x) { return problem.evaluate(x, tt); }, cfg);
      const auto out = agent.run(cap);
      row.successes += out.solved;
      row.iterations.push_back(static_cast<double>(out.iterations));
    }
    bench::printRow(row);
  }
  return 0;
}
