#include "pvt/corners.hpp"

#include <algorithm>
#include <cmath>

namespace trdse::pvt {

std::vector<sim::PvtCorner> nineCornerSet(double nominalVdd) {
  return fullFactorial(
      {sim::ProcessCorner::kSS, sim::ProcessCorner::kTT, sim::ProcessCorner::kFF},
      {nominalVdd}, {-40.0, 27.0, 125.0});
}

std::vector<sim::PvtCorner> fullFactorial(
    const std::vector<sim::ProcessCorner>& corners,
    const std::vector<double>& vdds, const std::vector<double>& tempsC) {
  std::vector<sim::PvtCorner> out;
  out.reserve(corners.size() * vdds.size() * tempsC.size());
  for (const auto c : corners)
    for (const double v : vdds)
      for (const double t : tempsC) out.push_back({c, v, t});
  return out;
}

std::vector<std::size_t> heuristicHardestFirst(
    const std::vector<sim::PvtCorner>& corners, double nominalVdd) {
  std::vector<std::size_t> order(corners.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  auto difficulty = [&](const sim::PvtCorner& c) {
    double d = 0.0;
    switch (c.corner) {
      case sim::ProcessCorner::kSS:
        d += 3.0;
        break;
      case sim::ProcessCorner::kSF:
      case sim::ProcessCorner::kFS:
        d += 1.5;
        break;
      case sim::ProcessCorner::kTT:
        d += 0.5;
        break;
      case sim::ProcessCorner::kFF:
        break;
    }
    d += std::max(0.0, (nominalVdd - c.vdd) / nominalVdd) * 4.0;  // low supply
    d += std::abs(c.tempC - 27.0) / 100.0;                        // extremes
    return d;
  };
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return difficulty(corners[a]) > difficulty(corners[b]);
  });
  return order;
}

}  // namespace trdse::pvt
