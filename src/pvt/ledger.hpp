// EDA-time accounting for PVT exploration (paper Fig. 3).
//
// Each SPICE invocation occupies one "EDA time" block (a licence-seat slot in
// the paper's deployment framing). The ledger records which corner consumed
// each block and whether it was a search step or a verification sweep, so the
// Fig. 3 timeline can be re-rendered and strategies compared on equal terms.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace trdse::pvt {

enum class BlockKind : std::uint8_t { kSearch, kVerify };

struct EdaBlock {
  std::size_t cornerIndex = 0;
  BlockKind kind = BlockKind::kSearch;
  bool meetsSpec = false;  ///< did this simulation meet all specs?
  /// Served from the evaluation memo instead of a real simulation: the block
  /// appears in the logical timeline but consumed zero EDA time. The
  /// (cornerIndex, kind, meetsSpec, failed) sequence is identical whether
  /// caching is on or off; only this flag (and the retry counters, which
  /// only re-accrue when a fault is actually re-simulated) differs.
  bool cached = false;
  /// The request exhausted its RetryPolicy without a clean result: the block
  /// occupied the EDA seat (attempts + backoff) but produced no measurement.
  /// Mutually exclusive with `cached` — faults are never served from memos.
  bool failed = false;
  /// Extra backend attempts consumed beyond the first (0 = clean first try).
  std::uint32_t retries = 0;
  /// Deterministic backoff units charged while waiting between attempts.
  std::uint32_t backoff = 0;
};

class EdaLedger {
 public:
  void record(std::size_t cornerIndex, BlockKind kind, bool meetsSpec,
              bool cached = false, bool failed = false,
              std::uint32_t retries = 0, std::uint32_t backoff = 0) {
    blocks_.push_back({cornerIndex, kind, meetsSpec, cached, failed, retries,
                       backoff});
  }

  /// Logical evaluation count (real simulations + cache hits + failures).
  std::size_t totalBlocks() const { return blocks_.size(); }
  std::size_t searchBlocks() const;
  std::size_t verifyBlocks() const;
  /// Blocks served from the cache — EDA time saved by memoization.
  std::size_t cachedBlocks() const;
  /// Blocks that exhausted their retries without a clean result.
  std::size_t failedBlocks() const;
  /// Blocks that ran at least one retry attempt (failed or eventually clean).
  std::size_t retriedBlocks() const;
  /// Total extra attempts summed over every block.
  std::size_t retryAttempts() const;
  /// Total deterministic backoff units charged to the EDA meter.
  std::size_t backoffUnits() const;
  /// Blocks resolved by a clean simulation. The ledger partitions exactly:
  /// totalBlocks() == simulatedBlocks() + cachedBlocks() + failedBlocks().
  std::size_t simulatedBlocks() const {
    return totalBlocks() - cachedBlocks() - failedBlocks();
  }
  const std::vector<EdaBlock>& blocks() const { return blocks_; }

  /// Replace the whole timeline (checkpoint restore).
  void restoreBlocks(std::vector<EdaBlock> blocks) {
    blocks_ = std::move(blocks);
  }

  /// ASCII rendering of the Fig. 3 timeline: one row per corner, one column
  /// per EDA block ('.' idle, 'x' search-fail, 's' search-pass, 'V' verify-
  /// pass, 'v' verify-fail, '!' fault after retry exhaustion). Columns are
  /// grouped to `maxCols`.
  std::string renderTimeline(std::size_t cornerCount,
                             std::size_t maxCols = 100) const;

 private:
  std::vector<EdaBlock> blocks_;
};

}  // namespace trdse::pvt
