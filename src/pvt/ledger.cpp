#include "pvt/ledger.hpp"

#include <algorithm>

namespace trdse::pvt {

std::size_t EdaLedger::searchBlocks() const {
  return static_cast<std::size_t>(
      std::count_if(blocks_.begin(), blocks_.end(),
                    [](const EdaBlock& b) { return b.kind == BlockKind::kSearch; }));
}

std::size_t EdaLedger::verifyBlocks() const {
  return blocks_.size() - searchBlocks();
}

std::size_t EdaLedger::cachedBlocks() const {
  return static_cast<std::size_t>(
      std::count_if(blocks_.begin(), blocks_.end(),
                    [](const EdaBlock& b) { return b.cached; }));
}

std::size_t EdaLedger::failedBlocks() const {
  return static_cast<std::size_t>(
      std::count_if(blocks_.begin(), blocks_.end(),
                    [](const EdaBlock& b) { return b.failed; }));
}

std::size_t EdaLedger::retriedBlocks() const {
  return static_cast<std::size_t>(
      std::count_if(blocks_.begin(), blocks_.end(),
                    [](const EdaBlock& b) { return b.retries > 0; }));
}

std::size_t EdaLedger::retryAttempts() const {
  std::size_t total = 0;
  for (const EdaBlock& b : blocks_) total += b.retries;
  return total;
}

std::size_t EdaLedger::backoffUnits() const {
  std::size_t total = 0;
  for (const EdaBlock& b : blocks_) total += b.backoff;
  return total;
}

std::string EdaLedger::renderTimeline(std::size_t cornerCount,
                                      std::size_t maxCols) const {
  // Bucket blocks into maxCols columns when the run is long.
  const std::size_t n = blocks_.size();
  if (n == 0 || cornerCount == 0) return "(empty ledger)\n";
  const std::size_t cols = std::min(n, maxCols);
  const double perCol = static_cast<double>(n) / static_cast<double>(cols);

  std::vector<std::string> rows(cornerCount, std::string(cols, '.'));
  for (std::size_t i = 0; i < n; ++i) {
    const auto& b = blocks_[i];
    if (b.cornerIndex >= cornerCount) continue;
    const std::size_t col =
        std::min(cols - 1, static_cast<std::size_t>(static_cast<double>(i) / perCol));
    char& cell = rows[b.cornerIndex][col];
    char mark;
    if (b.failed) {
      mark = '!';
    } else if (b.kind == BlockKind::kVerify) {
      mark = b.meetsSpec ? 'V' : 'v';
    } else {
      mark = b.meetsSpec ? 's' : 'x';
    }
    // Verification and fault marks win over search marks inside a bucket.
    if (cell == '.' || mark == 'V' || mark == 'v' || mark == '!') cell = mark;
  }

  std::string out;
  for (std::size_t c = 0; c < cornerCount; ++c) {
    out += "PVT" + std::to_string(c + 1) + (c + 1 < 10 ? " " : "") + " |";
    out += rows[c];
    out += "|\n";
  }
  out += "legend: x search(fail) s search(pass) v verify(fail) V verify(pass) "
         "! fault\n";
  return out;
}

}  // namespace trdse::pvt
