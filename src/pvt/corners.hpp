// PVT corner-set construction (paper Section IV-E).
//
// Sign-off requires a netlist to meet spec under every combination of
// process corner, supply voltage and temperature the chip may see. The
// paper's Fig. 3 experiment uses a 9-condition set; we build it as
// {SS, TT, FF} x {-40C, 27C, 125C} at nominal supply, and provide a general
// full-factorial builder for larger sign-off matrices.
#pragma once

#include <vector>

#include "sim/process.hpp"

namespace trdse::pvt {

/// The 9-corner development set used by Table III / Fig. 3.
std::vector<sim::PvtCorner> nineCornerSet(double nominalVdd);

/// Full factorial: every (corner, vdd, temp) combination, in deterministic
/// corner-major order.
std::vector<sim::PvtCorner> fullFactorial(
    const std::vector<sim::ProcessCorner>& corners,
    const std::vector<double>& vdds, const std::vector<double>& tempsC);

/// Heuristic difficulty ranking a designer would apply before any simulation:
/// slow process, low supply and temperature extremes are presumed hardest.
/// Returns corner indices sorted from hardest to easiest.
std::vector<std::size_t> heuristicHardestFirst(
    const std::vector<sim::PvtCorner>& corners, double nominalVdd);

}  // namespace trdse::pvt
