#pragma once
// Deterministic branchless transcendentals for the simulator device cards.
//
// The operating-point kernels in src/sim need exp/log1p that (a) produce the
// same bit pattern on every platform and glibc version, (b) have no
// data-dependent branches so a scalar call and a lane of a vectorized block
// execute the same instruction sequence, and (c) vectorize well when evaluated
// over AoSoA lane blocks. libm satisfies none of these, so the device cards
// use the pair below. Accuracy is ~3 ulp over the domains the EKV model
// exercises (exp on [-708, 708], log1p on [0, 1e308]); both are monotone.
//
// fastExp follows the classic table-driven reduction: x = k*ln2/128 + r with
// |r| <= ln2/256, exp(x) = 2^(k/128) * exp(r), where 2^(i/128) comes from a
// 128-entry table and the integer part of k folds into the exponent bits.
// fastLog1p splits u = 1+y into 2^k * m with m in [sqrt(1/2), sqrt(2)) and
// evaluates 2*atanh((m-1)/(m+1)) as a Taylor tail; the rounding error of 1+y
// is restored exactly via c = (y - (u-1))/u.

#include <cstdint>
#include <cstring>

#include "core/simd.hpp"

namespace trdse::fastmath {

inline std::uint64_t bitsOf(double x) {
  std::uint64_t u;
  std::memcpy(&u, &x, sizeof(u));
  return u;
}

inline double fromBits(std::uint64_t u) {
  double x;
  std::memcpy(&x, &u, sizeof(x));
  return x;
}

// 2^(i/128) for i = 0..127, exact doubles.
inline constexpr double kExp2Tab[128] = {
    0x1.0000000000000p+0, 0x1.0163da9fb3335p+0, 0x1.02c9a3e778061p+0, 0x1.04315e86e7f85p+0,
    0x1.059b0d3158574p+0, 0x1.0706b29ddf6dep+0, 0x1.0874518759bc8p+0, 0x1.09e3ecac6f383p+0,
    0x1.0b5586cf9890fp+0, 0x1.0cc922b7247f7p+0, 0x1.0e3ec32d3d1a2p+0, 0x1.0fb66affed31bp+0,
    0x1.11301d0125b51p+0, 0x1.12abdc06c31ccp+0, 0x1.1429aaea92de0p+0, 0x1.15a98c8a58e51p+0,
    0x1.172b83c7d517bp+0, 0x1.18af9388c8deap+0, 0x1.1a35beb6fcb75p+0, 0x1.1bbe084045cd4p+0,
    0x1.1d4873168b9aap+0, 0x1.1ed5022fcd91dp+0, 0x1.2063b88628cd6p+0, 0x1.21f49917ddc96p+0,
    0x1.2387a6e756238p+0, 0x1.251ce4fb2a63fp+0, 0x1.26b4565e27cddp+0, 0x1.284dfe1f56381p+0,
    0x1.29e9df51fdee1p+0, 0x1.2b87fd0dad990p+0, 0x1.2d285a6e4030bp+0, 0x1.2ecafa93e2f56p+0,
    0x1.306fe0a31b715p+0, 0x1.32170fc4cd831p+0, 0x1.33c08b26416ffp+0, 0x1.356c55f929ff1p+0,
    0x1.371a7373aa9cbp+0, 0x1.38cae6d05d866p+0, 0x1.3a7db34e59ff7p+0, 0x1.3c32dc313a8e5p+0,
    0x1.3dea64c123422p+0, 0x1.3fa4504ac801cp+0, 0x1.4160a21f72e2ap+0, 0x1.431f5d950a897p+0,
    0x1.44e086061892dp+0, 0x1.46a41ed1d0057p+0, 0x1.486a2b5c13cd0p+0, 0x1.4a32af0d7d3dep+0,
    0x1.4bfdad5362a27p+0, 0x1.4dcb299fddd0dp+0, 0x1.4f9b2769d2ca7p+0, 0x1.516daa2cf6642p+0,
    0x1.5342b569d4f82p+0, 0x1.551a4ca5d920fp+0, 0x1.56f4736b527dap+0, 0x1.58d12d497c7fdp+0,
    0x1.5ab07dd485429p+0, 0x1.5c9268a5946b7p+0, 0x1.5e76f15ad2148p+0, 0x1.605e1b976dc09p+0,
    0x1.6247eb03a5585p+0, 0x1.6434634ccc320p+0, 0x1.6623882552225p+0, 0x1.68155d44ca973p+0,
    0x1.6a09e667f3bcdp+0, 0x1.6c012750bdabfp+0, 0x1.6dfb23c651a2fp+0, 0x1.6ff7df9519484p+0,
    0x1.71f75e8ec5f74p+0, 0x1.73f9a48a58174p+0, 0x1.75feb564267c9p+0, 0x1.780694fde5d3fp+0,
    0x1.7a11473eb0187p+0, 0x1.7c1ed0130c132p+0, 0x1.7e2f336cf4e62p+0, 0x1.80427543e1a12p+0,
    0x1.82589994cce13p+0, 0x1.8471a4623c7adp+0, 0x1.868d99b4492edp+0, 0x1.88ac7d98a6699p+0,
    0x1.8ace5422aa0dbp+0, 0x1.8cf3216b5448cp+0, 0x1.8f1ae99157736p+0, 0x1.9145b0b91ffc6p+0,
    0x1.93737b0cdc5e5p+0, 0x1.95a44cbc8520fp+0, 0x1.97d829fde4e50p+0, 0x1.9a0f170ca07bap+0,
    0x1.9c49182a3f090p+0, 0x1.9e86319e32323p+0, 0x1.a0c667b5de565p+0, 0x1.a309bec4a2d33p+0,
    0x1.a5503b23e255dp+0, 0x1.a799e1330b358p+0, 0x1.a9e6b5579fdbfp+0, 0x1.ac36bbfd3f37ap+0,
    0x1.ae89f995ad3adp+0, 0x1.b0e07298db666p+0, 0x1.b33a2b84f15fbp+0, 0x1.b59728de5593ap+0,
    0x1.b7f76f2fb5e47p+0, 0x1.ba5b030a1064ap+0, 0x1.bcc1e904bc1d2p+0, 0x1.bf2c25bd71e09p+0,
    0x1.c199bdd85529cp+0, 0x1.c40ab5fffd07ap+0, 0x1.c67f12e57d14bp+0, 0x1.c8f6d9406e7b5p+0,
    0x1.cb720dcef9069p+0, 0x1.cdf0b555dc3fap+0, 0x1.d072d4a07897cp+0, 0x1.d2f87080d89f2p+0,
    0x1.d5818dcfba487p+0, 0x1.d80e316c98398p+0, 0x1.da9e603db3285p+0, 0x1.dd321f301b460p+0,
    0x1.dfc97337b9b5fp+0, 0x1.e264614f5a129p+0, 0x1.e502ee78b3ff6p+0, 0x1.e7a51fbc74c83p+0,
    0x1.ea4afa2a490dap+0, 0x1.ecf482d8e67f1p+0, 0x1.efa1bee615a27p+0, 0x1.f252b376bba97p+0,
    0x1.f50765b6e4540p+0, 0x1.f7bfdad9cbe14p+0, 0x1.fa7c1819e90d8p+0, 0x1.fd3c22b8f71f1p+0,
};

inline constexpr double kLn2Hi = 6.93147180369123816490e-01;  // 20 low bits 0
inline constexpr double kLn2Lo = 1.90821492927058770002e-10;
inline constexpr double kInvLn2N = 128.0 / 6.93147180559945309417e-01;
inline constexpr double kLn2NHi = kLn2Hi / 128.0;  // exact power-of-two scale
inline constexpr double kLn2NLo = kLn2Lo / 128.0;
inline constexpr double kShift = 6755399441055744.0;  // 1.5 * 2^52
// Offset that places the reduced mantissa in [sqrt(1/2), sqrt(2)).
inline constexpr std::uint64_t kLogAdj =
    0x3ff0000000000000ull - 0x3fe6a09e667f3bcdull;

// exp(x), saturating outside [-708, 708]. Branchless, monotone, ~3 ulp.
inline double fastExp(double x) {
  const double xc = x < -708.0 ? -708.0 : (x > 708.0 ? 708.0 : x);
  const double kd = xc * kInvLn2N + kShift;
  const std::uint64_t ki = bitsOf(kd);
  const double k = kd - kShift;
  const double r = (xc - k * kLn2NHi) - k * kLn2NLo;
  const double r2 = r * r;
  const double p = 1.0 + r + r2 * (0.5 + r * (1.0 / 6.0) +
                                   r2 * ((1.0 / 24.0) + r * (1.0 / 120.0)));
  const double s = fromBits(bitsOf(kExp2Tab[ki & 127]) + ((ki >> 7) << 52));
  return s * p;
}

// 2*atanh(s)/s - 2 tail for s^2 = z; z stays below 0.0295 after reduction, so
// the plain Taylor coefficients reach ~1e-18 by the z^10 term.
inline double log1pTail(double z) {
  return z * (2.0 / 3.0 +
              z * (2.0 / 5.0 +
                   z * (2.0 / 7.0 +
                        z * (2.0 / 9.0 +
                             z * (2.0 / 11.0 +
                                  z * (2.0 / 13.0 +
                                       z * (2.0 / 15.0 +
                                            z * (2.0 / 17.0 +
                                                 z * (2.0 / 19.0 +
                                                      z * (2.0 / 21.0))))))))));
}

// ---------------------------------------------------------------------------
// Explicit 4-lane versions. Each evaluates the *identical* per-lane expression
// sequence as its scalar twin above (same literals, same association, pure
// elementwise ops), so lane l of the vector result is bit-identical to the
// scalar call on lane l's input — the invariant the scalar<->batched
// differential tests in tests/sim_batch_test.cpp pin down. Only the 128-entry
// table lookup runs as a scalar gather, exactly as the scalar path indexes it.

/// 4-lane fastExp. Bit-identical per lane to fastExp().
inline simd::V4d fastExp4(simd::V4d x) {
  using simd::V4d;
  using simd::V4u;
  const V4d lo = simd::splat4(-708.0);
  const V4d hi = simd::splat4(708.0);
  const V4d xc = simd::select4(x < lo, lo, simd::select4(x > hi, hi, x));
  const V4d kd = xc * kInvLn2N + kShift;
  const V4u ki = simd::bits4(kd);
  const V4d k = kd - kShift;
  const V4d r = (xc - k * kLn2NHi) - k * kLn2NLo;
  const V4d r2 = r * r;
  const V4d p = 1.0 + r + r2 * (0.5 + r * (1.0 / 6.0) +
                                r2 * ((1.0 / 24.0) + r * (1.0 / 120.0)));
  V4d s;
  for (int l = 0; l < 4; ++l)  // gather stage, scalar like the scalar path
    s[l] = fromBits(bitsOf(kExp2Tab[ki[l] & 127]) + ((ki[l] >> 7) << 52));
  return s * p;
}

/// 4-lane log1pTail. Bit-identical per lane to log1pTail().
inline simd::V4d log1pTail4(simd::V4d z) {
  return z * (2.0 / 3.0 +
              z * (2.0 / 5.0 +
                   z * (2.0 / 7.0 +
                        z * (2.0 / 9.0 +
                             z * (2.0 / 11.0 +
                                  z * (2.0 / 13.0 +
                                       z * (2.0 / 15.0 +
                                            z * (2.0 / 17.0 +
                                                 z * (2.0 / 19.0 +
                                                      z * (2.0 / 21.0))))))))));
}

/// 4-lane log-style reduction of u = 1 + y: splits each lane into
/// 2^k * m with m in [sqrt(1/2), sqrt(2)). Shared by fastLog1p4 and the
/// EKV kernel's fused exp/log path (sim/mosfet.cpp).
inline void logReduce4(simd::V4d u, simd::V4d* kOut, simd::V4d* mOut) {
  using simd::V4i;
  using simd::V4u;
  const V4u uu = simd::bits4(u);
  const V4i kRaw = (V4i)((uu + simd::splatU4(kLogAdj)) >> 52) - 1023;
  *kOut = __builtin_convertvector(kRaw, simd::V4d);
  *mOut = simd::fromBits4(uu - ((V4u)kRaw << 52));
}

/// 4-lane fastLog1p. Bit-identical per lane to fastLog1p().
inline simd::V4d fastLog1p4(simd::V4d y) {
  using simd::V4d;
  const V4d u = 1.0 + y;
  V4d k, m;
  logReduce4(u, &k, &m);
  const V4d c = (y - (u - 1.0)) / u;
  const V4d s = (m - 1.0) / (m + 1.0);
  const V4d poly = 2.0 + log1pTail4(s * s);
  return k * kLn2Hi + (s * poly + (c + k * kLn2Lo));
}

// log(1+y) for y >= 0. Branchless, ~3 ulp.
inline double fastLog1p(double y) {
  const double u = 1.0 + y;
  const std::uint64_t uu = bitsOf(u);
  const std::int64_t kRaw =
      static_cast<std::int64_t>((uu + kLogAdj) >> 52) - 1023;
  const double k = static_cast<double>(kRaw);
  const double m = fromBits(uu - (static_cast<std::uint64_t>(kRaw) << 52));
  const double c = (y - (u - 1.0)) / u;
  const double s = (m - 1.0) / (m + 1.0);
  const double poly = 2.0 + log1pTail(s * s);
  return k * kLn2Hi + (s * poly + (c + k * kLn2Lo));
}

}  // namespace trdse::fastmath
