#pragma once
// Explicit 4-lane double vectors for the batched simulator kernels.
//
// The hot loops in src/sim carry a bitwise contract: lane l of a batched
// kernel must reproduce the scalar kernel's result bit for bit. GNU vector
// extensions give us that for free — every operator below is elementwise
// IEEE-754 double arithmetic, identical to the scalar op on each lane, with
// no cross-lane reassociation the auto-vectorizer might or might not apply.
// On AVX2+ a V4d is one ymm register; on bare x86-64 the compiler splits it
// into two SSE2 halves with identical per-lane results, so the CI
// TRDSE_NATIVE=OFF build stays bit-compatible.
//
// Only elementwise select / bit-manipulation helpers live here; anything with
// a data-dependent memory access (table gathers) stays scalar at the call
// site, mirroring how the scalar kernels index the same tables.

#include <cstdint>
#include <cstring>

// Without AVX the 32-byte vectors are passed in two SSE halves; every helper
// here is header-inline so no ABI boundary survives, and the psABI note would
// otherwise spam every -mno-avx (TRDSE_NATIVE=OFF) build.
#pragma GCC diagnostic ignored "-Wpsabi"

namespace trdse::simd {

typedef double V4d __attribute__((vector_size(32)));
typedef std::int64_t V4i __attribute__((vector_size(32)));
typedef std::uint64_t V4u __attribute__((vector_size(32)));

inline V4d load4(const double* p) {
  V4d v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

inline void store4(double* p, V4d v) { std::memcpy(p, &v, sizeof(v)); }

inline V4d splat4(double x) { return V4d{x, x, x, x}; }

/// Reinterpret lane bits (the vector analogue of fastmath::bitsOf/fromBits).
inline V4u bits4(V4d x) {
  V4u u;
  std::memcpy(&u, &x, sizeof(u));
  return u;
}

inline V4d fromBits4(V4u u) {
  V4d x;
  std::memcpy(&x, &u, sizeof(x));
  return x;
}

/// Per-lane `mask ? a : b` where `mask` comes from a vector comparison
/// (all-ones / all-zero lanes). Pure bit selection — never touches the
/// value of the unselected arm, exactly like the scalar ternary.
inline V4d select4(V4i mask, V4d a, V4d b) {
  V4u um;
  std::memcpy(&um, &mask, sizeof(um));
  return fromBits4((bits4(a) & um) | (bits4(b) & ~um));
}

inline V4u splatU4(std::uint64_t x) { return V4u{x, x, x, x}; }

inline V4i splatI4(std::int64_t x) { return V4i{x, x, x, x}; }

/// Per-lane integer `mask ? a : b` (mask lanes all-ones / all-zero).
inline V4i selectI4(V4i mask, V4i a, V4i b) {
  return (a & mask) | (b & ~mask);
}

/// Per-lane |x| by clearing the sign bit — bit-identical to std::abs(double).
inline V4d abs4(V4d x) {
  return fromBits4(bits4(x) & splatU4(0x7fffffffffffffffull));
}

/// Per-lane sqrt. Written as a lane loop so it needs no intrinsic header;
/// with -fno-math-errno the compiler folds it to one vsqrtpd. sqrt is
/// correctly rounded, so the lanes match scalar std::sqrt bit for bit.
inline V4d sqrt4(V4d x) {
  V4d r;
  for (int i = 0; i < 4; ++i) r[i] = __builtin_sqrt(x[i]);
  return r;
}

// ---- 8-lane vectors for the interleaved complex plane layout --------------
//
// The AC engine stores one matrix cell as 8 adjacent doubles — four real
// lanes then four imaginary lanes — so a V8d is exactly one cell (one zmm on
// AVX-512; without it GCC splits into ymm/xmm halves with identical per-lane
// results, keeping the TRDSE_NATIVE=OFF build bit-compatible). The shuffle
// helpers only repackage lanes; every arithmetic op stays elementwise IEEE
// double, so the bitwise contract is exactly V4d's.

typedef double V8d __attribute__((vector_size(64)));

inline V8d load8(const double* p) {
  V8d v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

inline void store8(double* p, V8d v) { std::memcpy(p, &v, sizeof(v)); }

/// [lo0..lo3, hi0..hi3] — pack two plane vectors into one cell vector.
inline V8d concat8(V4d lo, V4d hi) {
  return __builtin_shufflevector(lo, hi, 0, 1, 2, 3, 4, 5, 6, 7);
}

/// Swap the real/imaginary halves: [v4..v7, v0..v3].
inline V8d swapHalves8(V8d v) {
  return __builtin_shufflevector(v, v, 4, 5, 6, 7, 0, 1, 2, 3);
}

/// Low half of `a`, high half of `b`: [a0..a3, b4..b7].
inline V8d mergeHalves8(V8d a, V8d b) {
  return __builtin_shufflevector(a, b, 0, 1, 2, 3, 12, 13, 14, 15);
}

inline V4d lowHalf8(V8d v) { return __builtin_shufflevector(v, v, 0, 1, 2, 3); }

inline V4d highHalf8(V8d v) {
  return __builtin_shufflevector(v, v, 4, 5, 6, 7);
}

}  // namespace trdse::simd
