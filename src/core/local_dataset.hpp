// Trajectory storage with local-region selection (the paper's compact
// circuit space D_L): surrogates train only on samples near the current
// trust-region center, with a nearest-K fallback when the region is sparse.
// Shared by the single-condition LocalExplorer and the multi-corner PvtSearch.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "linalg/matrix.hpp"

namespace trdse::core {

/// Append-only trajectory of (unit-space sizing, measurement) pairs with
/// locality-based selection.
class LocalDataset {
 public:
  /// Append one successful sample.
  void add(linalg::Vector unitX, linalg::Vector measurements) {
    unit_.push_back(std::move(unitX));
    meas_.push_back(std::move(measurements));
  }

  /// Drop every stored sample.
  void clear() {
    unit_.clear();
    meas_.clear();
  }

  /// Number of stored samples.
  std::size_t size() const { return unit_.size(); }
  /// Whether no samples are stored.
  bool empty() const { return unit_.empty(); }

  /// A paired subset of the trajectory, ready for surrogate training.
  struct Selection {
    std::vector<linalg::Vector> inputs;   ///< unit-space sizings
    std::vector<linalg::Vector> targets;  ///< raw measurement vectors
  };

  /// Samples within `cut` (infinity norm) of `center`; when fewer than
  /// `minCount` qualify, the nearest `minCount` samples are returned instead.
  Selection selectLocal(const linalg::Vector& center, double cut,
                        std::size_t minCount) const;

  /// Stored unit-space sizings, in insertion order (checkpoint access).
  const std::vector<linalg::Vector>& inputs() const { return unit_; }
  /// Stored measurement vectors, parallel to inputs() (checkpoint access).
  const std::vector<linalg::Vector>& targets() const { return meas_; }

 private:
  std::vector<linalg::Vector> unit_;
  std::vector<linalg::Vector> meas_;
};

}  // namespace trdse::core
