// Trajectory storage with local-region selection (the paper's compact
// circuit space D_L): surrogates train only on samples near the current
// trust-region center, with a nearest-K fallback when the region is sparse.
// Shared by the single-condition LocalExplorer and the multi-corner PvtSearch.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "linalg/matrix.hpp"

namespace trdse::core {

class LocalDataset {
 public:
  void add(linalg::Vector unitX, linalg::Vector measurements) {
    unit_.push_back(std::move(unitX));
    meas_.push_back(std::move(measurements));
  }

  void clear() {
    unit_.clear();
    meas_.clear();
  }

  std::size_t size() const { return unit_.size(); }
  bool empty() const { return unit_.empty(); }

  struct Selection {
    std::vector<linalg::Vector> inputs;
    std::vector<linalg::Vector> targets;
  };

  /// Samples within `cut` (infinity norm) of `center`; when fewer than
  /// `minCount` qualify, the nearest `minCount` samples are returned instead.
  Selection selectLocal(const linalg::Vector& center, double cut,
                        std::size_t minCount) const;

 private:
  std::vector<linalg::Vector> unit_;
  std::vector<linalg::Vector> meas_;
};

}  // namespace trdse::core
