#include "core/trust_region.hpp"

#include <algorithm>
#include <cmath>

namespace trdse::core {

TrustRegion::TrustRegion(TrustRegionConfig config)
    : config_(config), radius_(config.initRadius) {}

TrustRegionStep TrustRegion::evaluateStep(double predictedDelta,
                                          double actualDelta) {
  TrustRegionStep step;

  constexpr double kTinyPrediction = 1e-12;
  if (!config_.adaptive) {
    step.accepted = actualDelta > 0.0;
    step.rho = predictedDelta > kTinyPrediction ? actualDelta / predictedDelta
                                                : (step.accepted ? 1.0 : 0.0);
    step.newRadius = radius_;
    return step;
  }
  if (predictedDelta < kTinyPrediction) {
    // The model sees no improvement anywhere in the region. If reality
    // improved anyway, take the step; either way the model is uninformative
    // at this radius, so widen the view to gather more diverse samples.
    step.accepted = actualDelta > 0.0;
    step.rho = step.accepted ? 1.0 : 0.0;
    radius_ = std::min(config_.maxRadius, radius_ * config_.expandFactor);
    step.newRadius = radius_;
    return step;
  }

  step.rho = actualDelta / predictedDelta;
  step.accepted = step.rho > config_.acceptThreshold;

  if (step.rho < config_.shrinkThreshold) {
    radius_ = std::max(config_.minRadius, radius_ * config_.shrinkFactor);
  } else if (step.rho > config_.expandThreshold) {
    radius_ = std::min(config_.maxRadius, radius_ * config_.expandFactor);
  }
  step.newRadius = radius_;
  return step;
}

}  // namespace trdse::core
