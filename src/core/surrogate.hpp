// The SPICE function approximator f_NN(X; θ) (paper Eq. 3-4) with its data
// plumbing: unit-space inputs, standardized measurement outputs, and an
// online training loop over the trajectory collected so far.
//
// The network predicts the full *measurement vector*, never the scalar value
// — the Value function is applied after prediction (paper IV-D), keeping
// reward shaping out of training entirely.
#pragma once

#include <optional>
#include <random>
#include <vector>

#include "core/problem.hpp"
#include "nn/loss.hpp"
#include "nn/mlp.hpp"
#include "nn/optimizer.hpp"
#include "nn/scaler.hpp"

namespace trdse::core {

/// Architecture and training hyper-parameters of the surrogate network.
struct SurrogateConfig {
  std::size_t hiddenWidth = 48;  ///< neurons per hidden layer
  std::size_t hiddenLayers = 2;  ///< "3 layers" in the paper = 2 hidden + output
  double learningRate = 3e-3;    ///< Adam step size
  std::size_t epochsPerUpdate = 40;  ///< epochs per train() call
  std::size_t batchSize = 16;        ///< mini-batch size
};

/// Pick a network width from problem shape — the paper's "automatic script
/// constructs the neural network architectures and hyperparameters".
SurrogateConfig autoConfigure(std::size_t paramDim, std::size_t measDim);

/// The paper's f_NN(X; θ): an online-trained MLP from unit-space sizings to
/// raw measurement vectors, with input/output scaling handled internally.
class SpiceSurrogate {
 public:
  /// Construct an untrained network for the given input/output widths.
  SpiceSurrogate(std::size_t inputDim, std::size_t outputDim,
                 SurrogateConfig config, std::uint64_t seed);

  /// Add one (unit-space sizes, raw measurements) pair to the trajectory.
  void addSample(const linalg::Vector& unitX, const linalg::Vector& measurements);

  /// Replace the training set wholesale — used by the explorer to restrict
  /// training to the samples inside the current local region D_L.
  void setData(std::vector<linalg::Vector> unitXs,
               std::vector<linalg::Vector> measurements);

  /// Number of stored training pairs.
  std::size_t sampleCount() const { return inputs_.size(); }

  /// Refit the output standardizer and run `epochsPerUpdate` of mini-batch
  /// MSE — the θ ← θ − α ∂J/∂θ line of Algorithm 1. Returns mean loss.
  double train(std::mt19937_64& rng);

  /// Predict raw (de-standardized) measurements at a unit-space point.
  linalg::Vector predict(const linalg::Vector& unitX) const;

  /// Batched predict: row r of `unitX` is one unit-space point, row r of
  /// `out` its raw measurements — bitwise identical to predict() row by row,
  /// but one GEMM per layer for the whole block. Uses internal scratch
  /// buffers (reused across calls), so it is not thread-safe per instance.
  void predictBatch(const linalg::Matrix& unitX, linalg::Matrix& out) const;

  /// Reinitialize weights (restart / porting-baseline behaviour).
  void reinitialize(std::uint64_t seed);
  /// Drop the collected trajectory.
  void clearSamples();

  /// Underlying network (read-only; porting saves its weights).
  const nn::Mlp& network() const { return net_; }
  /// Underlying network (mutable).
  nn::Mlp& network() { return net_; }
  /// Adopt foreign weights (process-porting "weight sharing"); dimensions
  /// must match. Returns false on mismatch.
  bool adoptWeights(const nn::Mlp& other);

  // Checkpoint access: the full training state is (network, Adam moments,
  // fitted scalers, stored training pairs); restoring all four resumes the
  // online training stream bit-exactly.

  /// Adam state over the network parameters, read-only.
  const nn::AdamOptimizer& optimizer() const { return opt_; }
  /// Adam state, mutable (checkpoint restore).
  nn::AdamOptimizer& optimizer() { return opt_; }
  /// Fitted input standardizer, read-only.
  const nn::Standardizer& inputScaler() const { return inScaler_; }
  /// Fitted input standardizer, mutable (checkpoint restore).
  nn::Standardizer& inputScaler() { return inScaler_; }
  /// Fitted output standardizer, read-only.
  const nn::Standardizer& outputScaler() const { return outScaler_; }
  /// Fitted output standardizer, mutable (checkpoint restore).
  nn::Standardizer& outputScaler() { return outScaler_; }
  /// Stored training inputs (unit space), in insertion order.
  const std::vector<linalg::Vector>& sampleInputs() const { return inputs_; }
  /// Stored raw measurement targets, parallel to sampleInputs().
  const std::vector<linalg::Vector>& sampleTargets() const {
    return targetsRaw_;
  }

 private:
  SurrogateConfig config_;
  nn::Mlp net_;
  nn::AdamOptimizer opt_;
  nn::Standardizer inScaler_;
  nn::Standardizer outScaler_;
  std::vector<linalg::Vector> inputs_;
  std::vector<linalg::Vector> targetsRaw_;

  // Scratch for predictBatch (mutable: logically const inference).
  mutable nn::Mlp::BatchWorkspace batchWs_;
  mutable linalg::Matrix batchScaled_;
  mutable linalg::Matrix batchZ_;
};

}  // namespace trdse::core
