// The designer-facing "SPICE decorator" (paper Section IV-F).
//
// Designers provide only what their manual flow already has: the sizes to
// tune and their ranges, the topology (an evaluation callback), the
// measurements, and per-corner specs — i.e. a SizingProblem. The session
// auto-configures the network architecture and search hyper-parameters from
// the problem shape and runs the full progressive-PVT trust-region search.
#pragma once

#include <string>

#include "core/local_explorer.hpp"
#include "core/pvt_search.hpp"
#include "core/problem.hpp"

namespace trdse::core {

struct SessionOptions {
  PvtStrategy strategy = PvtStrategy::kProgressiveHardest;
  std::size_t maxSimulations = 10000;
  std::uint64_t seed = 1;
  /// Override the auto-scheduled hyper-parameters when set.
  std::optional<LocalExplorerConfig> explorerOverride;
};

struct SessionReport {
  bool solved = false;
  std::size_t simulations = 0;
  linalg::Vector sizes;
  std::vector<EvalResult> cornerEvals;
  double areaEstimate = 0.0;  ///< 0 when the problem has no area callback
  pvt::EdaLedger ledger;
  std::string summary;  ///< human-readable multi-line report
};

/// Derive explorer hyper-parameters from the problem shape — the paper's
/// "automatic script" that constructs components "dynamically on the fly".
LocalExplorerConfig autoSchedule(const SizingProblem& problem, std::uint64_t seed);

class SizingSession {
 public:
  SizingSession(SizingProblem problem, SessionOptions options = {});

  /// Run the search to completion or budget exhaustion.
  SessionReport run();

  const SizingProblem& problem() const { return problem_; }

 private:
  SizingProblem problem_;
  SessionOptions options_;
};

}  // namespace trdse::core
