// The designer-facing "SPICE decorator" (paper Section IV-F).
//
// Designers provide only what their manual flow already has: the sizes to
// tune and their ranges, the topology (an evaluation callback), the
// measurements, and per-corner specs — i.e. a SizingProblem. The session
// auto-configures the network architecture and search hyper-parameters from
// the problem shape and runs the full progressive-PVT trust-region search.
#pragma once

#include <string>

#include "core/local_explorer.hpp"
#include "core/pvt_search.hpp"
#include "core/problem.hpp"

namespace trdse::core {

/// Designer-tunable session settings (everything else is auto-scheduled).
struct SessionOptions {
  PvtStrategy strategy = PvtStrategy::kProgressiveHardest;  ///< corner policy
  std::size_t maxSimulations = 10000;  ///< EDA-block budget
  std::uint64_t seed = 1;              ///< seed for the whole session
  /// Memoize evaluations in the eval engine (PvtSearchConfig::cacheEvals).
  /// Outcomes are bitwise identical on/off; turn off to reproduce the
  /// paper's EDA-block tables with every block a real simulation.
  bool cacheEvals = true;
  /// Worker threads for per-corner evaluation (PvtSearchConfig::evalThreads;
  /// 1 = serial, 0 = hardware concurrency). Thread-count invariant.
  std::size_t evalThreads = 1;
  /// Auto-checkpoint: every `checkpointEvery` completed TRM steps the full
  /// session state is written to `checkpointPath` (0 = off). A session
  /// killed mid-run resumes from the snapshot bitwise — same SearchOutcome,
  /// same ledger — via resume() (see docs/CHECKPOINTS.md).
  std::size_t checkpointEvery = 0;
  /// Destination of the periodic snapshots (and of save()).
  std::string checkpointPath;
  /// Override the auto-scheduled hyper-parameters when set.
  std::optional<LocalExplorerConfig> explorerOverride;
};

/// Result of one sizing session.
struct SessionReport {
  bool solved = false;         ///< every corner met spec
  /// Logical evaluations charged against the budget (real sims + cache
  /// hits); evalStats.simulated is the EDA blocks actually consumed.
  std::size_t simulations = 0;
  linalg::Vector sizes;        ///< final (or best) sizing
  std::vector<EvalResult> cornerEvals;  ///< final per-corner measurements
  double areaEstimate = 0.0;  ///< 0 when the problem has no area callback
  pvt::EdaLedger ledger;      ///< per-block accounting
  eval::EvalStats evalStats;  ///< cache hit/miss counts + backend timing
  std::string summary;        ///< human-readable multi-line report
};

/// Derive explorer hyper-parameters from the problem shape — the paper's
/// "automatic script" that constructs components "dynamically on the fly".
LocalExplorerConfig autoSchedule(const SizingProblem& problem, std::uint64_t seed);

/// One-call designer entry point: auto-schedule, search, report.
///
/// Sessions are resumable: run() continues the embedded search from wherever
/// it stands, so `resume(path)` + run() reproduces the uninterrupted run's
/// report bit for bit (the determinism contract of docs/CHECKPOINTS.md).
class SizingSession {
 public:
  /// Capture the problem and options (the problem is copied).
  SizingSession(SizingProblem problem, SessionOptions options = {});
  ~SizingSession();
  SizingSession(SizingSession&&) noexcept;
  SizingSession& operator=(SizingSession&&) noexcept;

  /// Run the search to completion or budget exhaustion; continues a
  /// restored (or previously budget-capped) search instead of restarting.
  SessionReport run();

  /// Snapshot the full session state to a versioned checkpoint file. Before
  /// the first run() this snapshots a fresh search; mid-stack it captures
  /// surrogates, trust region, RNG streams, memo and ledger exactly.
  void save(const std::string& path);

  /// Restore a checkpoint written by save() (or by the periodic
  /// checkpointEvery knob); the next run() continues bitwise. Throws
  /// io::CheckpointError on corrupt files or a problem/config mismatch.
  void resume(const std::string& path);

  /// The problem this session optimizes.
  const SizingProblem& problem() const { return problem_; }

 private:
  /// Build the search lazily so save()/resume() work before run().
  PvtSearch& ensureSearch();

  SizingProblem problem_;
  SessionOptions options_;
  std::unique_ptr<PvtSearch> search_;
};

}  // namespace trdse::core
