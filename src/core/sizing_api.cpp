#include "core/sizing_api.hpp"

#include <cmath>
#include <sstream>

namespace trdse::core {

LocalExplorerConfig autoSchedule(const SizingProblem& problem,
                                 std::uint64_t seed) {
  LocalExplorerConfig c;
  c.seed = seed;
  const std::size_t d = problem.space.dim();
  // More dimensions -> more initial coverage and more planning samples.
  c.initSamples = std::clamp<std::size_t>(d + 3, 10, 40);
  c.mcSamples = std::clamp<std::size_t>(90 * d, 400, 2000);
  c.restartAfter = std::clamp<std::size_t>(8 * d, 40, 150);
  c.surrogate =
      autoConfigure(d, problem.measurementNames.size());
  return c;
}

SizingSession::SizingSession(SizingProblem problem, SessionOptions options)
    : problem_(std::move(problem)), options_(std::move(options)) {}

SizingSession::~SizingSession() = default;
SizingSession::SizingSession(SizingSession&&) noexcept = default;
SizingSession& SizingSession::operator=(SizingSession&&) noexcept = default;

PvtSearch& SizingSession::ensureSearch() {
  if (!search_) {
    PvtSearchConfig cfg;
    cfg.strategy = options_.strategy;
    cfg.seed = options_.seed;
    cfg.cacheEvals = options_.cacheEvals;
    cfg.evalThreads = options_.evalThreads;
    cfg.autoCheckpointEvery = options_.checkpointEvery;
    cfg.autoCheckpointPath = options_.checkpointPath;
    cfg.explorer = options_.explorerOverride.has_value()
                       ? *options_.explorerOverride
                       : autoSchedule(problem_, options_.seed);
    search_ = std::make_unique<PvtSearch>(problem_, cfg);
  }
  return *search_;
}

void SizingSession::save(const std::string& path) {
  ensureSearch().saveCheckpoint(path);
}

void SizingSession::resume(const std::string& path) {
  ensureSearch().restoreCheckpoint(path);
}

SessionReport SizingSession::run() {
  SessionReport report;

  PvtSearch& search = ensureSearch();
  PvtSearchOutcome outcome = search.run(options_.maxSimulations);

  report.solved = outcome.solved;
  report.simulations = outcome.totalSims;
  report.sizes = outcome.sizes;
  report.cornerEvals = std::move(outcome.cornerEvals);
  report.ledger = std::move(outcome.ledger);
  report.evalStats = outcome.evalStats;
  if (problem_.area && !report.sizes.empty())
    report.areaEstimate = problem_.area(report.sizes);

  std::ostringstream os;
  os << "problem: " << problem_.name << "\n"
     << "strategy: " << toString(search.config().strategy) << "\n"
     << "solved: " << (report.solved ? "yes" : "no")
     << "  simulations: " << report.simulations << "\n";
  // EDA-block economics: the logical budget above vs what actually hit the
  // simulator. With caching off, hits are 0 and the two counts coincide
  // (the paper's Table III accounting). The printed state is the effective
  // one — an explorerOverride with cacheEvals=false disables caching even
  // when the session-level flag is on.
  const bool cacheOn =
      options_.cacheEvals && search.config().explorer.cacheEvals;
  os << "eda blocks: " << report.evalStats.simulated << " simulated, "
     << report.evalStats.cacheHits << " cache hits ("
     << static_cast<int>(report.evalStats.hitRate() * 100.0 + 0.5)
     << "% hit rate, " << report.evalStats.blocksSaved()
     << " blocks saved; cache " << (cacheOn ? "on" : "off") << ")\n";
  if (report.solved) {
    os << "sizes:";
    for (std::size_t i = 0; i < report.sizes.size(); ++i)
      os << " " << problem_.space.param(i).name << "=" << report.sizes[i];
    os << "\n";
    if (problem_.area) os << "area: " << report.areaEstimate << "\n";
    for (std::size_t c = 0; c < report.cornerEvals.size(); ++c) {
      os << "corner " << problem_.corners[c].name() << ":";
      const auto& e = report.cornerEvals[c];
      if (!e.ok) {
        os << " (failed)";
      } else {
        for (std::size_t m = 0; m < e.measurements.size(); ++m)
          os << " " << problem_.measurementNames[m] << "=" << e.measurements[m];
      }
      os << "\n";
    }
  }
  report.summary = os.str();
  return report;
}

}  // namespace trdse::core
