#include "core/local_explorer.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace trdse::core {

LocalExplorer::LocalExplorer(DesignSpace space, ValueFunction value,
                             EvalFn evaluate, LocalExplorerConfig config)
    : space_(std::move(space)),
      value_(std::move(value)),
      config_(std::move(config)),
      // Single-corner inline engine. Ledger recording is off: SearchOutcome
      // surfaces only the stats counters, and a run takes thousands of
      // per-step evaluations (PvtSearch keeps its own recording engine for
      // session ledgers).
      engine_(std::make_unique<eval::EvalEngine>(
          std::make_shared<eval::CallbackBackend>(
              [fn = std::move(evaluate)](const linalg::Vector& sizes,
                                         const sim::PvtCorner&) {
                return fn(sizes);
              },
              "explorer"),
          space_, std::vector<sim::PvtCorner>{sim::PvtCorner{}},
          eval::MeetsSpecFn{},
          eval::EvalEngineConfig{config_.cacheEvals, /*threads=*/1,
                                 /*recordLedger=*/false})),
      surrogate_(space_.dim(),
                 /*outputDim=*/1,  // rebuilt once the measurement dim is known
                 config_.surrogate, config_.seed),
      rng_(config_.seed) {}

void LocalExplorer::trainLocal(const linalg::Vector& centerUnit, double radius) {
  LocalDataset::Selection sel = data_.selectLocal(
      centerUnit, config_.localityFactor * radius, config_.minLocalSamples);
  if (sel.inputs.empty()) return;
  surrogate_.setData(std::move(sel.inputs), std::move(sel.targets));
  surrogate_.train(rng_);
}

void LocalExplorer::planCandidates(const linalg::Vector& centerUnit,
                                   double radius, linalg::Vector& bestUnit,
                                   double& bestModelValue) {
  bestUnit.clear();
  bestModelValue = -std::numeric_limits<double>::infinity();
  std::uniform_real_distribution<double> unif(-1.0, 1.0);
  const std::size_t dim = space_.dim();

  if (!config_.batchedPlanning) {
    // Per-sample reference path (kept for equivalence tests / benchmarks).
    for (std::size_t s = 0; s < config_.mcSamples; ++s) {
      linalg::Vector u(dim);
      for (std::size_t d = 0; d < dim; ++d) {
        u[d] = std::clamp(centerUnit[d] + radius * unif(rng_), 0.0, 1.0);
      }
      // Score on the *snapped* candidate so the planned point is the
      // simulated point.
      const linalg::Vector snapped = space_.fromUnitSnapped(u);
      const linalg::Vector su = space_.toUnit(snapped);
      const linalg::Vector pred = surrogate_.predict(su);
      const double v = value_.plannerScore(pred);
      if (v > bestModelValue) {
        bestModelValue = v;
        bestUnit = su;
      }
    }
    return;
  }

  // Batched path: generate the candidate block with the identical RNG draw
  // order, score every row in one batched surrogate pass, then rank with the
  // same strict-> selection — candidate choice matches the loop above.
  candBuf_.resize(config_.mcSamples, dim);
  linalg::Vector u(dim);
  for (std::size_t s = 0; s < config_.mcSamples; ++s) {
    for (std::size_t d = 0; d < dim; ++d) {
      u[d] = std::clamp(centerUnit[d] + radius * unif(rng_), 0.0, 1.0);
    }
    const linalg::Vector snapped = space_.fromUnitSnapped(u);
    const linalg::Vector su = space_.toUnit(snapped);
    std::copy(su.begin(), su.end(), candBuf_.row(s));
  }
  surrogate_.predictBatch(candBuf_, predBuf_);
  std::size_t bestIdx = config_.mcSamples;
  for (std::size_t s = 0; s < config_.mcSamples; ++s) {
    const double* pr = predBuf_.row(s);
    rowScratch_.assign(pr, pr + predBuf_.cols());
    const double v = value_.plannerScore(rowScratch_);
    if (v > bestModelValue) {
      bestModelValue = v;
      bestIdx = s;
    }
  }
  if (bestIdx < config_.mcSamples) {
    const double* cr = candBuf_.row(bestIdx);
    bestUnit.assign(cr, cr + dim);
  }
}

LocalExplorer::Evaluated LocalExplorer::simulate(const linalg::Vector& sizes,
                                                 SearchOutcome& out) {
  Evaluated e;
  e.sizes = space_.snap(sizes);
  e.unit = space_.toUnit(e.sizes);
  e.eval = engine_->evalOne(0, e.sizes, pvt::BlockKind::kSearch);
  e.value = value_.valueOf(e.eval);
  e.score = e.eval.ok ? value_.plannerScore(e.eval.measurements) : kFailedValue;
  ++out.iterations;
  if (e.eval.ok) data_.add(e.unit, e.eval.measurements);
  if (e.value > out.bestValue) {
    out.bestValue = e.value;
    out.sizes = e.sizes;
    out.eval = e.eval;
  }
  out.trace.bestValueHistory.push_back(out.bestValue);
  return e;
}

SearchOutcome LocalExplorer::run(std::size_t maxIterations) {
  engine_->resetAccounting();  // fresh per-run accounting; the memo persists
  SearchOutcome out = runSearch(maxIterations);
  out.evalStats = engine_->stats();
  return out;
}

SearchOutcome LocalExplorer::runSearch(std::size_t maxIterations) {
  SearchOutcome out;
  bool firstEpisode = true;

  // The surrogate's output dimension is discovered from the first successful
  // simulation; rebuild it lazily.
  std::optional<std::size_t> measDim;
  auto ensureSurrogate = [&](std::size_t dim) {
    if (measDim.has_value()) return;
    measDim = dim;
    surrogate_ = SpiceSurrogate(space_.dim(), dim, config_.surrogate,
                                config_.seed + 17);
    if (config_.warmStartWeights != nullptr)
      surrogate_.adoptWeights(*config_.warmStartWeights);
  };

  while (out.iterations < maxIterations) {
    // ---- Algorithm 1 lines 2-4: global Monte Carlo, pick the best region.
    Evaluated center;
    center.value = kFailedValue;
    bool haveCenter = false;
    for (std::size_t k = 0; k < config_.initSamples; ++k) {
      if (out.iterations >= maxIterations) break;
      linalg::Vector x;
      if (firstEpisode && k == 0 && config_.startingPoint.has_value()) {
        x = *config_.startingPoint;  // porting: start from the donor optimum
      } else {
        x = space_.randomPoint(rng_);
      }
      Evaluated e = simulate(x, out);
      if (e.eval.ok) ensureSurrogate(e.eval.measurements.size());
      if (e.eval.ok && value_.satisfied(e.eval.measurements)) {
        out.solved = true;
        out.sizes = e.sizes;
        out.eval = e.eval;
        out.bestValue = e.value;
        return out;
      }
      if (e.score > center.score || !haveCenter) {
        center = e;
        haveCenter = true;
      }
    }
    firstEpisode = false;
    if (!haveCenter || !measDim.has_value()) {
      // Nothing simulated successfully this episode — try a fresh batch.
      ++out.trace.restarts;
      continue;
    }

    // ---- Algorithm 1 line 5: fresh trust region; weights per config.
    TrustRegion tr(config_.trustRegion);
    std::size_t sinceRestart = 0;
    std::size_t sinceImprovement = 0;

    // ---- lines 6-17: local search loop.
    while (out.iterations < maxIterations) {
      // line 8: θ ← θ − α ∂J/∂θ over the local trajectory (D_L).
      trainLocal(center.unit, tr.radius());

      // line 10: sample m points in the trust region, score on the model.
      const double radius = tr.radius();
      out.trace.radiusHistory.push_back(radius);
      linalg::Vector bestUnit;
      double bestModelValue;
      planCandidates(center.unit, radius, bestUnit, bestModelValue);
      if (bestUnit.empty()) break;

      // line 11-12: SPICE the trial, run the TRM ratio test.
      const double predictedCenter =
          value_.plannerScore(surrogate_.predict(center.unit));
      const double predictedDelta = bestModelValue - predictedCenter;
      Evaluated trial = simulate(space_.fromUnit(bestUnit), out);

      if (trial.eval.ok && value_.satisfied(trial.eval.measurements)) {
        out.solved = true;  // line 13-14
        out.sizes = trial.sizes;
        out.eval = trial.eval;
        out.bestValue = trial.value;
        return out;
      }

      const double actualDelta =
          (trial.score <= kFailedValue ? -1.0 : trial.score - center.score);
      const TrustRegionStep step = tr.evaluateStep(predictedDelta, actualDelta);
      if (step.accepted && trial.eval.ok) {
        sinceImprovement = trial.score > center.score ? 0 : sinceImprovement + 1;
        center = trial;
        ++out.trace.acceptedSteps;
      } else {
        ++sinceImprovement;
        ++out.trace.rejectedSteps;
      }

      // line 15-16: escape to a fresh global sample when stuck.
      if (++sinceRestart > config_.restartAfter ||
          sinceImprovement > config_.stagnationPatience) {
        ++out.trace.restarts;
        surrogate_.reinitialize(config_.seed + 31 * (out.trace.restarts + 1));
        break;
      }
    }
  }
  return out;
}

}  // namespace trdse::core
