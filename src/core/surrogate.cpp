#include "core/surrogate.hpp"

#include <algorithm>

namespace trdse::core {

SurrogateConfig autoConfigure(std::size_t paramDim, std::size_t measDim) {
  SurrogateConfig c;
  c.hiddenWidth = std::clamp<std::size_t>(6 * paramDim + 4 * measDim, 32, 128);
  return c;
}

SpiceSurrogate::SpiceSurrogate(std::size_t inputDim, std::size_t outputDim,
                               SurrogateConfig config, std::uint64_t seed)
    : config_(config),
      net_([&] {
        nn::MlpConfig mc;
        mc.layerSizes.push_back(inputDim);
        for (std::size_t i = 0; i < config.hiddenLayers; ++i)
          mc.layerSizes.push_back(config.hiddenWidth);
        mc.layerSizes.push_back(outputDim);
        mc.hidden = nn::Activation::kTanh;
        mc.output = nn::Activation::kIdentity;
        return nn::Mlp(mc, seed);
      }()),
      opt_(config.learningRate) {}

void SpiceSurrogate::addSample(const linalg::Vector& unitX,
                               const linalg::Vector& measurements) {
  assert(unitX.size() == net_.inputDim());
  assert(measurements.size() == net_.outputDim());
  inputs_.push_back(unitX);
  targetsRaw_.push_back(measurements);
}

void SpiceSurrogate::setData(std::vector<linalg::Vector> unitXs,
                             std::vector<linalg::Vector> measurements) {
  assert(unitXs.size() == measurements.size());
  inputs_ = std::move(unitXs);
  targetsRaw_ = std::move(measurements);
}

double SpiceSurrogate::train(std::mt19937_64& rng) {
  if (inputs_.empty()) return 0.0;
  // Standardize both sides: the local region can be a tiny slab of the unit
  // cube, and centring/scaling it keeps the tanh layers in their active range.
  inScaler_.fit(inputs_);
  outScaler_.fit(targetsRaw_);
  std::vector<linalg::Vector> xs;
  std::vector<linalg::Vector> targets;
  xs.reserve(inputs_.size());
  targets.reserve(targetsRaw_.size());
  for (const auto& x : inputs_) xs.push_back(inScaler_.transform(x));
  for (const auto& t : targetsRaw_) targets.push_back(outScaler_.transform(t));

  double lastLoss = 0.0;
  for (std::size_t e = 0; e < config_.epochsPerUpdate; ++e) {
    const nn::TrainStats s =
        nn::trainEpochMse(net_, opt_, xs, targets, config_.batchSize, rng);
    lastLoss = s.meanLoss;
  }
  return lastLoss;
}

linalg::Vector SpiceSurrogate::predict(const linalg::Vector& unitX) const {
  const linalg::Vector x =
      inScaler_.fitted() ? inScaler_.transform(unitX) : unitX;
  const linalg::Vector z = net_.predict(x);
  if (!outScaler_.fitted()) return z;
  return outScaler_.inverse(z);
}

void SpiceSurrogate::predictBatch(const linalg::Matrix& unitX,
                                  linalg::Matrix& out) const {
  assert(unitX.cols() == net_.inputDim());
  const linalg::Matrix* x = &unitX;
  if (inScaler_.fitted()) {
    inScaler_.transform(unitX, batchScaled_);
    x = &batchScaled_;
  }
  if (!outScaler_.fitted()) {
    net_.predictBatch(*x, out, batchWs_);
    return;
  }
  net_.predictBatch(*x, batchZ_, batchWs_);
  outScaler_.inverse(batchZ_, out);
}

void SpiceSurrogate::reinitialize(std::uint64_t seed) {
  net_.reinitialize(seed);
  opt_.reset();
}

void SpiceSurrogate::clearSamples() {
  inputs_.clear();
  targetsRaw_.clear();
}

bool SpiceSurrogate::adoptWeights(const nn::Mlp& other) {
  if (other.parameterCount() != net_.parameterCount()) return false;
  if (other.inputDim() != net_.inputDim() || other.outputDim() != net_.outputDim())
    return false;
  net_.setParameters(other.getParameters());
  opt_.reset();
  return true;
}

}  // namespace trdse::core
