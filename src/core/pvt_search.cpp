#include "core/pvt_search.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>
#include <stdexcept>

#include "io/checkpoint.hpp"
#include "io/state_io.hpp"
#include "pvt/corners.hpp"

namespace trdse::core {

namespace {

/// Checkpoint `kind` tag for PvtSearch snapshots.
constexpr const char* kCheckpointKind = "pvt-search";

}  // namespace

std::string_view toString(PvtStrategy s) {
  switch (s) {
    case PvtStrategy::kBruteForce:
      return "brute-force";
    case PvtStrategy::kProgressiveRandom:
      return "progressive(random)";
    case PvtStrategy::kProgressiveHardest:
      return "progressive(hardest)";
  }
  return "?";
}

PvtSearch::PvtSearch(SizingProblem problem, PvtSearchConfig config)
    : problem_(std::move(problem)),
      config_(std::move(config)),
      // note: value_ must be built from the member, not the moved-from param
      value_(problem_.measurementNames, problem_.specs),
      // Caching is on only when both the search-level and the embedded
      // explorer-level flag allow it, so an explorerOverride with
      // cacheEvals=false (the paper-accounting reproduction path) is honored
      // here too.
      engine_(problem_,
              eval::EvalEngineConfig{
                  config_.cacheEvals && config_.explorer.cacheEvals,
                  config_.evalThreads}),
      rng_(config_.seed),
      tr_(config_.explorer.trustRegion) {
  // Misconfigured periodic checkpointing must fail up front: silently
  // running without snapshots is exactly the data loss the knob prevents.
  if (config_.autoCheckpointEvery != 0 && config_.autoCheckpointPath.empty())
    throw std::invalid_argument(
        "PvtSearchConfig::autoCheckpointEvery is set but "
        "autoCheckpointPath is empty");
}

std::vector<EvalResult> PvtSearch::evalCorners(
    const std::vector<std::size_t>& corners, const linalg::Vector& sizes,
    pvt::BlockKind kind) {
  // The engine memoizes, fans real simulations across its pool, merges in
  // request order, and records the ledger blocks; the search budget is
  // charged per logical request so trajectories are cache-invariant.
  std::vector<EvalResult> results = engine_.evalBatch(corners, sizes, kind);
  result_.totalSims = engine_.stats().requests;
  return results;
}

double PvtSearch::poolValue(const std::vector<EvalResult>& evals) const {
  // min over corners of the plannerScore — the paper's "lowest expected
  // value" candidate rule, with the same margin tie-break the single-corner
  // explorer plans with.
  double v = std::numeric_limits<double>::infinity();
  for (const auto& e : evals)
    v = std::min(v, e.ok ? value_.plannerScore(e.measurements) : kFailedValue);
  return evals.empty() ? kFailedValue : v;
}

void PvtSearch::activate(std::size_t idx) {
  if (isActive_[idx]) return;
  isActive_[idx] = 1;
  CornerState cs;
  cs.index = idx;
  active_.push_back(std::move(cs));
  result_.cornersActivated = active_.size();
}

void PvtSearch::ensureSurrogates(std::size_t measDim) {
  measDim_ = measDim;
  const std::size_t dim = problem_.space.dim();
  for (auto& cs : active_) {
    if (!cs.surrogate) {
      cs.surrogate = std::make_unique<SpiceSurrogate>(
          dim, measDim, config_.explorer.surrogate,
          config_.seed + 101 * (cs.index + 1));
    }
  }
}

void PvtSearch::initialize() {
  // Fresh accounting for a search started from scratch (a restored search
  // keeps its checkpointed accounting instead; the memo always survives —
  // backends are pure, so earlier results stay valid and keep saving blocks).
  engine_.resetAccounting();
  const std::size_t nCorners = problem_.corners.size();
  assert(nCorners > 0);
  isActive_.assign(nCorners, 0);
  active_.clear();
  switch (config_.strategy) {
    case PvtStrategy::kBruteForce:
      for (std::size_t i = 0; i < nCorners; ++i) activate(i);
      break;
    case PvtStrategy::kProgressiveRandom: {
      std::uniform_int_distribution<std::size_t> d(0, nCorners - 1);
      activate(d(rng_));
      break;
    }
    case PvtStrategy::kProgressiveHardest: {
      const auto order = pvt::heuristicHardestFirst(
          problem_.corners, problem_.corners.front().vdd);
      activate(order.front());
      break;
    }
  }
  initialized_ = true;
}

PvtSearch::Point PvtSearch::evaluatePoint(const linalg::Vector& rawSizes) {
  // Evaluate a point on every active corner (bailing early once a corner
  // fails hard is *not* done: every active corner's model needs data). The
  // corner simulations fan out across the pool; trajectory bookkeeping runs
  // after the join, in pool order.
  Point p;
  p.sizes = problem_.space.snap(rawSizes);
  p.unit = problem_.space.toUnit(p.sizes);
  cornerIdxScratch_.clear();
  for (const auto& cs : active_) cornerIdxScratch_.push_back(cs.index);
  p.evals = evalCorners(cornerIdxScratch_, p.sizes, pvt::BlockKind::kSearch);
  for (std::size_t i = 0; i < active_.size(); ++i) {
    const EvalResult& r = p.evals[i];
    if (r.ok) {
      if (!measDim_.has_value()) ensureSurrogates(r.measurements.size());
      active_[i].data.add(p.unit, r.measurements);
    }
  }
  p.value = poolValue(p.evals);
  return p;
}

bool PvtSearch::poolSatisfied(const Point& p) const {
  for (const auto& e : p.evals)
    if (!e.ok || !value_.satisfied(e.measurements)) return false;
  return true;
}

bool PvtSearch::verifyAndExpand(const Point& p) {
  // Verify inactive corners; returns true when all pass, otherwise activates
  // the failing corner with the lowest value (paper IV-E).
  const std::size_t nCorners = problem_.corners.size();
  std::size_t worstIdx = nCorners;
  double worstValue = 1.0;
  std::vector<EvalResult> finals(nCorners);
  for (std::size_t i = 0; i < active_.size(); ++i)
    finals[active_[i].index] = p.evals[i];
  cornerIdxScratch_.clear();
  for (std::size_t c = 0; c < nCorners; ++c)
    if (!isActive_[c]) cornerIdxScratch_.push_back(c);
  std::vector<EvalResult> verdicts =
      evalCorners(cornerIdxScratch_, p.sizes, pvt::BlockKind::kVerify);
  for (std::size_t i = 0; i < cornerIdxScratch_.size(); ++i) {
    const std::size_t c = cornerIdxScratch_[i];
    EvalResult& r = verdicts[i];
    const double v = value_.valueOf(r);
    const bool pass = r.ok && value_.satisfied(r.measurements);
    finals[c] = std::move(r);
    if (!pass && v < worstValue) {
      worstValue = v;
      worstIdx = c;
    }
  }
  if (worstIdx == nCorners) {
    result_.solved = true;
    result_.sizes = p.sizes;
    result_.cornerEvals = std::move(finals);
    return true;
  }
  activate(worstIdx);
  if (measDim_.has_value()) ensureSurrogates(*measDim_);
  return false;
}

PvtSearchOutcome PvtSearch::run(std::size_t maxSims) {
  if (!initialized_) initialize();
  while (phase_ != Phase::kDone && result_.totalSims < maxSims) stepOnce();
  // Harvest the engine accounting at every exit; the loop state stays live
  // so a later run()/restore can continue the search.
  PvtSearchOutcome out = result_;
  out.ledger = engine_.ledger();
  out.evalStats = engine_.stats();
  return out;
}

void PvtSearch::stepOnce() {
  switch (phase_) {
    case Phase::kEpisodeStart:
      center_ = Point{};
      haveCenter_ = false;
      initK_ = 0;
      phase_ = Phase::kInitSample;
      return;
    case Phase::kInitSample:
      stepInitSample();
      return;
    case Phase::kTrmStep:
      stepTrm();
      return;
    case Phase::kDone:
      return;
  }
}

void PvtSearch::stepInitSample() {
  if (initK_ >= config_.explorer.initSamples) {
    // Episode sampled out: dive into the best region found — or resample
    // from scratch when every draw failed to simulate.
    if (!haveCenter_ || !measDim_.has_value()) {
      phase_ = Phase::kEpisodeStart;
      return;
    }
    tr_ = TrustRegion(config_.explorer.trustRegion);
    sinceRestart_ = 0;
    sinceImprovement_ = 0;
    phase_ = Phase::kTrmStep;
    return;
  }
  Point p = evaluatePoint(problem_.space.randomPoint(rng_));
  ++initK_;
  if (poolSatisfied(p) && verifyAndExpand(p)) {
    phase_ = Phase::kDone;
    return;
  }
  if (result_.solved) {
    phase_ = Phase::kDone;
    return;
  }
  if (p.value > center_.value || !haveCenter_) {
    center_ = std::move(p);
    haveCenter_ = true;
  }
}

void PvtSearch::stepTrm() {
  const std::size_t dim = problem_.space.dim();

  // Train every active surrogate on its own *local* trajectory (D_L).
  for (auto& cs : active_) {
    if (!cs.surrogate || cs.data.empty()) continue;
    LocalDataset::Selection sel = cs.data.selectLocal(
        center_.unit, config_.explorer.localityFactor * tr_.radius(),
        config_.explorer.minLocalSamples);
    if (sel.inputs.empty()) continue;
    cs.surrogate->setData(std::move(sel.inputs), std::move(sel.targets));
    cs.surrogate->train(rng_);
  }

  // Plan: maximize the minimum predicted value across the pool. The
  // candidate block is generated once (same RNG draw order as the
  // per-sample loop) and every active corner's surrogate scores it in one
  // batched pass; per-candidate scores then reduce by min across corners.
  const double radius = tr_.radius();
  const std::size_t mcSamples = config_.explorer.mcSamples;
  std::uniform_real_distribution<double> unif(-1.0, 1.0);
  linalg::Vector bestUnit;
  double bestModelValue = -std::numeric_limits<double>::infinity();
  if (config_.explorer.batchedPlanning) {
    candBuf_.resize(mcSamples, dim);
    linalg::Vector u(dim);
    for (std::size_t s = 0; s < mcSamples; ++s) {
      for (std::size_t d = 0; d < dim; ++d)
        u[d] = std::clamp(center_.unit[d] + radius * unif(rng_), 0.0, 1.0);
      const linalg::Vector snapped = problem_.space.fromUnitSnapped(u);
      const linalg::Vector su = problem_.space.toUnit(snapped);
      std::copy(su.begin(), su.end(), candBuf_.row(s));
    }
    poolScores_.assign(mcSamples, std::numeric_limits<double>::infinity());
    for (auto& cs : active_) {
      if (!cs.surrogate) continue;
      cs.surrogate->predictBatch(candBuf_, predBuf_);
      for (std::size_t s = 0; s < mcSamples; ++s) {
        const double* pr = predBuf_.row(s);
        rowScratch_.assign(pr, pr + predBuf_.cols());
        poolScores_[s] =
            std::min(poolScores_[s], value_.plannerScore(rowScratch_));
      }
    }
    std::size_t bestIdx = mcSamples;
    for (std::size_t s = 0; s < mcSamples; ++s) {
      const double v = poolScores_[s];
      if (v < std::numeric_limits<double>::infinity() && v > bestModelValue) {
        bestModelValue = v;
        bestIdx = s;
      }
    }
    if (bestIdx < mcSamples) {
      const double* cr = candBuf_.row(bestIdx);
      bestUnit.assign(cr, cr + dim);
    }
  } else {
    for (std::size_t s = 0; s < mcSamples; ++s) {
      linalg::Vector u(dim);
      for (std::size_t d = 0; d < dim; ++d)
        u[d] = std::clamp(center_.unit[d] + radius * unif(rng_), 0.0, 1.0);
      const linalg::Vector snapped = problem_.space.fromUnitSnapped(u);
      const linalg::Vector su = problem_.space.toUnit(snapped);
      double v = std::numeric_limits<double>::infinity();
      for (auto& cs : active_) {
        if (!cs.surrogate) continue;
        v = std::min(v, value_.plannerScore(cs.surrogate->predict(su)));
      }
      if (v < std::numeric_limits<double>::infinity() && v > bestModelValue) {
        bestModelValue = v;
        bestUnit = su;
      }
    }
  }
  if (bestUnit.empty()) {
    phase_ = Phase::kEpisodeStart;
    return;
  }

  double predictedCenter = std::numeric_limits<double>::infinity();
  for (auto& cs : active_) {
    if (!cs.surrogate) continue;
    predictedCenter = std::min(
        predictedCenter, value_.plannerScore(cs.surrogate->predict(center_.unit)));
  }
  const double predictedDelta = bestModelValue - predictedCenter;

  Point trial = evaluatePoint(problem_.space.fromUnit(bestUnit));
  if (poolSatisfied(trial) && verifyAndExpand(trial)) {
    phase_ = Phase::kDone;
    return;
  }
  if (result_.solved) {
    phase_ = Phase::kDone;
    return;
  }

  const double actualDelta =
      trial.value <= kFailedValue ? -1.0 : trial.value - center_.value;
  const TrustRegionStep step = tr_.evaluateStep(predictedDelta, actualDelta);
  if (step.accepted && trial.value > kFailedValue) {
    sinceImprovement_ = trial.value > center_.value ? 0 : sinceImprovement_ + 1;
    center_ = std::move(trial);
  } else {
    ++sinceImprovement_;
  }

  if (++sinceRestart_ > config_.explorer.restartAfter ||
      sinceImprovement_ > config_.explorer.stagnationPatience) {
    phase_ = Phase::kEpisodeStart;  // escape criterion: fresh global sampling
    for (auto& cs : active_)
      if (cs.surrogate)
        cs.surrogate->reinitialize(config_.seed + 997 * (result_.totalSims + 1));
  }

  ++trmSteps_;
  if (config_.autoCheckpointEvery != 0 &&
      trmSteps_ % config_.autoCheckpointEvery == 0)
    saveCheckpoint(config_.autoCheckpointPath);
}

// ---- Checkpointing --------------------------------------------------------

namespace {

/// The (key, value) fingerprint the checkpoint is stamped with; restoring
/// into a search whose fingerprint differs names the first mismatching key.
std::vector<std::pair<std::string, std::string>> fingerprintOf(
    const SizingProblem& problem, const PvtSearchConfig& config) {
  std::vector<std::pair<std::string, std::string>> fp;
  const auto num = [](double v) {
    std::ostringstream os;
    os.precision(17);
    os << v;
    return os.str();
  };
  fp.emplace_back("problem", problem.name);
  fp.emplace_back("dim", std::to_string(problem.space.dim()));
  for (const auto& p : problem.space.params())
    fp.emplace_back("param:" + p.name,
                    num(p.lo) + ":" + num(p.hi) + ":" +
                        std::to_string(p.steps) + ":" +
                        (p.logScale ? "log" : "lin"));
  for (const auto& m : problem.measurementNames)
    fp.emplace_back("measurement", m);
  // Spec thresholds shape the ValueFunction, the solved flag and every TRM
  // acceptance decision — a checkpoint saved under different specs must be
  // rejected, not silently continued.
  for (const auto& s : problem.specs)
    fp.emplace_back("spec:" + s.measurement,
                    std::string(s.kind == SpecKind::kAtLeast ? ">=" : "<=") +
                        num(s.limit));
  // Full corner conditions, not just the count: the restored memo is keyed
  // by corner *index*, so reusing it under silently-changed conditions would
  // serve stale simulations.
  fp.emplace_back("corners", std::to_string(problem.corners.size()));
  for (std::size_t c = 0; c < problem.corners.size(); ++c) {
    const sim::PvtCorner& pc = problem.corners[c];
    fp.emplace_back("corner:" + std::to_string(c),
                    std::to_string(static_cast<int>(pc.corner)) + ":" +
                        num(pc.vdd) + "V:" + num(pc.tempC) + "C");
  }
  fp.emplace_back("strategy", std::string(toString(config.strategy)));
  fp.emplace_back("seed", std::to_string(config.seed));
  const LocalExplorerConfig& e = config.explorer;
  fp.emplace_back("initSamples", std::to_string(e.initSamples));
  fp.emplace_back("mcSamples", std::to_string(e.mcSamples));
  fp.emplace_back("restartAfter", std::to_string(e.restartAfter));
  fp.emplace_back("stagnationPatience", std::to_string(e.stagnationPatience));
  fp.emplace_back("localityFactor", num(e.localityFactor));
  fp.emplace_back("minLocalSamples", std::to_string(e.minLocalSamples));
  fp.emplace_back("batchedPlanning", e.batchedPlanning ? "1" : "0");
  fp.emplace_back("cacheEvals",
                  (config.cacheEvals && e.cacheEvals) ? "1" : "0");
  const TrustRegionConfig& t = e.trustRegion;
  fp.emplace_back("trustRegion", num(t.initRadius) + ":" + num(t.minRadius) +
                                     ":" + num(t.maxRadius) + ":" +
                                     (t.adaptive ? "1" : "0"));
  const SurrogateConfig& s = e.surrogate;
  fp.emplace_back("surrogate", std::to_string(s.hiddenWidth) + "x" +
                                   std::to_string(s.hiddenLayers) + ":" +
                                   num(s.learningRate) + ":" +
                                   std::to_string(s.epochsPerUpdate) + ":" +
                                   std::to_string(s.batchSize));
  return fp;
}

void writePoint(io::SectionWriter& w, const linalg::Vector& sizes,
                const linalg::Vector& unit,
                const std::vector<EvalResult>& evals, double value) {
  w.vec(sizes);
  w.vec(unit);
  w.u64(evals.size());
  for (const auto& e : evals) io::writeEvalResult(w, e);
  w.f64(value);
}

}  // namespace

void PvtSearch::save(io::CheckpointWriter& w) const {
  io::SectionWriter& fw = w.section("fingerprint");
  const auto fp = fingerprintOf(problem_, config_);
  fw.u64(fp.size());
  for (const auto& [k, v] : fp) {
    fw.str(k);
    fw.str(v);
  }

  io::writeRng(w.section("rng"), rng_);

  io::SectionWriter& sw = w.section("search");
  sw.boolean(initialized_);
  sw.u8(static_cast<std::uint8_t>(phase_));
  sw.u64(initK_);
  sw.boolean(haveCenter_);
  writePoint(sw, center_.sizes, center_.unit, center_.evals, center_.value);
  sw.f64(tr_.radius());
  sw.u64(sinceRestart_);
  sw.u64(sinceImprovement_);
  sw.u64(trmSteps_);
  sw.u64(isActive_.size());
  for (const char a : isActive_) sw.boolean(a != 0);
  sw.boolean(measDim_.has_value());
  sw.u64(measDim_.value_or(0));
  sw.boolean(result_.solved);
  sw.u64(result_.totalSims);
  writePoint(sw, result_.sizes, {}, result_.cornerEvals, 0.0);
  sw.u64(result_.cornersActivated);
  // ValueFunction's one piece of mutable state (the planner margin bonus).
  sw.f64(value_.marginBonus());

  io::SectionWriter& cw = w.section("corners");
  cw.u64(active_.size());
  for (const auto& cs : active_) {
    cw.u64(cs.index);
    io::writeDataset(cw, cs.data);
    cw.boolean(cs.surrogate != nullptr);
    if (cs.surrogate) io::writeSurrogate(cw, *cs.surrogate);
  }

  engine_.saveState(w.section("engine"));
}

void PvtSearch::saveCheckpoint(const std::string& path) const {
  io::CheckpointWriter w(kCheckpointKind);
  save(w);
  w.writeFile(path);
}

void PvtSearch::restore(const io::CheckpointReader& r) {
  // A failure below (corrupt section, version skew) must not leave a
  // half-restored hybrid behind: reset to the freshly-constructed state so a
  // caller that catches the error and runs anyway gets a clean search.
  try {
    restoreSections(r);
  } catch (...) {
    initialized_ = false;
    phase_ = Phase::kEpisodeStart;
    initK_ = 0;
    haveCenter_ = false;
    center_ = Point{};
    tr_ = TrustRegion(config_.explorer.trustRegion);
    sinceRestart_ = 0;
    sinceImprovement_ = 0;
    trmSteps_ = 0;
    isActive_.clear();
    measDim_.reset();
    result_ = PvtSearchOutcome{};
    active_.clear();
    rng_.seed(config_.seed);
    value_ = ValueFunction(problem_.measurementNames, problem_.specs);
    engine_.resetAccounting();
    engine_.clearCache();
    throw;
  }
}

void PvtSearch::restoreSections(const io::CheckpointReader& r) {
  r.expectKind(kCheckpointKind);

  io::SectionReader fr = r.section("fingerprint");
  const auto current = fingerprintOf(problem_, config_);
  const std::uint64_t n = fr.u64();
  if (n != current.size())
    fr.fail("fingerprint has " + std::to_string(n) + " entries, this search " +
            std::to_string(current.size()) +
            " — checkpoint was saved from a different problem/configuration");
  for (std::uint64_t i = 0; i < n; ++i) {
    const std::string key = fr.str();
    const std::string value = fr.str();
    if (key != current[i].first || value != current[i].second)
      fr.fail("mismatch at '" + key + "': checkpoint has '" + value +
              "', this search has '" + current[i].first + "=" +
              current[i].second +
              "' — restore requires the same problem and configuration");
  }
  fr.expectEnd();

  io::SectionReader rr = r.section("rng");
  io::readRng(rr, rng_);
  rr.expectEnd();

  io::SectionReader sr = r.section("search");
  initialized_ = sr.boolean();
  const std::uint8_t phase = sr.u8();
  if (phase > static_cast<std::uint8_t>(Phase::kDone))
    sr.fail("unknown search phase " + std::to_string(phase));
  phase_ = static_cast<Phase>(phase);
  initK_ = sr.u64();
  haveCenter_ = sr.boolean();
  center_.sizes = sr.vec();
  center_.unit = sr.vec();
  center_.evals.clear();
  const std::uint64_t nCenterEvals = sr.u64();
  for (std::uint64_t i = 0; i < nCenterEvals; ++i)
    center_.evals.push_back(io::readEvalResult(sr));
  center_.value = sr.f64();
  tr_ = TrustRegion(config_.explorer.trustRegion);
  tr_.setRadius(sr.f64());
  sinceRestart_ = sr.u64();
  sinceImprovement_ = sr.u64();
  trmSteps_ = sr.u64();
  const std::uint64_t nActiveFlags = sr.u64();
  // A snapshot taken before the first run() has no pool yet (empty flags,
  // initialized_ false) and restores to a fresh search; anything else must
  // match the corner count exactly.
  if (nActiveFlags != problem_.corners.size() &&
      !(nActiveFlags == 0 && !initialized_))
    sr.fail("active-flag count does not match the corner count");
  isActive_.assign(nActiveFlags, 0);
  for (auto& a : isActive_) a = sr.boolean() ? 1 : 0;
  const bool hasMeasDim = sr.boolean();
  const std::uint64_t measDim = sr.u64();
  measDim_ = hasMeasDim ? std::optional<std::size_t>(measDim) : std::nullopt;
  result_ = PvtSearchOutcome{};
  result_.solved = sr.boolean();
  result_.totalSims = sr.u64();
  result_.sizes = sr.vec();
  (void)sr.vec();  // writePoint's unused unit slot
  result_.cornerEvals.clear();
  const std::uint64_t nFinals = sr.u64();
  for (std::uint64_t i = 0; i < nFinals; ++i)
    result_.cornerEvals.push_back(io::readEvalResult(sr));
  (void)sr.f64();  // writePoint's unused value slot
  result_.cornersActivated = sr.u64();
  value_.setMarginBonus(sr.f64());
  sr.expectEnd();

  io::SectionReader cr = r.section("corners");
  const std::uint64_t nActive = cr.u64();
  active_.clear();
  const std::size_t dim = problem_.space.dim();
  for (std::uint64_t i = 0; i < nActive; ++i) {
    CornerState cs;
    cs.index = cr.u64();
    if (cs.index >= problem_.corners.size())
      cr.fail("active corner index " + std::to_string(cs.index) +
              " out of range");
    io::readDataset(cr, cs.data);
    if (cr.boolean()) {
      if (!measDim_.has_value())
        cr.fail("corner has a surrogate but no measurement dimension was "
                "recorded");
      cs.surrogate = std::make_unique<SpiceSurrogate>(
          dim, *measDim_, config_.explorer.surrogate,
          config_.seed + 101 * (cs.index + 1));
      io::readSurrogate(cr, *cs.surrogate);
    }
    active_.push_back(std::move(cs));
  }
  cr.expectEnd();

  io::SectionReader er = r.section("engine");
  engine_.restoreState(er);
  er.expectEnd();
}

void PvtSearch::restoreCheckpoint(const std::string& path) {
  const io::CheckpointReader r = io::CheckpointReader::fromFile(path);
  restore(r);
}

}  // namespace trdse::core
