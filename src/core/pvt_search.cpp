#include "core/pvt_search.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "pvt/corners.hpp"

namespace trdse::core {

std::string_view toString(PvtStrategy s) {
  switch (s) {
    case PvtStrategy::kBruteForce:
      return "brute-force";
    case PvtStrategy::kProgressiveRandom:
      return "progressive(random)";
    case PvtStrategy::kProgressiveHardest:
      return "progressive(hardest)";
  }
  return "?";
}

PvtSearch::PvtSearch(SizingProblem problem, PvtSearchConfig config)
    : problem_(std::move(problem)),
      config_(std::move(config)),
      // note: value_ must be built from the member, not the moved-from param
      value_(problem_.measurementNames, problem_.specs),
      // Caching is on only when both the search-level and the embedded
      // explorer-level flag allow it, so an explorerOverride with
      // cacheEvals=false (the paper-accounting reproduction path) is honored
      // here too.
      engine_(problem_,
              eval::EvalEngineConfig{
                  config_.cacheEvals && config_.explorer.cacheEvals,
                  config_.evalThreads}),
      rng_(config_.seed) {}

std::vector<EvalResult> PvtSearch::evalCorners(
    const std::vector<std::size_t>& corners, const linalg::Vector& sizes,
    pvt::BlockKind kind, PvtSearchOutcome& out) {
  // The engine memoizes, fans real simulations across its pool, merges in
  // request order, and records the ledger blocks; the search budget is
  // charged per logical request so trajectories are cache-invariant.
  std::vector<EvalResult> results = engine_.evalBatch(corners, sizes, kind);
  out.totalSims = engine_.stats().requests;
  return results;
}

double PvtSearch::poolValue(const std::vector<EvalResult>& evals) const {
  // min over corners of the plannerScore — the paper's "lowest expected
  // value" candidate rule, with the same margin tie-break the single-corner
  // explorer plans with.
  double v = std::numeric_limits<double>::infinity();
  for (const auto& e : evals)
    v = std::min(v, e.ok ? value_.plannerScore(e.measurements) : kFailedValue);
  return evals.empty() ? kFailedValue : v;
}

PvtSearchOutcome PvtSearch::run(std::size_t maxSims) {
  // Fresh per-run accounting (the memo survives across runs: backends are
  // pure, so earlier results stay valid and keep saving blocks).
  engine_.resetAccounting();
  PvtSearchOutcome out = runSearch(maxSims);
  out.ledger = engine_.ledger();
  out.evalStats = engine_.stats();
  return out;
}

PvtSearchOutcome PvtSearch::runSearch(std::size_t maxSims) {
  PvtSearchOutcome out;
  const std::size_t nCorners = problem_.corners.size();
  assert(nCorners > 0);

  // ---- Choose the initial active pool.
  std::vector<bool> isActive(nCorners, false);
  active_.clear();
  auto activate = [&](std::size_t idx) {
    if (isActive[idx]) return;
    isActive[idx] = true;
    CornerState cs;
    cs.index = idx;
    active_.push_back(std::move(cs));
    out.cornersActivated = active_.size();
  };
  switch (config_.strategy) {
    case PvtStrategy::kBruteForce:
      for (std::size_t i = 0; i < nCorners; ++i) activate(i);
      break;
    case PvtStrategy::kProgressiveRandom: {
      std::uniform_int_distribution<std::size_t> d(0, nCorners - 1);
      activate(d(rng_));
      break;
    }
    case PvtStrategy::kProgressiveHardest: {
      const auto order = pvt::heuristicHardestFirst(
          problem_.corners, problem_.corners.front().vdd);
      activate(order.front());
      break;
    }
  }

  const std::size_t dim = problem_.space.dim();
  std::optional<std::size_t> measDim;
  auto ensureSurrogates = [&](std::size_t mDim) {
    measDim = mDim;
    for (auto& cs : active_) {
      if (!cs.surrogate) {
        cs.surrogate = std::make_unique<SpiceSurrogate>(
            dim, mDim, config_.explorer.surrogate,
            config_.seed + 101 * (cs.index + 1));
      }
    }
  };

  struct Point {
    linalg::Vector sizes;
    linalg::Vector unit;
    std::vector<EvalResult> evals;  // parallel to active_
    double value = kFailedValue;
  };

  // Evaluate a point on every active corner (optionally bailing early once a
  // corner fails hard is *not* done: every active corner's model needs data).
  // The corner simulations fan out across the pool; trajectory bookkeeping
  // runs after the join, in pool order.
  std::vector<std::size_t> cornerIdxScratch;
  auto evaluatePoint = [&](const linalg::Vector& rawSizes) {
    Point p;
    p.sizes = problem_.space.snap(rawSizes);
    p.unit = problem_.space.toUnit(p.sizes);
    cornerIdxScratch.clear();
    for (const auto& cs : active_) cornerIdxScratch.push_back(cs.index);
    p.evals = evalCorners(cornerIdxScratch, p.sizes, pvt::BlockKind::kSearch, out);
    for (std::size_t i = 0; i < active_.size(); ++i) {
      const EvalResult& r = p.evals[i];
      if (r.ok) {
        if (!measDim.has_value()) ensureSurrogates(r.measurements.size());
        active_[i].data.add(p.unit, r.measurements);
      }
    }
    p.value = poolValue(p.evals);
    return p;
  };

  auto poolSatisfied = [&](const Point& p) {
    for (const auto& e : p.evals)
      if (!e.ok || !value_.satisfied(e.measurements)) return false;
    return true;
  };

  // Verify inactive corners; returns true when all pass, otherwise activates
  // the failing corner with the lowest value (paper IV-E).
  auto verifyAndExpand = [&](const Point& p) {
    std::size_t worstIdx = nCorners;
    double worstValue = 1.0;
    std::vector<EvalResult> finals(nCorners);
    for (std::size_t i = 0; i < active_.size(); ++i)
      finals[active_[i].index] = p.evals[i];
    cornerIdxScratch.clear();
    for (std::size_t c = 0; c < nCorners; ++c)
      if (!isActive[c]) cornerIdxScratch.push_back(c);
    std::vector<EvalResult> verdicts =
        evalCorners(cornerIdxScratch, p.sizes, pvt::BlockKind::kVerify, out);
    for (std::size_t i = 0; i < cornerIdxScratch.size(); ++i) {
      const std::size_t c = cornerIdxScratch[i];
      EvalResult& r = verdicts[i];
      const double v = value_.valueOf(r);
      const bool pass = r.ok && value_.satisfied(r.measurements);
      finals[c] = std::move(r);
      if (!pass && v < worstValue) {
        worstValue = v;
        worstIdx = c;
      }
    }
    if (worstIdx == nCorners) {
      out.solved = true;
      out.sizes = p.sizes;
      out.cornerEvals = std::move(finals);
      return true;
    }
    activate(worstIdx);
    if (measDim.has_value()) ensureSurrogates(*measDim);
    return false;
  };

  // ---- Generalized Algorithm 1 over the active pool.
  bool needEpisode = true;
  Point center;
  TrustRegion tr(config_.explorer.trustRegion);
  std::size_t sinceRestart = 0;
  std::size_t sinceImprovement = 0;

  while (out.totalSims < maxSims) {
    if (needEpisode) {
      center = Point{};
      bool have = false;
      for (std::size_t k = 0; k < config_.explorer.initSamples &&
                              out.totalSims < maxSims;
           ++k) {
        Point p = evaluatePoint(problem_.space.randomPoint(rng_));
        if (poolSatisfied(p) && verifyAndExpand(p)) return out;
        if (out.solved) return out;
        if (p.value > center.value || !have) {
          center = std::move(p);
          have = true;
        }
      }
      if (!have || !measDim.has_value()) continue;  // all failed: resample
      tr = TrustRegion(config_.explorer.trustRegion);
      sinceRestart = 0;
      sinceImprovement = 0;
      needEpisode = false;
      continue;
    }

    // Train every active surrogate on its own *local* trajectory (D_L).
    for (auto& cs : active_) {
      if (!cs.surrogate || cs.data.empty()) continue;
      LocalDataset::Selection sel = cs.data.selectLocal(
          center.unit, config_.explorer.localityFactor * tr.radius(),
          config_.explorer.minLocalSamples);
      if (sel.inputs.empty()) continue;
      cs.surrogate->setData(std::move(sel.inputs), std::move(sel.targets));
      cs.surrogate->train(rng_);
    }

    // Plan: maximize the minimum predicted value across the pool. The
    // candidate block is generated once (same RNG draw order as the
    // per-sample loop) and every active corner's surrogate scores it in one
    // batched pass; per-candidate scores then reduce by min across corners.
    const double radius = tr.radius();
    const std::size_t mcSamples = config_.explorer.mcSamples;
    std::uniform_real_distribution<double> unif(-1.0, 1.0);
    linalg::Vector bestUnit;
    double bestModelValue = -std::numeric_limits<double>::infinity();
    if (config_.explorer.batchedPlanning) {
      candBuf_.resize(mcSamples, dim);
      linalg::Vector u(dim);
      for (std::size_t s = 0; s < mcSamples; ++s) {
        for (std::size_t d = 0; d < dim; ++d)
          u[d] = std::clamp(center.unit[d] + radius * unif(rng_), 0.0, 1.0);
        const linalg::Vector snapped = problem_.space.fromUnitSnapped(u);
        const linalg::Vector su = problem_.space.toUnit(snapped);
        std::copy(su.begin(), su.end(), candBuf_.row(s));
      }
      poolScores_.assign(mcSamples, std::numeric_limits<double>::infinity());
      for (auto& cs : active_) {
        if (!cs.surrogate) continue;
        cs.surrogate->predictBatch(candBuf_, predBuf_);
        for (std::size_t s = 0; s < mcSamples; ++s) {
          const double* pr = predBuf_.row(s);
          rowScratch_.assign(pr, pr + predBuf_.cols());
          poolScores_[s] =
              std::min(poolScores_[s], value_.plannerScore(rowScratch_));
        }
      }
      std::size_t bestIdx = mcSamples;
      for (std::size_t s = 0; s < mcSamples; ++s) {
        const double v = poolScores_[s];
        if (v < std::numeric_limits<double>::infinity() && v > bestModelValue) {
          bestModelValue = v;
          bestIdx = s;
        }
      }
      if (bestIdx < mcSamples) {
        const double* cr = candBuf_.row(bestIdx);
        bestUnit.assign(cr, cr + dim);
      }
    } else {
      for (std::size_t s = 0; s < mcSamples; ++s) {
        linalg::Vector u(dim);
        for (std::size_t d = 0; d < dim; ++d)
          u[d] = std::clamp(center.unit[d] + radius * unif(rng_), 0.0, 1.0);
        const linalg::Vector snapped = problem_.space.fromUnitSnapped(u);
        const linalg::Vector su = problem_.space.toUnit(snapped);
        double v = std::numeric_limits<double>::infinity();
        for (auto& cs : active_) {
          if (!cs.surrogate) continue;
          v = std::min(v, value_.plannerScore(cs.surrogate->predict(su)));
        }
        if (v < std::numeric_limits<double>::infinity() && v > bestModelValue) {
          bestModelValue = v;
          bestUnit = su;
        }
      }
    }
    if (bestUnit.empty()) {
      needEpisode = true;
      continue;
    }

    double predictedCenter = std::numeric_limits<double>::infinity();
    for (auto& cs : active_) {
      if (!cs.surrogate) continue;
      predictedCenter = std::min(
          predictedCenter, value_.plannerScore(cs.surrogate->predict(center.unit)));
    }
    const double predictedDelta = bestModelValue - predictedCenter;

    Point trial = evaluatePoint(problem_.space.fromUnit(bestUnit));
    if (poolSatisfied(trial) && verifyAndExpand(trial)) return out;
    if (out.solved) return out;

    const double actualDelta =
        trial.value <= kFailedValue ? -1.0 : trial.value - center.value;
    const TrustRegionStep step = tr.evaluateStep(predictedDelta, actualDelta);
    if (step.accepted && trial.value > kFailedValue) {
      sinceImprovement = trial.value > center.value ? 0 : sinceImprovement + 1;
      center = std::move(trial);
    } else {
      ++sinceImprovement;
    }

    if (++sinceRestart > config_.explorer.restartAfter ||
        sinceImprovement > config_.explorer.stagnationPatience) {
      needEpisode = true;  // escape criterion: fresh global sampling
      for (auto& cs : active_)
        if (cs.surrogate)
          cs.surrogate->reinitialize(config_.seed + 997 * (out.totalSims + 1));
    }
  }
  return out;
}

}  // namespace trdse::core
