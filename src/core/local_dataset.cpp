#include "core/local_dataset.hpp"

#include <algorithm>
#include <cmath>

namespace trdse::core {

LocalDataset::Selection LocalDataset::selectLocal(const linalg::Vector& center,
                                                  double cut,
                                                  std::size_t minCount) const {
  Selection sel;
  std::vector<std::pair<double, std::size_t>> byDistance;
  byDistance.reserve(unit_.size());
  for (std::size_t i = 0; i < unit_.size(); ++i) {
    double d = 0.0;
    for (std::size_t k = 0; k < center.size(); ++k)
      d = std::max(d, std::abs(unit_[i][k] - center[k]));
    byDistance.emplace_back(d, i);
    if (d <= cut) {
      sel.inputs.push_back(unit_[i]);
      sel.targets.push_back(meas_[i]);
    }
  }
  if (sel.inputs.size() < minCount && !byDistance.empty()) {
    const std::size_t k = std::min(minCount, byDistance.size());
    std::partial_sort(byDistance.begin(), byDistance.begin() + static_cast<long>(k),
                      byDistance.end());
    sel.inputs.clear();
    sel.targets.clear();
    for (std::size_t i = 0; i < k; ++i) {
      sel.inputs.push_back(unit_[byDistance[i].second]);
      sel.targets.push_back(meas_[byDistance[i].second]);
    }
  }
  return sel;
}

}  // namespace trdse::core
