// Progressive PVT exploration (paper Section IV-E, Fig. 3, Table III).
//
// Rather than verifying every corner on every iteration (brute force), the
// search focuses on a small *active pool* of conditions — initially one,
// chosen at random or by designer's hardest-first heuristic. Once the
// candidate meets spec on the whole pool, the remaining corners are verified
// (one EDA block each); the failing corner with the lowest value joins the
// pool, and the search resumes. Each active corner keeps its own independent
// surrogate model; planning scores a candidate by its *minimum* predicted
// value across the pool (the paper's "lowest expected value" rule).
#pragma once

#include <memory>
#include <optional>
#include <random>

#include "core/local_explorer.hpp"
#include "core/problem.hpp"
#include "core/surrogate.hpp"
#include "core/trust_region.hpp"
#include "core/value.hpp"
#include "eval/eval_engine.hpp"
#include "pvt/ledger.hpp"

namespace trdse::io {
class CheckpointReader;
class CheckpointWriter;
}  // namespace trdse::io

namespace trdse::core {

/// How the active corner pool is seeded and grown.
enum class PvtStrategy : std::uint8_t {
  kBruteForce,          ///< all corners active from the start
  kProgressiveRandom,   ///< start from a uniformly random corner
  kProgressiveHardest,  ///< start from the heuristically hardest corner
};

/// Human-readable strategy name (bench/report labels).
std::string_view toString(PvtStrategy s);

/// Parameters of the progressive PVT search.
struct PvtSearchConfig {
  PvtStrategy strategy = PvtStrategy::kProgressiveHardest;  ///< pool policy
  LocalExplorerConfig explorer;  ///< per-corner surrogate/TRM settings
  std::uint64_t seed = 1;        ///< seed for corner choice and exploration
  /// Worker threads for corner evaluation: the same sizing is simulated on
  /// every active (and, during sign-off, every inactive) corner, and those
  /// simulations are independent, so they fan out across the eval engine's
  /// thread pool. Results are merged in corner order, so the outcome is
  /// identical for any thread count — but the evaluation callback must be
  /// thread-safe (every circuits:: evaluator is; it builds its own testbench
  /// per call). 1 = serial (inline, the default), 0 = hardware concurrency.
  std::size_t evalThreads = 1;
  /// Memoize evaluations on (snapped grid indices, corner id) in the eval
  /// engine. Cache hits cost zero EDA blocks (tallied separately in the
  /// ledger/stats); the seeded search trajectory — solved flag, sizes,
  /// totalSims, corner evals, ledger block sequence — is bitwise identical
  /// with the cache on or off. Effective only when
  /// `explorer.cacheEvals` is also set (either flag disables caching).
  bool cacheEvals = true;
  /// Auto-checkpoint cadence: every `autoCheckpointEvery` completed TRM
  /// steps the full search state is written to `autoCheckpointPath`
  /// (0 = off). A run killed at any point resumes from the last snapshot
  /// bitwise (see docs/CHECKPOINTS.md for the determinism contract).
  std::size_t autoCheckpointEvery = 0;
  /// Destination of the periodic snapshots (required when
  /// `autoCheckpointEvery` is non-zero).
  std::string autoCheckpointPath;
};

/// Result of one progressive PVT search run.
struct PvtSearchOutcome {
  bool solved = false;        ///< every corner met spec at sign-off
  /// Logical evaluations consumed (search + verify). With caching on, hits
  /// count here (the budget is charged identically) but consume no EDA time
  /// — see evalStats.simulated for the real block count.
  std::size_t totalSims = 0;
  linalg::Vector sizes;       ///< final (or best) sizing
  std::vector<EvalResult> cornerEvals;  ///< final per-corner measurements
  std::size_t cornersActivated = 0;     ///< pool size at termination
  pvt::EdaLedger ledger;                ///< per-block accounting (Table III)
  eval::EvalStats evalStats;            ///< cache hit/miss + backend timing
};

/// Progressive multi-corner trust-region search (paper IV-E).
///
/// The search is a resumable state machine: run() advances it until the
/// cumulative logical budget `maxSims` is reached (budget checks sit exactly
/// where the original single-pass loop had them), so a run paused by a
/// smaller budget — or killed and restored from a checkpoint — continues to
/// the same SearchOutcome, ledger and stats, bit for bit, as an
/// uninterrupted run. saveCheckpoint()/restoreCheckpoint() persist the full
/// state: per-corner surrogates (weights + Adam moments + scalers),
/// trajectories, trust-region radius, RNG stream, eval-engine memo and
/// accounting, and the loop position itself.
class PvtSearch {
 public:
  /// The problem is copied (callbacks + metadata), so temporaries are safe.
  PvtSearch(SizingProblem problem, PvtSearchConfig config);

  /// Advance until all corners sign off or `maxSims` cumulative logical EDA
  /// blocks are consumed. May be called again with a larger budget to
  /// continue the same search (the outcome so far is returned either way).
  PvtSearchOutcome run(std::size_t maxSims);

  /// The engine all evaluations route through (cache/ledger inspection).
  const eval::EvalEngine& engine() const { return engine_; }
  /// Mutable engine access (orchestrator shared-cache attachment/publish —
  /// see opt::Strategy and eval::SharedEvalCache).
  eval::EvalEngine& engine() { return engine_; }

  /// The configuration this search runs under.
  const PvtSearchConfig& config() const { return config_; }

  /// Snapshot the full search state into a versioned checkpoint file.
  /// Throws io::CheckpointError when the file cannot be written.
  void saveCheckpoint(const std::string& path) const;
  /// Snapshot into an in-memory writer (stream/file-free composition).
  void save(io::CheckpointWriter& w) const;
  /// Restore a snapshot written by saveCheckpoint; the next run() continues
  /// bitwise. The search must have been constructed with the same problem
  /// and configuration (specs and corner conditions included) — mismatches
  /// throw io::CheckpointError. On any restore failure the search is reset
  /// to its freshly-constructed state, never left half-restored.
  void restoreCheckpoint(const std::string& path);
  /// Restore from a parsed checkpoint (see restoreCheckpoint).
  void restore(const io::CheckpointReader& r);

 private:
  struct CornerState {
    std::size_t index = 0;
    std::unique_ptr<SpiceSurrogate> surrogate;  // built on first good sample
    LocalDataset data;  ///< this corner's trajectory (unit space)
  };

  /// One fully-evaluated candidate (evals parallel to the active pool).
  struct Point {
    linalg::Vector sizes;
    linalg::Vector unit;
    std::vector<EvalResult> evals;
    double value = kFailedValue;
  };

  /// Where the search loop stands between two budget checks.
  enum class Phase : std::uint8_t {
    kEpisodeStart,  ///< about to reset the center and start init sampling
    kInitSample,    ///< inside Algorithm 1 line 2 (one sample per step)
    kTrmStep,       ///< alternating train/plan/evaluate TRM iterations
    kDone,          ///< solved — run() returns immediately
  };

  /// Evaluate `sizes` on several corners through the engine (batched,
  /// memoized, thread-parallel with request-order merge) and charge the
  /// logical budget.
  std::vector<EvalResult> evalCorners(const std::vector<std::size_t>& corners,
                                      const linalg::Vector& sizes,
                                      pvt::BlockKind kind);

  /// min over active corners of Value(eval) for an already-evaluated point.
  double poolValue(const std::vector<EvalResult>& evals) const;

  /// Seed the active pool per the configured strategy (one rng_ draw for the
  /// random strategy) and reset per-run engine accounting.
  void initialize();
  /// Add corner `idx` to the active pool (idempotent).
  void activate(std::size_t idx);
  /// Build surrogates for active corners that lack one (measDim_ known).
  void ensureSurrogates(std::size_t measDim);
  /// SPICE a raw point on the whole active pool + bookkeeping.
  Point evaluatePoint(const linalg::Vector& rawSizes);
  /// Every active-corner eval converged and satisfied the specs.
  bool poolSatisfied(const Point& p) const;
  /// Verify inactive corners; true when all pass (search solved), otherwise
  /// activates the failing corner with the lowest value.
  bool verifyAndExpand(const Point& p);

  /// Advance one state-machine step (at most one budget-checked unit of
  /// work — one init sample or one full TRM iteration; the budget check
  /// itself lives in run()'s loop condition).
  void stepOnce();
  void stepInitSample();
  void stepTrm();

  /// restore() body; restore() wraps it to reset on failure.
  void restoreSections(const io::CheckpointReader& r);

  SizingProblem problem_;
  PvtSearchConfig config_;
  ValueFunction value_;
  eval::EvalEngine engine_;
  std::vector<CornerState> active_;
  std::mt19937_64 rng_;

  // ---- Resumable loop state (all of it lands in checkpoints) ----
  bool initialized_ = false;
  Phase phase_ = Phase::kEpisodeStart;
  std::size_t initK_ = 0;          ///< init samples taken this episode
  bool haveCenter_ = false;
  Point center_;
  TrustRegion tr_;
  std::size_t sinceRestart_ = 0;
  std::size_t sinceImprovement_ = 0;
  std::size_t trmSteps_ = 0;       ///< completed TRM steps (checkpoint cadence)
  std::vector<char> isActive_;     ///< per-corner active flag
  std::optional<std::size_t> measDim_;
  PvtSearchOutcome result_;        ///< outcome accumulated so far

  // Planning/evaluation scratch, reused across TRM steps.
  linalg::Matrix candBuf_;
  linalg::Matrix predBuf_;
  linalg::Vector rowScratch_;
  std::vector<double> poolScores_;
  std::vector<std::size_t> cornerIdxScratch_;
};

}  // namespace trdse::core
