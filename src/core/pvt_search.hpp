// Progressive PVT exploration (paper Section IV-E, Fig. 3, Table III).
//
// Rather than verifying every corner on every iteration (brute force), the
// search focuses on a small *active pool* of conditions — initially one,
// chosen at random or by designer's hardest-first heuristic. Once the
// candidate meets spec on the whole pool, the remaining corners are verified
// (one EDA block each); the failing corner with the lowest value joins the
// pool, and the search resumes. Each active corner keeps its own independent
// surrogate model; planning scores a candidate by its *minimum* predicted
// value across the pool (the paper's "lowest expected value" rule).
#pragma once

#include <memory>
#include <random>

#include "core/local_explorer.hpp"
#include "core/problem.hpp"
#include "core/surrogate.hpp"
#include "core/trust_region.hpp"
#include "core/value.hpp"
#include "eval/eval_engine.hpp"
#include "pvt/ledger.hpp"

namespace trdse::core {

/// How the active corner pool is seeded and grown.
enum class PvtStrategy : std::uint8_t {
  kBruteForce,          ///< all corners active from the start
  kProgressiveRandom,   ///< start from a uniformly random corner
  kProgressiveHardest,  ///< start from the heuristically hardest corner
};

/// Human-readable strategy name (bench/report labels).
std::string_view toString(PvtStrategy s);

/// Parameters of the progressive PVT search.
struct PvtSearchConfig {
  PvtStrategy strategy = PvtStrategy::kProgressiveHardest;  ///< pool policy
  LocalExplorerConfig explorer;  ///< per-corner surrogate/TRM settings
  std::uint64_t seed = 1;        ///< seed for corner choice and exploration
  /// Worker threads for corner evaluation: the same sizing is simulated on
  /// every active (and, during sign-off, every inactive) corner, and those
  /// simulations are independent, so they fan out across the eval engine's
  /// thread pool. Results are merged in corner order, so the outcome is
  /// identical for any thread count — but the evaluation callback must be
  /// thread-safe (every circuits:: evaluator is; it builds its own testbench
  /// per call). 1 = serial (inline, the default), 0 = hardware concurrency.
  std::size_t evalThreads = 1;
  /// Memoize evaluations on (snapped grid indices, corner id) in the eval
  /// engine. Cache hits cost zero EDA blocks (tallied separately in the
  /// ledger/stats); the seeded search trajectory — solved flag, sizes,
  /// totalSims, corner evals, ledger block sequence — is bitwise identical
  /// with the cache on or off. Effective only when
  /// `explorer.cacheEvals` is also set (either flag disables caching).
  bool cacheEvals = true;
};

/// Result of one progressive PVT search run.
struct PvtSearchOutcome {
  bool solved = false;        ///< every corner met spec at sign-off
  /// Logical evaluations consumed (search + verify). With caching on, hits
  /// count here (the budget is charged identically) but consume no EDA time
  /// — see evalStats.simulated for the real block count.
  std::size_t totalSims = 0;
  linalg::Vector sizes;       ///< final (or best) sizing
  std::vector<EvalResult> cornerEvals;  ///< final per-corner measurements
  std::size_t cornersActivated = 0;     ///< pool size at termination
  pvt::EdaLedger ledger;                ///< per-block accounting (Table III)
  eval::EvalStats evalStats;            ///< cache hit/miss + backend timing
};

/// Progressive multi-corner trust-region search (paper IV-E).
class PvtSearch {
 public:
  /// The problem is copied (callbacks + metadata), so temporaries are safe.
  PvtSearch(SizingProblem problem, PvtSearchConfig config);

  /// Run until all corners sign off or `maxSims` EDA blocks are consumed.
  PvtSearchOutcome run(std::size_t maxSims);

  /// The engine all evaluations route through (cache/ledger inspection).
  const eval::EvalEngine& engine() const { return engine_; }

 private:
  struct CornerState {
    std::size_t index = 0;
    std::unique_ptr<SpiceSurrogate> surrogate;  // built on first good sample
    LocalDataset data;  ///< this corner's trajectory (unit space)
  };

  /// Evaluate `sizes` on several corners through the engine (batched,
  /// memoized, thread-parallel with request-order merge) and charge the
  /// logical budget.
  std::vector<EvalResult> evalCorners(const std::vector<std::size_t>& corners,
                                      const linalg::Vector& sizes,
                                      pvt::BlockKind kind,
                                      PvtSearchOutcome& out);

  /// min over active corners of Value(eval) for an already-evaluated point.
  double poolValue(const std::vector<EvalResult>& evals) const;

  /// run() body; run() wraps it to harvest engine accounting at every exit.
  PvtSearchOutcome runSearch(std::size_t maxSims);

  SizingProblem problem_;
  PvtSearchConfig config_;
  ValueFunction value_;
  eval::EvalEngine engine_;
  std::vector<CornerState> active_;
  std::mt19937_64 rng_;

  // Planning/evaluation scratch, reused across TRM steps.
  linalg::Matrix candBuf_;
  linalg::Matrix predBuf_;
  linalg::Vector rowScratch_;
  std::vector<double> poolScores_;
};

}  // namespace trdse::core
