// Progressive PVT exploration (paper Section IV-E, Fig. 3, Table III).
//
// Rather than verifying every corner on every iteration (brute force), the
// search focuses on a small *active pool* of conditions — initially one,
// chosen at random or by designer's hardest-first heuristic. Once the
// candidate meets spec on the whole pool, the remaining corners are verified
// (one EDA block each); the failing corner with the lowest value joins the
// pool, and the search resumes. Each active corner keeps its own independent
// surrogate model; planning scores a candidate by its *minimum* predicted
// value across the pool (the paper's "lowest expected value" rule).
#pragma once

#include <memory>
#include <random>

#include "common/thread_pool.hpp"
#include "core/local_explorer.hpp"
#include "core/problem.hpp"
#include "core/surrogate.hpp"
#include "core/trust_region.hpp"
#include "core/value.hpp"
#include "pvt/ledger.hpp"

namespace trdse::core {

/// How the active corner pool is seeded and grown.
enum class PvtStrategy : std::uint8_t {
  kBruteForce,          ///< all corners active from the start
  kProgressiveRandom,   ///< start from a uniformly random corner
  kProgressiveHardest,  ///< start from the heuristically hardest corner
};

/// Human-readable strategy name (bench/report labels).
std::string_view toString(PvtStrategy s);

/// Parameters of the progressive PVT search.
struct PvtSearchConfig {
  PvtStrategy strategy = PvtStrategy::kProgressiveHardest;  ///< pool policy
  LocalExplorerConfig explorer;  ///< per-corner surrogate/TRM settings
  std::uint64_t seed = 1;        ///< seed for corner choice and exploration
  /// Worker threads for corner evaluation: the same sizing is simulated on
  /// every active (and, during sign-off, every inactive) corner, and those
  /// simulations are independent, so they fan out across a thread pool.
  /// Results are merged in corner order, so the outcome is identical for any
  /// thread count — but the evaluation callback must be thread-safe (every
  /// circuits:: evaluator is; it builds its own testbench per call).
  /// 1 = serial (inline, the default), 0 = hardware concurrency.
  std::size_t evalThreads = 1;
};

/// Result of one progressive PVT search run.
struct PvtSearchOutcome {
  bool solved = false;        ///< every corner met spec at sign-off
  std::size_t totalSims = 0;  ///< EDA blocks consumed (search + verify)
  linalg::Vector sizes;       ///< final (or best) sizing
  std::vector<EvalResult> cornerEvals;  ///< final per-corner measurements
  std::size_t cornersActivated = 0;     ///< pool size at termination
  pvt::EdaLedger ledger;                ///< per-block accounting (Table III)
};

/// Progressive multi-corner trust-region search (paper IV-E).
class PvtSearch {
 public:
  /// The problem is copied (callbacks + metadata), so temporaries are safe.
  PvtSearch(SizingProblem problem, PvtSearchConfig config);

  /// Run until all corners sign off or `maxSims` EDA blocks are consumed.
  PvtSearchOutcome run(std::size_t maxSims);

 private:
  struct CornerState {
    std::size_t index = 0;
    std::unique_ptr<SpiceSurrogate> surrogate;  // built on first good sample
    LocalDataset data;  ///< this corner's trajectory (unit space)
  };

  /// Evaluate `sizes` on several corners concurrently (the pool), then
  /// record ledger entries sequentially in list order so accounting and any
  /// downstream RNG use stay deterministic for every thread count.
  std::vector<EvalResult> evalCorners(const std::vector<std::size_t>& corners,
                                      const linalg::Vector& sizes,
                                      pvt::BlockKind kind,
                                      PvtSearchOutcome& out);

  /// min over active corners of Value(eval) for an already-evaluated point.
  double poolValue(const std::vector<EvalResult>& evals) const;

  SizingProblem problem_;
  PvtSearchConfig config_;
  ValueFunction value_;
  std::vector<CornerState> active_;
  std::mt19937_64 rng_;
  common::ThreadPool pool_;

  // Planning/evaluation scratch, reused across TRM steps.
  linalg::Matrix candBuf_;
  linalg::Matrix predBuf_;
  linalg::Vector rowScratch_;
  std::vector<double> poolScores_;
};

}  // namespace trdse::core
