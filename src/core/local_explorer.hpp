// The "fast local explorer" — paper Algorithm 1 — for one PVT condition.
//
// Search loop: Monte Carlo sample the global space, dive into the best
// region, then alternate {train surrogate on trajectory} -> {Monte Carlo plan
// inside the trust region on the surrogate} -> {SPICE the chosen trial} ->
// {TRM accept/reject + radius update}, restarting from a fresh global sample
// when the local region is exhausted (line 15's escape criterion).
//
// Every SPICE invocation — initial samples included — counts one iteration
// against the budget, matching the paper's Table I accounting.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <random>

#include "core/local_dataset.hpp"
#include "core/problem.hpp"
#include "core/surrogate.hpp"
#include "core/trust_region.hpp"
#include "core/value.hpp"
#include "eval/eval_engine.hpp"

namespace trdse::core {

/// Hyper-parameters of the single-condition trust-region search.
struct LocalExplorerConfig {
  std::size_t initSamples = 12;   ///< N of Algorithm 1 line 2
  std::size_t mcSamples = 800;    ///< m of line 10
  std::size_t restartAfter = 70;  ///< Criterion of line 15 (steps since restart)
  /// Early escape: restart when the center has not improved for this many
  /// consecutive TRM steps (a cheaper-to-trigger version of the Criterion —
  /// dead local optima are abandoned before the hard cap).
  std::size_t stagnationPatience = 18;
  /// Surrogate training is restricted to samples within
  /// localityFactor * radius (infinity-norm) of the current center — the
  /// paper's "compact circuit space D_L"; all collected samples are kept and
  /// re-enter training whenever the region slides over them.
  double localityFactor = 3.0;
  std::size_t minLocalSamples = 12;  ///< fall back to nearest-K when sparse
  /// Score all mcSamples trust-region candidates in one batched surrogate
  /// pass (one GEMM per layer) instead of per-sample predict calls. Candidate
  /// generation and selection are bitwise-equivalent to the per-sample loop;
  /// the flag exists for the equivalence tests and A/B benchmarks.
  bool batchedPlanning = true;
  /// Memoize evaluations on snapped grid indices through the eval engine:
  /// re-simulating an already-visited grid point costs zero EDA blocks. The
  /// seeded SearchOutcome (iterations included — the budget is charged per
  /// logical request) is bitwise identical with the cache on or off —
  /// provided the evaluation callback is a pure function of the snapped
  /// sizes (every circuits:: evaluator is); set this false for impure or
  /// stateful callbacks (e.g. per-call noise injection), which must see
  /// every request. PvtSearch honors this flag too: its engine caches only
  /// when both this and PvtSearchConfig::cacheEvals are set.
  bool cacheEvals = true;
  TrustRegionConfig trustRegion;  ///< radius schedule (paper IV-C)
  SurrogateConfig surrogate;      ///< f_NN architecture and training
  std::uint64_t seed = 1;         ///< seed for sampling and network init
  /// When set, the first "random" sample of the first episode is this point —
  /// the process-porting "starting point sharing" strategy (Table II).
  std::optional<linalg::Vector> startingPoint;
  /// When set, surrogate weights are initialized from this network instead of
  /// randomly — the porting "weight sharing" strategy (Table II).
  const nn::Mlp* warmStartWeights = nullptr;
};

/// Single-condition evaluation callback (the Spice function of the CSP).
/// Expected to be a deterministic pure function of the (snapped) sizes when
/// the default evaluation memoization is on — see
/// LocalExplorerConfig::cacheEvals.
using EvalFn = std::function<EvalResult(const linalg::Vector& sizes)>;

/// Step-by-step telemetry of one search run (Fig. 3's raw material).
struct SearchTrace {
  std::vector<double> bestValueHistory;  ///< best-so-far after each simulation
  std::vector<double> radiusHistory;     ///< trust-region radius per TRM step
  std::size_t restarts = 0;              ///< global restarts taken
  std::size_t acceptedSteps = 0;         ///< TRM trials accepted
  std::size_t rejectedSteps = 0;         ///< TRM trials rejected
};

/// Result of one single-condition search run.
struct SearchOutcome {
  bool solved = false;              ///< the CSP was satisfied
  /// Logical SPICE requests consumed; with caching on, revisited grid points
  /// count here but cost no EDA time (see evalStats.simulated).
  std::size_t iterations = 0;
  linalg::Vector sizes;             ///< best (or solving) assignment
  EvalResult eval;                  ///< its measurements
  double bestValue = kFailedValue;  ///< Value of the best assignment
  SearchTrace trace;                ///< per-step telemetry
  eval::EvalStats evalStats;        ///< cache hit/miss + backend timing
};

/// The paper's Algorithm 1: surrogate-guided trust-region search under one
/// PVT condition.
class LocalExplorer {
 public:
  /// The space is copied (it is small), so temporaries are safe to pass.
  LocalExplorer(DesignSpace space, ValueFunction value, EvalFn evaluate,
                LocalExplorerConfig config);

  /// Run until the CSP is satisfied or `maxIterations` simulations are spent.
  SearchOutcome run(std::size_t maxIterations);

  /// Surrogate after a run (for porting: save its weights).
  const SpiceSurrogate& surrogate() const { return surrogate_; }

  /// The engine all evaluations route through (cache/ledger inspection).
  const eval::EvalEngine& engine() const { return *engine_; }

 private:
  struct Evaluated {
    linalg::Vector sizes;
    linalg::Vector unit;
    EvalResult eval;
    double value = kFailedValue;  ///< the paper's Value (reported)
    double score = kFailedValue;  ///< plannerScore (used for TRM decisions)
  };

  /// SPICE one point (through the engine), book-keep trajectory/training
  /// data, update best.
  Evaluated simulate(const linalg::Vector& sizes, SearchOutcome& out);

  /// run() body; run() wraps it to harvest engine accounting at every exit.
  SearchOutcome runSearch(std::size_t maxIterations);

  /// Load the samples near `centerUnit` into the surrogate and train.
  void trainLocal(const linalg::Vector& centerUnit, double radius);

  /// Algorithm 1 line 10: sample mcSamples candidates in the trust region,
  /// score them on the surrogate (batched or per-sample per config), return
  /// the best unit-space point and its model score. `bestUnit` stays empty
  /// when nothing scored.
  void planCandidates(const linalg::Vector& centerUnit, double radius,
                      linalg::Vector& bestUnit, double& bestModelValue);

  DesignSpace space_;
  ValueFunction value_;
  LocalExplorerConfig config_;
  /// Single-corner engine over the EvalFn (unique_ptr: the engine owns a
  /// thread pool and is therefore immovable).
  std::unique_ptr<eval::EvalEngine> engine_;
  SpiceSurrogate surrogate_;
  std::mt19937_64 rng_;
  LocalDataset data_;  ///< all successful samples (unit space + measurements)

  // Planning scratch, reused across TRM steps (capacity persists).
  linalg::Matrix candBuf_;   ///< mcSamples × dim candidate block
  linalg::Matrix predBuf_;   ///< mcSamples × measDim batched predictions
  linalg::Vector rowScratch_;
};

}  // namespace trdse::core
