// Designer-facing problem definition (paper Section III & IV-F).
//
// The paper's API asks designers for exactly: the sizes to tune, their
// ranges, the topology (an evaluation callback here), the measurements to
// observe, and per-corner specifications. This header is that contract; every
// agent in the repo (trust-region, BO, RL, random) consumes only these types.
#pragma once

#include <cassert>
#include <cstdint>
#include <functional>
#include <optional>
#include <random>
#include <string>
#include <vector>

#include "linalg/matrix.hpp"
#include "sim/process.hpp"

namespace trdse::core {

/// One tunable size variable with a discrete grid over [lo, hi]; log-scale
/// grids suit widths/currents/capacitances that span decades.
struct ParamDef {
  std::string name;
  double lo = 0.0;
  double hi = 1.0;
  std::size_t steps = 64;
  bool logScale = false;
};

/// The CSP domain D: a grid per variable (Eq. 2's D_i).
class DesignSpace {
 public:
  DesignSpace() = default;
  explicit DesignSpace(std::vector<ParamDef> params);

  std::size_t dim() const { return params_.size(); }
  const std::vector<ParamDef>& params() const { return params_; }
  const ParamDef& param(std::size_t i) const { return params_[i]; }

  /// Grid value of variable `dim` at index `idx` (0 .. steps-1).
  double gridValue(std::size_t dim, std::size_t idx) const;

  /// Nearest grid index for a raw value (clamped into range).
  std::size_t nearestIndex(std::size_t dim, double value) const;

  /// Snap a raw point onto the grid.
  linalg::Vector snap(const linalg::Vector& x) const;

  /// Uniformly random grid point.
  linalg::Vector randomPoint(std::mt19937_64& rng) const;

  /// Map to/from normalized [0,1]^d coordinates (log-aware). All agents plan
  /// in unit coordinates so trust-region radii are scale-free.
  linalg::Vector toUnit(const linalg::Vector& x) const;
  linalg::Vector fromUnit(const linalg::Vector& u) const;
  /// fromUnit + snap, with unit coordinates clamped into [0,1].
  linalg::Vector fromUnitSnapped(const linalg::Vector& u) const;

  /// log10 of the number of grid combinations ("design space size 10^14").
  double sizeLog10() const;

  /// Index vector of a (snapped) point.
  std::vector<std::size_t> indicesOf(const linalg::Vector& x) const;
  linalg::Vector fromIndices(const std::vector<std::size_t>& idx) const;

 private:
  std::vector<ParamDef> params_;
};

enum class SpecKind : std::uint8_t { kAtLeast, kAtMost };

/// One constraint C_j = (measurement, relation) of the CSP (Eq. 2).
struct Spec {
  std::string measurement;  ///< must match a measurement name
  SpecKind kind = SpecKind::kAtLeast;
  double limit = 0.0;
};

/// Outcome of one SPICE evaluation. `ok == false` models simulator
/// non-convergence: no measurements exist and agents must treat the point as
/// infeasible without feeding it to surrogate training.
struct EvalResult {
  bool ok = false;
  linalg::Vector measurements;
};

/// Evaluate a sizing under one PVT condition — the paper's Spice(X) function.
using CornerEvalFn =
    std::function<EvalResult(const linalg::Vector& sizes, const sim::PvtCorner&)>;

/// The full designer contract (paper IV-F).
struct SizingProblem {
  std::string name;
  DesignSpace space;
  std::vector<std::string> measurementNames;
  std::vector<Spec> specs;
  std::vector<sim::PvtCorner> corners;  ///< sign-off conditions
  CornerEvalFn evaluate;
  /// Optional layout-area estimator (Tables IV/V report area).
  std::function<double(const linalg::Vector&)> area;

  std::size_t measurementIndex(const std::string& name) const;
};

}  // namespace trdse::core
