// Designer-facing problem definition (paper Section III & IV-F).
//
// The paper's API asks designers for exactly: the sizes to tune, their
// ranges, the topology (an evaluation callback here), the measurements to
// observe, and per-corner specifications. This header is that contract; every
// agent in the repo (trust-region, BO, RL, random) consumes only these types.
#pragma once

#include <cassert>
#include <cstdint>
#include <functional>
#include <optional>
#include <random>
#include <string>
#include <vector>

#include "linalg/matrix.hpp"
#include "sim/fault.hpp"
#include "sim/process.hpp"

namespace trdse::core {

/// One tunable size variable with a discrete grid over [lo, hi]; log-scale
/// grids suit widths/currents/capacitances that span decades.
struct ParamDef {
  std::string name;        ///< designer-facing variable name
  double lo = 0.0;         ///< lower bound of the grid
  double hi = 1.0;         ///< upper bound of the grid
  std::size_t steps = 64;  ///< number of grid points across [lo, hi]
  bool logScale = false;   ///< geometric (log-spaced) grid when true
};

/// The CSP domain D: a grid per variable (Eq. 2's D_i).
class DesignSpace {
 public:
  DesignSpace() = default;
  /// Build from per-variable grid definitions.
  explicit DesignSpace(std::vector<ParamDef> params);

  /// Number of tunable variables.
  std::size_t dim() const { return params_.size(); }
  /// All variable definitions, in declaration order.
  const std::vector<ParamDef>& params() const { return params_; }
  /// Definition of variable `i`.
  const ParamDef& param(std::size_t i) const { return params_[i]; }

  /// Grid value of variable `dim` at index `idx` (0 .. steps-1).
  double gridValue(std::size_t dim, std::size_t idx) const;

  /// Nearest grid index for a raw value (clamped into range).
  std::size_t nearestIndex(std::size_t dim, double value) const;

  /// Snap a raw point onto the grid.
  linalg::Vector snap(const linalg::Vector& x) const;

  /// Uniformly random grid point.
  linalg::Vector randomPoint(std::mt19937_64& rng) const;

  /// Map to/from normalized [0,1]^d coordinates (log-aware). All agents plan
  /// in unit coordinates so trust-region radii are scale-free.
  linalg::Vector toUnit(const linalg::Vector& x) const;
  linalg::Vector fromUnit(const linalg::Vector& u) const;
  /// fromUnit + snap, with unit coordinates clamped into [0,1].
  linalg::Vector fromUnitSnapped(const linalg::Vector& u) const;

  /// log10 of the number of grid combinations ("design space size 10^14").
  double sizeLog10() const;

  /// Index vector of a (snapped) point.
  std::vector<std::size_t> indicesOf(const linalg::Vector& x) const;
  /// Grid point at the given per-variable indices.
  linalg::Vector fromIndices(const std::vector<std::size_t>& idx) const;

 private:
  std::vector<ParamDef> params_;
};

/// Direction of a spec constraint: measurement >= limit or <= limit.
enum class SpecKind : std::uint8_t { kAtLeast, kAtMost };

/// One constraint C_j = (measurement, relation) of the CSP (Eq. 2).
struct Spec {
  std::string measurement;  ///< must match a measurement name
  SpecKind kind = SpecKind::kAtLeast;  ///< constraint direction
  double limit = 0.0;                  ///< spec limit in measurement units
};

/// Outcome of one SPICE evaluation. `ok == false` with `failure == kNone`
/// models *deterministic* non-convergence — the point does not bias, a
/// property of the sizing itself: no measurements exist and agents must treat
/// the point as infeasible without feeding it to surrogate training. A
/// non-kNone `failure` instead marks a *fault* (timeout, transient solver
/// failure, non-finite output — see sim/fault.hpp): the result is untrusted,
/// never cached, and the EvalEngine retries it under its RetryPolicy before
/// surfacing the exhausted failure here.
struct EvalResult {
  bool ok = false;              ///< the simulation converged
  linalg::Vector measurements;  ///< one entry per measurement name
  /// Why the evaluation cannot be trusted (kNone = clean result). Set by
  /// fault injection, deadline detection, or the engine's non-finite guard.
  sim::FaultClass failure = sim::FaultClass::kNone;
};

/// Evaluate a sizing under one PVT condition — the paper's Spice(X) function.
using CornerEvalFn =
    std::function<EvalResult(const linalg::Vector& sizes, const sim::PvtCorner&)>;

/// Fused batch evaluation: `count` (sizing, corner) operating points in a
/// single call, results written to `results[0..count)`. Slot i's sizing is
/// `*sizes[i]` — slots are free to mix sizings, which is what lets the
/// EvalEngine pack miss lanes across requests instead of padding ragged
/// per-sizing tails. The contract is bitwise equivalence — slot i must hold
/// exactly what the scalar CornerEvalFn returns for (*sizes[i], corners[i])
/// — so the engine may route requests through either path (see
/// EvalEngineConfig::batchedSim) without changing any outcome.
/// Implementations handle arbitrary `count` by chunking into their native
/// lane width internally (sim::kSimLanes for the registry circuits).
using CornerBatchEvalFn =
    std::function<void(const linalg::Vector* const* sizes,
                       const sim::PvtCorner* corners, EvalResult* results,
                       std::size_t count)>;

/// The full designer contract (paper IV-F).
struct SizingProblem {
  std::string name;                           ///< label used in reports
  DesignSpace space;                          ///< tunable sizes and ranges
  std::vector<std::string> measurementNames;  ///< order of EvalResult entries
  std::vector<Spec> specs;                    ///< the CSP constraints
  std::vector<sim::PvtCorner> corners;        ///< sign-off conditions
  CornerEvalFn evaluate;                      ///< the Spice(X) callback
  /// Optional fused corner-batch path (bitwise identical to `evaluate` per
  /// slot). Set by circuits that implement a batched simulator backend; left
  /// empty by plain callback problems, which then evaluate corner by corner.
  CornerBatchEvalFn evaluateBatch;
  /// Optional layout-area estimator (Tables IV/V report area).
  std::function<double(const linalg::Vector&)> area;

  /// Position of `name` in measurementNames; throws std::invalid_argument
  /// naming the unknown measurement (and listing the known ones) when absent
  /// — a typo in a spec name fails loudly in every build type.
  std::size_t measurementIndex(const std::string& name) const;
};

}  // namespace trdse::core
