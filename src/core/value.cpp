#include "core/value.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace trdse::core {

namespace {

/// Normalized signed surplus of `meas` against `limit` for a >= spec:
/// positive when satisfied. The (|m|+|l|) denominator is the AutoCkt
/// normalization, robust to measurements that live in dB (can be negative).
double normalizedSurplus(double meas, double limit, SpecKind kind) {
  const double denom = std::abs(meas) + std::abs(limit) + 1e-12;
  const double surplus = (kind == SpecKind::kAtLeast) ? (meas - limit) : (limit - meas);
  return surplus / denom;
}

}  // namespace

ValueFunction::ValueFunction(const std::vector<std::string>& measurementNames,
                             const std::vector<Spec>& specs) {
  bound_.reserve(specs.size());
  for (const auto& s : specs) {
    const auto it = std::find(measurementNames.begin(), measurementNames.end(),
                              s.measurement);
    if (it == measurementNames.end())
      throw std::invalid_argument(
          "ValueFunction: spec references unknown measurement \"" +
          s.measurement + "\"");
    bound_.push_back({static_cast<std::size_t>(it - measurementNames.begin()),
                      s.kind, s.limit});
  }
}

double ValueFunction::operator()(const linalg::Vector& measurements) const {
  double v = 0.0;
  for (const auto& b : bound_) {
    const double s = normalizedSurplus(measurements[b.measIndex], b.limit, b.kind);
    v += std::min(0.0, s);
  }
  return v;
}

double ValueFunction::valueOf(const EvalResult& r) const {
  if (!r.ok) return kFailedValue;
  return (*this)(r.measurements);
}

bool ValueFunction::satisfied(const linalg::Vector& measurements) const {
  for (const auto& b : bound_) {
    if (normalizedSurplus(measurements[b.measIndex], b.limit, b.kind) < 0.0)
      return false;
  }
  return true;
}

std::vector<double> ValueFunction::perSpecScores(
    const linalg::Vector& measurements) const {
  std::vector<double> s(bound_.size());
  for (std::size_t i = 0; i < bound_.size(); ++i)
    s[i] = std::min(0.0, normalizedSurplus(measurements[bound_[i].measIndex],
                                           bound_[i].limit, bound_[i].kind));
  return s;
}

double ValueFunction::plannerScore(const linalg::Vector& measurements) const {
  double v = 0.0;
  double bonus = 0.0;
  for (const auto& b : bound_) {
    const double s = normalizedSurplus(measurements[b.measIndex], b.limit, b.kind);
    v += std::min(0.0, s);
    bonus += std::clamp(s, 0.0, 0.3);
  }
  return v + marginBonus_ * bonus;
}

double ValueFunction::weighted(const linalg::Vector& measurements,
                               const std::vector<double>& weights) const {
  assert(weights.size() == bound_.size());
  const std::vector<double> s = perSpecScores(measurements);
  double v = 0.0;
  for (std::size_t i = 0; i < s.size(); ++i) v += weights[i] * s[i];
  return v;
}

}  // namespace trdse::core
