#include "core/problem.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace trdse::core {

DesignSpace::DesignSpace(std::vector<ParamDef> params) : params_(std::move(params)) {
  for ([[maybe_unused]] const auto& p : params_) {
    assert(p.steps >= 1);
    assert(p.hi >= p.lo);
    assert(!p.logScale || p.lo > 0.0);
  }
}

double DesignSpace::gridValue(std::size_t dim, std::size_t idx) const {
  const ParamDef& p = params_[dim];
  assert(idx < p.steps);
  if (p.steps == 1) return p.lo;
  const double t = static_cast<double>(idx) / static_cast<double>(p.steps - 1);
  if (p.logScale)
    return std::pow(10.0, std::log10(p.lo) + t * (std::log10(p.hi) - std::log10(p.lo)));
  return p.lo + t * (p.hi - p.lo);
}

std::size_t DesignSpace::nearestIndex(std::size_t dim, double value) const {
  const ParamDef& p = params_[dim];
  if (p.steps == 1) return 0;
  double t;
  if (p.logScale) {
    const double v = std::clamp(value, p.lo, p.hi);
    t = (std::log10(v) - std::log10(p.lo)) / (std::log10(p.hi) - std::log10(p.lo));
  } else {
    t = (std::clamp(value, p.lo, p.hi) - p.lo) / (p.hi - p.lo);
  }
  const double idx = t * static_cast<double>(p.steps - 1);
  return static_cast<std::size_t>(std::lround(idx));
}

linalg::Vector DesignSpace::snap(const linalg::Vector& x) const {
  assert(x.size() == dim());
  linalg::Vector out(dim());
  for (std::size_t i = 0; i < dim(); ++i)
    out[i] = gridValue(i, nearestIndex(i, x[i]));
  return out;
}

linalg::Vector DesignSpace::randomPoint(std::mt19937_64& rng) const {
  linalg::Vector out(dim());
  for (std::size_t i = 0; i < dim(); ++i) {
    std::uniform_int_distribution<std::size_t> d(0, params_[i].steps - 1);
    out[i] = gridValue(i, d(rng));
  }
  return out;
}

linalg::Vector DesignSpace::toUnit(const linalg::Vector& x) const {
  assert(x.size() == dim());
  linalg::Vector u(dim());
  for (std::size_t i = 0; i < dim(); ++i) {
    const ParamDef& p = params_[i];
    if (p.hi == p.lo) {
      u[i] = 0.0;
    } else if (p.logScale) {
      u[i] = (std::log10(std::clamp(x[i], p.lo, p.hi)) - std::log10(p.lo)) /
             (std::log10(p.hi) - std::log10(p.lo));
    } else {
      u[i] = (std::clamp(x[i], p.lo, p.hi) - p.lo) / (p.hi - p.lo);
    }
  }
  return u;
}

linalg::Vector DesignSpace::fromUnit(const linalg::Vector& u) const {
  assert(u.size() == dim());
  linalg::Vector x(dim());
  for (std::size_t i = 0; i < dim(); ++i) {
    const ParamDef& p = params_[i];
    const double t = std::clamp(u[i], 0.0, 1.0);
    if (p.logScale) {
      x[i] = std::pow(10.0,
                      std::log10(p.lo) + t * (std::log10(p.hi) - std::log10(p.lo)));
    } else {
      x[i] = p.lo + t * (p.hi - p.lo);
    }
  }
  return x;
}

linalg::Vector DesignSpace::fromUnitSnapped(const linalg::Vector& u) const {
  return snap(fromUnit(u));
}

double DesignSpace::sizeLog10() const {
  double s = 0.0;
  for (const auto& p : params_) s += std::log10(static_cast<double>(p.steps));
  return s;
}

std::vector<std::size_t> DesignSpace::indicesOf(const linalg::Vector& x) const {
  assert(x.size() == dim());
  std::vector<std::size_t> idx(dim());
  for (std::size_t i = 0; i < dim(); ++i) idx[i] = nearestIndex(i, x[i]);
  return idx;
}

linalg::Vector DesignSpace::fromIndices(const std::vector<std::size_t>& idx) const {
  assert(idx.size() == dim());
  linalg::Vector x(dim());
  for (std::size_t i = 0; i < dim(); ++i) x[i] = gridValue(i, idx[i]);
  return x;
}

std::size_t SizingProblem::measurementIndex(const std::string& name) const {
  const auto it =
      std::find(measurementNames.begin(), measurementNames.end(), name);
  if (it == measurementNames.end()) {
    std::string known;
    for (const auto& m : measurementNames) {
      if (!known.empty()) known += ", ";
      known += m;
    }
    throw std::invalid_argument("SizingProblem::measurementIndex: unknown "
                                "measurement \"" +
                                name + "\" (known: " + known + ")");
  }
  return static_cast<std::size_t>(it - measurementNames.begin());
}

}  // namespace trdse::core
