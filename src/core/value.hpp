// Value (reward) engineering — paper Section IV-D.
//
// "In the spirit of simplicity and generalization, we utilize a naive tactic
//  where the value is the sum of normalized measurements."
//
// Each spec contributes a normalized deficit clipped at zero, so the value is
// 0 exactly when every constraint holds (the CSP is solved) and strictly
// negative otherwise. Values steer planning only — they never enter surrogate
// training — which is why the paper can claim insensitivity to reward
// engineering.
#pragma once

#include <vector>

#include "core/problem.hpp"

namespace trdse::core {

/// Sentinel value for points whose simulation failed (never chosen over any
/// point that simulated successfully).
inline constexpr double kFailedValue = -1e9;

/// The paper's Value function: maps a measurement vector to a scalar that is
/// 0 exactly when the CSP is satisfied and negative otherwise.
class ValueFunction {
 public:
  /// Bind each spec to its measurement index.
  ValueFunction(const std::vector<std::string>& measurementNames,
                const std::vector<Spec>& specs);

  /// Sum of per-spec normalized deficits; 0 iff all specs satisfied.
  double operator()(const linalg::Vector& measurements) const;

  /// Value of an EvalResult (kFailedValue when !ok).
  double valueOf(const EvalResult& r) const;

  /// Whether every spec holds for the given measurements.
  bool satisfied(const linalg::Vector& measurements) const;

  /// Per-spec normalized score (each <= 0); useful for telemetry and for the
  /// optional second-stage weighted value (paper IV-D).
  std::vector<double> perSpecScores(const linalg::Vector& measurements) const;

  /// Weighted variant: sum_i w_i * score_i. Weights size must match specs.
  double weighted(const linalg::Vector& measurements,
                  const std::vector<double>& weights) const;

  /// Planning score: the value plus a small bonus for positive margin
  /// (clipped), so the Monte Carlo planner prefers candidates comfortably
  /// inside the feasible region over ones exactly on its boundary. This is
  /// the paper's optional "second-stage value function" (IV-D); the bonus is
  /// small enough never to outweigh a constraint violation.
  double plannerScore(const linalg::Vector& measurements) const;

  /// Weight of the margin bonus in plannerScore (0 disables the second-stage
  /// tie-break; exposed for the value-engineering ablation bench).
  void setMarginBonus(double bonus) { marginBonus_ = bonus; }
  /// Current margin-bonus weight.
  double marginBonus() const { return marginBonus_; }

  /// Number of bound spec constraints.
  std::size_t specCount() const { return bound_.size(); }

 private:
  struct BoundSpec {
    std::size_t measIndex;
    SpecKind kind;
    double limit;
  };
  std::vector<BoundSpec> bound_;
  double marginBonus_ = 0.02;
};

}  // namespace trdse::core
