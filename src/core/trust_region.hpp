// Trust-region method (paper Section IV-C).
//
// The trust region is an infinity-norm ball of radius Δr_i in the *unit*
// design space (all variables mapped to [0,1], log-aware), so one radius is
// meaningful across widths, currents and capacitances. After each planned
// trial step the ratio
//
//     ρ_i = actual improvement / predicted improvement
//
// decides acceptance and the next radius: a model that tracks reality earns a
// larger region to plan in; a model that over-promises gets shrunk. This
// iteration-dependent radius is the paper's claimed key factor versus a
// statically-sized local region.
#pragma once

#include <cstddef>

namespace trdse::core {

/// Radius schedule parameters of the trust-region method (paper IV-C).
struct TrustRegionConfig {
  double initRadius = 0.08;   ///< starting radius (unit space, infinity norm)
  double minRadius = 0.015;   ///< radius floor after repeated shrinks
  double maxRadius = 0.30;    ///< radius ceiling after repeated expansions
  /// When false the radius never changes (the static-local-region baseline
  /// the paper argues against; exercised by the radius ablation bench).
  bool adaptive = true;
  double acceptThreshold = 0.10;  ///< eta: accept trial when rho exceeds this
  double shrinkThreshold = 0.25;  ///< shrink when rho falls below this
  double expandThreshold = 0.75;  ///< expand when rho exceeds this
  double shrinkFactor = 0.5;      ///< multiplicative shrink step
  double expandFactor = 2.0;      ///< multiplicative expansion step
};

/// Result of one TRM ratio test.
struct TrustRegionStep {
  bool accepted = false;   ///< the trial point becomes the new center
  double rho = 0.0;        ///< actual / predicted improvement ratio
  double newRadius = 0.0;  ///< radius after the update
};

/// Iteration-dependent trust-region radius with the TRM accept/shrink/expand
/// schedule.
class TrustRegion {
 public:
  /// Start at the configured initial radius.
  explicit TrustRegion(TrustRegionConfig config = {});

  /// Current radius (unit space, infinity norm).
  double radius() const { return radius_; }
  /// Restore the initial radius (used on restarts).
  void reset() { radius_ = config_.initRadius; }
  /// Install a checkpointed radius (bit-exact resume of the schedule).
  void setRadius(double radius) { radius_ = radius; }

  /// Apply the TRM ratio test for a maximization problem.
  ///   predictedDelta = Value(f_NN(trial)) - Value(f_NN(center))   (>= 0 by
  ///     construction: the trial maximizes the model inside the region)
  ///   actualDelta    = Value(Spice(trial)) - Value(Spice(center))
  /// Updates the stored radius and reports acceptance.
  TrustRegionStep evaluateStep(double predictedDelta, double actualDelta);

  /// The radius schedule in effect.
  const TrustRegionConfig& config() const { return config_; }

 private:
  TrustRegionConfig config_;
  double radius_;
};

}  // namespace trdse::core
