// Trust-region method (paper Section IV-C).
//
// The trust region is an infinity-norm ball of radius Δr_i in the *unit*
// design space (all variables mapped to [0,1], log-aware), so one radius is
// meaningful across widths, currents and capacitances. After each planned
// trial step the ratio
//
//     ρ_i = actual improvement / predicted improvement
//
// decides acceptance and the next radius: a model that tracks reality earns a
// larger region to plan in; a model that over-promises gets shrunk. This
// iteration-dependent radius is the paper's claimed key factor versus a
// statically-sized local region.
#pragma once

#include <cstddef>

namespace trdse::core {

struct TrustRegionConfig {
  double initRadius = 0.08;
  double minRadius = 0.015;
  double maxRadius = 0.30;
  /// When false the radius never changes (the static-local-region baseline
  /// the paper argues against; exercised by the radius ablation bench).
  bool adaptive = true;
  double acceptThreshold = 0.10;  ///< eta: accept trial when rho exceeds this
  double shrinkThreshold = 0.25;
  double expandThreshold = 0.75;
  double shrinkFactor = 0.5;
  double expandFactor = 2.0;
};

struct TrustRegionStep {
  bool accepted = false;
  double rho = 0.0;
  double newRadius = 0.0;
};

class TrustRegion {
 public:
  explicit TrustRegion(TrustRegionConfig config = {});

  double radius() const { return radius_; }
  void reset() { radius_ = config_.initRadius; }

  /// Apply the TRM ratio test for a maximization problem.
  ///   predictedDelta = Value(f_NN(trial)) - Value(f_NN(center))   (>= 0 by
  ///     construction: the trial maximizes the model inside the region)
  ///   actualDelta    = Value(Spice(trial)) - Value(Spice(center))
  /// Updates the stored radius and reports acceptance.
  TrustRegionStep evaluateStep(double predictedDelta, double actualDelta);

  const TrustRegionConfig& config() const { return config_; }

 private:
  TrustRegionConfig config_;
  double radius_;
};

}  // namespace trdse::core
