#include "orch/distributed.hpp"

#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>
#ifdef __linux__
#include <sys/prctl.h>
#endif

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <mutex>
#include <stdexcept>
#include <utility>

#include "common/thread_pool.hpp"
#include "io/state_io.hpp"
#include "orch/journal.hpp"

namespace trdse::orch {

namespace {

using wire::WireError;

// ---- Chunk payload codec -------------------------------------------------
//
// An offloaded eval-batch chunk: one sizing, `count` lanes of (corner,
// request identity). The identity tuple travels so the executor's fault
// decorator sees exactly what the local path would have — offload on/off is
// bitwise invisible.

struct ChunkPayload {
  std::size_t jobIndex = 0;
  linalg::Vector sizes;
  std::vector<sim::PvtCorner> corners;
  std::vector<std::vector<std::size_t>> indices;  // per lane (may be empty)
  std::vector<std::size_t> cornerIndex;
  std::vector<std::size_t> attempt;

  std::size_t count() const { return corners.size(); }
};

void writeChunk(io::SectionWriter& w, std::size_t jobIndex,
                const linalg::Vector& sizes, const sim::PvtCorner* corners,
                const eval::EvalContext* contexts, std::size_t count) {
  w.u64(jobIndex);
  w.vec(sizes);
  w.u64(count);
  static const std::vector<std::size_t> kNoIndices;
  for (std::size_t i = 0; i < count; ++i) {
    w.u8(static_cast<std::uint8_t>(corners[i].corner));
    w.f64(corners[i].vdd);
    w.f64(corners[i].tempC);
    w.u64(contexts[i].cornerIndex);
    w.indexVec(contexts[i].indices != nullptr ? *contexts[i].indices
                                              : kNoIndices);
    w.u64(contexts[i].attempt);
  }
}

void writeChunk(io::SectionWriter& w, const ChunkPayload& p) {
  w.u64(p.jobIndex);
  w.vec(p.sizes);
  w.u64(p.count());
  for (std::size_t i = 0; i < p.count(); ++i) {
    w.u8(static_cast<std::uint8_t>(p.corners[i].corner));
    w.f64(p.corners[i].vdd);
    w.f64(p.corners[i].tempC);
    w.u64(p.cornerIndex[i]);
    w.indexVec(p.indices[i]);
    w.u64(p.attempt[i]);
  }
}

ChunkPayload readChunk(io::SectionReader& r) {
  ChunkPayload p;
  p.jobIndex = r.u64();
  p.sizes = r.vec();
  const std::uint64_t n = r.u64();
  p.corners.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    sim::PvtCorner c;
    const std::uint8_t pc = r.u8();
    if (pc > static_cast<std::uint8_t>(sim::ProcessCorner::kSF))
      r.fail("unknown process corner " + std::to_string(pc));
    c.corner = static_cast<sim::ProcessCorner>(pc);
    c.vdd = r.f64();
    c.tempC = r.f64();
    p.corners.push_back(c);
    p.cornerIndex.push_back(r.u64());
    p.indices.push_back(r.indexVec());
    p.attempt.push_back(r.u64());
  }
  return p;
}

// ---- Chunk-offload backend decorator -------------------------------------

/// Wraps an owned job's (fault-injected) backend inside a worker process.
/// Corner-batches first try the offload hook — ship the chunk to an idle
/// peer via the coordinator — and fall back to the wrapped backend when no
/// peer is free. The executor runs the byte-identical inherited backend on
/// the same (sizes, corner, identity) inputs, so both paths produce the same
/// bits (the EvalEngine::setBackend equivalence contract). Scalar calls
/// never offload: a one-lane round trip could never pay for its frames.
class ChunkOffloadBackend final : public eval::EvalBackend {
 public:
  using OffloadFn = std::function<bool(
      std::size_t jobIndex, const linalg::Vector& sizes,
      const sim::PvtCorner* corners, const eval::EvalContext* contexts,
      core::EvalResult* results, std::size_t count)>;

  ChunkOffloadBackend(std::shared_ptr<const eval::EvalBackend> inner,
                      std::size_t jobIndex, OffloadFn offload)
      : inner_(std::move(inner)),
        jobIndex_(jobIndex),
        offload_(std::move(offload)) {}

  std::string_view name() const override { return inner_->name(); }

  core::EvalResult evaluate(const linalg::Vector& sizes,
                            const sim::PvtCorner& corner) const override {
    return inner_->evaluate(sizes, corner);
  }

  core::EvalResult evaluate(const linalg::Vector& sizes,
                            const sim::PvtCorner& corner,
                            const eval::EvalContext& context) const override {
    return inner_->evaluate(sizes, corner, context);
  }

  std::size_t batchWidth() const override { return inner_->batchWidth(); }

  void evaluateBatch(const linalg::Vector* const* sizes,
                     const sim::PvtCorner* corners,
                     const eval::EvalContext* contexts,
                     core::EvalResult* results,
                     std::size_t count) const override {
    // The chunk wire format carries one sizing per chunk, so only
    // homogeneous chunks offload. The engine hands every slot of a
    // single-request batch the same pointer; packed mixed-sizing chunks
    // (different pointers) simply run locally.
    bool homogeneous = count >= 2;
    for (std::size_t i = 1; homogeneous && i < count; ++i)
      homogeneous = sizes[i] == sizes[0];
    if (homogeneous &&
        offload_(jobIndex_, *sizes[0], corners, contexts, results, count))
      return;
    inner_->evaluateBatch(sizes, corners, contexts, results, count);
  }

 private:
  std::shared_ptr<const eval::EvalBackend> inner_;
  std::size_t jobIndex_;
  OffloadFn offload_;
};

// ---- Worker process ------------------------------------------------------

/// The worker's whole life: serve coordinator frames until shutdown/EOF.
/// Runs in the forked child, which inherited the fully built `jobs` and the
/// master cache image (now its read mirror). Exits via _Exit only — the
/// child must never run the parent's atexit/static-destructor state.
[[noreturn]] void workerMain(std::size_t workerIndex, wire::FrameChannel ch,
                             const Scenario& scenario,
                             std::vector<BuiltJob>& jobs,
                             const std::shared_ptr<eval::SharedEvalCache>& mirror,
                             const std::vector<std::size_t>& owned) {
  const std::string src = "worker " + std::to_string(workerIndex);
  try {
    // Probe baselines: deltas reported per round are (current - baseline),
    // so the coordinator merges each probe into the master exactly once.
    // The fork image's counters equal the master's at fork time (which is
    // also why a respawned worker starts consistent).
    std::vector<std::pair<std::size_t, std::size_t>> baseline;
    if (mirror != nullptr) {
      baseline.resize(mirror->shardCount());
      for (std::size_t s = 0; s < baseline.size(); ++s) {
        const eval::SharedEvalCache::ShardCounters c = mirror->shardStats(s);
        baseline[s] = {c.hits, c.misses};
      }
    }

    // Every worker inherited every job's backend, so any worker can execute
    // any job's chunk. Capture the inner (fault-injected) backends *before*
    // wrapping our own jobs in the offload decorator.
    std::vector<std::shared_ptr<const eval::EvalBackend>> execBackends;
    execBackends.reserve(jobs.size());
    for (BuiltJob& job : jobs)
      execBackends.push_back(job.strategy->engine().backendPtr());

    std::mutex offloadMu;  // one offload in flight per worker
    if (scenario.offloadChunks) {
      for (const std::size_t i : owned) {
        eval::EvalEngine& eng = jobs[i].strategy->engine();
        ChunkOffloadBackend::OffloadFn offload =
            [&ch, &offloadMu, &src, workerIndex](
                std::size_t jobIndex, const linalg::Vector& sizes,
                const sim::PvtCorner* corners,
                const eval::EvalContext* contexts, core::EvalResult* results,
                std::size_t count) -> bool {
          std::unique_lock<std::mutex> lk(offloadMu, std::try_to_lock);
          if (!lk.owns_lock()) return false;  // a sibling thread is offloading
          try {
            io::CheckpointWriter req = wire::makeMessage(wire::kMsgChunkRequest);
            writeChunk(req.section("chunk"), jobIndex, sizes, corners,
                       contexts, count);
            ch.send(req);
            const io::CheckpointReader reply =
                ch.recv(src + " (chunk reply)");
            if (reply.kind() != wire::kMsgChunkReply)
              throw WireError(src + ": expected chunk reply, got \"" +
                              reply.kind() + "\"");
            io::SectionReader cr = reply.section("chunk");
            const bool granted = cr.boolean();
            if (!granted) {
              cr.expectEnd();
              return false;  // no idle peer — compute locally
            }
            const std::uint64_t m = cr.u64();
            if (m != count)
              cr.fail("chunk reply carries " + std::to_string(m) +
                      " results for a " + std::to_string(count) +
                      "-lane request");
            for (std::size_t k = 0; k < count; ++k)
              results[k] = io::readEvalResult(cr);
            cr.expectEnd();
            return true;
          } catch (const std::exception& e) {
            // A broken offload round trip means the channel state is
            // unknowable — die loudly; the coordinator respawns us and
            // re-dispatches the round.
            std::fprintf(stderr, "trdse worker %zu: offload failed: %s\n",
                         workerIndex, e.what());
            std::_Exit(1);
          }
        };
        eng.setBackend(std::make_shared<ChunkOffloadBackend>(
            eng.backendPtr(), i, std::move(offload)));
      }
    }

    common::ThreadPool pool(scenario.threads);
    std::vector<std::size_t> grantJobs, grantTargets;
    std::vector<std::string> stepErrors(jobs.size());

    for (;;) {
      const io::CheckpointReader msg = ch.recv(src);
      const std::string kind = msg.kind();

      if (kind == wire::kMsgShutdown) std::_Exit(0);

      if (kind == wire::kMsgRunRound) {
        io::SectionReader r = msg.section("round");
        const std::uint64_t round = r.u64();
        const bool die = r.boolean();
        const std::uint64_t n = r.u64();
        grantJobs.clear();
        grantTargets.clear();
        for (std::uint64_t k = 0; k < n; ++k) {
          grantJobs.push_back(r.u64());
          grantTargets.push_back(r.u64());
        }
        r.expectEnd();
        // Deterministic kill hook (--debug-kill-worker): emulate a SIGKILL
        // at the most adversarial instant — round received, nothing stepped.
        if (die) std::_Exit(137);

        pool.parallelFor(grantJobs.size(), [&](std::size_t k) {
          BuiltJob& job = jobs.at(grantJobs[k]);
          job.granted = grantTargets[k];
          stepErrors[grantJobs[k]].clear();
          try {
            job.strategy->step(job.granted);
          } catch (const std::exception& e) {
            stepErrors[grantJobs[k]] =
                e.what()[0] != '\0' ? e.what() : "unknown error";
          } catch (...) {
            stepErrors[grantJobs[k]] = "non-standard exception";
          }
        });

        io::CheckpointWriter out = wire::makeMessage(wire::kMsgRoundResult);
        out.section("round").u64(round);
        io::SectionWriter& js = out.section("jobs");
        js.u64(grantJobs.size());
        for (std::size_t k = 0; k < grantJobs.size(); ++k) {
          const std::size_t i = grantJobs[k];
          BuiltJob& job = jobs[i];
          wire::JobRoundReport rep;
          rep.jobIndex = i;
          rep.stepError = stepErrors[i];
          rep.finished = job.strategy->finished();
          rep.iterations = job.strategy->outcome().iterations;
          rep.stats = job.strategy->engine().stats();
          rep.firstFailure = job.strategy->engine().firstFailure();
          if (rep.stepError.empty()) {
            // A job whose step threw keeps its journal unpublished — exactly
            // the in-process barrier's skip (it quarantines and never steps
            // again, so those entries never surface there either).
            auto pubs = job.strategy->engine().drainPublishJournal();
            rep.publishes.reserve(pubs.size());
            for (auto& [key, res] : pubs)
              rep.publishes.push_back({std::move(key), std::move(res)});
          }
          if (job.strategy->supportsCheckpoint())
            rep.strategyBlob = job.strategy->saveCheckpointBlob();
          wire::writeJobRoundReport(js, rep);
        }
        io::SectionWriter& ds = out.section("deltas");
        std::vector<wire::ShardDelta> deltas;
        if (mirror != nullptr) {
          for (std::size_t s = 0; s < baseline.size(); ++s) {
            const eval::SharedEvalCache::ShardCounters c = mirror->shardStats(s);
            const std::size_t dh = c.hits - baseline[s].first;
            const std::size_t dm = c.misses - baseline[s].second;
            if (dh != 0 || dm != 0) deltas.push_back({s, dh, dm});
            baseline[s] = {c.hits, c.misses};
          }
        }
        wire::writeShardDeltas(ds, deltas);
        ch.send(out);
        continue;
      }

      if (kind == wire::kMsgBarrier) {
        io::SectionReader pb = msg.section("publishes");
        const std::uint64_t m = pb.u64();
        for (std::uint64_t k = 0; k < m; ++k) {
          const std::size_t jobIndex = pb.u64();
          std::vector<wire::PublishEntry> entries = wire::readPublishes(pb);
          if (mirror != nullptr) {
            const std::size_t scope = mirror->scopeId(jobs.at(jobIndex).scope);
            for (wire::PublishEntry& e : entries)
              mirror->insert(scope, e.key, std::move(e.result));
          }
        }
        pb.expectEnd();
        io::SectionReader cp = msg.section("checkpoints");
        const std::vector<std::size_t> paths = cp.indexVec();
        cp.expectEnd();
        for (const std::size_t i : paths)
          if (std::find(owned.begin(), owned.end(), i) != owned.end())
            jobs.at(i).strategy->saveCheckpoint(jobs[i].spec.checkpointPath);
        continue;
      }

      if (kind == wire::kMsgRestore) {
        io::SectionReader r = msg.section("jobs");
        const std::uint64_t n = r.u64();
        for (std::uint64_t k = 0; k < n; ++k) {
          const std::size_t i = r.u64();
          const std::string blob = r.str();
          jobs.at(i).strategy->restoreCheckpointBlob(
              blob, src + "[job " + jobs[i].spec.name + "]");
        }
        r.expectEnd();
        ch.send(wire::makeMessage(wire::kMsgRestoreAck));
        continue;
      }

      if (kind == wire::kMsgHarvest) {
        io::CheckpointWriter out = wire::makeMessage(wire::kMsgHarvestResult);
        io::SectionWriter& js = out.section("jobs");
        js.u64(owned.size());
        for (const std::size_t i : owned) {
          wire::JobHarvest h;
          h.jobIndex = i;
          h.outcome = jobs[i].strategy->outcome();
          h.engineLedger = jobs[i].strategy->engine().ledger();
          h.engineStats = jobs[i].strategy->engine().stats();
          wire::writeJobHarvest(js, h);
        }
        ch.send(out);
        continue;
      }

      if (kind == wire::kMsgChunkExec) {
        io::SectionReader r = msg.section("chunk");
        ChunkPayload p = readChunk(r);
        r.expectEnd();
        const std::size_t count = p.count();
        std::vector<eval::EvalContext> ctxs(count);
        std::vector<const linalg::Vector*> sz(count, &p.sizes);
        std::vector<core::EvalResult> results(count);
        for (std::size_t k = 0; k < count; ++k)
          ctxs[k] = {&p.indices[k], p.cornerIndex[k], p.attempt[k]};
        execBackends.at(p.jobIndex)
            ->evaluateBatch(sz.data(), p.corners.data(), ctxs.data(),
                            results.data(), count);
        io::CheckpointWriter out = wire::makeMessage(wire::kMsgChunkReply);
        io::SectionWriter& cw = out.section("chunk");
        cw.boolean(true);
        cw.u64(count);
        for (const core::EvalResult& res : results)
          io::writeEvalResult(cw, res);
        ch.send(out);
        continue;
      }

      throw WireError(src + ": unexpected message kind \"" + kind + "\"");
    }
  } catch (const WireError& e) {
    // EOF/EPIPE means the coordinator is gone (clean exit — PDEATHSIG also
    // covers a SIGKILLed coordinator on Linux); anything else is a protocol
    // failure worth a loud death.
    const bool peerGone = std::strstr(e.what(), "peer closed") != nullptr;
    if (!peerGone)
      std::fprintf(stderr, "trdse worker %zu: %s\n", workerIndex, e.what());
    std::_Exit(peerGone ? 0 : 1);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "trdse worker %zu: %s\n", workerIndex, e.what());
    std::_Exit(1);
  }
}

/// Reap `pid` with a bounded grace period, escalating to SIGKILL — a stuck
/// worker must never wedge shutdown or a respawn. The poll starts at 200us
/// and backs off: a worker told to shut down exits within microseconds, and
/// this wait sits on the scheduler's teardown critical path.
void reap(pid_t pid, int graceMs) {
  int status = 0;
  long stepUs = 200;
  for (long waitedUs = 0; waitedUs < static_cast<long>(graceMs) * 1000;) {
    const pid_t r = ::waitpid(pid, &status, WNOHANG);
    if (r == pid || (r < 0 && errno == ECHILD)) return;
    ::usleep(static_cast<useconds_t>(stepUs));
    waitedUs += stepUs;
    if (stepUs < 10000) stepUs *= 2;
  }
  ::kill(pid, SIGKILL);
  while (::waitpid(pid, &status, 0) < 0 && errno == EINTR) {
  }
}

}  // namespace

// ---- Coordinator ---------------------------------------------------------

DistributedScheduler::DistributedScheduler(Scenario scenario) {
  if (scenario.workers == 0) {
    inner_ = std::make_unique<Scheduler>(std::move(scenario));
    return;
  }
  JobSet set = buildJobs(std::move(scenario));
  scenario_ = std::move(set.scenario);
  shared_ = std::move(set.shared);
  jobs_ = std::move(set.jobs);

  // Workers fork lazily at the first run(); an engine-internal thread pool
  // would not survive the fork (the child inherits the pool's bookkeeping
  // but none of its threads — parallelFor would wait forever).
  for (const BuiltJob& job : jobs_)
    if (job.strategy->engine().config().threads != 1)
      throw std::invalid_argument(
          "scenario " + scenario_.sourceName + ": job \"" + job.spec.name +
          "\": per-engine eval threads != 1 cannot run under workers > 0 "
          "(worker processes fork after engine construction); use the "
          "scenario-level threads knob instead");

  const std::size_t n = std::min(scenario_.workers, jobs_.size());
  workers_.resize(n);
  reports_.resize(n);
  for (std::size_t i = 0; i < jobs_.size(); ++i) {
    workers_[i % n].owned.push_back(i);
    reports_[i % n].jobs.push_back(jobs_[i].spec.name);
  }
  lastBlobs_.resize(jobs_.size());
  finished_.assign(jobs_.size(), 0);
  iterations_.assign(jobs_.size(), 0);
  roundReports_.resize(jobs_.size());
  haveReport_.assign(jobs_.size(), 0);
  for (std::size_t i = 0; i < jobs_.size(); ++i) {
    finished_[i] = jobs_[i].strategy->finished() ? 1 : 0;
    iterations_[i] = jobs_[i].strategy->outcome().iterations;
  }
}

DistributedScheduler::~DistributedScheduler() {
  if (inner_ != nullptr) return;
  try {
    shutdownWorkers();
  } catch (...) {
    // Destructors stay silent; shutdownWorkers escalates to SIGKILL itself.
  }
}

std::size_t DistributedScheduler::workerOf(std::size_t jobIndex) const {
  return jobIndex % workers_.size();
}

void DistributedScheduler::debugKillWorker(std::size_t worker,
                                           std::size_t round) {
  if (inner_ != nullptr) return;  // no workers to kill in-process
  debugKills_.emplace_back(worker, round);
}

void DistributedScheduler::spawnWorker(std::size_t w) {
  int fds[2];
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0)
    throw WireError(std::string("socketpair: ") + std::strerror(errno));
  const pid_t pid = ::fork();
  if (pid < 0) {
    ::close(fds[0]);
    ::close(fds[1]);
    throw WireError(std::string("fork: ") + std::strerror(errno));
  }
  if (pid == 0) {
    // Child. Keep only our own worker end: a sibling still holding a dead
    // worker's coordinator-side fd would mask that worker's EOF forever.
    ::close(fds[0]);
#if defined(__linux__) && defined(PR_SET_PDEATHSIG)
    ::prctl(PR_SET_PDEATHSIG, SIGKILL);  // die with the coordinator
#endif
    for (WorkerSlot& other : workers_) other.ch.close();
    workerMain(w, wire::FrameChannel(fds[1]), scenario_, jobs_, shared_,
               workers_[w].owned);
  }
  ::close(fds[1]);
  WorkerSlot& slot = workers_[w];
  slot.pid = pid;
  slot.ch = wire::FrameChannel(fds[0]);
  slot.stepping = false;
  slot.chunkBusy = false;
}

void DistributedScheduler::forkWorkers() {
  for (std::size_t w = 0; w < workers_.size(); ++w) spawnWorker(w);
  forked_ = true;
}

void DistributedScheduler::respawnWorker(std::size_t w,
                                         const std::string& why) {
  WorkerSlot& slot = workers_[w];
  if (++slot.consecutiveDeaths > 3)
    throw WireError("worker " + std::to_string(w) + " died " +
                    std::to_string(slot.consecutiveDeaths) +
                    " times without completing a round (" + why +
                    ") — giving up; see stderr for the worker's output");
  // Recovery replays from the last barrier's checkpoint blobs; a job that
  // has stepped but cannot checkpoint has no replayable state.
  for (const std::size_t i : slot.owned)
    if (jobs_[i].result.rounds > 0 && lastBlobs_[i].empty())
      throw WireError(
          "worker " + std::to_string(w) + " " + why + " with job \"" +
          jobs_[i].spec.name +
          "\" in flight, whose strategy cannot checkpoint — the round "
          "cannot be replayed (use a checkpointable strategy or workers=0)");

  if (slot.pid >= 0) {
    ::kill(slot.pid, SIGKILL);
    reap(slot.pid, 0);
    slot.pid = -1;
  }
  slot.ch.close();
  // Orphan any chunk this worker's death strands: a peer executing on its
  // behalf reports to a requester that no longer exists.
  for (WorkerSlot& other : workers_)
    if (other.chunkBusy && other.chunkRequester == w)
      other.chunkRequester = static_cast<std::size_t>(-1);

  const bool wasStepping = slot.stepping;
  events_.push_back("round " + std::to_string(round_) + ": worker " +
                    std::to_string(w) + " " + why +
                    (wasStepping ? "; respawned and round re-dispatched"
                                 : "; respawned"));
  std::fprintf(stderr, "trdse: %s\n", events_.back().c_str());

  spawnWorker(w);
  try {
    // The fresh fork already holds the master's current cache image and the
    // coordinator-side (never-stepped) strategies; ship the blobs of every
    // owned job that has progressed to bring it to the last barrier.
    io::CheckpointWriter msg = wire::makeMessage(wire::kMsgRestore);
    io::SectionWriter& js = msg.section("jobs");
    std::size_t count = 0;
    for (const std::size_t i : slot.owned)
      if (!lastBlobs_[i].empty()) ++count;
    js.u64(count);
    for (const std::size_t i : slot.owned) {
      if (lastBlobs_[i].empty()) continue;
      js.u64(i);
      js.str(lastBlobs_[i]);
    }
    slot.ch.send(msg);
    const io::CheckpointReader ack =
        slot.ch.recv("worker " + std::to_string(w) + " (restore ack)");
    if (ack.kind() != wire::kMsgRestoreAck)
      throw WireError("worker " + std::to_string(w) +
                      ": expected restore ack, got \"" + ack.kind() + "\"");
    if (wasStepping) dispatchRound(w);
  } catch (const WireError& e) {
    respawnWorker(w, std::string("died during recovery (") + e.what() + ")");
  }
}

void DistributedScheduler::dispatchRound(std::size_t w) {
  WorkerSlot& slot = workers_[w];
  io::CheckpointWriter msg = wire::makeMessage(wire::kMsgRunRound);
  io::SectionWriter& r = msg.section("round");
  r.u64(round_);
  bool die = false;
  for (auto it = debugKills_.begin(); it != debugKills_.end(); ++it)
    if (it->first == w && it->second == round_) {
      die = true;
      debugKills_.erase(it);  // fire once — the respawn must survive
      break;
    }
  r.boolean(die);
  std::vector<std::pair<std::size_t, std::size_t>> mine;
  for (const auto& [i, granted] : grants_)
    if (workerOf(i) == w) mine.emplace_back(i, granted);
  r.u64(mine.size());
  for (const auto& [i, granted] : mine) {
    r.u64(i);
    r.u64(granted);
  }
  slot.stepping = true;
  if (scenario_.workerTimeoutSeconds > 0.0)
    slot.deadline = std::chrono::steady_clock::now() +
                    std::chrono::duration_cast<
                        std::chrono::steady_clock::duration>(
                        std::chrono::duration<double>(
                            scenario_.workerTimeoutSeconds));
  try {
    slot.ch.send(msg);
  } catch (const WireError& e) {
    respawnWorker(w, std::string("died before the round reached it (") +
                         e.what() + ")");
  }
}

void DistributedScheduler::handleChunkRequest(std::size_t from,
                                              io::CheckpointReader msg) {
  io::SectionReader r = msg.section("chunk");
  ChunkPayload p = readChunk(r);
  r.expectEnd();

  std::size_t exec = workers_.size();
  for (std::size_t w = 0; w < workers_.size(); ++w)
    if (w != from && workers_[w].pid >= 0 && !workers_[w].stepping &&
        !workers_[w].chunkBusy) {
      exec = w;
      break;
    }
  if (exec < workers_.size()) {
    io::CheckpointWriter fwd = wire::makeMessage(wire::kMsgChunkExec);
    writeChunk(fwd.section("chunk"), p);
    try {
      workers_[exec].ch.send(fwd);
      workers_[exec].chunkBusy = true;
      workers_[exec].chunkRequester = from;
      return;
    } catch (const WireError&) {
      respawnWorker(exec, "died while idle (chunk dispatch)");
      // fall through to a denial — the requester computes locally
    }
  }
  io::CheckpointWriter deny = wire::makeMessage(wire::kMsgChunkReply);
  deny.section("chunk").boolean(false);
  try {
    workers_[from].ch.send(deny);
  } catch (const WireError& e) {
    respawnWorker(from, std::string("died awaiting a chunk reply (") +
                            e.what() + ")");
  }
}

void DistributedScheduler::collectRoundResults() {
  std::vector<pollfd> fds;
  std::vector<std::size_t> idx;
  for (;;) {
    fds.clear();
    idx.clear();
    bool anyStepping = false;
    for (std::size_t w = 0; w < workers_.size(); ++w) {
      const WorkerSlot& slot = workers_[w];
      if (!slot.stepping && !slot.chunkBusy) continue;
      anyStepping = anyStepping || slot.stepping;
      fds.push_back({slot.ch.fd(), POLLIN, 0});
      idx.push_back(w);
    }
    if (!anyStepping) return;

    int timeoutMs = -1;
    const auto now = std::chrono::steady_clock::now();
    if (scenario_.workerTimeoutSeconds > 0.0) {
      for (const std::size_t w : idx) {
        if (!workers_[w].stepping) continue;
        const auto remain = std::chrono::duration_cast<std::chrono::milliseconds>(
                                workers_[w].deadline - now)
                                .count();
        const int ms = remain < 0 ? 0 : static_cast<int>(remain) + 1;
        if (timeoutMs < 0 || ms < timeoutMs) timeoutMs = ms;
      }
    }

    const int rc = ::poll(fds.data(), fds.size(), timeoutMs);
    if (rc < 0) {
      if (errno == EINTR) continue;
      throw WireError(std::string("poll: ") + std::strerror(errno));
    }
    if (rc == 0) {
      // Deadline sweep: kill and re-dispatch every stepping worker past it.
      const auto late = std::chrono::steady_clock::now();
      for (std::size_t w = 0; w < workers_.size(); ++w)
        if (workers_[w].stepping && late >= workers_[w].deadline) {
          respawnWorker(w, "stalled past worker_timeout");
          break;  // slots changed; rebuild the poll set
        }
      continue;
    }

    for (std::size_t k = 0; k < fds.size(); ++k) {
      if ((fds[k].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
      const std::size_t w = idx[k];
      try {
        io::CheckpointReader msg =
            workers_[w].ch.recv("worker " + std::to_string(w));
        const std::string kind = msg.kind();
        if (kind == wire::kMsgRoundResult) {
          io::SectionReader rr = msg.section("round");
          const std::uint64_t round = rr.u64();
          rr.expectEnd();
          if (round != round_)
            throw WireError("worker " + std::to_string(w) +
                            " reported round " + std::to_string(round) +
                            " during round " + std::to_string(round_));
          io::SectionReader js = msg.section("jobs");
          const std::uint64_t n = js.u64();
          for (std::uint64_t j = 0; j < n; ++j) {
            wire::JobRoundReport rep = wire::readJobRoundReport(js);
            if (rep.jobIndex >= jobs_.size() || workerOf(rep.jobIndex) != w)
              throw WireError("worker " + std::to_string(w) +
                              " reported job index " +
                              std::to_string(rep.jobIndex) +
                              " it does not own");
            const std::size_t ji = rep.jobIndex;
            roundReports_[ji] = std::move(rep);
            haveReport_[ji] = 1;
          }
          js.expectEnd();
          io::SectionReader ds = msg.section("deltas");
          const std::vector<wire::ShardDelta> deltas =
              wire::readShardDeltas(ds);
          ds.expectEnd();
          // Merging on receipt is safe: sums commute, and a killed worker's
          // partial round is never received, so each probe merges once.
          for (const wire::ShardDelta& d : deltas) {
            if (shared_ != nullptr) shared_->addProbes(d.shard, d.hits, d.misses);
            reports_[w].sharedHits += d.hits;
            reports_[w].sharedMisses += d.misses;
          }
          workers_[w].stepping = false;
          workers_[w].consecutiveDeaths = 0;
        } else if (kind == wire::kMsgChunkRequest) {
          handleChunkRequest(w, std::move(msg));
        } else if (kind == wire::kMsgChunkReply) {
          // An executor finished a chunk: relay to the requester (or drop it
          // if the requester died and was respawned meanwhile).
          const std::size_t requester = workers_[w].chunkRequester;
          workers_[w].chunkBusy = false;
          if (requester < workers_.size()) {
            io::SectionReader cr = msg.section("chunk");
            io::CheckpointWriter fwd = wire::makeMessage(wire::kMsgChunkReply);
            io::SectionWriter& cw = fwd.section("chunk");
            const bool granted = cr.boolean();
            cw.boolean(granted);
            if (granted) {
              const std::uint64_t m = cr.u64();
              cw.u64(m);
              for (std::uint64_t j = 0; j < m; ++j)
                io::writeEvalResult(cw, io::readEvalResult(cr));
            }
            cr.expectEnd();
            try {
              workers_[requester].ch.send(fwd);
            } catch (const WireError& e) {
              respawnWorker(requester,
                            std::string("died awaiting a chunk reply (") +
                                e.what() + ")");
            }
          }
        } else {
          throw WireError("worker " + std::to_string(w) +
                          ": unexpected message kind \"" + kind +
                          "\" during a round");
        }
      } catch (const WireError& e) {
        respawnWorker(w, std::string("died mid-round (") + e.what() + ")");
      } catch (const io::CheckpointError& e) {
        respawnWorker(w, std::string("sent a corrupt frame (") + e.what() +
                             ")");
      }
      break;  // slots may have changed; rebuild the poll set
    }
  }
}

void DistributedScheduler::broadcastBarrier(
    const std::vector<std::size_t>& checkpointJobs) {
  io::CheckpointWriter msg = wire::makeMessage(wire::kMsgBarrier);
  msg.section("round").u64(round_);
  io::SectionWriter& pb = msg.section("publishes");
  std::size_t count = 0;
  for (std::size_t i = 0; i < jobs_.size(); ++i)
    if (haveReport_[i] && roundReports_[i].stepError.empty() &&
        !roundReports_[i].publishes.empty())
      ++count;
  pb.u64(count);
  for (std::size_t i = 0; i < jobs_.size(); ++i) {
    if (!haveReport_[i] || !roundReports_[i].stepError.empty() ||
        roundReports_[i].publishes.empty())
      continue;
    pb.u64(i);
    wire::writePublishes(pb, roundReports_[i].publishes);
  }
  msg.section("checkpoints").indexVec(checkpointJobs);

  // Every worker gets the barrier (mirror sync keeps idle workers valid as
  // chunk executors). A worker that dies here is respawned — its fresh fork
  // image already contains this barrier's master inserts — and the barrier
  // is re-sent so instructed periodic checkpoints still get written
  // (mirror re-inserts are idempotent).
  for (std::size_t w = 0; w < workers_.size(); ++w) {
    for (;;) {
      try {
        workers_[w].ch.send(msg);
        break;
      } catch (const WireError& e) {
        respawnWorker(w, std::string("died at the barrier (") + e.what() +
                             ")");
      }
    }
  }
}

void DistributedScheduler::writeJournalFile() const {
  JournalState state;
  state.round = round_;
  state.jobs.reserve(jobs_.size());
  for (std::size_t i = 0; i < jobs_.size(); ++i) {
    const BuiltJob& job = jobs_[i];
    JournalJobState js;
    js.granted = job.granted;
    js.rounds = job.result.rounds;
    js.published = job.result.published;
    js.checkpoints = job.result.checkpoints;
    js.quarantined = job.result.quarantined;
    js.quarantineReason = job.result.quarantineReason;
    js.strategyBlob = lastBlobs_[i];
    state.jobs.push_back(std::move(js));
  }
  writeJournal(scenario_.journalPath, scenario_, state, shared_.get(),
               events_);
}

std::vector<JobResult> DistributedScheduler::run(std::size_t maxRounds) {
  if (inner_ != nullptr) return inner_->run(maxRounds);
  if (completed_)
    throw std::logic_error(
        "DistributedScheduler::run: a scheduler runs exactly once");
  started_ = true;
  if (!forked_) forkWorkers();

  const bool journaling = !scenario_.journalPath.empty();
  std::vector<std::size_t> runnable;
  runnable.reserve(jobs_.size());
  std::vector<std::size_t> beforeIters(jobs_.size(), 0);
  std::size_t roundsThisCall = 0;

  while (maxRounds == 0 || roundsThisCall < maxRounds) {
    runnable.clear();
    for (std::size_t i = 0; i < jobs_.size(); ++i)
      if (!jobs_[i].result.quarantined && !finished_[i]) runnable.push_back(i);
    if (runnable.empty()) {
      completed_ = true;
      break;
    }
    ++round_;
    ++roundsThisCall;

    // Grants use the Scheduler's exact round-robin formula, computed here —
    // worker timing can never bend a budget sequence.
    grants_.clear();
    for (const std::size_t i : runnable) {
      beforeIters[i] = iterations_[i];
      haveReport_[i] = 0;
      jobs_[i].granted =
          std::min(jobs_[i].spec.budget, jobs_[i].granted + scenario_.slice);
      grants_.emplace_back(i, jobs_[i].granted);
    }
    for (std::size_t w = 0; w < workers_.size(); ++w) {
      bool has = false;
      for (const auto& [i, granted] : grants_)
        if (workerOf(i) == w) {
          has = true;
          break;
        }
      if (has) dispatchRound(w);
    }
    collectRoundResults();

    // ---- Round barrier, every pass in job-index order (the in-process
    // Scheduler's exact sequence: progress, publish, quarantine, checkpoint
    // cadence, stall guard, journal). ----
    for (const std::size_t i : runnable) {
      if (!haveReport_[i])
        throw WireError("round " + std::to_string(round_) +
                        ": no report for job \"" + jobs_[i].spec.name + "\"");
      const wire::JobRoundReport& rep = roundReports_[i];
      ++jobs_[i].result.rounds;
      iterations_[i] = rep.iterations;
      finished_[i] = rep.finished ? 1 : 0;
      if (!rep.strategyBlob.empty()) lastBlobs_[i] = rep.strategyBlob;
    }
    for (const std::size_t i : runnable) {
      const wire::JobRoundReport& rep = roundReports_[i];
      if (!rep.stepError.empty()) continue;
      if (shared_ != nullptr) {
        const std::size_t scope = shared_->scopeId(jobs_[i].scope);
        for (const wire::PublishEntry& e : rep.publishes)
          shared_->insert(scope, e.key, e.result);
      }
      jobs_[i].result.published += rep.publishes.size();
    }
    for (const std::size_t i : runnable) {
      BuiltJob& job = jobs_[i];
      const wire::JobRoundReport& rep = roundReports_[i];
      if (!rep.stepError.empty()) {
        job.result.quarantined = true;
        job.result.quarantineReason = "step threw: " + rep.stepError;
        continue;
      }
      if (rep.stats.failures > job.spec.maxFailures) {
        job.result.quarantined = true;
        job.result.quarantineReason =
            quarantineReasonFor(job.spec, rep.stats, rep.firstFailure);
      }
    }
    std::vector<std::size_t> checkpointJobs;
    for (const std::size_t i : runnable) {
      BuiltJob& job = jobs_[i];
      if (job.result.quarantined) continue;
      if (job.spec.checkpointEvery != 0 &&
          job.result.rounds % job.spec.checkpointEvery == 0) {
        checkpointJobs.push_back(i);
        ++job.result.checkpoints;
      }
    }
    for (const std::size_t i : runnable) {
      const BuiltJob& job = jobs_[i];
      if (job.result.quarantined) continue;
      if (job.granted >= job.spec.budget && !finished_[i] &&
          iterations_[i] == beforeIters[i])
        throw std::logic_error("Scheduler: job \"" + job.spec.name +
                               "\" makes no progress (strategy \"" +
                               job.spec.strategy +
                               "\" violates the step() contract)");
    }
    broadcastBarrier(checkpointJobs);
    if (journaling && round_ % scenario_.journalEvery == 0) writeJournalFile();
  }

  if (!completed_) {
    completed_ = true;
    for (std::size_t i = 0; i < jobs_.size(); ++i)
      if (!jobs_[i].result.quarantined && !finished_[i]) {
        completed_ = false;
        break;
      }
  }
  if (journaling && completed_ && round_ % scenario_.journalEvery != 0)
    writeJournalFile();

  std::vector<JobResult> results = harvestDistributed();
  if (completed_) shutdownWorkers();
  return results;
}

std::vector<JobResult> DistributedScheduler::harvestDistributed() {
  for (std::size_t w = 0; w < workers_.size(); ++w) {
    for (;;) {
      try {
        workers_[w].ch.send(wire::makeMessage(wire::kMsgHarvest));
        const io::CheckpointReader msg =
            workers_[w].ch.recv("worker " + std::to_string(w) + " (harvest)");
        if (msg.kind() != wire::kMsgHarvestResult)
          throw WireError("worker " + std::to_string(w) +
                          ": expected harvest result, got \"" + msg.kind() +
                          "\"");
        io::SectionReader js = msg.section("jobs");
        const std::uint64_t n = js.u64();
        if (n != workers_[w].owned.size())
          js.fail("harvest covers " + std::to_string(n) + " jobs, worker " +
                  std::to_string(w) + " owns " +
                  std::to_string(workers_[w].owned.size()));
        for (std::uint64_t k = 0; k < n; ++k) {
          wire::JobHarvest h = wire::readJobHarvest(js);
          if (h.jobIndex >= jobs_.size() || workerOf(h.jobIndex) != w)
            throw WireError("worker " + std::to_string(w) +
                            " harvested job index " +
                            std::to_string(h.jobIndex) + " it does not own");
          BuiltJob& job = jobs_[h.jobIndex];
          job.result.outcome = std::move(h.outcome);
          job.result.failures = h.engineStats.failures;
          if (job.result.quarantined) {
            // Same override as Scheduler::harvest: a quarantined strategy's
            // cached outcome may predate the harvest.
            job.result.outcome.ledger = std::move(h.engineLedger);
            job.result.outcome.evalStats = h.engineStats;
          }
        }
        js.expectEnd();
        break;
      } catch (const WireError& e) {
        respawnWorker(w, std::string("died at harvest (") + e.what() + ")");
      }
    }
  }
  std::vector<JobResult> results;
  results.reserve(jobs_.size());
  for (const BuiltJob& job : jobs_) results.push_back(job.result);
  return results;
}

void DistributedScheduler::shutdownWorkers() {
  for (WorkerSlot& slot : workers_) {
    if (slot.pid < 0) continue;
    try {
      slot.ch.send(wire::makeMessage(wire::kMsgShutdown));
    } catch (...) {
      // Already dead — reap below.
    }
    slot.ch.close();
    reap(slot.pid, 2000);
    slot.pid = -1;
  }
}

void DistributedScheduler::resume(const std::string& journalPath) {
  if (inner_ != nullptr) {
    inner_->resume(journalPath);
    return;
  }
  if (started_)
    throw std::logic_error(
        "DistributedScheduler::resume: must be called before the first run()");
  started_ = true;
  const JournalState state = readJournal(journalPath, scenario_, shared_.get());
  round_ = state.round;
  for (std::size_t i = 0; i < jobs_.size(); ++i) {
    BuiltJob& job = jobs_[i];
    const JournalJobState& js = state.jobs[i];
    job.granted = js.granted;
    job.result.rounds = js.rounds;
    job.result.published = js.published;
    job.result.checkpoints = js.checkpoints;
    job.result.quarantined = js.quarantined;
    job.result.quarantineReason = js.quarantineReason;
    job.strategy->restoreCheckpointBlob(
        js.strategyBlob, journalPath + "[job " + job.spec.name + "]");
    // Workers fork from this restored image at the first run(); the blob
    // also seeds the respawn-recovery state.
    lastBlobs_[i] = js.strategyBlob;
    finished_[i] = job.strategy->finished() ? 1 : 0;
    iterations_[i] = job.strategy->outcome().iterations;
  }
}

bool DistributedScheduler::completed() const {
  return inner_ != nullptr ? inner_->completed() : completed_;
}

const Scenario& DistributedScheduler::scenario() const {
  return inner_ != nullptr ? inner_->scenario() : scenario_;
}

const eval::SharedEvalCache* DistributedScheduler::sharedCache() const {
  return inner_ != nullptr ? inner_->sharedCache() : shared_.get();
}

}  // namespace trdse::orch
