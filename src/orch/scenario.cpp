#include "orch/scenario.hpp"

#include <fstream>
#include <set>
#include <sstream>
#include <stdexcept>

#include "common/parse_util.hpp"

namespace trdse::orch {

namespace {

[[noreturn]] void fail(const std::string& source, std::size_t line,
                       const std::string& what) {
  throw std::invalid_argument("scenario " + source + ":" +
                              std::to_string(line) + ": " + what);
}

/// Strip comments (# to end of line) and surrounding whitespace.
std::string stripped(std::string s) {
  const std::size_t hash = s.find('#');
  if (hash != std::string::npos) s.erase(hash);
  const std::size_t b = s.find_first_not_of(" \t\r");
  if (b == std::string::npos) return {};
  const std::size_t e = s.find_last_not_of(" \t\r");
  return s.substr(b, e - b + 1);
}

std::uint64_t parseU64(const std::string& source, std::size_t line,
                       const std::string& key, const std::string& value) {
  try {
    return common::parseU64("key \"" + key + "\"", value);
  } catch (const std::invalid_argument& e) {
    fail(source, line, e.what());
  }
}

bool parseBool(const std::string& source, std::size_t line,
               const std::string& key, const std::string& value) {
  try {
    return common::parseBool("key \"" + key + "\"", value);
  } catch (const std::invalid_argument& e) {
    fail(source, line, e.what());
  }
}

double parseF64(const std::string& source, std::size_t line,
                const std::string& key, const std::string& value) {
  try {
    return common::parseF64("key \"" + key + "\"", value);
  } catch (const std::invalid_argument& e) {
    fail(source, line, e.what());
  }
}

}  // namespace

Scenario parseScenario(std::istream& in, const std::string& source) {
  Scenario sc;
  sc.sourceName = source;
  JobSpec* job = nullptr;  // nullptr while in the global section
  std::vector<std::size_t> jobLines;  // first line of each [job] block
  std::set<std::string> seenKeys;     // per-section duplicate guard
  std::size_t faultLine = 0;          // last fault_*/retry_* line seen
  std::string raw;
  std::size_t lineNo = 0;

  while (std::getline(in, raw)) {
    ++lineNo;
    const std::string line = stripped(raw);
    if (line.empty()) continue;

    if (line == "[job]") {
      sc.jobs.emplace_back();
      job = &sc.jobs.back();
      job->sourceLine = lineNo;
      jobLines.push_back(lineNo);
      seenKeys.clear();
      continue;
    }
    if (line.front() == '[')
      fail(source, lineNo, "unknown section \"" + line + "\" (only [job])");

    const std::size_t eq = line.find('=');
    if (eq == std::string::npos)
      fail(source, lineNo, "expected key = value, got \"" + line + "\"");
    const std::string key = stripped(line.substr(0, eq));
    const std::string value = stripped(line.substr(eq + 1));
    if (key.empty() || value.empty())
      fail(source, lineNo, "empty key or value in \"" + line + "\"");
    // Strict parsing: a repeated key in the same section is a copy-paste
    // mistake, never a valid override (opt.* keys are covered too).
    if (!seenKeys.insert(key).second)
      fail(source, lineNo, "duplicate key \"" + key + "\"");

    if (job == nullptr) {
      if (key == "name") sc.name = value;
      else if (key == "threads") sc.threads = parseU64(source, lineNo, key, value);
      else if (key == "workers") sc.workers = parseU64(source, lineNo, key, value);
      else if (key == "worker_timeout") {
        sc.workerTimeoutSeconds = parseF64(source, lineNo, key, value);
        if (sc.workerTimeoutSeconds < 0.0)
          fail(source, lineNo, "worker_timeout must be >= 0");
      }
      else if (key == "offload_chunks") sc.offloadChunks = parseBool(source, lineNo, key, value);
      else if (key == "slice") sc.slice = parseU64(source, lineNo, key, value);
      else if (key == "shared_cache") sc.sharedCache = parseBool(source, lineNo, key, value);
      else if (key == "shards") sc.cacheShards = parseU64(source, lineNo, key, value);
      else if (key == "base_seed") sc.baseSeed = parseU64(source, lineNo, key, value);
      else if (key == "fault_seed") {
        sc.faultPlan.seed = parseU64(source, lineNo, key, value);
        faultLine = lineNo;
      } else if (key == "fault_timeout") {
        sc.faultPlan.timeoutRate = parseF64(source, lineNo, key, value);
        faultLine = lineNo;
      } else if (key == "fault_nonconv") {
        sc.faultPlan.nonConvergenceRate = parseF64(source, lineNo, key, value);
        faultLine = lineNo;
      } else if (key == "fault_nonfinite") {
        sc.faultPlan.nonFiniteRate = parseF64(source, lineNo, key, value);
        faultLine = lineNo;
      } else if (key == "fault_timeout_stall") {
        sc.faultPlan.timeoutStallSeconds = parseF64(source, lineNo, key, value);
        faultLine = lineNo;
      } else if (key == "retry_attempts") {
        sc.retry.maxAttempts = parseU64(source, lineNo, key, value);
        if (sc.retry.maxAttempts == 0)
          fail(source, lineNo, "retry_attempts must be positive");
      } else if (key == "retry_backoff") {
        sc.retry.backoffBase = parseU64(source, lineNo, key, value);
      } else if (key == "retry_backoff_cap") {
        sc.retry.backoffCap = parseU64(source, lineNo, key, value);
      } else if (key == "retry_timeout") {
        sc.retry.timeoutSeconds = parseF64(source, lineNo, key, value);
        if (sc.retry.timeoutSeconds < 0.0)
          fail(source, lineNo, "retry_timeout must be >= 0");
      } else if (key == "journal") {
        sc.journalPath = value;
      } else if (key == "journal_every") {
        sc.journalEvery = parseU64(source, lineNo, key, value);
        if (sc.journalEvery == 0)
          fail(source, lineNo, "journal_every must be positive");
      } else
        fail(source, lineNo,
             "unknown scenario key \"" + key +
                 "\" (known: name, threads, workers, worker_timeout, "
                 "offload_chunks, slice, shared_cache, shards, "
                 "base_seed, fault_seed, fault_timeout, fault_nonconv, "
                 "fault_nonfinite, fault_timeout_stall, retry_attempts, "
                 "retry_backoff, retry_backoff_cap, retry_timeout, journal, "
                 "journal_every)");
      continue;
    }

    if (key == "name") job->name = value;
    else if (key == "circuit") job->circuit = value;
    else if (key == "strategy") job->strategy = value;
    else if (key == "cache_scope") job->cacheScope = value;
    else if (key == "seed") job->seed = parseU64(source, lineNo, key, value);
    else if (key == "budget") job->budget = parseU64(source, lineNo, key, value);
    else if (key == "checkpoint_every")
      job->checkpointEvery = parseU64(source, lineNo, key, value);
    else if (key == "checkpoint_path") job->checkpointPath = value;
    else if (key == "max_failures")
      job->maxFailures = parseU64(source, lineNo, key, value);
    else if (key.rfind("opt.", 0) == 0) {
      const std::string optKey = key.substr(4);
      if (optKey.empty()) fail(source, lineNo, "empty option key \"opt.\"");
      job->options.emplace(optKey, value);
    } else {
      fail(source, lineNo,
           "unknown job key \"" + key +
               "\" (known: name, circuit, strategy, cache_scope, seed, "
               "budget, checkpoint_every, checkpoint_path, max_failures, "
               "opt.<option>)");
    }
  }

  // ---- Cross-field validation (errors point at the job's [job] line) ----
  if (sc.slice == 0) fail(source, lineNo, "slice must be positive");
  if (sc.jobs.empty()) fail(source, lineNo, "scenario defines no [job]");
  try {
    sim::FaultPlan validate(sc.faultPlan);  // rate-range + sum check
    (void)validate;
  } catch (const std::invalid_argument& e) {
    fail(source, faultLine == 0 ? lineNo : faultLine, e.what());
  }
  for (std::size_t i = 0; i < sc.jobs.size(); ++i) {
    JobSpec& j = sc.jobs[i];
    const std::size_t at = jobLines[i];
    const std::string label = "job " + std::to_string(i + 1);
    if (j.name.empty()) j.name = "job" + std::to_string(i + 1);
    if (j.circuit.empty() && !j.makeProblem)
      fail(source, at, label + " (\"" + j.name + "\") has no circuit");
    if (j.strategy.empty())
      fail(source, at, label + " (\"" + j.name + "\") has no strategy");
    if (j.budget == 0)
      fail(source, at, label + " (\"" + j.name + "\") has zero budget");
    if (j.checkpointEvery != 0 && j.checkpointPath.empty())
      fail(source, at,
           label + " (\"" + j.name +
               "\") sets checkpoint_every without checkpoint_path");
    for (std::size_t k = 0; k < i; ++k)
      if (sc.jobs[k].name == j.name)
        fail(source, at, "duplicate job name \"" + j.name + "\"");
  }
  return sc;
}

Scenario parseScenarioText(const std::string& text, const std::string& source) {
  std::istringstream in(text);
  return parseScenario(in, source);
}

Scenario loadScenarioFile(const std::string& path) {
  std::ifstream in(path);
  if (!in)
    throw std::invalid_argument("scenario file \"" + path +
                                "\" cannot be opened");
  return parseScenario(in, path);
}

}  // namespace trdse::orch
