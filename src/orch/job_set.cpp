#include "orch/job_set.hpp"

#include <stdexcept>
#include <utility>

#include "circuits/registry.hpp"
#include "common/thread_pool.hpp"
#include "sim/fault.hpp"

namespace trdse::orch {

namespace {

/// Construction errors point at the offending job's [job] line (scenario-
/// file convention — consumers like the trdse CLI print them as-is).
[[noreturn]] void failJob(const Scenario& sc, const JobSpec& spec,
                          const std::string& what) {
  throw std::invalid_argument("scenario " + sc.sourceName + ":" +
                              std::to_string(spec.sourceLine) + ": job \"" +
                              spec.name + "\": " + what);
}

}  // namespace

JobSet buildJobs(Scenario scenario,
                 std::shared_ptr<eval::SharedEvalCache> externalCache) {
  JobSet set;
  set.scenario = std::move(scenario);
  Scenario& sc = set.scenario;
  if (sc.jobs.empty())
    throw std::invalid_argument("Scheduler: scenario defines no jobs");
  if (sc.slice == 0)
    throw std::invalid_argument("Scheduler: slice must be positive");

  if (sc.sharedCache)
    set.shared = externalCache != nullptr
                     ? std::move(externalCache)
                     : std::make_shared<eval::SharedEvalCache>(sc.cacheShards);

  // One plan shared by every job: fault schedules are keyed on (scope,
  // indices, corner, attempt), so jobs on the same circuit see identical
  // faults — the deterministic analogue of a flaky simulator license.
  std::shared_ptr<const sim::FaultPlan> faultPlan;
  if (sc.faultPlan.enabled())
    faultPlan = std::make_shared<const sim::FaultPlan>(sc.faultPlan);

  set.jobs.reserve(sc.jobs.size());
  for (std::size_t i = 0; i < sc.jobs.size(); ++i) {
    JobSpec& spec = sc.jobs[i];
    if (spec.seed == 0)
      spec.seed = common::perTaskSeed(sc.baseSeed, i);

    BuiltJob job;
    try {
      core::SizingProblem problem =
          spec.makeProblem
              ? spec.makeProblem()
              : circuits::Registry::global().makeProblem(spec.circuit);
      job.scope = !spec.cacheScope.empty() ? spec.cacheScope
                  : !spec.circuit.empty()  ? spec.circuit
                                           : problem.name;

      job.spec = spec;
      job.strategy = opt::makeStrategy(spec.strategy, std::move(problem),
                                       spec.seed, spec.budget, spec.options);
      if (spec.checkpointEvery != 0 && !job.strategy->supportsCheckpoint())
        throw std::invalid_argument("requests checkpoints but strategy \"" +
                                    spec.strategy +
                                    "\" does not support them");
      if (!sc.journalPath.empty() && !job.strategy->supportsCheckpoint())
        throw std::invalid_argument(
            "cannot run under a write-ahead journal: strategy \"" +
            spec.strategy + "\" does not support checkpointing");
      if (!spec.checkpointPath.empty()) {
        // Two jobs snapshotting onto one file would silently overwrite each
        // other round after round; a restore would then load whichever job
        // wrote last (kind/problem/shape all match).
        for (const BuiltJob& other : set.jobs)
          if (other.spec.checkpointPath == spec.checkpointPath)
            throw std::invalid_argument("shares checkpoint_path \"" +
                                        spec.checkpointPath + "\" with job \"" +
                                        other.spec.name + "\"");
      }
      eval::EvalEngine& engine = job.strategy->engine();
      engine.setRetryPolicy(sc.retry);
      if (faultPlan != nullptr) engine.injectFaults(faultPlan, job.scope);
      // A job that turned its local memo off (e.g. pvt_search
      // opt.cache=false, the paper-accounting mode) cannot journal
      // publishes; it simply opts out of cross-job sharing rather than
      // failing the whole scenario.
      if (set.shared != nullptr && engine.config().cacheEvals)
        engine.attachSharedCache(set.shared, job.scope);

      job.result.circuit = !spec.circuit.empty() ? spec.circuit : job.scope;
    } catch (const std::invalid_argument& e) {
      failJob(sc, spec, e.what());
    }

    job.result.name = spec.name;
    job.result.strategy = spec.strategy;
    job.result.seed = spec.seed;
    job.result.budget = spec.budget;
    set.jobs.push_back(std::move(job));
  }
  return set;
}

std::string quarantineReasonFor(const JobSpec& spec,
                                const eval::EvalStats& stats,
                                const eval::FailureRecord& first) {
  return std::to_string(stats.failures) +
         " evaluation failure(s) exceed max_failures=" +
         std::to_string(spec.maxFailures) + "; first: request #" +
         std::to_string(first.request) + " on corner " +
         std::to_string(first.cornerIndex) + " failed after " +
         std::to_string(first.attempts) + " attempt(s) (" +
         std::string(sim::faultClassName(first.cls)) + ")";
}

}  // namespace trdse::orch
