// Multi-process distributed orchestration — coordinator/worker scheduling
// over the checkpoint wire format.
//
// The DistributedScheduler is the orch::Scheduler's process-parallel sibling
// for fleet-scale scenario sweeps (ROADMAP north-star; DNN-Opt and AutoCkt
// both lean on parallel simulator farms for their sample throughput). It
// forks `Scenario::workers` worker processes over socketpairs and shards
// whole jobs across them by index; within a round, workers can additionally
// offload eval-batch chunks to idle peers (`offload_chunks`). Workers run
// the existing EvalEngine/Strategy machinery unchanged; every request,
// result, ledger delta, and cache publish crosses the wire as a typed frame
// of the io checkpoint container (orch/wire.hpp).
//
// Determinism contract — the same bar orch_test holds thread counts to:
// outcomes, ledgers (cached/failed flags included), per-job stats, and
// shared-cache counters are **bitwise identical for any worker count,
// including 0** (0 = delegate to the in-process Scheduler). The proof
// obligations, discharged at round barriers in job-index order:
//   * Grant sequences are computed coordinator-side with the Scheduler's
//     exact formula — never from worker timing.
//   * Workers step with a *mirror* of the shared cache (the fork-time
//     copy-on-write image of the master, re-synced at every barrier), so a
//     lookup during round R sees exactly the entries published through
//     round R-1 — the same state the in-process engines see.
//   * Freshly simulated results ship as publish lists
//     (EvalEngine::drainPublishJournal) and the coordinator inserts them
//     into the master cache at the barrier, in job-index order — the same
//     inserts publishShared() would perform.
//   * Mirror-probe hit/miss tallies ship as per-shard deltas and fold into
//     the master's counters (SharedEvalCache::addProbes); shard assignment
//     is a pure key hash and sums commute, so totals match bitwise.
//   * Quarantine decisions, checkpoint cadence, the stall guard, and the
//     write-ahead journal all run coordinator-side from reported
//     deterministic state, with the Scheduler's exact reason strings.
//
// Fault tolerance (PR 6 integration): a worker that dies (or stalls past
// `worker_timeout`) is SIGKILLed, reaped, re-forked, restored from the
// per-job checkpoint blobs of the last barrier, and its in-flight round is
// re-dispatched — deterministically, because the round's inputs are a pure
// function of barrier state. The event lands in the journal's "events"
// section and on stderr via events(). SIGKILL of the coordinator *or* a
// worker followed by --resume therefore reproduces the uninterrupted run's
// stdout byte-for-byte. Jobs whose strategy cannot checkpoint still run
// distributed, but a worker death with such a job in flight is a hard
// WireError (nothing to restore from) — the CI smoke pairs them with
// workers whose death is never induced.
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "orch/scheduler.hpp"
#include "orch/wire.hpp"

namespace trdse::orch {

/// Coordinator of a multi-process run (see file header). With
/// `Scenario::workers == 0` it delegates to the in-process Scheduler, so
/// callers can treat the worker count as a pure throughput knob.
class DistributedScheduler {
 public:
  /// Build every job up front via orch::buildJobs (workers inherit the
  /// constructed jobs at fork). Throws std::invalid_argument on scenario
  /// errors, including engine thread pools that cannot survive a fork
  /// (opt.eval_threads != 1 with workers > 0).
  explicit DistributedScheduler(Scenario scenario);

  ~DistributedScheduler();
  DistributedScheduler(const DistributedScheduler&) = delete;
  DistributedScheduler& operator=(const DistributedScheduler&) = delete;

  /// Run every job to completion (or `maxRounds` scheduling rounds) and
  /// return one row per job, in job order — the Scheduler contract, bitwise.
  /// Workers are forked lazily on the first call and shut down when the run
  /// completes. Throws wire::WireError when a worker death cannot be
  /// recovered (non-checkpointable strategy in flight, respawn loop).
  std::vector<JobResult> run(std::size_t maxRounds = 0);

  /// Restore a journaled run (Scheduler::resume contract). Must precede the
  /// first run() — strategies are restored coordinator-side and the workers
  /// fork from the restored image. Journals are interchangeable with the
  /// in-process Scheduler's (worker knobs are not fingerprinted).
  void resume(const std::string& journalPath);

  /// Whether every job has completed or been quarantined.
  bool completed() const;

  /// The scenario as scheduled (derived seeds filled in).
  const Scenario& scenario() const;
  /// The master cross-job cache (nullptr when disabled).
  const eval::SharedEvalCache* sharedCache() const;

  /// Deterministic per-worker attribution for reports: owned jobs and the
  /// merged mirror-probe tallies. Empty when workers == 0 (in-process path).
  /// Worker restarts are deliberately *not* here — they depend on wall-clock
  /// faults — but in events().
  struct WorkerReport {
    std::vector<std::string> jobs;  ///< owned job names, job-index order
    std::size_t sharedHits = 0;     ///< mirror-probe hits merged so far
    std::size_t sharedMisses = 0;   ///< mirror-probe misses merged so far
  };
  const std::vector<WorkerReport>& workerReports() const { return reports_; }

  /// Worker-failure log (death/stall + re-dispatch records) — informational,
  /// journaled under "events", never part of deterministic stdout.
  const std::vector<std::string>& events() const { return events_; }

  /// Test hook (also surfaced as trdse run --debug-kill-worker): worker
  /// `worker` _exit()s upon *receiving* the run-round frame of global round
  /// `round` (1-based) — a deterministic stand-in for SIGKILL mid-round.
  /// Fires once; the respawned worker does not inherit it. Must be set
  /// before the first run().
  void debugKillWorker(std::size_t worker, std::size_t round);

 private:
  struct WorkerSlot {
    pid_t pid = -1;
    wire::FrameChannel ch;
    std::vector<std::size_t> owned;  ///< job indices, ascending
    bool stepping = false;   ///< round dispatched, result pending
    bool chunkBusy = false;  ///< executing an offloaded chunk
    /// Requester worker index of the chunk this worker is executing (valid
    /// while chunkBusy; SIZE_MAX = requester died, drop the reply).
    std::size_t chunkRequester = 0;
    std::size_t consecutiveDeaths = 0;  ///< respawns since last good round
    /// Stall deadline of the in-flight round (worker_timeout > 0 only).
    std::chrono::steady_clock::time_point deadline{};
  };

  std::size_t workerOf(std::size_t jobIndex) const;
  void forkWorkers();
  void spawnWorker(std::size_t w);
  /// Kill/reap `w` (if alive), re-fork it, restore its jobs from the last
  /// barrier blobs, and re-dispatch its round if one was in flight.
  void respawnWorker(std::size_t w, const std::string& why);
  void dispatchRound(std::size_t w);
  void collectRoundResults();
  void handleChunkRequest(std::size_t from, io::CheckpointReader msg);
  void broadcastBarrier(const std::vector<std::size_t>& checkpointJobs);
  void writeJournalFile() const;
  std::vector<JobResult> harvestDistributed();
  void shutdownWorkers();

  Scenario scenario_;
  std::shared_ptr<eval::SharedEvalCache> shared_;
  std::vector<BuiltJob> jobs_;
  std::size_t round_ = 0;
  bool started_ = false;
  bool completed_ = false;
  bool forked_ = false;

  std::vector<WorkerSlot> workers_;
  std::vector<WorkerReport> reports_;
  std::vector<std::string> events_;
  /// Per-job strategy blob as of the last barrier the job stepped in (empty
  /// until first report; always empty for non-checkpointable strategies).
  std::vector<std::string> lastBlobs_;
  /// Coordinator view of per-job progress, updated from round reports.
  std::vector<char> finished_;
  std::vector<std::size_t> iterations_;
  /// This round's grants (jobIndex -> granted target), valid while stepping.
  std::vector<std::pair<std::size_t, std::size_t>> grants_;
  /// This round's reports, indexed by job (valid at the barrier).
  std::vector<wire::JobRoundReport> roundReports_;
  std::vector<char> haveReport_;
  /// Pending (worker, round) debug kills (see debugKillWorker).
  std::vector<std::pair<std::size_t, std::size_t>> debugKills_;

  /// workers == 0: the in-process delegate (everything above stays unused).
  std::unique_ptr<Scheduler> inner_;
};

}  // namespace trdse::orch
