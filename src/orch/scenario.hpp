// Declarative multi-job scenarios — what the orchestrator runs.
//
// A scenario is N sizing jobs (circuit + strategy + seed + budget) plus the
// scheduling knobs, written as a small line-based text file so batch
// comparisons (the paper's Tables I/III layouts) are data, not code:
//
//     # comparison on the 45nm opamp
//     name    = opamp_bakeoff
//     threads = 4          # scheduler workers
//     slice   = 16         # EDA blocks granted per job per round
//     shards  = 16         # shared-cache stripes (shared_cache = off|on)
//
//     [job]
//     name     = trm_drl
//     circuit  = two_stage_opamp   # circuits::Registry name
//     strategy = pvt_search        # opt::makeStrategy name
//     seed     = 1
//     budget   = 400
//     opt.pool = progressive_hardest   # strategy-specific option
//
//     [job]
//     name     = random
//     circuit  = two_stage_opamp
//     strategy = random_search
//     budget   = 400               # seed omitted: derived from job index
//
// Parsing is strict: unknown keys, malformed numbers, duplicate job names,
// or a job without circuit/strategy throw std::invalid_argument naming the
// offending line. Programmatic callers can instead fill the structs directly
// (JobSpec::makeProblem admits problems that exist only in code).
#pragma once

#include <functional>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "core/problem.hpp"
#include "eval/eval_engine.hpp"
#include "sim/fault.hpp"

namespace trdse::orch {

/// One schedulable search job.
struct JobSpec {
  std::string name;      ///< unique row label in reports
  std::string circuit;   ///< circuits::Registry name (ignored with makeProblem)
  /// Inline problem override for problems that exist only in code; when set,
  /// `circuit` is only a label. The factory must be pure (it may be invoked
  /// from a scheduler construction pass).
  std::function<core::SizingProblem()> makeProblem;
  std::string strategy;  ///< opt::makeStrategy name
  /// Shared-cache namespace; jobs sharing results must agree on it. Empty =
  /// the circuit name (or the problem name for inline problems).
  std::string cacheScope;
  /// 0 = derive deterministically from (scenario baseSeed, job index).
  std::uint64_t seed = 0;
  std::size_t budget = 1000;  ///< total logical EDA-block allowance
  /// Write a strategy checkpoint every N scheduler rounds (0 = off; only
  /// strategies with supportsCheckpoint()).
  std::size_t checkpointEvery = 0;
  std::string checkpointPath;  ///< destination of the periodic snapshots
  /// Retry-exhausted evaluation failures this job tolerates before the
  /// scheduler quarantines it (checked at round barriers). 0 = quarantine on
  /// the first failure.
  std::size_t maxFailures = 0;
  /// Strategy-specific overrides (the `opt.` keys of the file format).
  std::map<std::string, std::string> options;
  /// Line of this job's [job] header in the source file (0 for programmatic
  /// specs) — lets post-parse validation errors still point at the file.
  std::size_t sourceLine = 0;
};

/// A parsed scenario: scheduling knobs + the job list.
struct Scenario {
  std::string name = "scenario";
  /// Scheduler worker threads: 1 = serial (inline), 0 = hardware
  /// concurrency. Per-job outcomes are identical for any value.
  std::size_t threads = 1;
  /// Worker *processes* forked by the DistributedScheduler: 0 = run
  /// in-process (the plain Scheduler path). Jobs shard across workers by
  /// index; like `threads`, per-job outcomes, ledgers, and shared-cache
  /// counters are bitwise identical for any value (docs/ORCHESTRATION.md,
  /// "Distributed protocol").
  std::size_t workers = 0;
  /// Wall-clock seconds the coordinator waits for a worker's round before
  /// declaring it stalled, killing and re-dispatching it (0 = wait forever).
  /// Like retry_timeout, a wall-clock knob — outcomes stay deterministic
  /// because re-dispatch replays the identical round, but *when* a stall
  /// fires is not part of the contract.
  double workerTimeoutSeconds = 0.0;
  /// Offload eval-batch chunks from busy workers to idle ones within a
  /// round (the intra-round sharding axis; off by default). Results are
  /// bitwise identical either way — backends are pure — so this is purely a
  /// latency knob for expensive backends.
  bool offloadChunks = false;
  /// EDA blocks granted to every unfinished job per scheduling round (the
  /// fairness quantum).
  std::size_t slice = 16;
  bool sharedCache = true;     ///< cross-job result sharing on/off
  std::size_t cacheShards = 16;  ///< SharedEvalCache stripe count
  std::uint64_t baseSeed = 1;  ///< feeds derived per-job seeds
  /// Deterministic fault injection applied to every job's engine (all rates
  /// zero = no injection; `fault_*` keys).
  sim::FaultPlanConfig faultPlan;
  /// Retry/timeout policy applied to every job's engine (`retry_*` keys).
  eval::RetryPolicy retry;
  /// Write-ahead journal path for crash-resumable runs (empty = off;
  /// requires every job's strategy to support checkpointing).
  std::string journalPath;
  /// Journal every N scheduler rounds (the final state is always journaled).
  std::size_t journalEvery = 1;
  /// Whether the journal embeds the shared cache. The serve daemon turns
  /// this off: its cache outlives any one submission and is persisted once
  /// per barrier in the daemon's own serve-cache file, so embedding a full
  /// copy in every job journal would only amplify writes (and a resume would
  /// clobber entries other submissions added since). Programmatic knob —
  /// not a scenario-file key and, like `threads`, excluded from the journal
  /// fingerprint; a journal written either way restores under either
  /// setting of the *other* fields, but this flag must match between write
  /// and resume (the cache section is present iff it was on).
  bool journalCache = true;
  /// Source label the scenario was parsed from (error-message prefix for
  /// post-parse validation, e.g. scheduler construction).
  std::string sourceName = "scenario";
  std::vector<JobSpec> jobs;
};

/// Parse the text format above. `source` labels error messages (path/name).
Scenario parseScenario(std::istream& in, const std::string& source);
/// Parse from a string (tests, embedded scenarios).
Scenario parseScenarioText(const std::string& text, const std::string& source);
/// Read and parse a file; throws std::invalid_argument when unreadable.
Scenario loadScenarioFile(const std::string& path);

}  // namespace trdse::orch
