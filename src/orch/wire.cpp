#include "orch/wire.hpp"

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "io/state_io.hpp"

namespace trdse::orch::wire {

namespace {

/// Serialize the u64 length prefix little-endian (byte composition, like
/// every integer in the container format).
void putU64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i)
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

std::uint64_t getU64(const unsigned char* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  return v;
}

[[noreturn]] void failErrno(const std::string& what) {
  throw WireError(what + ": " + std::strerror(errno));
}

}  // namespace

bool knownMessageKind(std::string_view kind) {
  static constexpr std::string_view kKnown[] = {
      kMsgRunRound,  kMsgRoundResult, kMsgBarrier,       kMsgRestore,
      kMsgRestoreAck, kMsgHarvest,    kMsgHarvestResult, kMsgChunkRequest,
      kMsgChunkExec, kMsgChunkReply,  kMsgShutdown,      kMsgSubmit,
      kMsgAccepted,  kMsgRejected,    kMsgStatus,        kMsgStatusReply,
      kMsgStream,    kMsgProgress,    kMsgResult,        kMsgCancel,
      kMsgServeShutdown, kMsgOk,
  };
  for (const std::string_view k : kKnown)
    if (k == kind) return true;
  return false;
}

std::string peekFrameKind(std::string_view bodyPrefix) {
  // Container prefix: u32 magic, u32 format version, u64 checksum, then the
  // u64-length-prefixed kind string (io/checkpoint.cpp, finish()).
  constexpr std::size_t kHeader = 4 + 4 + 8;
  if (bodyPrefix.size() < kHeader + 8) return {};
  if (bodyPrefix.substr(0, 4) != std::string_view("TDCK", 4)) return {};
  const std::uint64_t kindLen =
      getU64(reinterpret_cast<const unsigned char*>(bodyPrefix.data()) +
             kHeader);
  if (kindLen == 0 || kindLen > 256 ||
      bodyPrefix.size() < kHeader + 8 + kindLen)
    return {};
  return std::string(bodyPrefix.substr(kHeader + 8, kindLen));
}

io::CheckpointWriter makeMessage(const std::string& kind) {
  io::CheckpointWriter w(kind);
  w.section("wire").u32(kWireVersion);
  return w;
}

std::string encodeFrame(const io::CheckpointWriter& msg) {
  std::string body = msg.finish();
  std::string frame;
  frame.reserve(8 + body.size());
  putU64(frame, body.size());
  frame += body;
  return frame;
}

io::CheckpointReader decodeFrame(const std::string& body,
                                 const std::string& source) {
  // Container validation first: magic, format version, checksum, sections.
  io::CheckpointReader reader(source, body);
  if (!knownMessageKind(reader.kind()))
    throw WireError(source + ": unknown wire message kind \"" + reader.kind() +
                    "\" (a peer from the future?)");
  io::SectionReader hdr = reader.section("wire");
  const std::uint32_t version = hdr.u32();
  if (version > kWireVersion)
    throw WireError(source + ": wire protocol version " +
                    std::to_string(version) + " is newer than this build's " +
                    std::to_string(kWireVersion));
  return reader;
}

void FrameChannel::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
    rxOffset_ = 0;
  }
}

void FrameChannel::send(const io::CheckpointWriter& msg) {
  if (fd_ < 0) throw WireError("FrameChannel::send: channel is closed");
  const std::string frame = encodeFrame(msg);
  std::size_t off = 0;
  while (off < frame.size()) {
    // MSG_NOSIGNAL: a peer that died mid-run must surface as a WireError the
    // coordinator can recover from, never as a process-killing SIGPIPE.
    const ssize_t n = ::send(fd_, frame.data() + off, frame.size() - off,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EPIPE || errno == ECONNRESET)
        throw WireError("FrameChannel::send: peer closed the channel");
      failErrno("FrameChannel::send");
    }
    off += static_cast<std::size_t>(n);
  }
}

io::CheckpointReader FrameChannel::recv(const std::string& source) {
  if (fd_ < 0) throw WireError(source + ": channel is closed");
  // Errors below anchor on the stream offset of this frame's first byte, so
  // a post-mortem can locate the offending frame in a capture.
  const std::uint64_t frameStart = rxOffset_;
  const auto atOffset = [frameStart] {
    return " (frame starts at receive-stream offset " +
           std::to_string(frameStart) + ")";
  };
  unsigned char prefix[8];
  std::size_t got = 0;
  while (got < 8) {
    const ssize_t n = ::read(fd_, prefix + got, 8 - got);
    if (n < 0) {
      if (errno == EINTR) continue;
      failErrno(source + ": read");
    }
    if (n == 0) {
      rxOffset_ += got;
      if (got == 0)
        throw WireError(source + ": peer closed the channel" + atOffset());
      throw WireError(source + ": peer closed mid-frame (" +
                      std::to_string(got) + " of 8 length-prefix bytes)" +
                      atOffset());
    }
    got += static_cast<std::size_t>(n);
  }
  rxOffset_ += 8;
  const std::uint64_t len = getU64(prefix);
  if (len > kMaxFrameBytes) {
    // The body is never read at this size, but its first bytes usually are
    // already queued — peek a bounded prefix so the error can name the
    // message kind instead of only the sizes.
    std::string probe(128, '\0');
    const ssize_t n = ::recv(fd_, probe.data(), probe.size(), MSG_DONTWAIT);
    const std::string kind =
        n > 0 ? peekFrameKind(
                    std::string_view(probe.data(), static_cast<std::size_t>(n)))
              : std::string();
    throw WireError(source + ": frame" +
                    (kind.empty() ? std::string()
                                  : " of kind \"" + kind + "\"") +
                    " length " + std::to_string(len) + " exceeds the " +
                    std::to_string(kMaxFrameBytes) +
                    "-byte kMaxFrameBytes cap (corrupt length prefix?)" +
                    atOffset());
  }
  std::string body(static_cast<std::size_t>(len), '\0');
  std::size_t off = 0;
  while (off < body.size()) {
    const ssize_t n = ::read(fd_, body.data() + off, body.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      failErrno(source + ": read");
    }
    if (n == 0) {
      rxOffset_ += off;
      const std::string kind =
          peekFrameKind(std::string_view(body.data(), off));
      throw WireError(source + ": peer closed mid-frame" +
                      (kind.empty() ? std::string()
                                    : " of kind \"" + kind + "\"") +
                      " (" + std::to_string(off) + " of " +
                      std::to_string(len) + " body bytes)" + atOffset());
    }
    off += static_cast<std::size_t>(n);
  }
  rxOffset_ += body.size();
  return decodeFrame(body, source);
}

// ---- Payload codecs ------------------------------------------------------

void writeEvalKey(io::SectionWriter& w, const eval::EvalKey& key) {
  w.indexVec(key.indices);
  w.u64(key.cornerIndex);
}

eval::EvalKey readEvalKey(io::SectionReader& r) {
  eval::EvalKey key;
  key.indices = r.indexVec();
  key.cornerIndex = r.u64();
  return key;
}

void writeEvalStats(io::SectionWriter& w, const eval::EvalStats& s) {
  w.u64(s.requests);
  w.u64(s.simulated);
  w.u64(s.cacheHits);
  w.u64(s.sharedHits);
  w.f64(s.backendSeconds);
  w.u64(s.attempts);
  w.u64(s.faults);
  w.u64(s.failures);
  w.u64(s.backoffUnits);
}

eval::EvalStats readEvalStats(io::SectionReader& r) {
  eval::EvalStats s;
  s.requests = r.u64();
  s.simulated = r.u64();
  s.cacheHits = r.u64();
  s.sharedHits = r.u64();
  s.backendSeconds = r.f64();
  s.attempts = r.u64();
  s.faults = r.u64();
  s.failures = r.u64();
  s.backoffUnits = r.u64();
  if (s.requests != s.simulated + s.cacheHits + s.sharedHits + s.failures)
    r.fail("EvalStats violate the partition invariant (requests != simulated "
           "+ cacheHits + sharedHits + failures)");
  return s;
}

void writeFailureRecord(io::SectionWriter& w, const eval::FailureRecord& f) {
  w.boolean(f.valid);
  w.u64(f.request);
  w.u64(f.cornerIndex);
  w.u8(static_cast<std::uint8_t>(f.cls));
  w.u64(f.attempts);
}

eval::FailureRecord readFailureRecord(io::SectionReader& r) {
  eval::FailureRecord f;
  f.valid = r.boolean();
  f.request = r.u64();
  f.cornerIndex = r.u64();
  const std::uint8_t cls = r.u8();
  if (cls > static_cast<std::uint8_t>(sim::FaultClass::kNonFinite))
    r.fail("unknown fault class " + std::to_string(cls));
  f.cls = static_cast<sim::FaultClass>(cls);
  f.attempts = r.u64();
  return f;
}

void writeOutcome(io::SectionWriter& w, const opt::StrategyOutcome& o) {
  w.boolean(o.solved);
  w.u64(o.iterations);
  w.vec(o.sizes);
  w.f64(o.bestValue);
  w.vec(o.bestMeasurements);
  io::writeLedger(w, o.ledger);
  writeEvalStats(w, o.evalStats);
}

opt::StrategyOutcome readOutcome(io::SectionReader& r) {
  opt::StrategyOutcome o;
  o.solved = r.boolean();
  o.iterations = r.u64();
  o.sizes = r.vec();
  o.bestValue = r.f64();
  o.bestMeasurements = r.vec();
  io::readLedger(r, o.ledger);
  o.evalStats = readEvalStats(r);
  return o;
}

void writePublishes(io::SectionWriter& w,
                    const std::vector<PublishEntry>& entries) {
  w.u64(entries.size());
  for (const PublishEntry& e : entries) {
    writeEvalKey(w, e.key);
    io::writeEvalResult(w, e.result);
  }
}

std::vector<PublishEntry> readPublishes(io::SectionReader& r) {
  const std::uint64_t n = r.u64();
  std::vector<PublishEntry> entries;
  entries.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    PublishEntry e;
    e.key = readEvalKey(r);
    e.result = io::readEvalResult(r);
    entries.push_back(std::move(e));
  }
  return entries;
}

void writeJobRoundReport(io::SectionWriter& w, const JobRoundReport& rep) {
  w.u64(rep.jobIndex);
  w.str(rep.stepError);
  w.boolean(rep.finished);
  w.u64(rep.iterations);
  writeEvalStats(w, rep.stats);
  writeFailureRecord(w, rep.firstFailure);
  writePublishes(w, rep.publishes);
  w.str(rep.strategyBlob);
}

JobRoundReport readJobRoundReport(io::SectionReader& r) {
  JobRoundReport rep;
  rep.jobIndex = r.u64();
  rep.stepError = r.str();
  rep.finished = r.boolean();
  rep.iterations = r.u64();
  rep.stats = readEvalStats(r);
  rep.firstFailure = readFailureRecord(r);
  rep.publishes = readPublishes(r);
  rep.strategyBlob = r.str();
  return rep;
}

void writeShardDeltas(io::SectionWriter& w,
                      const std::vector<ShardDelta>& deltas) {
  w.u64(deltas.size());
  for (const ShardDelta& d : deltas) {
    w.u64(d.shard);
    w.u64(d.hits);
    w.u64(d.misses);
  }
}

std::vector<ShardDelta> readShardDeltas(io::SectionReader& r) {
  const std::uint64_t n = r.u64();
  std::vector<ShardDelta> deltas;
  deltas.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    ShardDelta d;
    d.shard = r.u64();
    d.hits = r.u64();
    d.misses = r.u64();
    deltas.push_back(d);
  }
  return deltas;
}

void writeJobHarvest(io::SectionWriter& w, const JobHarvest& h) {
  w.u64(h.jobIndex);
  writeOutcome(w, h.outcome);
  io::writeLedger(w, h.engineLedger);
  writeEvalStats(w, h.engineStats);
}

JobHarvest readJobHarvest(io::SectionReader& r) {
  JobHarvest h;
  h.jobIndex = r.u64();
  h.outcome = readOutcome(r);
  io::readLedger(r, h.engineLedger);
  h.engineStats = readEvalStats(r);
  return h;
}

void writeJobResult(io::SectionWriter& w, const JobResult& res) {
  w.str(res.name);
  w.str(res.circuit);
  w.str(res.strategy);
  w.u64(res.seed);
  w.u64(res.budget);
  w.u64(res.rounds);
  w.u64(res.published);
  w.u64(res.checkpoints);
  w.u64(res.failures);
  w.boolean(res.quarantined);
  w.str(res.quarantineReason);
  writeOutcome(w, res.outcome);
}

JobResult readJobResult(io::SectionReader& r) {
  JobResult res;
  res.name = r.str();
  res.circuit = r.str();
  res.strategy = r.str();
  res.seed = r.u64();
  res.budget = r.u64();
  res.rounds = r.u64();
  res.published = r.u64();
  res.checkpoints = r.u64();
  res.failures = r.u64();
  res.quarantined = r.boolean();
  res.quarantineReason = r.str();
  if (res.quarantined == res.quarantineReason.empty())
    r.fail("job result quarantine flag disagrees with its reason string");
  res.outcome = readOutcome(r);
  return res;
}

}  // namespace trdse::orch::wire
