// Shared job-construction pass of the in-process and distributed schedulers.
//
// orch::Scheduler and orch::DistributedScheduler must agree *exactly* on how
// a Scenario becomes live jobs — derived seeds, resolved cache scopes,
// strategy construction, engine wiring (retry policy, fault plan, shared
// cache attachment), and every validation error message — because the
// distributed determinism contract is "bitwise identical to workers = 0".
// Both build through this one function instead of keeping two copies in
// sync. The distributed coordinator additionally relies on buildJobs()
// running entirely in the parent before any fork: workers inherit the fully
// constructed jobs (strategies, engines, fault plans, problem closures) by
// copy-on-write, so nothing about a problem or strategy ever needs to cross
// the wire.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "eval/shared_cache.hpp"
#include "opt/strategy.hpp"
#include "orch/scenario.hpp"

namespace trdse::orch {

/// One job's report row after (or during) a run.
struct JobResult {
  std::string name;          ///< JobSpec::name
  std::string circuit;       ///< circuit label
  std::string strategy;      ///< strategy name
  std::uint64_t seed = 0;    ///< effective seed (explicit or derived)
  std::size_t budget = 0;    ///< total block allowance
  std::size_t rounds = 0;    ///< scheduling rounds the job was stepped in
  std::size_t published = 0; ///< results this job published to the shared cache
  std::size_t checkpoints = 0;  ///< periodic snapshots written
  /// Retry-exhausted evaluation failures the job's engine recorded.
  std::size_t failures = 0;
  bool quarantined = false;       ///< failure-isolated at a round barrier
  std::string quarantineReason;   ///< deterministic reason (empty otherwise)
  opt::StrategyOutcome outcome; ///< the common comparison row
};

/// One constructed job: spec + live strategy + scheduling state.
struct BuiltJob {
  JobSpec spec;
  std::unique_ptr<opt::Strategy> strategy;
  std::string scope;        ///< resolved shared-cache scope label
  std::size_t granted = 0;  ///< cumulative budget target handed out so far
  JobResult result;
};

/// The product of the construction pass: the scenario with derived seeds
/// resolved, the shared cache (null when disabled), and every job built.
struct JobSet {
  Scenario scenario;
  std::shared_ptr<eval::SharedEvalCache> shared;
  std::vector<BuiltJob> jobs;
};

/// Build every job's problem (circuits::Registry or JobSpec::makeProblem)
/// and strategy, derive absent seeds, and wire engines (retry, faults,
/// shared cache). Throws std::invalid_argument — prefixed
/// "scenario <source>:<line>: job \"name\":" — on unknown circuit/strategy
/// names, bad options, checkpoint cadences on non-checkpointing strategies,
/// or shared checkpoint paths.
///
/// `externalCache` (serve daemon): attach jobs to a cache that outlives this
/// scenario instead of creating a fresh one — a warmed cache turns repeat
/// submissions into pure shared hits. Honored only when the scenario has
/// sharedCache on; the scenario's cacheShards is then irrelevant (the
/// external cache owns its geometry).
JobSet buildJobs(Scenario scenario,
                 std::shared_ptr<eval::SharedEvalCache> externalCache = nullptr);

/// The deterministic quarantine reason for a job whose engine exceeded its
/// max_failures allowance — one string builder shared by both schedulers so
/// reports match bitwise across worker counts.
std::string quarantineReasonFor(const JobSpec& spec,
                                const eval::EvalStats& stats,
                                const eval::FailureRecord& first);

}  // namespace trdse::orch
