#include "orch/scheduler.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "common/thread_pool.hpp"
#include "orch/journal.hpp"

namespace trdse::orch {

Scheduler::Scheduler(Scenario scenario)
    : Scheduler(std::move(scenario), nullptr) {}

Scheduler::Scheduler(Scenario scenario,
                     std::shared_ptr<eval::SharedEvalCache> externalCache) {
  JobSet set = buildJobs(std::move(scenario), std::move(externalCache));
  scenario_ = std::move(set.scenario);
  shared_ = std::move(set.shared);
  jobs_ = std::move(set.jobs);
}

Scheduler::~Scheduler() = default;

void Scheduler::enableJournal(const std::string& journalPath) {
  if (started_)
    throw std::logic_error(
        "Scheduler::enableJournal: must be called before the first "
        "run()/resume()");
  if (journalPath.empty())
    throw std::invalid_argument("Scheduler::enableJournal: empty path");
  for (const Job& job : jobs_)
    if (!job.strategy->supportsCheckpoint())
      throw std::invalid_argument(
          "Scheduler::enableJournal: job \"" + job.spec.name +
          "\" cannot run under a write-ahead journal: strategy \"" +
          job.spec.strategy + "\" does not support checkpointing");
  scenario_.journalPath = journalPath;
}

void Scheduler::quarantine(Job& job, std::string reason) {
  job.result.quarantined = true;
  job.result.quarantineReason = std::move(reason);
}

void Scheduler::writeJournalFile() const {
  JournalState state;
  state.round = round_;
  state.jobs.reserve(jobs_.size());
  for (const Job& job : jobs_) {
    JournalJobState js;
    js.granted = job.granted;
    js.rounds = job.result.rounds;
    js.published = job.result.published;
    js.checkpoints = job.result.checkpoints;
    js.quarantined = job.result.quarantined;
    js.quarantineReason = job.result.quarantineReason;
    js.strategyBlob = job.strategy->saveCheckpointBlob();
    state.jobs.push_back(std::move(js));
  }
  // journalCache=false (serve daemon): the shared cache outlives this
  // scenario and is persisted separately; the journal then omits its section.
  writeJournal(scenario_.journalPath, scenario_, state,
               scenario_.journalCache ? shared_.get() : nullptr);
}

void Scheduler::resume(const std::string& journalPath) {
  if (started_)
    throw std::logic_error(
        "Scheduler::resume: must be called before the first run()");
  started_ = true;
  const JournalState state =
      readJournal(journalPath, scenario_,
                  scenario_.journalCache ? shared_.get() : nullptr);
  round_ = state.round;
  for (std::size_t i = 0; i < jobs_.size(); ++i) {
    Job& job = jobs_[i];
    const JournalJobState& js = state.jobs[i];
    job.granted = js.granted;
    job.result.rounds = js.rounds;
    job.result.published = js.published;
    job.result.checkpoints = js.checkpoints;
    job.result.quarantined = js.quarantined;
    job.result.quarantineReason = js.quarantineReason;
    job.strategy->restoreCheckpointBlob(
        js.strategyBlob,
        journalPath + "[job " + job.spec.name + "]");
  }
}

std::vector<JobResult> Scheduler::run(std::size_t maxRounds) {
  if (completed_)
    throw std::logic_error("Scheduler::run: a scheduler runs exactly once");
  started_ = true;

  common::ThreadPool pool(scenario_.threads);
  const bool journaling = !scenario_.journalPath.empty();
  std::vector<std::size_t> runnable;
  runnable.reserve(jobs_.size());
  std::vector<std::size_t> beforeIters(jobs_.size(), 0);
  std::vector<std::string> stepErrors(jobs_.size());
  std::size_t roundsThisCall = 0;

  while (maxRounds == 0 || roundsThisCall < maxRounds) {
    // Round-robin fairness: every unfinished, non-quarantined job, in
    // job-index order, gets the same additional slice of its own budget.
    runnable.clear();
    for (std::size_t i = 0; i < jobs_.size(); ++i)
      if (!jobs_[i].result.quarantined && !jobs_[i].strategy->finished())
        runnable.push_back(i);
    if (runnable.empty()) {
      completed_ = true;
      break;
    }
    ++round_;
    ++roundsThisCall;

    // Concurrent step phase: jobs are independent (own engine, own RNG
    // streams) and the shared cache is read-only during the round, so the
    // fan-out is free of cross-job races and outcomes are thread-count
    // invariant. A throwing strategy is contained to its own slot here and
    // quarantined at the barrier below — one sick job must not tear down
    // the whole scenario.
    for (const std::size_t i : runnable) {
      beforeIters[i] = jobs_[i].strategy->outcome().iterations;
      stepErrors[i].clear();
    }
    pool.parallelFor(runnable.size(), [&](std::size_t r) {
      Job& job = jobs_[runnable[r]];
      job.granted = std::min(job.spec.budget, job.granted + scenario_.slice);
      try {
        job.strategy->step(job.granted);
      } catch (const std::exception& e) {
        stepErrors[runnable[r]] =
            e.what()[0] != '\0' ? e.what() : "unknown error";
      } catch (...) {
        stepErrors[runnable[r]] = "non-standard exception";
      }
      ++job.result.rounds;
    });

    // Barrier publish phase, in job-index order: results simulated this
    // round become visible to *later* rounds only — the shared-cache
    // determinism contract. Jobs that threw publish nothing (their round
    // was cut short at a deterministic point, but skipping keeps the
    // barrier state trivially independent of how far they got).
    for (const std::size_t i : runnable)
      if (stepErrors[i].empty())
        jobs_[i].result.published += jobs_[i].strategy->engine().publishShared();

    // Quarantine scan, in job-index order, from deterministic engine state:
    // reasons and the set of quarantined jobs are bitwise identical for any
    // thread count.
    for (const std::size_t i : runnable) {
      Job& job = jobs_[i];
      if (!stepErrors[i].empty()) {
        quarantine(job, "step threw: " + stepErrors[i]);
        continue;
      }
      const eval::EvalStats& stats = job.strategy->engine().stats();
      if (stats.failures > job.spec.maxFailures)
        quarantine(job, quarantineReasonFor(
                            job.spec, stats,
                            job.strategy->engine().firstFailure()));
    }

    // Checkpoint cadence (rounds, counted per job; quarantined jobs stop
    // snapshotting — their last good checkpoint stays put).
    for (const std::size_t i : runnable) {
      Job& job = jobs_[i];
      if (job.result.quarantined) continue;
      if (job.spec.checkpointEvery != 0 &&
          job.result.rounds % job.spec.checkpointEvery == 0) {
        job.strategy->saveCheckpoint(job.spec.checkpointPath);
        ++job.result.checkpoints;
      }
    }

    // Stall guard: a job already granted its full budget that neither
    // finishes nor consumes anything in a round would loop forever.
    // Strategies signal inability to proceed via finished(), so hitting
    // this means a strategy contract violation — surface it loudly rather
    // than spinning.
    for (const std::size_t i : runnable) {
      Job& job = jobs_[i];
      if (job.result.quarantined) continue;
      if (job.granted >= job.spec.budget && !job.strategy->finished() &&
          job.strategy->outcome().iterations == beforeIters[i])
        throw std::logic_error("Scheduler: job \"" + job.spec.name +
                               "\" makes no progress (strategy \"" +
                               job.spec.strategy +
                               "\" violates the step() contract)");
    }

    // Write-ahead journal at the barrier, after every state transition of
    // this round is final. A kill at any point between two journal writes
    // loses at most the rounds since the last one — never consistency.
    if (journaling && round_ % scenario_.journalEvery == 0)
      writeJournalFile();

    // Round hook, after the journal: an observer acting on the observation
    // (the daemon persisting its cache, streaming progress) sees a state the
    // journal can already reproduce. All fields come from job-order
    // deterministic state, so observations are thread-count invariant.
    if (roundHook_) {
      RoundObservation obs;
      obs.round = round_;
      obs.jobs.reserve(runnable.size());
      for (const std::size_t i : runnable) {
        const Job& job = jobs_[i];
        RoundObservation::JobProgress p;
        p.index = i;
        p.granted = job.granted;
        const opt::StrategyOutcome& out = job.strategy->outcome();
        p.iterations = out.iterations;
        p.finished = job.strategy->finished();
        p.quarantined = job.result.quarantined;
        p.solved = out.solved;
        const eval::EvalStats& stats = job.strategy->engine().stats();
        p.sharedHits = stats.sharedHits;
        p.simulated = stats.simulated;
        p.bestValue = out.bestValue;
        obs.jobs.push_back(p);
      }
      roundHook_(obs);
    }
  }

  // Completion check also when maxRounds cut the loop short before the
  // empty-runnable test re-ran.
  if (!completed_) {
    completed_ = true;
    for (const Job& job : jobs_)
      if (!job.result.quarantined && !job.strategy->finished()) {
        completed_ = false;
        break;
      }
  }
  // The final state is always journaled, whatever the cadence: a completed
  // run's journal must describe the completed run.
  if (journaling && completed_ && round_ % scenario_.journalEvery != 0)
    writeJournalFile();

  return harvest();
}

std::vector<JobResult> Scheduler::harvest() {
  std::vector<JobResult> results;
  results.reserve(jobs_.size());
  for (Job& job : jobs_) {
    job.result.outcome = job.strategy->outcome();
    job.result.failures = job.strategy->engine().stats().failures;
    if (job.result.quarantined) {
      // A quarantined strategy never reached its own finish line, so its
      // cached outcome may predate the final harvest (e.g. an unsnapshotted
      // ledger). Its report must still account for what it consumed.
      job.result.outcome.ledger = job.strategy->engine().ledger();
      job.result.outcome.evalStats = job.strategy->engine().stats();
    }
    results.push_back(job.result);
  }
  return results;
}

}  // namespace trdse::orch
