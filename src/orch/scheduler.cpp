#include "orch/scheduler.hpp"

#include <algorithm>
#include <stdexcept>

#include "circuits/registry.hpp"
#include "common/thread_pool.hpp"

namespace trdse::orch {

Scheduler::Scheduler(Scenario scenario) : scenario_(std::move(scenario)) {
  if (scenario_.jobs.empty())
    throw std::invalid_argument("Scheduler: scenario defines no jobs");
  if (scenario_.slice == 0)
    throw std::invalid_argument("Scheduler: slice must be positive");

  if (scenario_.sharedCache)
    shared_ = std::make_shared<eval::SharedEvalCache>(scenario_.cacheShards);

  jobs_.reserve(scenario_.jobs.size());
  for (std::size_t i = 0; i < scenario_.jobs.size(); ++i) {
    JobSpec& spec = scenario_.jobs[i];
    if (spec.seed == 0)
      spec.seed = common::perTaskSeed(scenario_.baseSeed, i);

    core::SizingProblem problem =
        spec.makeProblem ? spec.makeProblem()
                         : circuits::Registry::global().makeProblem(spec.circuit);
    const std::string scope = !spec.cacheScope.empty() ? spec.cacheScope
                              : !spec.circuit.empty()  ? spec.circuit
                                                       : problem.name;

    Job job;
    job.spec = spec;
    job.strategy = opt::makeStrategy(spec.strategy, std::move(problem),
                                     spec.seed, spec.budget, spec.options);
    if (spec.checkpointEvery != 0 && !job.strategy->supportsCheckpoint())
      throw std::invalid_argument(
          "Scheduler: job \"" + spec.name + "\" requests checkpoints but "
          "strategy \"" + spec.strategy + "\" does not support them");
    if (!spec.checkpointPath.empty()) {
      // Two jobs snapshotting onto one file would silently overwrite each
      // other round after round; a restore would then load whichever job
      // wrote last (kind/problem/shape all match).
      for (const Job& other : jobs_)
        if (other.spec.checkpointPath == spec.checkpointPath)
          throw std::invalid_argument(
              "Scheduler: jobs \"" + other.spec.name + "\" and \"" +
              spec.name + "\" share checkpoint_path \"" + spec.checkpointPath +
              "\"");
    }
    // A job that turned its local memo off (e.g. pvt_search opt.cache=false,
    // the paper-accounting mode) cannot journal publishes; it simply opts
    // out of cross-job sharing rather than failing the whole scenario.
    if (shared_ != nullptr && job.strategy->engine().config().cacheEvals)
      job.strategy->engine().attachSharedCache(shared_, scope);

    job.result.name = spec.name;
    job.result.circuit = !spec.circuit.empty() ? spec.circuit : scope;
    job.result.strategy = spec.strategy;
    job.result.seed = spec.seed;
    job.result.budget = spec.budget;
    jobs_.push_back(std::move(job));
  }
}

Scheduler::~Scheduler() = default;

std::vector<JobResult> Scheduler::run() {
  if (ran_)
    throw std::logic_error("Scheduler::run: a scheduler runs exactly once");
  ran_ = true;

  common::ThreadPool pool(scenario_.threads);
  std::vector<std::size_t> runnable;
  runnable.reserve(jobs_.size());
  std::vector<std::size_t> beforeIters(jobs_.size(), 0);

  while (true) {
    // Round-robin fairness: every unfinished job, in job-index order, gets
    // the same additional slice of its own budget this round.
    runnable.clear();
    for (std::size_t i = 0; i < jobs_.size(); ++i)
      if (!jobs_[i].strategy->finished()) runnable.push_back(i);
    if (runnable.empty()) break;

    // Concurrent step phase: jobs are independent (own engine, own RNG
    // streams) and the shared cache is read-only during the round, so the
    // fan-out is free of cross-job races and outcomes are thread-count
    // invariant.
    for (const std::size_t i : runnable)
      beforeIters[i] = jobs_[i].strategy->outcome().iterations;
    pool.parallelFor(runnable.size(), [&](std::size_t r) {
      Job& job = jobs_[runnable[r]];
      job.granted = std::min(job.spec.budget, job.granted + scenario_.slice);
      job.strategy->step(job.granted);
      ++job.result.rounds;
    });

    // Barrier publish phase, in job-index order: results simulated this
    // round become visible to *later* rounds only — the shared-cache
    // determinism contract.
    for (const std::size_t i : runnable)
      jobs_[i].result.published += jobs_[i].strategy->engine().publishShared();

    // Checkpoint cadence (rounds, counted per job).
    for (const std::size_t i : runnable) {
      Job& job = jobs_[i];
      if (job.spec.checkpointEvery != 0 &&
          job.result.rounds % job.spec.checkpointEvery == 0) {
        job.strategy->saveCheckpoint(job.spec.checkpointPath);
        ++job.result.checkpoints;
      }
    }

    // Stall guard: a job already granted its full budget that neither
    // finishes nor consumes anything in a round would loop forever.
    // Strategies signal inability to proceed via finished(), so hitting
    // this means a strategy contract violation — surface it loudly rather
    // than spinning.
    for (const std::size_t i : runnable) {
      Job& job = jobs_[i];
      if (job.granted >= job.spec.budget && !job.strategy->finished() &&
          job.strategy->outcome().iterations == beforeIters[i])
        throw std::logic_error("Scheduler: job \"" + job.spec.name +
                               "\" makes no progress (strategy \"" +
                               job.spec.strategy +
                               "\" violates the step() contract)");
    }
  }

  std::vector<JobResult> results;
  results.reserve(jobs_.size());
  for (Job& job : jobs_) {
    job.result.outcome = job.strategy->outcome();
    results.push_back(job.result);
  }
  return results;
}

}  // namespace trdse::orch
