#include "orch/journal.hpp"

#include <string>
#include <type_traits>

#include "io/checkpoint.hpp"

namespace trdse::orch {

namespace {

/// Fingerprint field order — writeFingerprint and checkFingerprint must
/// mirror each other exactly; docs/ROBUSTNESS.md documents the layout.
/// `threads`, `workers`, `worker_timeout`, and `offload_chunks` are
/// deliberately absent: per-job outcomes are invariant to all of them, so
/// resuming under a different thread/process count is legal (and a useful
/// determinism test — the crash-recovery CI smoke resumes a --workers run
/// from a single-process journal and vice versa).
void writeFingerprint(io::SectionWriter& w, const Scenario& sc) {
  w.str(sc.name);
  w.u64(sc.slice);
  w.u64(sc.baseSeed);
  w.boolean(sc.sharedCache);
  w.u64(sc.cacheShards);
  w.u64(sc.faultPlan.seed);
  w.f64(sc.faultPlan.timeoutRate);
  w.f64(sc.faultPlan.nonConvergenceRate);
  w.f64(sc.faultPlan.nonFiniteRate);
  w.f64(sc.faultPlan.timeoutStallSeconds);
  w.u64(sc.retry.maxAttempts);
  w.u64(sc.retry.backoffBase);
  w.u64(sc.retry.backoffCap);
  w.f64(sc.retry.timeoutSeconds);
  w.u64(sc.journalEvery);
  w.u64(sc.jobs.size());
  for (const JobSpec& j : sc.jobs) {
    w.str(j.name);
    w.str(j.circuit);
    w.str(j.strategy);
    w.str(j.cacheScope);
    w.u64(j.seed);
    w.u64(j.budget);
    w.u64(j.maxFailures);
    w.u64(j.checkpointEvery);
    w.str(j.checkpointPath);
    w.u64(j.options.size());
    for (const auto& [k, v] : j.options) {  // std::map: sorted, stable
      w.str(k);
      w.str(v);
    }
  }
}

/// Compare one journaled field against the live scenario; fail naming it.
template <typename T>
void match(io::SectionReader& r, const std::string& field, const T& live,
           const T& journaled) {
  if (!(live == journaled)) {
    if constexpr (std::is_same_v<T, std::string>) {
      r.fail("scenario fingerprint mismatch on " + field + ": journal has \"" +
             journaled + "\", this run has \"" + live + "\"");
    } else {
      r.fail("scenario fingerprint mismatch on " + field + ": journal has " +
             std::to_string(journaled) + ", this run has " +
             std::to_string(live));
    }
  }
}

void checkFingerprint(io::SectionReader& r, const Scenario& sc) {
  match(r, "name", sc.name, r.str());
  match(r, "slice", sc.slice, static_cast<std::size_t>(r.u64()));
  match(r, "base_seed", sc.baseSeed, static_cast<std::uint64_t>(r.u64()));
  match(r, "shared_cache", sc.sharedCache, r.boolean());
  match(r, "shards", sc.cacheShards, static_cast<std::size_t>(r.u64()));
  match(r, "fault_seed", sc.faultPlan.seed,
        static_cast<std::uint64_t>(r.u64()));
  match(r, "fault_timeout", sc.faultPlan.timeoutRate, r.f64());
  match(r, "fault_nonconv", sc.faultPlan.nonConvergenceRate, r.f64());
  match(r, "fault_nonfinite", sc.faultPlan.nonFiniteRate, r.f64());
  match(r, "fault_timeout_stall", sc.faultPlan.timeoutStallSeconds, r.f64());
  match(r, "retry_attempts", sc.retry.maxAttempts,
        static_cast<std::size_t>(r.u64()));
  match(r, "retry_backoff", sc.retry.backoffBase,
        static_cast<std::size_t>(r.u64()));
  match(r, "retry_backoff_cap", sc.retry.backoffCap,
        static_cast<std::size_t>(r.u64()));
  match(r, "retry_timeout", sc.retry.timeoutSeconds, r.f64());
  match(r, "journal_every", sc.journalEvery,
        static_cast<std::size_t>(r.u64()));
  match(r, "job count", sc.jobs.size(), static_cast<std::size_t>(r.u64()));
  for (std::size_t i = 0; i < sc.jobs.size(); ++i) {
    const JobSpec& j = sc.jobs[i];
    const std::string p = "job \"" + j.name + "\" ";
    match(r, "job name", j.name, r.str());
    match(r, p + "circuit", j.circuit, r.str());
    match(r, p + "strategy", j.strategy, r.str());
    match(r, p + "cache_scope", j.cacheScope, r.str());
    match(r, p + "seed", j.seed, static_cast<std::uint64_t>(r.u64()));
    match(r, p + "budget", j.budget, static_cast<std::size_t>(r.u64()));
    match(r, p + "max_failures", j.maxFailures,
          static_cast<std::size_t>(r.u64()));
    match(r, p + "checkpoint_every", j.checkpointEvery,
          static_cast<std::size_t>(r.u64()));
    match(r, p + "checkpoint_path", j.checkpointPath, r.str());
    match(r, p + "option count", j.options.size(),
          static_cast<std::size_t>(r.u64()));
    for (const auto& [k, v] : j.options) {
      match(r, p + "option key", k, r.str());
      match(r, p + "option \"" + k + "\"", v, r.str());
    }
  }
  r.expectEnd();
}

}  // namespace

void writeJournal(const std::string& path, const Scenario& scenario,
                  const JournalState& state,
                  const eval::SharedEvalCache* shared,
                  const std::vector<std::string>& events) {
  io::CheckpointWriter w(kJournalKind);
  writeFingerprint(w.section("scenario"), scenario);
  io::SectionWriter& p = w.section("progress");
  p.u64(state.round);
  p.u64(state.jobs.size());
  for (const JournalJobState& j : state.jobs) {
    p.u64(j.granted);
    p.u64(j.rounds);
    p.u64(j.published);
    p.u64(j.checkpoints);
    p.boolean(j.quarantined);
    p.str(j.quarantineReason);
  }
  if (shared != nullptr) shared->saveState(w.section("shared_cache"));
  io::SectionWriter& jobs = w.section("jobs");
  jobs.u64(state.jobs.size());
  for (const JournalJobState& j : state.jobs) jobs.str(j.strategyBlob);
  // Informational only — worker deaths / re-dispatches of a distributed run.
  // Readers skip it, so a journal written by the DistributedScheduler remains
  // resumable by the plain Scheduler and vice versa.
  if (!events.empty()) {
    io::SectionWriter& ev = w.section("events");
    ev.u64(events.size());
    for (const std::string& e : events) ev.str(e);
  }
  w.writeFile(path);
}

JournalState readJournal(const std::string& path, const Scenario& scenario,
                         eval::SharedEvalCache* shared) {
  const io::CheckpointReader reader = io::CheckpointReader::fromFile(path);
  reader.expectKind(kJournalKind);
  {
    io::SectionReader sr = reader.section("scenario");
    checkFingerprint(sr, scenario);
  }
  JournalState state;
  io::SectionReader p = reader.section("progress");
  state.round = p.u64();
  const std::uint64_t n = p.u64();
  if (n != scenario.jobs.size())
    p.fail("progress covers " + std::to_string(n) + " jobs, scenario has " +
           std::to_string(scenario.jobs.size()));
  state.jobs.resize(n);
  for (JournalJobState& j : state.jobs) {
    j.granted = p.u64();
    j.rounds = p.u64();
    j.published = p.u64();
    j.checkpoints = p.u64();
    j.quarantined = p.boolean();
    j.quarantineReason = p.str();
    if (j.quarantined && j.quarantineReason.empty())
      p.fail("quarantined job without a reason");
    if (!j.quarantined && !j.quarantineReason.empty())
      p.fail("quarantine reason on a job that is not quarantined");
  }
  p.expectEnd();
  if (shared != nullptr) {
    io::SectionReader sr = reader.section("shared_cache");
    shared->restoreState(sr);
    sr.expectEnd();
  }
  io::SectionReader jobs = reader.section("jobs");
  const std::uint64_t m = jobs.u64();
  if (m != n)
    jobs.fail("blob count " + std::to_string(m) +
              " disagrees with progress job count " + std::to_string(n));
  for (JournalJobState& j : state.jobs) j.strategyBlob = jobs.str();
  jobs.expectEnd();
  return state;
}

}  // namespace trdse::orch
