// Write-ahead scenario journal — crash-resumable orchestration.
//
// At every round barrier (cadence Scenario::journalEvery) the Scheduler
// writes one atomic checkpoint file (container kind "orch-journal") holding
// everything a fresh process needs to continue the run bitwise:
//
//   [scenario]      fingerprint of the scheduled scenario — name, knobs,
//                   fault/retry config, and every job's resolved identity —
//                   so a journal can never silently resume a *different*
//                   scenario (mismatches fail naming the divergent field);
//   [progress]      the round counter and per-job grant/round/publish/
//                   checkpoint tallies plus quarantine flags and reasons;
//   [shared_cache]  the full SharedEvalCache contents and per-shard
//                   counters (present iff the scenario shares results);
//   [jobs]          one embedded strategy checkpoint blob per job.
//
// io::CheckpointWriter::writeFile is atomic (temp + rename + fsync), so a
// SIGKILL at any instant leaves either the previous journal or the new one —
// never a torn file. Because every piece of restored state is bitwise
// (strategy blobs, engine memos/ledgers/stats, shared-cache entries and
// counters, round tallies), a run killed and resumed from its journal
// produces byte-identical reports to the uninterrupted run.
#pragma once

#include <string>
#include <vector>

#include "eval/shared_cache.hpp"
#include "orch/scenario.hpp"

namespace trdse::orch {

/// Checkpoint-container kind tag of journal files.
inline constexpr char kJournalKind[] = "orch-journal";

/// Per-job progress snapshot carried by the journal.
struct JournalJobState {
  std::size_t granted = 0;      ///< cumulative budget target handed out
  std::size_t rounds = 0;       ///< rounds the job was stepped in
  std::size_t published = 0;    ///< shared-cache publishes so far
  std::size_t checkpoints = 0;  ///< periodic snapshots written
  bool quarantined = false;     ///< failure-isolated at a round barrier
  std::string quarantineReason; ///< deterministic reason string
  std::string strategyBlob;     ///< embedded strategy checkpoint (TDCK bytes)
};

/// Everything the journal records beyond the scenario fingerprint.
struct JournalState {
  std::size_t round = 0;  ///< rounds completed when the journal was written
  std::vector<JournalJobState> jobs;  ///< one entry per job, in job order
};

/// Atomically write the journal for `scenario` (seeds already resolved) to
/// `path`. `shared` may be null (scenario without a shared cache). `events`
/// is an optional informational log (the DistributedScheduler records worker
/// deaths and re-dispatches here); when non-empty it lands in an "events"
/// section that readers ignore for state purposes — journals with and
/// without it restore identically.
void writeJournal(const std::string& path, const Scenario& scenario,
                  const JournalState& state,
                  const eval::SharedEvalCache* shared,
                  const std::vector<std::string>& events = {});

/// Read and validate the journal at `path` against the live `scenario`
/// (fingerprint check), restore `shared` in place when non-null, and return
/// the progress + per-job blobs. Throws io::CheckpointError on a corrupt or
/// mismatched journal.
JournalState readJournal(const std::string& path, const Scenario& scenario,
                         eval::SharedEvalCache* shared);

}  // namespace trdse::orch
