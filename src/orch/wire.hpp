// Length-prefixed frame transport for the distributed orchestrator.
//
// The coordinator and its forked workers (orch/distributed.hpp) exchange
// typed messages over a socketpair. Rather than inventing a second binary
// format, every message body *is* one io::CheckpointWriter container — the
// same magic / format version / FNV-1a body checksum / named-section layout
// every durable artifact in the repo already uses — so a frame inherits the
// container's validation for free: bad magic, a format version from the
// future, truncation, and checksum mismatches all surface as typed errors,
// never as silently misread state.
//
//   frame := [u64 little-endian body length] [TDCK container bytes]
//
// The container `kind` string is the message kind (the `wire/...` constants
// below); every message additionally carries a "wire" section holding the
// protocol version, so a coordinator can reject a message set newer than it
// speaks. Transport-level problems — a peer that closed mid-frame, a length
// prefix past the sanity cap, an unknown message kind — throw WireError;
// payload-level corruption throws io::CheckpointError. Both are fail-loud:
// no partial frame is ever delivered.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "eval/eval_cache.hpp"
#include "eval/eval_engine.hpp"
#include "io/checkpoint.hpp"
#include "opt/strategy.hpp"
#include "orch/job_set.hpp"

namespace trdse::orch::wire {

/// Transport-level failure: peer closed the channel (possibly mid-frame), a
/// length prefix exceeded the sanity cap, an I/O syscall failed, or a frame
/// carried an unknown message kind / future protocol version.
class WireError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Version of the message set. Bump when a message's payload layout changes;
/// a peer receiving a newer version fails loudly instead of misreading.
/// Version history:
///   1 — PR 8 coordinator/worker message set.
///   2 — PR 9 serve/* message kinds (sizing-as-a-service daemon). Payloads of
///       version-1 messages are unchanged, so a v2 peer speaks to a v1 one.
inline constexpr std::uint32_t kWireVersion = 2;

/// Largest frame body accepted — shared by the transport (a corrupted length
/// prefix must fail the channel, not drive a multi-gigabyte allocation) and
/// by the serve daemon's admission check (a submission this large could never
/// be answered over the same channel; see serve::DaemonConfig).
inline constexpr std::uint64_t kMaxFrameBytes = 1ull << 30;

// Message kinds (checkpoint-container `kind` strings) of the distributed
// coordinator/worker protocol.
inline constexpr char kMsgRunRound[] = "wire/run-round";
inline constexpr char kMsgRoundResult[] = "wire/round-result";
inline constexpr char kMsgBarrier[] = "wire/barrier";
inline constexpr char kMsgRestore[] = "wire/restore";
inline constexpr char kMsgRestoreAck[] = "wire/restore-ack";
inline constexpr char kMsgHarvest[] = "wire/harvest";
inline constexpr char kMsgHarvestResult[] = "wire/harvest-result";
inline constexpr char kMsgChunkRequest[] = "wire/chunk-request";
inline constexpr char kMsgChunkExec[] = "wire/chunk-exec";
inline constexpr char kMsgChunkReply[] = "wire/chunk-reply";
inline constexpr char kMsgShutdown[] = "wire/shutdown";

// Message kinds of the sizing service (serve::Daemon <-> serve::Client;
// protocol reference in docs/SERVICE.md).
inline constexpr char kMsgSubmit[] = "serve/submit";
inline constexpr char kMsgAccepted[] = "serve/accepted";
inline constexpr char kMsgRejected[] = "serve/rejected";
inline constexpr char kMsgStatus[] = "serve/status";
inline constexpr char kMsgStatusReply[] = "serve/status-reply";
inline constexpr char kMsgStream[] = "serve/stream";
inline constexpr char kMsgProgress[] = "serve/progress";
inline constexpr char kMsgResult[] = "serve/result";
inline constexpr char kMsgCancel[] = "serve/cancel";
inline constexpr char kMsgServeShutdown[] = "serve/shutdown";
inline constexpr char kMsgOk[] = "serve/ok";

/// Whether `kind` is a message this build speaks.
bool knownMessageKind(std::string_view kind);

/// Start a message: a CheckpointWriter of the given kind whose "wire"
/// section already records kWireVersion.
io::CheckpointWriter makeMessage(const std::string& kind);

/// Encode a finished message as one frame (length prefix + container bytes).
std::string encodeFrame(const io::CheckpointWriter& msg);

/// Best-effort extraction of the container `kind` string from a (possibly
/// partial) frame body prefix — no checksum or section validation, just the
/// fixed header walk. Returns "" when the prefix is too short or not a
/// container. FrameChannel uses it so oversized and truncated frames can be
/// reported by message kind, not only by size.
std::string peekFrameKind(std::string_view bodyPrefix);

/// Validate a frame body (the bytes after the length prefix): container
/// structure (magic/version/checksum via io::CheckpointReader), message kind,
/// and wire protocol version. `source` labels error messages.
io::CheckpointReader decodeFrame(const std::string& body,
                                 const std::string& source);

/// Blocking frame transport over one file descriptor (socketpair end).
/// Move-only; closes the descriptor on destruction.
class FrameChannel {
 public:
  FrameChannel() = default;
  /// Take ownership of `fd` (a connected SOCK_STREAM socket).
  explicit FrameChannel(int fd) : fd_(fd) {}
  ~FrameChannel() { close(); }

  FrameChannel(FrameChannel&& other) noexcept
      : fd_(other.fd_), rxOffset_(other.rxOffset_) {
    other.fd_ = -1;
    other.rxOffset_ = 0;
  }
  FrameChannel& operator=(FrameChannel&& other) noexcept {
    if (this != &other) {
      close();
      fd_ = other.fd_;
      rxOffset_ = other.rxOffset_;
      other.fd_ = -1;
      other.rxOffset_ = 0;
    }
    return *this;
  }
  FrameChannel(const FrameChannel&) = delete;
  FrameChannel& operator=(const FrameChannel&) = delete;

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }
  void close();

  /// Write one complete frame; throws WireError when the peer is gone
  /// (EPIPE/ECONNRESET — a dead worker must be a typed event, not SIGPIPE).
  void send(const io::CheckpointWriter& msg);
  /// Read one complete frame and validate it (decodeFrame). Throws WireError
  /// on EOF — clean or mid-frame — and on I/O errors; `source` labels errors.
  /// Oversized and truncated frames are reported with the offending message
  /// kind (best effort, via peekFrameKind) and the byte offset of the frame
  /// in the receive stream, so a wire post-mortem can say *which* message
  /// went bad, not just how large it claimed to be.
  io::CheckpointReader recv(const std::string& source);

  /// Total bytes consumed from the receive stream so far (frame prefixes +
  /// bodies of successfully and unsuccessfully read frames).
  std::uint64_t rxOffset() const { return rxOffset_; }

 private:
  int fd_ = -1;
  std::uint64_t rxOffset_ = 0;  ///< receive-stream bytes consumed
};

// ---- Payload codecs ------------------------------------------------------
//
// Shared by the coordinator and worker sides of orch/distributed.cpp (and by
// the wire fuzz tests / micro-bench, which build representative frames).
// Every writeX/readX pair round-trips bitwise; readers throw
// io::CheckpointError on malformed fields.

/// One (key, result) pair of a round's shared-cache publish list.
struct PublishEntry {
  eval::EvalKey key;
  core::EvalResult result;
};

/// Per-job report carried by a round-result message.
struct JobRoundReport {
  std::size_t jobIndex = 0;
  std::string stepError;  ///< empty = step() returned; else the what() text
  bool finished = false;  ///< Strategy::finished() after the step
  std::size_t iterations = 0;  ///< outcome().iterations after the step
  eval::EvalStats stats;
  eval::FailureRecord firstFailure;
  std::vector<PublishEntry> publishes;
  /// Post-step checkpoint blob (empty when the strategy cannot checkpoint —
  /// such a job is not recoverable across a worker death).
  std::string strategyBlob;
};

/// Mirror-probe tallies of one shard since the previous round-result.
struct ShardDelta {
  std::size_t shard = 0;
  std::size_t hits = 0;
  std::size_t misses = 0;
};

/// Everything a strategy outcome + engine accounting harvest ships.
struct JobHarvest {
  std::size_t jobIndex = 0;
  opt::StrategyOutcome outcome;
  pvt::EdaLedger engineLedger;  ///< live engine ledger (quarantine override)
  eval::EvalStats engineStats;  ///< live engine stats (quarantine override)
};

void writeEvalKey(io::SectionWriter& w, const eval::EvalKey& key);
eval::EvalKey readEvalKey(io::SectionReader& r);

void writeEvalStats(io::SectionWriter& w, const eval::EvalStats& s);
eval::EvalStats readEvalStats(io::SectionReader& r);

void writeFailureRecord(io::SectionWriter& w, const eval::FailureRecord& f);
eval::FailureRecord readFailureRecord(io::SectionReader& r);

void writeOutcome(io::SectionWriter& w, const opt::StrategyOutcome& o);
opt::StrategyOutcome readOutcome(io::SectionReader& r);

void writePublishes(io::SectionWriter& w,
                    const std::vector<PublishEntry>& entries);
std::vector<PublishEntry> readPublishes(io::SectionReader& r);

void writeJobRoundReport(io::SectionWriter& w, const JobRoundReport& rep);
JobRoundReport readJobRoundReport(io::SectionReader& r);

void writeShardDeltas(io::SectionWriter& w,
                      const std::vector<ShardDelta>& deltas);
std::vector<ShardDelta> readShardDeltas(io::SectionReader& r);

void writeJobHarvest(io::SectionWriter& w, const JobHarvest& h);
JobHarvest readJobHarvest(io::SectionReader& r);

/// Full per-job report row (the serve daemon ships these to clients as the
/// final result table; the daemon manifest persists them for completed jobs).
void writeJobResult(io::SectionWriter& w, const JobResult& r);
JobResult readJobResult(io::SectionReader& r);

}  // namespace trdse::orch::wire
