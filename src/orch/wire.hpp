// Length-prefixed frame transport for the distributed orchestrator.
//
// The coordinator and its forked workers (orch/distributed.hpp) exchange
// typed messages over a socketpair. Rather than inventing a second binary
// format, every message body *is* one io::CheckpointWriter container — the
// same magic / format version / FNV-1a body checksum / named-section layout
// every durable artifact in the repo already uses — so a frame inherits the
// container's validation for free: bad magic, a format version from the
// future, truncation, and checksum mismatches all surface as typed errors,
// never as silently misread state.
//
//   frame := [u64 little-endian body length] [TDCK container bytes]
//
// The container `kind` string is the message kind (the `wire/...` constants
// below); every message additionally carries a "wire" section holding the
// protocol version, so a coordinator can reject a message set newer than it
// speaks. Transport-level problems — a peer that closed mid-frame, a length
// prefix past the sanity cap, an unknown message kind — throw WireError;
// payload-level corruption throws io::CheckpointError. Both are fail-loud:
// no partial frame is ever delivered.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "eval/eval_cache.hpp"
#include "eval/eval_engine.hpp"
#include "io/checkpoint.hpp"
#include "opt/strategy.hpp"

namespace trdse::orch::wire {

/// Transport-level failure: peer closed the channel (possibly mid-frame), a
/// length prefix exceeded the sanity cap, an I/O syscall failed, or a frame
/// carried an unknown message kind / future protocol version.
class WireError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Version of the message set. Bump when a message's payload layout changes;
/// a peer receiving a newer version fails loudly instead of misreading.
inline constexpr std::uint32_t kWireVersion = 1;

/// Largest frame body accepted. A corrupted length prefix must fail the
/// channel, not drive a multi-gigabyte allocation.
inline constexpr std::uint64_t kMaxFrameBytes = 1ull << 30;

// Message kinds (checkpoint-container `kind` strings).
inline constexpr char kMsgRunRound[] = "wire/run-round";
inline constexpr char kMsgRoundResult[] = "wire/round-result";
inline constexpr char kMsgBarrier[] = "wire/barrier";
inline constexpr char kMsgRestore[] = "wire/restore";
inline constexpr char kMsgRestoreAck[] = "wire/restore-ack";
inline constexpr char kMsgHarvest[] = "wire/harvest";
inline constexpr char kMsgHarvestResult[] = "wire/harvest-result";
inline constexpr char kMsgChunkRequest[] = "wire/chunk-request";
inline constexpr char kMsgChunkExec[] = "wire/chunk-exec";
inline constexpr char kMsgChunkReply[] = "wire/chunk-reply";
inline constexpr char kMsgShutdown[] = "wire/shutdown";

/// Whether `kind` is a message this build speaks.
bool knownMessageKind(std::string_view kind);

/// Start a message: a CheckpointWriter of the given kind whose "wire"
/// section already records kWireVersion.
io::CheckpointWriter makeMessage(const std::string& kind);

/// Encode a finished message as one frame (length prefix + container bytes).
std::string encodeFrame(const io::CheckpointWriter& msg);

/// Validate a frame body (the bytes after the length prefix): container
/// structure (magic/version/checksum via io::CheckpointReader), message kind,
/// and wire protocol version. `source` labels error messages.
io::CheckpointReader decodeFrame(const std::string& body,
                                 const std::string& source);

/// Blocking frame transport over one file descriptor (socketpair end).
/// Move-only; closes the descriptor on destruction.
class FrameChannel {
 public:
  FrameChannel() = default;
  /// Take ownership of `fd` (a connected SOCK_STREAM socket).
  explicit FrameChannel(int fd) : fd_(fd) {}
  ~FrameChannel() { close(); }

  FrameChannel(FrameChannel&& other) noexcept : fd_(other.fd_) {
    other.fd_ = -1;
  }
  FrameChannel& operator=(FrameChannel&& other) noexcept {
    if (this != &other) {
      close();
      fd_ = other.fd_;
      other.fd_ = -1;
    }
    return *this;
  }
  FrameChannel(const FrameChannel&) = delete;
  FrameChannel& operator=(const FrameChannel&) = delete;

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }
  void close();

  /// Write one complete frame; throws WireError when the peer is gone
  /// (EPIPE/ECONNRESET — a dead worker must be a typed event, not SIGPIPE).
  void send(const io::CheckpointWriter& msg);
  /// Read one complete frame and validate it (decodeFrame). Throws WireError
  /// on EOF — clean or mid-frame — and on I/O errors; `source` labels errors.
  io::CheckpointReader recv(const std::string& source);

 private:
  int fd_ = -1;
};

// ---- Payload codecs ------------------------------------------------------
//
// Shared by the coordinator and worker sides of orch/distributed.cpp (and by
// the wire fuzz tests / micro-bench, which build representative frames).
// Every writeX/readX pair round-trips bitwise; readers throw
// io::CheckpointError on malformed fields.

/// One (key, result) pair of a round's shared-cache publish list.
struct PublishEntry {
  eval::EvalKey key;
  core::EvalResult result;
};

/// Per-job report carried by a round-result message.
struct JobRoundReport {
  std::size_t jobIndex = 0;
  std::string stepError;  ///< empty = step() returned; else the what() text
  bool finished = false;  ///< Strategy::finished() after the step
  std::size_t iterations = 0;  ///< outcome().iterations after the step
  eval::EvalStats stats;
  eval::FailureRecord firstFailure;
  std::vector<PublishEntry> publishes;
  /// Post-step checkpoint blob (empty when the strategy cannot checkpoint —
  /// such a job is not recoverable across a worker death).
  std::string strategyBlob;
};

/// Mirror-probe tallies of one shard since the previous round-result.
struct ShardDelta {
  std::size_t shard = 0;
  std::size_t hits = 0;
  std::size_t misses = 0;
};

/// Everything a strategy outcome + engine accounting harvest ships.
struct JobHarvest {
  std::size_t jobIndex = 0;
  opt::StrategyOutcome outcome;
  pvt::EdaLedger engineLedger;  ///< live engine ledger (quarantine override)
  eval::EvalStats engineStats;  ///< live engine stats (quarantine override)
};

void writeEvalKey(io::SectionWriter& w, const eval::EvalKey& key);
eval::EvalKey readEvalKey(io::SectionReader& r);

void writeEvalStats(io::SectionWriter& w, const eval::EvalStats& s);
eval::EvalStats readEvalStats(io::SectionReader& r);

void writeFailureRecord(io::SectionWriter& w, const eval::FailureRecord& f);
eval::FailureRecord readFailureRecord(io::SectionReader& r);

void writeOutcome(io::SectionWriter& w, const opt::StrategyOutcome& o);
opt::StrategyOutcome readOutcome(io::SectionReader& r);

void writePublishes(io::SectionWriter& w,
                    const std::vector<PublishEntry>& entries);
std::vector<PublishEntry> readPublishes(io::SectionReader& r);

void writeJobRoundReport(io::SectionWriter& w, const JobRoundReport& rep);
JobRoundReport readJobRoundReport(io::SectionReader& r);

void writeShardDeltas(io::SectionWriter& w,
                      const std::vector<ShardDelta>& deltas);
std::vector<ShardDelta> readShardDeltas(io::SectionReader& r);

void writeJobHarvest(io::SectionWriter& w, const JobHarvest& h);
JobHarvest readJobHarvest(io::SectionReader& r);

}  // namespace trdse::orch::wire
