// Concurrent multi-job orchestrator — many searches, one machine, one meter.
//
// The ROADMAP north-star is a production system serving many sizing
// workloads at once (DNN-Opt and AutoCkt both frame sizing as exactly this
// multi-strategy, multi-task batch workload). The Scheduler multiplexes N
// JobSpecs over a shared common::ThreadPool in *rounds*: every round, each
// unfinished job is granted `slice` more EDA blocks of its own budget and
// stepped concurrently (strategies are resumable, see opt/strategy.hpp);
// jobs on the same circuit share simulation results through one
// eval::SharedEvalCache.
//
// Determinism contract (asserted in tests/orch_test.cpp, documented in
// docs/ORCHESTRATION.md):
//   * Fair slicing is round-robin by job index with a fixed quantum, so the
//     budget-grant sequence of every job is a function of the scenario
//     alone — never of thread scheduling.
//   * Jobs only *read* the shared cache while a round runs; results
//     simulated during a round are journaled per engine and published at
//     the round barrier, in job-index order (EvalEngine::publishShared).
//     A lookup therefore sees exactly the entries published by earlier
//     rounds, and every per-job outcome, ledger, and hit/miss counter is
//     bitwise identical for any `threads` value.
//   * Per-job RNG streams are independent: explicit seeds are honored and
//     absent seeds derive from (baseSeed, job index) via common::perTaskSeed.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "eval/shared_cache.hpp"
#include "opt/strategy.hpp"
#include "orch/scenario.hpp"

namespace trdse::orch {

/// One job's report row after (or during) a run.
struct JobResult {
  std::string name;          ///< JobSpec::name
  std::string circuit;       ///< circuit label
  std::string strategy;      ///< strategy name
  std::uint64_t seed = 0;    ///< effective seed (explicit or derived)
  std::size_t budget = 0;    ///< total block allowance
  std::size_t rounds = 0;    ///< scheduling rounds the job was stepped in
  std::size_t published = 0; ///< results this job published to the shared cache
  std::size_t checkpoints = 0;  ///< periodic snapshots written
  opt::StrategyOutcome outcome; ///< the common comparison row
};

/// Round-based fair-slicing orchestrator over resumable strategies.
class Scheduler {
 public:
  /// Build every job's problem (circuits::Registry or JobSpec::makeProblem)
  /// and strategy up front; throws std::invalid_argument on unknown
  /// circuit/strategy names, bad options, or a checkpoint cadence on a
  /// strategy that cannot checkpoint.
  explicit Scheduler(Scenario scenario);

  ~Scheduler();
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Run every job to completion (solved, budget exhausted, or stalled) and
  /// return one row per job, in job order. Callable once.
  std::vector<JobResult> run();

  /// The scenario as scheduled (derived seeds filled in).
  const Scenario& scenario() const { return scenario_; }
  /// The cross-job cache (nullptr when the scenario disables it).
  const eval::SharedEvalCache* sharedCache() const { return shared_.get(); }
  /// Strategy of job `i` (post-run inspection; engines stay alive with the
  /// scheduler).
  const opt::Strategy& strategy(std::size_t i) const { return *jobs_[i].strategy; }

 private:
  struct Job {
    JobSpec spec;
    std::unique_ptr<opt::Strategy> strategy;
    std::size_t granted = 0;  ///< cumulative budget target handed out so far
    JobResult result;
  };

  Scenario scenario_;
  std::shared_ptr<eval::SharedEvalCache> shared_;
  std::vector<Job> jobs_;
  bool ran_ = false;
};

}  // namespace trdse::orch
