// Concurrent multi-job orchestrator — many searches, one machine, one meter.
//
// The ROADMAP north-star is a production system serving many sizing
// workloads at once (DNN-Opt and AutoCkt both frame sizing as exactly this
// multi-strategy, multi-task batch workload). The Scheduler multiplexes N
// JobSpecs over a shared common::ThreadPool in *rounds*: every round, each
// unfinished job is granted `slice` more EDA blocks of its own budget and
// stepped concurrently (strategies are resumable, see opt/strategy.hpp);
// jobs on the same circuit share simulation results through one
// eval::SharedEvalCache.
//
// Determinism contract (asserted in tests/orch_test.cpp, documented in
// docs/ORCHESTRATION.md):
//   * Fair slicing is round-robin by job index with a fixed quantum, so the
//     budget-grant sequence of every job is a function of the scenario
//     alone — never of thread scheduling.
//   * Jobs only *read* the shared cache while a round runs; results
//     simulated during a round are journaled per engine and published at
//     the round barrier, in job-index order (EvalEngine::publishShared).
//     A lookup therefore sees exactly the entries published by earlier
//     rounds, and every per-job outcome, ledger, and hit/miss counter is
//     bitwise identical for any `threads` value.
//   * Per-job RNG streams are independent: explicit seeds are honored and
//     absent seeds derive from (baseSeed, job index) via common::perTaskSeed.
//
// Fault isolation (docs/ROBUSTNESS.md): a job whose step() throws, or whose
// engine exceeds its max_failures allowance of retry-exhausted evaluations,
// is *quarantined* at the round barrier — excluded from further rounds with
// a deterministic reason recorded in its JobResult — while every other job
// runs to completion. Quarantine decisions are made in job order from
// deterministic engine state, so they are bitwise identical for any thread
// count. With Scenario::journalPath set, the scheduler also write-ahead
// journals the whole run at round barriers (orch/journal.hpp), making a
// SIGKILL'd run resumable to byte-identical results.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "eval/shared_cache.hpp"
#include "opt/strategy.hpp"
#include "orch/job_set.hpp"
#include "orch/scenario.hpp"

namespace trdse::orch {

/// What one scheduling round did — handed to the round hook at each barrier
/// (after publish/quarantine/journal, before the next round starts). The
/// serve daemon streams these to subscribed clients as progress events.
struct RoundObservation {
  std::size_t round = 0;  ///< 1-based round number just completed
  struct JobProgress {
    std::size_t index = 0;       ///< job index in the scenario
    std::size_t granted = 0;     ///< cumulative budget handed out so far
    std::size_t iterations = 0;  ///< strategy iterations consumed in total
    bool finished = false;       ///< strategy reports it is done
    bool quarantined = false;    ///< failure-isolated at this barrier or earlier
    bool solved = false;         ///< current outcome meets all specs
    std::size_t sharedHits = 0;  ///< cumulative cross-job cache hits
    std::size_t simulated = 0;   ///< cumulative freshly simulated blocks
    double bestValue = 0.0;      ///< best objective value so far
  };
  /// Jobs that were runnable this round, in job-index order.
  std::vector<JobProgress> jobs;
};

/// Round-based fair-slicing orchestrator over resumable strategies.
class Scheduler {
 public:
  /// Build every job's problem (circuits::Registry or JobSpec::makeProblem)
  /// and strategy up front; throws std::invalid_argument on unknown
  /// circuit/strategy names, bad options, or a checkpoint cadence on a
  /// strategy that cannot checkpoint.
  explicit Scheduler(Scenario scenario);

  /// Same, but attach every job to `externalCache` instead of constructing a
  /// fresh SharedEvalCache (serve daemon: the cache outlives any one
  /// scenario). Ignored when the scenario disables the shared cache.
  Scheduler(Scenario scenario,
            std::shared_ptr<eval::SharedEvalCache> externalCache);

  ~Scheduler();
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Run every job to completion (solved, budget exhausted, quarantined, or
  /// stalled) and return one row per job, in job order. `maxRounds` bounds
  /// how many scheduling rounds this call advances (0 = until done) — the
  /// crash-recovery tests use it to pause a run at a journaled barrier.
  /// Calling again after a bounded call continues the run; calling after the
  /// run completed throws std::logic_error.
  std::vector<JobResult> run(std::size_t maxRounds = 0);

  /// Restore a run journaled by a previous process (Scenario::journalPath;
  /// see orch/journal.hpp): validates the journal's scenario fingerprint,
  /// restores every job's strategy, progress, and quarantine state plus the
  /// shared cache, so the next run() continues bitwise where the journal was
  /// written. Must be called before the first run() of this scheduler;
  /// throws std::logic_error otherwise, io::CheckpointError on a corrupt or
  /// mismatched journal.
  void resume(const std::string& journalPath);

  /// Turn on write-ahead journaling after construction (serve daemon: the
  /// journal decision is per-submission, made after buildJobs validation).
  /// Throws std::invalid_argument when any job's strategy cannot checkpoint
  /// (same condition buildJobs enforces for Scenario::journalPath), and
  /// std::logic_error after the first run()/resume().
  void enableJournal(const std::string& journalPath);

  /// Install a hook invoked at every round barrier, after the round's
  /// publish/quarantine/journal transitions are final. The hook runs on the
  /// scheduler's calling thread from deterministic job-order state, so
  /// whatever it observes is bitwise identical for any thread count.
  void setRoundHook(std::function<void(const RoundObservation&)> hook) {
    roundHook_ = std::move(hook);
  }

  /// Whether every job has completed or been quarantined.
  bool completed() const { return completed_; }

  /// The scenario as scheduled (derived seeds filled in).
  const Scenario& scenario() const { return scenario_; }
  /// The cross-job cache (nullptr when the scenario disables it).
  const eval::SharedEvalCache* sharedCache() const { return shared_.get(); }
  /// Strategy of job `i` (post-run inspection; engines stay alive with the
  /// scheduler).
  const opt::Strategy& strategy(std::size_t i) const { return *jobs_[i].strategy; }

 private:
  /// Jobs are constructed by orch::buildJobs — the pass shared with
  /// DistributedScheduler so both agree bitwise on seeds, scopes, engine
  /// wiring, and validation errors.
  using Job = BuiltJob;

  /// Quarantine `job` with a deterministic reason (idempotent guard in the
  /// caller); the job leaves the runnable set from the next round on.
  static void quarantine(Job& job, std::string reason);
  /// Write the journal file (Scenario::journalPath must be set).
  void writeJournalFile() const;
  /// One JobResult row per job from current strategy/engine state.
  std::vector<JobResult> harvest();

  Scenario scenario_;
  std::shared_ptr<eval::SharedEvalCache> shared_;
  std::vector<Job> jobs_;
  std::function<void(const RoundObservation&)> roundHook_;
  std::size_t round_ = 0;    ///< scheduling rounds completed so far
  bool started_ = false;     ///< a run() or resume() happened
  bool completed_ = false;   ///< no runnable jobs remain
};

}  // namespace trdse::orch
