// The sizing daemon — scenarios as submissions, simulation as a service.
//
// serve::Daemon is the tentpole of the service surface (docs/SERVICE.md): a
// single-threaded service loop that listens on a Unix-domain socket, admits
// scenario submissions (serve/submit frames) into a multi-tenant queue, and
// advances them through ordinary orch::Scheduler rounds — one round of one
// submission per tick, rotating fairly across tenants — while streaming
// per-round progress and the final report to subscribed clients.
//
// Three properties carry over from the rest of the repo and are the design
// constraints everything here serves:
//
//  * Determinism. A submission's result table is a pure function of its
//    scenario text (plus the cache it was admitted against): schedulers run
//    in-process with the scenario's own threads/slice knobs, the daemon's
//    global SharedEvalCache is attached through the same buildJobs pass the
//    CLI uses, and reported cache counters are deltas against the admission
//    snapshot — so a submission against a *fresh* daemon renders byte-
//    identical to `trdse run` of the same file.
//
//  * Durability. All service state lives in three kinds of files under
//    DaemonConfig::stateDir, each written atomically at deterministic
//    points: per-submission write-ahead journals (orch/journal, at every
//    round barrier, for submissions whose strategies can checkpoint), the
//    `serve-cache` container (serve/cache_store, after every advanced
//    round), and the `serve-manifest` container (submission registry).
//    Order matters: journal first (inside the scheduler's barrier), cache
//    second, manifest last — a SIGKILL between any two writes loses at most
//    the tail write, never consistency, and a journaled submission resumes
//    bitwise after a restart (mid-round kills lose only the unfinished
//    round's work).
//
//  * Bounded growth. The cache is evicted by whole least-recently-used
//    scopes against DaemonConfig::cacheBudgetBytes at completion barriers,
//    never touching scopes of in-flight submissions.
//
// The daemon is single-threaded by design: scheduler rounds already carry
// the intra-round parallelism (Scenario::threads), and serializing
// admission/rounds/persistence at the tick level is what makes every
// durability point a consistent barrier.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "eval/shared_cache.hpp"
#include "orch/scheduler.hpp"
#include "orch/wire.hpp"
#include "serve/cache_store.hpp"
#include "serve/client.hpp"

namespace trdse::serve {

/// Daemon knobs (all paths are created/overwritten as needed).
struct DaemonConfig {
  /// Unix-domain socket to listen on; a stale file is unlinked at bind.
  std::string socketPath;
  /// Directory for the cache/manifest/journal files (created if absent).
  std::string stateDir;
  /// Stripes of the global SharedEvalCache. Must match the persisted cache
  /// across restarts (restore rejects a geometry change) — and must match a
  /// scenario's `shards` for submit-vs-run byte identity of shard lines.
  std::size_t cacheShards = 16;
  /// Evict least-recently-used scopes past this estimated size (0 = never).
  std::uint64_t cacheBudgetBytes = 256ull << 20;
  /// Largest scenario text accepted by admission. The transport already
  /// refuses frames over wire::kMaxFrameBytes (the shared cap — one
  /// constant, two enforcement points); this knob lets an operator set a
  /// tighter service-level limit.
  std::uint64_t maxSubmissionBytes = orch::wire::kMaxFrameBytes;
  /// listen() backlog.
  int backlog = 16;
};

/// The sizing service. Construction binds the socket and recovers persisted
/// state; destruction closes connections without flushing (all durable state
/// was already written at barriers — destroying a live daemon is the moral
/// equivalent of SIGKILL, which the recovery tests lean on).
class Daemon {
 public:
  /// Bind + listen + recover (cache file, manifest, in-flight journals).
  /// Throws wire::WireError on socket failures, io::CheckpointError on
  /// corrupt state files.
  explicit Daemon(DaemonConfig config);
  ~Daemon();

  Daemon(const Daemon&) = delete;
  Daemon& operator=(const Daemon&) = delete;

  /// One service iteration: poll for connections/frames (up to
  /// `pollTimeoutMs` when idle), dispatch every readable request, then
  /// advance the fair-share pick of the active submissions by one scheduler
  /// round and persist. Returns whether anything happened (a frame handled
  /// or a round run) — callers can back off when false.
  bool tick(int pollTimeoutMs = 0);

  /// tick() until a serve/shutdown request arrives (blocking poll while
  /// idle). In-flight journaled submissions keep their journals and resume
  /// on the next start.
  void runUntilShutdown();

  bool shutdownRequested() const { return shutdownRequested_; }
  /// Any submission queued or running.
  bool busy() const;
  /// Submissions known (all states), in admission order. (Status-row
  /// introspection for tests; clients use Client::status.)
  std::vector<JobStatus> statusRows() const;
  const eval::SharedEvalCache& cache() const { return *cache_; }
  const DaemonConfig& config() const { return config_; }

 private:
  /// One admitted scenario and its lifecycle state.
  struct Submission {
    std::uint64_t id = 0;
    std::string tenant;
    std::string source;        ///< parse-error label from the client
    std::string scenarioText;  ///< verbatim submitted text (rebuilds runs)
    bool wantJournal = true;
    enum class State : std::uint8_t {
      kQueued = 0,
      kRunning = 1,
      kCompleted = 2,
      kFailed = 3,
      kCancelled = 4,
    };
    State state = State::kQueued;
    bool journaled = false;     ///< write-ahead journal granted
    bool usesGlobalCache = false;
    std::string scenarioName;
    std::size_t jobsTotal = 0;
    std::size_t roundsCompleted = 0;
    /// Global-cache per-shard counters at admission — the report baseline.
    std::vector<eval::SharedEvalCache::ShardCounters> baseline;
    /// Cache scopes its jobs use (LRU touches, eviction pinning).
    std::vector<std::string> scopes;
    // Live state (queued/running only).
    std::unique_ptr<orch::Scheduler> sched;
    bool resumePending = false;  ///< recovered journal awaits resume()
    orch::RoundObservation lastObs;
    bool haveObs = false;
    // Terminal state.
    std::string report;       ///< rendered summary (completed)
    bool quarantined = false;
    std::vector<orch::JobResult> rows;
    std::string error;        ///< failure reason (failed)
  };

  struct Connection {
    orch::wire::FrameChannel channel;
    std::uint64_t streamingId = 0;  ///< subscribed submission (0 = none)
  };

  std::string journalPathFor(std::uint64_t id) const;
  std::string cacheFilePath() const;
  std::string manifestPath() const;

  /// Parse + force service policy (workers=0, daemon-owned journal,
  /// journalCache off) + build the scheduler attached to the global cache.
  /// Throws std::invalid_argument on bad scenario text.
  void buildScheduler(Submission& sub);

  // Request handlers (each replies on `conn`).
  void handleFrame(Connection& conn, io::CheckpointReader& frame);
  void handleSubmit(Connection& conn, io::CheckpointReader& frame);
  void handleStatus(Connection& conn, io::CheckpointReader& frame);
  void handleStream(Connection& conn, io::CheckpointReader& frame);
  void handleCancel(Connection& conn, io::CheckpointReader& frame);

  void reject(Connection& conn, const std::string& reason);
  void sendOk(Connection& conn);
  /// Send the submission's progress/result to every subscriber; a dead
  /// subscriber is dropped, never fatal.
  void notifyProgress(const Submission& sub);
  void notifyTerminal(Submission& sub);

  JobStatus statusRowFor(const Submission& sub) const;
  ProgressEvent progressEventFor(const Submission& sub) const;
  FinalResult finalResultFor(const Submission& sub) const;

  /// Two-level fair pick: tenants in first-admission order rotate round-
  /// robin (continuing after lastServedTenant_); within a tenant,
  /// submissions run in admission order. Returns nullptr when idle.
  Submission* pickNext();
  /// Advance `sub` one scheduler round; on completion render its report,
  /// drop its scheduler, enforce the cache budget, and notify subscribers.
  void advance(Submission& sub);
  void finish(Submission& sub, std::vector<orch::JobResult> rows);
  void fail(Submission& sub, const std::string& error);

  void persistCache() const;
  void persistManifest() const;
  void recover();

  DaemonConfig config_;
  int listenFd_ = -1;
  std::shared_ptr<eval::SharedEvalCache> cache_;
  ScopeLru lru_;
  std::vector<std::unique_ptr<Submission>> submissions_;
  std::vector<Connection> connections_;
  std::uint64_t nextId_ = 1;
  std::string lastServedTenant_;
  bool shutdownRequested_ = false;
};

}  // namespace trdse::serve
