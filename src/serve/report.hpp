// The one run-report renderer — `trdse run` and the serve daemon must emit
// byte-identical summaries.
//
// The CI golden contract (scenarios/*.expected) says a scenario's stdout is a
// pure function of the scenario file: identical across --threads/--workers,
// across SIGKILL + resume, and — since PR 9 — across *transports*: a
// `trdse submit` of a scenario against a fresh daemon streams exactly the
// bytes `trdse run` would print. That only stays true if there is exactly one
// piece of code that turns results into text, so both paths feed a ReportInput
// through renderReport() instead of keeping two printf stacks in sync.
//
// The daemon reports its global cache's counters as *deltas* against the
// snapshot taken at admission (serve::Daemon), so a submission on a fresh
// daemon renders the same shard lines a standalone run would, while a warmed
// daemon's history stays out of the table.
#pragma once

#include <string>
#include <vector>

#include "orch/job_set.hpp"

namespace trdse::serve {

/// One `# shard NN:` line's worth of counters (absolute for `trdse run`,
/// admission-baseline deltas for the daemon).
struct ShardLine {
  std::size_t entries = 0;
  std::size_t hits = 0;
  std::size_t misses = 0;
  std::size_t inserts = 0;
};

/// Everything the summary renders. Fill from a Scheduler/DistributedScheduler
/// (trdse run) or from a completed daemon submission (serve::Daemon).
struct ReportInput {
  std::string scenarioName;
  std::size_t jobCount = 0;
  std::size_t slice = 0;
  bool sharedCacheOn = false;
  std::vector<orch::JobResult> results;  ///< one row per job, job order
  /// Whether to render the cache summary + per-shard lines (a scheduler with
  /// the shared cache disabled renders neither).
  bool haveCache = false;
  std::vector<ShardLine> shards;
  /// Comma-joined job names per worker (distributed runs only; empty vector =
  /// no `# worker` lines — the daemon and in-process runs).
  std::vector<std::string> workerJobs;
};

/// Render the full deterministic summary: scenario header, the Table I/III
/// row per job, cache totals + per-shard breakdown, worker attribution, and
/// the `# failures` / `# quarantined` trailer lines. Formats are frozen —
/// scenarios/*.expected diff against these bytes.
std::string renderReport(const ReportInput& in);

/// Whether any row was quarantined (exit code 4 of `trdse run`/`trdse
/// submit`; both derive it from the same rows the report rendered).
bool anyQuarantined(const std::vector<orch::JobResult>& results);

}  // namespace trdse::serve
