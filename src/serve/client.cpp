#include "serve/client.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace trdse::serve {

namespace wire = trdse::orch::wire;

void writeSubmitRequest(io::SectionWriter& w, const SubmitRequest& req) {
  w.str(req.tenant);
  w.str(req.source);
  w.boolean(req.wantJournal);
  w.str(req.scenarioText);
}

SubmitRequest readSubmitRequest(io::SectionReader& r) {
  SubmitRequest req;
  req.tenant = r.str();
  req.source = r.str();
  req.wantJournal = r.boolean();
  req.scenarioText = r.str();
  if (req.tenant.empty()) r.fail("submission carries an empty tenant");
  if (req.scenarioText.empty()) r.fail("submission carries no scenario text");
  return req;
}

void writeJobStatus(io::SectionWriter& w, const JobStatus& s) {
  w.u64(s.id);
  w.str(s.tenant);
  w.str(s.scenario);
  w.str(s.state);
  w.boolean(s.journaled);
  w.u64(s.rounds);
  w.u64(s.jobsTotal);
  w.u64(s.jobsDone);
  w.boolean(s.quarantined);
  w.str(s.error);
}

JobStatus readJobStatus(io::SectionReader& r) {
  JobStatus s;
  s.id = r.u64();
  s.tenant = r.str();
  s.scenario = r.str();
  s.state = r.str();
  s.journaled = r.boolean();
  s.rounds = r.u64();
  s.jobsTotal = r.u64();
  s.jobsDone = r.u64();
  s.quarantined = r.boolean();
  s.error = r.str();
  if (s.state != "queued" && s.state != "running" && s.state != "completed" &&
      s.state != "failed" && s.state != "cancelled")
    r.fail("unknown submission state \"" + s.state + "\"");
  return s;
}

void writeProgressEvent(io::SectionWriter& w, const ProgressEvent& ev) {
  w.u64(ev.id);
  w.u64(ev.round);
  w.u64(ev.jobsActive);
  w.u64(ev.jobsDone);
  w.u64(ev.sharedHits);
  w.u64(ev.simulated);
  w.f64(ev.bestValue);
}

ProgressEvent readProgressEvent(io::SectionReader& r) {
  ProgressEvent ev;
  ev.id = r.u64();
  ev.round = r.u64();
  ev.jobsActive = r.u64();
  ev.jobsDone = r.u64();
  ev.sharedHits = r.u64();
  ev.simulated = r.u64();
  ev.bestValue = r.f64();
  return ev;
}

void writeFinalResult(io::SectionWriter& w, const FinalResult& res) {
  w.u64(res.id);
  w.boolean(res.quarantined);
  w.str(res.report);
  w.u64(res.rows.size());
  for (const orch::JobResult& row : res.rows) wire::writeJobResult(w, row);
}

FinalResult readFinalResult(io::SectionReader& r) {
  FinalResult res;
  res.id = r.u64();
  res.quarantined = r.boolean();
  res.report = r.str();
  const std::uint64_t rows = r.u64();
  res.rows.reserve(rows);
  for (std::uint64_t i = 0; i < rows; ++i)
    res.rows.push_back(wire::readJobResult(r));
  return res;
}

orch::wire::FrameChannel connectUnixSocket(const std::string& socketPath) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socketPath.size() >= sizeof(addr.sun_path))
    throw wire::WireError("serve::connectUnixSocket: socket path \"" +
                          socketPath + "\" exceeds the sockaddr_un limit (" +
                          std::to_string(sizeof(addr.sun_path) - 1) +
                          " bytes)");
  std::memcpy(addr.sun_path, socketPath.c_str(), socketPath.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0)
    throw wire::WireError(std::string("serve::connectUnixSocket: socket(): ") +
                          std::strerror(errno));
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const int err = errno;
    ::close(fd);
    throw wire::WireError("serve::connectUnixSocket: connect(\"" + socketPath +
                          "\"): " + std::strerror(err));
  }
  return orch::wire::FrameChannel(fd);
}

Client::Client(orch::wire::FrameChannel channel)
    : channel_(std::move(channel)) {}

Client Client::connect(const std::string& socketPath) {
  return Client(connectUnixSocket(socketPath));
}

io::CheckpointReader Client::roundTrip(const io::CheckpointWriter& msg,
                                       const std::string& expect) {
  channel_.send(msg);
  io::CheckpointReader reply = channel_.recv("serve client");
  if (reply.kind() == wire::kMsgRejected) {
    io::SectionReader body = reply.section("body");
    throw ServeError(body.str());
  }
  if (reply.kind() != expect)
    throw wire::WireError("serve client: expected a " + expect +
                          " reply, got " + reply.kind());
  return reply;
}

std::uint64_t Client::submit(const SubmitRequest& req, bool* journaledOut) {
  io::CheckpointWriter msg = wire::makeMessage(wire::kMsgSubmit);
  writeSubmitRequest(msg.section("body"), req);
  io::CheckpointReader reply = roundTrip(msg, wire::kMsgAccepted);
  io::SectionReader body = reply.section("body");
  const std::uint64_t id = body.u64();
  const bool journaled = body.boolean();
  if (journaledOut != nullptr) *journaledOut = journaled;
  return id;
}

std::vector<JobStatus> Client::status(std::uint64_t id) {
  io::CheckpointWriter msg = wire::makeMessage(wire::kMsgStatus);
  msg.section("body").u64(id);
  io::CheckpointReader reply = roundTrip(msg, wire::kMsgStatusReply);
  io::SectionReader body = reply.section("body");
  const std::uint64_t count = body.u64();
  std::vector<JobStatus> rows;
  rows.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i)
    rows.push_back(readJobStatus(body));
  return rows;
}

FinalResult Client::stream(
    std::uint64_t id,
    const std::function<void(const ProgressEvent&)>& onProgress) {
  io::CheckpointWriter msg = wire::makeMessage(wire::kMsgStream);
  msg.section("body").u64(id);
  channel_.send(msg);
  // The daemon answers with zero or more serve/progress frames and exactly
  // one terminal frame: serve/result, or serve/rejected when the submission
  // is unknown, failed, or was cancelled.
  for (;;) {
    io::CheckpointReader frame = channel_.recv("serve client");
    if (frame.kind() == wire::kMsgProgress) {
      io::SectionReader body = frame.section("body");
      const ProgressEvent ev = readProgressEvent(body);
      if (onProgress) onProgress(ev);
      continue;
    }
    if (frame.kind() == wire::kMsgRejected) {
      io::SectionReader body = frame.section("body");
      throw ServeError(body.str());
    }
    if (frame.kind() != wire::kMsgResult)
      throw wire::WireError("serve client: expected serve/progress or " +
                            std::string(wire::kMsgResult) + ", got " +
                            frame.kind());
    io::SectionReader body = frame.section("body");
    return readFinalResult(body);
  }
}

void Client::cancel(std::uint64_t id) {
  io::CheckpointWriter msg = wire::makeMessage(wire::kMsgCancel);
  msg.section("body").u64(id);
  roundTrip(msg, wire::kMsgOk);
}

void Client::shutdown() {
  io::CheckpointWriter msg = wire::makeMessage(wire::kMsgServeShutdown);
  msg.section("body").u64(0);
  roundTrip(msg, wire::kMsgOk);
}

}  // namespace trdse::serve
