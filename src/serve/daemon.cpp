#include "serve/daemon.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <stdexcept>
#include <utility>

#include "io/checkpoint.hpp"
#include "orch/scenario.hpp"
#include "serve/report.hpp"

namespace trdse::serve {

namespace wire = trdse::orch::wire;

namespace {

constexpr char kManifestKind[] = "serve-manifest";

bool fileExists(const std::string& path) {
  return std::ifstream(path).good();
}

// State names are part of the client protocol (JobStatus::state).
const char* submissionStateName(std::uint8_t state) {
  switch (state) {
    case 0: return "queued";
    case 1: return "running";
    case 2: return "completed";
    case 3: return "failed";
    case 4: return "cancelled";
    default: return "unknown";
  }
}

}  // namespace

std::string Daemon::journalPathFor(std::uint64_t id) const {
  return config_.stateDir + "/job-" + std::to_string(id) + ".journal";
}

std::string Daemon::cacheFilePath() const {
  return config_.stateDir + "/shared.cache";
}

std::string Daemon::manifestPath() const {
  return config_.stateDir + "/daemon.manifest";
}

Daemon::Daemon(DaemonConfig config) : config_(std::move(config)) {
  if (config_.socketPath.empty())
    throw std::invalid_argument("serve::Daemon: socketPath must be set");
  if (config_.stateDir.empty())
    throw std::invalid_argument("serve::Daemon: stateDir must be set");
  ::mkdir(config_.stateDir.c_str(), 0777);  // EEXIST is fine; writes verify

  cache_ = std::make_shared<eval::SharedEvalCache>(config_.cacheShards);
  recover();

  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (config_.socketPath.size() >= sizeof(addr.sun_path))
    throw wire::WireError("serve::Daemon: socket path \"" +
                          config_.socketPath +
                          "\" exceeds the sockaddr_un limit");
  std::memcpy(addr.sun_path, config_.socketPath.c_str(),
              config_.socketPath.size() + 1);
  // A stale socket file from a killed daemon would make bind() fail; the
  // state files, not the socket, carry the daemon's identity.
  ::unlink(config_.socketPath.c_str());
  listenFd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listenFd_ < 0)
    throw wire::WireError(std::string("serve::Daemon: socket(): ") +
                          std::strerror(errno));
  if (::bind(listenFd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(listenFd_, config_.backlog) != 0) {
    const int err = errno;
    ::close(listenFd_);
    listenFd_ = -1;
    throw wire::WireError("serve::Daemon: bind/listen(\"" +
                          config_.socketPath +
                          "\"): " + std::strerror(err));
  }
}

Daemon::~Daemon() {
  if (listenFd_ >= 0) ::close(listenFd_);
  ::unlink(config_.socketPath.c_str());
  // No flush: every durable transition was persisted when it happened, so
  // destruction is indistinguishable from SIGKILL — by design.
}

bool Daemon::busy() const {
  for (const auto& sub : submissions_)
    if (sub->state == Submission::State::kQueued ||
        sub->state == Submission::State::kRunning)
      return true;
  return false;
}

void Daemon::buildScheduler(Submission& sub) {
  orch::Scenario sc = orch::parseScenarioText(sub.scenarioText, sub.source);
  // Service policy: submissions run in-process (worker processes are the
  // *daemon's* deployment axis, not the client's), journals are daemon-owned
  // files, and the journal never embeds the global cache — the serve-cache
  // file persists it once per barrier for all submissions together.
  sc.workers = 0;
  sc.journalPath.clear();
  sc.journalCache = false;
  sub.usesGlobalCache = sc.sharedCache;
  sub.scenarioName = sc.name;
  sub.jobsTotal = sc.jobs.size();
  sub.scopes.clear();
  for (const orch::JobSpec& spec : sc.jobs) {
    // Text submissions never carry makeProblem, so the scope resolution of
    // orch::buildJobs reduces to cacheScope-or-circuit.
    const std::string scope =
        !spec.cacheScope.empty() ? spec.cacheScope : spec.circuit;
    if (!scope.empty() &&
        std::find(sub.scopes.begin(), sub.scopes.end(), scope) ==
            sub.scopes.end())
      sub.scopes.push_back(scope);
  }
  sub.sched = std::make_unique<orch::Scheduler>(
      std::move(sc), sub.usesGlobalCache ? cache_ : nullptr);
  bool journal = sub.wantJournal;
  for (std::size_t i = 0; i < sub.jobsTotal && journal; ++i)
    if (!sub.sched->strategy(i).supportsCheckpoint()) journal = false;
  if (journal) sub.sched->enableJournal(journalPathFor(sub.id));
  sub.journaled = journal;
  Submission* self = &sub;  // stable: submissions_ stores unique_ptrs
  sub.sched->setRoundHook([self](const orch::RoundObservation& obs) {
    self->lastObs = obs;
    self->haveObs = true;
    self->roundsCompleted = obs.round;
  });
}

// ---- Request handling ----------------------------------------------------

void Daemon::reject(Connection& conn, const std::string& reason) {
  io::CheckpointWriter msg = wire::makeMessage(wire::kMsgRejected);
  msg.section("body").str(reason);
  conn.channel.send(msg);
}

void Daemon::sendOk(Connection& conn) {
  io::CheckpointWriter msg = wire::makeMessage(wire::kMsgOk);
  msg.section("body").u64(0);
  conn.channel.send(msg);
}

void Daemon::handleFrame(Connection& conn, io::CheckpointReader& frame) {
  const std::string& kind = frame.kind();
  if (kind == wire::kMsgSubmit) {
    handleSubmit(conn, frame);
  } else if (kind == wire::kMsgStatus) {
    handleStatus(conn, frame);
  } else if (kind == wire::kMsgStream) {
    handleStream(conn, frame);
  } else if (kind == wire::kMsgCancel) {
    handleCancel(conn, frame);
  } else if (kind == wire::kMsgServeShutdown) {
    shutdownRequested_ = true;
    persistManifest();
    sendOk(conn);
  } else {
    reject(conn, "serve daemon: unexpected message kind " + kind);
  }
}

void Daemon::handleSubmit(Connection& conn, io::CheckpointReader& frame) {
  io::SectionReader body = frame.section("body");
  const SubmitRequest req = readSubmitRequest(body);
  if (req.scenarioText.size() > config_.maxSubmissionBytes) {
    reject(conn, "submission of " + std::to_string(req.scenarioText.size()) +
                     " bytes exceeds the admission limit of " +
                     std::to_string(config_.maxSubmissionBytes) +
                     " bytes (daemon cap; the transport itself refuses "
                     "frames over wire::kMaxFrameBytes)");
    return;
  }
  auto sub = std::make_unique<Submission>();
  sub->tenant = req.tenant;
  sub->source = req.source;
  sub->scenarioText = req.scenarioText;
  sub->wantJournal = req.wantJournal;
  sub->id = nextId_;
  try {
    buildScheduler(*sub);
  } catch (const std::invalid_argument& e) {
    reject(conn, e.what());
    return;
  }
  ++nextId_;
  // Report baseline: counters the submission starts from. On a fresh daemon
  // these are all zero and the rendered deltas equal a standalone run's
  // absolute counters — the submit-vs-run byte-identity contract.
  if (sub->usesGlobalCache) {
    sub->baseline.reserve(cache_->shardCount());
    for (std::size_t s = 0; s < cache_->shardCount(); ++s)
      sub->baseline.push_back(cache_->shardStats(s));
  }
  for (const std::string& scope : sub->scopes) touchScope(lru_, scope);
  Submission& ref = *sub;
  submissions_.push_back(std::move(sub));
  persistManifest();  // admission survives a crash from here on
  io::CheckpointWriter msg = wire::makeMessage(wire::kMsgAccepted);
  io::SectionWriter& out = msg.section("body");
  out.u64(ref.id);
  out.boolean(ref.journaled);
  conn.channel.send(msg);
}

void Daemon::handleStatus(Connection& conn, io::CheckpointReader& frame) {
  io::SectionReader body = frame.section("body");
  const std::uint64_t id = body.u64();
  std::vector<JobStatus> rows;
  for (const auto& sub : submissions_)
    if (id == 0 || sub->id == id) rows.push_back(statusRowFor(*sub));
  if (id != 0 && rows.empty()) {
    reject(conn, "unknown submission id " + std::to_string(id));
    return;
  }
  io::CheckpointWriter msg = wire::makeMessage(wire::kMsgStatusReply);
  io::SectionWriter& out = msg.section("body");
  out.u64(rows.size());
  for (const JobStatus& row : rows) writeJobStatus(out, row);
  conn.channel.send(msg);
}

void Daemon::handleStream(Connection& conn, io::CheckpointReader& frame) {
  io::SectionReader body = frame.section("body");
  const std::uint64_t id = body.u64();
  Submission* sub = nullptr;
  for (const auto& s : submissions_)
    if (s->id == id) sub = s.get();
  if (sub == nullptr) {
    reject(conn, "unknown submission id " + std::to_string(id));
    return;
  }
  switch (sub->state) {
    case Submission::State::kCompleted: {
      io::CheckpointWriter msg = wire::makeMessage(wire::kMsgResult);
      writeFinalResult(msg.section("body"), finalResultFor(*sub));
      conn.channel.send(msg);
      return;
    }
    case Submission::State::kFailed:
      reject(conn, "submission " + std::to_string(id) +
                       " failed: " + sub->error);
      return;
    case Submission::State::kCancelled:
      reject(conn, "submission " + std::to_string(id) + " was cancelled");
      return;
    default:
      conn.streamingId = id;  // progress flows from the next barrier on
  }
}

void Daemon::handleCancel(Connection& conn, io::CheckpointReader& frame) {
  io::SectionReader body = frame.section("body");
  const std::uint64_t id = body.u64();
  Submission* sub = nullptr;
  for (const auto& s : submissions_)
    if (s->id == id) sub = s.get();
  if (sub == nullptr) {
    reject(conn, "unknown submission id " + std::to_string(id));
    return;
  }
  if (sub->state != Submission::State::kQueued &&
      sub->state != Submission::State::kRunning) {
    reject(conn, "submission " + std::to_string(id) + " is already " +
                     submissionStateName(
                         static_cast<std::uint8_t>(sub->state)));
    return;
  }
  sub->state = Submission::State::kCancelled;
  sub->sched.reset();
  if (sub->journaled) std::remove(journalPathFor(sub->id).c_str());
  persistManifest();
  sendOk(conn);
  notifyTerminal(*sub);
}

// ---- Progress / results --------------------------------------------------

JobStatus Daemon::statusRowFor(const Submission& sub) const {
  JobStatus row;
  row.id = sub.id;
  row.tenant = sub.tenant;
  row.scenario = sub.scenarioName;
  row.state =
      submissionStateName(static_cast<std::uint8_t>(sub.state));
  row.journaled = sub.journaled;
  row.rounds = sub.roundsCompleted;
  row.jobsTotal = sub.jobsTotal;
  row.quarantined = sub.quarantined;
  row.error = sub.error;
  if (sub.state == Submission::State::kCompleted) {
    row.jobsDone = sub.jobsTotal;
  } else if (sub.haveObs) {
    std::size_t doneInObs = 0;
    for (const auto& p : sub.lastObs.jobs)
      if (p.finished || p.quarantined) ++doneInObs;
    row.jobsDone = sub.jobsTotal - sub.lastObs.jobs.size() + doneInObs;
  }
  return row;
}

ProgressEvent Daemon::progressEventFor(const Submission& sub) const {
  ProgressEvent ev;
  ev.id = sub.id;
  ev.round = sub.lastObs.round;
  ev.jobsActive = sub.lastObs.jobs.size();
  std::size_t doneInObs = 0;
  bool first = true;
  for (const auto& p : sub.lastObs.jobs) {
    if (p.finished || p.quarantined) ++doneInObs;
    ev.sharedHits += p.sharedHits;
    ev.simulated += p.simulated;
    if (first || p.bestValue < ev.bestValue) ev.bestValue = p.bestValue;
    first = false;
  }
  ev.jobsDone = sub.jobsTotal - sub.lastObs.jobs.size() + doneInObs;
  return ev;
}

FinalResult Daemon::finalResultFor(const Submission& sub) const {
  FinalResult res;
  res.id = sub.id;
  res.quarantined = sub.quarantined;
  res.report = sub.report;
  res.rows = sub.rows;
  return res;
}

void Daemon::notifyProgress(const Submission& sub) {
  if (!sub.haveObs) return;
  for (Connection& conn : connections_) {
    if (conn.streamingId != sub.id || !conn.channel.valid()) continue;
    try {
      io::CheckpointWriter msg = wire::makeMessage(wire::kMsgProgress);
      writeProgressEvent(msg.section("body"), progressEventFor(sub));
      conn.channel.send(msg);
    } catch (const wire::WireError&) {
      conn.channel.close();  // dead subscriber; reaped next tick
    }
  }
}

void Daemon::notifyTerminal(Submission& sub) {
  for (Connection& conn : connections_) {
    if (conn.streamingId != sub.id || !conn.channel.valid()) continue;
    try {
      if (sub.state == Submission::State::kCompleted) {
        io::CheckpointWriter msg = wire::makeMessage(wire::kMsgResult);
        writeFinalResult(msg.section("body"), finalResultFor(sub));
        conn.channel.send(msg);
      } else if (sub.state == Submission::State::kFailed) {
        reject(conn, "submission " + std::to_string(sub.id) +
                         " failed: " + sub.error);
      } else {
        reject(conn, "submission " + std::to_string(sub.id) +
                         " was cancelled");
      }
    } catch (const wire::WireError&) {
      conn.channel.close();
    }
    conn.streamingId = 0;
  }
}

// ---- Fair-share scheduling ----------------------------------------------

Daemon::Submission* Daemon::pickNext() {
  const auto active = [](const Submission& s) {
    return s.state == Submission::State::kQueued ||
           s.state == Submission::State::kRunning;
  };
  // Tenants in first-admission order; submission ids are admission order.
  std::vector<std::string> tenants;
  for (const auto& sub : submissions_)
    if (active(*sub) &&
        std::find(tenants.begin(), tenants.end(), sub->tenant) ==
            tenants.end())
      tenants.push_back(sub->tenant);
  if (tenants.empty()) return nullptr;
  // Continue the rotation after the tenant served last tick — this is the
  // fair budget slice: one scheduler round (slice * jobs blocks) per tenant
  // per rotation, whatever each tenant's queue depth is.
  std::size_t pick = 0;
  const auto it =
      std::find(tenants.begin(), tenants.end(), lastServedTenant_);
  if (it != tenants.end())
    pick = (static_cast<std::size_t>(it - tenants.begin()) + 1) %
           tenants.size();
  lastServedTenant_ = tenants[pick];
  for (const auto& sub : submissions_)
    if (active(*sub) && sub->tenant == tenants[pick]) return sub.get();
  return nullptr;  // unreachable: the tenant list came from active subs
}

void Daemon::advance(Submission& sub) {
  if (sub.state == Submission::State::kQueued)
    sub.state = Submission::State::kRunning;
  if (sub.resumePending) {
    sub.resumePending = false;
    try {
      sub.sched->resume(journalPathFor(sub.id));
    } catch (const std::exception& e) {
      fail(sub, std::string("journal resume failed: ") + e.what());
      return;
    }
  }
  std::vector<orch::JobResult> rows;
  try {
    rows = sub.sched->run(1);
  } catch (const std::exception& e) {
    fail(sub, e.what());
    return;
  }
  // Barrier persistence, in dependency order: the scheduler already wrote
  // the journal inside run(); now the cache (whose entries the journal's
  // accounting assumes), then the manifest. A SIGKILL between writes leaves
  // an older-but-consistent tail file; "journal ahead of cache" costs at
  // most the interrupted round's publishes (values are unaffected —
  // backends are pure).
  for (const std::string& scope : sub.scopes) touchScope(lru_, scope);
  if (sub.sched->completed()) {
    finish(sub, std::move(rows));
    return;
  }
  persistCache();
  persistManifest();
  notifyProgress(sub);
}

void Daemon::finish(Submission& sub, std::vector<orch::JobResult> rows) {
  const orch::Scenario& sc = sub.sched->scenario();
  ReportInput in;
  in.scenarioName = sub.scenarioName;
  in.jobCount = sub.jobsTotal;
  in.slice = sc.slice;
  in.sharedCacheOn = sc.sharedCache;
  in.results = rows;
  if (sub.usesGlobalCache) {
    in.haveCache = true;
    in.shards.reserve(cache_->shardCount());
    for (std::size_t s = 0; s < cache_->shardCount(); ++s) {
      const auto now = cache_->shardStats(s);
      const auto base = s < sub.baseline.size()
                            ? sub.baseline[s]
                            : eval::SharedEvalCache::ShardCounters{};
      ShardLine d;
      // Saturating deltas: hits/misses/inserts are monotonic, but `entries`
      // can dip below the baseline when another scope was evicted while
      // this submission ran.
      d.entries = now.entries >= base.entries ? now.entries - base.entries : 0;
      d.hits = now.hits - base.hits;
      d.misses = now.misses - base.misses;
      d.inserts = now.inserts - base.inserts;
      in.shards.push_back(d);
    }
  }
  sub.report = renderReport(in);
  sub.quarantined = anyQuarantined(rows);
  sub.rows = std::move(rows);
  sub.state = Submission::State::kCompleted;
  sub.sched.reset();
  sub.haveObs = false;
  if (sub.journaled) std::remove(journalPathFor(sub.id).c_str());
  // Budget pass at the completion barrier only — a deterministic point, and
  // the only one where a whole scope's usefulness can change. Scopes of
  // still-active submissions are pinned.
  std::vector<std::string> pinned;
  for (const auto& other : submissions_)
    if (other->state == Submission::State::kQueued ||
        other->state == Submission::State::kRunning)
      for (const std::string& scope : other->scopes)
        pinned.push_back(scope);
  const std::vector<std::string> evicted =
      enforceBudget(*cache_, lru_, config_.cacheBudgetBytes, pinned);
  for (const std::string& scope : evicted)
    lru_.erase(std::remove(lru_.begin(), lru_.end(), scope), lru_.end());
  persistCache();
  persistManifest();
  notifyTerminal(sub);
}

void Daemon::fail(Submission& sub, const std::string& error) {
  sub.state = Submission::State::kFailed;
  sub.error = error;
  sub.sched.reset();
  sub.haveObs = false;
  if (sub.journaled) std::remove(journalPathFor(sub.id).c_str());
  persistManifest();
  notifyTerminal(sub);
}

// ---- Service loop --------------------------------------------------------

bool Daemon::tick(int pollTimeoutMs) {
  bool didWork = false;
  // Reap connections closed by notify failures or transport errors.
  connections_.erase(
      std::remove_if(connections_.begin(), connections_.end(),
                     [](const Connection& c) { return !c.channel.valid(); }),
      connections_.end());

  std::vector<pollfd> fds;
  fds.reserve(connections_.size() + 1);
  fds.push_back(pollfd{listenFd_, POLLIN, 0});
  for (const Connection& conn : connections_)
    fds.push_back(pollfd{conn.channel.fd(), POLLIN, 0});
  const int timeout = busy() ? 0 : pollTimeoutMs;
  const int ready = ::poll(fds.data(), fds.size(), timeout);
  if (ready > 0) {
    // Dispatch existing connections first (their indices align with the
    // pollfd list built above; accepts append after it).
    for (std::size_t i = 0; i < connections_.size(); ++i) {
      if ((fds[i + 1].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
      Connection& conn = connections_[i];
      try {
        io::CheckpointReader frame = conn.channel.recv("serve daemon");
        handleFrame(conn, frame);
        didWork = true;
      } catch (const wire::WireError&) {
        conn.channel.close();  // peer gone (or un-frameable garbage)
      } catch (const io::CheckpointError& e) {
        // The frame was fully consumed (length-prefixed), so the channel is
        // still in sync — a malformed payload earns a typed rejection, not
        // a dropped connection.
        try {
          reject(conn, std::string("malformed request: ") + e.what());
          didWork = true;
        } catch (const wire::WireError&) {
          conn.channel.close();
        }
      }
    }
    if (fds[0].revents & POLLIN) {
      const int fd = ::accept(listenFd_, nullptr, nullptr);
      if (fd >= 0) {
        connections_.push_back(
            Connection{orch::wire::FrameChannel(fd), 0});
        didWork = true;
      }
    }
  }

  if (!shutdownRequested_) {
    if (Submission* sub = pickNext()) {
      advance(*sub);
      didWork = true;
    }
  }
  return didWork;
}

void Daemon::runUntilShutdown() {
  while (!shutdownRequested_) tick(busy() ? 0 : 50);
}

std::vector<JobStatus> Daemon::statusRows() const {
  std::vector<JobStatus> rows;
  rows.reserve(submissions_.size());
  for (const auto& sub : submissions_) rows.push_back(statusRowFor(*sub));
  return rows;
}

// ---- Persistence ---------------------------------------------------------

void Daemon::persistCache() const {
  saveCacheFile(cacheFilePath(), *cache_, lru_);
}

void Daemon::persistManifest() const {
  io::CheckpointWriter w(kManifestKind);
  io::SectionWriter& meta = w.section("meta");
  meta.u64(nextId_);
  meta.str(lastServedTenant_);
  io::SectionWriter& jobs = w.section("jobs");
  jobs.u64(submissions_.size());
  for (const auto& sub : submissions_) {
    jobs.u64(sub->id);
    jobs.str(sub->tenant);
    jobs.str(sub->source);
    jobs.str(sub->scenarioText);
    jobs.boolean(sub->wantJournal);
    jobs.u8(static_cast<std::uint8_t>(sub->state));
    jobs.boolean(sub->journaled);
    jobs.boolean(sub->usesGlobalCache);
    jobs.str(sub->scenarioName);
    jobs.u64(sub->jobsTotal);
    jobs.u64(sub->roundsCompleted);
    jobs.u64(sub->baseline.size());
    for (const auto& b : sub->baseline) {
      jobs.u64(b.hits);
      jobs.u64(b.misses);
      jobs.u64(b.inserts);
      jobs.u64(b.entries);
    }
    jobs.u64(sub->scopes.size());
    for (const std::string& scope : sub->scopes) jobs.str(scope);
    jobs.str(sub->report);
    jobs.boolean(sub->quarantined);
    jobs.u64(sub->rows.size());
    for (const orch::JobResult& row : sub->rows)
      wire::writeJobResult(jobs, row);
    jobs.str(sub->error);
  }
  w.writeFile(manifestPath());
}

void Daemon::recover() {
  loadCacheFile(cacheFilePath(), *cache_, lru_);
  if (!fileExists(manifestPath())) return;
  io::CheckpointReader reader = io::CheckpointReader::fromFile(manifestPath());
  reader.expectKind(kManifestKind);
  io::SectionReader meta = reader.section("meta");
  nextId_ = meta.u64();
  lastServedTenant_ = meta.str();
  io::SectionReader jobs = reader.section("jobs");
  const std::uint64_t count = jobs.u64();
  for (std::uint64_t i = 0; i < count; ++i) {
    auto sub = std::make_unique<Submission>();
    sub->id = jobs.u64();
    sub->tenant = jobs.str();
    sub->source = jobs.str();
    sub->scenarioText = jobs.str();
    sub->wantJournal = jobs.boolean();
    const std::uint8_t state = jobs.u8();
    if (state > 4)
      jobs.fail("submission " + std::to_string(sub->id) +
                " carries unknown state " + std::to_string(state));
    sub->state = static_cast<Submission::State>(state);
    sub->journaled = jobs.boolean();
    sub->usesGlobalCache = jobs.boolean();
    sub->scenarioName = jobs.str();
    sub->jobsTotal = jobs.u64();
    sub->roundsCompleted = jobs.u64();
    const std::uint64_t shards = jobs.u64();
    sub->baseline.reserve(shards);
    for (std::uint64_t s = 0; s < shards; ++s) {
      eval::SharedEvalCache::ShardCounters c;
      c.hits = jobs.u64();
      c.misses = jobs.u64();
      c.inserts = jobs.u64();
      c.entries = jobs.u64();
      sub->baseline.push_back(c);
    }
    const std::uint64_t scopes = jobs.u64();
    sub->scopes.reserve(scopes);
    for (std::uint64_t s = 0; s < scopes; ++s)
      sub->scopes.push_back(jobs.str());
    sub->report = jobs.str();
    sub->quarantined = jobs.boolean();
    const std::uint64_t rows = jobs.u64();
    sub->rows.reserve(rows);
    for (std::uint64_t r = 0; r < rows; ++r)
      sub->rows.push_back(wire::readJobResult(jobs));
    sub->error = jobs.str();

    if (sub->state == Submission::State::kQueued ||
        sub->state == Submission::State::kRunning) {
      // Rebuild the live run from the persisted text — the same path
      // admission took, so the journal grant and scopes re-derive
      // identically. Journaled in-flight submissions resume from their
      // journal (bitwise, docs/SERVICE.md); unjournaled ones restart from
      // scratch — that is exactly the "not crash-resumable" deal their
      // strategies signed.
      try {
        buildScheduler(*sub);
        if (sub->state == Submission::State::kRunning && sub->journaled &&
            fileExists(journalPathFor(sub->id))) {
          sub->resumePending = true;
        } else {
          sub->roundsCompleted = 0;
        }
        sub->state = Submission::State::kQueued;
      } catch (const std::exception& e) {
        sub->state = Submission::State::kFailed;
        sub->error = std::string("recovery failed: ") + e.what();
        sub->sched.reset();
      }
    }
    submissions_.push_back(std::move(sub));
  }
}

}  // namespace trdse::serve
