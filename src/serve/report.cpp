#include "serve/report.hpp"

#include <algorithm>
#include <cstdio>

namespace trdse::serve {

namespace {

/// printf into the accumulating report. Lines are short (report rows); the
/// buffer is sized for the longest plausible row, and snprintf's truncation
/// contract means an overlong name degrades to a clipped line, never UB.
template <typename... Args>
void line(std::string& out, const char* fmt, Args... args) {
  char buf[512];
  const int n = std::snprintf(buf, sizeof(buf), fmt, args...);
  if (n > 0) out.append(buf, std::min(static_cast<std::size_t>(n), sizeof(buf) - 1));
}

}  // namespace

std::string renderReport(const ReportInput& in) {
  std::string out;
  line(out, "# scenario %s: %zu jobs, slice %zu, shared cache %s\n",
       in.scenarioName.c_str(), in.jobCount, in.slice,
       in.sharedCacheOn ? "on" : "off");
  line(out, "%-14s %-18s %-16s %-7s %8s %8s %7s %7s %10s\n", "job", "circuit",
       "strategy", "solved", "blocks", "sims", "hits", "shared", "best");
  for (const orch::JobResult& r : in.results) {
    const opt::StrategyOutcome& o = r.outcome;
    line(out, "%-14s %-18s %-16s %-7s %8zu %8zu %7zu %7zu %10.4f\n",
         r.name.c_str(), r.circuit.c_str(), r.strategy.c_str(),
         o.solved ? "yes" : "no", o.iterations, o.evalStats.simulated,
         o.evalStats.cacheHits, o.evalStats.sharedHits, o.bestValue);
  }
  if (in.haveCache) {
    ShardLine t;
    for (const ShardLine& s : in.shards) {
      t.entries += s.entries;
      t.hits += s.hits;
      t.misses += s.misses;
      t.inserts += s.inserts;
    }
    line(out,
         "# shared cache: %zu entries in %zu shards, %zu hits / %zu misses\n",
         t.entries, in.shards.size(), t.hits, t.misses);
    // Per-shard breakdown: shard assignment is a pure key hash, so these
    // lines are as deterministic as the totals.
    for (std::size_t s = 0; s < in.shards.size(); ++s) {
      const ShardLine& c = in.shards[s];
      line(out, "# shard %02zu: %zu entries, %zu hits / %zu misses, %zu inserts\n",
           s, c.entries, c.hits, c.misses, c.inserts);
    }
  }
  for (std::size_t w = 0; w < in.workerJobs.size(); ++w)
    line(out, "# worker %zu: jobs %s\n", w, in.workerJobs[w].c_str());
  // Fault/quarantine report, appended as deterministic comment lines so the
  // summary table above stays byte-identical for clean scenarios.
  for (const orch::JobResult& r : in.results) {
    if (r.failures != 0)
      line(out,
           "# failures %s: %zu request(s) failed, %zu faulted attempt(s), "
           "%zu backoff unit(s)\n",
           r.name.c_str(), r.failures, r.outcome.evalStats.faults,
           r.outcome.evalStats.backoffUnits);
    if (r.quarantined)
      line(out, "# quarantined %s: %s\n", r.name.c_str(),
           r.quarantineReason.c_str());
  }
  return out;
}

bool anyQuarantined(const std::vector<orch::JobResult>& results) {
  for (const orch::JobResult& r : results)
    if (r.quarantined) return true;
  return false;
}

}  // namespace trdse::serve
