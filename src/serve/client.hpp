// Typed client API of the sizing service — the one way to talk to a daemon.
//
// `trdse submit` / `trdse status`, the e2e tests, and examples all drive the
// daemon through this Client instead of hand-rolling frames, so the payload
// layout of every serve/* message has exactly two authors: the codec
// functions here (client side) and serve::Daemon (server side), both built on
// the same write/read pairs below.
//
// Transport is the orch/wire frame protocol over a Unix-domain stream socket:
// every message is one length-prefixed TDCK container, so submissions and
// results inherit the container's magic/version/checksum validation.
// Transport faults throw wire::WireError; a daemon-side refusal (malformed
// scenario, admission limit, unknown job id) is a typed serve/rejected reply
// surfaced as ServeError with the daemon's reason text.
//
// Protocol walk-through and wire-level reference: docs/SERVICE.md.
#pragma once

#include <cstdint>
#include <functional>
#include <stdexcept>
#include <string>
#include <vector>

#include "orch/wire.hpp"

namespace trdse::serve {

/// The daemon refused a request (serve/rejected): malformed scenario text,
/// submission over the admission limit, unknown job id, cancel of a finished
/// job. The channel stays usable — rejection is an answer, not a fault.
class ServeError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// One scenario submission.
struct SubmitRequest {
  /// Fair-share bucket: the daemon round-robins rounds across tenants, then
  /// across a tenant's submissions in arrival order.
  std::string tenant = "default";
  /// Scenario file text (orch::parseScenarioText format).
  std::string scenarioText;
  /// Label for scenario parse errors (usually the file path).
  std::string source = "submission";
  /// Ask for a crash-resumable run. Granted only when every job's strategy
  /// supports checkpointing (JobStatus::journaled reports the outcome);
  /// submissions run either way.
  bool wantJournal = true;
};

/// One row of a status reply.
struct JobStatus {
  std::uint64_t id = 0;
  std::string tenant;
  std::string scenario;       ///< scenario name from the submitted text
  /// queued | running | completed | failed | cancelled.
  std::string state;
  bool journaled = false;     ///< crash-resumable (write-ahead journal on)
  std::size_t rounds = 0;     ///< scheduler rounds completed
  std::size_t jobsTotal = 0;  ///< jobs in the submitted scenario
  std::size_t jobsDone = 0;   ///< finished or quarantined so far
  bool quarantined = false;   ///< any job quarantined (terminal states)
  std::string error;          ///< failure reason (state == failed)
};

/// Per-round progress of a streamed submission (one per scheduler round).
struct ProgressEvent {
  std::uint64_t id = 0;
  std::size_t round = 0;       ///< 1-based round just completed
  std::size_t jobsActive = 0;  ///< jobs stepped this round
  std::size_t jobsDone = 0;    ///< finished or quarantined so far
  std::size_t sharedHits = 0;  ///< cumulative, summed over active jobs
  std::size_t simulated = 0;   ///< cumulative, summed over active jobs
  double bestValue = 0.0;      ///< best (lowest) worst-corner value so far
};

/// Terminal answer for one submission.
struct FinalResult {
  std::uint64_t id = 0;
  bool quarantined = false;  ///< any row quarantined (exit code 4)
  /// The rendered summary (serve/report.hpp) — byte-identical to what
  /// `trdse run` prints for the same scenario on a fresh daemon.
  std::string report;
  std::vector<orch::JobResult> rows;  ///< typed rows behind the report
};

// ---- Payload codecs (shared verbatim by Client and serve::Daemon) --------

void writeSubmitRequest(io::SectionWriter& w, const SubmitRequest& req);
SubmitRequest readSubmitRequest(io::SectionReader& r);

void writeJobStatus(io::SectionWriter& w, const JobStatus& s);
JobStatus readJobStatus(io::SectionReader& r);

void writeProgressEvent(io::SectionWriter& w, const ProgressEvent& ev);
ProgressEvent readProgressEvent(io::SectionReader& r);

void writeFinalResult(io::SectionWriter& w, const FinalResult& res);
FinalResult readFinalResult(io::SectionReader& r);

/// Connect a wire::FrameChannel to the daemon's Unix-domain socket; throws
/// wire::WireError when the path is too long for sockaddr_un, the socket
/// cannot be created, or nothing is listening.
orch::wire::FrameChannel connectUnixSocket(const std::string& socketPath);

/// Blocking request/reply client over one daemon connection. Move-only (owns
/// the channel). Every method throws wire::WireError on transport faults,
/// io::CheckpointError on corrupt payloads, and ServeError on daemon
/// rejections.
class Client {
 public:
  Client() = default;
  /// Take ownership of a connected channel (tests use socketpairs).
  explicit Client(orch::wire::FrameChannel channel);

  /// Connect to a listening daemon.
  static Client connect(const std::string& socketPath);

  bool valid() const { return channel_.valid(); }

  /// Submit a scenario; returns the daemon-assigned job id. `journaledOut`
  /// (optional) reports whether the run is crash-resumable.
  std::uint64_t submit(const SubmitRequest& req, bool* journaledOut = nullptr);

  /// Status rows — one submission (`id` != 0) or every known submission
  /// (`id` == 0), in submission order.
  std::vector<JobStatus> status(std::uint64_t id = 0);

  /// Subscribe to a submission and block until its terminal result frame,
  /// invoking `onProgress` for every streamed round. A submission that
  /// already completed replays its FinalResult immediately. A submission
  /// that failed or was cancelled surfaces as ServeError.
  FinalResult stream(std::uint64_t id,
                     const std::function<void(const ProgressEvent&)>&
                         onProgress = nullptr);

  /// Cancel a queued or running submission.
  void cancel(std::uint64_t id);

  /// Ask the daemon to exit its serve loop (in-flight journaled submissions
  /// resume on the next start).
  void shutdown();

 private:
  /// Send `msg`, then receive one reply frame; serve/rejected replies throw
  /// ServeError, any kind outside `expect` throws WireError.
  io::CheckpointReader roundTrip(const io::CheckpointWriter& msg,
                                 const std::string& expect);

  orch::wire::FrameChannel channel_;
};

}  // namespace trdse::serve
