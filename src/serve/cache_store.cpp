#include "serve/cache_store.hpp"

#include <algorithm>
#include <fstream>

#include "io/checkpoint.hpp"

namespace trdse::serve {

void touchScope(ScopeLru& lru, const std::string& scope) {
  const auto it = std::find(lru.begin(), lru.end(), scope);
  if (it != lru.end()) lru.erase(it);
  lru.insert(lru.begin(), scope);
}

void saveCacheFile(const std::string& path,
                   const eval::SharedEvalCache& cache, const ScopeLru& lru) {
  io::CheckpointWriter w(kCacheStoreKind);
  cache.saveState(w.section("cache"));
  io::SectionWriter& l = w.section("lru");
  l.u64(lru.size());
  for (const std::string& s : lru) l.str(s);
  w.writeFile(path);
}

bool loadCacheFile(const std::string& path, eval::SharedEvalCache& cache,
                   ScopeLru& lru) {
  {
    std::ifstream probe(path);
    if (!probe.good()) return false;
  }
  io::CheckpointReader reader = io::CheckpointReader::fromFile(path);
  reader.expectKind(kCacheStoreKind);
  io::SectionReader c = reader.section("cache");
  cache.restoreState(c);
  io::SectionReader l = reader.section("lru");
  const std::uint64_t n = l.u64();
  lru.clear();
  lru.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) lru.push_back(l.str());
  return true;
}

std::vector<std::string> enforceBudget(eval::SharedEvalCache& cache,
                                       const ScopeLru& lru,
                                       std::uint64_t budgetBytes,
                                       const std::vector<std::string>& pinned) {
  std::vector<std::string> evicted;
  if (budgetBytes == 0) return evicted;
  std::uint64_t bytes = cache.approxBytes();
  if (bytes <= budgetBytes) return evicted;
  const std::vector<std::string> names = cache.scopeNames();
  // Walk the LRU order from the cold end; scope ids come from the registered
  // name list (an LRU entry whose scope was never registered here is a
  // leftover from an evicted past life — nothing to drop).
  for (auto it = lru.rbegin(); it != lru.rend() && bytes > budgetBytes; ++it) {
    if (std::find(pinned.begin(), pinned.end(), *it) != pinned.end()) continue;
    const auto name = std::find(names.begin(), names.end(), *it);
    if (name == names.end()) continue;
    const std::size_t scope =
        static_cast<std::size_t>(name - names.begin());
    const std::size_t scopeBytes = cache.approxScopeBytes(scope);
    if (cache.evictScope(scope) == 0) continue;
    bytes -= std::min<std::uint64_t>(bytes, scopeBytes);
    evicted.push_back(*it);
  }
  return evicted;
}

}  // namespace trdse::serve
