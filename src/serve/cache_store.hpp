// Persistent shared-cache store of the sizing daemon.
//
// The whole point of sizing-as-a-service is that simulation work outlives the
// submission that paid for it: the daemon's eval::SharedEvalCache is written
// to one `serve-cache` checkpoint container after every round barrier and
// restored on startup, so a daemon restart — clean or SIGKILL — keeps every
// published result, and an identical resubmission against the warmed cache
// completes on pure shared hits with zero new simulations.
//
// The file also carries the scope LRU order that bounds it: scopes (circuit
// namespaces) are the eviction granularity, touched at deterministic points
// only (admission and round barriers of the submissions using them), and
// whole least-recently-used scopes are dropped when the estimated cache size
// exceeds the configured byte budget. Keeping recency out of concurrent
// find() calls is what preserves the orchestrator's bitwise thread-count
// invariance (see SharedEvalCache's eviction-support notes).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "eval/shared_cache.hpp"

namespace trdse::serve {

/// Container kind of the persisted daemon cache.
inline constexpr char kCacheStoreKind[] = "serve-cache";

/// Scope recency, most recently used first. Names not (yet) registered in
/// the cache are tolerated on load — a budget pass simply skips them.
using ScopeLru = std::vector<std::string>;

/// Mark `scope` most recently used (moves or prepends).
void touchScope(ScopeLru& lru, const std::string& scope);

/// Atomically write cache entries/counters + the LRU order to `path`
/// (io::CheckpointWriter::writeFile: temp + rename, so a crash mid-write
/// keeps the previous file). Call only from a round barrier / idle daemon —
/// SharedEvalCache::saveState is not safe against concurrent writers.
void saveCacheFile(const std::string& path,
                   const eval::SharedEvalCache& cache, const ScopeLru& lru);

/// Restore `cache` and the LRU order from `path`. Returns false when the
/// file does not exist (fresh daemon — cache left untouched); throws
/// io::CheckpointError on a corrupt file or a shard-count mismatch (the
/// persisted geometry must match DaemonConfig::cacheShards).
bool loadCacheFile(const std::string& path, eval::SharedEvalCache& cache,
                   ScopeLru& lru);

/// Evict whole scopes, least recently used first, until the cache's
/// estimated bytes fit `budgetBytes` (0 = unbounded). Scopes named in
/// `pinned` (active submissions) are never evicted — their jobs hold live
/// probe expectations. Returns the evicted scope names, LRU order.
std::vector<std::string> enforceBudget(eval::SharedEvalCache& cache,
                                       const ScopeLru& lru,
                                       std::uint64_t budgetBytes,
                                       const std::vector<std::string>& pinned);

}  // namespace trdse::serve
