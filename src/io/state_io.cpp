#include "io/state_io.hpp"

#include <algorithm>
#include <cmath>
#include <locale>
#include <sstream>

namespace trdse::io {

namespace {

/// Shared guard: measurement/parameter vectors must be finite to be state.
void requireFinite(SectionReader& r, const linalg::Vector& v,
                   const char* what) {
  if (std::any_of(v.begin(), v.end(),
                  [](double x) { return !std::isfinite(x); }))
    r.fail(std::string(what) + " contains non-finite values");
}

}  // namespace

void writeMlp(SectionWriter& w, const nn::Mlp& net) {
  const nn::MlpConfig& cfg = net.config();
  w.indexVec(cfg.layerSizes);
  w.u8(static_cast<std::uint8_t>(cfg.hidden));
  w.u8(static_cast<std::uint8_t>(cfg.output));
  w.vec(net.getParameters());
}

nn::Mlp readMlp(SectionReader& r) {
  nn::MlpConfig cfg;
  cfg.layerSizes = r.indexVec();
  if (cfg.layerSizes.size() < 2 || cfg.layerSizes.size() > 64)
    r.fail("implausible layer count " +
           std::to_string(cfg.layerSizes.size()));
  for (const std::size_t s : cfg.layerSizes)
    if (s == 0 || s > (1u << 20)) r.fail("implausible layer width");
  const std::uint8_t hidden = r.u8();
  const std::uint8_t output = r.u8();
  if (hidden > 2 || output > 2) r.fail("unknown activation id");
  cfg.hidden = static_cast<nn::Activation>(hidden);
  cfg.output = static_cast<nn::Activation>(output);
  nn::Mlp net(cfg, /*seed=*/0);
  const linalg::Vector params = r.vec();
  if (params.size() != net.parameterCount())
    r.fail("parameter count " + std::to_string(params.size()) +
           " does not match the declared shape (" +
           std::to_string(net.parameterCount()) + ")");
  requireFinite(r, params, "network parameters");
  net.setParameters(params);
  return net;
}

void writeAdam(SectionWriter& w, const nn::AdamOptimizer& opt) {
  w.i64(opt.stepCount());
  w.vec(opt.firstMoments());
  w.vec(opt.secondMoments());
}

void readAdam(SectionReader& r, nn::AdamOptimizer& opt,
              std::size_t expectedParams) {
  const std::int64_t t = r.i64();
  linalg::Vector m = r.vec();
  linalg::Vector v = r.vec();
  if (m.size() != v.size()) r.fail("Adam moment vectors disagree in size");
  if (t < 0) r.fail("negative Adam step count");
  if (expectedParams != 0 && !m.empty() && m.size() != expectedParams)
    r.fail("Adam moment length " + std::to_string(m.size()) +
           " does not match the network's " +
           std::to_string(expectedParams) + " parameters");
  requireFinite(r, m, "Adam first moments");
  requireFinite(r, v, "Adam second moments");
  opt.restoreState(static_cast<long>(t), std::move(m), std::move(v));
}

void writeStandardizer(SectionWriter& w, const nn::Standardizer& s) {
  w.vec(s.mean());
  w.vec(s.std());
}

void readStandardizer(SectionReader& r, nn::Standardizer& s) {
  linalg::Vector mean = r.vec();
  linalg::Vector std = r.vec();
  if (mean.size() != std.size())
    r.fail("standardizer mean/std disagree in size");
  s.set(std::move(mean), std::move(std));
}

void writeRng(SectionWriter& w, const std::mt19937_64& rng) {
  std::ostringstream os;
  // Classic locale, always: a grouping global locale (common in GUI/EDA
  // embeddings) would render the state words with thousands separators and
  // break the format's locale-independent byte contract.
  os.imbue(std::locale::classic());
  os << rng;
  w.str(os.str());
}

void readRng(SectionReader& r, std::mt19937_64& rng) {
  std::istringstream is(r.str());
  is.imbue(std::locale::classic());
  is >> rng;
  if (!is) r.fail("unparsable mt19937_64 state");
}

void writeEvalResult(SectionWriter& w, const core::EvalResult& e) {
  w.boolean(e.ok);
  w.vec(e.measurements);
  w.u8(static_cast<std::uint8_t>(e.failure));
}

core::EvalResult readEvalResult(SectionReader& r) {
  core::EvalResult e;
  e.ok = r.boolean();
  e.measurements = r.vec();
  // The fault taxonomy arrived with format version 2; version-1 files could
  // only hold clean results, which kNone states exactly.
  if (r.version() >= 2) {
    const std::uint8_t failure = r.u8();
    if (failure > static_cast<std::uint8_t>(sim::FaultClass::kNonFinite))
      r.fail("unknown fault class " + std::to_string(failure));
    e.failure = static_cast<sim::FaultClass>(failure);
  }
  return e;
}

void writeDataset(SectionWriter& w, const core::LocalDataset& d) {
  w.u64(d.size());
  for (std::size_t i = 0; i < d.size(); ++i) {
    w.vec(d.inputs()[i]);
    w.vec(d.targets()[i]);
  }
}

void readDataset(SectionReader& r, core::LocalDataset& d) {
  d.clear();
  const std::uint64_t n = r.u64();
  for (std::uint64_t i = 0; i < n; ++i) {
    linalg::Vector in = r.vec();
    linalg::Vector out = r.vec();
    d.add(std::move(in), std::move(out));
  }
}

void writeSurrogate(SectionWriter& w, const core::SpiceSurrogate& s) {
  writeMlp(w, s.network());
  writeAdam(w, s.optimizer());
  writeStandardizer(w, s.inputScaler());
  writeStandardizer(w, s.outputScaler());
  w.u64(s.sampleCount());
  for (std::size_t i = 0; i < s.sampleCount(); ++i) {
    w.vec(s.sampleInputs()[i]);
    w.vec(s.sampleTargets()[i]);
  }
}

void readSurrogate(SectionReader& r, core::SpiceSurrogate& s) {
  nn::Mlp net = readMlp(r);
  if (net.inputDim() != s.network().inputDim() ||
      net.outputDim() != s.network().outputDim())
    r.fail("surrogate shape mismatch: checkpoint is " +
           std::to_string(net.inputDim()) + "->" +
           std::to_string(net.outputDim()) + ", target is " +
           std::to_string(s.network().inputDim()) + "->" +
           std::to_string(s.network().outputDim()));
  s.network() = std::move(net);
  readAdam(r, s.optimizer(), s.network().parameterCount());
  readStandardizer(r, s.inputScaler());
  readStandardizer(r, s.outputScaler());
  const std::uint64_t n = r.u64();
  std::vector<linalg::Vector> inputs;
  std::vector<linalg::Vector> targets;
  inputs.reserve(n);
  targets.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    inputs.push_back(r.vec());
    targets.push_back(r.vec());
  }
  s.setData(std::move(inputs), std::move(targets));
}

void writeLedger(SectionWriter& w, const pvt::EdaLedger& ledger) {
  w.u64(ledger.totalBlocks());
  for (const pvt::EdaBlock& b : ledger.blocks()) {
    w.u64(b.cornerIndex);
    w.u8(static_cast<std::uint8_t>(b.kind));
    w.boolean(b.meetsSpec);
    w.boolean(b.cached);
    w.boolean(b.failed);
    w.u32(b.retries);
    w.u32(b.backoff);
  }
}

void readLedger(SectionReader& r, pvt::EdaLedger& ledger) {
  const std::uint64_t n = r.u64();
  std::vector<pvt::EdaBlock> blocks;
  blocks.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    pvt::EdaBlock b;
    b.cornerIndex = r.u64();
    const std::uint8_t kind = r.u8();
    if (kind > 1) r.fail("unknown EDA block kind");
    b.kind = static_cast<pvt::BlockKind>(kind);
    b.meetsSpec = r.boolean();
    b.cached = r.boolean();
    // Fault accounting arrived with format version 2; older timelines can
    // only have recorded fault-free blocks.
    if (r.version() >= 2) {
      b.failed = r.boolean();
      b.retries = r.u32();
      b.backoff = r.u32();
      if (b.failed && b.cached) r.fail("EDA block is both cached and failed");
    }
    blocks.push_back(b);
  }
  ledger.restoreBlocks(std::move(blocks));
}

}  // namespace trdse::io
