// Section-level serializers for the repo's stateful components.
//
// Each write*/read* pair encodes one component into / out of a checkpoint
// section (see io/checkpoint.hpp for the container). Readers throw
// CheckpointError on any malformed field — shape mismatches, non-finite
// network parameters, out-of-range enums — so a restore either reproduces the
// saved state bit-exactly or fails with a descriptive message.
//
// RNG streams travel as the textual state std::mt19937_64 defines for its
// stream operators: portable across platforms and bit-exact, which is what
// makes resumed searches reproduce uninterrupted ones bitwise.
#pragma once

#include <random>

#include "core/local_dataset.hpp"
#include "core/problem.hpp"
#include "core/surrogate.hpp"
#include "io/checkpoint.hpp"
#include "nn/mlp.hpp"
#include "nn/optimizer.hpp"
#include "nn/scaler.hpp"
#include "pvt/ledger.hpp"

namespace trdse::io {

/// Encode a network: shape, activations, flat parameters.
void writeMlp(SectionWriter& w, const nn::Mlp& net);
/// Decode a network written by writeMlp; rejects shape garbage and
/// non-finite parameters.
nn::Mlp readMlp(SectionReader& r);

/// Encode Adam state (step count + both moment vectors).
void writeAdam(SectionWriter& w, const nn::AdamOptimizer& opt);
/// Decode Adam state written by writeAdam into `opt`. Rejects non-finite
/// moments; when `expectedParams` is non-zero the moment vectors must be
/// empty (freshly reset) or exactly that long — a silent size mismatch would
/// make AdamOptimizer::step discard the restored state.
void readAdam(SectionReader& r, nn::AdamOptimizer& opt,
              std::size_t expectedParams = 0);

/// Encode fitted standardizer statistics (mean/std, possibly empty).
void writeStandardizer(SectionWriter& w, const nn::Standardizer& s);
/// Decode statistics written by writeStandardizer into `s`.
void readStandardizer(SectionReader& r, nn::Standardizer& s);

/// Encode an RNG stream's exact position (textual engine state).
void writeRng(SectionWriter& w, const std::mt19937_64& rng);
/// Decode a stream written by writeRng into `rng`.
void readRng(SectionReader& r, std::mt19937_64& rng);

/// Encode one evaluation result (ok flag + measurement vector).
void writeEvalResult(SectionWriter& w, const core::EvalResult& e);
/// Decode a result written by writeEvalResult.
core::EvalResult readEvalResult(SectionReader& r);

/// Encode a trajectory dataset (paired unit-space inputs and measurements).
void writeDataset(SectionWriter& w, const core::LocalDataset& d);
/// Decode a dataset written by writeDataset into `d` (replacing contents).
void readDataset(SectionReader& r, core::LocalDataset& d);

/// Encode a surrogate's full training state: network, Adam moments, both
/// scalers, and the currently-loaded training pairs.
void writeSurrogate(SectionWriter& w, const core::SpiceSurrogate& s);
/// Decode state written by writeSurrogate into an already-constructed
/// surrogate of the same input/output shape (throws on shape mismatch).
void readSurrogate(SectionReader& r, core::SpiceSurrogate& s);

/// Encode the EDA-block timeline.
void writeLedger(SectionWriter& w, const pvt::EdaLedger& ledger);
/// Decode a timeline written by writeLedger into `ledger`.
void readLedger(SectionReader& r, pvt::EdaLedger& ledger);

}  // namespace trdse::io
