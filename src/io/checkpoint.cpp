#include "io/checkpoint.hpp"

#include <bit>
#include <cstdio>
#include <fstream>
#include <sstream>

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <unistd.h>
#endif

namespace trdse::io {

namespace {

/// Best-effort fsync of a path (file or directory) so the atomic-rename
/// checkpoint update survives power loss, not just process death. No-op on
/// platforms without POSIX fsync.
void syncPath(const std::string& path) {
#if defined(__unix__) || defined(__APPLE__)
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd >= 0) {
    ::fsync(fd);
    ::close(fd);
  }
#else
  (void)path;
#endif
}

constexpr std::uint32_t kMagic = 0x4B434454;  // "TDCK" little-endian

// Hard bounds on length prefixes: a corrupted length must fail with a
// descriptive error, not an allocation of the corrupted value.
constexpr std::uint64_t kMaxElements = 1ull << 32;
constexpr std::uint64_t kMaxStringBytes = 1ull << 32;

void appendU32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i)
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
}

void appendU64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i)
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
}

std::uint32_t parseU32(const char* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i)
    v |= static_cast<std::uint32_t>(static_cast<unsigned char>(p[i])) << (8 * i);
  return v;
}

std::uint64_t parseU64(const char* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i)
    v |= static_cast<std::uint64_t>(static_cast<unsigned char>(p[i])) << (8 * i);
  return v;
}

}  // namespace

std::uint64_t fnv1a64(const char* data, std::size_t n) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= static_cast<unsigned char>(data[i]);
    h *= 0x100000001b3ull;
  }
  return h;
}

// ---- SectionWriter --------------------------------------------------------

void SectionWriter::u32(std::uint32_t v) { appendU32(buf_, v); }

void SectionWriter::u64(std::uint64_t v) { appendU64(buf_, v); }

void SectionWriter::f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }

void SectionWriter::str(const std::string& s) {
  u64(s.size());
  buf_.append(s);
}

void SectionWriter::vec(const linalg::Vector& v) {
  u64(v.size());
  for (const double x : v) f64(x);
}

void SectionWriter::indexVec(const std::vector<std::size_t>& v) {
  u64(v.size());
  for (const std::size_t x : v) u64(x);
}

// ---- SectionReader --------------------------------------------------------

void SectionReader::need(std::size_t n) const {
  if (bytes_.size() - pos_ < n)
    fail("truncated: needed " + std::to_string(n) + " more bytes, " +
         std::to_string(bytes_.size() - pos_) + " remain");
}

void SectionReader::fail(const std::string& what) const {
  throw CheckpointError("checkpoint section '" + name_ + "': " + what);
}

std::uint8_t SectionReader::u8() {
  need(1);
  return static_cast<std::uint8_t>(bytes_[pos_++]);
}

bool SectionReader::boolean() {
  const std::uint8_t v = u8();
  if (v > 1) fail("invalid boolean byte " + std::to_string(v));
  return v == 1;
}

std::uint32_t SectionReader::u32() {
  need(4);
  const std::uint32_t v = parseU32(bytes_.data() + pos_);
  pos_ += 4;
  return v;
}

std::uint64_t SectionReader::u64() {
  need(8);
  const std::uint64_t v = parseU64(bytes_.data() + pos_);
  pos_ += 8;
  return v;
}

double SectionReader::f64() { return std::bit_cast<double>(u64()); }

std::string SectionReader::str() {
  const std::uint64_t n = u64();
  if (n > kMaxStringBytes) fail("string length " + std::to_string(n) +
                                " exceeds sanity bound");
  need(n);
  std::string s(bytes_.data() + pos_, n);
  pos_ += n;
  return s;
}

std::string SectionReader::raw(std::size_t n) {
  need(n);
  std::string s(bytes_.data() + pos_, n);
  pos_ += n;
  return s;
}

linalg::Vector SectionReader::vec() {
  const std::uint64_t n = u64();
  if (n > kMaxElements) fail("vector length " + std::to_string(n) +
                             " exceeds sanity bound");
  need(n * 8);
  linalg::Vector v(n);
  for (auto& x : v) x = f64();
  return v;
}

std::vector<std::size_t> SectionReader::indexVec() {
  const std::uint64_t n = u64();
  if (n > kMaxElements) fail("index-vector length " + std::to_string(n) +
                             " exceeds sanity bound");
  need(n * 8);
  std::vector<std::size_t> v(n);
  for (auto& x : v) x = u64();
  return v;
}

void SectionReader::expectEnd() const {
  if (remaining() != 0)
    throw CheckpointError("checkpoint section '" + name_ + "': " +
                          std::to_string(remaining()) +
                          " unread trailing bytes (format mismatch)");
}

// ---- CheckpointWriter -----------------------------------------------------

SectionWriter& CheckpointWriter::section(const std::string& name) {
  for (auto& [n, w] : sections_)
    if (n == name) return w;
  sections_.emplace_back(name, SectionWriter{});
  return sections_.back().second;
}

std::string CheckpointWriter::finish() const {
  // Body: kind, section table, payloads. Checksummed as one unit so any
  // bit flip below the header is caught before state is trusted.
  std::string body;
  appendU64(body, kind_.size());
  body.append(kind_);
  appendU32(body, static_cast<std::uint32_t>(sections_.size()));
  for (const auto& [name, w] : sections_) {
    appendU64(body, name.size());
    body.append(name);
    appendU64(body, w.bytes().size());
  }
  for (const auto& [name, w] : sections_) body.append(w.bytes());

  std::string out;
  appendU32(out, kMagic);
  appendU32(out, kCheckpointFormatVersion);
  appendU64(out, fnv1a64(body.data(), body.size()));
  out.append(body);
  return out;
}

void CheckpointWriter::writeFile(const std::string& path) const {
  // Write-to-temp + rename so the update is atomic: the periodic
  // auto-checkpoint overwrites one path, and a crash mid-write must leave
  // the previous good snapshot intact (that crash is exactly the scenario
  // checkpoints exist for).
  const std::string tmp = path + ".tmp";
  {
    std::ofstream f(tmp, std::ios::binary | std::ios::trunc);
    if (!f)
      throw CheckpointError("cannot create checkpoint file '" + tmp + "'");
    const std::string blob = finish();
    f.write(blob.data(), static_cast<std::streamsize>(blob.size()));
    f.flush();
    if (!f)
      throw CheckpointError("short write to checkpoint file '" + tmp + "'");
  }
  // Data blocks must hit disk before the rename becomes visible, or a power
  // loss could persist the rename ahead of the data and destroy both the new
  // and the previous snapshot.
  syncPath(tmp);
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw CheckpointError("cannot move checkpoint into place at '" + path +
                          "'");
  }
  const std::size_t slash = path.find_last_of('/');
  syncPath(slash == std::string::npos ? "." : path.substr(0, slash + 1));
}

// ---- CheckpointReader -----------------------------------------------------

CheckpointReader::CheckpointReader(std::string source, const std::string& blob)
    : source_(std::move(source)) {
  const auto fail = [&](const std::string& what) -> void {
    throw CheckpointError("checkpoint '" + source_ + "': " + what);
  };
  if (blob.size() < 16) fail("truncated header (" +
                             std::to_string(blob.size()) + " bytes)");
  if (parseU32(blob.data()) != kMagic)
    fail("bad magic — not a TDCK checkpoint file");
  version_ = parseU32(blob.data() + 4);
  if (version_ == 0 || version_ > kCheckpointFormatVersion)
    fail("unsupported format version " + std::to_string(version_) +
         " (this build reads versions 1.." +
         std::to_string(kCheckpointFormatVersion) + ")");
  const std::uint64_t checksum = parseU64(blob.data() + 8);
  const char* body = blob.data() + 16;
  const std::size_t bodySize = blob.size() - 16;
  if (fnv1a64(body, bodySize) != checksum)
    fail("body checksum mismatch — file is corrupt or truncated");

  // Parse the checksummed body with a SectionReader for bounds safety.
  const std::string bodyBytes(body, bodySize);
  SectionReader r("header", bodyBytes);
  try {
    kind_ = r.str();
    const std::uint32_t count = r.u32();
    std::vector<std::pair<std::string, std::uint64_t>> table;
    table.reserve(count);
    for (std::uint32_t i = 0; i < count; ++i) {
      std::string name = r.str();
      const std::uint64_t size = r.u64();
      table.emplace_back(std::move(name), size);
    }
    for (const auto& [name, size] : table) {
      std::string payload = r.raw(size);
      if (!sections_.emplace(name, std::move(payload)).second)
        fail("duplicate section '" + name + "'");
    }
    r.expectEnd();
  } catch (const CheckpointError& e) {
    fail(std::string("malformed body: ") + e.what());
  }
}

CheckpointReader CheckpointReader::fromFile(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f)
    throw CheckpointError("cannot open checkpoint file '" + path + "'");
  std::ostringstream ss;
  ss << f.rdbuf();
  return CheckpointReader(path, ss.str());
}

void CheckpointReader::expectKind(const std::string& kind) const {
  if (kind_ != kind)
    throw CheckpointError("checkpoint '" + source_ + "' holds a '" + kind_ +
                          "' snapshot, expected '" + kind + "'");
}

bool CheckpointReader::hasSection(const std::string& name) const {
  return sections_.count(name) != 0;
}

SectionReader CheckpointReader::section(const std::string& name) const {
  const auto it = sections_.find(name);
  if (it == sections_.end())
    throw CheckpointError("checkpoint '" + source_ + "': missing section '" +
                          name + "'");
  return SectionReader(name, it->second, version_);
}

}  // namespace trdse::io
