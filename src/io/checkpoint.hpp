// Versioned binary checkpoint container (the `.ckpt` format).
//
// Every durable artifact in the repo — mid-run PvtSearch / SizingSession
// state, RL trainer snapshots, process-porting donor weights — is one file in
// this container format:
//
//   [u32 magic "TDCK"] [u32 format version] [u64 FNV-1a checksum of body]
//   body := [kind string] [u32 section count]
//           { [name string] [u64 size] [payload bytes] } per section
//
// All integers are little-endian by construction (byte-shift encoding, never
// memcpy of host representations) and doubles travel as the little-endian
// bytes of their IEEE-754 bit pattern, so files are endian-stable and
// bit-exact across machines: restoring a checkpoint reproduces every weight,
// moment and RNG stream bitwise. The `kind` string identifies what produced
// the file ("pvt-search", "rl-trainer", ...) so restoring into the wrong
// consumer fails with a descriptive error instead of garbage state.
//
// Error handling is exception-based: every malformed input — bad magic,
// unsupported future version, truncation, checksum mismatch, missing or
// undersized section — throws CheckpointError with a message naming the file
// and the violated invariant.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

#include "linalg/matrix.hpp"

namespace trdse::io {

/// Thrown on any malformed checkpoint: bad magic, version from the future,
/// truncated payload, checksum mismatch, missing section, or a section field
/// that fails validation on read.
class CheckpointError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Newest container format this build writes (and the newest it can read;
/// older versions remain readable per the compat rules in
/// docs/CHECKPOINTS.md). Version history:
///   1 — PR 4 original layout.
///   2 — fault-tolerance fields: EvalResult carries a FaultClass byte,
///       EdaBlock carries failed/retries/backoff, EvalStats carries the
///       attempt/failure/backoff counters. Version-1 files load with those
///       fields defaulted to "no faults", which is exactly what pre-fault
///       builds could have recorded.
inline constexpr std::uint32_t kCheckpointFormatVersion = 2;

/// Append-only encoder for one section's payload. All write methods encode
/// little-endian regardless of host byte order.
class SectionWriter {
 public:
  /// One unsigned byte.
  void u8(std::uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  /// Bool as one byte (0/1).
  void boolean(bool v) { u8(v ? 1 : 0); }
  /// 32-bit unsigned, little-endian.
  void u32(std::uint32_t v);
  /// 64-bit unsigned, little-endian.
  void u64(std::uint64_t v);
  /// 64-bit signed (two's complement bits via u64).
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  /// IEEE-754 double as its little-endian bit pattern (bit-exact round trip).
  void f64(double v);
  /// Length-prefixed byte string.
  void str(const std::string& s);
  /// Length-prefixed vector of f64.
  void vec(const linalg::Vector& v);
  /// Length-prefixed vector of u64 (grid indices, counters).
  void indexVec(const std::vector<std::size_t>& v);

  /// Encoded payload so far.
  const std::string& bytes() const { return buf_; }

 private:
  std::string buf_;
};

/// Cursor over one section's payload. Every read method throws
/// CheckpointError (naming the section) when the remaining bytes are too few
/// — a truncated file can never be silently misread as valid state.
class SectionReader {
 public:
  /// Wrap a payload; `name` labels error messages. `version` is the container
  /// format version the payload was written under (CheckpointReader passes it
  /// through), letting section decoders branch on layout changes.
  SectionReader(std::string name, const std::string& bytes,
                std::uint32_t version = kCheckpointFormatVersion)
      : name_(std::move(name)), bytes_(bytes), version_(version) {}

  /// Container format version of the file this section came from.
  std::uint32_t version() const { return version_; }

  /// One unsigned byte.
  std::uint8_t u8();
  /// Bool from one byte; throws on values other than 0/1.
  bool boolean();
  /// 32-bit unsigned, little-endian.
  std::uint32_t u32();
  /// 64-bit unsigned, little-endian.
  std::uint64_t u64();
  /// 64-bit signed.
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  /// IEEE-754 double from its little-endian bit pattern.
  double f64();
  /// Length-prefixed byte string.
  std::string str();
  /// Exactly `n` raw bytes.
  std::string raw(std::size_t n);
  /// Length-prefixed vector of f64.
  linalg::Vector vec();
  /// Length-prefixed vector of u64.
  std::vector<std::size_t> indexVec();

  /// Bytes not yet consumed.
  std::size_t remaining() const { return bytes_.size() - pos_; }
  /// Throw CheckpointError unless the section was consumed exactly.
  void expectEnd() const;
  /// Throw a CheckpointError naming this section.
  [[noreturn]] void fail(const std::string& what) const;

 private:
  void need(std::size_t n) const;

  std::string name_;
  const std::string& bytes_;
  std::uint32_t version_ = kCheckpointFormatVersion;
  std::size_t pos_ = 0;
};

/// Assembles a checkpoint file: named sections built through SectionWriter,
/// finalized with header, section table and body checksum.
class CheckpointWriter {
 public:
  /// @param kind  producer tag checked on restore (e.g. "pvt-search").
  explicit CheckpointWriter(std::string kind) : kind_(std::move(kind)) {}

  /// Start (or continue) the named section. Sections are emitted in first-use
  /// order; reusing a name appends to the existing section. The returned
  /// reference stays valid for the writer's lifetime (deque-backed), so
  /// callers may interleave writes to several open sections.
  SectionWriter& section(const std::string& name);

  /// Serialize header + table + payloads; the blob is the on-disk format.
  std::string finish() const;

  /// finish() to a temp file, then atomically rename onto `path` — a crash
  /// mid-write leaves any previous checkpoint at `path` intact. Throws
  /// CheckpointError when the file cannot be created or fully written.
  void writeFile(const std::string& path) const;

 private:
  std::string kind_;
  /// deque, not vector: section() hands out references that must survive
  /// later insertions.
  std::deque<std::pair<std::string, SectionWriter>> sections_;
};

/// Parses and validates a checkpoint blob (magic, version, checksum, section
/// table) and hands out SectionReaders.
class CheckpointReader {
 public:
  /// Parse a blob; `source` labels error messages (usually the path).
  /// Throws CheckpointError on any structural problem.
  CheckpointReader(std::string source, const std::string& blob);

  /// Read and parse a file; throws CheckpointError when missing/unreadable.
  static CheckpointReader fromFile(const std::string& path);

  /// Producer tag recorded at save time.
  const std::string& kind() const { return kind_; }
  /// Format version recorded in the header.
  std::uint32_t version() const { return version_; }
  /// Throw unless kind() matches (error names both kinds and the source).
  void expectKind(const std::string& kind) const;

  /// Whether the named section exists.
  bool hasSection(const std::string& name) const;
  /// Cursor over the named section; throws CheckpointError when absent.
  SectionReader section(const std::string& name) const;

 private:
  std::string source_;
  std::string kind_;
  std::uint32_t version_ = 0;
  std::map<std::string, std::string> sections_;
};

/// FNV-1a 64-bit hash (the body checksum).
std::uint64_t fnv1a64(const char* data, std::size_t n);

}  // namespace trdse::io
