// Fixed-size worker pool for coarse-grained task parallelism: PVT corner
// evaluations, Monte Carlo mismatch/yield sampling, and any other
// embarrassingly-parallel sweep over independent SPICE evaluations.
//
// Design notes for determinism:
//  - A pool of size <= 1 executes every task inline on the calling thread,
//    so serial configurations stay bitwise identical to the pre-pool code.
//  - parallelFor() indexes tasks, so callers write results into per-index
//    slots and merge them in index order afterwards; outcomes then do not
//    depend on thread count or scheduling.
//  - Randomized workloads should derive one RNG stream per task index
//    (see perTaskSeed) instead of sharing a generator across tasks.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace trdse::common {

class ThreadPool {
 public:
  /// `threads == 0` uses std::thread::hardware_concurrency(); `threads == 1`
  /// creates no workers (inline execution).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of worker threads (0 means inline execution).
  std::size_t workerCount() const { return workers_.size(); }

  /// Run fn(i) for every i in [0, count) and block until all complete. The
  /// calling thread participates, so the pool is never idle-waiting. The
  /// first exception thrown by any task is rethrown here after completion.
  void parallelFor(std::size_t count,
                   const std::function<void(std::size_t)>& fn);

 private:
  void workerLoop();
  void enqueue(std::function<void()> job);

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> jobs_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

/// A well-mixed 64-bit seed for task `index` of a run seeded with `base` —
/// SplitMix64 finalizer, so adjacent indices land far apart in seed space.
/// Gives every Monte Carlo task its own RNG stream: results are then
/// independent of how tasks are scheduled across threads.
std::uint64_t perTaskSeed(std::uint64_t base, std::uint64_t index);

}  // namespace trdse::common
