#include "common/thread_pool.hpp"

#include <atomic>
#include <exception>

namespace trdse::common {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::thread::hardware_concurrency();
    if (threads == 0) threads = 1;
  }
  if (threads <= 1) return;  // inline mode
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { workerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::workerLoop() {
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !jobs_.empty(); });
      if (jobs_.empty()) return;  // stopping and drained
      job = std::move(jobs_.front());
      jobs_.pop_front();
    }
    job();
  }
}

void ThreadPool::enqueue(std::function<void()> job) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    jobs_.push_back(std::move(job));
  }
  cv_.notify_one();
}

void ThreadPool::parallelFor(std::size_t count,
                             const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;
  if (workers_.empty() || count == 1) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }

  struct Shared {
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> done{0};
    std::size_t participants = 0;
    std::mutex mutex;
    std::condition_variable cv;
    std::exception_ptr error;
  };
  auto shared = std::make_shared<Shared>();
  const std::size_t helpers = std::min(workers_.size(), count - 1);
  shared->participants = helpers + 1;  // workers plus the calling thread

  auto body = [shared, &fn, count] {
    for (std::size_t i; (i = shared->next.fetch_add(1)) < count;) {
      try {
        fn(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(shared->mutex);
        if (!shared->error) shared->error = std::current_exception();
      }
    }
    if (shared->done.fetch_add(1) + 1 == shared->participants) {
      std::lock_guard<std::mutex> lock(shared->mutex);
      shared->cv.notify_all();
    }
  };

  for (std::size_t h = 0; h < helpers; ++h) enqueue(body);
  body();  // the caller works too

  std::unique_lock<std::mutex> lock(shared->mutex);
  shared->cv.wait(lock, [&] {
    return shared->done.load() == shared->participants;
  });
  if (shared->error) std::rethrow_exception(shared->error);
}

std::uint64_t perTaskSeed(std::uint64_t base, std::uint64_t index) {
  // SplitMix64 finalizer over base + golden-ratio stride.
  std::uint64_t z = base + 0x9E3779B97F4A7C15ULL * (index + 1);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

}  // namespace trdse::common
