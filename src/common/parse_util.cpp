#include "common/parse_util.hpp"

#include <stdexcept>

namespace trdse::common {

namespace {

[[noreturn]] void fail(const std::string& context, const char* expected,
                       const std::string& value) {
  throw std::invalid_argument(context + ": expected " + expected + ", got \"" +
                              value + "\"");
}

}  // namespace

std::uint64_t parseU64(const std::string& context, const std::string& value) {
  // stoull silently wraps negative input ("-1" -> 2^64-1); reject it first.
  if (value.empty() || value[0] == '-' || value[0] == '+')
    fail(context, "an unsigned integer", value);
  try {
    std::size_t pos = 0;
    const unsigned long long v = std::stoull(value, &pos);
    if (pos != value.size()) fail(context, "an unsigned integer", value);
    return v;
  } catch (const std::invalid_argument&) {
    fail(context, "an unsigned integer", value);
  } catch (const std::out_of_range&) {
    fail(context, "an unsigned integer in range", value);
  }
}

double parseF64(const std::string& context, const std::string& value) {
  try {
    std::size_t pos = 0;
    const double v = std::stod(value, &pos);
    if (pos != value.size()) fail(context, "a number", value);
    return v;
  } catch (const std::invalid_argument&) {
    fail(context, "a number", value);
  } catch (const std::out_of_range&) {
    fail(context, "a number in range", value);
  }
}

bool parseBool(const std::string& context, const std::string& value) {
  if (value == "1" || value == "true" || value == "on") return true;
  if (value == "0" || value == "false" || value == "off") return false;
  fail(context, "a boolean (0/1/true/false/on/off)", value);
}

std::string ArgCursor::take() {
  if (done())
    throw std::invalid_argument("ArgCursor: no arguments left");
  return argv_[pos_++];
}

bool ArgCursor::flag(const std::string& name) {
  if (done() || name != argv_[pos_]) return false;
  ++pos_;
  return true;
}

bool ArgCursor::option(const std::string& name, std::string& out) {
  if (done() || name != argv_[pos_]) return false;
  if (pos_ + 1 >= argc_)
    throw std::invalid_argument(name + ": missing value");
  out = argv_[pos_ + 1];
  pos_ += 2;
  return true;
}

bool ArgCursor::optionU64(const std::string& name, std::uint64_t& out) {
  std::string value;
  if (!option(name, value)) return false;
  out = parseU64(name, value);
  return true;
}

}  // namespace trdse::common
