// Strict scalar parsing shared by every string-driven configuration surface
// (scenario files, strategy option maps, CLI flags). "Strict" means the whole
// token must parse — trailing junk, empty strings, negative values sneaking
// into unsigned fields, and unrecognized booleans all throw
// std::invalid_argument with the caller's context prefixed, instead of
// silently wrapping or defaulting the way raw strtol/stoull do.
#pragma once

#include <cstdint>
#include <string>

namespace trdse::common {

/// Whole-token unsigned integer; `context` names the offending key/flag in
/// the error (e.g. "strategy option \"budget\"").
std::uint64_t parseU64(const std::string& context, const std::string& value);

/// Whole-token double.
double parseF64(const std::string& context, const std::string& value);

/// Accepts 1/0, true/false, on/off.
bool parseBool(const std::string& context, const std::string& value);

}  // namespace trdse::common
