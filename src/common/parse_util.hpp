// Strict scalar parsing shared by every string-driven configuration surface
// (scenario files, strategy option maps, CLI flags). "Strict" means the whole
// token must parse — trailing junk, empty strings, negative values sneaking
// into unsigned fields, and unrecognized booleans all throw
// std::invalid_argument with the caller's context prefixed, instead of
// silently wrapping or defaulting the way raw strtol/stoull do.
#pragma once

#include <cstdint>
#include <string>

namespace trdse::common {

/// Whole-token unsigned integer; `context` names the offending key/flag in
/// the error (e.g. "strategy option \"budget\"").
std::uint64_t parseU64(const std::string& context, const std::string& value);

/// Whole-token double.
double parseF64(const std::string& context, const std::string& value);

/// Accepts 1/0, true/false, on/off.
bool parseBool(const std::string& context, const std::string& value);

/// Cursor-style argv walker shared by every trdse subcommand (tools/trdse).
///
/// Subcommands loop `while (!args.done())`, testing each position with
/// flag()/option()/optionU64() and falling through to take() for
/// positionals. Missing option values and malformed numbers throw
/// std::invalid_argument naming the flag — the same strictness contract as
/// the scalar parsers above — so every subcommand reports flag errors
/// identically.
class ArgCursor {
 public:
  /// Walk argv[start..argc).
  ArgCursor(int argc, char* const* argv, int start = 1)
      : argc_(argc), argv_(argv), pos_(start) {}

  /// No arguments left.
  bool done() const { return pos_ >= argc_; }
  /// Current argument without consuming it ("" when done).
  std::string peek() const { return done() ? "" : argv_[pos_]; }
  /// Consume and return the current argument.
  std::string take();

  /// If the current argument is exactly `name`, consume it.
  bool flag(const std::string& name);
  /// If the current argument is exactly `name`, consume it plus its value
  /// into `out`; throws std::invalid_argument when the value is missing.
  bool option(const std::string& name, std::string& out);
  /// option() + strict parseU64 of the value.
  bool optionU64(const std::string& name, std::uint64_t& out);

 private:
  int argc_;
  char* const* argv_;
  int pos_;
};

}  // namespace trdse::common
