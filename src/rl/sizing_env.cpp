#include "rl/sizing_env.hpp"

#include <algorithm>

#include "io/state_io.hpp"

namespace trdse::rl {

SizingEnv::SizingEnv(const core::SizingProblem& problem, EnvConfig config,
                     std::uint64_t seed)
    : problem_(problem),
      config_(config),
      value_(problem.measurementNames, problem.specs),
      rng_(seed) {
  assert(!problem.corners.empty());
  // Single-corner engine (Table I is single-PVT); evaluations are inline —
  // parallelism across environments lives in the rollout collector. Ledger
  // recording defaults off (see EnvConfig::recordLedger); spec satisfaction
  // is judged from the reward path.
  eval::EvalEngineConfig engineCfg;
  engineCfg.cacheEvals = config.cacheEvals;
  engineCfg.threads = 1;
  engineCfg.recordLedger = config.recordLedger;
  engine_ = std::make_unique<eval::EvalEngine>(
      std::make_shared<eval::CallbackBackend>(problem.evaluate,
                                              "env:" + problem.name),
      problem.space, std::vector<sim::PvtCorner>{problem.corners.front()},
      eval::makeMeetsSpec(value_), engineCfg);
}

std::size_t SizingEnv::observationDim() const {
  return problem_.space.dim() + 2 * problem_.specs.size();
}

void SizingEnv::simulateCurrent() {
  sizes_ = problem_.space.fromIndices(indices_);
  const core::EvalResult r =
      engine_->evalOne(0, sizes_, pvt::BlockKind::kSearch);
  ++sims_;
  currentOk_ = r.ok;
  if (r.ok) {
    scores_ = value_.perSpecScores(r.measurements);
    currentValue_ = value_(r.measurements);
  } else {
    scores_.assign(problem_.specs.size(), config_.failedSimScore);
    currentValue_ = config_.failedSimScore *
                    static_cast<double>(problem_.specs.size());
  }
}

linalg::Vector SizingEnv::makeObservation() const {
  linalg::Vector obs;
  obs.reserve(observationDim());
  const linalg::Vector unit = problem_.space.toUnit(sizes_);
  obs.insert(obs.end(), unit.begin(), unit.end());
  for (double s : scores_) obs.push_back(std::clamp(s, -1.0, 0.0));
  // Normalized targets: constant in a fixed-spec experiment but kept for
  // parity with AutoCkt's observation (which carries the sampled target).
  for (const auto& spec : problem_.specs)
    obs.push_back(std::tanh(spec.limit / (std::abs(spec.limit) + 1.0)));
  return obs;
}

linalg::Vector SizingEnv::reset() {
  indices_.resize(problem_.space.dim());
  for (std::size_t d = 0; d < indices_.size(); ++d) {
    std::uniform_int_distribution<std::size_t> dist(
        0, problem_.space.param(d).steps - 1);
    indices_[d] = dist(rng_);
  }
  stepsInEpisode_ = 0;
  simulateCurrent();
  return makeObservation();
}

StepResult SizingEnv::step(const std::vector<std::size_t>& actions) {
  assert(actions.size() == problem_.space.dim());
  for (std::size_t d = 0; d < actions.size(); ++d) {
    const std::size_t steps = problem_.space.param(d).steps;
    const long stride = std::max<long>(
        1, static_cast<long>(steps / config_.strideDivisor));
    long idx = static_cast<long>(indices_[d]);
    if (actions[d] == 0) idx -= stride;
    if (actions[d] == 2) idx += stride;
    indices_[d] = static_cast<std::size_t>(
        std::clamp<long>(idx, 0, static_cast<long>(steps) - 1));
  }
  simulateCurrent();
  ++stepsInEpisode_;

  StepResult r;
  r.solved = currentOk_ && currentValue_ >= 0.0;
  r.reward = currentValue_ + (r.solved ? config_.solveBonus : 0.0);
  r.done = r.solved || stepsInEpisode_ >= config_.episodeLength;
  r.observation = makeObservation();
  if (r.solved && simsAtFirstSolve_ == 0) simsAtFirstSolve_ = sims_;
  return r;
}

void SizingEnv::saveState(io::SectionWriter& w) const {
  io::writeRng(w, rng_);
  w.indexVec(indices_);
  w.vec(sizes_);
  w.vec(linalg::Vector(scores_.begin(), scores_.end()));
  w.f64(currentValue_);
  w.boolean(currentOk_);
  w.u64(stepsInEpisode_);
  w.u64(sims_);
  w.u64(simsAtFirstSolve_);
  engine_->saveState(w);
}

void SizingEnv::restoreState(io::SectionReader& r) {
  io::readRng(r, rng_);
  indices_ = r.indexVec();
  if (indices_.size() != problem_.space.dim())
    r.fail("environment grid position dimensionality mismatch");
  for (std::size_t d = 0; d < indices_.size(); ++d)
    if (indices_[d] >= problem_.space.param(d).steps)
      r.fail("environment grid index out of range");
  sizes_ = r.vec();
  if (sizes_.size() != problem_.space.dim())
    r.fail("environment sizing dimensionality mismatch");
  const linalg::Vector scores = r.vec();
  // Empty = saved before the first reset; anything else must match the spec
  // table (scores feed the observation vector the policy net consumes).
  if (!scores.empty() && scores.size() != problem_.specs.size())
    r.fail("environment per-spec score count does not match the spec table");
  scores_.assign(scores.begin(), scores.end());
  currentValue_ = r.f64();
  currentOk_ = r.boolean();
  stepsInEpisode_ = r.u64();
  sims_ = r.u64();
  simsAtFirstSolve_ = r.u64();
  engine_->restoreState(r);
}

}  // namespace trdse::rl
