// AutoCkt-style sizing environment for the model-free baselines (Table I).
//
// Observation = [unit-space parameter position | per-spec normalized scores
// of the current point | per-spec normalized targets], matching AutoCkt's
// observation design as the paper prescribes for its A2C/PPO/TRPO baselines.
// Action = one of {decrement, hold, increment} per parameter on the discrete
// grid (multi-discrete). Reward = the same Value function as the model-based
// agent, plus a solve bonus; an episode ends on success or after a fixed
// horizon.
#pragma once

#include <memory>
#include <random>

#include "core/problem.hpp"
#include "core/value.hpp"
#include "eval/eval_engine.hpp"

namespace trdse::io {
class SectionReader;
class SectionWriter;
}  // namespace trdse::io

namespace trdse::rl {

/// Environment shaping parameters.
struct EnvConfig {
  std::size_t episodeLength = 50;  ///< steps before a forced episode end
  std::size_t strideDivisor = 16;  ///< per-move stride = max(1, steps/divisor)
  double solveBonus = 10.0;        ///< reward bonus at a satisfying design
  double failedSimScore = -1.0;  ///< per-spec score when simulation fails
  /// Memoize evaluations on grid indices through the eval engine. RL
  /// episodes revisit stride-lattice states constantly, so hits are frequent;
  /// rewards/observations (and simulationsUsed, which counts logical
  /// requests) are bitwise identical with the cache on or off.
  bool cacheEvals = true;
  /// Record an EdaBlock per step in the engine ledger. Off by default: a
  /// training run takes tens of thousands of steps and the trainers consume
  /// only the stats counters. The orchestrator's rl_policy strategy turns it
  /// on so RL jobs produce the same block-level accounting as every other
  /// strategy.
  bool recordLedger = false;
};

/// What one environment step returns.
struct StepResult {
  linalg::Vector observation;  ///< observation after the move
  double reward = 0.0;         ///< Value-based reward (+ solve bonus)
  bool done = false;           ///< episode ended (solved or out of steps)
  bool solved = false;         ///< the design met every spec
};

/// The AutoCkt-style multi-discrete sizing environment.
class SizingEnv {
 public:
  /// Uses the problem's first corner only (Table I is single-PVT).
  SizingEnv(const core::SizingProblem& problem, EnvConfig config,
            std::uint64_t seed);

  /// Observation vector length (params + 2 * specs).
  std::size_t observationDim() const;
  /// One categorical head per sizing parameter.
  std::size_t actionHeads() const { return problem_.space.dim(); }
  /// Sub-actions per head: decrement / hold / increment.
  static constexpr std::size_t kActionsPerHead = 3;

  /// Jump to a random grid point and start a new episode (one simulation).
  linalg::Vector reset();
  /// Apply one move per parameter and simulate the new point.
  StepResult step(const std::vector<std::size_t>& actions);

  /// Logical SPICE requests since construction (the Table I budget); cache
  /// hits count here but consume no EDA time (see evalStats().simulated).
  std::size_t simulationsUsed() const { return sims_; }
  /// Engine counters: real simulations vs memo hits, backend timing.
  const eval::EvalStats& evalStats() const { return engine_->stats(); }
  /// The engine every step routes through (shared-cache attachment, ledger
  /// inspection — see opt::Strategy / rl::RlPolicyStrategy).
  eval::EvalEngine& engine() { return *engine_; }
  const eval::EvalEngine& engine() const { return *engine_; }
  /// Simulation count at the first solved step (0 when never solved).
  std::size_t simsAtFirstSolve() const { return simsAtFirstSolve_; }

  /// Raw (non-unit) sizing at the current grid position.
  const linalg::Vector& currentSizes() const { return sizes_; }

  /// Serialize the full environment state — grid position, episode
  /// counters, RNG stream, eval-engine memo and stats — into a checkpoint
  /// section (see docs/CHECKPOINTS.md).
  void saveState(io::SectionWriter& w) const;
  /// Restore state written by saveState; subsequent steps continue the
  /// interrupted trajectory bitwise. Throws io::CheckpointError on
  /// malformed input or a grid-shape mismatch.
  void restoreState(io::SectionReader& r);

 private:
  linalg::Vector makeObservation() const;
  void simulateCurrent();

  const core::SizingProblem& problem_;
  EnvConfig config_;
  core::ValueFunction value_;
  /// Single-corner engine over the problem's evaluator (unique_ptr keeps the
  /// env movable; the engine owns a thread pool and is immovable itself).
  std::unique_ptr<eval::EvalEngine> engine_;
  std::mt19937_64 rng_;

  std::vector<std::size_t> indices_;  // grid position
  linalg::Vector sizes_;
  std::vector<double> scores_;  // per-spec normalized scores at current point
  double currentValue_ = 0.0;
  bool currentOk_ = false;
  std::size_t stepsInEpisode_ = 0;
  std::size_t sims_ = 0;
  std::size_t simsAtFirstSolve_ = 0;
};

}  // namespace trdse::rl
