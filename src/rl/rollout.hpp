// Rollout storage and generalized advantage estimation shared by the
// model-free baselines.
#pragma once

#include <vector>

#include "linalg/matrix.hpp"

namespace trdse::rl {

struct Transition {
  linalg::Vector observation;
  std::vector<std::size_t> actions;
  double reward = 0.0;
  double valueEstimate = 0.0;
  double logProb = 0.0;
  bool done = false;
};

struct RolloutBuffer {
  std::vector<Transition> transitions;
  /// Value estimate of the state after the last transition (0 when done).
  double bootstrapValue = 0.0;

  std::size_t size() const { return transitions.size(); }
  void clear() { transitions.clear(); }
};

struct AdvantageResult {
  std::vector<double> advantages;  ///< GAE(lambda)
  std::vector<double> returns;     ///< advantages + value estimates
};

/// Standard GAE over possibly multiple episodes (done flags reset the tail).
AdvantageResult computeGae(const RolloutBuffer& buffer, double gamma,
                           double lambda);

/// In-place standardization of advantages (zero mean, unit variance).
void normalizeAdvantages(std::vector<double>& adv);

}  // namespace trdse::rl
