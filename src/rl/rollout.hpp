// Rollout storage, generalized advantage estimation, and the flattened
// update-ready view shared by the model-free baselines (A2C / PPO / TRPO).
#pragma once

#include <vector>

#include "linalg/matrix.hpp"

namespace trdse::rl {

/// One environment step as recorded during rollout collection.
struct Transition {
  linalg::Vector observation;        ///< observation the action was taken from
  std::vector<std::size_t> actions;  ///< one sub-action per parameter head
  double reward = 0.0;               ///< reward received for the step
  double valueEstimate = 0.0;        ///< critic value of `observation`
  double logProb = 0.0;              ///< behavior-policy joint log pi(a|s)
  bool done = false;                 ///< episode ended after this step
};

/// Trajectory fragment collected from a single environment.
struct RolloutBuffer {
  /// Transitions in collection order (may span multiple episodes).
  std::vector<Transition> transitions;
  /// Value estimate of the state after the last transition (0 when done).
  double bootstrapValue = 0.0;

  /// Number of stored transitions.
  std::size_t size() const { return transitions.size(); }
  /// Drop all transitions and reset the bootstrap value.
  void clear() {
    transitions.clear();
    bootstrapValue = 0.0;
  }
};

/// Advantage estimates aligned with a rollout's transitions.
struct AdvantageResult {
  std::vector<double> advantages;  ///< GAE(lambda)
  std::vector<double> returns;     ///< advantages + value estimates
};

/// Standard GAE over possibly multiple episodes (done flags reset the tail).
AdvantageResult computeGae(const RolloutBuffer& buffer, double gamma,
                           double lambda);

/// In-place standardization of advantages (zero mean, unit variance).
void normalizeAdvantages(std::vector<double>& adv);

/// Update-ready flattened view of one or more per-environment rollouts:
/// observations as one batch matrix, plus parallel per-transition arrays.
/// Row/index t of every member refers to the same transition.
struct FlatRollout {
  linalg::Matrix observations;                    ///< T x obsDim batch matrix
  std::vector<std::vector<std::size_t>> actions;  ///< per-head sub-actions
  linalg::Vector logProbs;                        ///< behavior-policy log pi
  std::vector<double> advantages;                 ///< normalized GAE(lambda)
  std::vector<double> returns;                    ///< GAE + value estimates

  /// Number of flattened transitions.
  std::size_t size() const { return actions.size(); }
};

/// Flatten per-environment rollouts into update-ready arrays: GAE runs per
/// environment against that environment's own bootstrap value, fragments are
/// concatenated in environment order (so the result is independent of how
/// collection was scheduled across threads), and advantages are normalized
/// jointly over the concatenation. For a single environment this reproduces
/// computeGae + normalizeAdvantages bitwise.
FlatRollout flattenRollouts(const std::vector<RolloutBuffer>& buffers,
                            double gamma, double lambda);

}  // namespace trdse::rl
