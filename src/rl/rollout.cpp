#include "rl/rollout.hpp"

#include <cmath>

namespace trdse::rl {

AdvantageResult computeGae(const RolloutBuffer& buffer, double gamma,
                           double lambda) {
  const std::size_t n = buffer.size();
  AdvantageResult r;
  r.advantages.assign(n, 0.0);
  r.returns.assign(n, 0.0);
  double gae = 0.0;
  double nextValue = buffer.bootstrapValue;
  for (std::size_t ii = n; ii-- > 0;) {
    const Transition& t = buffer.transitions[ii];
    const double mask = t.done ? 0.0 : 1.0;
    const double delta = t.reward + gamma * nextValue * mask - t.valueEstimate;
    gae = delta + gamma * lambda * mask * gae;
    r.advantages[ii] = gae;
    r.returns[ii] = gae + t.valueEstimate;
    nextValue = t.valueEstimate;
  }
  return r;
}

void normalizeAdvantages(std::vector<double>& adv) {
  if (adv.size() < 2) return;
  double mean = 0.0;
  for (double a : adv) mean += a;
  mean /= static_cast<double>(adv.size());
  double var = 0.0;
  for (double a : adv) var += (a - mean) * (a - mean);
  var /= static_cast<double>(adv.size());
  const double std = std::sqrt(var) + 1e-8;
  for (double& a : adv) a = (a - mean) / std;
}

}  // namespace trdse::rl
