#include "rl/rollout.hpp"

#include <algorithm>
#include <cassert>

#include "linalg/stats.hpp"

namespace trdse::rl {

AdvantageResult computeGae(const RolloutBuffer& buffer, double gamma,
                           double lambda) {
  const std::size_t n = buffer.size();
  std::vector<double> rewards(n);
  std::vector<double> values(n);
  std::vector<unsigned char> done(n);
  for (std::size_t i = 0; i < n; ++i) {
    const Transition& t = buffer.transitions[i];
    rewards[i] = t.reward;
    values[i] = t.valueEstimate;
    done[i] = t.done ? 1 : 0;
  }
  AdvantageResult r;
  linalg::gaeScan(rewards, values, done, buffer.bootstrapValue, gamma, lambda,
                  r.advantages, r.returns);
  return r;
}

void normalizeAdvantages(std::vector<double>& adv) {
  linalg::standardizeInPlace(adv, 1e-8);
}

FlatRollout flattenRollouts(const std::vector<RolloutBuffer>& buffers,
                            double gamma, double lambda) {
  FlatRollout flat;
  std::size_t total = 0;
  std::size_t obsDim = 0;
  for (const RolloutBuffer& b : buffers) {
    total += b.size();
    if (obsDim == 0 && !b.transitions.empty())
      obsDim = b.transitions.front().observation.size();
  }
  flat.observations.resize(total, obsDim);
  flat.actions.reserve(total);
  flat.logProbs.reserve(total);
  flat.advantages.reserve(total);
  flat.returns.reserve(total);

  for (const RolloutBuffer& b : buffers) {
    if (b.transitions.empty()) continue;
    const AdvantageResult adv = computeGae(b, gamma, lambda);
    for (std::size_t i = 0; i < b.size(); ++i) {
      const Transition& t = b.transitions[i];
      assert(t.observation.size() == obsDim);
      const std::size_t row = flat.actions.size();
      std::copy(t.observation.begin(), t.observation.end(),
                flat.observations.row(row));
      flat.actions.push_back(t.actions);
      flat.logProbs.push_back(t.logProb);
      flat.advantages.push_back(adv.advantages[i]);
      flat.returns.push_back(adv.returns[i]);
    }
  }
  normalizeAdvantages(flat.advantages);
  return flat;
}

}  // namespace trdse::rl
