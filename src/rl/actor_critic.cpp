#include "rl/actor_critic.hpp"

#include <cassert>
#include <cmath>

namespace trdse::rl {

linalg::Vector headLogits(const linalg::Vector& logits, std::size_t head,
                          std::size_t actionsPerHead) {
  linalg::Vector h(actionsPerHead);
  for (std::size_t a = 0; a < actionsPerHead; ++a)
    h[a] = logits[head * actionsPerHead + a];
  return h;
}

PolicySample samplePolicy(const nn::Mlp& policy, const linalg::Vector& obs,
                          std::size_t heads, std::size_t actionsPerHead,
                          std::mt19937_64& rng) {
  const linalg::Vector logits = policy.predict(obs);
  assert(logits.size() == heads * actionsPerHead);
  PolicySample s;
  s.actions.resize(heads);
  for (std::size_t h = 0; h < heads; ++h) {
    const linalg::Vector hl = headLogits(logits, h, actionsPerHead);
    s.actions[h] = nn::sampleCategorical(hl, rng);
    s.logProb += nn::logSoftmax(hl)[s.actions[h]];
    s.entropy += nn::categoricalEntropy(hl);
  }
  return s;
}

std::vector<std::size_t> greedyPolicy(const nn::Mlp& policy,
                                      const linalg::Vector& obs,
                                      std::size_t heads,
                                      std::size_t actionsPerHead) {
  const linalg::Vector logits = policy.predict(obs);
  std::vector<std::size_t> actions(heads);
  for (std::size_t h = 0; h < heads; ++h)
    actions[h] = nn::argmaxIndex(headLogits(logits, h, actionsPerHead));
  return actions;
}

double jointLogProb(const linalg::Vector& logits,
                    const std::vector<std::size_t>& actions,
                    std::size_t actionsPerHead) {
  double lp = 0.0;
  for (std::size_t h = 0; h < actions.size(); ++h)
    lp += nn::logSoftmax(headLogits(logits, h, actionsPerHead))[actions[h]];
  return lp;
}

double jointEntropy(const linalg::Vector& logits, std::size_t actionsPerHead) {
  const std::size_t heads = logits.size() / actionsPerHead;
  double e = 0.0;
  for (std::size_t h = 0; h < heads; ++h)
    e += nn::categoricalEntropy(headLogits(logits, h, actionsPerHead));
  return e;
}

linalg::Vector jointLogProbGrad(const linalg::Vector& logits,
                                const std::vector<std::size_t>& actions,
                                std::size_t actionsPerHead) {
  linalg::Vector g(logits.size(), 0.0);
  for (std::size_t h = 0; h < actions.size(); ++h) {
    const linalg::Vector hg =
        nn::logProbGrad(headLogits(logits, h, actionsPerHead), actions[h]);
    for (std::size_t a = 0; a < actionsPerHead; ++a)
      g[h * actionsPerHead + a] = hg[a];
  }
  return g;
}

linalg::Vector jointEntropyGrad(const linalg::Vector& logits,
                                std::size_t actionsPerHead) {
  // dH/dlogit_i = -p_i * (log p_i + H) for each head independently.
  const std::size_t heads = logits.size() / actionsPerHead;
  linalg::Vector g(logits.size(), 0.0);
  for (std::size_t h = 0; h < heads; ++h) {
    const linalg::Vector hl = headLogits(logits, h, actionsPerHead);
    const linalg::Vector lp = nn::logSoftmax(hl);
    double ent = 0.0;
    for (double v : lp) ent -= std::exp(v) * v;
    for (std::size_t a = 0; a < actionsPerHead; ++a) {
      const double p = std::exp(lp[a]);
      g[h * actionsPerHead + a] = -p * (lp[a] + ent);
    }
  }
  return g;
}

double jointKl(const linalg::Vector& oldLogits, const linalg::Vector& newLogits,
               std::size_t actionsPerHead) {
  assert(oldLogits.size() == newLogits.size());
  const std::size_t heads = oldLogits.size() / actionsPerHead;
  double kl = 0.0;
  for (std::size_t h = 0; h < heads; ++h)
    kl += nn::categoricalKl(headLogits(oldLogits, h, actionsPerHead),
                            headLogits(newLogits, h, actionsPerHead));
  return kl;
}

linalg::Vector jointKlGrad(const linalg::Vector& oldLogits,
                           const linalg::Vector& newLogits,
                           std::size_t actionsPerHead) {
  assert(oldLogits.size() == newLogits.size());
  const std::size_t heads = oldLogits.size() / actionsPerHead;
  linalg::Vector g(newLogits.size(), 0.0);
  for (std::size_t h = 0; h < heads; ++h) {
    const linalg::Vector pNew =
        nn::softmax(headLogits(newLogits, h, actionsPerHead));
    const linalg::Vector pOld =
        nn::softmax(headLogits(oldLogits, h, actionsPerHead));
    for (std::size_t a = 0; a < actionsPerHead; ++a)
      g[h * actionsPerHead + a] = pNew[a] - pOld[a];
  }
  return g;
}

nn::Mlp makePolicyNet(std::size_t obsDim, std::size_t heads,
                      std::size_t actionsPerHead, std::size_t hidden,
                      std::uint64_t seed) {
  nn::MlpConfig cfg;
  cfg.layerSizes = {obsDim, hidden, hidden, heads * actionsPerHead};
  cfg.hidden = nn::Activation::kTanh;
  cfg.output = nn::Activation::kIdentity;
  return nn::Mlp(cfg, seed);
}

nn::Mlp makeValueNet(std::size_t obsDim, std::size_t hidden, std::uint64_t seed) {
  nn::MlpConfig cfg;
  cfg.layerSizes = {obsDim, hidden, hidden, 1};
  cfg.hidden = nn::Activation::kTanh;
  cfg.output = nn::Activation::kIdentity;
  return nn::Mlp(cfg, seed);
}

}  // namespace trdse::rl
