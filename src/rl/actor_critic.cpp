#include "rl/actor_critic.hpp"

#include <cassert>
#include <cmath>

namespace trdse::rl {

linalg::Vector headLogits(const linalg::Vector& logits, std::size_t head,
                          std::size_t actionsPerHead) {
  linalg::Vector h(actionsPerHead);
  for (std::size_t a = 0; a < actionsPerHead; ++a)
    h[a] = logits[head * actionsPerHead + a];
  return h;
}

PolicySample samplePolicy(const nn::Mlp& policy, const linalg::Vector& obs,
                          std::size_t heads, std::size_t actionsPerHead,
                          std::mt19937_64& rng) {
  const linalg::Vector logits = policy.predict(obs);
  assert(logits.size() == heads * actionsPerHead);
  PolicySample s;
  s.actions.resize(heads);
  for (std::size_t h = 0; h < heads; ++h) {
    const linalg::Vector hl = headLogits(logits, h, actionsPerHead);
    s.actions[h] = nn::sampleCategorical(hl, rng);
    s.logProb += nn::logSoftmax(hl)[s.actions[h]];
    s.entropy += nn::categoricalEntropy(hl);
  }
  return s;
}

std::vector<std::size_t> greedyPolicy(const nn::Mlp& policy,
                                      const linalg::Vector& obs,
                                      std::size_t heads,
                                      std::size_t actionsPerHead) {
  const linalg::Vector logits = policy.predict(obs);
  std::vector<std::size_t> actions(heads);
  for (std::size_t h = 0; h < heads; ++h)
    actions[h] = nn::argmaxIndex(headLogits(logits, h, actionsPerHead));
  return actions;
}

double jointLogProb(const linalg::Vector& logits,
                    const std::vector<std::size_t>& actions,
                    std::size_t actionsPerHead) {
  double lp = 0.0;
  for (std::size_t h = 0; h < actions.size(); ++h)
    lp += nn::logSoftmax(headLogits(logits, h, actionsPerHead))[actions[h]];
  return lp;
}

double jointEntropy(const linalg::Vector& logits, std::size_t actionsPerHead) {
  const std::size_t heads = logits.size() / actionsPerHead;
  double e = 0.0;
  for (std::size_t h = 0; h < heads; ++h)
    e += nn::categoricalEntropy(headLogits(logits, h, actionsPerHead));
  return e;
}

linalg::Vector jointLogProbGrad(const linalg::Vector& logits,
                                const std::vector<std::size_t>& actions,
                                std::size_t actionsPerHead) {
  linalg::Vector g(logits.size(), 0.0);
  for (std::size_t h = 0; h < actions.size(); ++h) {
    const linalg::Vector hg =
        nn::logProbGrad(headLogits(logits, h, actionsPerHead), actions[h]);
    for (std::size_t a = 0; a < actionsPerHead; ++a)
      g[h * actionsPerHead + a] = hg[a];
  }
  return g;
}

linalg::Vector jointEntropyGrad(const linalg::Vector& logits,
                                std::size_t actionsPerHead) {
  // dH/dlogit_i = -p_i * (log p_i + H) for each head independently.
  const std::size_t heads = logits.size() / actionsPerHead;
  linalg::Vector g(logits.size(), 0.0);
  for (std::size_t h = 0; h < heads; ++h) {
    const linalg::Vector hl = headLogits(logits, h, actionsPerHead);
    const linalg::Vector lp = nn::logSoftmax(hl);
    double ent = 0.0;
    for (double v : lp) ent -= std::exp(v) * v;
    for (std::size_t a = 0; a < actionsPerHead; ++a) {
      const double p = std::exp(lp[a]);
      g[h * actionsPerHead + a] = -p * (lp[a] + ent);
    }
  }
  return g;
}

double jointKl(const linalg::Vector& oldLogits, const linalg::Vector& newLogits,
               std::size_t actionsPerHead) {
  assert(oldLogits.size() == newLogits.size());
  const std::size_t heads = oldLogits.size() / actionsPerHead;
  double kl = 0.0;
  for (std::size_t h = 0; h < heads; ++h)
    kl += nn::categoricalKl(headLogits(oldLogits, h, actionsPerHead),
                            headLogits(newLogits, h, actionsPerHead));
  return kl;
}

linalg::Vector jointKlGrad(const linalg::Vector& oldLogits,
                           const linalg::Vector& newLogits,
                           std::size_t actionsPerHead) {
  assert(oldLogits.size() == newLogits.size());
  const std::size_t heads = oldLogits.size() / actionsPerHead;
  linalg::Vector g(newLogits.size(), 0.0);
  for (std::size_t h = 0; h < heads; ++h) {
    const linalg::Vector pNew =
        nn::softmax(headLogits(newLogits, h, actionsPerHead));
    const linalg::Vector pOld =
        nn::softmax(headLogits(oldLogits, h, actionsPerHead));
    for (std::size_t a = 0; a < actionsPerHead; ++a)
      g[h * actionsPerHead + a] = pNew[a] - pOld[a];
  }
  return g;
}

void jointLogProbRowsFromTable(
    const linalg::Matrix& logSoftmaxTable,
    const std::vector<std::vector<std::size_t>>& actions,
    std::size_t actionsPerHead, linalg::Vector& out) {
  assert(actions.size() == logSoftmaxTable.rows());
  out.assign(logSoftmaxTable.rows(), 0.0);
  for (std::size_t r = 0; r < logSoftmaxTable.rows(); ++r) {
    const double* lpr = logSoftmaxTable.row(r);
    double s = 0.0;
    for (std::size_t h = 0; h < actions[r].size(); ++h)
      s += lpr[h * actionsPerHead + actions[r][h]];
    out[r] = s;
  }
}

void jointLogProbGradRowsFromTable(
    const linalg::Matrix& softmaxTable,
    const std::vector<std::vector<std::size_t>>& actions,
    std::size_t actionsPerHead, linalg::Matrix& out) {
  assert(actions.size() == softmaxTable.rows());
  out.resize(softmaxTable.rows(), softmaxTable.cols());
  for (std::size_t r = 0; r < out.rows(); ++r) {
    const double* p = softmaxTable.row(r);
    double* g = out.row(r);
    for (std::size_t i = 0; i < out.cols(); ++i) g[i] = -p[i];
    for (std::size_t h = 0; h < actions[r].size(); ++h)
      g[h * actionsPerHead + actions[r][h]] += 1.0;
  }
}

void jointEntropyGradRowsFromTable(const linalg::Matrix& logSoftmaxTable,
                                   std::size_t actionsPerHead,
                                   linalg::Matrix& out) {
  out.resize(logSoftmaxTable.rows(), logSoftmaxTable.cols());
  const std::size_t heads = logSoftmaxTable.cols() / actionsPerHead;
  // exp(lp) appears in both the entropy sum and the gradient; computing it
  // once per element is bitwise-safe (same input -> same exp value).
  std::vector<double> p(actionsPerHead);
  for (std::size_t r = 0; r < logSoftmaxTable.rows(); ++r) {
    const double* lpr = logSoftmaxTable.row(r);
    double* g = out.row(r);
    for (std::size_t h = 0; h < heads; ++h) {
      const double* hl = lpr + h * actionsPerHead;
      double ent = 0.0;
      for (std::size_t a = 0; a < actionsPerHead; ++a) {
        p[a] = std::exp(hl[a]);
        ent -= p[a] * hl[a];
      }
      for (std::size_t a = 0; a < actionsPerHead; ++a)
        g[h * actionsPerHead + a] = -p[a] * (hl[a] + ent);
    }
  }
}

double sumJointKlRowsFromTables(const linalg::Matrix& logSoftmaxOld,
                                const linalg::Matrix& logSoftmaxNew,
                                std::size_t actionsPerHead) {
  assert(logSoftmaxOld.rows() == logSoftmaxNew.rows() &&
         logSoftmaxOld.cols() == logSoftmaxNew.cols());
  const std::size_t heads = logSoftmaxOld.cols() / actionsPerHead;
  double kl = 0.0;
  for (std::size_t r = 0; r < logSoftmaxOld.rows(); ++r) {
    const double* lpr = logSoftmaxOld.row(r);
    const double* lqr = logSoftmaxNew.row(r);
    // Per-head subtotals first, then head-ascending accumulation — the exact
    // association order of jointKl over categoricalKl, so sums stay bitwise
    // identical to the per-sample path.
    double rowKl = 0.0;
    for (std::size_t h = 0; h < heads; ++h) {
      double headKl = 0.0;
      for (std::size_t a = 0; a < actionsPerHead; ++a) {
        const std::size_t i = h * actionsPerHead + a;
        headKl += std::exp(lpr[i]) * (lpr[i] - lqr[i]);
      }
      rowKl += headKl;
    }
    kl += rowKl;
  }
  return kl;
}

void jointKlGradRowsFromTables(const linalg::Matrix& softmaxOld,
                               const linalg::Matrix& softmaxNew,
                               linalg::Matrix& out) {
  assert(softmaxOld.rows() == softmaxNew.rows() &&
         softmaxOld.cols() == softmaxNew.cols());
  out.resize(softmaxNew.rows(), softmaxNew.cols());
  for (std::size_t i = 0; i < out.size(); ++i)
    out.data()[i] = softmaxNew.data()[i] - softmaxOld.data()[i];
}

linalg::Vector jointLogProbRows(
    const linalg::Matrix& logits,
    const std::vector<std::vector<std::size_t>>& actions,
    std::size_t actionsPerHead) {
  linalg::Matrix lp;
  nn::logSoftmaxSegments(logits, actionsPerHead, lp);
  linalg::Vector out;
  jointLogProbRowsFromTable(lp, actions, actionsPerHead, out);
  return out;
}

void jointLogProbGradRows(const linalg::Matrix& logits,
                          const std::vector<std::vector<std::size_t>>& actions,
                          std::size_t actionsPerHead, linalg::Matrix& out) {
  linalg::Matrix p;
  nn::softmaxSegments(logits, actionsPerHead, p);
  jointLogProbGradRowsFromTable(p, actions, actionsPerHead, out);
}

void jointEntropyGradRows(const linalg::Matrix& logits,
                          std::size_t actionsPerHead, linalg::Matrix& out) {
  linalg::Matrix lp;
  nn::logSoftmaxSegments(logits, actionsPerHead, lp);
  jointEntropyGradRowsFromTable(lp, actionsPerHead, out);
}

double sumJointKlRows(const linalg::Matrix& oldLogits,
                      const linalg::Matrix& newLogits,
                      std::size_t actionsPerHead) {
  linalg::Matrix lp;
  linalg::Matrix lq;
  nn::logSoftmaxSegments(oldLogits, actionsPerHead, lp);
  nn::logSoftmaxSegments(newLogits, actionsPerHead, lq);
  return sumJointKlRowsFromTables(lp, lq, actionsPerHead);
}

void jointKlGradRows(const linalg::Matrix& oldLogits,
                     const linalg::Matrix& newLogits,
                     std::size_t actionsPerHead, linalg::Matrix& out) {
  linalg::Matrix pOld;
  linalg::Matrix pNew;
  nn::softmaxSegments(oldLogits, actionsPerHead, pOld);
  nn::softmaxSegments(newLogits, actionsPerHead, pNew);
  jointKlGradRowsFromTables(pOld, pNew, out);
}

nn::Mlp makePolicyNet(std::size_t obsDim, std::size_t heads,
                      std::size_t actionsPerHead, std::size_t hidden,
                      std::uint64_t seed) {
  nn::MlpConfig cfg;
  cfg.layerSizes = {obsDim, hidden, hidden, heads * actionsPerHead};
  cfg.hidden = nn::Activation::kTanh;
  cfg.output = nn::Activation::kIdentity;
  return nn::Mlp(cfg, seed);
}

nn::Mlp makeValueNet(std::size_t obsDim, std::size_t hidden, std::uint64_t seed) {
  nn::MlpConfig cfg;
  cfg.layerSizes = {obsDim, hidden, hidden, 1};
  cfg.hidden = nn::Activation::kTanh;
  cfg.output = nn::Activation::kIdentity;
  return nn::Mlp(cfg, seed);
}

}  // namespace trdse::rl
