#include "rl/checkpoint.hpp"

#include <sstream>

#include "io/checkpoint.hpp"
#include "io/state_io.hpp"

namespace trdse::rl {

std::string trainerFingerprint(const core::SizingProblem& problem,
                               const EnvConfig& env, std::uint64_t seed,
                               const std::string& hyper) {
  std::ostringstream os;
  os.precision(17);
  os << "problem=" << problem.name << " space=";
  for (const auto& p : problem.space.params())
    os << p.name << ":" << p.lo << ":" << p.hi << ":" << p.steps << ":"
       << p.logScale << ";";
  os << " meas=";
  for (const auto& m : problem.measurementNames) os << m << ";";
  os << " specs=";
  for (const auto& s : problem.specs)
    os << s.measurement << (s.kind == core::SpecKind::kAtLeast ? ">=" : "<=")
       << s.limit << ";";
  const sim::PvtCorner& c = problem.corners.front();
  os << " corner=" << static_cast<int>(c.corner) << ":" << c.vdd << ":"
     << c.tempC;
  os << " env=" << env.episodeLength << ":" << env.strideDivisor << ":"
     << env.solveBonus << ":" << env.failedSimScore << ":" << env.cacheEvals;
  os << " seed=" << seed << " " << hyper;
  return os.str();
}

namespace {

constexpr const char* kCheckpointKind = "rl-trainer";

void readNetInto(io::SectionReader& r, nn::Mlp& net, const char* label) {
  nn::Mlp loaded = io::readMlp(r);
  if (loaded.config().layerSizes != net.config().layerSizes)
    r.fail(std::string(label) +
           " network shape does not match this trainer's configuration");
  net = std::move(loaded);
}

}  // namespace

void saveTrainerCheckpoint(const std::string& path, const TrainerState& s) {
  io::CheckpointWriter w(kCheckpointKind);

  io::SectionWriter& mw = w.section("meta");
  mw.str(s.algo);
  mw.str(s.fingerprint);
  mw.u64(s.collector->numEnvs());
  mw.u64(*s.updates);
  mw.f64(*s.bestEpisodeReturn);

  io::writeMlp(w.section("policy"), *s.policy);
  io::writeMlp(w.section("critic"), *s.critic);
  if (s.policyOpt) io::writeAdam(w.section("policy-opt"), *s.policyOpt);
  io::writeAdam(w.section("critic-opt"), *s.criticOpt);
  if (s.shuffleRng) io::writeRng(w.section("shuffle-rng"), *s.shuffleRng);
  s.collector->saveState(w.section("collector"));

  w.writeFile(path);
}

void restoreTrainerCheckpoint(const std::string& path, const TrainerState& s) {
  const io::CheckpointReader r = io::CheckpointReader::fromFile(path);
  r.expectKind(kCheckpointKind);

  io::SectionReader mr = r.section("meta");
  const std::string algo = mr.str();
  if (algo != s.algo)
    mr.fail("checkpoint was written by the '" + algo +
            "' trainer, cannot resume it with '" + s.algo + "'");
  const std::string fingerprint = mr.str();
  if (fingerprint != s.fingerprint)
    mr.fail("trainer fingerprint mismatch — the checkpoint was saved from a "
            "different problem/configuration\n  checkpoint: " + fingerprint +
            "\n  this run:   " + s.fingerprint);
  const std::uint64_t numEnvs = mr.u64();
  if (numEnvs != s.collector->numEnvs())
    mr.fail("checkpoint has " + std::to_string(numEnvs) +
            " environments, this trainer is configured with " +
            std::to_string(s.collector->numEnvs()));
  *s.updates = mr.u64();
  *s.bestEpisodeReturn = mr.f64();
  mr.expectEnd();

  io::SectionReader pr = r.section("policy");
  readNetInto(pr, *s.policy, "policy");
  pr.expectEnd();
  io::SectionReader cr = r.section("critic");
  readNetInto(cr, *s.critic, "critic");
  cr.expectEnd();

  if (s.policyOpt) {
    io::SectionReader por = r.section("policy-opt");
    io::readAdam(por, *s.policyOpt, s.policy->parameterCount());
    por.expectEnd();
  }
  io::SectionReader cor = r.section("critic-opt");
  io::readAdam(cor, *s.criticOpt, s.critic->parameterCount());
  cor.expectEnd();

  if (s.shuffleRng) {
    io::SectionReader srr = r.section("shuffle-rng");
    io::readRng(srr, *s.shuffleRng);
    srr.expectEnd();
  }

  io::SectionReader colr = r.section("collector");
  s.collector->restoreState(colr);
  colr.expectEnd();
}

}  // namespace trdse::rl
