#include "rl/a2c.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "rl/checkpoint.hpp"
#include "rl/vec_env.hpp"

namespace trdse::rl {

void a2cUpdatePerSample(nn::Mlp& policy, nn::Mlp& critic,
                        nn::Optimizer& policyOpt, nn::Optimizer& criticOpt,
                        const FlatRollout& data, const A2cConfig& cfg) {
  const std::size_t n = data.size();
  if (n == 0) return;
  const std::size_t obsDim = data.observations.cols();
  constexpr std::size_t apH = SizingEnv::kActionsPerHead;
  policy.zeroGrad();
  critic.zeroGrad();
  const double invN = 1.0 / static_cast<double>(n);
  linalg::Vector obs(obsDim);
  for (std::size_t i = 0; i < n; ++i) {
    obs.assign(data.observations.row(i), data.observations.row(i) + obsDim);
    // Policy: maximize A*logpi + beta*H  ->  descend on its negation.
    const linalg::Vector logits = policy.forward(obs);
    linalg::Vector g = jointLogProbGrad(logits, data.actions[i], apH);
    const linalg::Vector eg = jointEntropyGrad(logits, apH);
    for (std::size_t k = 0; k < g.size(); ++k)
      g[k] = -(data.advantages[i] * g[k] + cfg.entropyCoeff * eg[k]) * invN;
    policy.backward(g);

    // Critic: MSE to the GAE return.
    const linalg::Vector vp = critic.forward(obs);
    critic.backward({2.0 * (vp[0] - data.returns[i]) * invN});
  }
  nn::clipGradNorm(policy, cfg.maxGradNorm);
  nn::clipGradNorm(critic, cfg.maxGradNorm);
  policyOpt.step(policy);
  criticOpt.step(critic);
}

void a2cUpdateBatched(nn::Mlp& policy, nn::Mlp& critic,
                      nn::Optimizer& policyOpt, nn::Optimizer& criticOpt,
                      const FlatRollout& data, const A2cConfig& cfg) {
  const std::size_t n = data.size();
  if (n == 0) return;
  constexpr std::size_t apH = SizingEnv::kActionsPerHead;
  policy.zeroGrad();
  critic.zeroGrad();
  const double invN = 1.0 / static_cast<double>(n);

  const linalg::Matrix& logits = policy.forwardBatch(data.observations);
  linalg::Matrix sm;
  linalg::Matrix lsm;
  nn::softmaxSegments(logits, apH, sm);
  nn::logSoftmaxSegments(logits, apH, lsm);
  linalg::Matrix g;
  jointLogProbGradRowsFromTable(sm, data.actions, apH, g);
  linalg::Matrix eg;
  jointEntropyGradRowsFromTable(lsm, apH, eg);
  for (std::size_t r = 0; r < n; ++r) {
    double* gr = g.row(r);
    const double* er = eg.row(r);
    for (std::size_t k = 0; k < g.cols(); ++k)
      gr[k] = -(data.advantages[r] * gr[k] + cfg.entropyCoeff * er[k]) * invN;
  }
  policy.backwardBatch(g);

  const linalg::Matrix& vp = critic.forwardBatch(data.observations);
  linalg::Matrix gv(n, 1);
  for (std::size_t r = 0; r < n; ++r)
    gv(r, 0) = 2.0 * (vp(r, 0) - data.returns[r]) * invN;
  critic.backwardBatch(gv);

  nn::clipGradNorm(policy, cfg.maxGradNorm);
  nn::clipGradNorm(critic, cfg.maxGradNorm);
  policyOpt.step(policy);
  criticOpt.step(critic);
}

RlTrainOutcome trainA2c(const core::SizingProblem& problem, const A2cConfig& cfg,
                        std::size_t maxSimulations) {
  if (cfg.checkpointEvery != 0 && cfg.checkpointPath.empty())
    throw std::invalid_argument(
        "A2cConfig::checkpointEvery is set but checkpointPath is empty");
  RlTrainOutcome out;
  ParallelRolloutCollector collector(problem, cfg.env,
                                     std::max<std::size_t>(1, cfg.numEnvs),
                                     cfg.rolloutThreads, cfg.seed,
                                     /*rngSalt=*/7,
                                     /*initialReset=*/cfg.resumeFrom.empty());
  nn::Mlp policy = makePolicyNet(collector.observationDim(),
                                 collector.actionHeads(),
                                 SizingEnv::kActionsPerHead, cfg.hidden,
                                 cfg.seed + 11);
  nn::Mlp critic =
      makeValueNet(collector.observationDim(), cfg.hidden, cfg.seed + 13);
  nn::AdamOptimizer policyOpt(cfg.learningRate);
  nn::AdamOptimizer criticOpt(cfg.valueLearningRate);

  out.bestEpisodeReturn = -1e18;
  std::size_t updates = 0;
  std::ostringstream hyper;
  hyper.precision(17);
  hyper << "a2c nSteps=" << cfg.nSteps << " gamma=" << cfg.gamma
        << " gae=" << cfg.gaeLambda << " lr=" << cfg.learningRate
        << " vlr=" << cfg.valueLearningRate << " ent=" << cfg.entropyCoeff
        << " clip=" << cfg.maxGradNorm << " hidden=" << cfg.hidden
        << " batched=" << cfg.batchedTraining;
  TrainerState snapshot;
  snapshot.algo = "a2c";
  snapshot.fingerprint =
      trainerFingerprint(problem, cfg.env, cfg.seed, hyper.str());
  snapshot.policy = &policy;
  snapshot.critic = &critic;
  snapshot.policyOpt = &policyOpt;
  snapshot.criticOpt = &criticOpt;
  snapshot.collector = &collector;
  snapshot.updates = &updates;
  snapshot.bestEpisodeReturn = &out.bestEpisodeReturn;
  if (!cfg.resumeFrom.empty())
    restoreTrainerCheckpoint(cfg.resumeFrom, snapshot);

  std::vector<RolloutBuffer> buffers;
  while ((cfg.maxUpdates == 0 || updates < cfg.maxUpdates) &&
         collector.totalSimulations() < maxSimulations && !collector.solved()) {
    const CollectStats stats =
        collector.collect(policy, critic, cfg.nSteps, maxSimulations, buffers);
    out.bestEpisodeReturn = std::max(out.bestEpisodeReturn,
                                     stats.bestEpisodeReturn);
    if (stats.anySolved || stats.steps == 0) break;

    const FlatRollout data =
        flattenRollouts(buffers, cfg.gamma, cfg.gaeLambda);
    if (cfg.batchedTraining) {
      a2cUpdateBatched(policy, critic, policyOpt, criticOpt, data, cfg);
    } else {
      a2cUpdatePerSample(policy, critic, policyOpt, criticOpt, data, cfg);
    }
    ++updates;
    if (cfg.checkpointEvery != 0 && !cfg.checkpointPath.empty() &&
        updates % cfg.checkpointEvery == 0)
      saveTrainerCheckpoint(cfg.checkpointPath, snapshot);
  }

  out.totalSimulations = collector.totalSimulations();
  out.solved = collector.solved();
  out.simulationsToSolve =
      out.solved ? collector.simsAtFirstSolve() : collector.totalSimulations();
  return out;
}

}  // namespace trdse::rl
