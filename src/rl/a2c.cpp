#include "rl/a2c.hpp"

#include <algorithm>

#include "nn/optimizer.hpp"

namespace trdse::rl {

RlTrainOutcome trainA2c(const core::SizingProblem& problem, const A2cConfig& cfg,
                        std::size_t maxSimulations) {
  RlTrainOutcome out;
  SizingEnv env(problem, cfg.env, cfg.seed);
  std::mt19937_64 rng(cfg.seed + 7);

  const std::size_t heads = env.actionHeads();
  const std::size_t apH = SizingEnv::kActionsPerHead;
  nn::Mlp policy = makePolicyNet(env.observationDim(), heads, apH, cfg.hidden,
                                 cfg.seed + 11);
  nn::Mlp critic = makeValueNet(env.observationDim(), cfg.hidden, cfg.seed + 13);
  nn::AdamOptimizer policyOpt(cfg.learningRate);
  nn::AdamOptimizer criticOpt(cfg.valueLearningRate);

  linalg::Vector obs = env.reset();
  double episodeReturn = 0.0;
  out.bestEpisodeReturn = -1e18;

  RolloutBuffer buffer;
  while (env.simulationsUsed() < maxSimulations) {
    buffer.clear();
    bool solvedNow = false;
    for (std::size_t s = 0; s < cfg.nSteps && env.simulationsUsed() < maxSimulations;
         ++s) {
      const PolicySample ps = samplePolicy(policy, obs, heads, apH, rng);
      const double v = critic.predict(obs)[0];
      const StepResult sr = env.step(ps.actions);

      Transition t;
      t.observation = obs;
      t.actions = ps.actions;
      t.reward = sr.reward;
      t.valueEstimate = v;
      t.logProb = ps.logProb;
      t.done = sr.done;
      buffer.transitions.push_back(std::move(t));

      episodeReturn += sr.reward;
      obs = sr.observation;
      if (sr.done) {
        out.bestEpisodeReturn = std::max(out.bestEpisodeReturn, episodeReturn);
        episodeReturn = 0.0;
        if (sr.solved) {
          solvedNow = true;
          break;
        }
        obs = env.reset();
      }
    }
    if (solvedNow) {
      out.solved = true;
      break;
    }
    if (buffer.transitions.empty()) break;

    buffer.bootstrapValue =
        buffer.transitions.back().done ? 0.0 : critic.predict(obs)[0];
    AdvantageResult adv = computeGae(buffer, cfg.gamma, cfg.gaeLambda);
    normalizeAdvantages(adv.advantages);

    // One synchronous gradient step over the rollout.
    policy.zeroGrad();
    critic.zeroGrad();
    const double invN = 1.0 / static_cast<double>(buffer.size());
    for (std::size_t i = 0; i < buffer.size(); ++i) {
      const Transition& t = buffer.transitions[i];
      // Policy: maximize A*logpi + beta*H  ->  descend on its negation.
      const linalg::Vector logits = policy.forward(t.observation);
      linalg::Vector g = jointLogProbGrad(logits, t.actions, apH);
      const linalg::Vector eg = jointEntropyGrad(logits, apH);
      for (std::size_t k = 0; k < g.size(); ++k)
        g[k] = -(adv.advantages[i] * g[k] + cfg.entropyCoeff * eg[k]) * invN;
      policy.backward(g);

      // Critic: MSE to the GAE return.
      const linalg::Vector vp = critic.forward(t.observation);
      critic.backward({2.0 * (vp[0] - adv.returns[i]) * invN});
    }
    nn::clipGradNorm(policy, cfg.maxGradNorm);
    nn::clipGradNorm(critic, cfg.maxGradNorm);
    policyOpt.step(policy);
    criticOpt.step(critic);
  }

  out.totalSimulations = env.simulationsUsed();
  out.simulationsToSolve =
      env.simsAtFirstSolve() > 0 ? env.simsAtFirstSolve() : env.simulationsUsed();
  out.solved = env.simsAtFirstSolve() > 0;
  return out;
}

}  // namespace trdse::rl
