#include "rl/vec_env.hpp"

#include <algorithm>
#include <cassert>

#include "io/state_io.hpp"
#include "rl/actor_critic.hpp"

namespace trdse::rl {

ParallelRolloutCollector::ParallelRolloutCollector(
    const core::SizingProblem& problem, const EnvConfig& envConfig,
    std::size_t numEnvs, std::size_t threads, std::uint64_t seed,
    std::uint64_t rngSalt, bool initialReset)
    : pool_(numEnvs <= 1 ? 1 : threads) {
  assert(numEnvs >= 1);
  slots_.reserve(numEnvs);
  for (std::size_t e = 0; e < numEnvs; ++e) {
    // Environment 0 keeps the pre-collector seed derivation so single-env
    // runs reproduce the original serial trainers bitwise; the rest get
    // well-mixed independent streams.
    const std::uint64_t envSeed =
        e == 0 ? seed : common::perTaskSeed(seed, e);
    const std::uint64_t rngSeed =
        e == 0 ? seed + rngSalt : common::perTaskSeed(seed + rngSalt, e);
    slots_.push_back(
        std::make_unique<EnvSlot>(problem, envConfig, envSeed, rngSeed));
  }
  // Initial resets (one simulation each) can fan out like any other round;
  // skipped when a checkpoint restore is about to replace the state anyway.
  if (initialReset)
    pool_.parallelFor(slots_.size(), [&](std::size_t e) {
      slots_[e]->obs = slots_[e]->env.reset();
    });
}

std::size_t ParallelRolloutCollector::observationDim() const {
  return slots_.front()->env.observationDim();
}

std::size_t ParallelRolloutCollector::actionHeads() const {
  return slots_.front()->env.actionHeads();
}

std::size_t ParallelRolloutCollector::totalSimulations() const {
  std::size_t total = 0;
  for (const auto& s : slots_) total += s->env.simulationsUsed();
  return total;
}

CollectStats ParallelRolloutCollector::collect(
    const nn::Mlp& policy, const nn::Mlp& critic, std::size_t stepsPerEnv,
    std::size_t maxTotalSims, std::vector<RolloutBuffer>& buffers) {
  const std::size_t n = slots_.size();
  buffers.resize(n);

  // Deterministic split of the remaining simulation budget: env e may burn
  // floor(remaining / n) simulations, the first (remaining % n) envs one
  // more. Independent of scheduling, and equal to the serial trainer's
  // "stop when simulationsUsed() reaches the budget" rule when n == 1.
  const std::size_t used = totalSimulations();
  const std::size_t remaining = maxTotalSims > used ? maxTotalSims - used : 0;
  const std::size_t base = remaining / n;
  const std::size_t extra = remaining % n;

  const std::size_t heads = actionHeads();
  constexpr std::size_t apH = SizingEnv::kActionsPerHead;
  std::vector<double> bestReturns(n, -1e18);

  pool_.parallelFor(n, [&](std::size_t e) {
    EnvSlot& slot = *slots_[e];
    RolloutBuffer& buf = buffers[e];
    buf.clear();
    const std::size_t allowance = base + (e < extra ? 1 : 0);
    const std::size_t simsAtStart = slot.env.simulationsUsed();
    // An env that solved last round sits on a terminal observation; start it
    // on a fresh episode. The reset is deferred to here (not done at the
    // solve) so a final solving round consumes no extra simulations — the
    // single-env trainers stop there, matching the pre-collector loops.
    if (slot.needsReset && allowance > 0) {
      slot.obs = slot.env.reset();
      slot.needsReset = false;
    }
    for (std::size_t s = 0;
         s < stepsPerEnv &&
         slot.env.simulationsUsed() - simsAtStart < allowance;
         ++s) {
      const PolicySample ps = samplePolicy(policy, slot.obs, heads, apH,
                                           slot.rng);
      const double v = critic.predict(slot.obs)[0];
      const StepResult sr = slot.env.step(ps.actions);

      Transition t;
      t.observation = slot.obs;
      t.actions = ps.actions;
      t.reward = sr.reward;
      t.valueEstimate = v;
      t.logProb = ps.logProb;
      t.done = sr.done;
      buf.transitions.push_back(std::move(t));

      slot.episodeReturn += sr.reward;
      slot.obs = sr.observation;
      if (sr.done) {
        bestReturns[e] = std::max(bestReturns[e], slot.episodeReturn);
        slot.episodeReturn = 0.0;
        if (sr.solved) {
          slot.needsReset = true;
          break;
        }
        slot.obs = slot.env.reset();
      }
    }
    buf.bootstrapValue = (buf.transitions.empty() ||
                          buf.transitions.back().done)
                             ? 0.0
                             : critic.predict(slot.obs)[0];
  });

  CollectStats stats;
  for (std::size_t e = 0; e < n; ++e) {
    stats.steps += buffers[e].size();
    stats.bestEpisodeReturn = std::max(stats.bestEpisodeReturn,
                                       bestReturns[e]);
    if (slots_[e]->env.simsAtFirstSolve() > 0) stats.anySolved = true;
  }
  if (stats.anySolved && solveSims_ == 0) solveSims_ = totalSimulations();
  return stats;
}

void ParallelRolloutCollector::saveState(io::SectionWriter& w) const {
  w.u64(slots_.size());
  for (const auto& s : slots_) {
    s->env.saveState(w);
    io::writeRng(w, s->rng);
    w.vec(s->obs);
    w.f64(s->episodeReturn);
    w.boolean(s->needsReset);
  }
  w.u64(solveSims_);
}

void ParallelRolloutCollector::restoreState(io::SectionReader& r) {
  const std::uint64_t n = r.u64();
  if (n != slots_.size())
    r.fail("checkpoint holds " + std::to_string(n) +
           " environments, this collector has " +
           std::to_string(slots_.size()) +
           " — numEnvs must match to resume");
  for (auto& s : slots_) {
    s->env.restoreState(r);
    io::readRng(r, s->rng);
    s->obs = r.vec();
    s->episodeReturn = r.f64();
    s->needsReset = r.boolean();
  }
  solveSims_ = r.u64();
}

}  // namespace trdse::rl
