// The RL-policy baseline as a schedulable opt::Strategy.
//
// Wraps the AutoCkt-style SizingEnv behind the unified strategy interface: a
// multi-head categorical policy (and scalar critic) rolls episodes on the
// environment, improving itself with synchronous A2C updates every nSteps
// transitions — the same update rule as the Table I A2C baseline trainer,
// repackaged as a budget-sliced, resumable search. Every environment step is
// one logical EvalEngine request, so RL jobs charge EDA blocks through the
// same meter (ledger + EvalStats) as the model-based and BO strategies.
//
// Resumability: all state (env grid position, policy/critic weights, Adam
// moments, rollout buffer, RNG streams) lives in members and advances one
// environment step at a time, so step(k); step(n) == step(n) bitwise.
#pragma once

#include <memory>
#include <random>

#include "nn/optimizer.hpp"
#include "opt/strategy.hpp"
#include "rl/a2c.hpp"
#include "rl/actor_critic.hpp"
#include "rl/rollout.hpp"
#include "rl/sizing_env.hpp"

namespace trdse::rl {

/// Knobs of the policy-driven strategy (a compact slice of A2cConfig plus
/// the environment shaping).
struct RlPolicyConfig {
  std::size_t hidden = 32;     ///< hidden width of policy/critic MLPs
  std::size_t nSteps = 32;     ///< transitions per policy update
  double gamma = 0.99;         ///< discount factor
  double gaeLambda = 0.95;     ///< GAE(lambda) mixing coefficient
  double learningRate = 7e-4;  ///< policy Adam step size
  double valueLearningRate = 7e-4;  ///< critic Adam step size
  double entropyCoeff = 0.01;  ///< entropy-bonus weight
  double maxGradNorm = 0.5;    ///< L2 gradient clip threshold
  /// Learn while searching. Off = pure inference rollouts of the seeded
  /// random-init policy (the untrained-policy ablation).
  bool train = true;
  EnvConfig env;  ///< environment shaping (recordLedger is forced on)
};

/// Policy-gradient search over SizingEnv behind the Strategy contract.
class RlPolicyStrategy final : public opt::Strategy {
 public:
  /// The problem is copied and owned (the env keeps a reference into it).
  /// Uses the problem's first corner, like every Table I baseline.
  RlPolicyStrategy(core::SizingProblem problem, RlPolicyConfig config,
                   std::uint64_t seed, std::size_t budget);

  std::string_view name() const override { return "rl_policy"; }
  std::size_t budget() const override { return budget_; }
  const opt::StrategyOutcome& step(std::size_t target) override;
  const opt::StrategyOutcome& outcome() const override { return result_; }
  bool finished() const override;
  eval::EvalEngine& engine() override { return env_->engine(); }

 private:
  void maybeUpdate(bool episodeEnded);
  const opt::StrategyOutcome& harvest();

  /// Owned copy — env_ holds a reference into it, so the strategy is
  /// neither copyable nor movable (enforced by the Strategy base anyway).
  core::SizingProblem problem_;
  RlPolicyConfig config_;
  A2cConfig updateCfg_;  ///< the slice of config_ the A2C update consumes
  std::unique_ptr<SizingEnv> env_;
  nn::Mlp policy_;
  nn::Mlp critic_;
  nn::AdamOptimizer policyOpt_;
  nn::AdamOptimizer criticOpt_;
  std::mt19937_64 rng_;  ///< action-sampling stream
  std::size_t budget_ = 0;

  // ---- Resumable rollout state ----
  RolloutBuffer buffer_;
  linalg::Vector obs_;
  bool haveObs_ = false;   ///< obs_ is live (episode in progress)
  bool exhausted_ = false; ///< remaining budget cannot afford another step
  opt::StrategyOutcome result_;
};

}  // namespace trdse::rl
