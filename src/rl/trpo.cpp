#include "rl/trpo.hpp"

#include <algorithm>
#include <cmath>

#include "nn/optimizer.hpp"
#include "rl/actor_critic.hpp"
#include "rl/rollout.hpp"

namespace trdse::rl {

namespace {

/// Mean gradient of the surrogate L = E[ratio * A] at theta_old (ratio = 1).
linalg::Vector surrogateGrad(nn::Mlp& policy, const RolloutBuffer& buffer,
                             const std::vector<double>& advantages,
                             std::size_t apH) {
  policy.zeroGrad();
  const double invN = 1.0 / static_cast<double>(buffer.size());
  for (std::size_t i = 0; i < buffer.size(); ++i) {
    const Transition& t = buffer.transitions[i];
    const linalg::Vector logits = policy.forward(t.observation);
    linalg::Vector g = jointLogProbGrad(logits, t.actions, apH);
    // exp(newLp - oldLp) == 1 at theta_old; gradient of ratio*A is A*dlogpi.
    for (double& gv : g) gv *= advantages[i] * invN;
    policy.backward(g);
  }
  return policy.getGradients();
}

/// Mean gradient of KL(old || current) over the rollout states.
linalg::Vector klGrad(nn::Mlp& policy, const RolloutBuffer& buffer,
                      const std::vector<linalg::Vector>& oldLogits,
                      std::size_t apH) {
  policy.zeroGrad();
  const double invN = 1.0 / static_cast<double>(buffer.size());
  for (std::size_t i = 0; i < buffer.size(); ++i) {
    const linalg::Vector logits = policy.forward(buffer.transitions[i].observation);
    linalg::Vector g = jointKlGrad(oldLogits[i], logits, apH);
    for (double& gv : g) gv *= invN;
    policy.backward(g);
  }
  return policy.getGradients();
}

double meanKl(const nn::Mlp& policy, const RolloutBuffer& buffer,
              const std::vector<linalg::Vector>& oldLogits, std::size_t apH) {
  double kl = 0.0;
  for (std::size_t i = 0; i < buffer.size(); ++i)
    kl += jointKl(oldLogits[i],
                  policy.predict(buffer.transitions[i].observation), apH);
  return kl / static_cast<double>(buffer.size());
}

double surrogateValue(const nn::Mlp& policy, const RolloutBuffer& buffer,
                      const std::vector<double>& advantages, std::size_t apH) {
  double s = 0.0;
  for (std::size_t i = 0; i < buffer.size(); ++i) {
    const Transition& t = buffer.transitions[i];
    const double lp =
        jointLogProb(policy.predict(t.observation), t.actions, apH);
    s += std::exp(lp - t.logProb) * advantages[i];
  }
  return s / static_cast<double>(buffer.size());
}

}  // namespace

RlTrainOutcome trainTrpo(const core::SizingProblem& problem,
                         const TrpoConfig& cfg, std::size_t maxSimulations) {
  RlTrainOutcome out;
  SizingEnv env(problem, cfg.env, cfg.seed);
  std::mt19937_64 rng(cfg.seed + 37);

  const std::size_t heads = env.actionHeads();
  const std::size_t apH = SizingEnv::kActionsPerHead;
  nn::Mlp policy = makePolicyNet(env.observationDim(), heads, apH, cfg.hidden,
                                 cfg.seed + 41);
  nn::Mlp critic = makeValueNet(env.observationDim(), cfg.hidden, cfg.seed + 43);
  nn::AdamOptimizer criticOpt(cfg.valueLearningRate);

  linalg::Vector obs = env.reset();
  double episodeReturn = 0.0;
  out.bestEpisodeReturn = -1e18;

  RolloutBuffer buffer;
  while (env.simulationsUsed() < maxSimulations && env.simsAtFirstSolve() == 0) {
    buffer.clear();
    for (std::size_t s = 0;
         s < cfg.horizon && env.simulationsUsed() < maxSimulations; ++s) {
      const PolicySample ps = samplePolicy(policy, obs, heads, apH, rng);
      const double v = critic.predict(obs)[0];
      const StepResult sr = env.step(ps.actions);
      Transition t;
      t.observation = obs;
      t.actions = ps.actions;
      t.reward = sr.reward;
      t.valueEstimate = v;
      t.logProb = ps.logProb;
      t.done = sr.done;
      buffer.transitions.push_back(std::move(t));
      episodeReturn += sr.reward;
      obs = sr.observation;
      if (sr.done) {
        out.bestEpisodeReturn = std::max(out.bestEpisodeReturn, episodeReturn);
        episodeReturn = 0.0;
        if (sr.solved) break;
        obs = env.reset();
      }
    }
    if (env.simsAtFirstSolve() > 0 || buffer.transitions.empty()) break;

    buffer.bootstrapValue =
        buffer.transitions.back().done ? 0.0 : critic.predict(obs)[0];
    AdvantageResult adv = computeGae(buffer, cfg.gamma, cfg.gaeLambda);
    normalizeAdvantages(adv.advantages);

    // Snapshot old policy logits for KL and ratios.
    std::vector<linalg::Vector> oldLogits;
    oldLogits.reserve(buffer.size());
    for (const auto& t : buffer.transitions)
      oldLogits.push_back(policy.predict(t.observation));

    const linalg::Vector g = surrogateGrad(policy, buffer, adv.advantages, apH);
    const double gNorm = linalg::norm2(g);
    if (gNorm < 1e-10) continue;

    // Fisher-vector product via finite difference of the KL gradient around
    // theta_old (where grad KL == 0).
    const linalg::Vector theta0 = policy.getParameters();
    auto fvp = [&](const linalg::Vector& v) {
      constexpr double kEps = 1e-5;
      const double vNorm = linalg::norm2(v);
      if (vNorm < 1e-12) return linalg::scaled(v, cfg.cgDamping);
      policy.setParameters(theta0);
      policy.addToParameters(v, kEps / vNorm);
      linalg::Vector gk = klGrad(policy, buffer, oldLogits, apH);
      policy.setParameters(theta0);
      for (double& x : gk) x *= vNorm / kEps;
      linalg::axpy(cfg.cgDamping, v, gk);
      return gk;
    };

    // Conjugate gradients: solve F x = g.
    linalg::Vector x(g.size(), 0.0);
    linalg::Vector r = g;
    linalg::Vector p = g;
    double rsOld = linalg::dot(r, r);
    for (std::size_t it = 0; it < cfg.cgIterations && rsOld > 1e-12; ++it) {
      const linalg::Vector fp = fvp(p);
      const double alpha = rsOld / std::max(1e-12, linalg::dot(p, fp));
      linalg::axpy(alpha, p, x);
      linalg::axpy(-alpha, fp, r);
      const double rsNew = linalg::dot(r, r);
      const double beta = rsNew / rsOld;
      for (std::size_t i = 0; i < p.size(); ++i) p[i] = r[i] + beta * p[i];
      rsOld = rsNew;
    }

    const double xFx = linalg::dot(x, fvp(x));
    if (xFx <= 1e-12) continue;
    const double stepScale = std::sqrt(2.0 * cfg.maxKl / xFx);

    // Backtracking line search on the true surrogate + KL constraint.
    const double surrogate0 =
        surrogateValue(policy, buffer, adv.advantages, apH);
    double frac = 1.0;
    bool accepted = false;
    for (std::size_t ls = 0; ls < cfg.lineSearchSteps; ++ls, frac *= 0.5) {
      policy.setParameters(theta0);
      policy.addToParameters(x, stepScale * frac);
      const double kl = meanKl(policy, buffer, oldLogits, apH);
      const double surr = surrogateValue(policy, buffer, adv.advantages, apH);
      if (kl <= cfg.maxKl * 1.5 && surr > surrogate0) {
        accepted = true;
        break;
      }
    }
    if (!accepted) policy.setParameters(theta0);

    // Critic regression on the GAE returns.
    for (std::size_t e = 0; e < cfg.valueEpochs; ++e) {
      critic.zeroGrad();
      const double invN = 1.0 / static_cast<double>(buffer.size());
      for (std::size_t i = 0; i < buffer.size(); ++i) {
        const linalg::Vector vp = critic.forward(buffer.transitions[i].observation);
        critic.backward({2.0 * (vp[0] - adv.returns[i]) * invN});
      }
      criticOpt.step(critic);
    }
  }

  out.totalSimulations = env.simulationsUsed();
  out.solved = env.simsAtFirstSolve() > 0;
  out.simulationsToSolve =
      out.solved ? env.simsAtFirstSolve() : env.simulationsUsed();
  return out;
}

}  // namespace trdse::rl
