#include "rl/trpo.hpp"

#include <algorithm>
#include <cmath>
#include <tuple>
#include <sstream>
#include <stdexcept>

#include "rl/actor_critic.hpp"
#include "rl/checkpoint.hpp"
#include "rl/vec_env.hpp"

namespace trdse::rl {

namespace {

constexpr std::size_t kApH = SizingEnv::kActionsPerHead;

linalg::Vector obsRow(const FlatRollout& data, std::size_t i) {
  const double* r = data.observations.row(i);
  return linalg::Vector(r, r + data.observations.cols());
}

// ---- Per-sample (legacy reference) rollout-wide passes ----

/// Mean gradient of the surrogate L = E[ratio * A] at theta_old (ratio = 1).
linalg::Vector surrogateGradPerSample(nn::Mlp& policy, const FlatRollout& data) {
  policy.zeroGrad();
  const double invN = 1.0 / static_cast<double>(data.size());
  for (std::size_t i = 0; i < data.size(); ++i) {
    const linalg::Vector logits = policy.forward(obsRow(data, i));
    linalg::Vector g = jointLogProbGrad(logits, data.actions[i], kApH);
    // exp(newLp - oldLp) == 1 at theta_old; gradient of ratio*A is A*dlogpi.
    for (double& gv : g) gv *= data.advantages[i] * invN;
    policy.backward(g);
  }
  return policy.getGradients();
}

/// Mean gradient of KL(old || current) over the rollout states.
linalg::Vector klGradPerSample(nn::Mlp& policy, const FlatRollout& data,
                               const std::vector<linalg::Vector>& oldLogits) {
  policy.zeroGrad();
  const double invN = 1.0 / static_cast<double>(data.size());
  for (std::size_t i = 0; i < data.size(); ++i) {
    const linalg::Vector logits = policy.forward(obsRow(data, i));
    linalg::Vector g = jointKlGrad(oldLogits[i], logits, kApH);
    for (double& gv : g) gv *= invN;
    policy.backward(g);
  }
  return policy.getGradients();
}

double meanKlPerSample(const nn::Mlp& policy, const FlatRollout& data,
                       const std::vector<linalg::Vector>& oldLogits) {
  double kl = 0.0;
  for (std::size_t i = 0; i < data.size(); ++i)
    kl += jointKl(oldLogits[i], policy.predict(obsRow(data, i)), kApH);
  return kl / static_cast<double>(data.size());
}

double surrogateValuePerSample(const nn::Mlp& policy, const FlatRollout& data) {
  double s = 0.0;
  for (std::size_t i = 0; i < data.size(); ++i) {
    const double lp =
        jointLogProb(policy.predict(obsRow(data, i)), data.actions[i], kApH);
    s += std::exp(lp - data.logProbs[i]) * data.advantages[i];
  }
  return s / static_cast<double>(data.size());
}

void criticEpochPerSample(nn::Mlp& critic, nn::Optimizer& criticOpt,
                          const FlatRollout& data) {
  critic.zeroGrad();
  const double invN = 1.0 / static_cast<double>(data.size());
  for (std::size_t i = 0; i < data.size(); ++i) {
    const linalg::Vector vp = critic.forward(obsRow(data, i));
    critic.backward({2.0 * (vp[0] - data.returns[i]) * invN});
  }
  criticOpt.step(critic);
}

// ---- Batched rollout-wide passes (bitwise identical to the above) ----

/// Scratch for the batched TRPO passes. The softmax / log-softmax tables of
/// the (fixed) old policy are evaluated once per update and reused by every
/// Fisher-vector product and line-search step; the per-call buffers persist
/// across the CG loop, so the steady-state update does not allocate.
struct TrpoBatchScratch {
  linalg::Matrix oldSm;   // softmax table of the old policy
  linalg::Matrix oldLsm;  // log-softmax table of the old policy
  linalg::Matrix logits;  // predictBatch output
  nn::Mlp::BatchWorkspace ws;
  linalg::Matrix sm;
  linalg::Matrix lsm;
  linalg::Matrix g;
  linalg::Vector lps;
};

linalg::Vector surrogateGradBatched(nn::Mlp& policy, const FlatRollout& data,
                                    TrpoBatchScratch& s) {
  policy.zeroGrad();
  const double invN = 1.0 / static_cast<double>(data.size());
  const linalg::Matrix& logits = policy.forwardBatch(data.observations);
  nn::softmaxSegments(logits, kApH, s.sm);
  jointLogProbGradRowsFromTable(s.sm, data.actions, kApH, s.g);
  for (std::size_t r = 0; r < s.g.rows(); ++r) {
    const double scale = data.advantages[r] * invN;
    double* gr = s.g.row(r);
    for (std::size_t j = 0; j < s.g.cols(); ++j) gr[j] *= scale;
  }
  policy.backwardBatch(s.g);
  return policy.getGradients();
}

linalg::Vector klGradBatched(nn::Mlp& policy, const FlatRollout& data,
                             TrpoBatchScratch& s) {
  policy.zeroGrad();
  const double invN = 1.0 / static_cast<double>(data.size());
  const linalg::Matrix& logits = policy.forwardBatch(data.observations);
  nn::softmaxSegments(logits, kApH, s.sm);
  jointKlGradRowsFromTables(s.oldSm, s.sm, s.g);
  for (std::size_t i = 0; i < s.g.size(); ++i) s.g.data()[i] *= invN;
  policy.backwardBatch(s.g);
  return policy.getGradients();
}

/// Mean KL against the old policy and surrogate value in one batched
/// forward pass (the per-sample path derives both from the same policy, so
/// sharing the pass is bitwise-safe).
std::pair<double, double> klAndSurrogateBatched(const nn::Mlp& policy,
                                                const FlatRollout& data,
                                                TrpoBatchScratch& s) {
  policy.predictBatch(data.observations, s.logits, s.ws);
  nn::logSoftmaxSegments(s.logits, kApH, s.lsm);
  const double kl = sumJointKlRowsFromTables(s.oldLsm, s.lsm, kApH) /
                    static_cast<double>(data.size());
  jointLogProbRowsFromTable(s.lsm, data.actions, kApH, s.lps);
  double surr = 0.0;
  for (std::size_t i = 0; i < data.size(); ++i)
    surr += std::exp(s.lps[i] - data.logProbs[i]) * data.advantages[i];
  surr /= static_cast<double>(data.size());
  return {kl, surr};
}

void criticEpochBatched(nn::Mlp& critic, nn::Optimizer& criticOpt,
                        const FlatRollout& data) {
  critic.zeroGrad();
  const double invN = 1.0 / static_cast<double>(data.size());
  const linalg::Matrix& vp = critic.forwardBatch(data.observations);
  linalg::Matrix gv(data.size(), 1);
  for (std::size_t r = 0; r < data.size(); ++r)
    gv(r, 0) = 2.0 * (vp(r, 0) - data.returns[r]) * invN;
  critic.backwardBatch(gv);
  criticOpt.step(critic);
}

}  // namespace

bool trpoUpdate(nn::Mlp& policy, nn::Mlp& critic, nn::Optimizer& criticOpt,
                const FlatRollout& data, const TrpoConfig& cfg, bool batched) {
  if (data.size() == 0) return false;

  // Snapshot old policy logits for KL and ratios.
  std::vector<linalg::Vector> oldLogitsPS;
  TrpoBatchScratch scratch;
  if (batched) {
    const linalg::Matrix oldLogits = policy.predictBatch(data.observations);
    nn::softmaxSegments(oldLogits, kApH, scratch.oldSm);
    nn::logSoftmaxSegments(oldLogits, kApH, scratch.oldLsm);
  } else {
    oldLogitsPS.reserve(data.size());
    for (std::size_t i = 0; i < data.size(); ++i)
      oldLogitsPS.push_back(policy.predict(obsRow(data, i)));
  }

  const linalg::Vector g = batched ? surrogateGradBatched(policy, data, scratch)
                                   : surrogateGradPerSample(policy, data);
  const double gNorm = linalg::norm2(g);
  if (gNorm < 1e-10) return false;

  // Fisher-vector product via finite difference of the KL gradient around
  // theta_old (where grad KL == 0). With `batched` set, each product is one
  // forwardBatch/backwardBatch pass over the whole rollout instead of N
  // per-sample round trips — the CG solve is where TRPO's update time lives.
  const linalg::Vector theta0 = policy.getParameters();
  auto fvp = [&](const linalg::Vector& v) {
    constexpr double kEps = 1e-5;
    const double vNorm = linalg::norm2(v);
    if (vNorm < 1e-12) return linalg::scaled(v, cfg.cgDamping);
    policy.setParameters(theta0);
    policy.addToParameters(v, kEps / vNorm);
    linalg::Vector gk = batched ? klGradBatched(policy, data, scratch)
                                : klGradPerSample(policy, data, oldLogitsPS);
    policy.setParameters(theta0);
    for (double& x : gk) x *= vNorm / kEps;
    linalg::axpy(cfg.cgDamping, v, gk);
    return gk;
  };

  // Conjugate gradients: solve F x = g.
  linalg::Vector x(g.size(), 0.0);
  linalg::Vector r = g;
  linalg::Vector p = g;
  double rsOld = linalg::dot(r, r);
  for (std::size_t it = 0; it < cfg.cgIterations && rsOld > 1e-12; ++it) {
    const linalg::Vector fp = fvp(p);
    const double alpha = rsOld / std::max(1e-12, linalg::dot(p, fp));
    linalg::axpy(alpha, p, x);
    linalg::axpy(-alpha, fp, r);
    const double rsNew = linalg::dot(r, r);
    const double beta = rsNew / rsOld;
    for (std::size_t i = 0; i < p.size(); ++i) p[i] = r[i] + beta * p[i];
    rsOld = rsNew;
  }

  const double xFx = linalg::dot(x, fvp(x));
  if (xFx <= 1e-12) return false;
  const double stepScale = std::sqrt(2.0 * cfg.maxKl / xFx);

  // Backtracking line search on the true surrogate + KL constraint.
  const double surrogate0 =
      batched ? klAndSurrogateBatched(policy, data, scratch).second
              : surrogateValuePerSample(policy, data);
  double frac = 1.0;
  bool accepted = false;
  for (std::size_t ls = 0; ls < cfg.lineSearchSteps; ++ls, frac *= 0.5) {
    policy.setParameters(theta0);
    policy.addToParameters(x, stepScale * frac);
    double kl;
    double surr;
    if (batched) {
      std::tie(kl, surr) = klAndSurrogateBatched(policy, data, scratch);
    } else {
      kl = meanKlPerSample(policy, data, oldLogitsPS);
      surr = surrogateValuePerSample(policy, data);
    }
    if (kl <= cfg.maxKl * 1.5 && surr > surrogate0) {
      accepted = true;
      break;
    }
  }
  if (!accepted) policy.setParameters(theta0);

  // Critic regression on the GAE returns.
  for (std::size_t e = 0; e < cfg.valueEpochs; ++e) {
    if (batched) {
      criticEpochBatched(critic, criticOpt, data);
    } else {
      criticEpochPerSample(critic, criticOpt, data);
    }
  }
  return accepted;
}

RlTrainOutcome trainTrpo(const core::SizingProblem& problem,
                         const TrpoConfig& cfg, std::size_t maxSimulations) {
  if (cfg.checkpointEvery != 0 && cfg.checkpointPath.empty())
    throw std::invalid_argument(
        "TrpoConfig::checkpointEvery is set but checkpointPath is empty");
  RlTrainOutcome out;
  ParallelRolloutCollector collector(problem, cfg.env,
                                     std::max<std::size_t>(1, cfg.numEnvs),
                                     cfg.rolloutThreads, cfg.seed,
                                     /*rngSalt=*/37,
                                     /*initialReset=*/cfg.resumeFrom.empty());
  nn::Mlp policy = makePolicyNet(collector.observationDim(),
                                 collector.actionHeads(), kApH, cfg.hidden,
                                 cfg.seed + 41);
  nn::Mlp critic =
      makeValueNet(collector.observationDim(), cfg.hidden, cfg.seed + 43);
  nn::AdamOptimizer criticOpt(cfg.valueLearningRate);

  out.bestEpisodeReturn = -1e18;
  std::size_t updates = 0;
  std::ostringstream hyper;
  hyper.precision(17);
  hyper << "trpo horizon=" << cfg.horizon << " gamma=" << cfg.gamma
        << " gae=" << cfg.gaeLambda << " maxKl=" << cfg.maxKl
        << " damping=" << cfg.cgDamping << " cgIters=" << cfg.cgIterations
        << " lineSearch=" << cfg.lineSearchSteps
        << " vlr=" << cfg.valueLearningRate
        << " valueEpochs=" << cfg.valueEpochs << " hidden=" << cfg.hidden
        << " batched=" << cfg.batchedTraining;
  TrainerState snapshot;
  snapshot.algo = "trpo";
  snapshot.fingerprint =
      trainerFingerprint(problem, cfg.env, cfg.seed, hyper.str());
  snapshot.policy = &policy;
  snapshot.critic = &critic;
  snapshot.criticOpt = &criticOpt;
  snapshot.collector = &collector;
  snapshot.updates = &updates;
  snapshot.bestEpisodeReturn = &out.bestEpisodeReturn;
  if (!cfg.resumeFrom.empty())
    restoreTrainerCheckpoint(cfg.resumeFrom, snapshot);

  std::vector<RolloutBuffer> buffers;
  while ((cfg.maxUpdates == 0 || updates < cfg.maxUpdates) &&
         collector.totalSimulations() < maxSimulations && !collector.solved()) {
    const CollectStats stats = collector.collect(policy, critic, cfg.horizon,
                                                 maxSimulations, buffers);
    out.bestEpisodeReturn = std::max(out.bestEpisodeReturn,
                                     stats.bestEpisodeReturn);
    if (stats.anySolved || stats.steps == 0) break;

    const FlatRollout data =
        flattenRollouts(buffers, cfg.gamma, cfg.gaeLambda);
    trpoUpdate(policy, critic, criticOpt, data, cfg, cfg.batchedTraining);
    ++updates;
    if (cfg.checkpointEvery != 0 && !cfg.checkpointPath.empty() &&
        updates % cfg.checkpointEvery == 0)
      saveTrainerCheckpoint(cfg.checkpointPath, snapshot);
  }

  out.totalSimulations = collector.totalSimulations();
  out.solved = collector.solved();
  out.simulationsToSolve =
      out.solved ? collector.simsAtFirstSolve() : collector.totalSimulations();
  return out;
}

}  // namespace trdse::rl
