// Checkpoint/warm-start hooks shared by the A2C / PPO / TRPO trainers.
//
// A trainer snapshot captures everything the training loop owns: actor and
// critic networks, their Adam moments, every environment slot of the rollout
// collector (env state + policy-sampling RNG streams), PPO's mini-batch
// shuffle stream, and the loop counters. Restoring it and continuing
// reproduces the uninterrupted run's RlTrainOutcome bit for bit — the same
// contract the model-based searches honor (docs/CHECKPOINTS.md).
#pragma once

#include <random>
#include <string>

#include "nn/mlp.hpp"
#include "nn/optimizer.hpp"
#include "rl/vec_env.hpp"

namespace trdse::rl {

/// Borrowed views of one trainer's mutable state. Optional members are null
/// when the algorithm has no such component (TRPO has no policy Adam, only
/// PPO keeps a shuffle stream).
struct TrainerState {
  std::string algo;                        ///< "a2c" / "ppo" / "trpo"
  std::string fingerprint;                 ///< trainerFingerprint() of the run
  nn::Mlp* policy = nullptr;               ///< actor network
  nn::Mlp* critic = nullptr;               ///< value network
  nn::AdamOptimizer* policyOpt = nullptr;  ///< actor Adam (null for TRPO)
  nn::AdamOptimizer* criticOpt = nullptr;  ///< critic Adam
  ParallelRolloutCollector* collector = nullptr;  ///< env slots + RNG streams
  std::mt19937_64* shuffleRng = nullptr;   ///< PPO mini-batch stream
  std::size_t* updates = nullptr;          ///< completed policy updates
  double* bestEpisodeReturn = nullptr;     ///< best return seen so far
};

/// Compact single-line fingerprint of everything a trainer trajectory
/// depends on: the problem shape (grids, measurements, specs, the single
/// training corner), environment shaping, base seed, and the algorithm's
/// hyper-parameters rendered into `hyper`. Stored in every trainer
/// checkpoint and compared verbatim on resume, so a snapshot from a
/// different problem/configuration fails loudly instead of silently
/// breaking the bitwise-resume contract.
std::string trainerFingerprint(const core::SizingProblem& problem,
                               const EnvConfig& env, std::uint64_t seed,
                               const std::string& hyper);

/// Write a trainer snapshot to a versioned checkpoint file. Throws
/// io::CheckpointError when the file cannot be written.
void saveTrainerCheckpoint(const std::string& path, const TrainerState& s);

/// Restore a snapshot written by saveTrainerCheckpoint into `s`. The
/// networks, optimizers and collector must already be constructed with the
/// same shapes/numEnvs; algorithm or shape mismatches throw
/// io::CheckpointError with a descriptive message.
void restoreTrainerCheckpoint(const std::string& path, const TrainerState& s);

}  // namespace trdse::rl
