#include "rl/ppo.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>
#include <stdexcept>

#include "rl/actor_critic.hpp"
#include "rl/checkpoint.hpp"
#include "rl/vec_env.hpp"

namespace trdse::rl {

void ppoUpdatePerSample(nn::Mlp& policy, nn::Mlp& critic,
                        nn::Optimizer& policyOpt, nn::Optimizer& criticOpt,
                        const FlatRollout& data, const PpoConfig& cfg,
                        std::mt19937_64& rng) {
  const std::size_t n = data.size();
  if (n == 0) return;
  const std::size_t obsDim = data.observations.cols();
  constexpr std::size_t apH = SizingEnv::kActionsPerHead;

  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  linalg::Vector obs(obsDim);
  for (std::size_t epoch = 0; epoch < cfg.epochs; ++epoch) {
    std::shuffle(order.begin(), order.end(), rng);
    for (std::size_t start = 0; start < order.size(); start += cfg.minibatch) {
      const std::size_t end = std::min(order.size(), start + cfg.minibatch);
      const double invB = 1.0 / static_cast<double>(end - start);
      policy.zeroGrad();
      critic.zeroGrad();
      for (std::size_t k = start; k < end; ++k) {
        const std::size_t i = order[k];
        obs.assign(data.observations.row(i),
                   data.observations.row(i) + obsDim);
        const double advantage = data.advantages[i];

        const linalg::Vector logits = policy.forward(obs);
        const double newLp = jointLogProb(logits, data.actions[i], apH);
        const double ratio = std::exp(newLp - data.logProbs[i]);
        // Clipped surrogate: gradient flows only when unclipped term is
        // the active minimum.
        const bool clipped =
            (advantage > 0.0 && ratio > 1.0 + cfg.clipRatio) ||
            (advantage < 0.0 && ratio < 1.0 - cfg.clipRatio);
        linalg::Vector g(logits.size(), 0.0);
        if (!clipped) {
          g = jointLogProbGrad(logits, data.actions[i], apH);
          for (double& gv : g) gv *= ratio * advantage;
        }
        const linalg::Vector eg = jointEntropyGrad(logits, apH);
        for (std::size_t j = 0; j < g.size(); ++j)
          g[j] = -(g[j] + cfg.entropyCoeff * eg[j]) * invB;
        policy.backward(g);

        const linalg::Vector vp = critic.forward(obs);
        critic.backward({2.0 * (vp[0] - data.returns[i]) * invB});
      }
      nn::clipGradNorm(policy, cfg.maxGradNorm);
      nn::clipGradNorm(critic, cfg.maxGradNorm);
      policyOpt.step(policy);
      criticOpt.step(critic);
    }
  }
}

void ppoUpdateBatched(nn::Mlp& policy, nn::Mlp& critic,
                      nn::Optimizer& policyOpt, nn::Optimizer& criticOpt,
                      const FlatRollout& data, const PpoConfig& cfg,
                      std::mt19937_64& rng) {
  const std::size_t n = data.size();
  if (n == 0) return;
  const std::size_t obsDim = data.observations.cols();
  constexpr std::size_t apH = SizingEnv::kActionsPerHead;

  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  // Mini-batch gather + distribution-table buffers; capacity persists across
  // mini-batches so the steady-state loop does not allocate. The softmax and
  // log-softmax tables are evaluated once per mini-batch and shared by the
  // log-prob, policy-gradient and entropy-gradient helpers.
  linalg::Matrix obsMb;
  std::vector<std::vector<std::size_t>> actsMb;
  linalg::Matrix sm;
  linalg::Matrix lsm;
  linalg::Matrix g;
  linalg::Matrix eg;
  linalg::Matrix gv;
  linalg::Vector newLps;
  for (std::size_t epoch = 0; epoch < cfg.epochs; ++epoch) {
    std::shuffle(order.begin(), order.end(), rng);
    for (std::size_t start = 0; start < order.size(); start += cfg.minibatch) {
      const std::size_t end = std::min(order.size(), start + cfg.minibatch);
      const std::size_t b = end - start;
      const double invB = 1.0 / static_cast<double>(b);

      obsMb.resize(b, obsDim);
      actsMb.resize(b);
      for (std::size_t r = 0; r < b; ++r) {
        const std::size_t i = order[start + r];
        std::copy(data.observations.row(i), data.observations.row(i) + obsDim,
                  obsMb.row(r));
        actsMb[r] = data.actions[i];
      }

      policy.zeroGrad();
      critic.zeroGrad();
      const linalg::Matrix& logits = policy.forwardBatch(obsMb);
      nn::softmaxSegments(logits, apH, sm);
      nn::logSoftmaxSegments(logits, apH, lsm);
      jointLogProbRowsFromTable(lsm, actsMb, apH, newLps);
      jointLogProbGradRowsFromTable(sm, actsMb, apH, g);
      jointEntropyGradRowsFromTable(lsm, apH, eg);
      for (std::size_t r = 0; r < b; ++r) {
        const std::size_t i = order[start + r];
        const double advantage = data.advantages[i];
        const double ratio = std::exp(newLps[r] - data.logProbs[i]);
        const bool clipped =
            (advantage > 0.0 && ratio > 1.0 + cfg.clipRatio) ||
            (advantage < 0.0 && ratio < 1.0 - cfg.clipRatio);
        // ratio * advantage is folded into one factor first, matching the
        // per-sample path's association order exactly.
        const double scale = clipped ? 0.0 : ratio * advantage;
        double* gr = g.row(r);
        const double* er = eg.row(r);
        for (std::size_t j = 0; j < g.cols(); ++j) {
          const double surr = clipped ? 0.0 : gr[j] * scale;
          gr[j] = -(surr + cfg.entropyCoeff * er[j]) * invB;
        }
      }
      policy.backwardBatch(g);

      const linalg::Matrix& vp = critic.forwardBatch(obsMb);
      gv.resize(b, 1);
      for (std::size_t r = 0; r < b; ++r)
        gv(r, 0) = 2.0 * (vp(r, 0) - data.returns[order[start + r]]) * invB;
      critic.backwardBatch(gv);

      nn::clipGradNorm(policy, cfg.maxGradNorm);
      nn::clipGradNorm(critic, cfg.maxGradNorm);
      policyOpt.step(policy);
      criticOpt.step(critic);
    }
  }
}

RlTrainOutcome trainPpo(const core::SizingProblem& problem, const PpoConfig& cfg,
                        std::size_t maxSimulations) {
  if (cfg.checkpointEvery != 0 && cfg.checkpointPath.empty())
    throw std::invalid_argument(
        "PpoConfig::checkpointEvery is set but checkpointPath is empty");
  RlTrainOutcome out;
  ParallelRolloutCollector collector(problem, cfg.env,
                                     std::max<std::size_t>(1, cfg.numEnvs),
                                     cfg.rolloutThreads, cfg.seed,
                                     /*rngSalt=*/19,
                                     /*initialReset=*/cfg.resumeFrom.empty());
  std::mt19937_64 shuffleRng(cfg.seed + 53);

  nn::Mlp policy = makePolicyNet(collector.observationDim(),
                                 collector.actionHeads(),
                                 SizingEnv::kActionsPerHead, cfg.hidden,
                                 cfg.seed + 23);
  nn::Mlp critic =
      makeValueNet(collector.observationDim(), cfg.hidden, cfg.seed + 29);
  nn::AdamOptimizer policyOpt(cfg.learningRate);
  nn::AdamOptimizer criticOpt(cfg.valueLearningRate);

  out.bestEpisodeReturn = -1e18;
  std::size_t updates = 0;
  std::ostringstream hyper;
  hyper.precision(17);
  hyper << "ppo horizon=" << cfg.horizon << " epochs=" << cfg.epochs
        << " minibatch=" << cfg.minibatch << " gamma=" << cfg.gamma
        << " gae=" << cfg.gaeLambda << " clipRatio=" << cfg.clipRatio
        << " lr=" << cfg.learningRate << " vlr=" << cfg.valueLearningRate
        << " ent=" << cfg.entropyCoeff << " clip=" << cfg.maxGradNorm
        << " hidden=" << cfg.hidden << " batched=" << cfg.batchedTraining;
  TrainerState snapshot;
  snapshot.algo = "ppo";
  snapshot.fingerprint =
      trainerFingerprint(problem, cfg.env, cfg.seed, hyper.str());
  snapshot.policy = &policy;
  snapshot.critic = &critic;
  snapshot.policyOpt = &policyOpt;
  snapshot.criticOpt = &criticOpt;
  snapshot.collector = &collector;
  snapshot.shuffleRng = &shuffleRng;
  snapshot.updates = &updates;
  snapshot.bestEpisodeReturn = &out.bestEpisodeReturn;
  if (!cfg.resumeFrom.empty())
    restoreTrainerCheckpoint(cfg.resumeFrom, snapshot);

  std::vector<RolloutBuffer> buffers;
  while ((cfg.maxUpdates == 0 || updates < cfg.maxUpdates) &&
         collector.totalSimulations() < maxSimulations && !collector.solved()) {
    const CollectStats stats =
        collector.collect(policy, critic, cfg.horizon, maxSimulations, buffers);
    out.bestEpisodeReturn = std::max(out.bestEpisodeReturn,
                                     stats.bestEpisodeReturn);
    if (stats.anySolved || stats.steps == 0) break;

    const FlatRollout data =
        flattenRollouts(buffers, cfg.gamma, cfg.gaeLambda);
    if (cfg.batchedTraining) {
      ppoUpdateBatched(policy, critic, policyOpt, criticOpt, data, cfg,
                       shuffleRng);
    } else {
      ppoUpdatePerSample(policy, critic, policyOpt, criticOpt, data, cfg,
                         shuffleRng);
    }
    ++updates;
    if (cfg.checkpointEvery != 0 && !cfg.checkpointPath.empty() &&
        updates % cfg.checkpointEvery == 0)
      saveTrainerCheckpoint(cfg.checkpointPath, snapshot);
  }

  out.totalSimulations = collector.totalSimulations();
  out.solved = collector.solved();
  out.simulationsToSolve =
      out.solved ? collector.simsAtFirstSolve() : collector.totalSimulations();
  return out;
}

}  // namespace trdse::rl
