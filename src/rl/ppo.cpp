#include "rl/ppo.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "nn/optimizer.hpp"
#include "rl/actor_critic.hpp"
#include "rl/rollout.hpp"

namespace trdse::rl {

RlTrainOutcome trainPpo(const core::SizingProblem& problem, const PpoConfig& cfg,
                        std::size_t maxSimulations) {
  RlTrainOutcome out;
  SizingEnv env(problem, cfg.env, cfg.seed);
  std::mt19937_64 rng(cfg.seed + 19);

  const std::size_t heads = env.actionHeads();
  const std::size_t apH = SizingEnv::kActionsPerHead;
  nn::Mlp policy = makePolicyNet(env.observationDim(), heads, apH, cfg.hidden,
                                 cfg.seed + 23);
  nn::Mlp critic = makeValueNet(env.observationDim(), cfg.hidden, cfg.seed + 29);
  nn::AdamOptimizer policyOpt(cfg.learningRate);
  nn::AdamOptimizer criticOpt(cfg.valueLearningRate);

  linalg::Vector obs = env.reset();
  double episodeReturn = 0.0;
  out.bestEpisodeReturn = -1e18;

  RolloutBuffer buffer;
  while (env.simulationsUsed() < maxSimulations && env.simsAtFirstSolve() == 0) {
    buffer.clear();
    for (std::size_t s = 0;
         s < cfg.horizon && env.simulationsUsed() < maxSimulations; ++s) {
      const PolicySample ps = samplePolicy(policy, obs, heads, apH, rng);
      const double v = critic.predict(obs)[0];
      const StepResult sr = env.step(ps.actions);

      Transition t;
      t.observation = obs;
      t.actions = ps.actions;
      t.reward = sr.reward;
      t.valueEstimate = v;
      t.logProb = ps.logProb;
      t.done = sr.done;
      buffer.transitions.push_back(std::move(t));

      episodeReturn += sr.reward;
      obs = sr.observation;
      if (sr.done) {
        out.bestEpisodeReturn = std::max(out.bestEpisodeReturn, episodeReturn);
        episodeReturn = 0.0;
        if (sr.solved) break;
        obs = env.reset();
      }
    }
    if (env.simsAtFirstSolve() > 0 || buffer.transitions.empty()) break;

    buffer.bootstrapValue =
        buffer.transitions.back().done ? 0.0 : critic.predict(obs)[0];
    AdvantageResult adv = computeGae(buffer, cfg.gamma, cfg.gaeLambda);
    normalizeAdvantages(adv.advantages);

    std::vector<std::size_t> order(buffer.size());
    std::iota(order.begin(), order.end(), 0);
    for (std::size_t epoch = 0; epoch < cfg.epochs; ++epoch) {
      std::shuffle(order.begin(), order.end(), rng);
      for (std::size_t start = 0; start < order.size(); start += cfg.minibatch) {
        const std::size_t end = std::min(order.size(), start + cfg.minibatch);
        const double invB = 1.0 / static_cast<double>(end - start);
        policy.zeroGrad();
        critic.zeroGrad();
        for (std::size_t k = start; k < end; ++k) {
          const Transition& t = buffer.transitions[order[k]];
          const double advantage = adv.advantages[order[k]];

          const linalg::Vector logits = policy.forward(t.observation);
          const double newLp = jointLogProb(logits, t.actions, apH);
          const double ratio = std::exp(newLp - t.logProb);
          // Clipped surrogate: gradient flows only when unclipped term is
          // the active minimum.
          const bool clipped =
              (advantage > 0.0 && ratio > 1.0 + cfg.clipRatio) ||
              (advantage < 0.0 && ratio < 1.0 - cfg.clipRatio);
          linalg::Vector g(logits.size(), 0.0);
          if (!clipped) {
            g = jointLogProbGrad(logits, t.actions, apH);
            for (double& gv : g) gv *= ratio * advantage;
          }
          const linalg::Vector eg = jointEntropyGrad(logits, apH);
          for (std::size_t i = 0; i < g.size(); ++i)
            g[i] = -(g[i] + cfg.entropyCoeff * eg[i]) * invB;
          policy.backward(g);

          const linalg::Vector vp = critic.forward(t.observation);
          critic.backward({2.0 * (vp[0] - adv.returns[order[k]]) * invB});
        }
        nn::clipGradNorm(policy, cfg.maxGradNorm);
        nn::clipGradNorm(critic, cfg.maxGradNorm);
        policyOpt.step(policy);
        criticOpt.step(critic);
      }
    }
  }

  out.totalSimulations = env.simulationsUsed();
  out.solved = env.simsAtFirstSolve() > 0;
  out.simulationsToSolve =
      out.solved ? env.simsAtFirstSolve() : env.simulationsUsed();
  return out;
}

}  // namespace trdse::rl
