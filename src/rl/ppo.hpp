// Proximal Policy Optimization (Schulman et al., 2017) — Table I baseline.
// Clipped-surrogate objective with GAE, multiple epochs of shuffled
// mini-batches per rollout, entropy bonus and gradient clipping. Rollouts
// come from a ParallelRolloutCollector; each mini-batch runs either as true
// batched forward/backward passes or as the legacy per-sample loop
// (`batchedTraining`), with both paths bitwise identical.
#pragma once

#include <random>

#include "core/problem.hpp"
#include "nn/optimizer.hpp"
#include "rl/a2c.hpp"  // RlTrainOutcome
#include "rl/rollout.hpp"
#include "rl/sizing_env.hpp"

namespace trdse::rl {

/// Hyper-parameters of the PPO baseline trainer.
struct PpoConfig {
  std::size_t horizon = 192;        ///< rollout steps per env per update
  std::size_t epochs = 4;           ///< optimization epochs per rollout
  std::size_t minibatch = 32;       ///< shuffled mini-batch size
  double gamma = 0.99;              ///< discount factor
  double gaeLambda = 0.95;          ///< GAE(lambda) mixing coefficient
  double clipRatio = 0.2;           ///< clipped-surrogate epsilon
  double learningRate = 3e-4;       ///< policy Adam step size
  double valueLearningRate = 1e-3;  ///< critic Adam step size
  double entropyCoeff = 0.01;       ///< entropy-bonus weight
  double maxGradNorm = 0.5;         ///< L2 gradient clip threshold
  std::size_t hidden = 64;          ///< hidden width of policy/critic MLPs
  /// Batched mini-batch passes (bitwise identical to the per-sample path).
  bool batchedTraining = true;
  /// Parallel rollout environments. With 1 the collection loop is serial,
  /// but runs are NOT bitwise comparable to the pre-collector PPO trainer:
  /// that trainer drew mini-batch shuffles from the action-sampling RNG,
  /// whereas shuffles now use their own stream (seed + 53).
  std::size_t numEnvs = 1;
  /// Worker threads for rollout collection: 1 = inline, 0 = hardware
  /// concurrency. Trajectories are thread-count invariant, but with more
  /// than one worker the problem's evaluate callback must be thread-safe.
  std::size_t rolloutThreads = 1;
  EnvConfig env;                    ///< sizing-environment parameters
  std::uint64_t seed = 1;           ///< base seed for envs, nets and sampling
  /// Stop after this many policy updates (0 = unlimited) — pauses a run at
  /// an update boundary so it can be checkpointed and resumed bitwise.
  std::size_t maxUpdates = 0;
  /// Write a trainer checkpoint (networks, Adam moments, env/RNG state,
  /// shuffle stream) to `checkpointPath` every N updates (0 = off).
  std::size_t checkpointEvery = 0;
  /// Destination of the periodic snapshots.
  std::string checkpointPath;
  /// Restore this checkpoint before training; the continued run reproduces
  /// the uninterrupted one bitwise (docs/CHECKPOINTS.md).
  std::string resumeFrom;
};

/// Train on the problem's first corner until a satisfying design is found or
/// the simulation budget is exhausted.
RlTrainOutcome trainPpo(const core::SizingProblem& problem, const PpoConfig& cfg,
                        std::size_t maxSimulations);

/// All PPO epochs/mini-batches for one rollout — the legacy per-sample
/// reference path (exposed for parity tests and benchmarks). `rng` drives
/// the mini-batch shuffles; pass equal-state generators to the two variants
/// to compare their update traces.
void ppoUpdatePerSample(nn::Mlp& policy, nn::Mlp& critic,
                        nn::Optimizer& policyOpt, nn::Optimizer& criticOpt,
                        const FlatRollout& data, const PpoConfig& cfg,
                        std::mt19937_64& rng);

/// Batched equivalent of ppoUpdatePerSample: each mini-batch is gathered
/// into matrices and runs one forwardBatch/backwardBatch pass per network.
/// Bitwise identical to the per-sample path.
void ppoUpdateBatched(nn::Mlp& policy, nn::Mlp& critic,
                      nn::Optimizer& policyOpt, nn::Optimizer& criticOpt,
                      const FlatRollout& data, const PpoConfig& cfg,
                      std::mt19937_64& rng);

}  // namespace trdse::rl
