// Proximal Policy Optimization (Schulman et al., 2017) — Table I baseline.
// Clipped-surrogate objective with GAE, multiple epochs of shuffled
// mini-batches per rollout, entropy bonus and gradient clipping.
#pragma once

#include "core/problem.hpp"
#include "rl/a2c.hpp"  // RlTrainOutcome
#include "rl/sizing_env.hpp"

namespace trdse::rl {

struct PpoConfig {
  std::size_t horizon = 192;
  std::size_t epochs = 4;
  std::size_t minibatch = 32;
  double gamma = 0.99;
  double gaeLambda = 0.95;
  double clipRatio = 0.2;
  double learningRate = 3e-4;
  double valueLearningRate = 1e-3;
  double entropyCoeff = 0.01;
  double maxGradNorm = 0.5;
  std::size_t hidden = 64;
  EnvConfig env;
  std::uint64_t seed = 1;
};

RlTrainOutcome trainPpo(const core::SizingProblem& problem, const PpoConfig& cfg,
                        std::size_t maxSimulations);

}  // namespace trdse::rl
