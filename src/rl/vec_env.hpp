// Parallel multi-environment rollout collection for the model-free baselines
// (AutoCkt-style vectorized trajectory sampling).
//
// N independent SizingEnv instances advance concurrently on a shared
// ThreadPool; each environment owns its RNG streams (common::perTaskSeed per
// environment index) and writes into its own RolloutBuffer, and the buffers
// are merged in environment order after the join. Trajectories therefore do
// not depend on the thread count or on how workers were scheduled, and a
// single-environment collector reproduces the original serial collection
// loop bitwise (environment 0 keeps the legacy seed derivation; note the
// PPO caveat on PpoConfig::numEnvs — its legacy trainer shared one RNG
// between action sampling and mini-batch shuffling).
//
// With more than one worker thread the problem's `evaluate` callback runs
// concurrently from several environments and must be thread-safe (every
// circuits:: evaluator is; it builds its own testbench per call).
#pragma once

#include <memory>
#include <random>
#include <vector>

#include "common/thread_pool.hpp"
#include "nn/mlp.hpp"
#include "rl/rollout.hpp"
#include "rl/sizing_env.hpp"

namespace trdse::rl {

/// Aggregate statistics of one collection round across all environments.
struct CollectStats {
  /// Some environment reached a satisfying design during the round.
  bool anySolved = false;
  /// Best completed-episode return observed this round (-1e18 when no
  /// episode finished).
  double bestEpisodeReturn = -1e18;
  /// Transitions collected over all environments.
  std::size_t steps = 0;
};

/// Collects trajectories from N sizing environments concurrently.
///
/// Environment state (grid position, episode progress, RNG streams) persists
/// across collection rounds, exactly as a single environment's state persists
/// across the serial trainer's outer iterations.
class ParallelRolloutCollector {
 public:
  /// @param numEnvs  number of independent environments (>= 1).
  /// @param threads  worker threads for collection: 1 runs inline (serial),
  ///                 0 uses the hardware concurrency.
  /// @param seed     base seed; environment 0 uses it verbatim (legacy
  ///                 stream), environment e > 0 uses perTaskSeed(seed, e).
  /// @param rngSalt  offset applied to `seed` for the policy-sampling RNG
  ///                 streams (each trainer keeps its historical salt).
  /// @param initialReset  run the initial per-env reset (one simulation
  ///                 each). Trainers that restore a checkpoint right after
  ///                 construction pass false — the restored state replaces
  ///                 everything, so those simulations would be pure waste.
  ParallelRolloutCollector(const core::SizingProblem& problem,
                           const EnvConfig& envConfig, std::size_t numEnvs,
                           std::size_t threads, std::uint64_t seed,
                           std::uint64_t rngSalt, bool initialReset = true);

  /// Number of managed environments.
  std::size_t numEnvs() const { return slots_.size(); }
  /// Observation dimensionality (shared by all environments).
  std::size_t observationDim() const;
  /// Number of categorical action heads (one per sizing parameter).
  std::size_t actionHeads() const;

  /// Run one collection round: every environment takes up to `stepsPerEnv`
  /// policy-sampled steps (stopping early when it solves or when its
  /// deterministic share of the remaining `maxTotalSims` simulation budget
  /// is exhausted) and fills buffers[e] with its fragment, including the
  /// critic bootstrap value for an unfinished tail episode. `buffers` is
  /// resized to one buffer per environment.
  CollectStats collect(const nn::Mlp& policy, const nn::Mlp& critic,
                       std::size_t stepsPerEnv, std::size_t maxTotalSims,
                       std::vector<RolloutBuffer>& buffers);

  /// Total SPICE simulations consumed across all environments.
  std::size_t totalSimulations() const;
  /// Whether any environment has produced a satisfying design.
  bool solved() const { return solveSims_ > 0; }
  /// Total simulations at the end of the first solving round (0 when never
  /// solved). For a single environment this equals the environment's own
  /// sims-at-first-solve because collection stops at the solving step.
  std::size_t simsAtFirstSolve() const { return solveSims_; }

  /// Serialize every environment slot — env state, policy-sampling RNG,
  /// pending observation, open-episode return — plus the solve marker into a
  /// checkpoint section. Restoring resumes collection bitwise.
  void saveState(io::SectionWriter& w) const;
  /// Restore state written by saveState; the collector must have been built
  /// with the same numEnvs (mismatch throws io::CheckpointError).
  void restoreState(io::SectionReader& r);

 private:
  /// Per-environment persistent state (env, RNG stream, pending observation).
  struct EnvSlot {
    EnvSlot(const core::SizingProblem& problem, const EnvConfig& cfg,
            std::uint64_t envSeed, std::uint64_t rngSeed)
        : env(problem, cfg, envSeed), rng(rngSeed) {}
    SizingEnv env;
    std::mt19937_64 rng;        // policy-sampling stream
    linalg::Vector obs;         // observation awaiting the next action
    double episodeReturn = 0.0; // running return of the open episode
    bool needsReset = false;    // solved last round; reset on next collect
  };

  std::vector<std::unique_ptr<EnvSlot>> slots_;
  common::ThreadPool pool_;
  std::size_t solveSims_ = 0;
};

}  // namespace trdse::rl
