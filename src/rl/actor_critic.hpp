// Shared actor/critic machinery for the model-free baselines: a multi-head
// categorical policy (one 3-way head per sizing parameter, AutoCkt-style
// multi-discrete) over a plain MLP trunk, and a scalar value network.
#pragma once

#include <random>

#include "nn/distribution.hpp"
#include "nn/mlp.hpp"

namespace trdse::rl {

/// Policy network output helpers. Logits are laid out head-major:
/// [head0: a0 a1 a2 | head1: a0 a1 a2 | ...].
struct PolicySample {
  std::vector<std::size_t> actions;
  double logProb = 0.0;
  double entropy = 0.0;
};

/// View one head's logits.
linalg::Vector headLogits(const linalg::Vector& logits, std::size_t head,
                          std::size_t actionsPerHead);

/// Sample all heads.
PolicySample samplePolicy(const nn::Mlp& policy, const linalg::Vector& obs,
                          std::size_t heads, std::size_t actionsPerHead,
                          std::mt19937_64& rng);

/// Greedy (argmax) action per head.
std::vector<std::size_t> greedyPolicy(const nn::Mlp& policy,
                                      const linalg::Vector& obs,
                                      std::size_t heads,
                                      std::size_t actionsPerHead);

/// Sum over heads of log pi(a_h | obs) for given logits.
double jointLogProb(const linalg::Vector& logits,
                    const std::vector<std::size_t>& actions,
                    std::size_t actionsPerHead);

/// Sum of per-head entropies.
double jointEntropy(const linalg::Vector& logits, std::size_t actionsPerHead);

/// d(joint log-prob)/d(logits) — head-major, same layout as logits.
linalg::Vector jointLogProbGrad(const linalg::Vector& logits,
                                const std::vector<std::size_t>& actions,
                                std::size_t actionsPerHead);

/// d(joint entropy)/d(logits).
linalg::Vector jointEntropyGrad(const linalg::Vector& logits,
                                std::size_t actionsPerHead);

/// Sum over heads of KL(old || new) for two logit vectors.
double jointKl(const linalg::Vector& oldLogits, const linalg::Vector& newLogits,
               std::size_t actionsPerHead);

/// d jointKl / d newLogits = softmax(new) - softmax(old), per head.
linalg::Vector jointKlGrad(const linalg::Vector& oldLogits,
                           const linalg::Vector& newLogits,
                           std::size_t actionsPerHead);

/// Build default policy / value networks for an observation of `obsDim`.
nn::Mlp makePolicyNet(std::size_t obsDim, std::size_t heads,
                      std::size_t actionsPerHead, std::size_t hidden,
                      std::uint64_t seed);
nn::Mlp makeValueNet(std::size_t obsDim, std::size_t hidden, std::uint64_t seed);

}  // namespace trdse::rl
