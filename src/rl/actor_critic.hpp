// Shared actor/critic machinery for the model-free baselines: a multi-head
// categorical policy (one 3-way head per sizing parameter, AutoCkt-style
// multi-discrete) over a plain MLP trunk, and a scalar value network.
#pragma once

#include <random>

#include "nn/distribution.hpp"
#include "nn/mlp.hpp"

namespace trdse::rl {

/// Policy network output helpers. Logits are laid out head-major:
/// [head0: a0 a1 a2 | head1: a0 a1 a2 | ...].
struct PolicySample {
  std::vector<std::size_t> actions;  ///< sampled sub-action per head
  double logProb = 0.0;              ///< joint log pi(actions | obs)
  double entropy = 0.0;              ///< summed per-head entropy
};

/// View one head's logits.
linalg::Vector headLogits(const linalg::Vector& logits, std::size_t head,
                          std::size_t actionsPerHead);

/// Sample all heads.
PolicySample samplePolicy(const nn::Mlp& policy, const linalg::Vector& obs,
                          std::size_t heads, std::size_t actionsPerHead,
                          std::mt19937_64& rng);

/// Greedy (argmax) action per head.
std::vector<std::size_t> greedyPolicy(const nn::Mlp& policy,
                                      const linalg::Vector& obs,
                                      std::size_t heads,
                                      std::size_t actionsPerHead);

/// Sum over heads of log pi(a_h | obs) for given logits.
double jointLogProb(const linalg::Vector& logits,
                    const std::vector<std::size_t>& actions,
                    std::size_t actionsPerHead);

/// Sum of per-head entropies.
double jointEntropy(const linalg::Vector& logits, std::size_t actionsPerHead);

/// d(joint log-prob)/d(logits) — head-major, same layout as logits.
linalg::Vector jointLogProbGrad(const linalg::Vector& logits,
                                const std::vector<std::size_t>& actions,
                                std::size_t actionsPerHead);

/// d(joint entropy)/d(logits).
linalg::Vector jointEntropyGrad(const linalg::Vector& logits,
                                std::size_t actionsPerHead);

/// Sum over heads of KL(old || new) for two logit vectors.
double jointKl(const linalg::Vector& oldLogits, const linalg::Vector& newLogits,
               std::size_t actionsPerHead);

/// d jointKl / d newLogits = softmax(new) - softmax(old), per head.
linalg::Vector jointKlGrad(const linalg::Vector& oldLogits,
                           const linalg::Vector& newLogits,
                           std::size_t actionsPerHead);

// ---- Batched (rollout-matrix) variants ----
//
// Row r of a logits matrix holds the head-major logits of sample r (the
// layout Mlp::forwardBatch produces for the policy net). Every function
// reproduces its per-sample counterpart above bitwise, row by row, on top of
// the segment kernels in nn/distribution. Outputs are resized by the callee.

/// Per-row joint log-prob of `actions[r]` under logits row r.
linalg::Vector jointLogProbRows(
    const linalg::Matrix& logits,
    const std::vector<std::vector<std::size_t>>& actions,
    std::size_t actionsPerHead);

/// Per-row d(joint log-prob)/d(logits) into `out` (same shape as `logits`).
void jointLogProbGradRows(const linalg::Matrix& logits,
                          const std::vector<std::vector<std::size_t>>& actions,
                          std::size_t actionsPerHead, linalg::Matrix& out);

/// Per-row d(joint entropy)/d(logits) into `out`.
void jointEntropyGradRows(const linalg::Matrix& logits,
                          std::size_t actionsPerHead, linalg::Matrix& out);

/// Sum over rows (ascending) of the joint KL(old || new) between logit rows.
double sumJointKlRows(const linalg::Matrix& oldLogits,
                      const linalg::Matrix& newLogits,
                      std::size_t actionsPerHead);

/// Per-row d(joint KL)/d(new logits) into `out`.
void jointKlGradRows(const linalg::Matrix& oldLogits,
                     const linalg::Matrix& newLogits,
                     std::size_t actionsPerHead, linalg::Matrix& out);

// Table-based variants: operate on precomputed per-head probability tables
// (`nn::softmaxSegments` / `nn::logSoftmaxSegments` of the same logits
// matrix), letting the batched trainers evaluate each table once per pass
// and share it across helpers instead of re-deriving it per call. Values
// stay bitwise identical to the logits-based functions above.

/// jointLogProbRows from a log-softmax table, written into `out` (resized).
void jointLogProbRowsFromTable(
    const linalg::Matrix& logSoftmaxTable,
    const std::vector<std::vector<std::size_t>>& actions,
    std::size_t actionsPerHead, linalg::Vector& out);

/// jointLogProbGradRows from a softmax table.
void jointLogProbGradRowsFromTable(
    const linalg::Matrix& softmaxTable,
    const std::vector<std::vector<std::size_t>>& actions,
    std::size_t actionsPerHead, linalg::Matrix& out);

/// jointEntropyGradRows from a log-softmax table.
void jointEntropyGradRowsFromTable(const linalg::Matrix& logSoftmaxTable,
                                   std::size_t actionsPerHead,
                                   linalg::Matrix& out);

/// sumJointKlRows from the two log-softmax tables.
double sumJointKlRowsFromTables(const linalg::Matrix& logSoftmaxOld,
                                const linalg::Matrix& logSoftmaxNew,
                                std::size_t actionsPerHead);

/// jointKlGradRows from the two softmax tables (out = softmaxNew - softmaxOld).
void jointKlGradRowsFromTables(const linalg::Matrix& softmaxOld,
                               const linalg::Matrix& softmaxNew,
                               linalg::Matrix& out);

/// Build default policy / value networks for an observation of `obsDim`.
nn::Mlp makePolicyNet(std::size_t obsDim, std::size_t heads,
                      std::size_t actionsPerHead, std::size_t hidden,
                      std::uint64_t seed);
/// Build the default scalar critic network for an observation of `obsDim`.
nn::Mlp makeValueNet(std::size_t obsDim, std::size_t hidden, std::uint64_t seed);

}  // namespace trdse::rl
