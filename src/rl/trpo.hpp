// Trust Region Policy Optimization (Schulman et al., 2015) — Table I
// baseline, and the paper's model-free namesake: note the contrast between
// TRPO's trust region in *policy parameter* space and the paper's trust
// region in *design* space.
//
// Natural-gradient step solved by conjugate gradients on Fisher-vector
// products (finite-difference of the KL gradient), followed by a backtracking
// line search enforcing the KL constraint and surrogate improvement.
#pragma once

#include "core/problem.hpp"
#include "rl/a2c.hpp"  // RlTrainOutcome
#include "rl/sizing_env.hpp"

namespace trdse::rl {

struct TrpoConfig {
  std::size_t horizon = 256;
  double gamma = 0.99;
  double gaeLambda = 0.95;
  double maxKl = 0.01;
  double cgDamping = 0.1;
  std::size_t cgIterations = 10;
  std::size_t lineSearchSteps = 10;
  double valueLearningRate = 1e-3;
  std::size_t valueEpochs = 5;
  std::size_t hidden = 64;
  EnvConfig env;
  std::uint64_t seed = 1;
};

RlTrainOutcome trainTrpo(const core::SizingProblem& problem,
                         const TrpoConfig& cfg, std::size_t maxSimulations);

}  // namespace trdse::rl
