// Trust Region Policy Optimization (Schulman et al., 2015) — Table I
// baseline, and the paper's model-free namesake: note the contrast between
// TRPO's trust region in *policy parameter* space and the paper's trust
// region in *design* space.
//
// Natural-gradient step solved by conjugate gradients on Fisher-vector
// products (finite-difference of the KL gradient), followed by a backtracking
// line search enforcing the KL constraint and surrogate improvement. Every
// rollout-wide pass (surrogate gradient, KL gradient inside the CG
// Fisher-vector product, mean KL, surrogate value, critic regression) runs
// either as one batched GEMM pass or as the legacy per-sample loop
// (`batchedTraining`), with both paths bitwise identical.
#pragma once

#include "core/problem.hpp"
#include "nn/optimizer.hpp"
#include "rl/a2c.hpp"  // RlTrainOutcome
#include "rl/rollout.hpp"
#include "rl/sizing_env.hpp"

namespace trdse::rl {

/// Hyper-parameters of the TRPO baseline trainer.
struct TrpoConfig {
  std::size_t horizon = 256;        ///< rollout steps per env per update
  double gamma = 0.99;              ///< discount factor
  double gaeLambda = 0.95;          ///< GAE(lambda) mixing coefficient
  double maxKl = 0.01;              ///< trust-region KL radius
  double cgDamping = 0.1;           ///< Fisher damping added to F*v
  std::size_t cgIterations = 10;    ///< conjugate-gradient iterations
  std::size_t lineSearchSteps = 10; ///< backtracking line-search attempts
  double valueLearningRate = 1e-3;  ///< critic Adam step size
  std::size_t valueEpochs = 5;      ///< critic regression epochs per rollout
  std::size_t hidden = 64;          ///< hidden width of policy/critic MLPs
  /// Batched rollout-wide passes (bitwise identical to per-sample).
  bool batchedTraining = true;
  /// Parallel rollout environments (1 reproduces the pre-collector serial
  /// trainer bitwise).
  std::size_t numEnvs = 1;
  /// Worker threads for rollout collection: 1 = inline, 0 = hardware
  /// concurrency. Trajectories are thread-count invariant, but with more
  /// than one worker the problem's evaluate callback must be thread-safe.
  std::size_t rolloutThreads = 1;
  EnvConfig env;                    ///< sizing-environment parameters
  std::uint64_t seed = 1;           ///< base seed for envs, nets and sampling
  /// Stop after this many policy updates (0 = unlimited) — pauses a run at
  /// an update boundary so it can be checkpointed and resumed bitwise.
  std::size_t maxUpdates = 0;
  /// Write a trainer checkpoint (networks, critic Adam moments, env/RNG
  /// state) to `checkpointPath` every N updates (0 = off).
  std::size_t checkpointEvery = 0;
  /// Destination of the periodic snapshots.
  std::string checkpointPath;
  /// Restore this checkpoint before training; the continued run reproduces
  /// the uninterrupted one bitwise (docs/CHECKPOINTS.md).
  std::string resumeFrom;
};

/// Train on the problem's first corner until a satisfying design is found or
/// the simulation budget is exhausted.
RlTrainOutcome trainTrpo(const core::SizingProblem& problem,
                         const TrpoConfig& cfg, std::size_t maxSimulations);

/// One full TRPO update (natural-gradient policy step via CG on
/// Fisher-vector products + backtracking line search, then critic
/// regression) over a flattened rollout. `batched` selects the batched or
/// the legacy per-sample math — the two produce bitwise-identical parameter
/// traces. Returns whether the line search accepted a policy step (the
/// update is skipped entirely when the surrogate gradient or the CG
/// curvature degenerates, matching the serial trainer). Exposed for parity
/// tests and benchmarks.
bool trpoUpdate(nn::Mlp& policy, nn::Mlp& critic, nn::Optimizer& criticOpt,
                const FlatRollout& data, const TrpoConfig& cfg, bool batched);

}  // namespace trdse::rl
