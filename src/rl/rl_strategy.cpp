#include "rl/rl_strategy.hpp"

#include <algorithm>

namespace trdse::rl {

namespace {

A2cConfig toUpdateConfig(const RlPolicyConfig& cfg) {
  A2cConfig u;
  u.gamma = cfg.gamma;
  u.gaeLambda = cfg.gaeLambda;
  u.learningRate = cfg.learningRate;
  u.valueLearningRate = cfg.valueLearningRate;
  u.entropyCoeff = cfg.entropyCoeff;
  u.maxGradNorm = cfg.maxGradNorm;
  u.hidden = cfg.hidden;
  return u;
}

}  // namespace

RlPolicyStrategy::RlPolicyStrategy(core::SizingProblem problem,
                                   RlPolicyConfig config, std::uint64_t seed,
                                   std::size_t budget)
    : problem_(std::move(problem)),
      config_(config),
      updateCfg_(toUpdateConfig(config)),
      policyOpt_(config.learningRate),
      criticOpt_(config.valueLearningRate),
      rng_(common::perTaskSeed(seed, 2)),
      budget_(budget) {
  config_.env.recordLedger = true;  // common block-level accounting
  env_ = std::make_unique<SizingEnv>(problem_, config_.env,
                                     common::perTaskSeed(seed, 3));
  policy_ = makePolicyNet(env_->observationDim(), env_->actionHeads(),
                          SizingEnv::kActionsPerHead, config_.hidden,
                          common::perTaskSeed(seed, 0));
  critic_ = makeValueNet(env_->observationDim(), config_.hidden,
                         common::perTaskSeed(seed, 1));
}

bool RlPolicyStrategy::finished() const {
  return result_.solved || exhausted_ ||
         (budget_ > 0 && result_.iterations >= budget_);
}

const opt::StrategyOutcome& RlPolicyStrategy::harvest() {
  result_.iterations = env_->simulationsUsed();
  result_.evalStats = env_->engine().stats();
  // The ledger grows with the budget; snapshot it once, at the end.
  if (finished()) result_.ledger = env_->engine().ledger();
  return result_;
}

void RlPolicyStrategy::maybeUpdate(bool episodeEnded) {
  if (!config_.train || buffer_.size() < config_.nSteps) return;
  buffer_.bootstrapValue = episodeEnded ? 0.0 : critic_.predict(obs_)[0];
  const FlatRollout flat =
      flattenRollouts({buffer_}, updateCfg_.gamma, updateCfg_.gaeLambda);
  a2cUpdateBatched(policy_, critic_, policyOpt_, criticOpt_, flat, updateCfg_);
  buffer_.clear();
}

const opt::StrategyOutcome& RlPolicyStrategy::step(std::size_t target) {
  target = std::min(target, budget_);
  const std::size_t heads = env_->actionHeads();

  while (!finished() && env_->simulationsUsed() < target) {
    // One loop turn = at most one episode reset (1 sim) + one env step
    // (1 sim). Never start work the total budget cannot pay for.
    const std::size_t cost = haveObs_ ? 1 : 2;
    if (env_->simulationsUsed() + cost > budget_) {
      exhausted_ = true;
      break;
    }
    if (!haveObs_) {
      obs_ = env_->reset();
      haveObs_ = true;
      continue;
    }

    const PolicySample sample = samplePolicy(
        policy_, obs_, heads, SizingEnv::kActionsPerHead, rng_);
    const double valueEstimate = critic_.predict(obs_)[0];
    const StepResult sr = env_->step(sample.actions);

    Transition t;
    t.observation = obs_;
    t.actions = sample.actions;
    t.reward = sr.reward;
    t.valueEstimate = valueEstimate;
    t.logProb = sample.logProb;
    t.done = sr.done;
    buffer_.transitions.push_back(std::move(t));
    obs_ = sr.observation;

    // Track the best Value seen (reward minus the solve bonus), so the
    // outcome is comparable with the other strategies' worst-corner Value.
    const double v = sr.reward - (sr.solved ? config_.env.solveBonus : 0.0);
    if (v > result_.bestValue) {
      result_.bestValue = v;
      result_.sizes = env_->currentSizes();
    }
    if (sr.solved) {
      result_.solved = true;
      result_.sizes = env_->currentSizes();
      break;
    }
    if (sr.done) haveObs_ = false;
    maybeUpdate(sr.done);
  }
  return harvest();
}

}  // namespace trdse::rl
