// Advantage Actor-Critic (Mnih et al., 2016) — Table I baseline.
// Synchronous single-worker variant with n-step GAE advantages, entropy
// regularization and gradient-norm clipping, as in Stable-Baselines' A2C.
#pragma once

#include "core/problem.hpp"
#include "rl/actor_critic.hpp"
#include "rl/rollout.hpp"
#include "rl/sizing_env.hpp"

namespace trdse::rl {

struct A2cConfig {
  std::size_t nSteps = 16;
  double gamma = 0.99;
  double gaeLambda = 0.95;
  double learningRate = 7e-4;
  double valueLearningRate = 7e-4;
  double entropyCoeff = 0.01;
  double maxGradNorm = 0.5;
  std::size_t hidden = 64;
  EnvConfig env;
  std::uint64_t seed = 1;
};

struct RlTrainOutcome {
  bool solved = false;
  std::size_t simulationsToSolve = 0;  ///< sims at the first satisfying design
  std::size_t totalSimulations = 0;
  double bestEpisodeReturn = 0.0;
};

/// Train on the problem's first corner until a satisfying design is found or
/// the simulation budget is exhausted.
RlTrainOutcome trainA2c(const core::SizingProblem& problem, const A2cConfig& cfg,
                        std::size_t maxSimulations);

}  // namespace trdse::rl
