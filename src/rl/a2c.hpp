// Advantage Actor-Critic (Mnih et al., 2016) — Table I baseline.
// Synchronous variant with n-step GAE advantages, entropy regularization and
// gradient-norm clipping, as in Stable-Baselines' A2C. Rollouts come from a
// ParallelRolloutCollector (N environments, deterministic env-order merge);
// the gradient step runs either as one batched forward/backward pass per
// network or as the legacy per-sample loop (`batchedTraining`), with both
// paths producing bitwise-identical updates.
#pragma once

#include "core/problem.hpp"
#include "nn/optimizer.hpp"
#include "rl/actor_critic.hpp"
#include "rl/rollout.hpp"
#include "rl/sizing_env.hpp"

namespace trdse::rl {

/// Hyper-parameters of the A2C baseline trainer.
struct A2cConfig {
  std::size_t nSteps = 16;          ///< rollout steps per env per update
  double gamma = 0.99;              ///< discount factor
  double gaeLambda = 0.95;          ///< GAE(lambda) mixing coefficient
  double learningRate = 7e-4;       ///< policy Adam step size
  double valueLearningRate = 7e-4;  ///< critic Adam step size
  double entropyCoeff = 0.01;       ///< entropy-bonus weight
  double maxGradNorm = 0.5;         ///< L2 gradient clip threshold
  std::size_t hidden = 64;          ///< hidden width of policy/critic MLPs
  /// Batched update math (bitwise identical to the per-sample path; see
  /// tests/rl_batch_test.cpp). Off = legacy per-sample forward/backward.
  bool batchedTraining = true;
  /// Parallel rollout environments (1 reproduces the pre-collector serial
  /// trainer bitwise).
  std::size_t numEnvs = 1;
  /// Worker threads for rollout collection: 1 = inline, 0 = hardware
  /// concurrency. Trajectories are thread-count invariant, but with more
  /// than one worker the problem's evaluate callback must be thread-safe.
  std::size_t rolloutThreads = 1;
  EnvConfig env;                    ///< sizing-environment parameters
  std::uint64_t seed = 1;           ///< base seed for envs, nets and sampling
  /// Stop after this many policy updates (0 = unlimited) — pauses a run at
  /// an update boundary so it can be checkpointed and resumed bitwise.
  std::size_t maxUpdates = 0;
  /// Write a trainer checkpoint (networks, Adam moments, env/RNG state) to
  /// `checkpointPath` every N completed updates (0 = off).
  std::size_t checkpointEvery = 0;
  /// Destination of the periodic snapshots.
  std::string checkpointPath;
  /// Restore this checkpoint before training; the continued run reproduces
  /// the uninterrupted one bitwise (docs/CHECKPOINTS.md).
  std::string resumeFrom;
};

/// Result of one model-free training run (shared by A2C / PPO / TRPO).
struct RlTrainOutcome {
  bool solved = false;                 ///< a satisfying design was found
  std::size_t simulationsToSolve = 0;  ///< sims at the first satisfying design
  std::size_t totalSimulations = 0;    ///< sims consumed over the whole run
  double bestEpisodeReturn = 0.0;      ///< best completed-episode return
};

/// Train on the problem's first corner until a satisfying design is found or
/// the simulation budget is exhausted.
RlTrainOutcome trainA2c(const core::SizingProblem& problem, const A2cConfig& cfg,
                        std::size_t maxSimulations);

/// One synchronous A2C gradient step over a flattened rollout — the legacy
/// per-sample reference path (exposed for parity tests and benchmarks).
void a2cUpdatePerSample(nn::Mlp& policy, nn::Mlp& critic,
                        nn::Optimizer& policyOpt, nn::Optimizer& criticOpt,
                        const FlatRollout& data, const A2cConfig& cfg);

/// Batched equivalent of a2cUpdatePerSample: one forwardBatch/backwardBatch
/// pass per network. Bitwise identical to the per-sample path.
void a2cUpdateBatched(nn::Mlp& policy, nn::Mlp& critic,
                      nn::Optimizer& policyOpt, nn::Optimizer& criticOpt,
                      const FlatRollout& data, const A2cConfig& cfg);

}  // namespace trdse::rl
