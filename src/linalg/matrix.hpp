// Dense row-major matrix over an arbitrary scalar (double or complex<double>).
//
// This is the numerical workhorse shared by the MNA circuit solver (real DC
// Jacobians, complex AC system matrices) and the neural-network library
// (weight matrices, batched activations). It is deliberately small: only the
// operations those clients need, with bounds checking in debug builds.
#pragma once

#include <algorithm>
#include <cassert>
#include <complex>
#include <cstddef>
#include <initializer_list>
#include <new>
#include <vector>

// The GEMM micro-kernels promise the compiler non-overlapping panels so the
// unit-stride inner loops vectorize without runtime alias checks.
#if defined(_MSC_VER)
#define TRDSE_RESTRICT __restrict
#else
#define TRDSE_RESTRICT __restrict__
#endif

namespace trdse::linalg {

/// Minimal 64-byte-aligned allocator so matrix rows start on cache-line
/// boundaries and the GEMM micro-kernels get aligned vector loads.
template <typename T>
class AlignedAllocator {
 public:
  using value_type = T;
  static constexpr std::size_t kAlignment = 64;

  AlignedAllocator() = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U>&) {}

  T* allocate(std::size_t n) {
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t{kAlignment}));
  }
  void deallocate(T* p, std::size_t) {
    ::operator delete(p, std::align_val_t{kAlignment});
  }

  template <typename U>
  bool operator==(const AlignedAllocator<U>&) const {
    return true;
  }
};

template <typename T>
using AlignedVector = std::vector<T, AlignedAllocator<T>>;

template <typename T>
class MatrixT {
 public:
  MatrixT() = default;
  MatrixT(std::size_t rows, std::size_t cols, T fill = T{})
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  /// Build from nested braces: MatrixT<double>{{1,2},{3,4}}.
  MatrixT(std::initializer_list<std::initializer_list<T>> rows_init) {
    rows_ = rows_init.size();
    cols_ = rows_ == 0 ? 0 : rows_init.begin()->size();
    data_.reserve(rows_ * cols_);
    for (const auto& r : rows_init) {
      assert(r.size() == cols_ && "ragged initializer");
      data_.insert(data_.end(), r.begin(), r.end());
    }
  }

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  T& operator()(std::size_t r, std::size_t c) {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  const T& operator()(std::size_t r, std::size_t c) const {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  T* data() { return data_.data(); }
  const T* data() const { return data_.data(); }
  T* row(std::size_t r) { return data_.data() + r * cols_; }
  const T* row(std::size_t r) const { return data_.data() + r * cols_; }

  void fill(T v) { std::fill(data_.begin(), data_.end(), v); }
  void resize(std::size_t rows, std::size_t cols, T fill = T{}) {
    rows_ = rows;
    cols_ = cols;
    data_.assign(rows * cols, fill);
  }

  MatrixT& operator+=(const MatrixT& o) {
    assert(rows_ == o.rows_ && cols_ == o.cols_);
    for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += o.data_[i];
    return *this;
  }
  MatrixT& operator-=(const MatrixT& o) {
    assert(rows_ == o.rows_ && cols_ == o.cols_);
    for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= o.data_[i];
    return *this;
  }
  MatrixT& operator*=(T s) {
    for (auto& v : data_) v *= s;
    return *this;
  }

  friend bool operator==(const MatrixT&, const MatrixT&) = default;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  AlignedVector<T> data_;
};

using Matrix = MatrixT<double>;
using ComplexMatrix = MatrixT<std::complex<double>>;
using Vector = std::vector<double>;
using ComplexVector = std::vector<std::complex<double>>;

/// y = A * x (dimensions must agree).
template <typename T>
std::vector<T> matVec(const MatrixT<T>& a, const std::vector<T>& x) {
  assert(a.cols() == x.size());
  std::vector<T> y(a.rows(), T{});
  for (std::size_t r = 0; r < a.rows(); ++r) {
    T acc{};
    const T* ar = a.row(r);
    for (std::size_t c = 0; c < a.cols(); ++c) acc += ar[c] * x[c];
    y[r] = acc;
  }
  return y;
}

/// y = A^T * x.
template <typename T>
std::vector<T> matTVec(const MatrixT<T>& a, const std::vector<T>& x) {
  assert(a.rows() == x.size());
  std::vector<T> y(a.cols(), T{});
  for (std::size_t r = 0; r < a.rows(); ++r) {
    const T* ar = a.row(r);
    for (std::size_t c = 0; c < a.cols(); ++c) y[c] += ar[c] * x[r];
  }
  return y;
}

// ---- Batched GEMM kernels ----
//
// The hot path of the trust-region planner scores ~800 candidates per step on
// the NN surrogate; these kernels let every layer run as one matrix-matrix
// product instead of 800 matrix-vector products. The loops are cache-blocked
// (row/depth tiles sized so the B-panel stays resident in L1/L2) with an
// i-k-j micro-kernel whose inner j loop is unit-stride in both B and C, so
// the compiler vectorizes it. Accumulation over k is ascending, one product
// at a time — the exact association order of matVec — which keeps batched
// inference bitwise identical to the per-sample path.

/// C = A * B with C resized by the callee. Buffers keep their capacity across
/// calls, so steady-state invocations do not allocate.
///
/// Micro-kernel: a 2 × 8 register tile of C is accumulated across the whole
/// shared dimension before being stored once, so the inner loop runs from
/// registers (two independent 8-wide FMA chains per tile) instead of
/// read-modify-writing C rows through the cache. Per element, products are
/// still added in ascending-k order one at a time — the association order of
/// matVec — keeping batched inference bitwise identical to the per-sample
/// path. Remainder rows/columns fall back to plain ascending-k dots.
namespace detail {

/// Shared micro-kernel body: C = A·B (+ optional row-broadcast bias when
/// `bias` is non-null, added once after the full k-sum — the same order as
/// matVec followed by a bias add).
template <typename T, std::size_t kJT>
inline void gemmTileColumns(const MatrixT<T>& a, const MatrixT<T>& b,
                            MatrixT<T>& c, const T* bias, std::size_t i0,
                            std::size_t& j0, std::size_t jEnd) {
  constexpr std::size_t kIT = 2;
  const std::size_t depth = a.cols();
  for (; j0 + kJT <= jEnd; j0 += kJT) {
    T acc[kIT][kJT] = {};
    for (std::size_t k = 0; k < depth; ++k) {
      const T* TRDSE_RESTRICT br = b.row(k) + j0;
      for (std::size_t ii = 0; ii < kIT; ++ii) {
        const T aik = a(i0 + ii, k);
        for (std::size_t jj = 0; jj < kJT; ++jj) acc[ii][jj] += aik * br[jj];
      }
    }
    for (std::size_t ii = 0; ii < kIT; ++ii) {
      T* TRDSE_RESTRICT cr = c.row(i0 + ii) + j0;
      if (bias != nullptr) {
        for (std::size_t jj = 0; jj < kJT; ++jj)
          cr[jj] = acc[ii][jj] + bias[j0 + jj];
      } else {
        for (std::size_t jj = 0; jj < kJT; ++jj) cr[jj] = acc[ii][jj];
      }
    }
  }
}

/// C = A·B with optional fused row-broadcast bias. The 2-row register tile
/// walks column tiles of 8, then 4, then scalar remainder.
template <typename T>
void matMulBiasInto(const MatrixT<T>& a, const MatrixT<T>& b, MatrixT<T>& c,
                    const T* bias) {
  assert(a.cols() == b.rows());
  assert(&c != &a && &c != &b);
  const std::size_t m = a.rows();
  const std::size_t depth = a.cols();
  const std::size_t n = b.cols();
  c.resize(m, n);
  constexpr std::size_t kIT = 2;
  std::size_t i0 = 0;
  for (; i0 + kIT <= m; i0 += kIT) {
    std::size_t j0 = 0;
    gemmTileColumns<T, 8>(a, b, c, bias, i0, j0, n);
    gemmTileColumns<T, 4>(a, b, c, bias, i0, j0, n);
    for (; j0 < n; ++j0) {
      for (std::size_t ii = 0; ii < kIT; ++ii) {
        const T* TRDSE_RESTRICT ar = a.row(i0 + ii);
        T s{};
        for (std::size_t k = 0; k < depth; ++k) s += ar[k] * b(k, j0);
        c(i0 + ii, j0) = bias != nullptr ? s + bias[j0] : s;
      }
    }
  }
  for (; i0 < m; ++i0) {
    const T* TRDSE_RESTRICT ar = a.row(i0);
    for (std::size_t j = 0; j < n; ++j) {
      T s{};
      for (std::size_t k = 0; k < depth; ++k) s += ar[k] * b(k, j);
      c(i0, j) = bias != nullptr ? s + bias[j] : s;
    }
  }
}

}  // namespace detail

template <typename T>
void matMulInto(const MatrixT<T>& a, const MatrixT<T>& b, MatrixT<T>& c) {
  detail::matMulBiasInto(a, b, c, static_cast<const T*>(nullptr));
}

/// C = A * B.
template <typename T>
MatrixT<T> matMul(const MatrixT<T>& a, const MatrixT<T>& b) {
  MatrixT<T> c;
  matMulInto(a, b, c);
  return c;
}

/// dst = src^T (dst resized; reuses capacity).
template <typename T>
void transposeInto(const MatrixT<T>& src, MatrixT<T>& dst) {
  assert(&dst != &src);
  dst.resize(src.cols(), src.rows());
  for (std::size_t r = 0; r < src.rows(); ++r) {
    const T* sr = src.row(r);
    for (std::size_t c = 0; c < src.cols(); ++c) dst(c, r) = sr[c];
  }
}

template <typename T>
MatrixT<T> transpose(const MatrixT<T>& src) {
  MatrixT<T> dst;
  transposeInto(src, dst);
  return dst;
}

/// C = A * B^T — the layer-inference shape (activations × weights) when B is
/// stored row-major as outDim × inDim. Internally packs B^T once (O(B.size())
/// against O(A.rows() · B.size()) of math) and runs the blocked kernel, so
/// accumulation order still matches matVec exactly.
template <typename T>
void matMulTransBInto(const MatrixT<T>& a, const MatrixT<T>& b, MatrixT<T>& c,
                      MatrixT<T>& packBuf) {
  assert(a.cols() == b.cols());
  transposeInto(b, packBuf);
  matMulInto(a, packBuf, c);
}

template <typename T>
MatrixT<T> matMulTransB(const MatrixT<T>& a, const MatrixT<T>& b) {
  MatrixT<T> c;
  MatrixT<T> pack;
  matMulTransBInto(a, b, c, pack);
  return c;
}

/// C = A · B^T with `bias` broadcast-added to every row, fused into the
/// micro-kernel's store so C is touched once — the dense-layer pre-activation
/// in one call. Bias is added after the full k-sum, matching a matVec
/// followed by a bias add exactly.
template <typename T>
void matMulTransBBiasInto(const MatrixT<T>& a, const MatrixT<T>& b,
                          const std::vector<T>& bias, MatrixT<T>& c,
                          MatrixT<T>& packBuf) {
  assert(a.cols() == b.cols());
  assert(bias.size() == b.rows());
  transposeInto(b, packBuf);
  detail::matMulBiasInto(a, packBuf, c, bias.data());
}

/// C += A^T * B, accumulated row-of-A by row-of-A (ascending), so it matches
/// a sequence of per-sample rank-1 updates bit for bit. This is the weight-
/// gradient shape: gradW += gradOut^T · inputs.
template <typename T>
void gemmAtBAccum(const MatrixT<T>& a, const MatrixT<T>& b, MatrixT<T>& c) {
  assert(a.rows() == b.rows());
  assert(c.rows() == a.cols() && c.cols() == b.cols());
  for (std::size_t r = 0; r < a.rows(); ++r) {
    const T* TRDSE_RESTRICT ar = a.row(r);
    const T* TRDSE_RESTRICT br = b.row(r);
    for (std::size_t i = 0; i < a.cols(); ++i) {
      const T coeff = ar[i];
      if (coeff == T{}) continue;
      T* TRDSE_RESTRICT ci = c.row(i);
      for (std::size_t j = 0; j < b.cols(); ++j) ci[j] += coeff * br[j];
    }
  }
}

/// Every row of `m` += v (the batched bias add).
template <typename T>
void addRowwise(MatrixT<T>& m, const std::vector<T>& v) {
  assert(m.cols() == v.size());
  for (std::size_t r = 0; r < m.rows(); ++r) {
    T* mr = m.row(r);
    for (std::size_t c = 0; c < m.cols(); ++c) mr[c] += v[c];
  }
}

/// out[c] += sum over rows of m(r, c), rows ascending (the batched bias
/// gradient: per-sample accumulation order preserved).
template <typename T>
void addColSums(const MatrixT<T>& m, std::vector<T>& out) {
  assert(m.cols() == out.size());
  for (std::size_t r = 0; r < m.rows(); ++r) {
    const T* mr = m.row(r);
    for (std::size_t c = 0; c < m.cols(); ++c) out[c] += mr[c];
  }
}

// ---- Small vector helpers shared across the project ----

double dot(const Vector& a, const Vector& b);
double norm2(const Vector& a);
double normInf(const Vector& a);
/// y += alpha * x
void axpy(double alpha, const Vector& x, Vector& y);
Vector scaled(const Vector& x, double alpha);
Vector add(const Vector& a, const Vector& b);
Vector sub(const Vector& a, const Vector& b);

}  // namespace trdse::linalg
